/**
 * @file
 * GlobalRouter suite: locality routing, the cross-region conservation
 * ledger, black-hole quarantine with reroute, retry-amplification
 * accounting, and deterministic exports.
 */

#include "global/global_router.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "cluster/work.h"
#include "workload/traffic.h"

namespace wsva::global {
namespace {

using wsva::cluster::ClusterConfig;
using wsva::cluster::SimEngine;
using wsva::cluster::TranscodeStep;
using wsva::cluster::makeMotStep;
using wsva::video::codec::CodecType;
using wsva::workload::RegionalUploadTraffic;
using wsva::workload::UploadTrafficConfig;

/** Two regions of 2 hosts x 8 VCUs on the event engine, fault-free. */
GlobalRouterConfig
twoRegionConfig()
{
    GlobalRouterConfig cfg;
    cfg.regions = 2;
    cfg.cluster.hosts = 2;
    cfg.cluster.vcus_per_host = 8;
    cfg.cluster.engine = SimEngine::Event;
    cfg.cluster.seed = 11;
    return cfg;
}

/** The black-hole failure shape (Section 4.4): corruption is always
 *  detected (so every bad completion retries), but nothing self-heals
 *  — no screening, no abort, a fault threshold never reached. The
 *  router's health gate is the only defense, which is the point. */
void
configureBlackHole(ClusterConfig &cluster)
{
    cluster.failure.integrity_detect_prob = 1.0;
    cluster.failure.golden_screening = false;
    cluster.failure.abort_on_failure = false;
    cluster.failure.host_fault_threshold = 1 << 30;
}

UploadTrafficConfig
lightUploads(uint64_t seed)
{
    UploadTrafficConfig traffic;
    traffic.uploads_per_second = 0.2;
    traffic.seed = seed;
    return traffic;
}

RegionalArrivalFn
regionalFn(RegionalUploadTraffic &traffic)
{
    return [&traffic](int region, double now, double dt) {
        return traffic.arrivals(region, now, dt);
    };
}

/** A burst of MOT steps tagged as originating in region 0. */
std::vector<TranscodeStep>
regionZeroBurst(int count)
{
    std::vector<TranscodeStep> steps;
    for (int i = 0; i < count; ++i) {
        TranscodeStep step =
            makeMotStep(1000 + static_cast<uint64_t>(i),
                        500 + static_cast<uint64_t>(i), 0, {1280, 720},
                        CodecType::H264);
        step.origin_region = 0;
        steps.push_back(step);
    }
    return steps;
}

// ---- Satellite 2: attempt accounting, hand-computed -------------

TEST(GlobalRouter, RetryAmplificationHandComputed)
{
    // A 3-attempt reroute story: the step runs twice on a black-holed
    // region (2 retries), is rerouted, and completes on attempt 3.
    // Executed attempts = completions + retries = 1 + 2 = 3, so
    // amplification must read exactly 3.0 — the reroute hop itself is
    // not an executed attempt and must not inflate it.
    RegionStatus st;
    st.retries = 2;
    st.completions = 1;
    EXPECT_DOUBLE_EQ(st.retryAmplification(), 3.0);

    // No completions yet: amplification is undefined, reads 0 (not a
    // division crash, not infinity leaking into gauges).
    RegionStatus stalled;
    stalled.retries = 7;
    EXPECT_DOUBLE_EQ(stalled.retryAmplification(), 0.0);
}

TEST(GlobalRouter, GlobalLedgerArithmetic)
{
    GlobalConservation g;
    g.submitted = 10;
    g.completed = 4;
    g.in_flight = 2;
    g.backlog = 1;
    g.shed = 1;
    g.pending = 2;
    EXPECT_TRUE(g.holds());
    g.pending = 3; // One step counted twice would break the ledger.
    EXPECT_FALSE(g.holds());
}

// ---- Routing ----------------------------------------------------

TEST(GlobalRouter, LocalityRoutesToOriginWhenHealthy)
{
    GlobalRouterConfig cfg = twoRegionConfig();
    // Whole videos arrive as one burst of chunks, so the admission
    // signal can spike past a tight spill threshold even on a lightly
    // loaded fleet. This test pins locality, not spill: disable it.
    cfg.spill_load_factor = 1e9;
    GlobalRouter router(cfg);
    RegionalUploadTraffic traffic(2, lightUploads(17));
    router.runFor(120.0, regionalFn(traffic));

    // Healthy, lightly loaded fleet: every step stays in its origin
    // region; nothing spills, nothing reroutes.
    EXPECT_EQ(router.reroutedTotal(), 0u);
    EXPECT_GT(router.status(0).routed, 0u);
    EXPECT_GT(router.status(1).routed, 0u);
    EXPECT_EQ(router.status(0).rerouted_in, 0u);
    EXPECT_EQ(router.status(1).rerouted_in, 0u);
    EXPECT_EQ(router.status(0).routed + router.status(1).routed,
              router.submittedTotal());
    EXPECT_EQ(router.auditViolations(), 0u);
    EXPECT_EQ(router.routableRegions(), 2);
}

// ---- Satellite 4: fault-free global ledger equality -------------

TEST(GlobalRouter, FaultFreeTwoRegionLedgerMatchesOneRegion)
{
    // The same offered load, once through the 2-region router and
    // once into a single cluster with the combined capacity: after a
    // full drain both ledgers must close completely — every generated
    // step submitted, every submitted step completed, zero audit
    // violations. Router cadence = sim tick so the arrival windows
    // are identical on both arms.
    GlobalRouterConfig cfg = twoRegionConfig();
    cfg.step_seconds = 1.0;
    cfg.dt = 1.0;
    GlobalRouter router(cfg);
    RegionalUploadTraffic router_traffic(2, lightUploads(23));
    router.runFor(120.0, regionalFn(router_traffic));
    for (int i = 0;
         i < 20 && router.completedTotal() < router.submittedTotal();
         ++i)
        router.runFor(60.0);

    ClusterConfig single_cfg = cfg.cluster;
    single_cfg.hosts = cfg.cluster.hosts * 2; // Combined capacity.
    wsva::cluster::ClusterSim single(single_cfg);
    RegionalUploadTraffic single_traffic(2, lightUploads(23));
    const auto combined = [&single_traffic](double now, double dt) {
        auto steps = single_traffic.arrivals(0, now, dt);
        auto more = single_traffic.arrivals(1, now, dt);
        steps.insert(steps.end(), more.begin(), more.end());
        return steps;
    };
    single.run(120.0, 1.0, combined);
    for (int i = 0; i < 20 && single.conservation().completed <
                                  single.conservation().submitted;
         ++i)
        single.run(60.0, 1.0);

    // Same windows, same seeds: both arms saw the same offered load.
    ASSERT_EQ(router_traffic.stepsGenerated(),
              single_traffic.stepsGenerated());

    // Router arm: everything generated was submitted and completed.
    EXPECT_EQ(router.submittedTotal(), router_traffic.stepsGenerated());
    EXPECT_EQ(router.completedTotal(), router.submittedTotal());
    const GlobalConservation g = router.conservation();
    EXPECT_TRUE(g.holds());
    EXPECT_EQ(g.pending, 0u);
    EXPECT_EQ(router.auditViolations(), 0u);
    EXPECT_DOUBLE_EQ(router.availability(), 1.0);
    EXPECT_DOUBLE_EQ(router.retryAmplification(), 1.0);

    // Single arm closes to the same totals.
    const auto snap = single.conservation();
    EXPECT_TRUE(snap.holds());
    EXPECT_EQ(snap.submitted, single_traffic.stepsGenerated());
    EXPECT_EQ(snap.completed, snap.submitted);
    EXPECT_EQ(router.completedTotal(), snap.completed);
}

// ---- Black-hole quarantine --------------------------------------

TEST(GlobalRouter, BlackHoleQuarantineReroutesEverything)
{
    // Region 0 black-holes before any work runs; a burst of 100 steps
    // originates there. The gate must quarantine region 0, expel and
    // reroute all 100 into region 1, and every step must complete —
    // with attempt accounting that a hand computation reproduces.
    GlobalRouterConfig cfg = twoRegionConfig();
    configureBlackHole(cfg.cluster);
    cfg.health.min_window_attempts = 1;
    cfg.health.min_quarantine_seconds = 1e9; // Never re-admit.
    // No load spill: all 100 steps must land in region 0 first so
    // the only way out is the quarantine expel.
    cfg.spill_load_factor = 1e9;
    GlobalRouter router(cfg);

    router.region(0).forceSilentFaults(0.4);
    for (const auto &step : regionZeroBurst(100))
        router.submit(step);
    for (int i = 0; i < 50 && router.completedTotal() < 100; ++i)
        router.runFor(4.0);

    ASSERT_EQ(router.completedTotal(), 100u);
    EXPECT_DOUBLE_EQ(router.availability(), 1.0);
    EXPECT_EQ(router.auditViolations(), 0u);

    const RegionStatus &st0 = router.status(0);
    const RegionStatus &st1 = router.status(1);
    EXPECT_TRUE(st0.quarantined);
    EXPECT_EQ(st0.quarantine_entries, 1u);
    EXPECT_EQ(router.routableRegions(), 1);

    // Region 0 never completed anything (every completion there was
    // corrupt and detected); each attempt it did execute is a retry.
    EXPECT_EQ(st0.completions, 0u);
    EXPECT_GE(st0.retries, 1u);
    // All 100 steps left region 0 exactly once and entered region 1
    // exactly once.
    EXPECT_EQ(st0.expelled, 100u);
    EXPECT_EQ(st1.rerouted_in, 100u);
    EXPECT_EQ(router.reroutedTotal(), 100u);
    // Region 1 is healthy: completions with zero retries.
    EXPECT_EQ(st1.completions, 100u);
    EXPECT_EQ(st1.retries, 0u);

    // Hand-computed amplification: (c0 + r0 + c1 + r1) / (c0 + c1)
    // = (r0 + 100) / 100. The reroute hop adds nothing.
    EXPECT_DOUBLE_EQ(router.retryAmplification(),
                     1.0 + static_cast<double>(st0.retries) / 100.0);

    // No double-count through the reroute: the per-host lifetime
    // retry counters feeding the fleet rollup sum to exactly the
    // per-attempt counts the router accumulated.
    const auto fleet0 = router.region(0).buildFleetHealth(router.now());
    const auto fleet1 = router.region(1).buildFleetHealth(router.now());
    EXPECT_EQ(fleet0.retries, st0.retries);
    EXPECT_EQ(fleet0.completions, 0u);
    EXPECT_EQ(fleet1.retries, 0u);
    EXPECT_EQ(fleet1.completions, 100u);

    // The quarantined region drained: dispatch is paused, its backlog
    // was expelled, and its own ledger balances via rerouted_away.
    const auto snap0 = router.region(0).conservation();
    EXPECT_EQ(snap0.in_flight, 0u);
    EXPECT_EQ(snap0.backlog, 0u);
    EXPECT_EQ(snap0.rerouted_away, 100u);
    EXPECT_TRUE(snap0.holds());
    EXPECT_TRUE(router.region(0).dispatchPaused());
}

TEST(GlobalRouter, GatingImprovesAvailabilityUnderBlackHole)
{
    // The bench's ablation, at test scale: identical seeds and load,
    // region 0 black-holes mid-run; the only difference is whether
    // the router acts on its health gates. Gating must win on both
    // availability and amplification, and the ledger must hold in
    // both arms.
    struct Arm
    {
        double availability = 0.0;
        double amplification = 0.0;
        uint64_t violations = 0;
        uint64_t entries = 0;
    };
    const auto run_arm = [](bool gating) {
        GlobalRouterConfig cfg = twoRegionConfig();
        configureBlackHole(cfg.cluster);
        cfg.health_gating = gating;
        GlobalRouter router(cfg);
        RegionalUploadTraffic traffic(2, lightUploads(31));
        const auto arrivals = regionalFn(traffic);
        router.runFor(60.0, arrivals);
        router.region(0).forceSilentFaults(0.4);
        router.runFor(240.0, arrivals);
        Arm arm;
        arm.availability = router.availability();
        arm.amplification = router.retryAmplification();
        arm.violations = router.auditViolations();
        arm.entries = router.status(0).quarantine_entries;
        return arm;
    };

    const Arm on = run_arm(true);
    const Arm off = run_arm(false);

    // Both arms' gates saw the same signal and tripped; only the
    // gated arm acted on it.
    EXPECT_GE(on.entries, 1u);
    EXPECT_GE(off.entries, 1u);

    EXPECT_GT(on.availability, off.availability);
    EXPECT_LT(on.amplification, off.amplification);
    EXPECT_EQ(on.violations, 0u);
    EXPECT_EQ(off.violations, 0u);
}

TEST(GlobalRouter, PendingWhenAllRegionsQuarantined)
{
    // A single-region fleet whose only region black-holes: once it is
    // quarantined nothing is routable, so expelled and fresh steps
    // park in the router's pending bucket — counted by the ledger,
    // not dropped.
    GlobalRouterConfig cfg = twoRegionConfig();
    cfg.regions = 1;
    configureBlackHole(cfg.cluster);
    cfg.health.min_window_attempts = 1;
    cfg.health.min_quarantine_seconds = 1e9;
    GlobalRouter router(cfg);

    router.region(0).forceSilentFaults(0.4);
    for (const auto &step : regionZeroBurst(50))
        router.submit(step);
    router.runFor(40.0);

    EXPECT_EQ(router.routableRegions(), 0);
    EXPECT_EQ(router.completedTotal(), 0u);
    EXPECT_GT(router.pendingSteps(), 0u);

    // A fresh arrival with nowhere to go parks immediately.
    const size_t before = router.pendingSteps();
    TranscodeStep straggler =
        makeMotStep(9999, 9999, 0, {1280, 720}, CodecType::H264);
    straggler.origin_region = 0;
    router.submit(straggler);
    EXPECT_EQ(router.pendingSteps(), before + 1);

    const GlobalConservation g = router.conservation();
    EXPECT_TRUE(g.holds());
    EXPECT_EQ(g.submitted, 51u);
    EXPECT_GT(g.pending, 0u);
    EXPECT_EQ(router.auditViolations(), 0u);
}

// ---- Exports ----------------------------------------------------

TEST(GlobalRouter, DeterministicExports)
{
    const auto run_router = [] {
        GlobalRouterConfig cfg = twoRegionConfig();
        GlobalRouter router(cfg);
        RegionalUploadTraffic traffic(2, lightUploads(41));
        router.runFor(60.0, regionalFn(traffic));
        return router.exportJson();
    };
    const std::string a = run_router();
    const std::string b = run_router();
    EXPECT_EQ(a, b);

    // The export carries the tree-wide schema version, defined in
    // exactly one place (satellite: schema bump hygiene).
    const std::string tag =
        "\"schema_version\": " +
        std::to_string(
            wsva::cluster::ClusterSim::kExportSchemaVersion);
    EXPECT_NE(a.find(tag), std::string::npos);
    EXPECT_NE(a.find("\"schema_version\": 5"), std::string::npos);
    EXPECT_NE(a.find("\"rerouted_away\""), std::string::npos);
    EXPECT_NE(a.find("\"conservation\""), std::string::npos);
}

TEST(GlobalRouter, StatusTextShowsRegionTable)
{
    GlobalRouterConfig cfg = twoRegionConfig();
    GlobalRouter router(cfg);
    RegionalUploadTraffic traffic(2, lightUploads(43));
    router.runFor(20.0, regionalFn(traffic));
    const std::string text = router.statusText();
    EXPECT_NE(text.find("region 0"), std::string::npos);
    EXPECT_NE(text.find("region 1"), std::string::npos);
    EXPECT_NE(text.find("ledger: holds"), std::string::npos);
}

} // namespace
} // namespace wsva::global
