/**
 * @file
 * RegionHealth suite: the hysteretic quarantine state machine that
 * gates regions in and out of the global routing ring. The flap
 * bound is the load-bearing property — a region oscillating exactly
 * at the threshold must not enter/exit the ring faster than the
 * dwell allows.
 */

#include "global/region_health.h"

#include <gtest/gtest.h>

namespace wsva::global {
namespace {

RegionHealthConfig
gateConfig()
{
    RegionHealthConfig cfg;
    cfg.quarantine_retry_rate = 0.5;
    cfg.readmit_retry_rate = 0.1;
    cfg.min_quarantine_seconds = 60.0;
    cfg.window_steps = 4;
    cfg.min_window_attempts = 10;
    return cfg;
}

TEST(RegionHealth, EntersQuarantineAtThreshold)
{
    RegionHealthGate gate(gateConfig());
    // Below threshold: healthy traffic, no transition.
    EXPECT_EQ(gate.observe(1.0, 2, 98),
              RegionHealthGate::Transition::None);
    EXPECT_FALSE(gate.quarantined());
    // A step with retry rate over the line trips the gate.
    EXPECT_EQ(gate.observe(2.0, 200, 10),
              RegionHealthGate::Transition::Quarantined);
    EXPECT_TRUE(gate.quarantined());
    EXPECT_EQ(gate.quarantineEntries(), 1u);
    EXPECT_DOUBLE_EQ(gate.quarantinedSince(), 2.0);
}

TEST(RegionHealth, AttemptsFloorSuppressesTheRate)
{
    // One unlucky retry on a nearly idle region must not condemn it:
    // below the attempts floor the windowed rate reads zero.
    RegionHealthGate gate(gateConfig());
    EXPECT_EQ(gate.observe(1.0, 3, 0),
              RegionHealthGate::Transition::None);
    EXPECT_FALSE(gate.quarantined());
    EXPECT_DOUBLE_EQ(gate.windowRetryRate(), 0.0);
    EXPECT_EQ(gate.windowAttempts(), 3u);
}

TEST(RegionHealth, ReadmissionNeedsBothDwellAndRecovery)
{
    RegionHealthGate gate(gateConfig());
    ASSERT_EQ(gate.observe(0.0, 100, 0),
              RegionHealthGate::Transition::Quarantined);

    // Clean steps age the bad sample out of the 4-step window: the
    // rate leg recovers fully by t=13, but the 60 s dwell has not
    // been served, so the region stays out.
    gate.observe(10.0, 0, 100);
    gate.observe(11.0, 0, 100);
    gate.observe(12.0, 0, 100);
    EXPECT_EQ(gate.observe(13.0, 0, 100),
              RegionHealthGate::Transition::None);
    EXPECT_DOUBLE_EQ(gate.windowRetryRate(), 0.0);
    EXPECT_TRUE(gate.quarantined());

    // Dwell passed — but a relapse sample keeps the windowed rate
    // above the readmit line until it ages out.
    EXPECT_EQ(gate.observe(70.0, 50, 50),
              RegionHealthGate::Transition::None);
    EXPECT_TRUE(gate.quarantined());
    gate.observe(71.0, 0, 100); // Window rate: 50/450 ≈ 0.11 > 0.1.
    gate.observe(72.0, 0, 100);
    EXPECT_EQ(gate.observe(73.0, 0, 100),
              RegionHealthGate::Transition::None);
    EXPECT_TRUE(gate.quarantined());

    // The relapse sample leaves the window; both legs now clear.
    const auto t = gate.observe(74.0, 0, 100);
    EXPECT_EQ(t, RegionHealthGate::Transition::Readmitted);
    EXPECT_FALSE(gate.quarantined());
    EXPECT_EQ(gate.readmissions(), 1u);
}

TEST(RegionHealth, DrainedIdleRegionEarnsAProbeAfterDwell)
{
    // A quarantined region that drains to silence (no attempts at
    // all) reads rate 0 below the floor; after the dwell it must be
    // re-admitted so the router can probe it — permanent exile on
    // stale data is as wrong as flapping.
    RegionHealthGate gate(gateConfig());
    ASSERT_EQ(gate.observe(0.0, 100, 0),
              RegionHealthGate::Transition::Quarantined);
    for (int s = 1; s <= 59; ++s)
        ASSERT_EQ(gate.observe(s, 0, 0),
                  RegionHealthGate::Transition::None);
    EXPECT_EQ(gate.observe(60.0, 0, 0),
              RegionHealthGate::Transition::Readmitted);
}

TEST(RegionHealth, OscillatingRegionDoesNotFlap)
{
    // A region alternating between all-retries and all-completions
    // every observation sits exactly on the threshold boundary. The
    // dwell bounds how often it can cycle: over T seconds of 1 Hz
    // observations, entries can never exceed T / dwell + 1, and
    // without the dwell this workload would flap on nearly every
    // observation.
    RegionHealthConfig cfg = gateConfig();
    cfg.window_steps = 1; // Worst case: the window *is* the last step.
    RegionHealthGate gate(cfg);

    const int horizon = 10000;
    for (int s = 0; s < horizon; ++s) {
        if (s % 2 == 0)
            gate.observe(s, 100, 0); // Black-holing.
        else
            gate.observe(s, 0, 100); // Sparkling clean.
    }
    const uint64_t max_cycles =
        static_cast<uint64_t>(horizon /
                              cfg.min_quarantine_seconds) + 1;
    EXPECT_GE(gate.quarantineEntries(), 2u); // It does oscillate...
    EXPECT_LE(gate.quarantineEntries(), max_cycles); // ...boundedly.
    EXPECT_LE(gate.readmissions(), gate.quarantineEntries());
    // Enter/exit stay paired: the gate never double-enters.
    EXPECT_GE(gate.readmissions() + 1, gate.quarantineEntries());
}

TEST(RegionHealth, WindowEvictsOldSamples)
{
    RegionHealthConfig cfg = gateConfig();
    cfg.min_window_attempts = 1;
    RegionHealthGate gate(cfg);
    gate.observe(1.0, 8, 2);
    EXPECT_DOUBLE_EQ(gate.windowRetryRate(), 0.8);
    // Four clean steps push the bad one out entirely.
    gate.observe(2.0, 0, 10);
    gate.observe(3.0, 0, 10);
    gate.observe(4.0, 0, 10);
    gate.observe(5.0, 0, 10);
    EXPECT_DOUBLE_EQ(gate.windowRetryRate(), 0.0);
    EXPECT_EQ(gate.windowAttempts(), 40u);
}

} // namespace
} // namespace wsva::global
