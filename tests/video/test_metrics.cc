#include "video/metrics.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace wsva::video {
namespace {

TEST(Mse, ZeroForIdenticalPlanes)
{
    Plane a(16, 16, 100);
    EXPECT_EQ(planeMse(a, a), 0.0);
}

TEST(Mse, KnownDifference)
{
    Plane a(4, 4, 100);
    Plane b(4, 4, 103);
    EXPECT_DOUBLE_EQ(planeMse(a, b), 9.0);
}

TEST(Psnr, InfinityCapsAt100)
{
    EXPECT_EQ(psnrFromMse(0.0), 100.0);
}

TEST(Psnr, KnownValue)
{
    // MSE 65025 = max error: PSNR 0 dB.
    EXPECT_NEAR(psnrFromMse(255.0 * 255.0), 0.0, 1e-9);
    // MSE 1 -> ~48.13 dB.
    EXPECT_NEAR(psnrFromMse(1.0), 48.13, 0.01);
}

TEST(Psnr, FrameWeightsLumaMore)
{
    Frame a(16, 16, 100);
    Frame b = a;
    // Corrupt only luma on b.
    for (auto &px : b.y().data())
        px = 110;
    const double luma_only = framePsnr(a, b);

    Frame c = a;
    for (auto &px : c.u().data())
        px = 138;
    const double chroma_only = framePsnr(a, c);
    // Same per-plane MSE (100), but luma has 4x weight.
    EXPECT_LT(luma_only, chroma_only);
}

TEST(SequencePsnr, PoolsMse)
{
    Frame a(8, 8, 100);
    Frame b(8, 8, 101);
    const double single = framePsnr(a, b);
    const double pooled = sequencePsnr({a, a}, {b, b});
    EXPECT_NEAR(single, pooled, 1e-9);
}

class BdRateTest : public testing::Test
{
  protected:
    /** Build an RD curve psnr = a + b*log10(rate). */
    static std::vector<RdPoint>
    curve(double a, double b, const std::vector<double> &rates)
    {
        std::vector<RdPoint> pts;
        for (double r : rates)
            pts.push_back({r, a + b * std::log10(r)});
        return pts;
    }
};

TEST_F(BdRateTest, IdenticalCurvesGiveZero)
{
    auto c = curve(10.0, 8.0, {1e5, 2e5, 4e5, 8e5});
    EXPECT_NEAR(bdRate(c, c), 0.0, 1e-6);
}

TEST_F(BdRateTest, HalfRateCurveGivesMinusFifty)
{
    auto anchor = curve(10.0, 8.0, {1e5, 2e5, 4e5, 8e5});
    // Same quality at half the bitrate everywhere.
    std::vector<RdPoint> test;
    for (const auto &p : anchor)
        test.push_back({p.bitrate_bps / 2.0, p.psnr_db});
    EXPECT_NEAR(bdRate(anchor, test), -50.0, 0.5);
}

TEST_F(BdRateTest, DoubleRateCurveGivesPlusHundred)
{
    auto anchor = curve(10.0, 8.0, {1e5, 2e5, 4e5, 8e5});
    std::vector<RdPoint> test;
    for (const auto &p : anchor)
        test.push_back({p.bitrate_bps * 2.0, p.psnr_db});
    EXPECT_NEAR(bdRate(anchor, test), 100.0, 1.0);
}

TEST_F(BdRateTest, AntisymmetricInArguments)
{
    auto anchor = curve(12.0, 7.5, {1e5, 2e5, 4e5, 8e5});
    auto test = curve(13.0, 7.8, {1.2e5, 2.3e5, 4.4e5, 8.1e5});
    const double fwd = bdRate(anchor, test);
    const double rev = bdRate(test, anchor);
    // (1+f)(1+r) ~= 1.
    EXPECT_NEAR((1 + fwd / 100) * (1 + rev / 100), 1.0, 0.02);
}

TEST_F(BdRateTest, RejectsTooFewPoints)
{
    auto anchor = curve(10.0, 8.0, {1e5, 2e5, 4e5});
    EXPECT_DEATH(bdRate(anchor, anchor), "at least 4");
}

TEST_F(BdRateTest, RejectsDisjointCurves)
{
    auto lo = curve(10.0, 8.0, {1e3, 2e3, 3e3, 4e3});
    auto hi = curve(80.0, 8.0, {1e6, 2e6, 3e6, 4e6});
    EXPECT_DEATH(bdRate(lo, hi), "overlap");
}

} // namespace
} // namespace wsva::video
