#include "video/scaler.h"

#include <gtest/gtest.h>

namespace wsva::video {
namespace {

TEST(Scaler, IdentityWhenSameSize)
{
    Plane p(16, 16, 50);
    p.at(3, 3) = 200;
    Plane q = scalePlane(p, 16, 16);
    EXPECT_EQ(p, q);
}

TEST(Scaler, DownscalePreservesFlatColor)
{
    Plane p(64, 64, 90);
    Plane q = scalePlane(p, 16, 16);
    for (int y = 0; y < 16; ++y)
        for (int x = 0; x < 16; ++x)
            ASSERT_EQ(q.at(x, y), 90);
}

TEST(Scaler, DownscaleAveragesBlocks)
{
    // 2x2 checkerboard of 0/255 averages to ~128 at half size.
    Plane p(4, 4);
    for (int y = 0; y < 4; ++y)
        for (int x = 0; x < 4; ++x)
            p.at(x, y) = ((x + y) % 2) ? 255 : 0;
    Plane q = scalePlane(p, 2, 2);
    for (int y = 0; y < 2; ++y)
        for (int x = 0; x < 2; ++x)
            ASSERT_NEAR(q.at(x, y), 128, 1);
}

TEST(Scaler, UpscalePreservesFlatColor)
{
    Plane p(8, 8, 33);
    Plane q = scalePlane(p, 32, 32);
    for (int y = 0; y < 32; ++y)
        for (int x = 0; x < 32; ++x)
            ASSERT_EQ(q.at(x, y), 33);
}

TEST(Scaler, FrameScaleKeepsChromaGeometry)
{
    Frame f(64, 36);
    Frame g = scaleFrame(f, 32, 18);
    EXPECT_EQ(g.width(), 32);
    EXPECT_EQ(g.height(), 18);
    EXPECT_EQ(g.u().width(), 16);
    EXPECT_EQ(g.u().height(), 9);
    EXPECT_TRUE(g.valid());
}

TEST(Scaler, NonIntegerRatioDownscale)
{
    Plane p(30, 30, 120);
    Plane q = scalePlane(p, 14, 14);
    EXPECT_EQ(q.width(), 14);
    for (int y = 0; y < 14; ++y)
        for (int x = 0; x < 14; ++x)
            ASSERT_EQ(q.at(x, y), 120);
}

TEST(ScalerDeathTest, RejectsOddFrameTarget)
{
    Frame f(32, 32);
    EXPECT_DEATH(scaleFrame(f, 15, 16), "even");
}

TEST(Ladder, StandardLadderIs16x9)
{
    for (const auto &r : standardLadder()) {
        // All rungs are even-dimensioned (4:2:0-safe).
        EXPECT_EQ(r.width % 2, 0);
        EXPECT_EQ(r.height % 2, 0);
    }
    EXPECT_EQ(standardLadder().front().height, 144);
    EXPECT_EQ(standardLadder().back().height, 4320);
}

TEST(Ladder, OutputsForInputMatchPaperExample)
{
    // "for 1080p inputs: 1080p, 720p, 480p, 360p, 240p, and 144p".
    auto outs = outputsForInput({1920, 1080});
    ASSERT_EQ(outs.size(), 6u);
    EXPECT_EQ(outs[0].height, 1080);
    EXPECT_EQ(outs[5].height, 144);
}

TEST(Ladder, TinyInputStillGetsOneOutput)
{
    auto outs = outputsForInput({100, 100});
    ASSERT_EQ(outs.size(), 1u);
    EXPECT_EQ(outs[0].height, 144);
}

TEST(Ladder, ResolutionNames)
{
    EXPECT_STREQ(resolutionName({3840, 2160}), "2160p");
    EXPECT_STREQ(resolutionName({256, 144}), "144p");
    EXPECT_STREQ(resolutionName({640, 362}), "custom");
}

} // namespace
} // namespace wsva::video
