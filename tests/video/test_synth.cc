#include "video/synth.h"

#include <gtest/gtest.h>

#include "video/metrics.h"

namespace wsva::video {
namespace {

SynthSpec
baseSpec()
{
    SynthSpec s;
    s.width = 64;
    s.height = 48;
    s.frame_count = 10;
    s.detail = 2;
    s.objects = 2;
    s.motion = 2.0;
    s.seed = 99;
    return s;
}

TEST(Synth, DeterministicForSameSeed)
{
    auto a = generateVideo(baseSpec());
    auto b = generateVideo(baseSpec());
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i)
        ASSERT_EQ(a[i], b[i]) << "frame " << i;
}

TEST(Synth, SeedChangesContent)
{
    auto a = generateVideo(baseSpec());
    SynthSpec other = baseSpec();
    other.seed = 100;
    auto b = generateVideo(other);
    EXPECT_NE(a[0], b[0]);
}

TEST(Synth, FrameAtMatchesBatch)
{
    const auto spec = baseSpec();
    auto batch = generateVideo(spec);
    for (int i = 0; i < spec.frame_count; i += 3)
        ASSERT_EQ(batch[static_cast<size_t>(i)], generateFrameAt(spec, i));
}

TEST(Synth, MotionCreatesTemporalChange)
{
    auto frames = generateVideo(baseSpec());
    EXPECT_GT(frameMse(frames[0], frames[5]), 1.0);
}

TEST(Synth, ZeroMotionZeroNoiseIsStatic)
{
    SynthSpec s = baseSpec();
    s.motion = 0.0;
    s.pan_speed = 0.0;
    s.noise_sigma = 0.0;
    s.flash_period = 0;
    auto frames = generateVideo(s);
    EXPECT_EQ(frames[0], frames[9]);
}

TEST(Synth, NoiseIncreasesFrameDifference)
{
    SynthSpec clean = baseSpec();
    clean.motion = 0;
    clean.noise_sigma = 0;
    SynthSpec noisy = clean;
    noisy.noise_sigma = 5.0;
    auto cf = generateVideo(clean);
    auto nf = generateVideo(noisy);
    EXPECT_EQ(frameMse(cf[0], cf[1]), 0.0);
    EXPECT_GT(frameMse(nf[0], nf[1]), 10.0);
}

TEST(Synth, SceneCutChangesContentAbruptly)
{
    SynthSpec s = baseSpec();
    s.scene_cut_period = 5;
    s.motion = 0.5;
    auto frames = generateVideo(s);
    const double within = frameMse(frames[3], frames[4]);
    const double across = frameMse(frames[4], frames[5]);
    EXPECT_GT(across, 4.0 * within + 1.0);
}

TEST(Synth, ScreenContentHasHighContrast)
{
    SynthSpec s = baseSpec();
    s.screen_content = true;
    s.objects = 0;
    auto f = generateFrameAt(s, 0);
    int dark = 0;
    int bright = 0;
    for (auto px : f.y().data()) {
        dark += px < 40;
        bright += px > 220;
    }
    EXPECT_GT(dark, 50);
    EXPECT_GT(bright, 50);
}

TEST(Synth, FlashBrightensFrame)
{
    SynthSpec s = baseSpec();
    s.flash_period = 4;
    s.motion = 0;
    s.objects = 0;
    auto frames = generateVideo(s);
    double mean3 = 0;
    double mean4 = 0;
    for (auto px : frames[3].y().data())
        mean3 += px;
    for (auto px : frames[4].y().data())
        mean4 += px;
    EXPECT_GT(mean4, mean3 + 30 * frames[3].y().pixelCount() / 2);
}

TEST(Synth, HigherDetailMoreTexture)
{
    SynthSpec flat = baseSpec();
    flat.detail = 0;
    flat.objects = 0;
    SynthSpec busy = flat;
    busy.detail = 3;
    auto ff = generateFrameAt(flat, 0);
    auto bf = generateFrameAt(busy, 0);
    auto variance = [](const Frame &f) {
        double sum = 0;
        double sq = 0;
        for (auto px : f.y().data()) {
            sum += px;
            sq += double(px) * px;
        }
        const double n = static_cast<double>(f.y().pixelCount());
        return sq / n - (sum / n) * (sum / n);
    };
    EXPECT_LT(variance(ff), 1.0);
    EXPECT_GT(variance(bf), 100.0);
}

} // namespace
} // namespace wsva::video
