#include "video/frame.h"

#include <gtest/gtest.h>

namespace wsva::video {
namespace {

TEST(Plane, ConstructsWithFill)
{
    Plane p(8, 4, 77);
    EXPECT_EQ(p.width(), 8);
    EXPECT_EQ(p.height(), 4);
    for (int y = 0; y < 4; ++y)
        for (int x = 0; x < 8; ++x)
            ASSERT_EQ(p.at(x, y), 77);
}

TEST(Plane, PixelAccessIsRowMajor)
{
    Plane p(4, 2);
    p.at(3, 1) = 9;
    EXPECT_EQ(p.data()[1 * 4 + 3], 9);
}

TEST(Plane, ClampedAtHandlesEdges)
{
    Plane p(4, 4);
    p.at(0, 0) = 1;
    p.at(3, 3) = 2;
    EXPECT_EQ(p.clampedAt(-5, -5), 1);
    EXPECT_EQ(p.clampedAt(10, 10), 2);
}

TEST(Plane, RowPointerMatchesAt)
{
    Plane p(6, 3);
    p.at(2, 1) = 42;
    EXPECT_EQ(p.row(1)[2], 42);
}

TEST(Frame, ChromaIsHalfResolution)
{
    Frame f(32, 16);
    EXPECT_EQ(f.u().width(), 16);
    EXPECT_EQ(f.u().height(), 8);
    EXPECT_EQ(f.v().width(), 16);
    EXPECT_EQ(f.v().height(), 8);
    EXPECT_TRUE(f.valid());
}

TEST(Frame, ChromaStartsNeutral)
{
    Frame f(8, 8);
    EXPECT_EQ(f.u().at(0, 0), 128);
    EXPECT_EQ(f.v().at(3, 3), 128);
}

TEST(Frame, PlaneIndexing)
{
    Frame f(8, 8);
    f.y().at(1, 1) = 10;
    f.u().at(1, 1) = 20;
    f.v().at(1, 1) = 30;
    EXPECT_EQ(f.plane(0).at(1, 1), 10);
    EXPECT_EQ(f.plane(1).at(1, 1), 20);
    EXPECT_EQ(f.plane(2).at(1, 1), 30);
}

TEST(Frame, PixelCountIsLumaPixels)
{
    Frame f(32, 18);
    EXPECT_EQ(f.pixelCount(), 32u * 18u);
}

TEST(Frame, EqualityComparesPixels)
{
    Frame a(8, 8, 10);
    Frame b(8, 8, 10);
    EXPECT_EQ(a, b);
    b.y().at(0, 0) = 11;
    EXPECT_NE(a, b);
}

TEST(FrameDeathTest, RejectsOddDimensions)
{
    EXPECT_DEATH(Frame(7, 8), "even");
}

TEST(RawFrameBytes, Is15BytesPerPixel)
{
    EXPECT_EQ(rawFrameBytes(3840, 2160),
              3840ull * 2160ull * 3ull / 2ull);
}

} // namespace
} // namespace wsva::video
