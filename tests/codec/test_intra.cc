#include "video/codec/intra.h"

#include <gtest/gtest.h>

namespace wsva::video::codec {
namespace {

Plane
gradientPlane()
{
    Plane p(32, 32);
    for (int y = 0; y < 32; ++y)
        for (int x = 0; x < 32; ++x)
            p.at(x, y) = static_cast<uint8_t>(4 * x + 2 * y);
    return p;
}

TEST(Intra, DcWithNoNeighborsIsMidGrey)
{
    Plane p(32, 32, 200);
    uint8_t out[64];
    intraPredict(p, 0, 0, 8, IntraMode::Dc, out);
    for (auto v : out)
        ASSERT_EQ(v, 128);
}

TEST(Intra, DcAveragesTopAndLeft)
{
    Plane p(32, 32, 0);
    // Top row = 100, left column = 200 around block at (8, 8).
    for (int i = 0; i < 8; ++i) {
        p.at(8 + i, 7) = 100;
        p.at(7, 8 + i) = 200;
    }
    uint8_t out[64];
    intraPredict(p, 8, 8, 8, IntraMode::Dc, out);
    for (auto v : out)
        ASSERT_EQ(v, 150);
}

TEST(Intra, DcTopOnlyOnFirstColumn)
{
    Plane p(32, 32, 0);
    for (int i = 0; i < 8; ++i)
        p.at(i, 7) = 60;
    uint8_t out[64];
    intraPredict(p, 0, 8, 8, IntraMode::Dc, out);
    for (auto v : out)
        ASSERT_EQ(v, 60);
}

TEST(Intra, VerticalCopiesTopRow)
{
    Plane p = gradientPlane();
    uint8_t out[64];
    intraPredict(p, 8, 8, 8, IntraMode::Vertical, out);
    for (int r = 0; r < 8; ++r)
        for (int c = 0; c < 8; ++c)
            ASSERT_EQ(out[r * 8 + c], p.at(8 + c, 7));
}

TEST(Intra, HorizontalCopiesLeftColumn)
{
    Plane p = gradientPlane();
    uint8_t out[64];
    intraPredict(p, 8, 8, 8, IntraMode::Horizontal, out);
    for (int r = 0; r < 8; ++r)
        for (int c = 0; c < 8; ++c)
            ASSERT_EQ(out[r * 8 + c], p.at(7, 8 + r));
}

TEST(Intra, TrueMotionExtendsGradient)
{
    Plane p = gradientPlane();
    uint8_t out[16 * 16];
    intraPredict(p, 16, 16, 16, IntraMode::TrueMotion, out);
    // For a perfectly linear ramp, TM prediction is exact.
    for (int r = 0; r < 16; ++r)
        for (int c = 0; c < 16; ++c)
            ASSERT_EQ(out[r * 16 + c], p.at(16 + c, 16 + r));
}

TEST(Intra, TrueMotionClampsToByteRange)
{
    Plane p(32, 32, 0);
    for (int i = 0; i < 32; ++i) {
        p.at(i, 7) = 255; // Bright top.
        p.at(7, i) = 255; // Bright left.
    }
    p.at(7, 7) = 0; // Dark corner: left + top - corner = 510.
    uint8_t out[64];
    intraPredict(p, 8, 8, 8, IntraMode::TrueMotion, out);
    for (auto v : out)
        ASSERT_EQ(v, 255);
}

TEST(Intra, WorksAt16x16)
{
    Plane p = gradientPlane();
    uint8_t out[16 * 16];
    intraPredict(p, 16, 0, 16, IntraMode::Horizontal, out);
    for (int r = 0; r < 16; ++r)
        ASSERT_EQ(out[r * 16 + 5], p.at(15, r));
}

} // namespace
} // namespace wsva::video::codec
