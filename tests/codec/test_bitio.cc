#include "video/codec/bitio.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace wsva::video::codec {
namespace {

TEST(BitIo, SingleBits)
{
    BitWriter bw;
    bw.putBit(1);
    bw.putBit(0);
    bw.putBit(1);
    auto bytes = bw.take();
    ASSERT_EQ(bytes.size(), 1u);
    EXPECT_EQ(bytes[0], 0b10100000);
}

TEST(BitIo, MultiBitValues)
{
    BitWriter bw;
    bw.putBits(0x5, 3);
    bw.putBits(0x1ff, 9);
    auto bytes = bw.take();
    BitReader br(bytes);
    EXPECT_EQ(br.getBits(3), 0x5u);
    EXPECT_EQ(br.getBits(9), 0x1ffu);
}

TEST(BitIo, RandomRoundTrip)
{
    wsva::Rng rng(5);
    std::vector<std::pair<uint32_t, int>> values;
    BitWriter bw;
    for (int i = 0; i < 2000; ++i) {
        const int width = 1 + static_cast<int>(rng.uniformInt(32));
        const uint32_t v =
            width == 32 ? rng.nextU32() : rng.nextU32() & ((1u << width) - 1);
        values.emplace_back(v, width);
        bw.putBits(v, width);
    }
    auto bytes = bw.take();
    BitReader br(bytes);
    for (const auto &[v, width] : values)
        ASSERT_EQ(br.getBits(width), v);
    EXPECT_FALSE(br.overrun());
}

TEST(BitIo, ByteAlignPadsWithZeros)
{
    BitWriter bw;
    bw.putBit(1);
    bw.byteAlign();
    EXPECT_EQ(bw.bitCount(), 8u);
    auto bytes = bw.take();
    EXPECT_EQ(bytes[0], 0x80);
}

TEST(BitIo, ReaderAlignsToByte)
{
    BitWriter bw;
    bw.putBits(0b101, 3);
    bw.byteAlign();
    bw.putBits(0xab, 8);
    auto bytes = bw.take();
    BitReader br(bytes);
    br.getBits(3);
    br.byteAlign();
    EXPECT_EQ(br.getBits(8), 0xabu);
}

TEST(BitIo, OverrunDetected)
{
    std::vector<uint8_t> one = {0xff};
    BitReader br(one);
    br.getBits(8);
    EXPECT_FALSE(br.overrun());
    br.getBit();
    EXPECT_TRUE(br.overrun());
}

TEST(BitIo, BitCountTracksExactly)
{
    BitWriter bw;
    bw.putBits(0, 13);
    EXPECT_EQ(bw.bitCount(), 13u);
}

} // namespace
} // namespace wsva::video::codec
