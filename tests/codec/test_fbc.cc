#include "video/codec/fbc.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "video/synth.h"

namespace wsva::video::codec {
namespace {

TEST(Fbc, LosslessOnFlatPlane)
{
    Plane p(128, 64, 200);
    const auto compressed = fbcCompress(p);
    EXPECT_EQ(fbcDecompress(compressed), p);
}

TEST(Fbc, LosslessOnRandomNoise)
{
    wsva::Rng rng(12);
    Plane p(96, 48);
    for (auto &px : p.data())
        px = static_cast<uint8_t>(rng.uniformInt(256));
    EXPECT_EQ(fbcDecompress(fbcCompress(p)), p);
}

TEST(Fbc, LosslessOnNaturalContent)
{
    SynthSpec spec;
    spec.width = 128;
    spec.height = 96;
    spec.frame_count = 1;
    spec.detail = 3;
    spec.objects = 3;
    spec.seed = 5;
    const Frame f = generateFrameAt(spec, 0);
    for (int i = 0; i < 3; ++i)
        EXPECT_EQ(fbcDecompress(fbcCompress(f.plane(i))), f.plane(i));
}

TEST(Fbc, LosslessOnOddDimensions)
{
    // Plane sizes that are not multiples of the 64x16 tile.
    wsva::Rng rng(13);
    Plane p(70, 23);
    for (auto &px : p.data())
        px = static_cast<uint8_t>(rng.uniformInt(256));
    EXPECT_EQ(fbcDecompress(fbcCompress(p)), p);
}

TEST(Fbc, SmoothContentCompressesWell)
{
    // The paper: reference compression halves read bandwidth. Smooth
    // reconstructed video should compress at >= 2x.
    SynthSpec spec;
    spec.width = 256;
    spec.height = 144;
    spec.frame_count = 1;
    spec.detail = 2;
    spec.objects = 2;
    spec.seed = 21;
    const Frame f = generateFrameAt(spec, 0);
    EXPECT_GT(fbcRatio(f.y()), 2.0);
}

TEST(Fbc, RandomNoiseDoesNotCompress)
{
    wsva::Rng rng(14);
    Plane p(128, 64);
    for (auto &px : p.data())
        px = static_cast<uint8_t>(rng.uniformInt(256));
    EXPECT_LT(fbcRatio(p), 1.05);
}

TEST(Fbc, FrameRatioAggregatesPlanes)
{
    SynthSpec spec;
    spec.width = 128;
    spec.height = 96;
    spec.frame_count = 1;
    spec.detail = 1;
    spec.seed = 22;
    const Frame f = generateFrameAt(spec, 0);
    const double ratio = fbcFrameRatio(f);
    EXPECT_GT(ratio, 1.5);
    EXPECT_LT(ratio, 64.0);
}

TEST(Fbc, HardwareRatioCappedAtTwo)
{
    // Highly compressible content: entropy ratio far above 2, but
    // the compartmented hardware layout realizes exactly 2x.
    Frame flat(128, 64, 180);
    EXPECT_GT(fbcFrameRatio(flat), 3.0);
    EXPECT_NEAR(fbcHardwareRatio(flat), 2.0, 1e-9);
}

TEST(Fbc, HardwareRatioFollowsEntropyWhenPoor)
{
    wsva::Rng rng(31);
    Frame noise(128, 64);
    for (int p = 0; p < 3; ++p)
        for (auto &px : noise.plane(p).data())
            px = static_cast<uint8_t>(rng.uniformInt(256));
    const double hw = fbcHardwareRatio(noise);
    EXPECT_LT(hw, 1.1); // Incompressible blocks are stored raw.
    EXPECT_GE(hw, 0.99);
}

TEST(FbcDeathTest, TruncatedPayloadDetected)
{
    Plane p(64, 16, 100);
    auto compressed = fbcCompress(p);
    compressed.payload.resize(compressed.payload.size() / 4);
    EXPECT_DEATH(fbcDecompress(compressed), "truncated");
}

} // namespace
} // namespace wsva::video::codec
