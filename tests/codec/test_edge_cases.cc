/**
 * @file
 * Codec edge cases and robustness: extreme content, extreme
 * parameters, minimum sizes, and deterministic corruption fuzzing.
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "video/codec/decoder.h"
#include "video/codec/encoder.h"
#include "video/metrics.h"
#include "video/synth.h"

namespace wsva::video::codec {
namespace {

EncoderConfig
cfgFor(int w, int h, CodecType codec = CodecType::VP9)
{
    EncoderConfig cfg;
    cfg.codec = codec;
    cfg.width = w;
    cfg.height = h;
    cfg.base_qp = 32;
    cfg.gop_length = 8;
    return cfg;
}

TEST(EdgeCases, SingleFrameClip)
{
    Frame f(64, 48, 90);
    auto chunk = encodeSequence(cfgFor(64, 48), {f});
    auto decoded = decodeChunkOrDie(chunk.bytes);
    ASSERT_EQ(decoded.frames.size(), 1u);
    EXPECT_GT(framePsnr(f, decoded.frames[0]), 35.0);
}

TEST(EdgeCases, MinimumMacroblockSize)
{
    // One macroblock exactly.
    std::vector<Frame> clip(3, Frame(16, 16, 100));
    clip[1].y().at(8, 8) = 200;
    auto chunk = encodeSequence(cfgFor(16, 16), clip);
    auto decoded = decodeChunkOrDie(chunk.bytes);
    EXPECT_EQ(decoded.frames.size(), 3u);
}

TEST(EdgeCases, TinyOddDimensions)
{
    // 18x10: padded to 32x16 internally, cropped on output.
    std::vector<Frame> clip(2, Frame(18, 10, 70));
    auto chunk = encodeSequence(cfgFor(18, 10), clip);
    auto decoded = decodeChunkOrDie(chunk.bytes);
    ASSERT_EQ(decoded.frames.size(), 2u);
    EXPECT_EQ(decoded.frames[0].width(), 18);
    EXPECT_EQ(decoded.frames[0].height(), 10);
}

TEST(EdgeCases, AllBlackAndAllWhite)
{
    std::vector<Frame> clip;
    clip.emplace_back(48, 32, 0);
    clip.emplace_back(48, 32, 255);
    clip.emplace_back(48, 32, 0);
    auto chunk = encodeSequence(cfgFor(48, 32), clip);
    auto decoded = decodeChunkOrDie(chunk.bytes);
    ASSERT_EQ(decoded.frames.size(), 3u);
    // Flat frames should be near-perfect at moderate qp.
    EXPECT_GT(framePsnr(clip[0], decoded.frames[0]), 45.0);
    EXPECT_GT(framePsnr(clip[1], decoded.frames[1]), 45.0);
}

TEST(EdgeCases, ExtremeQps)
{
    SynthSpec spec;
    spec.width = 48;
    spec.height = 32;
    spec.frame_count = 4;
    spec.detail = 2;
    spec.seed = 9;
    auto clip = generateVideo(spec);
    for (int qp : {0, 63}) {
        EncoderConfig cfg = cfgFor(48, 32);
        cfg.base_qp = qp;
        auto chunk = encodeSequence(cfg, clip);
        auto decoded = decodeChunk(chunk.bytes);
        ASSERT_TRUE(decoded.has_value()) << "qp " << qp;
        EXPECT_EQ(decoded->frames.size(), clip.size());
    }
}

TEST(EdgeCases, NearLosslessAtQpZero)
{
    SynthSpec spec;
    spec.width = 48;
    spec.height = 32;
    spec.frame_count = 3;
    spec.detail = 2;
    spec.seed = 10;
    auto clip = generateVideo(spec);
    EncoderConfig cfg = cfgFor(48, 32);
    cfg.base_qp = 0;
    auto decoded = decodeChunkOrDie(encodeSequence(cfg, clip).bytes);
    EXPECT_GT(sequencePsnr(clip, decoded.frames), 46.0);
}

TEST(EdgeCases, HighMotionExceedsSearchRange)
{
    // Objects moving faster than the search window: encoder must
    // still produce a correct (if less efficient) stream.
    SynthSpec spec;
    spec.width = 96;
    spec.height = 64;
    spec.frame_count = 6;
    spec.detail = 2;
    spec.objects = 3;
    spec.motion = 30.0; // Far beyond +-16 integer search.
    spec.seed = 11;
    auto clip = generateVideo(spec);
    auto chunk = encodeSequence(cfgFor(96, 64), clip);
    auto decoded = decodeChunkOrDie(chunk.bytes);
    EXPECT_GT(sequencePsnr(clip, decoded.frames), 25.0);
}

TEST(EdgeCases, SceneCutMidGop)
{
    SynthSpec spec;
    spec.width = 64;
    spec.height = 48;
    spec.frame_count = 8;
    spec.detail = 2;
    spec.scene_cut_period = 4; // Cut inside the GOP.
    spec.seed = 12;
    auto clip = generateVideo(spec);
    auto chunk = encodeSequence(cfgFor(64, 48), clip);
    auto decoded = decodeChunkOrDie(chunk.bytes);
    EXPECT_GT(sequencePsnr(clip, decoded.frames), 28.0);
}

TEST(EdgeCases, GopLengthOne)
{
    // All-intra stream.
    SynthSpec spec;
    spec.width = 48;
    spec.height = 32;
    spec.frame_count = 4;
    spec.seed = 13;
    auto clip = generateVideo(spec);
    EncoderConfig cfg = cfgFor(48, 32);
    cfg.gop_length = 1;
    auto chunk = encodeSequence(cfg, clip);
    for (const auto &f : chunk.frames)
        EXPECT_EQ(f.type, FrameType::Key);
    EXPECT_EQ(decodeChunkOrDie(chunk.bytes).frames.size(), 4u);
}

TEST(EdgeCases, TruncationFuzzNeverCrashes)
{
    SynthSpec spec;
    spec.width = 48;
    spec.height = 32;
    spec.frame_count = 4;
    spec.seed = 14;
    auto clip = generateVideo(spec);
    auto chunk = encodeSequence(cfgFor(48, 32), clip);
    // Every truncation point must be rejected or decoded, not crash.
    for (size_t len = 0; len < chunk.bytes.size();
         len += std::max<size_t>(1, chunk.bytes.size() / 64)) {
        std::vector<uint8_t> cut(chunk.bytes.begin(),
                                 chunk.bytes.begin() +
                                     static_cast<long>(len));
        auto decoded = decodeChunk(cut);
        (void)decoded;
    }
    SUCCEED();
}

TEST(EdgeCases, BitFlipFuzzNeverCrashes)
{
    SynthSpec spec;
    spec.width = 48;
    spec.height = 32;
    spec.frame_count = 3;
    spec.seed = 15;
    auto clip = generateVideo(spec);
    auto chunk = encodeSequence(cfgFor(48, 32), clip);
    wsva::Rng rng(16);
    for (int trial = 0; trial < 48; ++trial) {
        auto bytes = chunk.bytes;
        // Flip a few random bits in the payload area.
        for (int f = 0; f < 4; ++f) {
            const auto pos = 15 + rng.uniformInt(
                static_cast<uint32_t>(bytes.size() - 15));
            bytes[pos] ^= static_cast<uint8_t>(1u << rng.uniformInt(8));
        }
        auto decoded = decodeChunk(bytes);
        (void)decoded; // Either result is fine; crashing is not.
    }
    SUCCEED();
}

TEST(EdgeCases, H264AndVp9StreamsAreDistinct)
{
    SynthSpec spec;
    spec.width = 48;
    spec.height = 32;
    spec.frame_count = 3;
    spec.seed = 17;
    auto clip = generateVideo(spec);
    auto h264 = encodeSequence(cfgFor(48, 32, CodecType::H264), clip);
    auto vp9 = encodeSequence(cfgFor(48, 32, CodecType::VP9), clip);
    EXPECT_NE(h264.bytes, vp9.bytes);
    EXPECT_EQ(decodeChunkOrDie(h264.bytes).codec, CodecType::H264);
    EXPECT_EQ(decodeChunkOrDie(vp9.bytes).codec, CodecType::VP9);
}

TEST(EdgeCases, LongGopDriftStaysBounded)
{
    // 30 inter frames referencing each other: reconstruction drift
    // would show as collapsing PSNR at the GOP tail.
    SynthSpec spec;
    spec.width = 64;
    spec.height = 48;
    spec.frame_count = 31;
    spec.detail = 2;
    spec.objects = 1;
    spec.motion = 1.0;
    spec.seed = 18;
    auto clip = generateVideo(spec);
    EncoderConfig cfg = cfgFor(64, 48);
    cfg.gop_length = 31;
    cfg.base_qp = 28;
    auto decoded = decodeChunkOrDie(encodeSequence(cfg, clip).bytes);
    const double head = framePsnr(clip[1], decoded.frames[1]);
    const double tail = framePsnr(clip[30], decoded.frames[30]);
    EXPECT_GT(tail, head - 6.0);
}

} // namespace
} // namespace wsva::video::codec
