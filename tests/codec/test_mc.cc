#include "video/codec/mc.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace wsva::video::codec {
namespace {

Plane
randomPlane(int w, int h, uint64_t seed)
{
    wsva::Rng rng(seed);
    Plane p(w, h);
    for (auto &px : p.data())
        px = static_cast<uint8_t>(rng.uniformInt(256));
    return p;
}

TEST(Mc, IntegerMvIsPlainCopy)
{
    Plane p = randomPlane(64, 64, 1);
    uint8_t out[16 * 16];
    motionCompensate(p, 16, 16, 16, Mv{4, -6}, out); // +2, -3 int pel.
    for (int r = 0; r < 16; ++r)
        for (int c = 0; c < 16; ++c)
            ASSERT_EQ(out[r * 16 + c], p.at(16 + c + 2, 16 + r - 3));
}

TEST(Mc, HalfPelHorizontalAverages)
{
    Plane p = randomPlane(64, 64, 2);
    uint8_t out[8 * 8];
    motionCompensate(p, 16, 16, 8, Mv{1, 0}, out);
    for (int r = 0; r < 8; ++r) {
        for (int c = 0; c < 8; ++c) {
            const int expect =
                (p.at(16 + c, 16 + r) + p.at(17 + c, 16 + r) + 1) >> 1;
            ASSERT_EQ(out[r * 8 + c], expect);
        }
    }
}

TEST(Mc, HalfPelVerticalAverages)
{
    Plane p = randomPlane(64, 64, 3);
    uint8_t out[8 * 8];
    motionCompensate(p, 16, 16, 8, Mv{0, 1}, out);
    for (int r = 0; r < 8; ++r) {
        for (int c = 0; c < 8; ++c) {
            const int expect =
                (p.at(16 + c, 16 + r) + p.at(16 + c, 17 + r) + 1) >> 1;
            ASSERT_EQ(out[r * 8 + c], expect);
        }
    }
}

TEST(Mc, HalfPelDiagonalAveragesFour)
{
    Plane p = randomPlane(64, 64, 4);
    uint8_t out[8 * 8];
    motionCompensate(p, 8, 8, 8, Mv{1, 1}, out);
    for (int r = 0; r < 8; ++r) {
        for (int c = 0; c < 8; ++c) {
            const int expect =
                (p.at(8 + c, 8 + r) + p.at(9 + c, 8 + r) +
                 p.at(8 + c, 9 + r) + p.at(9 + c, 9 + r) + 2) >> 2;
            ASSERT_EQ(out[r * 8 + c], expect);
        }
    }
}

TEST(Mc, NegativeHalfPelComponents)
{
    Plane p = randomPlane(64, 64, 5);
    uint8_t out[8 * 8];
    // -3 half-pel = -2 int with a +0.5 fraction under our convention
    // (shift divides toward negative infinity via >>).
    motionCompensate(p, 16, 16, 8, Mv{-3, 0}, out);
    for (int r = 0; r < 8; ++r) {
        for (int c = 0; c < 8; ++c) {
            const int base_x = 16 + c - 2;
            const int expect =
                (p.at(base_x, 16 + r) + p.at(base_x + 1, 16 + r) + 1) >> 1;
            ASSERT_EQ(out[r * 8 + c], expect);
        }
    }
}

TEST(Mc, OutOfBoundsClampsToEdge)
{
    Plane p(32, 32, 0);
    for (int y = 0; y < 32; ++y)
        p.at(0, y) = 200;
    uint8_t out[8 * 8];
    motionCompensate(p, 0, 0, 8, Mv{-32, 0}, out);
    for (int r = 0; r < 8; ++r)
        ASSERT_EQ(out[r * 8 + 0], 200);
}

TEST(Mc, ExtractBlockInterior)
{
    Plane p = randomPlane(32, 32, 6);
    uint8_t out[8 * 8];
    extractBlock(p, 4, 4, 8, out);
    for (int r = 0; r < 8; ++r)
        for (int c = 0; c < 8; ++c)
            ASSERT_EQ(out[r * 8 + c], p.at(4 + c, 4 + r));
}

TEST(Mc, ExtractBlockEdgeReplicates)
{
    Plane p = randomPlane(16, 16, 7);
    uint8_t out[8 * 8];
    extractBlock(p, 12, 12, 8, out);
    EXPECT_EQ(out[7 * 8 + 7], p.at(15, 15));
}

TEST(Mc, SadZeroForIdenticalBlocks)
{
    Plane p = randomPlane(32, 32, 8);
    EXPECT_EQ(sadAt(p, p, 8, 8, 16, 0, 0), 0u);
}

TEST(Mc, SadMatchesManualComputation)
{
    Plane a(8, 8, 10);
    Plane b(8, 8, 13);
    uint8_t ba[64];
    uint8_t bb[64];
    extractBlock(a, 0, 0, 8, ba);
    extractBlock(b, 0, 0, 8, bb);
    EXPECT_EQ(blockSad(ba, bb, 8), 64u * 3u);
    EXPECT_EQ(blockSse(ba, bb, 8), 64u * 9u);
}

TEST(Mc, SadAtAgreesWithExtractedBlocks)
{
    Plane src = randomPlane(64, 64, 9);
    Plane ref = randomPlane(64, 64, 10);
    uint8_t bs[256];
    uint8_t br[256];
    extractBlock(src, 16, 16, 16, bs);
    extractBlock(ref, 19, 14, 16, br);
    EXPECT_EQ(sadAt(src, ref, 16, 16, 16, 3, -2), blockSad(bs, br, 16));
}

} // namespace
} // namespace wsva::video::codec
