#include "video/codec/entropy.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace wsva::video::codec {
namespace {

/** Round-trip a mixed symbol script through a writer/reader pair. */
struct Symbol
{
    enum Kind { Bit, UInt, SInt, Literal } kind;
    int ctx;
    int64_t value;
    int width; // For literals.
};

std::vector<Symbol>
randomScript(uint64_t seed, int count)
{
    wsva::Rng rng(seed);
    std::vector<Symbol> script;
    for (int i = 0; i < count; ++i) {
        Symbol s{};
        s.ctx = static_cast<int>(rng.uniformInt(kNumSyntaxCtx));
        switch (rng.uniformInt(4)) {
          case 0:
            s.kind = Symbol::Bit;
            s.value = rng.uniformInt(2);
            break;
          case 1:
            s.kind = Symbol::UInt;
            s.value = rng.nextU32() >> (8 + rng.uniformInt(20));
            break;
          case 2:
            s.kind = Symbol::SInt;
            s.value = rng.uniformRange(-5000, 5000);
            break;
          default:
            s.kind = Symbol::Literal;
            s.width = 1 + static_cast<int>(rng.uniformInt(16));
            s.value = rng.nextU32() & ((1u << s.width) - 1);
            break;
        }
        script.push_back(s);
    }
    return script;
}

void
writeScript(SyntaxWriter &w, const std::vector<Symbol> &script)
{
    for (const auto &s : script) {
        switch (s.kind) {
          case Symbol::Bit:
            w.writeBit(s.ctx, static_cast<int>(s.value));
            break;
          case Symbol::UInt:
            w.writeUInt(s.ctx, static_cast<uint32_t>(s.value));
            break;
          case Symbol::SInt:
            w.writeSInt(s.ctx, static_cast<int32_t>(s.value));
            break;
          case Symbol::Literal:
            w.writeLiteral(static_cast<uint32_t>(s.value), s.width);
            break;
        }
    }
}

void
checkScript(SyntaxReader &r, const std::vector<Symbol> &script)
{
    for (const auto &s : script) {
        switch (s.kind) {
          case Symbol::Bit:
            ASSERT_EQ(r.readBit(s.ctx), s.value);
            break;
          case Symbol::UInt:
            ASSERT_EQ(r.readUInt(s.ctx),
                      static_cast<uint32_t>(s.value));
            break;
          case Symbol::SInt:
            ASSERT_EQ(r.readSInt(s.ctx),
                      static_cast<int32_t>(s.value));
            break;
          case Symbol::Literal:
            ASSERT_EQ(r.readLiteral(s.width),
                      static_cast<uint32_t>(s.value));
            break;
        }
    }
}

class SyntaxRoundTrip : public testing::TestWithParam<uint64_t>
{
};

TEST_P(SyntaxRoundTrip, Golomb)
{
    auto script = randomScript(GetParam(), 3000);
    GolombSyntaxWriter writer;
    writeScript(writer, script);
    auto bytes = writer.finish();
    GolombSyntaxReader reader(bytes.data(), bytes.size());
    checkScript(reader, script);
    EXPECT_FALSE(reader.overrun());
}

TEST_P(SyntaxRoundTrip, Arith)
{
    auto script = randomScript(GetParam(), 3000);
    EntropyModel enc_model;
    ArithSyntaxWriter writer(enc_model);
    writeScript(writer, script);
    auto bytes = writer.finish();

    EntropyModel dec_model;
    ArithSyntaxReader reader(dec_model, bytes.data(), bytes.size());
    checkScript(reader, script);
}

TEST_P(SyntaxRoundTrip, ArithAcrossAdaptation)
{
    // Write two "frames" with adapt() between them; reader must stay
    // in sync by adapting from its own decoded counts.
    auto frame1 = randomScript(GetParam() * 3 + 1, 2000);
    auto frame2 = randomScript(GetParam() * 3 + 2, 2000);

    EntropyModel enc_model;
    ArithSyntaxWriter w1(enc_model);
    writeScript(w1, frame1);
    auto b1 = w1.finish();
    enc_model.adapt();
    ArithSyntaxWriter w2(enc_model);
    writeScript(w2, frame2);
    auto b2 = w2.finish();

    EntropyModel dec_model;
    ArithSyntaxReader r1(dec_model, b1.data(), b1.size());
    checkScript(r1, frame1);
    dec_model.adapt();
    ArithSyntaxReader r2(dec_model, b2.data(), b2.size());
    checkScript(r2, frame2);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SyntaxRoundTrip,
                         testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

TEST(EntropyModel, AdaptationMovesTowardObservation)
{
    EntropyModel m;
    const Prob before = m.prob(kCtxSkip, 0);
    for (int i = 0; i < 100; ++i)
        m.record(kCtxSkip, 0, 0); // Only zeros observed.
    m.adapt();
    EXPECT_GT(m.prob(kCtxSkip, 0), before);
}

TEST(EntropyModel, FewSamplesDoNotAdapt)
{
    EntropyModel m;
    const Prob before = m.prob(kCtxMvdX, 0);
    for (int i = 0; i < 3; ++i)
        m.record(kCtxMvdX, 0, 1);
    m.adapt();
    EXPECT_EQ(m.prob(kCtxMvdX, 0), before);
}

TEST(EntropyModel, ResetRestoresDefaults)
{
    EntropyModel m;
    for (int i = 0; i < 1000; ++i)
        m.record(kCtxSkip, 0, 1);
    m.adapt();
    EntropyModel fresh;
    m.reset();
    EXPECT_EQ(m.prob(kCtxSkip, 0), fresh.prob(kCtxSkip, 0));
}

TEST(EntropyModel, ProbabilitiesStayInRange)
{
    EntropyModel m;
    for (int round = 0; round < 50; ++round) {
        for (int i = 0; i < 10000; ++i)
            m.record(kCtxCbf, 0, 1);
        m.adapt();
    }
    EXPECT_GE(m.prob(kCtxCbf, 0), 1);
    EXPECT_LE(m.prob(kCtxCbf, 0), 255);
}

TEST(Entropy, AdaptiveBeatsStaticOnSkewedData)
{
    // A stream of mostly-zero UInts: the arithmetic profile should
    // compress it better than Exp-Golomb once adapted.
    wsva::Rng rng(77);
    std::vector<uint32_t> values;
    for (int i = 0; i < 20000; ++i)
        values.push_back(rng.bernoulli(0.9) ? 0 : rng.uniformInt(4));

    GolombSyntaxWriter gw;
    for (auto v : values)
        gw.writeUInt(kCtxMvdX, v);
    const auto golomb_size = gw.finish().size();

    // Arith side adapts at "frame" boundaries, as in the codec.
    EntropyModel model;
    size_t arith_size = 0;
    constexpr size_t kFrame = 2000;
    for (size_t start = 0; start < values.size(); start += kFrame) {
        ArithSyntaxWriter aw(model);
        for (size_t i = start;
             i < std::min(values.size(), start + kFrame); ++i) {
            aw.writeUInt(kCtxMvdX, values[i]);
        }
        arith_size += aw.finish().size();
        model.adapt();
    }

    EXPECT_LT(static_cast<double>(arith_size),
              0.8 * static_cast<double>(golomb_size));
}

TEST(Entropy, CoeffBandCoversAllPositions)
{
    for (int pos = 0; pos < 64; ++pos) {
        const int band = coeffBand(pos);
        ASSERT_GE(band, 0);
        ASSERT_LT(band, 5);
    }
    EXPECT_EQ(coeffBand(0), 0);
    EXPECT_EQ(coeffBand(63), 4);
}

} // namespace
} // namespace wsva::video::codec
