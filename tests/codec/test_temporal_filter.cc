#include "video/codec/temporal_filter.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "video/metrics.h"
#include "video/synth.h"

namespace wsva::video::codec {
namespace {

std::vector<Frame>
noisyStaticClip(int n, double sigma, uint64_t seed)
{
    SynthSpec spec;
    spec.width = 64;
    spec.height = 48;
    spec.frame_count = n;
    spec.detail = 2;
    spec.objects = 0;
    spec.motion = 0;
    spec.noise_sigma = sigma;
    spec.seed = seed;
    return generateVideo(spec);
}

std::vector<Frame>
cleanStaticClip(int n, uint64_t seed)
{
    return noisyStaticClip(n, 0.0, seed);
}

TEST(TemporalFilter, ReducesNoiseOnStaticContent)
{
    auto clean = cleanStaticClip(5, 31);
    auto noisy = noisyStaticClip(5, 6.0, 31);
    const Frame filtered = temporalFilter(noisy, 2, 2, 1);
    const double before = frameMse(clean[2], noisy[2]);
    const double after = frameMse(clean[2], filtered);
    EXPECT_LT(after, 0.7 * before);
}

TEST(TemporalFilter, MoreIterationsFilterMore)
{
    auto clean = cleanStaticClip(7, 37);
    auto noisy = noisyStaticClip(7, 6.0, 37);
    const Frame one = temporalFilter(noisy, 3, 2, 1);
    const Frame three = temporalFilter(noisy, 3, 2, 3);
    EXPECT_LT(frameMse(clean[3], three), frameMse(clean[3], one));
}

TEST(TemporalFilter, ZeroStrengthIsIdentity)
{
    auto noisy = noisyStaticClip(3, 5.0, 5);
    const Frame out = temporalFilter(noisy, 1, 0, 1);
    EXPECT_EQ(out, noisy[1]);
}

TEST(TemporalFilter, SingleFrameClipIsIdentity)
{
    auto clip = noisyStaticClip(1, 5.0, 6);
    const Frame out = temporalFilter(clip, 0, 2, 1);
    EXPECT_EQ(out, clip[0]);
}

TEST(TemporalFilter, AlignsMovingContent)
{
    // Moving object, no noise: filtering must not smear the object
    // (motion alignment or rejection should keep MSE small).
    SynthSpec spec;
    spec.width = 64;
    spec.height = 48;
    spec.frame_count = 5;
    spec.detail = 1;
    spec.objects = 1;
    spec.motion = 4.0;
    spec.seed = 77;
    auto frames = generateVideo(spec);
    const Frame filtered = temporalFilter(frames, 2, 2, 1);
    EXPECT_LT(frameMse(frames[2], filtered), 12.0);
}

TEST(TemporalFilter, EdgeCentersUseAvailableNeighbors)
{
    auto noisy = noisyStaticClip(4, 5.0, 8);
    // Center at 0 (no previous) and at the last frame (no next) must
    // not crash and should still filter somewhat.
    const Frame first = temporalFilter(noisy, 0, 2, 1);
    const Frame last = temporalFilter(noisy, 3, 2, 1);
    EXPECT_NE(first, noisy[0]);
    EXPECT_NE(last, noisy[3]);
}

TEST(TemporalFilter, ChromaPassesThrough)
{
    auto noisy = noisyStaticClip(3, 5.0, 9);
    const Frame out = temporalFilter(noisy, 1, 2, 1);
    // The filter is luma-only (as is the quality-critical path).
    EXPECT_EQ(out.u(), noisy[1].u());
    EXPECT_EQ(out.v(), noisy[1].v());
}

} // namespace
} // namespace wsva::video::codec
