#include "video/codec/rate_control.h"

#include <gtest/gtest.h>

#include "video/synth.h"

namespace wsva::video::codec {
namespace {

std::vector<Frame>
clipWithCut(int n)
{
    SynthSpec spec;
    spec.width = 64;
    spec.height = 48;
    spec.frame_count = n;
    spec.detail = 2;
    spec.objects = 2;
    spec.motion = 2.0;
    spec.scene_cut_period = n / 2;
    spec.seed = 3;
    return generateVideo(spec);
}

TEST(FirstPass, ProducesOneEntryPerFrame)
{
    auto frames = clipWithCut(12);
    auto stats = runFirstPass(frames);
    EXPECT_EQ(stats.size(), frames.size());
}

TEST(FirstPass, DetectsSceneCut)
{
    auto frames = clipWithCut(12);
    auto stats = runFirstPass(frames);
    EXPECT_TRUE(stats[6].scene_cut);
    EXPECT_FALSE(stats[3].scene_cut);
    EXPECT_FALSE(stats[0].scene_cut); // First frame has no previous.
}

TEST(FirstPass, StaticContentHasLowInterCost)
{
    SynthSpec spec;
    spec.width = 64;
    spec.height = 48;
    spec.frame_count = 4;
    spec.detail = 2;
    spec.objects = 0;
    spec.motion = 0;
    spec.seed = 8;
    auto stats = runFirstPass(generateVideo(spec));
    EXPECT_LT(stats[2].inter_cost, 0.5);
    EXPECT_GT(stats[2].intra_cost, stats[2].inter_cost);
}

EncoderConfig
rcConfig(RcMode mode, double bitrate)
{
    EncoderConfig cfg;
    cfg.width = 320;
    cfg.height = 180;
    cfg.fps = 30.0;
    cfg.rc_mode = mode;
    cfg.target_bitrate_bps = bitrate;
    cfg.gop_length = 30;
    return cfg;
}

FirstPassStats
uniformStats(int n, double complexity)
{
    FirstPassStats stats(static_cast<size_t>(n));
    for (auto &s : stats) {
        s.intra_cost = complexity * 2;
        s.inter_cost = complexity;
        s.complexity = complexity;
    }
    return stats;
}

TEST(RateController, ConstQpIsConstant)
{
    EncoderConfig cfg = rcConfig(RcMode::ConstQp, 0);
    cfg.base_qp = 40;
    RateController rc(cfg, {}, {true, 1.5, 0.7});
    EXPECT_EQ(rc.pickQp(5, FrameType::Inter), 40);
    EXPECT_EQ(rc.pickQp(0, FrameType::Key), 36);
    EXPECT_EQ(rc.pickQp(7, FrameType::AltRef), 34);
}

TEST(RateController, HigherBitrateLowersQp)
{
    auto stats = uniformStats(30, 6.0);
    RateController lo(rcConfig(RcMode::TwoPassOffline, 2e5), stats,
                      {true, 1.5, 0.7});
    RateController hi(rcConfig(RcMode::TwoPassOffline, 2e6), stats,
                      {true, 1.5, 0.7});
    EXPECT_GT(lo.pickQp(1, FrameType::Inter),
              hi.pickQp(1, FrameType::Inter));
}

TEST(RateController, AdaptsRateModelFromOutcomes)
{
    auto stats = uniformStats(60, 6.0);
    RateController rc(rcConfig(RcMode::TwoPassOffline, 5e5), stats,
                      {true, 1.5, 0.7});
    const int qp0 = rc.pickQp(1, FrameType::Inter);
    // Frames come out 4x bigger than the model expected: QP must rise.
    for (int i = 1; i < 20; ++i) {
        const int qp = rc.pickQp(i, FrameType::Inter);
        rc.onFrameEncoded(i, FrameType::Inter, qp, 4.0 * 5e5 / 30.0);
    }
    EXPECT_GT(rc.pickQp(21, FrameType::Inter), qp0);
}

TEST(RateController, OverdraftRaisesQp)
{
    auto stats = uniformStats(60, 6.0);
    RateController rc(rcConfig(RcMode::TwoPassOffline, 5e5), stats,
                      {false, 1.5, 0.7}); // No model adaptation.
    const int qp0 = rc.pickQp(1, FrameType::Inter);
    for (int i = 1; i < 20; ++i)
        rc.onFrameEncoded(i, FrameType::Inter, qp0, 3.0 * 5e5 / 30.0);
    // Buffer is deeply overdrawn; target shrinks, qp rises.
    EXPECT_GT(rc.pickQp(21, FrameType::Inter), qp0);
}

TEST(RateController, ComplexFramesGetMoreBits)
{
    // Two-pass offline: a frame with 4x complexity should receive a
    // lower qp than its easy neighbors... but a higher qp than it
    // would at uniform complexity is also acceptable; what must hold
    // is monotonicity of the allocation weight. We check via qp:
    FirstPassStats stats = uniformStats(30, 4.0);
    stats[10].complexity = 16.0;
    RateController rc(rcConfig(RcMode::TwoPassOffline, 5e5), stats,
                      {true, 1.5, 0.7});
    const int qp_easy = rc.pickQp(5, FrameType::Inter);
    const int qp_hard = rc.pickQp(10, FrameType::Inter);
    // Hard frame gets more bits, but sublinearly (exponent 0.7), so
    // its qp is not lower than the easy frame's.
    EXPECT_GE(qp_hard, qp_easy);
}

TEST(RateController, KeyframeBoostLowersKeyQp)
{
    auto stats = uniformStats(30, 6.0);
    RateController rc(rcConfig(RcMode::TwoPassOffline, 5e5), stats,
                      {true, 2.0, 0.7});
    EXPECT_LE(rc.pickQp(0, FrameType::Key),
              rc.pickQp(1, FrameType::Inter));
}

TEST(RateController, LaggedUsesBoundedWindow)
{
    // Complexity spike far in the future must not affect the current
    // frame under lagged RC with a short window.
    FirstPassStats flat = uniformStats(100, 4.0);
    FirstPassStats spiky = flat;
    for (int i = 50; i < 100; ++i)
        spiky[static_cast<size_t>(i)].complexity = 40.0;
    EncoderConfig cfg = rcConfig(RcMode::TwoPassLagged, 5e5);
    cfg.lag_frames = 8;
    RateController a(cfg, flat, {true, 1.5, 0.7});
    RateController b(cfg, spiky, {true, 1.5, 0.7});
    EXPECT_EQ(a.pickQp(2, FrameType::Inter), b.pickQp(2, FrameType::Inter));
}

TEST(RateControllerDeathTest, TwoPassRequiresStats)
{
    EXPECT_DEATH(RateController(rcConfig(RcMode::TwoPassOffline, 5e5), {},
                                {true, 1.5, 0.7}),
                 "stats");
}

TEST(RateControllerDeathTest, BitrateRequired)
{
    EXPECT_DEATH(RateController(rcConfig(RcMode::OnePass, 0), {},
                                {true, 1.5, 0.7}),
                 "bitrate");
}

} // namespace
} // namespace wsva::video::codec
