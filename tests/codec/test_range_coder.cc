#include "video/codec/range_coder.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"

namespace wsva::video::codec {
namespace {

TEST(RangeCoder, RoundTripFairBits)
{
    wsva::Rng rng(1);
    std::vector<int> bits;
    RangeEncoder enc;
    for (int i = 0; i < 10000; ++i) {
        const int b = static_cast<int>(rng.uniformInt(2));
        bits.push_back(b);
        enc.encodeBit(128, b);
    }
    auto bytes = enc.finish();
    RangeDecoder dec(bytes);
    for (int b : bits)
        ASSERT_EQ(dec.decodeBit(128), b);
}

TEST(RangeCoder, RoundTripSkewedBits)
{
    wsva::Rng rng(2);
    for (Prob p : {Prob(1), Prob(10), Prob(128), Prob(245), Prob(255)}) {
        std::vector<int> bits;
        RangeEncoder enc;
        for (int i = 0; i < 5000; ++i) {
            const int b = rng.bernoulli(1.0 - p / 256.0) ? 1 : 0;
            bits.push_back(b);
            enc.encodeBit(p, b);
        }
        auto bytes = enc.finish();
        RangeDecoder dec(bytes);
        for (int b : bits)
            ASSERT_EQ(dec.decodeBit(p), b) << "prob " << int(p);
    }
}

TEST(RangeCoder, RoundTripVaryingProbabilities)
{
    wsva::Rng rng(3);
    std::vector<std::pair<Prob, int>> symbols;
    RangeEncoder enc;
    for (int i = 0; i < 20000; ++i) {
        const Prob p = static_cast<Prob>(1 + rng.uniformInt(255));
        const int b = static_cast<int>(rng.uniformInt(2));
        symbols.emplace_back(p, b);
        enc.encodeBit(p, b);
    }
    auto bytes = enc.finish();
    RangeDecoder dec(bytes);
    for (const auto &[p, b] : symbols)
        ASSERT_EQ(dec.decodeBit(p), b);
}

TEST(RangeCoder, LiteralRoundTrip)
{
    wsva::Rng rng(4);
    std::vector<std::pair<uint32_t, int>> values;
    RangeEncoder enc;
    for (int i = 0; i < 2000; ++i) {
        const int width = 1 + static_cast<int>(rng.uniformInt(24));
        const uint32_t v = rng.nextU32() & ((1u << width) - 1);
        values.emplace_back(v, width);
        enc.encodeLiteral(v, width);
    }
    auto bytes = enc.finish();
    RangeDecoder dec(bytes);
    for (const auto &[v, width] : values)
        ASSERT_EQ(dec.decodeLiteral(width), v);
}

TEST(RangeCoder, SkewedStreamCompressesWell)
{
    // 10000 highly predictable bits should take far less than 10000
    // bits of payload.
    RangeEncoder enc;
    for (int i = 0; i < 10000; ++i)
        enc.encodeBit(250, 0);
    auto bytes = enc.finish();
    // Entropy of p=250/256 zero-bit is ~0.037 bit, so expect < 100 B.
    EXPECT_LT(bytes.size(), 100u);
}

TEST(RangeCoder, FairStreamNearOneBitPerBit)
{
    wsva::Rng rng(6);
    RangeEncoder enc;
    for (int i = 0; i < 8000; ++i)
        enc.encodeBit(128, static_cast<int>(rng.uniformInt(2)));
    auto bytes = enc.finish();
    EXPECT_NEAR(static_cast<double>(bytes.size()), 1000.0, 20.0);
}

TEST(RangeCoder, CostUnitsTrackPayloadSize)
{
    wsva::Rng rng(7);
    RangeEncoder enc;
    for (int i = 0; i < 5000; ++i) {
        const Prob p = static_cast<Prob>(1 + rng.uniformInt(255));
        enc.encodeBit(p, static_cast<int>(rng.uniformInt(2)));
    }
    const double est_bits = static_cast<double>(enc.costUnits()) / 256.0;
    auto bytes = enc.finish();
    const double real_bits = static_cast<double>(bytes.size()) * 8.0;
    EXPECT_NEAR(est_bits / real_bits, 1.0, 0.02);
}

TEST(RangeCoder, ProbCostIsMonotone)
{
    for (int p = 2; p < 256; ++p) {
        ASSERT_LE(probCost(static_cast<Prob>(p), 0),
                  probCost(static_cast<Prob>(p - 1), 0));
        ASSERT_GE(probCost(static_cast<Prob>(p), 1),
                  probCost(static_cast<Prob>(p - 1), 1));
    }
}

TEST(RangeCoder, EmptyStreamFinishes)
{
    RangeEncoder enc;
    auto bytes = enc.finish();
    EXPECT_GE(bytes.size(), 1u); // Structural bytes only.
}

TEST(RangeCoder, WorstCaseCarryChain)
{
    // Encode a pattern that maximizes low-boundary hugging: long runs
    // of improbable bits, which exercises carry propagation.
    RangeEncoder enc;
    std::vector<std::pair<Prob, int>> symbols;
    for (int i = 0; i < 3000; ++i) {
        const Prob p = (i % 2) ? Prob(1) : Prob(255);
        const int b = (i % 3) ? 1 : 0;
        symbols.emplace_back(p, b);
        enc.encodeBit(p, b);
    }
    auto bytes = enc.finish();
    RangeDecoder dec(bytes);
    for (const auto &[p, b] : symbols)
        ASSERT_EQ(dec.decodeBit(p), b);
}

} // namespace
} // namespace wsva::video::codec
