#include "video/codec/transform.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/rng.h"

namespace wsva::video::codec {
namespace {

ResidualBlock
randomResidual(wsva::Rng &rng, int amplitude)
{
    ResidualBlock r;
    for (auto &v : r)
        v = static_cast<int16_t>(rng.uniformRange(-amplitude, amplitude));
    return r;
}

TEST(Dct, DcOfFlatBlock)
{
    ResidualBlock flat;
    flat.fill(100);
    std::array<int32_t, kTxCoeffs> freq;
    forwardDct(flat, freq);
    // Orthonormal DCT: DC = 8 * value.
    EXPECT_NEAR(freq[0], 800, 2);
    for (size_t i = 1; i < kTxCoeffs; ++i)
        ASSERT_NEAR(freq[i], 0, 2) << "coeff " << i;
}

TEST(Dct, InverseRecoversInput)
{
    wsva::Rng rng(9);
    for (int trial = 0; trial < 50; ++trial) {
        ResidualBlock in = randomResidual(rng, 255);
        std::array<int32_t, kTxCoeffs> freq;
        ResidualBlock out;
        forwardDct(in, freq);
        inverseDct(freq, out);
        for (size_t i = 0; i < kTxCoeffs; ++i)
            ASSERT_NEAR(in[i], out[i], 2) << "trial " << trial;
    }
}

TEST(Dct, LinearityUnderScaling)
{
    ResidualBlock in;
    for (size_t i = 0; i < kTxCoeffs; ++i)
        in[i] = static_cast<int16_t>((i * 7) % 50);
    ResidualBlock doubled;
    for (size_t i = 0; i < kTxCoeffs; ++i)
        doubled[i] = static_cast<int16_t>(in[i] * 2);
    std::array<int32_t, kTxCoeffs> f1;
    std::array<int32_t, kTxCoeffs> f2;
    forwardDct(in, f1);
    forwardDct(doubled, f2);
    for (size_t i = 0; i < kTxCoeffs; ++i)
        ASSERT_NEAR(f2[i], 2 * f1[i], 4);
}

TEST(Dct, EnergyConservation)
{
    wsva::Rng rng(10);
    ResidualBlock in = randomResidual(rng, 100);
    std::array<int32_t, kTxCoeffs> freq;
    forwardDct(in, freq);
    double spatial = 0;
    double spectral = 0;
    for (size_t i = 0; i < kTxCoeffs; ++i) {
        spatial += static_cast<double>(in[i]) * in[i];
        spectral += static_cast<double>(freq[i]) * freq[i];
    }
    EXPECT_NEAR(spectral / spatial, 1.0, 0.02);
}

TEST(Qstep, GrowsExponentially)
{
    EXPECT_NEAR(qstep(8) / qstep(0), 2.0, 1e-9);
    EXPECT_NEAR(qstep(40) / qstep(32), 2.0, 1e-9);
    EXPECT_LT(qstep(0), 1.0);
    EXPECT_GT(qstep(63), 150.0);
}

class QuantRoundTrip : public testing::TestWithParam<int>
{
};

TEST_P(QuantRoundTrip, ReconstructionErrorBoundedByQstep)
{
    const int qp = GetParam();
    wsva::Rng rng(100 + static_cast<uint64_t>(qp));
    ResidualBlock in = randomResidual(rng, 200);
    CoeffBlock levels;
    ResidualBlock recon;
    transformQuantize(in, qp, 0.5, levels, recon);
    const double step = qstep(qp);
    // Per-coefficient quantization error is <= step/2; the spatial-
    // domain error at any sample is a signed combination of 64 such
    // errors, so allow a few multiples of the step.
    for (size_t i = 0; i < kTxCoeffs; ++i) {
        ASSERT_NEAR(in[i], recon[i], 3.0 * step + 4)
            << "qp " << qp << " index " << i;
    }
    // And the block-level RMS error must be well under one step.
    double sse = 0;
    for (size_t i = 0; i < kTxCoeffs; ++i) {
        const double d = static_cast<double>(in[i]) - recon[i];
        sse += d * d;
    }
    EXPECT_LE(std::sqrt(sse / kTxCoeffs), step);
}

TEST_P(QuantRoundTrip, HigherQpNeverMoreNonzeros)
{
    const int qp = GetParam();
    if (qp + 8 > kMaxQp)
        GTEST_SKIP();
    wsva::Rng rng(200 + static_cast<uint64_t>(qp));
    ResidualBlock in = randomResidual(rng, 80);
    CoeffBlock lo_levels;
    CoeffBlock hi_levels;
    ResidualBlock scratch;
    const int nz_lo = transformQuantize(in, qp, 0.4, lo_levels, scratch);
    const int nz_hi =
        transformQuantize(in, qp + 8, 0.4, hi_levels, scratch);
    EXPECT_GE(nz_lo, nz_hi);
}

INSTANTIATE_TEST_SUITE_P(QpSweep, QuantRoundTrip,
                         testing::Values(0, 8, 16, 24, 32, 40, 48, 56, 63));

TEST(Quant, DeadzoneShrinksLevels)
{
    wsva::Rng rng(11);
    ResidualBlock in = randomResidual(rng, 60);
    std::array<int32_t, kTxCoeffs> freq;
    forwardDct(in, freq);
    CoeffBlock generous;
    CoeffBlock strict;
    quantize(freq, 30, 0.49, generous);
    quantize(freq, 30, 0.10, strict);
    int n_gen = 0;
    int n_strict = 0;
    for (size_t i = 0; i < kTxCoeffs; ++i) {
        n_gen += generous[i] != 0;
        n_strict += strict[i] != 0;
        ASSERT_LE(std::abs(strict[i]), std::abs(generous[i]));
    }
    EXPECT_LE(n_strict, n_gen);
}

TEST(Quant, ZeroInputStaysZero)
{
    ResidualBlock zero;
    zero.fill(0);
    CoeffBlock levels;
    ResidualBlock recon;
    const int nz = transformQuantize(zero, 20, 0.4, levels, recon);
    EXPECT_EQ(nz, 0);
    for (auto v : recon)
        ASSERT_EQ(v, 0);
}

TEST(Zigzag, IsAPermutation)
{
    std::set<int> seen(zigzagOrder().begin(), zigzagOrder().end());
    EXPECT_EQ(seen.size(), 64u);
    EXPECT_EQ(*seen.begin(), 0);
    EXPECT_EQ(*seen.rbegin(), 63);
}

TEST(Zigzag, StartsAlongKnownPath)
{
    const auto &z = zigzagOrder();
    // Standard 8x8 zigzag: 0, 1, 8, 16, 9, 2, 3, 10, ...
    EXPECT_EQ(z[0], 0);
    EXPECT_EQ(z[1], 1);
    EXPECT_EQ(z[2], 8);
    EXPECT_EQ(z[3], 16);
    EXPECT_EQ(z[4], 9);
    EXPECT_EQ(z[5], 2);
}

TEST(Zigzag, OrdersByFrequencyRadius)
{
    // Later scan positions should have, on average, higher u+v.
    const auto &z = zigzagOrder();
    double first_half = 0;
    double second_half = 0;
    for (int i = 0; i < 32; ++i) {
        first_half += z[static_cast<size_t>(i)] / 8 +
                      z[static_cast<size_t>(i)] % 8;
        second_half += z[static_cast<size_t>(i + 32)] / 8 +
                       z[static_cast<size_t>(i + 32)] % 8;
    }
    EXPECT_LT(first_half, second_half);
}

} // namespace
} // namespace wsva::video::codec
