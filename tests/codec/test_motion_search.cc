#include "video/codec/motion_search.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/rng.h"

namespace wsva::video::codec {
namespace {

Plane
texturedPlane(int w, int h, uint64_t seed)
{
    wsva::Rng rng(seed);
    Plane p(w, h);
    for (auto &px : p.data())
        px = static_cast<uint8_t>(rng.uniformInt(256));
    return p;
}

/**
 * Content varying along one axis only: the SAD surface is a 1-D
 * V-shape in that axis and flat in the other, so coordinate-descent
 * (diamond) search provably converges to the optimum.
 */
Plane
rampPlane(int w, int h, bool along_x)
{
    Plane p(w, h);
    for (int y = 0; y < h; ++y) {
        for (int x = 0; x < w; ++x) {
            const int t = along_x ? x : y;
            const double v = 128 + 90 * std::sin(0.11 * t);
            p.at(x, y) = static_cast<uint8_t>(
                std::clamp(static_cast<int>(v), 0, 255));
        }
    }
    return p;
}

/** Build (src, ref) where src is ref translated by (dx, dy) int pel. */
void
makeShiftedPair(int dx, int dy, Plane &src, Plane &ref)
{
    ref = texturedPlane(96, 96, 42);
    src = Plane(96, 96);
    for (int y = 0; y < 96; ++y)
        for (int x = 0; x < 96; ++x)
            src.at(x, y) = ref.clampedAt(x + dx, y + dy);
}

class ExhaustiveShiftRecovery
    : public testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(ExhaustiveShiftRecovery, FindsTrueDisplacement)
{
    // The exhaustive (hardware-style) search must find the global
    // optimum even on white noise, where no gradient exists.
    const auto [dx, dy] = GetParam();
    Plane src;
    Plane ref;
    makeShiftedPair(dx, dy, src, ref);
    const MotionResult mr = searchMotion(src, ref, 40, 40, 16, Mv{0, 0}, 8,
                                         SearchKind::Exhaustive, 0);
    EXPECT_EQ(mr.mv.x, 2 * dx);
    EXPECT_EQ(mr.mv.y, 2 * dy);
    EXPECT_EQ(mr.sad, 0u);
}

INSTANTIATE_TEST_SUITE_P(Displacements, ExhaustiveShiftRecovery,
                         testing::Combine(testing::Values(-7, -3, 0, 2, 6),
                                          testing::Values(-5, 0, 4)));

class DiamondShiftRecovery : public testing::TestWithParam<int>
{
};

TEST_P(DiamondShiftRecovery, FindsHorizontalDisplacement)
{
    const int dx = GetParam();
    Plane ref = rampPlane(96, 96, /*along_x=*/true);
    Plane src(96, 96);
    for (int y = 0; y < 96; ++y)
        for (int x = 0; x < 96; ++x)
            src.at(x, y) = ref.clampedAt(x + dx, y);
    const MotionResult mr = searchMotion(src, ref, 40, 40, 16, Mv{0, 0},
                                         16, SearchKind::Diamond, 0);
    EXPECT_EQ(mr.mv.x, 2 * dx);
    EXPECT_EQ(mr.mv.y, 0);
    EXPECT_EQ(mr.sad, 0u);
}

TEST_P(DiamondShiftRecovery, FindsVerticalDisplacement)
{
    const int dy = GetParam();
    Plane ref = rampPlane(96, 96, /*along_x=*/false);
    Plane src(96, 96);
    for (int y = 0; y < 96; ++y)
        for (int x = 0; x < 96; ++x)
            src.at(x, y) = ref.clampedAt(x, y + dy);
    const MotionResult mr = searchMotion(src, ref, 40, 40, 16, Mv{0, 0},
                                         16, SearchKind::Diamond, 0);
    EXPECT_EQ(mr.mv.x, 0);
    EXPECT_EQ(mr.mv.y, 2 * dy);
    EXPECT_EQ(mr.sad, 0u);
}

INSTANTIATE_TEST_SUITE_P(Displacements, DiamondShiftRecovery,
                         testing::Values(-8, -4, -1, 0, 3, 7));

TEST(MotionSearch, ZeroMvForIdenticalFrames)
{
    Plane p = texturedPlane(64, 64, 7);
    const MotionResult mr =
        searchMotion(p, p, 16, 16, 16, Mv{0, 0}, 8, SearchKind::Diamond);
    EXPECT_EQ(mr.mv, (Mv{0, 0}));
    EXPECT_EQ(mr.sad, 0u);
}

TEST(MotionSearch, HalfPelRefinementHelps)
{
    // Reference is a smooth ramp; source is the ramp shifted by what
    // amounts to a half pixel (average of neighbors).
    Plane ref(64, 64);
    for (int y = 0; y < 64; ++y)
        for (int x = 0; x < 64; ++x)
            ref.at(x, y) = static_cast<uint8_t>(x * 4);
    Plane src(64, 64);
    for (int y = 0; y < 64; ++y)
        for (int x = 0; x < 64; ++x)
            src.at(x, y) =
                static_cast<uint8_t>((ref.clampedAt(x, y) +
                                      ref.clampedAt(x + 1, y) + 1) / 2);
    const MotionResult mr =
        searchMotion(src, ref, 24, 24, 16, Mv{0, 0}, 4,
                     SearchKind::Exhaustive, 0);
    EXPECT_EQ(mr.mv.x, 1); // Half-pel right.
    // The image has no vertical structure, so any vertical half-pel
    // component is equally exact.
    EXPECT_LE(std::abs(mr.mv.y), 1);
    EXPECT_EQ(mr.sad, 0u);
}

TEST(MotionSearch, PredictorCentersTheSearch)
{
    // Displacement of 12 exceeds the +-8 window around zero but is
    // reachable when the predictor points nearby.
    Plane src;
    Plane ref;
    makeShiftedPair(12, 0, src, ref);
    const MotionResult centered =
        searchMotion(src, ref, 40, 40, 16, Mv{20, 0}, 8,
                     SearchKind::Exhaustive);
    EXPECT_EQ(centered.mv.x, 24);
    EXPECT_EQ(centered.sad, 0u);
}

TEST(MotionSearch, MvBiasPrefersPredictor)
{
    // On a flat plane every MV has SAD 0; the bias should keep the
    // result at the predictor.
    Plane flat(64, 64, 128);
    const MotionResult mr = searchMotion(flat, flat, 16, 16, 16, Mv{6, 2},
                                         8, SearchKind::Exhaustive, 4);
    EXPECT_EQ(mr.mv, (Mv{6, 2}));
}

TEST(MotionSearch, ExhaustiveNoWorseThanDiamondOnAverage)
{
    // Exhaustive finds the global integer optimum; diamond may not.
    // Half-pel refinement can perturb individual comparisons, so the
    // claim is statistical: summed over seeds, exhaustive wins.
    uint64_t dia_total = 0;
    uint64_t exh_total = 0;
    for (uint64_t seed = 0; seed < 8; ++seed) {
        Plane src = texturedPlane(96, 96, seed * 2 + 100);
        Plane ref = texturedPlane(96, 96, seed * 2 + 101);
        dia_total += searchMotion(src, ref, 32, 32, 16, Mv{0, 0}, 8,
                                  SearchKind::Diamond, 0).sad;
        exh_total += searchMotion(src, ref, 32, 32, 16, Mv{0, 0}, 8,
                                  SearchKind::Exhaustive, 0).sad;
    }
    EXPECT_LE(exh_total, dia_total);
}

} // namespace
} // namespace wsva::video::codec
