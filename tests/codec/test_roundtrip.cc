/**
 * @file
 * End-to-end codec tests: encode -> decode round trips across both
 * coding profiles, both implementation profiles, and all RC modes.
 * The core property is decoder/encoder reconstruction consistency:
 * re-encoding a decoded stream must be deterministic, and decoded
 * quality must track the quantizer monotonically.
 */

#include <gtest/gtest.h>

#include "video/codec/decoder.h"
#include "video/codec/encoder.h"
#include "video/metrics.h"
#include "video/synth.h"

namespace wsva::video::codec {
namespace {

std::vector<Frame>
testClip(int w, int h, int n, uint64_t seed, double motion = 2.0)
{
    SynthSpec spec;
    spec.width = w;
    spec.height = h;
    spec.frame_count = n;
    spec.detail = 2;
    spec.objects = 2;
    spec.motion = motion;
    spec.pan_speed = 0.5;
    spec.seed = seed;
    return generateVideo(spec);
}

EncoderConfig
baseConfig(CodecType codec, int w, int h)
{
    EncoderConfig cfg;
    cfg.codec = codec;
    cfg.width = w;
    cfg.height = h;
    cfg.fps = 30.0;
    cfg.rc_mode = RcMode::ConstQp;
    cfg.base_qp = 32;
    cfg.gop_length = 8;
    return cfg;
}

struct ProfileCase
{
    CodecType codec;
    bool hardware;
};

class CodecRoundTrip : public testing::TestWithParam<ProfileCase>
{
};

TEST_P(CodecRoundTrip, DecodesToCorrectFrameCountAndSize)
{
    const auto param = GetParam();
    auto frames = testClip(80, 48, 10, 11);
    EncoderConfig cfg = baseConfig(param.codec, 80, 48);
    cfg.hardware = param.hardware;
    auto chunk = encodeSequence(cfg, frames);
    auto decoded = decodeChunkOrDie(chunk.bytes);
    ASSERT_EQ(decoded.frames.size(), frames.size());
    EXPECT_EQ(decoded.frames[0].width(), 80);
    EXPECT_EQ(decoded.frames[0].height(), 48);
    EXPECT_EQ(decoded.codec, param.codec);
}

TEST_P(CodecRoundTrip, QualityIsReasonableAtModerateQp)
{
    const auto param = GetParam();
    auto frames = testClip(80, 48, 8, 12);
    EncoderConfig cfg = baseConfig(param.codec, 80, 48);
    cfg.hardware = param.hardware;
    cfg.base_qp = 24;
    auto chunk = encodeSequence(cfg, frames);
    auto decoded = decodeChunkOrDie(chunk.bytes);
    const double psnr = sequencePsnr(frames, decoded.frames);
    EXPECT_GT(psnr, 30.0);
}

TEST_P(CodecRoundTrip, LowerQpGivesHigherQualityAndMoreBits)
{
    const auto param = GetParam();
    auto frames = testClip(80, 48, 6, 13);
    EncoderConfig cfg = baseConfig(param.codec, 80, 48);
    cfg.hardware = param.hardware;

    cfg.base_qp = 16;
    auto fine = encodeSequence(cfg, frames);
    cfg.base_qp = 48;
    auto coarse = encodeSequence(cfg, frames);

    const double psnr_fine =
        sequencePsnr(frames, decodeChunkOrDie(fine.bytes).frames);
    const double psnr_coarse =
        sequencePsnr(frames, decodeChunkOrDie(coarse.bytes).frames);
    EXPECT_GT(psnr_fine, psnr_coarse + 3.0);
    EXPECT_GT(fine.bytes.size(), coarse.bytes.size());
}

TEST_P(CodecRoundTrip, DeterministicAcrossRuns)
{
    const auto param = GetParam();
    auto frames = testClip(64, 48, 5, 14);
    EncoderConfig cfg = baseConfig(param.codec, 64, 48);
    cfg.hardware = param.hardware;
    auto a = encodeSequence(cfg, frames);
    auto b = encodeSequence(cfg, frames);
    EXPECT_EQ(a.bytes, b.bytes);
}

TEST_P(CodecRoundTrip, NonMacroblockAlignedDimensions)
{
    const auto param = GetParam();
    auto frames = testClip(70, 38, 4, 15);
    EncoderConfig cfg = baseConfig(param.codec, 70, 38);
    cfg.hardware = param.hardware;
    auto chunk = encodeSequence(cfg, frames);
    auto decoded = decodeChunkOrDie(chunk.bytes);
    ASSERT_EQ(decoded.frames.size(), 4u);
    EXPECT_EQ(decoded.frames[0].width(), 70);
    EXPECT_EQ(decoded.frames[0].height(), 38);
    EXPECT_GT(sequencePsnr(frames, decoded.frames), 28.0);
}

INSTANTIATE_TEST_SUITE_P(
    Profiles, CodecRoundTrip,
    testing::Values(ProfileCase{CodecType::H264, false},
                    ProfileCase{CodecType::H264, true},
                    ProfileCase{CodecType::VP9, false},
                    ProfileCase{CodecType::VP9, true}),
    [](const testing::TestParamInfo<ProfileCase> &info) {
        return std::string(codecName(info.param.codec)) +
               (info.param.hardware ? "_hw" : "_sw");
    });

TEST(Codec, Vp9BeatsH264OnBitrateAtSimilarQuality)
{
    // The headline codec-generation gap: at the same quantizer the
    // arithmetic-coded profile should spend clearly fewer bits with
    // similar PSNR.
    auto frames = testClip(96, 64, 10, 16);
    EncoderConfig cfg = baseConfig(CodecType::H264, 96, 64);
    auto h264 = encodeSequence(cfg, frames);
    cfg.codec = CodecType::VP9;
    auto vp9 = encodeSequence(cfg, frames);

    const double psnr_h264 =
        sequencePsnr(frames, decodeChunkOrDie(h264.bytes).frames);
    const double psnr_vp9 =
        sequencePsnr(frames, decodeChunkOrDie(vp9.bytes).frames);
    EXPECT_LT(vp9.bytes.size(), h264.bytes.size());
    EXPECT_GT(psnr_vp9, psnr_h264 - 1.0);
}

TEST(Codec, StaticContentCompressesToSkips)
{
    // A fully static clip should cost almost nothing after frame 1.
    auto frames = testClip(80, 48, 8, 17, 0.0);
    SynthSpec spec;
    EncoderConfig cfg = baseConfig(CodecType::VP9, 80, 48);
    cfg.gop_length = 8;
    auto chunk = encodeSequence(cfg, frames);
    ASSERT_GE(chunk.frames.size(), 3u);
    uint64_t key_bits = chunk.frames[0].bits;
    uint64_t inter_bits = 0;
    int inters = 0;
    for (const auto &f : chunk.frames) {
        if (f.type == FrameType::Inter) {
            inter_bits += f.bits;
            ++inters;
        }
    }
    ASSERT_GT(inters, 0);
    EXPECT_LT(inter_bits / static_cast<uint64_t>(inters), key_bits / 4);
}

TEST(Codec, KeyframeIntervalRespected)
{
    auto frames = testClip(64, 48, 12, 18);
    EncoderConfig cfg = baseConfig(CodecType::H264, 64, 48);
    cfg.gop_length = 4;
    auto chunk = encodeSequence(cfg, frames);
    int keys = 0;
    for (const auto &f : chunk.frames)
        keys += f.type == FrameType::Key;
    EXPECT_EQ(keys, 3);
}

TEST(Codec, AltRefFramesAreHidden)
{
    auto frames = testClip(64, 48, 10, 19);
    EncoderConfig cfg = baseConfig(CodecType::VP9, 64, 48);
    cfg.gop_length = 10;
    cfg.enable_arf = true;
    auto chunk = encodeSequence(cfg, frames);
    int hidden = 0;
    for (const auto &f : chunk.frames)
        hidden += !f.shown;
    EXPECT_EQ(hidden, 1);
    // Decoder must output only the shown frames.
    auto decoded = decodeChunkOrDie(chunk.bytes);
    EXPECT_EQ(decoded.frames.size(), frames.size());
}

TEST(Codec, ArfImprovesNoisyStaticQualityPerBit)
{
    SynthSpec spec;
    spec.width = 80;
    spec.height = 48;
    spec.frame_count = 12;
    spec.detail = 2;
    spec.objects = 0;
    spec.motion = 0;
    spec.noise_sigma = 4.0;
    spec.seed = 23;
    auto frames = generateVideo(spec);

    EncoderConfig cfg = baseConfig(CodecType::VP9, 80, 48);
    cfg.gop_length = 12;
    cfg.base_qp = 36;
    cfg.enable_arf = true;
    auto with_arf = encodeSequence(cfg, frames);
    cfg.enable_arf = false;
    auto without = encodeSequence(cfg, frames);

    const double rate_arf = static_cast<double>(with_arf.bytes.size());
    const double rate_plain = static_cast<double>(without.bytes.size());
    // The ARF lets noisy-static content be coded against a denoised
    // reference; bits should not balloon.
    EXPECT_LT(rate_arf, rate_plain * 1.15);
}

TEST(Codec, RateControlHitsTargetOffline)
{
    auto frames = testClip(96, 64, 24, 20);
    EncoderConfig cfg = baseConfig(CodecType::VP9, 96, 64);
    cfg.rc_mode = RcMode::TwoPassOffline;
    cfg.target_bitrate_bps = 60e3;
    cfg.gop_length = 24;
    auto chunk = encodeSequence(cfg, frames);
    EXPECT_NEAR(chunk.bitrateBps(), 60e3, 30e3);
    auto decoded = decodeChunkOrDie(chunk.bytes);
    EXPECT_EQ(decoded.frames.size(), frames.size());
}

TEST(Codec, RateControlModesAllDecode)
{
    auto frames = testClip(64, 48, 12, 21);
    for (RcMode mode : {RcMode::OnePass, RcMode::TwoPassLowLatency,
                        RcMode::TwoPassLagged, RcMode::TwoPassOffline}) {
        EncoderConfig cfg = baseConfig(CodecType::VP9, 64, 48);
        cfg.rc_mode = mode;
        cfg.target_bitrate_bps = 300e3;
        cfg.gop_length = 12;
        auto chunk = encodeSequence(cfg, frames);
        auto decoded = decodeChunk(chunk.bytes);
        ASSERT_TRUE(decoded.has_value())
            << "mode " << static_cast<int>(mode);
        EXPECT_EQ(decoded->frames.size(), frames.size());
    }
}

TEST(Codec, CorruptStreamRejectedNotCrash)
{
    auto frames = testClip(64, 48, 4, 22);
    EncoderConfig cfg = baseConfig(CodecType::VP9, 64, 48);
    auto chunk = encodeSequence(cfg, frames);
    auto bytes = chunk.bytes;
    bytes.resize(bytes.size() / 2);
    // Truncation must be reported, not crash.
    EXPECT_FALSE(decodeChunk(bytes).has_value());
}

TEST(Codec, EmptyBufferRejected)
{
    EXPECT_FALSE(decodeChunk({}).has_value());
}

TEST(Codec, HardwareLaunchTuningWorseThanMature)
{
    // Figure 10 precondition: tuning level 0 spends more bits than
    // level 8 at comparable quality (checked via bits here; the BD
    // comparison lives in the bench).
    auto frames = testClip(96, 64, 10, 24);
    EncoderConfig cfg = baseConfig(CodecType::VP9, 96, 64);
    cfg.hardware = true;
    cfg.base_qp = 30;

    cfg.tuning_level = 0;
    auto launch = encodeSequence(cfg, frames);
    cfg.tuning_level = 8;
    auto mature = encodeSequence(cfg, frames);

    const double psnr_launch =
        sequencePsnr(frames, decodeChunkOrDie(launch.bytes).frames);
    const double psnr_mature =
        sequencePsnr(frames, decodeChunkOrDie(mature.bytes).frames);
    const double bpp_launch = static_cast<double>(launch.bytes.size());
    const double bpp_mature = static_cast<double>(mature.bytes.size());
    // Mature tuning should be on the better side of the RD trade-off:
    // fewer bits without losing a meaningful amount of quality, or
    // more quality for the same bits.
    EXPECT_LT(bpp_mature, bpp_launch * 1.05);
    EXPECT_GT(psnr_mature, psnr_launch - 0.75);
}

} // namespace
} // namespace wsva::video::codec
