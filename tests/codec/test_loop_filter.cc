#include "video/codec/loop_filter.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace wsva::video::codec {
namespace {

TEST(LoopFilter, FlatPlaneUnchanged)
{
    Plane p(32, 32, 120);
    Plane before = p;
    deblockPlane(p, 40);
    EXPECT_EQ(p, before);
}

TEST(LoopFilter, SmoothsSmallBlockStep)
{
    // A small step across the x=8 block edge should shrink.
    Plane p(32, 32);
    for (int y = 0; y < 32; ++y)
        for (int x = 0; x < 32; ++x)
            p.at(x, y) = x < 8 ? 100 : 104;
    const int step_before = std::abs(p.at(8, 16) - p.at(7, 16));
    deblockPlane(p, 40);
    const int step_after = std::abs(p.at(8, 16) - p.at(7, 16));
    EXPECT_LT(step_after, step_before);
}

TEST(LoopFilter, PreservesStrongEdges)
{
    // A large step is real content and must not be filtered.
    Plane p(32, 32);
    for (int y = 0; y < 32; ++y)
        for (int x = 0; x < 32; ++x)
            p.at(x, y) = x < 8 ? 30 : 220;
    Plane before = p;
    deblockPlane(p, 30);
    EXPECT_EQ(p, before);
}

TEST(LoopFilter, HigherQpFiltersMore)
{
    auto make = [] {
        Plane p(32, 32);
        for (int y = 0; y < 32; ++y)
            for (int x = 0; x < 32; ++x)
                p.at(x, y) = x < 8 ? 100 : 108;
        return p;
    };
    Plane lo = make();
    Plane hi = make();
    deblockPlane(lo, 4);
    deblockPlane(hi, 60);
    const int step_lo = std::abs(lo.at(8, 16) - lo.at(7, 16));
    const int step_hi = std::abs(hi.at(8, 16) - hi.at(7, 16));
    EXPECT_LE(step_hi, step_lo);
}

TEST(LoopFilter, FiltersHorizontalEdgesToo)
{
    Plane p(32, 32);
    for (int y = 0; y < 32; ++y)
        for (int x = 0; x < 32; ++x)
            p.at(x, y) = y < 8 ? 100 : 104;
    deblockPlane(p, 40);
    EXPECT_LT(std::abs(p.at(16, 8) - p.at(16, 7)), 4);
}

TEST(LoopFilter, InteriorNotTouched)
{
    // Samples away from 8x8 edges must not change.
    wsva::Rng rng(3);
    Plane p(32, 32);
    for (auto &px : p.data())
        px = static_cast<uint8_t>(rng.uniformInt(256));
    Plane before = p;
    deblockPlane(p, 50);
    for (int y = 0; y < 32; ++y) {
        for (int x = 0; x < 32; ++x) {
            const bool near_v = (x % 8 == 0 && x > 0) || (x % 8 == 7);
            const bool near_h = (y % 8 == 0 && y > 0) || (y % 8 == 7);
            if (!near_v && !near_h) {
                ASSERT_EQ(p.at(x, y), before.at(x, y))
                    << "(" << x << "," << y << ")";
            }
        }
    }
}

TEST(LoopFilter, FrameFiltersAllPlanes)
{
    Frame f(32, 32);
    for (int y = 0; y < 32; ++y)
        for (int x = 0; x < 32; ++x)
            f.y().at(x, y) = x < 8 ? 100 : 104;
    for (int y = 0; y < 16; ++y)
        for (int x = 0; x < 16; ++x)
            f.u().at(x, y) = x < 8 ? 100 : 104;
    deblockFrame(f, 40);
    EXPECT_LT(std::abs(f.y().at(8, 16) - f.y().at(7, 16)), 4);
    EXPECT_LT(std::abs(f.u().at(8, 8) - f.u().at(7, 8)), 4);
}

} // namespace
} // namespace wsva::video::codec
