#include "video/codec/bitstream.h"

#include <gtest/gtest.h>

namespace wsva::video::codec {
namespace {

SequenceHeader
sampleSeq()
{
    SequenceHeader seq;
    seq.codec = CodecType::VP9;
    seq.width = 320;
    seq.height = 180;
    seq.fps = 29.97;
    seq.frame_count = 3;
    return seq;
}

TEST(Bitstream, SequenceHeaderRoundTrip)
{
    StreamWriter sw(sampleSeq());
    auto bytes = sw.take();
    auto reader = StreamReader::open(bytes);
    ASSERT_TRUE(reader.has_value());
    EXPECT_EQ(reader->sequence().codec, CodecType::VP9);
    EXPECT_EQ(reader->sequence().width, 320);
    EXPECT_EQ(reader->sequence().height, 180);
    EXPECT_NEAR(reader->sequence().fps, 29.97, 0.001);
    EXPECT_EQ(reader->sequence().frame_count, 3);
    EXPECT_TRUE(reader->atEnd());
}

TEST(Bitstream, FrameRecordsRoundTrip)
{
    StreamWriter sw(sampleSeq());
    FrameHeader h1;
    h1.type = FrameType::Key;
    h1.show = true;
    h1.qp = 20;
    h1.update_last = h1.update_golden = h1.update_altref = true;
    sw.addFrame(h1, {1, 2, 3});

    FrameHeader h2;
    h2.type = FrameType::AltRef;
    h2.show = false;
    h2.qp = 63;
    h2.update_last = false;
    h2.update_golden = false;
    h2.update_altref = true;
    sw.addFrame(h2, {});

    auto bytes = sw.take();
    auto reader = StreamReader::open(bytes);
    ASSERT_TRUE(reader.has_value());

    FrameHeader hdr;
    std::vector<uint8_t> payload;
    ASSERT_TRUE(reader->nextFrame(hdr, payload));
    EXPECT_EQ(hdr.type, FrameType::Key);
    EXPECT_TRUE(hdr.show);
    EXPECT_EQ(hdr.qp, 20);
    EXPECT_TRUE(hdr.update_altref);
    EXPECT_EQ(payload, (std::vector<uint8_t>{1, 2, 3}));

    ASSERT_TRUE(reader->nextFrame(hdr, payload));
    EXPECT_EQ(hdr.type, FrameType::AltRef);
    EXPECT_FALSE(hdr.show);
    EXPECT_EQ(hdr.qp, 63);
    EXPECT_FALSE(hdr.update_last);
    EXPECT_TRUE(hdr.update_altref);
    EXPECT_TRUE(payload.empty());
    EXPECT_TRUE(reader->atEnd());
}

TEST(Bitstream, RejectsBadMagic)
{
    StreamWriter sw(sampleSeq());
    auto bytes = sw.take();
    bytes[0] = 'X';
    EXPECT_FALSE(StreamReader::open(bytes).has_value());
}

TEST(Bitstream, RejectsShortBuffer)
{
    std::vector<uint8_t> tiny = {'W', 'V', 'C', '1', 0};
    EXPECT_FALSE(StreamReader::open(tiny).has_value());
}

TEST(Bitstream, RejectsUnknownCodec)
{
    StreamWriter sw(sampleSeq());
    auto bytes = sw.take();
    bytes[4] = 9; // Codec id byte.
    EXPECT_FALSE(StreamReader::open(bytes).has_value());
}

TEST(Bitstream, DetectsTruncatedFrameRecord)
{
    StreamWriter sw(sampleSeq());
    FrameHeader hdr;
    hdr.qp = 10;
    sw.addFrame(hdr, std::vector<uint8_t>(100, 0xaa));
    auto bytes = sw.take();
    bytes.resize(bytes.size() - 50);
    auto reader = StreamReader::open(bytes);
    ASSERT_TRUE(reader.has_value());
    std::vector<uint8_t> payload;
    EXPECT_FALSE(reader->nextFrame(hdr, payload));
}

TEST(Bitstream, H264CodecIdPreserved)
{
    SequenceHeader seq = sampleSeq();
    seq.codec = CodecType::H264;
    StreamWriter sw(seq);
    auto reader = StreamReader::open(sw.take());
    ASSERT_TRUE(reader.has_value());
    EXPECT_EQ(reader->sequence().codec, CodecType::H264);
}

TEST(BitstreamDeathTest, RejectsZeroDimensions)
{
    SequenceHeader seq = sampleSeq();
    seq.width = 0;
    EXPECT_DEATH(StreamWriter{seq}, "dimensions");
}

} // namespace
} // namespace wsva::video::codec
