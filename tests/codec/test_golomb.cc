#include "video/codec/golomb.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace wsva::video::codec {
namespace {

TEST(Golomb, KnownUeCodes)
{
    // ue(0)=1, ue(1)=010, ue(2)=011.
    BitWriter bw;
    putUe(bw, 0);
    putUe(bw, 1);
    putUe(bw, 2);
    auto bytes = bw.take();
    BitReader br(bytes);
    EXPECT_EQ(br.getBit(), 1);
    EXPECT_EQ(br.getBits(3), 0b010u);
    EXPECT_EQ(br.getBits(3), 0b011u);
}

TEST(Golomb, UeRoundTripSmall)
{
    BitWriter bw;
    for (uint32_t v = 0; v < 300; ++v)
        putUe(bw, v);
    auto bytes = bw.take();
    BitReader br(bytes);
    for (uint32_t v = 0; v < 300; ++v)
        ASSERT_EQ(getUe(br), v);
}

TEST(Golomb, UeRoundTripLarge)
{
    wsva::Rng rng(2);
    std::vector<uint32_t> values;
    BitWriter bw;
    for (int i = 0; i < 1000; ++i) {
        const uint32_t v = rng.nextU32() >> (rng.uniformInt(31) + 1);
        values.push_back(v);
        putUe(bw, v);
    }
    auto bytes = bw.take();
    BitReader br(bytes);
    for (uint32_t v : values)
        ASSERT_EQ(getUe(br), v);
}

TEST(Golomb, SeRoundTrip)
{
    BitWriter bw;
    for (int32_t v = -200; v <= 200; ++v)
        putSe(bw, v);
    auto bytes = bw.take();
    BitReader br(bytes);
    for (int32_t v = -200; v <= 200; ++v)
        ASSERT_EQ(getSe(br), v);
}

TEST(Golomb, SeMappingOrder)
{
    // se mapping: 0 -> 0, 1 -> 1, -1 -> 2, 2 -> 3, -2 -> 4.
    EXPECT_EQ(seBits(0), 1);
    EXPECT_EQ(seBits(1), 3);
    EXPECT_EQ(seBits(-1), 3);
}

TEST(Golomb, UeBitsMatchesActual)
{
    for (uint32_t v : {0u, 1u, 2u, 3u, 7u, 8u, 100u, 1000u, 65535u}) {
        BitWriter bw;
        putUe(bw, v);
        EXPECT_EQ(static_cast<uint64_t>(ueBits(v)), bw.bitCount())
            << "value " << v;
    }
}

TEST(Golomb, SeBitsMatchesActual)
{
    for (int32_t v : {0, 1, -1, 5, -5, 300, -300}) {
        BitWriter bw;
        putSe(bw, v);
        EXPECT_EQ(static_cast<uint64_t>(seBits(v)), bw.bitCount())
            << "value " << v;
    }
}

TEST(Golomb, MonotoneCodeLength)
{
    for (uint32_t v = 1; v < 1000; ++v)
        ASSERT_LE(ueBits(v - 1), ueBits(v));
}

} // namespace
} // namespace wsva::video::codec
