#include "platform/pipeline.h"

#include <gtest/gtest.h>

#include "video/codec/decoder.h"
#include "video/metrics.h"
#include "video/synth.h"

namespace wsva::platform {
namespace {

using wsva::video::generateVideo;
using wsva::video::SynthSpec;

std::vector<Frame>
sourceClip(int frames = 24)
{
    SynthSpec spec;
    spec.width = 128;
    spec.height = 72;
    spec.frame_count = frames;
    spec.detail = 2;
    spec.objects = 2;
    spec.motion = 2.0;
    spec.seed = 5;
    return generateVideo(spec);
}

PipelineConfig
fastConfig()
{
    PipelineConfig cfg;
    cfg.encoder.rc_mode = wsva::video::codec::RcMode::ConstQp;
    cfg.encoder.base_qp = 34;
    cfg.encoder.fps = 30.0;
    cfg.chunk_frames = 8;
    return cfg;
}

TEST(Chunking, SplitsEvenly)
{
    auto chunks = chunkFrames(sourceClip(24), 8);
    ASSERT_EQ(chunks.size(), 3u);
    for (const auto &c : chunks)
        EXPECT_EQ(c.size(), 8u);
}

TEST(Chunking, LastChunkMayBeShort)
{
    auto chunks = chunkFrames(sourceClip(10), 8);
    ASSERT_EQ(chunks.size(), 2u);
    EXPECT_EQ(chunks[0].size(), 8u);
    EXPECT_EQ(chunks[1].size(), 2u);
}

TEST(Pipeline, SotProducesOneDecodableVariant)
{
    auto clip = sourceClip();
    auto result =
        transcodeSot(clip, {128, 72}, CodecType::VP9, fastConfig());
    ASSERT_TRUE(result.integrity_ok) << result.integrity_error;
    ASSERT_EQ(result.variants.size(), 1u);
    auto frames = assembleVariant(result.variants[0], clip.size());
    ASSERT_EQ(frames.size(), clip.size());
    EXPECT_GT(wsva::video::sequencePsnr(clip, frames), 28.0);
}

TEST(Pipeline, MotProducesLadder)
{
    auto clip = sourceClip(16);
    // 128x72 input is below 144p, so build an explicit mini-ladder.
    std::vector<Resolution> outputs = {{128, 72}, {64, 36}};
    auto result =
        transcodeMot(clip, outputs, CodecType::H264, fastConfig());
    ASSERT_TRUE(result.integrity_ok) << result.integrity_error;
    ASSERT_EQ(result.variants.size(), 2u);
    EXPECT_EQ(result.variants[1].resolution.width, 64);
    // Lower rung costs fewer bits.
    EXPECT_LT(result.variants[1].totalBytes(),
              result.variants[0].totalBytes());
}

TEST(Pipeline, ChunksAreIndependentlyDecodable)
{
    auto clip = sourceClip(24);
    auto result =
        transcodeSot(clip, {128, 72}, CodecType::VP9, fastConfig());
    ASSERT_TRUE(result.integrity_ok);
    const auto &variant = result.variants[0];
    ASSERT_EQ(variant.chunks.size(), 3u);
    // Decode only the middle chunk: must succeed on its own (closed
    // GOPs are the unit of parallelism).
    auto decoded =
        wsva::video::codec::decodeChunk(variant.chunks[1].bytes);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->frames.size(), 8u);
}

TEST(Pipeline, IntegrityCatchesCorruptChunk)
{
    auto clip = sourceClip(16);
    auto result =
        transcodeSot(clip, {128, 72}, CodecType::VP9, fastConfig());
    ASSERT_TRUE(result.integrity_ok);
    auto variant = result.variants[0];
    variant.chunks[1].bytes.resize(4); // Corrupt the container.
    std::string error;
    auto frames = assembleVariant(variant, clip.size(), &error);
    EXPECT_TRUE(frames.empty());
    EXPECT_NE(error.find("chunk 1"), std::string::npos);
}

TEST(Pipeline, IntegrityCatchesLengthMismatch)
{
    auto clip = sourceClip(16);
    auto result =
        transcodeSot(clip, {128, 72}, CodecType::VP9, fastConfig());
    auto variant = result.variants[0];
    variant.chunks.pop_back(); // Drop a chunk: length check fires.
    std::string error;
    auto frames = assembleVariant(variant, clip.size(), &error);
    EXPECT_TRUE(frames.empty());
    EXPECT_NE(error.find("length mismatch"), std::string::npos);
}

TEST(Pipeline, RateControlledMotSharesStats)
{
    auto clip = sourceClip(16);
    PipelineConfig cfg = fastConfig();
    cfg.encoder.rc_mode = wsva::video::codec::RcMode::TwoPassOffline;
    cfg.encoder.target_bitrate_bps = 250e3;
    auto result = transcodeMot(clip, {{128, 72}, {64, 36}},
                               CodecType::VP9, cfg);
    ASSERT_TRUE(result.integrity_ok) << result.integrity_error;
    EXPECT_GT(result.variants[0].bitrateBps(), 0.0);
}

} // namespace
} // namespace wsva::platform
