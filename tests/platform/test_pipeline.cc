#include "platform/pipeline.h"

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "video/codec/decoder.h"
#include "video/metrics.h"
#include "video/synth.h"

namespace wsva::platform {
namespace {

using wsva::video::generateVideo;
using wsva::video::SynthSpec;

std::vector<Frame>
sourceClip(int frames = 24)
{
    SynthSpec spec;
    spec.width = 128;
    spec.height = 72;
    spec.frame_count = frames;
    spec.detail = 2;
    spec.objects = 2;
    spec.motion = 2.0;
    spec.seed = 5;
    return generateVideo(spec);
}

PipelineConfig
fastConfig()
{
    PipelineConfig cfg;
    cfg.encoder.rc_mode = wsva::video::codec::RcMode::ConstQp;
    cfg.encoder.base_qp = 34;
    cfg.encoder.fps = 30.0;
    cfg.chunk_frames = 8;
    return cfg;
}

TEST(Chunking, SplitsEvenly)
{
    auto chunks = chunkFrames(sourceClip(24), 8);
    ASSERT_EQ(chunks.size(), 3u);
    for (const auto &c : chunks)
        EXPECT_EQ(c.size(), 8u);
}

TEST(Chunking, LastChunkMayBeShort)
{
    auto chunks = chunkFrames(sourceClip(10), 8);
    ASSERT_EQ(chunks.size(), 2u);
    EXPECT_EQ(chunks[0].size(), 8u);
    EXPECT_EQ(chunks[1].size(), 2u);
}

TEST(Pipeline, SotProducesOneDecodableVariant)
{
    auto clip = sourceClip();
    auto result =
        transcodeSot(clip, {128, 72}, CodecType::VP9, fastConfig());
    ASSERT_TRUE(result.integrity_ok) << result.integrity_error;
    ASSERT_EQ(result.variants.size(), 1u);
    auto frames = assembleVariant(result.variants[0], clip.size());
    ASSERT_EQ(frames.size(), clip.size());
    EXPECT_GT(wsva::video::sequencePsnr(clip, frames), 28.0);
}

TEST(Pipeline, MotProducesLadder)
{
    auto clip = sourceClip(16);
    // 128x72 input is below 144p, so build an explicit mini-ladder.
    std::vector<Resolution> outputs = {{128, 72}, {64, 36}};
    auto result =
        transcodeMot(clip, outputs, CodecType::H264, fastConfig());
    ASSERT_TRUE(result.integrity_ok) << result.integrity_error;
    ASSERT_EQ(result.variants.size(), 2u);
    EXPECT_EQ(result.variants[1].resolution.width, 64);
    // Lower rung costs fewer bits.
    EXPECT_LT(result.variants[1].totalBytes(),
              result.variants[0].totalBytes());
}

TEST(Pipeline, ChunksAreIndependentlyDecodable)
{
    auto clip = sourceClip(24);
    auto result =
        transcodeSot(clip, {128, 72}, CodecType::VP9, fastConfig());
    ASSERT_TRUE(result.integrity_ok);
    const auto &variant = result.variants[0];
    ASSERT_EQ(variant.chunks.size(), 3u);
    // Decode only the middle chunk: must succeed on its own (closed
    // GOPs are the unit of parallelism).
    auto decoded =
        wsva::video::codec::decodeChunk(variant.chunks[1].bytes);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->frames.size(), 8u);
}

TEST(Pipeline, IntegrityCatchesCorruptChunk)
{
    auto clip = sourceClip(16);
    auto result =
        transcodeSot(clip, {128, 72}, CodecType::VP9, fastConfig());
    ASSERT_TRUE(result.integrity_ok);
    auto variant = result.variants[0];
    variant.chunks[1].bytes.resize(4); // Corrupt the container.
    std::string error;
    auto frames = assembleVariant(variant, clip.size(), &error);
    EXPECT_TRUE(frames.empty());
    EXPECT_NE(error.find("chunk 1"), std::string::npos);
}

TEST(Pipeline, IntegrityCatchesLengthMismatch)
{
    auto clip = sourceClip(16);
    auto result =
        transcodeSot(clip, {128, 72}, CodecType::VP9, fastConfig());
    auto variant = result.variants[0];
    variant.chunks.pop_back(); // Drop a chunk: length check fires.
    std::string error;
    auto frames = assembleVariant(variant, clip.size(), &error);
    EXPECT_TRUE(frames.empty());
    EXPECT_NE(error.find("length mismatch"), std::string::npos);
}

/**
 * The parallel fan-out must be invisible in the output: encoding
 * with a 4-worker pool yields byte-identical chunk payloads to the
 * fully serial path, for both codec profiles (closed-GOP chunks +
 * deterministic assembly order).
 */
class ParallelDeterminism : public testing::TestWithParam<CodecType>
{
};

TEST_P(ParallelDeterminism, FourThreadsMatchSerialByteExact)
{
    auto clip = sourceClip(20);
    PipelineConfig cfg = fastConfig();
    cfg.chunk_frames = 5; // 4 chunks x 2 rungs = 8 jobs.
    cfg.encoder.rc_mode = wsva::video::codec::RcMode::TwoPassOffline;
    cfg.encoder.target_bitrate_bps = 300e3;
    const std::vector<Resolution> outputs = {{128, 72}, {64, 36}};

    cfg.num_threads = 1;
    auto serial = transcodeMot(clip, outputs, GetParam(), cfg);
    cfg.num_threads = 4;
    auto parallel = transcodeMot(clip, outputs, GetParam(), cfg);

    ASSERT_TRUE(serial.integrity_ok) << serial.integrity_error;
    ASSERT_TRUE(parallel.integrity_ok) << parallel.integrity_error;
    ASSERT_EQ(serial.variants.size(), parallel.variants.size());
    for (size_t v = 0; v < serial.variants.size(); ++v) {
        const auto &sv = serial.variants[v];
        const auto &pv = parallel.variants[v];
        ASSERT_EQ(sv.chunks.size(), pv.chunks.size());
        for (size_t c = 0; c < sv.chunks.size(); ++c) {
            EXPECT_EQ(sv.chunks[c].bytes, pv.chunks[c].bytes)
                << "variant " << v << " chunk " << c;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Codecs, ParallelDeterminism,
    testing::Values(CodecType::H264, CodecType::VP9),
    [](const testing::TestParamInfo<CodecType> &info) {
        return std::string(
            wsva::video::codec::codecName(info.param));
    });

TEST(Pipeline, DefaultThreadCountMatchesSerialByteExact)
{
    // num_threads = 0 (hardware concurrency) is the production
    // default; it must also be bit-exact against the serial path.
    auto clip = sourceClip(16);
    PipelineConfig cfg = fastConfig();
    cfg.num_threads = 1;
    auto serial = transcodeSot(clip, {128, 72}, CodecType::VP9, cfg);
    cfg.num_threads = 0;
    auto parallel = transcodeSot(clip, {128, 72}, CodecType::VP9, cfg);
    ASSERT_EQ(serial.variants[0].chunks.size(),
              parallel.variants[0].chunks.size());
    for (size_t c = 0; c < serial.variants[0].chunks.size(); ++c) {
        EXPECT_EQ(serial.variants[0].chunks[c].bytes,
                  parallel.variants[0].chunks[c].bytes);
    }
}

TEST(Pipeline, CallerSuppliedPoolMatchesSerialByteExact)
{
    // A caller-owned pool (e.g. one shared by a scheduler) is used
    // as-is, reused across calls, and stays bit-exact vs. serial.
    auto clip = sourceClip(20);
    PipelineConfig cfg = fastConfig();
    cfg.chunk_frames = 5;
    const std::vector<Resolution> outputs = {{128, 72}, {64, 36}};

    cfg.num_threads = 1;
    auto serial = transcodeMot(clip, outputs, CodecType::H264, cfg);

    wsva::ThreadPool pool(3);
    cfg.pool = &pool;
    auto first = transcodeMot(clip, outputs, CodecType::H264, cfg);
    auto second = transcodeMot(clip, outputs, CodecType::H264, cfg);

    ASSERT_TRUE(serial.integrity_ok) << serial.integrity_error;
    for (const auto *run : {&first, &second}) {
        ASSERT_TRUE(run->integrity_ok) << run->integrity_error;
        ASSERT_EQ(serial.variants.size(), run->variants.size());
        for (size_t v = 0; v < serial.variants.size(); ++v) {
            const auto &sv = serial.variants[v];
            const auto &pv = run->variants[v];
            ASSERT_EQ(sv.chunks.size(), pv.chunks.size());
            for (size_t c = 0; c < sv.chunks.size(); ++c) {
                EXPECT_EQ(sv.chunks[c].bytes, pv.chunks[c].bytes)
                    << "variant " << v << " chunk " << c;
            }
        }
    }
}

TEST(Pipeline, RateControlledMotSharesStats)
{
    auto clip = sourceClip(16);
    PipelineConfig cfg = fastConfig();
    cfg.encoder.rc_mode = wsva::video::codec::RcMode::TwoPassOffline;
    cfg.encoder.target_bitrate_bps = 250e3;
    auto result = transcodeMot(clip, {{128, 72}, {64, 36}},
                               CodecType::VP9, cfg);
    ASSERT_TRUE(result.integrity_ok) << result.integrity_error;
    EXPECT_GT(result.variants[0].bitrateBps(), 0.0);
}

} // namespace
} // namespace wsva::platform
