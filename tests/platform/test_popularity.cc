#include "platform/popularity.h"

#include <gtest/gtest.h>

namespace wsva::platform {
namespace {

using wsva::video::codec::CodecType;

TEST(Popularity, StretchedPowerLawShape)
{
    wsva::Rng rng(3);
    int popular = 0;
    int moderate = 0;
    int tail = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        switch (bucketForWatchCount(sampleWatchCount(rng))) {
          case PopularityBucket::Popular: ++popular; break;
          case PopularityBucket::Moderate: ++moderate; break;
          case PopularityBucket::LongTail: ++tail; break;
        }
    }
    // The long tail is the majority of videos; the popular bucket is
    // a small fraction (Section 2.2).
    EXPECT_GT(tail, n / 2);
    EXPECT_LT(popular, n / 10);
    EXPECT_GT(popular, 0);
    EXPECT_GT(moderate, n / 50);
}

TEST(Popularity, BucketThresholds)
{
    EXPECT_EQ(bucketForWatchCount(0), PopularityBucket::LongTail);
    EXPECT_EQ(bucketForWatchCount(99), PopularityBucket::LongTail);
    EXPECT_EQ(bucketForWatchCount(100), PopularityBucket::Moderate);
    EXPECT_EQ(bucketForWatchCount(99999), PopularityBucket::Moderate);
    EXPECT_EQ(bucketForWatchCount(100000), PopularityBucket::Popular);
}

TEST(Popularity, AccelerationUnlocksVp9ForModerate)
{
    // The headline Section-4.5 capability: without VCUs only the
    // most popular videos got VP9; with VCUs it moves to upload time
    // for the moderate bucket too.
    const auto before =
        treatmentFor(PopularityBucket::Moderate, /*accelerated=*/false);
    const auto after =
        treatmentFor(PopularityBucket::Moderate, /*accelerated=*/true);
    auto has_vp9 = [](const Treatment &t) {
        for (auto c : t.codecs)
            if (c == CodecType::VP9)
                return true;
        return false;
    };
    EXPECT_FALSE(has_vp9(before));
    EXPECT_TRUE(has_vp9(after));
}

TEST(Popularity, PopularAlwaysGetsVp9)
{
    for (bool acc : {false, true}) {
        const auto t = treatmentFor(PopularityBucket::Popular, acc);
        EXPECT_EQ(t.codecs.size(), 2u);
        EXPECT_EQ(t.rdo_rounds, 3);
    }
}

TEST(Popularity, LongTailStaysCheap)
{
    const auto t = treatmentFor(PopularityBucket::LongTail, true);
    EXPECT_EQ(t.codecs.size(), 1u);
    EXPECT_EQ(t.codecs[0], CodecType::H264);
    EXPECT_EQ(t.rdo_rounds, 1);
}

TEST(Popularity, SamplerIsDeterministic)
{
    wsva::Rng a(9);
    wsva::Rng b(9);
    for (int i = 0; i < 100; ++i)
        ASSERT_EQ(sampleWatchCount(a), sampleWatchCount(b));
}

} // namespace
} // namespace wsva::platform
