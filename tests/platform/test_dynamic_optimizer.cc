#include "platform/dynamic_optimizer.h"

#include <gtest/gtest.h>

#include "common/metrics.h"
#include "common/thread_pool.h"
#include "platform/rq_cache.h"
#include "video/codec/decoder.h"
#include "video/synth.h"

namespace wsva::platform {
namespace {

std::vector<wsva::video::Frame>
clip()
{
    wsva::video::SynthSpec spec;
    spec.width = 80;
    spec.height = 48;
    spec.frame_count = 8;
    spec.detail = 2;
    spec.objects = 2;
    spec.motion = 2.0;
    spec.seed = 77;
    return generateVideo(spec);
}

DynamicOptimizerConfig
fastCfg()
{
    DynamicOptimizerConfig cfg;
    cfg.probe_qps = {24, 36, 48};
    return cfg;
}

TEST(DynamicOptimizer, CurveIsMonotone)
{
    const auto curve = buildRateQualityCurve(clip(), fastCfg());
    ASSERT_EQ(curve.points.size(), 3u);
    // Ascending qp -> descending bitrate and psnr.
    for (size_t i = 1; i < curve.points.size(); ++i) {
        EXPECT_LT(curve.points[i].bitrate_bps,
                  curve.points[i - 1].bitrate_bps);
        EXPECT_LT(curve.points[i].psnr_db, curve.points[i - 1].psnr_db);
    }
}

TEST(DynamicOptimizer, CheapestAtQualityPicksMinimalRate)
{
    const auto curve = buildRateQualityCurve(clip(), fastCfg());
    // A target between the qp=36 and qp=24 points must pick qp=36's
    // neighborhood, not overspend on qp=24.
    const double target = curve.points[1].psnr_db - 0.1;
    const auto &chosen = curve.cheapestAtQuality(target);
    EXPECT_GE(chosen.psnr_db, target);
    EXPECT_EQ(chosen.qp, curve.points[1].qp);
}

TEST(DynamicOptimizer, UnreachableQualityFallsBackToBest)
{
    const auto curve = buildRateQualityCurve(clip(), fastCfg());
    const auto &chosen = curve.cheapestAtQuality(99.0);
    EXPECT_EQ(chosen.qp, curve.points[0].qp); // Highest quality probe.
}

TEST(DynamicOptimizer, BestUnderRateRespectsCap)
{
    const auto curve = buildRateQualityCurve(clip(), fastCfg());
    const double cap = curve.points[1].bitrate_bps * 1.01;
    const auto &chosen = curve.bestUnderRate(cap);
    EXPECT_LE(chosen.bitrate_bps, cap);
    EXPECT_EQ(chosen.qp, curve.points[1].qp);
}

TEST(DynamicOptimizer, ImpossibleCapFallsBackToCheapest)
{
    const auto curve = buildRateQualityCurve(clip(), fastCfg());
    const auto &chosen = curve.bestUnderRate(1.0);
    EXPECT_EQ(chosen.qp, curve.points.back().qp);
}

// The probe fan-out must be byte-exact with the serial path: probes
// are independent ConstQp encodes landing in pre-assigned slots, so
// no schedule may change a single output byte.
TEST(DynamicOptimizer, ParallelProbesMatchSerial)
{
    const auto frames = clip();
    DynamicOptimizerConfig serial_cfg = fastCfg();
    serial_cfg.num_threads = 1;
    const auto serial = buildRateQualityCurve(frames, serial_cfg);

    DynamicOptimizerConfig pool_cfg = fastCfg();
    pool_cfg.num_threads = 4;
    const auto parallel = buildRateQualityCurve(frames, pool_cfg);

    ASSERT_EQ(serial.points.size(), parallel.points.size());
    for (size_t i = 0; i < serial.points.size(); ++i) {
        EXPECT_EQ(serial.points[i].qp, parallel.points[i].qp);
        EXPECT_EQ(serial.points[i].bitrate_bps,
                  parallel.points[i].bitrate_bps);
        EXPECT_EQ(serial.points[i].psnr_db, parallel.points[i].psnr_db);
        EXPECT_EQ(serial.points[i].chunk.bytes,
                  parallel.points[i].chunk.bytes);
    }
}

TEST(DynamicOptimizer, CallerSuppliedPoolMatchesSerial)
{
    const auto frames = clip();
    DynamicOptimizerConfig serial_cfg = fastCfg();
    serial_cfg.num_threads = 1;
    const auto serial = buildRateQualityCurve(frames, serial_cfg);

    wsva::ThreadPool pool(3);
    DynamicOptimizerConfig pool_cfg = fastCfg();
    pool_cfg.pool = &pool;
    const auto parallel = buildRateQualityCurve(frames, pool_cfg);

    ASSERT_EQ(serial.points.size(), parallel.points.size());
    for (size_t i = 0; i < serial.points.size(); ++i) {
        EXPECT_EQ(serial.points[i].chunk.bytes,
                  parallel.points[i].chunk.bytes);
    }
}

TEST(DynamicOptimizer, CurveForCachesAndHits)
{
    const auto frames = clip();
    RqCache cache;
    DynamicOptimizerConfig cfg = fastCfg();
    cfg.num_threads = 1;
    cfg.cache = &cache;

    const auto first = rateQualityCurveFor(frames, cfg);
    ASSERT_NE(first, nullptr);
    EXPECT_EQ(cache.stats().misses, 1u);
    EXPECT_EQ(cache.stats().insertions, 1u);

    const auto second = rateQualityCurveFor(frames, cfg);
    ASSERT_NE(second, nullptr);
    EXPECT_EQ(second.get(), first.get()); // Served from the cache.
    EXPECT_EQ(cache.stats().hits, 1u);

    // The cached curve matches a direct build bit-for-bit.
    DynamicOptimizerConfig plain = fastCfg();
    plain.num_threads = 1;
    const auto direct = buildRateQualityCurve(frames, plain);
    ASSERT_EQ(first->points.size(), direct.points.size());
    for (size_t i = 0; i < direct.points.size(); ++i) {
        EXPECT_EQ(first->points[i].chunk.bytes,
                  direct.points[i].chunk.bytes);
    }

    // A different clip misses; a different probe set misses too.
    auto other = clip();
    other[0].y().at(0, 0) ^= 1;
    const auto third = rateQualityCurveFor(other, cfg);
    EXPECT_NE(third.get(), first.get());
    cfg.probe_qps = {28, 40};
    const auto fourth = rateQualityCurveFor(frames, cfg);
    EXPECT_NE(fourth.get(), first.get());
    EXPECT_EQ(fourth->points.size(), 2u);
}

TEST(DynamicOptimizer, MetricsRecordProbes)
{
    wsva::MetricsRegistry registry;
    DynamicOptimizerConfig cfg = fastCfg();
    cfg.num_threads = 1;
    cfg.metrics = &registry;
    buildRateQualityCurve(clip(), cfg);
    EXPECT_EQ(registry.counter("optimizer.curves_built"), 1u);
    EXPECT_EQ(registry.counter("optimizer.probes"), 3u);
    EXPECT_EQ(registry.histogramCount("optimizer.probe_ms"), 3u);
}

TEST(DynamicOptimizer, SelectedPointCarriesDecodableStream)
{
    const auto curve = buildRateQualityCurve(clip(), fastCfg());
    const auto &chosen = curve.cheapestAtQuality(30.0);
    EXPECT_FALSE(chosen.chunk.bytes.empty());
    const auto decoded =
        wsva::video::codec::decodeChunk(chosen.chunk.bytes);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->frames.size(), 8u);
}

} // namespace
} // namespace wsva::platform
