#include "platform/dynamic_optimizer.h"

#include <gtest/gtest.h>

#include "video/codec/decoder.h"
#include "video/synth.h"

namespace wsva::platform {
namespace {

std::vector<wsva::video::Frame>
clip()
{
    wsva::video::SynthSpec spec;
    spec.width = 80;
    spec.height = 48;
    spec.frame_count = 8;
    spec.detail = 2;
    spec.objects = 2;
    spec.motion = 2.0;
    spec.seed = 77;
    return generateVideo(spec);
}

DynamicOptimizerConfig
fastCfg()
{
    DynamicOptimizerConfig cfg;
    cfg.probe_qps = {24, 36, 48};
    return cfg;
}

TEST(DynamicOptimizer, CurveIsMonotone)
{
    const auto curve = buildRateQualityCurve(clip(), fastCfg());
    ASSERT_EQ(curve.points.size(), 3u);
    // Ascending qp -> descending bitrate and psnr.
    for (size_t i = 1; i < curve.points.size(); ++i) {
        EXPECT_LT(curve.points[i].bitrate_bps,
                  curve.points[i - 1].bitrate_bps);
        EXPECT_LT(curve.points[i].psnr_db, curve.points[i - 1].psnr_db);
    }
}

TEST(DynamicOptimizer, CheapestAtQualityPicksMinimalRate)
{
    const auto curve = buildRateQualityCurve(clip(), fastCfg());
    // A target between the qp=36 and qp=24 points must pick qp=36's
    // neighborhood, not overspend on qp=24.
    const double target = curve.points[1].psnr_db - 0.1;
    const auto &chosen = curve.cheapestAtQuality(target);
    EXPECT_GE(chosen.psnr_db, target);
    EXPECT_EQ(chosen.qp, curve.points[1].qp);
}

TEST(DynamicOptimizer, UnreachableQualityFallsBackToBest)
{
    const auto curve = buildRateQualityCurve(clip(), fastCfg());
    const auto &chosen = curve.cheapestAtQuality(99.0);
    EXPECT_EQ(chosen.qp, curve.points[0].qp); // Highest quality probe.
}

TEST(DynamicOptimizer, BestUnderRateRespectsCap)
{
    const auto curve = buildRateQualityCurve(clip(), fastCfg());
    const double cap = curve.points[1].bitrate_bps * 1.01;
    const auto &chosen = curve.bestUnderRate(cap);
    EXPECT_LE(chosen.bitrate_bps, cap);
    EXPECT_EQ(chosen.qp, curve.points[1].qp);
}

TEST(DynamicOptimizer, ImpossibleCapFallsBackToCheapest)
{
    const auto curve = buildRateQualityCurve(clip(), fastCfg());
    const auto &chosen = curve.bestUnderRate(1.0);
    EXPECT_EQ(chosen.qp, curve.points.back().qp);
}

TEST(DynamicOptimizer, SelectedPointCarriesDecodableStream)
{
    const auto curve = buildRateQualityCurve(clip(), fastCfg());
    const auto &chosen = curve.cheapestAtQuality(30.0);
    EXPECT_FALSE(chosen.chunk.bytes.empty());
    const auto decoded =
        wsva::video::codec::decodeChunk(chosen.chunk.bytes);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->frames.size(), 8u);
}

} // namespace
} // namespace wsva::platform
