#include "platform/rq_cache.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/metrics.h"
#include "common/thread_pool.h"
#include "video/frame.h"

namespace wsva::platform {
namespace {

using wsva::video::Frame;
using wsva::video::codec::CodecType;

/** A fake finished curve whose footprint is ~@p encode_bytes. */
std::shared_ptr<const RateQualityCurve>
fakeCurve(size_t encode_bytes, int qp = 32)
{
    RateQualityCurve curve;
    OperatingPoint point;
    point.qp = qp;
    point.bitrate_bps = 1000.0 * qp;
    point.psnr_db = 40.0;
    point.chunk.bytes.assign(encode_bytes, 0xab);
    curve.points.push_back(std::move(point));
    return std::make_shared<const RateQualityCurve>(std::move(curve));
}

RqCacheKey
keyFor(uint64_t fingerprint)
{
    RqCacheKey key;
    key.clip_fingerprint = fingerprint;
    key.codec = CodecType::VP9;
    key.probe_signature = 7;
    return key;
}

TEST(RqCache, HitReturnsInsertedCurve)
{
    RqCache cache;
    const auto key = keyFor(1);
    EXPECT_EQ(cache.get(key), nullptr);
    const auto curve = fakeCurve(100);
    cache.put(key, curve);
    const auto hit = cache.get(key);
    ASSERT_NE(hit, nullptr);
    EXPECT_EQ(hit.get(), curve.get()); // Same object, no copy.
    const auto stats = cache.stats();
    EXPECT_EQ(stats.hits, 1u);
    EXPECT_EQ(stats.misses, 1u);
    EXPECT_EQ(stats.insertions, 1u);
}

TEST(RqCache, KeyDimensionsAllMiss)
{
    RqCache cache;
    auto key = keyFor(1);
    cache.put(key, fakeCurve(100));
    auto other = key;
    other.clip_fingerprint = 2;
    EXPECT_EQ(cache.get(other), nullptr);
    other = key;
    other.codec = CodecType::H264;
    EXPECT_EQ(cache.get(other), nullptr);
    other = key;
    other.probe_signature = 8;
    EXPECT_EQ(cache.get(other), nullptr);
    EXPECT_NE(cache.get(key), nullptr);
}

TEST(RqCache, EvictsLruUnderByteBudget)
{
    RqCacheConfig cfg;
    cfg.shards = 1; // Deterministic LRU order.
    cfg.capacity_bytes = 4096;
    RqCache cache(cfg);
    // ~1 KiB each once struct overhead counts: 3 fit, the 4th evicts.
    for (uint64_t i = 0; i < 4; ++i)
        cache.put(keyFor(i), fakeCurve(1024));
    EXPECT_LE(cache.sizeBytes(), cfg.capacity_bytes);
    EXPECT_LT(cache.entryCount(), 4u);
    EXPECT_GT(cache.stats().evictions, 0u);
    // Key 0 was least recently used: gone. The newest entry stays.
    EXPECT_EQ(cache.get(keyFor(0)), nullptr);
    EXPECT_NE(cache.get(keyFor(3)), nullptr);
}

TEST(RqCache, GetPromotesToMru)
{
    RqCacheConfig cfg;
    cfg.shards = 1;
    cfg.capacity_bytes = 4096;
    RqCache cache(cfg);
    cache.put(keyFor(0), fakeCurve(1024));
    cache.put(keyFor(1), fakeCurve(1024));
    cache.put(keyFor(2), fakeCurve(1024));
    EXPECT_NE(cache.get(keyFor(0)), nullptr); // 0 is now MRU.
    cache.put(keyFor(3), fakeCurve(1024));    // Evicts 1, not 0.
    EXPECT_NE(cache.get(keyFor(0)), nullptr);
    EXPECT_EQ(cache.get(keyFor(1)), nullptr);
}

TEST(RqCache, OversizeCurveNotCached)
{
    RqCacheConfig cfg;
    cfg.shards = 1;
    cfg.capacity_bytes = 1024;
    RqCache cache(cfg);
    cache.put(keyFor(1), fakeCurve(4096));
    EXPECT_EQ(cache.entryCount(), 0u);
    EXPECT_EQ(cache.get(keyFor(1)), nullptr);
}

TEST(RqCache, RefreshSameKeyKeepsOneEntry)
{
    RqCache cache;
    cache.put(keyFor(1), fakeCurve(100, 32));
    cache.put(keyFor(1), fakeCurve(200, 36));
    EXPECT_EQ(cache.entryCount(), 1u);
    const auto hit = cache.get(keyFor(1));
    ASSERT_NE(hit, nullptr);
    EXPECT_EQ(hit->points[0].qp, 36); // The refreshed curve.
}

TEST(RqCache, ClearDropsEntriesKeepsCounters)
{
    RqCache cache;
    cache.put(keyFor(1), fakeCurve(100));
    EXPECT_NE(cache.get(keyFor(1)), nullptr);
    cache.clear();
    EXPECT_EQ(cache.entryCount(), 0u);
    EXPECT_EQ(cache.sizeBytes(), 0u);
    EXPECT_EQ(cache.get(keyFor(1)), nullptr);
    EXPECT_EQ(cache.stats().hits, 1u);
    EXPECT_EQ(cache.stats().insertions, 1u);
}

TEST(RqCache, RegistersMetricsCounters)
{
    wsva::MetricsRegistry registry;
    RqCacheConfig cfg;
    cfg.metrics = &registry;
    RqCache cache(cfg);
    cache.put(keyFor(1), fakeCurve(100));
    cache.get(keyFor(1));
    cache.get(keyFor(2));
    EXPECT_EQ(registry.counter("rq_cache.hits"), 1u);
    EXPECT_EQ(registry.counter("rq_cache.misses"), 1u);
    EXPECT_EQ(registry.counter("rq_cache.insertions"), 1u);
    EXPECT_GT(registry.gauge("rq_cache.bytes"), 0.0);
    EXPECT_EQ(registry.gauge("rq_cache.entries"), 1.0);
}

// Many threads get/put overlapping keys through a small, evicting
// cache; run under the tsan preset. Consistency: every returned hit
// must be a fully formed curve and the budget must hold at the end.
TEST(RqCache, ConcurrentAccessIsSafe)
{
    RqCacheConfig cfg;
    cfg.shards = 4;
    cfg.capacity_bytes = 64 * 1024;
    RqCache cache(cfg);
    wsva::ThreadPool pool(4);
    pool.parallelFor(256, [&](size_t i) {
        const uint64_t fp = i % 16;
        if (auto hit = cache.get(keyFor(fp))) {
            ASSERT_FALSE(hit->points.empty());
            EXPECT_EQ(hit->points[0].psnr_db, 40.0);
        } else {
            cache.put(keyFor(fp), fakeCurve(2048));
        }
    });
    EXPECT_LE(cache.sizeBytes(), cfg.capacity_bytes);
    const auto stats = cache.stats();
    EXPECT_EQ(stats.hits + stats.misses, 256u);
    EXPECT_GT(stats.insertions, 0u);
}

TEST(RqCacheFingerprint, SensitiveToPixelsAndShape)
{
    std::vector<Frame> clip_a(2, Frame(16, 8, 100));
    std::vector<Frame> clip_b(2, Frame(16, 8, 100));
    EXPECT_EQ(fingerprintClip(clip_a), fingerprintClip(clip_b));
    clip_b[1].y().at(3, 3) ^= 1; // One pixel flips the fingerprint.
    EXPECT_NE(fingerprintClip(clip_a), fingerprintClip(clip_b));
    std::vector<Frame> clip_c(2, Frame(8, 16, 100));
    EXPECT_NE(fingerprintClip(clip_a), fingerprintClip(clip_c));
    std::vector<Frame> clip_d(3, Frame(16, 8, 100));
    EXPECT_NE(fingerprintClip(clip_a), fingerprintClip(clip_d));
}

TEST(RqCacheFingerprint, ProbeSignatureIsOrderInsensitive)
{
    DynamicOptimizerConfig a;
    a.probe_qps = {20, 36, 52};
    DynamicOptimizerConfig b;
    b.probe_qps = {52, 20, 36};
    EXPECT_EQ(probeSignature(a), probeSignature(b));
    b.probe_qps = {20, 36, 44};
    EXPECT_NE(probeSignature(a), probeSignature(b));
    b = a;
    b.fps = 60.0;
    EXPECT_NE(probeSignature(a), probeSignature(b));
    b = a;
    b.hardware = !a.hardware;
    EXPECT_NE(probeSignature(a), probeSignature(b));
}

} // namespace
} // namespace wsva::platform
