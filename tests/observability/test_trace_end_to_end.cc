/**
 * @file
 * One timeline from upload to macroblock: a single Tracer shared by
 * the cluster simulator, the transcode pipeline, the dynamic
 * optimizer, the rate-quality cache, and the hlsim encoder-core model
 * must export one Chrome trace containing spans from every layer —
 * and that export must be machine-parsable, not just greppable.
 */

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "cluster/cluster.h"
#include "common/metrics.h"
#include "common/trace.h"
#include "platform/dynamic_optimizer.h"
#include "platform/pipeline.h"
#include "platform/rq_cache.h"
#include "support/mini_json.h"
#include "vcu/encoder_core.h"
#include "video/synth.h"

namespace wsva {
namespace {

using wsva::cluster::ClusterConfig;
using wsva::cluster::ClusterSim;
using wsva::cluster::makeMotStep;
using wsva::testsupport::JsonValue;
using wsva::testsupport::parseJson;
using wsva::video::codec::CodecType;

std::vector<wsva::video::Frame>
tinyClip()
{
    wsva::video::SynthSpec spec;
    spec.width = 80;
    spec.height = 48;
    spec.frame_count = 8;
    spec.detail = 2;
    spec.objects = 2;
    spec.motion = 2.0;
    spec.seed = 11;
    return generateVideo(spec);
}

/** Drive every instrumented layer through one shared tracer. */
void
exerciseAllLayers(Tracer *tracer)
{
    const auto clip = tinyClip();

    // Cluster layer: a seeded sim records upload/queue_wait/execute
    // spans in sim time.
    ClusterConfig ccfg;
    ccfg.hosts = 1;
    ccfg.vcus_per_host = 2;
    ccfg.seed = 3;
    ccfg.tracer = tracer;
    ClusterSim sim(ccfg);
    for (uint64_t i = 0; i < 4; ++i)
        sim.submit(makeMotStep(i, i, 0, {1920, 1080}, CodecType::VP9));
    sim.run(40.0, 1.0);

    // Platform layer: a real (tiny) transcode on the thread pool.
    wsva::platform::PipelineConfig pcfg;
    pcfg.encoder.rc_mode = wsva::video::codec::RcMode::ConstQp;
    pcfg.encoder.base_qp = 36;
    pcfg.chunk_frames = 4;
    pcfg.num_threads = 2;
    pcfg.tracer = tracer;
    auto result = wsva::platform::transcodeSot(clip, {80, 48},
                                               CodecType::VP9, pcfg);
    ASSERT_TRUE(result.integrity_ok) << result.integrity_error;

    // Optimizer + cache layer: a probe burst that misses, then hits.
    wsva::platform::RqCacheConfig cache_cfg;
    cache_cfg.tracer = tracer;
    wsva::platform::RqCache cache(cache_cfg);
    wsva::platform::DynamicOptimizerConfig ocfg;
    ocfg.probe_qps = {28, 44};
    ocfg.num_threads = 1;
    ocfg.cache = &cache;
    ocfg.tracer = tracer;
    ASSERT_NE(rateQualityCurveFor(clip, ocfg), nullptr);
    ASSERT_NE(rateQualityCurveFor(clip, ocfg), nullptr); // Cache hit.

    // VCU layer: an hlsim stage-model run in cycle time.
    wsva::vcu::EncoderCoreConfig ecfg;
    ecfg.tracer = tracer;
    wsva::vcu::EncoderCoreModel core(ecfg);
    wsva::vcu::EncodeJob job;
    job.width = 320;
    job.height = 180;
    job.frame_count = 2;
    core.estimate(job);
}

TEST(TraceEndToEnd, OneTimelineContainsSpansFromEveryLayer)
{
    Tracer tracer(1 << 16);
    exerciseAllLayers(&tracer);

    std::set<std::string> categories;
    std::set<std::string> names;
    for (const auto &rec : tracer.snapshot()) {
        categories.insert(rec.category);
        names.insert(rec.name);
    }
    EXPECT_TRUE(categories.count("cluster")) << "no cluster spans";
    EXPECT_TRUE(categories.count("pipeline")) << "no pipeline spans";
    EXPECT_TRUE(categories.count("optimizer")) << "no optimizer spans";
    EXPECT_TRUE(categories.count("rq_cache")) << "no rq_cache events";
    EXPECT_TRUE(categories.count("hlsim")) << "no hlsim spans";

    // The load-bearing span names from each layer.
    for (const char *expected :
         {"upload", "queue_wait", "execute", "transcode", "encode_chunk",
          "build_rq_curve", "probe_encode", "rq_cache.miss",
          "rq_cache.hit"})
        EXPECT_TRUE(names.count(expected)) << "missing " << expected;
}

TEST(TraceEndToEnd, ExportedChromeTraceIsParsableAndWellFormed)
{
    Tracer tracer(1 << 16);
    exerciseAllLayers(&tracer);

    JsonValue doc;
    std::string error;
    ASSERT_TRUE(parseJson(tracer.exportChromeTrace(), &doc, &error))
        << error;
    EXPECT_DOUBLE_EQ(doc.numberAt("schema_version"), 1.0);
    EXPECT_EQ(doc.stringAt("displayTimeUnit"), "ms");

    const JsonValue *events = doc.get("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_TRUE(events->isArray());
    ASSERT_GT(events->array.size(), 0u);

    std::set<std::string> cats;
    for (const auto &ev : events->array) {
        ASSERT_TRUE(ev.isObject());
        const std::string ph = ev.stringAt("ph");
        ASSERT_FALSE(ph.empty());
        if (ph == "M")
            continue; // Process metadata carries no cat/ts.
        EXPECT_TRUE(ev.has("ts"));
        EXPECT_TRUE(ev.has("pid"));
        EXPECT_TRUE(ev.has("tid"));
        cats.insert(ev.stringAt("cat"));
        if (ph == "X") {
            EXPECT_TRUE(ev.has("dur"));
            EXPECT_GE(ev.numberAt("dur"), 0.0);
        }
    }
    for (const char *layer :
         {"cluster", "pipeline", "optimizer", "rq_cache", "hlsim"})
        EXPECT_TRUE(cats.count(layer)) << "export lost " << layer;
}

TEST(TraceEndToEnd, ExecutionSpansParentToTheirUploadSpan)
{
    Tracer tracer(1 << 16);
    ClusterConfig ccfg;
    ccfg.hosts = 1;
    ccfg.vcus_per_host = 2;
    ccfg.seed = 5;
    ccfg.tracer = &tracer;
    ClusterSim sim(ccfg);
    for (uint64_t i = 0; i < 3; ++i)
        sim.submit(makeMotStep(i, i, 0, {1920, 1080}, CodecType::VP9));
    sim.run(40.0, 1.0);

    std::set<uint64_t> upload_ids;
    for (const auto &rec : tracer.snapshot())
        if (std::string(rec.name) == "upload")
            upload_ids.insert(rec.id);
    ASSERT_FALSE(upload_ids.empty());

    size_t linked_children = 0;
    for (const auto &rec : tracer.snapshot()) {
        const std::string name = rec.name;
        if (name == "queue_wait" || name == "execute") {
            EXPECT_TRUE(upload_ids.count(rec.parent))
                << name << " not parented to an upload span";
            ++linked_children;
        }
    }
    EXPECT_GE(linked_children, upload_ids.size());
}

TEST(TraceEndToEnd, SeededClusterTraceIsByteIdentical)
{
    auto export_once = [] {
        ClusterConfig cfg;
        cfg.hosts = 2;
        cfg.vcus_per_host = 3;
        cfg.seed = 9;
        ClusterSim sim(cfg);
        for (uint64_t i = 0; i < 6; ++i)
            sim.submit(
                makeMotStep(i, i, 0, {1920, 1080}, CodecType::VP9));
        sim.run(60.0, 1.0);
        return sim.tracer().exportChromeTrace(&sim.traceLog());
    };
    const std::string first = export_once();
    const std::string second = export_once();
    ASSERT_FALSE(first.empty());
    EXPECT_EQ(first, second);
}

TEST(TraceEndToEnd, ClusterExportJsonCarriesSchemaVersionAndSlo)
{
    ClusterConfig cfg;
    cfg.hosts = 1;
    cfg.vcus_per_host = 2;
    cfg.seed = 2;
    ClusterSim sim(cfg);
    for (uint64_t i = 0; i < 3; ++i)
        sim.submit(makeMotStep(i, i, 0, {1920, 1080}, CodecType::VP9));
    sim.run(40.0, 1.0);

    JsonValue doc;
    std::string error;
    ASSERT_TRUE(parseJson(sim.exportJson(), &doc, &error)) << error;
    // 2: "fleet_health" joined the export (see DESIGN.md §8).
    // 3: conservation gained "shed", slo gained deadline-miss fields.
    // 4: conservation gained "rerouted_away", global router export.
    // 5: "build" stamp and "profile" block (continuous profiling).
    // The pinned value is the shared constant, so the exporters and
    // this test can only ever disagree if someone hardcodes a number.
    EXPECT_DOUBLE_EQ(doc.numberAt("schema_version"),
                     ClusterSim::kExportSchemaVersion);
    EXPECT_EQ(ClusterSim::kExportSchemaVersion, 5);

    const JsonValue *fleet = doc.get("fleet_health");
    ASSERT_NE(fleet, nullptr);
    ASSERT_TRUE(fleet->isObject());
    ASSERT_TRUE(fleet->has("counts"));
    EXPECT_GT(fleet->get("counts")->numberAt("total"), 0.0);
    EXPECT_TRUE(fleet->has("racks"));
    EXPECT_TRUE(fleet->has("hosts"));
    EXPECT_TRUE(fleet->has("slo"));

    const JsonValue *slo = doc.get("slo");
    ASSERT_NE(slo, nullptr);
    ASSERT_TRUE(slo->isObject());
    EXPECT_TRUE(slo->has("lifetime_p99"));
    EXPECT_TRUE(slo->has("window_p99"));
    EXPECT_TRUE(slo->has("burn_rate"));
    EXPECT_TRUE(slo->has("alert_active"));
    EXPECT_DOUBLE_EQ(slo->numberAt("completed"), 3.0);

    const JsonValue *metrics = doc.get("metrics");
    ASSERT_NE(metrics, nullptr);
    EXPECT_DOUBLE_EQ(metrics->numberAt("schema_version"), 1.0);
}

// Pin the export schema: bumping it must be a conscious act (update
// the constant here AND in the exporters, and note the change in
// DESIGN.md), because downstream dashboards key on it.
TEST(SchemaVersion, MetricsRegistryToJsonIsPinnedAtOne)
{
    MetricsRegistry registry;
    registry.inc("a.counter");
    JsonValue doc;
    std::string error;
    ASSERT_TRUE(parseJson(registry.toJson(), &doc, &error)) << error;
    EXPECT_DOUBLE_EQ(doc.numberAt("schema_version"), 1.0);
    EXPECT_TRUE(doc.has("counters"));
}

} // namespace
} // namespace wsva
