/**
 * @file
 * Debug-server tests: the HTTP surface (status codes, index, graceful
 * shutdown), the five standard z-pages wired to a live ClusterSim,
 * concurrent scrapes while the sim ticks on another thread, /metrics
 * validity against a real Prometheus text-format parser, and the
 * /statusz reconciliation invariant (state counts partition the fleet
 * on every scrape).
 */

#include <atomic>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/cluster.h"
#include "common/debug_server.h"
#include "common/trace.h"
#include "support/http_client.h"
#include "support/mini_json.h"
#include "support/prom_text.h"

using namespace wsva;
using namespace wsva::cluster;
using wsva::testsupport::httpGet;
using wsva::testsupport::parseJson;
using wsva::testsupport::parsePrometheusText;

namespace {

TEST(DebugServer, StartsOnEphemeralPortAndStops)
{
    DebugServer server;
    server.addPage("/ping", "ping", [](const std::string &) {
        DebugResponse resp;
        resp.body = "pong\n";
        return resp;
    });
    ASSERT_TRUE(server.start());
    EXPECT_TRUE(server.running());
    EXPECT_GT(server.port(), 0);

    const auto resp = httpGet(server.port(), "/ping");
    ASSERT_TRUE(resp.ok);
    EXPECT_EQ(resp.status, 200);
    EXPECT_EQ(resp.body, "pong\n");
    EXPECT_EQ(resp.headers.at("connection"), "close");

    server.stop();
    EXPECT_FALSE(server.running());
    // stop() is idempotent.
    server.stop();
    EXPECT_EQ(server.requestsServed(), 1u);
}

TEST(DebugServer, UnknownPathIs404WithIndex)
{
    DebugServer server;
    server.addPage("/known", "a known page", [](const std::string &) {
        return DebugResponse{};
    });
    ASSERT_TRUE(server.start());
    const auto resp = httpGet(server.port(), "/definitely-not-here");
    ASSERT_TRUE(resp.ok);
    EXPECT_EQ(resp.status, 404);
    // The 404 body lists registered pages so a human can recover.
    EXPECT_NE(resp.body.find("/known"), std::string::npos);
    server.stop();
}

TEST(DebugServer, NonGetIs405)
{
    DebugServer server;
    server.addPage("/page", "page", [](const std::string &) {
        return DebugResponse{};
    });
    ASSERT_TRUE(server.start());
    const auto resp = httpGet(server.port(), "/page", "POST");
    ASSERT_TRUE(resp.ok);
    EXPECT_EQ(resp.status, 405);
    server.stop();
}

TEST(DebugServer, IndexListsPagesWithHelp)
{
    DebugServer server;
    server.addPage("/alpha", "the alpha page", [](const std::string &) {
        return DebugResponse{};
    });
    server.addPage("/beta", "the beta page", [](const std::string &) {
        return DebugResponse{};
    });
    ASSERT_TRUE(server.start());
    const auto resp = httpGet(server.port(), "/");
    ASSERT_TRUE(resp.ok);
    EXPECT_EQ(resp.status, 200);
    EXPECT_NE(resp.body.find("/alpha"), std::string::npos);
    EXPECT_NE(resp.body.find("the beta page"), std::string::npos);
    server.stop();
}

TEST(DebugServer, QueryStringIsStripped)
{
    DebugServer server;
    std::string seen_path;
    server.addPage("/q", "query test", [&](const std::string &path) {
        seen_path = path;
        return DebugResponse{};
    });
    ASSERT_TRUE(server.start());
    const auto resp = httpGet(server.port(), "/q?foo=bar&baz=1");
    ASSERT_TRUE(resp.ok);
    EXPECT_EQ(resp.status, 200);
    EXPECT_EQ(seen_path, "/q");
    server.stop();
}

TEST(DebugServer, HandlerErrorsDoNotKillServer)
{
    DebugServer server;
    server.addPage("/fail", "always 500", [](const std::string &) {
        DebugResponse resp;
        resp.status = 500;
        resp.body = "boom\n";
        return resp;
    });
    server.addPage("/ok", "fine", [](const std::string &) {
        return DebugResponse{};
    });
    ASSERT_TRUE(server.start());
    EXPECT_EQ(httpGet(server.port(), "/fail").status, 500);
    EXPECT_EQ(httpGet(server.port(), "/ok").status, 200);
    server.stop();
}

ClusterConfig
demoConfig()
{
    ClusterConfig cfg;
    cfg.hosts = 4;
    cfg.vcus_per_host = 5;
    cfg.hosts_per_rack = 2;
    cfg.seed = 7;
    cfg.vcu_hard_fault_per_hour = 30.0;
    cfg.vcu_silent_fault_per_hour = 15.0;
    cfg.failure.host_fault_threshold = 3;
    cfg.failure.repair_seconds = 150.0;
    cfg.failure.repair_cap = 1;
    cfg.fleet_publish_every_ticks = 5;
    return cfg;
}

ArrivalFn
steadyArrivals()
{
    auto counter = std::make_shared<uint64_t>(0);
    return [counter](double, double) {
        std::vector<TranscodeStep> steps;
        for (int i = 0; i < 3; ++i) {
            const uint64_t id = (*counter)++;
            steps.push_back(makeMotStep(
                id, id / 8, static_cast<int>(id % 8), {1280, 720},
                wsva::video::codec::CodecType::VP9));
        }
        return steps;
    };
}

TEST(DebugServer, ZPagesServeFromSeededSim)
{
    ClusterSim sim(demoConfig());
    sim.run(120.0, 1.0, steadyArrivals());

    DebugServer server;
    sim.attachDebugServer(server, "test build");
    ASSERT_TRUE(server.start());

    // /healthz: JSON liveness with build info and fleet summary.
    const auto healthz = httpGet(server.port(), "/healthz");
    ASSERT_EQ(healthz.status, 200);
    EXPECT_NE(healthz.headers.at("content-type").find(
                  "application/json"),
              std::string::npos);
    wsva::testsupport::JsonValue hdoc;
    std::string error;
    ASSERT_TRUE(parseJson(healthz.body, &hdoc, &error)) << error;
    ASSERT_TRUE(hdoc.isObject());
    EXPECT_EQ(hdoc.get("status")->str, "ok");
    EXPECT_EQ(hdoc.get("build")->str, "test build");
    EXPECT_EQ(hdoc.numberAt("total_vcus"), 20.0);
    EXPECT_GT(hdoc.numberAt("fleet_publishes"), 0.0);

    // /varz: the registry as JSON.
    const auto varz = httpGet(server.port(), "/varz");
    ASSERT_EQ(varz.status, 200);
    wsva::testsupport::JsonValue vdoc;
    ASSERT_TRUE(parseJson(varz.body, &vdoc, &error)) << error;
    ASSERT_TRUE(vdoc.isObject());
    ASSERT_TRUE(vdoc.has("counters"));
    EXPECT_GT(vdoc.get("counters")->numberAt("cluster.steps_completed"),
              0.0);

    // /metrics: valid Prometheus exposition (deep-checked below).
    const auto metrics = httpGet(server.port(), "/metrics");
    ASSERT_EQ(metrics.status, 200);
    EXPECT_NE(metrics.headers.at("content-type").find("version=0.0.4"),
              std::string::npos);
    const auto prom = parsePrometheusText(metrics.body);
    EXPECT_TRUE(prom.ok) << prom.error;

    // /tracez: span groups with latency columns.
    const auto tracez = httpGet(server.port(), "/tracez");
    ASSERT_EQ(tracez.status, 200);
    EXPECT_NE(tracez.body.find("p99"), std::string::npos);
    EXPECT_NE(tracez.body.find("upload"), std::string::npos);

    // /statusz: the fleet rollup.
    const auto statusz = httpGet(server.port(), "/statusz");
    ASSERT_EQ(statusz.status, 200);
    EXPECT_NE(statusz.body.find("cluster"), std::string::npos);
    EXPECT_NE(statusz.body.find("rack 0"), std::string::npos);

    server.stop();
    EXPECT_GE(server.requestsServed(), 5u);
}

TEST(DebugServer, MetricsExpositionMatchesRegistry)
{
    ClusterSim sim(demoConfig());
    sim.run(60.0, 1.0, steadyArrivals());

    DebugServer server;
    sim.attachDebugServer(server);
    ASSERT_TRUE(server.start());
    const auto resp = httpGet(server.port(), "/metrics");
    server.stop();
    ASSERT_EQ(resp.status, 200);

    const auto prom = parsePrometheusText(resp.body);
    ASSERT_TRUE(prom.ok) << prom.error;

    // Counter value round-trips exactly.
    const auto *fam = prom.family("cluster_steps_completed");
    ASSERT_NE(fam, nullptr);
    EXPECT_EQ(fam->type, "counter");
    ASSERT_EQ(fam->samples.size(), 1u);
    EXPECT_EQ(fam->samples[0].value,
              static_cast<double>(sim.metricsRegistry().counter(
                  "cluster.steps_completed")));

    // The fleet gauges from the rollup are exposed too.
    const auto *healthy = prom.family("fleet_healthy");
    ASSERT_NE(healthy, nullptr);
    EXPECT_EQ(healthy->type, "gauge");
}

TEST(DebugServer, ConcurrentScrapesWhileSimRuns)
{
    // The acceptance scenario: a seeded sim ticking on one thread
    // while scrapers hammer every endpoint. Every /statusz scrape
    // must see counts that partition the fleet; every /metrics
    // scrape must parse as valid Prometheus text.
    ClusterSim sim(demoConfig());
    DebugServer server;
    sim.attachDebugServer(server, "concurrent test");
    ASSERT_TRUE(server.start());
    const uint16_t port = server.port();

    std::thread sim_thread(
        [&] { sim.run(400.0, 1.0, steadyArrivals()); });

    std::atomic<int> bad_statusz{0};
    std::atomic<int> bad_metrics{0};
    std::atomic<int> transport_errors{0};
    const int total_vcus = sim.totalVcus();
    std::vector<std::thread> scrapers;
    for (int t = 0; t < 3; ++t) {
        scrapers.emplace_back([&, t] {
            for (int i = 0; i < 25; ++i) {
                // Rotate through all five pages; deep-check two.
                const auto health = httpGet(port, "/healthz");
                const auto varz = httpGet(port, "/varz");
                const auto tracez = httpGet(port, "/tracez");
                if (!health.ok || !varz.ok || !tracez.ok)
                    transport_errors.fetch_add(1);

                const auto statusz = httpGet(port, "/statusz");
                if (statusz.status != 200) {
                    transport_errors.fetch_add(1);
                } else if (statusz.body.find("no fleet-health") ==
                           std::string::npos) {
                    // Reconcile: the cluster row's four counts must
                    // sum to the fleet size on EVERY scrape.
                    const size_t row = statusz.body.find("cluster");
                    unsigned long long ok_n = 0;
                    unsigned long long deg = 0;
                    unsigned long long quar = 0;
                    unsigned long long rep = 0;
                    if (row == std::string::npos ||
                        std::sscanf(statusz.body.c_str() + row,
                                    "cluster %llu ok %llu deg "
                                    "%llu quar %llu rep",
                                    &ok_n, &deg, &quar, &rep) != 4 ||
                        ok_n + deg + quar + rep !=
                            static_cast<unsigned long long>(
                                total_vcus))
                        bad_statusz.fetch_add(1);
                }

                if (t == 0) {
                    const auto metrics = httpGet(port, "/metrics");
                    if (metrics.status != 200 ||
                        !parsePrometheusText(metrics.body).ok)
                        bad_metrics.fetch_add(1);
                }
            }
        });
    }
    for (auto &s : scrapers)
        s.join();
    sim_thread.join();
    server.stop();

    EXPECT_EQ(transport_errors.load(), 0);
    EXPECT_EQ(bad_statusz.load(), 0);
    EXPECT_EQ(bad_metrics.load(), 0);
    EXPECT_GE(server.requestsServed(), 3u * 25u * 4u);

    // After the run, the final published rollup reconciles exactly.
    const auto snap = sim.fleetHealth().snapshot();
    ASSERT_NE(snap, nullptr);
    EXPECT_EQ(snap->cluster.total(),
              static_cast<uint64_t>(total_vcus));
}

TEST(DebugServer, StatuszCountsReconcileOnEveryScrape)
{
    // Stronger form of the acceptance check: scrape /statusz's JSON
    // sibling (exportJson's fleet_health) concurrently with the sim
    // via the board, and assert healthy+degraded+quarantined+
    // in_repair == fleet size for every snapshot observed.
    ClusterSim sim(demoConfig());
    DebugServer server;
    sim.attachDebugServer(server);
    ASSERT_TRUE(server.start());

    std::thread sim_thread(
        [&] { sim.run(300.0, 1.0, steadyArrivals()); });

    const uint64_t fleet = static_cast<uint64_t>(sim.totalVcus());
    int checked = 0;
    int mismatches = 0;
    for (int i = 0; i < 60; ++i) {
        const auto snap = sim.fleetHealth().snapshot();
        if (snap == nullptr)
            continue;
        ++checked;
        if (snap->cluster.total() != fleet)
            ++mismatches;
        HealthCounts from_hosts;
        for (const auto &host : snap->hosts)
            from_hosts.merge(host.counts);
        if (from_hosts.total() != fleet)
            ++mismatches;
    }
    sim_thread.join();
    server.stop();
    EXPECT_GT(checked, 0);
    EXPECT_EQ(mismatches, 0);
}

TEST(DebugServer, TracezRendersGroupedSpans)
{
    Tracer tracer(1024);
    tracer.setEnabled(true);
    for (int i = 0; i < 10; ++i) {
        tracer.recordSimSpan("encode", "test",
                             static_cast<double>(i) * 1e6,
                             static_cast<double>(i + 1) * 1e6, 0, 0, 1);
    }
    const std::string body = renderTracez(tracer);
    EXPECT_NE(body.find("encode"), std::string::npos);
    EXPECT_NE(body.find("count"), std::string::npos);
    EXPECT_NE(body.find("10"), std::string::npos);
}

} // namespace
