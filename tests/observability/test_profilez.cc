/**
 * @file
 * /profilez surface tests: the z-page and its flame export served
 * from a live sim, the build-info stamp on /varz and /healthz,
 * exportJson's "profile"/"build" blocks (schema 5), a scrape-vs-
 * record hammer mirroring the PR 5 DebugServer hammers (TSan
 * acceptance), and the profiler on/off determinism proof — enabling
 * continuous profiling must leave the sim ledger and RNG streams
 * byte-identical.
 */

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/cluster.h"
#include "common/debug_server.h"
#include "common/logging.h"
#include "common/profiler.h"
#include "support/http_client.h"
#include "support/mini_json.h"

using namespace wsva;
using namespace wsva::cluster;
using prof::ProfileRegistry;
using wsva::testsupport::httpGet;
using wsva::testsupport::parseJson;

namespace {

ProfileRegistry &
freshProfiler()
{
    ProfileRegistry &reg = ProfileRegistry::instance();
    reg.stopSampler();
    reg.setEnabled(false);
    reg.reset();
    return reg;
}

ClusterConfig
demoConfig()
{
    ClusterConfig cfg;
    cfg.hosts = 4;
    cfg.vcus_per_host = 5;
    cfg.hosts_per_rack = 2;
    cfg.seed = 7;
    cfg.vcu_hard_fault_per_hour = 30.0;
    cfg.vcu_silent_fault_per_hour = 15.0;
    cfg.failure.host_fault_threshold = 3;
    cfg.failure.repair_seconds = 150.0;
    cfg.failure.repair_cap = 1;
    cfg.fleet_publish_every_ticks = 5;
    return cfg;
}

ArrivalFn
steadyArrivals()
{
    auto counter = std::make_shared<uint64_t>(0);
    return [counter](double, double) {
        std::vector<TranscodeStep> steps;
        for (int i = 0; i < 3; ++i) {
            const uint64_t id = (*counter)++;
            steps.push_back(makeMotStep(
                id, id / 8, static_cast<int>(id % 8), {1280, 720},
                wsva::video::codec::CodecType::VP9));
        }
        return steps;
    };
}

TEST(Profilez, PageServesTopTableAndFlameFromLiveSim)
{
    ProfileRegistry &reg = freshProfiler();
    reg.setEnabled(true);

    ClusterSim sim(demoConfig());
    sim.run(120.0, 1.0, steadyArrivals());
    reg.publish();

    DebugServer server;
    sim.attachDebugServer(server, "profilez test");
    ASSERT_TRUE(server.start());

    // The index lists both profiling pages.
    const auto index = httpGet(server.port(), "/");
    ASSERT_EQ(index.status, 200);
    EXPECT_NE(index.body.find("/profilez"), std::string::npos);

    const auto profilez = httpGet(server.port(), "/profilez");
    ASSERT_EQ(profilez.status, 200);
    EXPECT_NE(profilez.body.find("profiler: enabled"),
              std::string::npos);
    // The tick engine's dispatch phase must show up with real time.
    EXPECT_NE(profilez.body.find("cluster/dispatch"),
              std::string::npos);
    EXPECT_NE(profilez.body.find("per-thread:"), std::string::npos);

    const auto flame = httpGet(server.port(), "/profilez/flame");
    ASSERT_EQ(flame.status, 200);
    EXPECT_NE(flame.body.find("cluster;dispatch"), std::string::npos);

    server.stop();
    reg.setEnabled(false);
}

TEST(Profilez, VarzAndHealthzCarryBuildStamp)
{
    freshProfiler();
    ClusterSim sim(demoConfig());
    sim.run(30.0, 1.0, steadyArrivals());

    DebugServer server;
    sim.attachDebugServer(server, "stamp test");
    ASSERT_TRUE(server.start());

    // /varz keeps its top-level registry keys and gains "build".
    const auto varz = httpGet(server.port(), "/varz");
    ASSERT_EQ(varz.status, 200);
    wsva::testsupport::JsonValue vdoc;
    std::string error;
    ASSERT_TRUE(parseJson(varz.body, &vdoc, &error)) << error;
    ASSERT_TRUE(vdoc.has("counters"));
    ASSERT_TRUE(vdoc.has("build"));
    const auto *build = vdoc.get("build");
    ASSERT_TRUE(build->isObject());
    EXPECT_FALSE(build->get("build_type")->str.empty());
    EXPECT_EQ(build->numberAt("export_schema_version"),
              ClusterSim::kExportSchemaVersion);
    EXPECT_GE(build->numberAt("uptime_s"), 0.0);
    ASSERT_NE(build->get("native_arch"), nullptr);

    const auto healthz = httpGet(server.port(), "/healthz");
    ASSERT_EQ(healthz.status, 200);
    wsva::testsupport::JsonValue hdoc;
    ASSERT_TRUE(parseJson(healthz.body, &hdoc, &error)) << error;
    ASSERT_TRUE(hdoc.has("build_info"));
    EXPECT_EQ(hdoc.get("build_info")->numberAt("export_schema_version"),
              ClusterSim::kExportSchemaVersion);

    server.stop();
}

TEST(Profilez, ExportJsonHasProfileAndBuildBlocks)
{
    ProfileRegistry &reg = freshProfiler();
    reg.setEnabled(true);
    ClusterSim sim(demoConfig());
    sim.run(60.0, 1.0, steadyArrivals());
    reg.setEnabled(false);

    wsva::testsupport::JsonValue doc;
    std::string error;
    ASSERT_TRUE(parseJson(sim.exportJson(), &doc, &error)) << error;
    EXPECT_EQ(doc.numberAt("schema_version"), 5.0);

    const auto *build = doc.get("build");
    ASSERT_NE(build, nullptr);
    EXPECT_EQ(build->numberAt("export_schema_version"), 5.0);

    const auto *profile = doc.get("profile");
    ASSERT_NE(profile, nullptr);
    ASSERT_TRUE(profile->isObject());
    const auto *top = profile->get("top");
    ASSERT_NE(top, nullptr);
    ASSERT_TRUE(top->isArray());
    ASSERT_FALSE(top->array.empty());
    // Every row names a phase and carries the attribution columns.
    for (const auto &row : top->array) {
        EXPECT_FALSE(row.get("phase")->str.empty());
        EXPECT_GE(row.numberAt("excl_ms"), 0.0);
        EXPECT_LE(row.numberAt("excl_ms"),
                  row.numberAt("incl_ms") + 1e-9);
        EXPECT_GE(row.numberAt("calls"), 1.0);
    }
}

TEST(Profilez, ScrapeVsRecordHammerWhileSimRuns)
{
    // The TSan acceptance scenario: the sim records phases (and the
    // sampler walks published stacks) on their own threads while
    // scrapers hammer /profilez, /profilez/flame, and /varz.
    ProfileRegistry &reg = freshProfiler();
    reg.setEnabled(true);
    reg.startSampler(/*period_us=*/500);

    ClusterSim sim(demoConfig());
    DebugServer server;
    sim.attachDebugServer(server, "profilez hammer");
    ASSERT_TRUE(server.start());
    const uint16_t port = server.port();

    std::thread sim_thread(
        [&] { sim.run(400.0, 1.0, steadyArrivals()); });

    std::atomic<int> transport_errors{0};
    std::atomic<int> bad_pages{0};
    std::vector<std::thread> scrapers;
    for (int t = 0; t < 3; ++t) {
        scrapers.emplace_back([&] {
            for (int i = 0; i < 25; ++i) {
                const auto prof = httpGet(port, "/profilez");
                const auto flame = httpGet(port, "/profilez/flame");
                const auto varz = httpGet(port, "/varz");
                if (!prof.ok || !flame.ok || !varz.ok) {
                    transport_errors.fetch_add(1);
                    continue;
                }
                if (prof.status != 200 || flame.status != 200 ||
                    varz.status != 200)
                    bad_pages.fetch_add(1);
                // Every scrape renders a complete table header even
                // mid-run (double-buffered board or live fallback).
                if (prof.body.find("profiler:") == std::string::npos)
                    bad_pages.fetch_add(1);
            }
        });
    }
    for (auto &t : scrapers)
        t.join();
    sim_thread.join();
    server.stop();
    reg.stopSampler();
    reg.setEnabled(false);

    EXPECT_EQ(transport_errors.load(), 0);
    EXPECT_EQ(bad_pages.load(), 0);
}

/** Ledger fields that must be bit-identical across profiled and
 *  unprofiled runs of the same seeded scenario. */
std::string
ledgerFingerprint(const ClusterMetrics &m, const ClusterSim &sim)
{
    const ConservationSnapshot c = sim.conservation();
    return strformat(
        "submitted=%llu completed=%llu failed=%llu retried=%llu "
        "corrupt=%llu escaped=%llu shed=%llu preempted=%llu "
        "placed=%llu rejected=%llu backlog=%zu inflight=%zu "
        "pixels=%.17g util=%.17g "
        "c.submitted=%llu c.completed=%llu c.failed=%llu "
        "c.inflight=%llu c.backlog=%llu c.shed=%llu holds=%d "
        "trace_events=%llu",
        (unsigned long long)m.steps_submitted,
        (unsigned long long)m.steps_completed,
        (unsigned long long)m.steps_failed,
        (unsigned long long)m.steps_retried,
        (unsigned long long)m.corrupt_detected,
        (unsigned long long)m.corrupt_escaped,
        (unsigned long long)m.steps_shed,
        (unsigned long long)m.steps_preempted,
        (unsigned long long)m.sched_placed,
        (unsigned long long)m.sched_rejected, m.backlog_remaining,
        m.steps_in_flight, m.output_pixels, m.encoder_utilization,
        (unsigned long long)c.submitted, (unsigned long long)c.completed,
        (unsigned long long)c.failed_terminal,
        (unsigned long long)c.in_flight, (unsigned long long)c.backlog,
        (unsigned long long)c.shed, c.holds() ? 1 : 0,
        (unsigned long long)sim.traceLog().size());
}

TEST(ProfilerDeterminism, OnOffLeavesLedgerAndRngByteIdentical)
{
    // The fault schedule is RNG-driven, so equality of every ledger
    // field across a dark run and a fully-profiled run (timers +
    // sampler) proves the profiler never touches the RNG streams or
    // sim state — it only reads clocks and writes its own TLS.
    for (const SimEngine engine :
         {SimEngine::Tick, SimEngine::Event}) {
        ClusterConfig cfg = demoConfig();
        cfg.engine = engine;

        ProfileRegistry &reg = freshProfiler();
        ClusterSim dark(cfg);
        const ClusterMetrics m_dark =
            dark.run(300.0, 1.0, steadyArrivals());
        const std::string fp_dark = ledgerFingerprint(m_dark, dark);
        const std::string trace_dark = dark.traceLog().toJson(100000);

        reg.setEnabled(true);
        reg.startSampler(/*period_us=*/500);
        ClusterSim profiled(cfg);
        const ClusterMetrics m_prof =
            profiled.run(300.0, 1.0, steadyArrivals());
        reg.stopSampler();
        reg.setEnabled(false);
        const std::string fp_prof =
            ledgerFingerprint(m_prof, profiled);
        const std::string trace_prof =
            profiled.traceLog().toJson(100000);

        EXPECT_EQ(fp_dark, fp_prof) << "engine "
                                    << static_cast<int>(engine);
        // The full trace (every sim event with timestamps) is the
        // byte-level witness of the RNG-driven schedule.
        EXPECT_EQ(trace_dark, trace_prof);
    }
}

} // namespace
