/**
 * @file
 * EventQueue suite: heap ordering, deterministic tie-breaks, indexed
 * cancellation with generation-tagged handles, and slab reuse — the
 * properties the event-driven cluster core leans on.
 */

#include "cluster/event_queue.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.h"

namespace wsva::cluster {
namespace {

TEST(EventQueue, PopsInTimeOrder)
{
    EventQueue q;
    q.schedule(3.0, SimEventType::WorkerDone, 3);
    q.schedule(1.0, SimEventType::WorkerDone, 1);
    q.schedule(2.0, SimEventType::WorkerDone, 2);
    EXPECT_EQ(q.size(), 3u);
    EXPECT_DOUBLE_EQ(q.nextTime(), 1.0);
    EXPECT_EQ(q.pop().arg, 1);
    EXPECT_EQ(q.pop().arg, 2);
    EXPECT_EQ(q.pop().arg, 3);
    EXPECT_TRUE(q.empty());
}

TEST(EventQueue, EqualTimesBreakByTypeThenSequence)
{
    // At one timestamp the tick phase order must be reproduced:
    // arrivals before faults before repairs before completions
    // before SLO accounting before publish — and within a type,
    // schedule order.
    EventQueue q;
    q.schedule(5.0, SimEventType::Publish, 60);
    q.schedule(5.0, SimEventType::WorkerDone, 40);
    q.schedule(5.0, SimEventType::ArrivalBatch, 0);
    q.schedule(5.0, SimEventType::WorkerDone, 41);
    q.schedule(5.0, SimEventType::HardFault, 10);
    q.schedule(5.0, SimEventType::RepairDone, 30);
    q.schedule(5.0, SimEventType::SloEval, 50);
    q.schedule(5.0, SimEventType::SilentFault, 20);

    std::vector<int32_t> order;
    while (!q.empty())
        order.push_back(q.pop().arg);
    EXPECT_EQ(order, (std::vector<int32_t>{0, 10, 20, 30, 40, 41, 50, 60}));
}

TEST(EventQueue, CancelRemovesOnlyTheTargetedEvent)
{
    EventQueue q;
    auto h1 = q.schedule(1.0, SimEventType::WorkerDone, 1);
    auto h2 = q.schedule(2.0, SimEventType::WorkerDone, 2);
    auto h3 = q.schedule(3.0, SimEventType::WorkerDone, 3);
    EXPECT_TRUE(q.pending(h2));
    EXPECT_DOUBLE_EQ(q.timeOf(h2), 2.0);
    EXPECT_TRUE(q.cancel(h2));
    EXPECT_FALSE(q.pending(h2));
    EXPECT_TRUE(q.pending(h1));
    EXPECT_TRUE(q.pending(h3));
    EXPECT_EQ(q.pop().arg, 1);
    EXPECT_EQ(q.pop().arg, 3);
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.cancelled(), 1u);
}

TEST(EventQueue, StaleHandlesAreDetected)
{
    EventQueue q;
    auto h1 = q.schedule(1.0, SimEventType::WorkerDone, 1);
    (void)q.pop(); // h1's event fired; its slot goes to the free list.
    EXPECT_FALSE(q.pending(h1));
    EXPECT_FALSE(q.cancel(h1));

    // The slot is reused by a new event; the old handle must still be
    // stale and cancelling it must not disturb the new event.
    auto h2 = q.schedule(2.0, SimEventType::WorkerDone, 2);
    EXPECT_FALSE(q.cancel(h1));
    EXPECT_TRUE(q.pending(h2));
    EXPECT_EQ(q.pop().arg, 2);

    // Double cancel is a no-op too.
    auto h3 = q.schedule(3.0, SimEventType::WorkerDone, 3);
    EXPECT_TRUE(q.cancel(h3));
    EXPECT_FALSE(q.cancel(h3));
    EXPECT_EQ(q.cancelled(), 1u);
}

TEST(EventQueue, InvalidHandleIsNeverPending)
{
    EventQueue q;
    EXPECT_FALSE(q.pending(EventQueue::kInvalidHandle));
    EXPECT_FALSE(q.cancel(EventQueue::kInvalidHandle));
}

TEST(EventQueue, RandomizedAgainstReferenceOrdering)
{
    // Fuzz: random schedules and cancels; what remains must pop in
    // exactly the reference order (stable sort by time, type, seq).
    wsva::Rng rng(1234);
    EventQueue q;
    struct Ref
    {
        double time;
        SimEventType type;
        uint64_t seq;
        int32_t arg;
        EventQueue::Handle handle;
        bool cancelled = false;
    };
    std::vector<Ref> refs;
    for (int i = 0; i < 5000; ++i) {
        const double t = rng.uniformReal(0.0, 100.0);
        const auto type =
            static_cast<SimEventType>(rng.uniformInt(7));
        auto h = q.schedule(t, type, i);
        refs.push_back({t, type, static_cast<uint64_t>(i), i, h});
        if (rng.bernoulli(0.3)) {
            const auto victim = rng.uniformInt(static_cast<uint32_t>(
                refs.size()));
            if (!refs[victim].cancelled) {
                EXPECT_TRUE(q.cancel(refs[victim].handle));
                refs[victim].cancelled = true;
            }
        }
    }
    std::vector<Ref> expect;
    for (const auto &r : refs) {
        if (!r.cancelled)
            expect.push_back(r);
    }
    std::sort(expect.begin(), expect.end(), [](const Ref &a, const Ref &b) {
        if (a.time != b.time)
            return a.time < b.time;
        if (a.type != b.type)
            return a.type < b.type;
        return a.seq < b.seq;
    });
    EXPECT_EQ(q.size(), expect.size());
    for (const auto &r : expect) {
        ASSERT_FALSE(q.empty());
        EXPECT_EQ(q.pop().arg, r.arg);
    }
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.scheduled(), 5000u);
    EXPECT_EQ(q.popped() + q.cancelled(), 5000u);
}

TEST(EventQueue, SlabReusesFreedSlots)
{
    // Steady-state schedule/pop cycles must not grow the slab: the
    // event engine runs millions of events through a queue whose
    // pending set stays small.
    EventQueue q;
    for (int round = 0; round < 1000; ++round) {
        for (int i = 0; i < 4; ++i)
            q.schedule(static_cast<double>(round) + i * 0.1,
                       SimEventType::WorkerDone, i);
        for (int i = 0; i < 4; ++i)
            (void)q.pop();
    }
    EXPECT_TRUE(q.empty());
    EXPECT_LE(q.capacityBytes(), 4096u);
    EXPECT_EQ(q.scheduled(), 4000u);
    EXPECT_EQ(q.popped(), 4000u);
}

} // namespace
} // namespace wsva::cluster
