#include "cluster/pools.h"

#include <gtest/gtest.h>

#include <memory>

namespace wsva::cluster {
namespace {

using wsva::video::codec::CodecType;

class PoolsTest : public testing::Test
{
  protected:
    void
    SetUp() override
    {
        for (int i = 0; i < 6; ++i) {
            owned_.push_back(std::make_unique<Worker>(
                i, WorkerType::Vcu, vcuWorkerCapacity()));
            workers_.push_back(owned_.back().get());
        }
    }

    static TranscodeStep
    step(uint64_t id, UseCase use, Priority prio)
    {
        auto s = makeMotStep(id, id, 0, {1920, 1080}, CodecType::VP9);
        s.use_case = use;
        s.priority = prio;
        return s;
    }

    std::vector<std::unique_ptr<Worker>> owned_;
    std::vector<Worker *> workers_;
    ResourceMappingPolicy policy_;
};

TEST_F(PoolsTest, WorkersDistributedRoundRobin)
{
    PoolManager mgr(workers_, {{UseCase::Upload, Priority::Normal},
                               {UseCase::Live, Priority::Critical}});
    EXPECT_EQ(mgr.pools()[0].workerCount(), 3u);
    EXPECT_EQ(mgr.pools()[1].workerCount(), 3u);
}

TEST_F(PoolsTest, StepsRouteToTheirPool)
{
    PoolManager mgr(workers_, {{UseCase::Upload, Priority::Normal},
                               {UseCase::Live, Priority::Critical}});
    mgr.submit(step(1, UseCase::Upload, Priority::Normal));
    mgr.submit(step(2, UseCase::Live, Priority::Critical));
    mgr.submit(step(3, UseCase::Live, Priority::Critical));
    EXPECT_EQ(
        mgr.pool({UseCase::Upload, Priority::Normal})->backlogSize(), 1u);
    EXPECT_EQ(
        mgr.pool({UseCase::Live, Priority::Critical})->backlogSize(), 2u);
}

TEST_F(PoolsTest, ScheduleRespectsPoolBoundaries)
{
    PoolManager mgr(workers_, {{UseCase::Upload, Priority::Normal},
                               {UseCase::Live, Priority::Critical}});
    for (uint64_t i = 0; i < 4; ++i)
        mgr.submit(step(i, UseCase::Upload, Priority::Normal));
    const int placed = mgr.scheduleAll(0.0, policy_);
    EXPECT_EQ(placed, 4);
    // Only upload-pool workers got work.
    for (Worker *w :
         mgr.pool({UseCase::Live, Priority::Critical})->workers())
        EXPECT_TRUE(w->idle());
}

TEST_F(PoolsTest, RebalanceMovesIdleWorkersTowardDemand)
{
    PoolManager mgr(workers_, {{UseCase::Upload, Priority::Normal},
                               {UseCase::Live, Priority::Critical}});
    // Saturate the upload pool far beyond its 3 workers.
    for (uint64_t i = 0; i < 60; ++i)
        mgr.submit(step(i, UseCase::Upload, Priority::Normal));
    mgr.scheduleAll(0.0, policy_);
    EXPECT_GT(mgr.totalBacklog(), 0u);

    const int moved = mgr.rebalance();
    EXPECT_GT(moved, 0);
    EXPECT_EQ(
        mgr.pool({UseCase::Upload, Priority::Normal})->workerCount(), 6u);
    // The transferred capacity absorbs more of the backlog.
    const size_t before = mgr.totalBacklog();
    mgr.scheduleAll(0.0, policy_);
    EXPECT_LT(mgr.totalBacklog(), before);
}

TEST_F(PoolsTest, RebalanceNeverStealsBusyWorkers)
{
    PoolManager mgr(workers_, {{UseCase::Upload, Priority::Normal},
                               {UseCase::Live, Priority::Critical}});
    // Both pools busy: live gets 2160p MOTs, each of which nearly
    // fills one VCU, so every live worker is occupied.
    for (uint64_t i = 0; i < 3; ++i) {
        auto big = makeMotStep(100 + i, 100 + i, 0, {3840, 2160},
                               CodecType::VP9);
        big.use_case = UseCase::Live;
        big.priority = Priority::Critical;
        mgr.submit(big);
    }
    mgr.scheduleAll(0.0, policy_);
    // Upload floods.
    for (uint64_t i = 0; i < 50; ++i)
        mgr.submit(step(i, UseCase::Upload, Priority::Normal));
    mgr.scheduleAll(0.0, policy_);
    mgr.rebalance();
    // Live still holds its (busy) workers.
    EXPECT_EQ(
        mgr.pool({UseCase::Live, Priority::Critical})->workerCount(), 3u);
}

TEST_F(PoolsTest, CriticalPoolSchedulesFirst)
{
    // One shared... both pools hold workers; flood both, then check
    // critical got its placements on its workers first by observing
    // that critical backlog drains before batch when capacity tight.
    PoolManager mgr(workers_, {{UseCase::Upload, Priority::Batch},
                               {UseCase::Live, Priority::Critical}});
    for (uint64_t i = 0; i < 40; ++i) {
        mgr.submit(step(i, UseCase::Upload, Priority::Batch));
        mgr.submit(step(100 + i, UseCase::Live, Priority::Critical));
    }
    mgr.scheduleAll(0.0, policy_);
    const auto live_backlog =
        mgr.pool({UseCase::Live, Priority::Critical})->backlogSize();
    const auto batch_backlog =
        mgr.pool({UseCase::Upload, Priority::Batch})->backlogSize();
    EXPECT_LE(live_backlog, batch_backlog);
}

TEST_F(PoolsTest, PressureSemantics)
{
    Pool p({UseCase::Upload, Priority::Normal});
    EXPECT_EQ(p.pressure(), 0.0); // No work.
    p.submit(step(1, UseCase::Upload, Priority::Normal));
    EXPECT_GT(p.pressure(), 1e12); // Work but no workers.
    p.grantWorker(workers_[0]);
    EXPECT_DOUBLE_EQ(p.pressure(), 1.0);
}

TEST_F(PoolsTest, PoolNames)
{
    EXPECT_EQ(poolName({UseCase::Upload, Priority::Batch}),
              "upload/batch");
    EXPECT_EQ(poolName({UseCase::Live, Priority::Critical}),
              "live/critical");
}

TEST_F(PoolsTest, ReleaseIdlePrefersTrailingWorker)
{
    Pool p({UseCase::Upload, Priority::Normal});
    p.grantWorker(workers_[0]);
    p.grantWorker(workers_[1]);
    Worker *released = p.releaseIdleWorker();
    ASSERT_NE(released, nullptr);
    EXPECT_EQ(released->id(), 1);
}

} // namespace
} // namespace wsva::cluster
