#include "cluster/scheduler.h"

#include <gtest/gtest.h>

#include <memory>

namespace wsva::cluster {
namespace {

using wsva::video::codec::CodecType;

class SchedulerTest : public testing::Test
{
  protected:
    void
    SetUp() override
    {
        for (int i = 0; i < 4; ++i) {
            workers_.push_back(std::make_unique<Worker>(
                i, WorkerType::Vcu, vcuWorkerCapacity()));
        }
        for (auto &w : workers_)
            raw_.push_back(w.get());
    }

    TranscodeStep
    step(uint64_t id)
    {
        return makeMotStep(id, id, 0, {1920, 1080}, CodecType::VP9);
    }

    std::vector<std::unique_ptr<Worker>> workers_;
    std::vector<Worker *> raw_;
};

TEST_F(SchedulerTest, FirstFitByWorkerNumber)
{
    BinPackScheduler sched(raw_);
    ResourceVector need{{kResEncodeMillicores, 3750.0}};
    Worker *w = sched.pick(need);
    ASSERT_NE(w, nullptr);
    EXPECT_EQ(w->id(), 0);
}

TEST_F(SchedulerTest, SkipsWorkerLackingOneDimension)
{
    // Paper Figure 6: worker 0 has no decode left -> worker 1 wins.
    ResourceVector drain_decode{{kResDecodeMillicores, 3000.0}};
    raw_[0]->assign(step(1), drain_decode, 0.0, 100.0);

    BinPackScheduler sched(raw_);
    ResourceVector need{{kResDecodeMillicores, 500.0},
                        {kResEncodeMillicores, 3750.0}};
    Worker *w = sched.pick(need);
    ASSERT_NE(w, nullptr);
    EXPECT_EQ(w->id(), 1);
}

TEST_F(SchedulerTest, PacksBeforeSpreading)
{
    // Greedy load-maximizing: repeated small requests all land on
    // worker 0 until it is full, leaving trailing workers idle as
    // stop candidates.
    BinPackScheduler sched(raw_);
    ResourceVector need{{kResEncodeMillicores, 2500.0}};
    for (int i = 0; i < 4; ++i) {
        Worker *w = sched.pick(need);
        ASSERT_NE(w, nullptr);
        EXPECT_EQ(w->id(), 0);
        w->assign(step(static_cast<uint64_t>(i)), need, 0.0, 100.0);
    }
    Worker *w = sched.pick(need);
    ASSERT_NE(w, nullptr);
    EXPECT_EQ(w->id(), 1);
    EXPECT_EQ(sched.idleWorkers(), 3);
}

TEST_F(SchedulerTest, RejectsWhenNothingFits)
{
    BinPackScheduler sched(raw_);
    ResourceVector huge{{kResEncodeMillicores, 50000.0}};
    EXPECT_EQ(sched.pick(huge), nullptr);
    EXPECT_EQ(sched.stats().rejected, 1u);
}

TEST_F(SchedulerTest, BinPackReservationEqualsNeed)
{
    BinPackScheduler sched(raw_);
    ResourceVector need{{kResEncodeMillicores, 1234.0}};
    EXPECT_EQ(sched.reservationFor(need), need);
}

TEST_F(SchedulerTest, SlotSchedulerWastesCapacity)
{
    // Slot sized for a worst-case step: a VCU fits only 2 slots even
    // for tiny requests, while bin packing fits many more.
    ResourceVector slot{{kResDecodeMillicores, 1000.0},
                        {kResEncodeMillicores, 5000.0}};
    SlotScheduler slots(raw_, slot);
    ResourceVector tiny{{kResDecodeMillicores, 100.0},
                        {kResEncodeMillicores, 500.0}};

    int placed_on_w0 = 0;
    for (int i = 0; i < 10; ++i) {
        Worker *w = slots.pick(tiny);
        ASSERT_NE(w, nullptr);
        if (w->id() != 0)
            break;
        w->assign(step(static_cast<uint64_t>(i)),
                  slots.reservationFor(tiny), 0.0, 100.0);
        ++placed_on_w0;
    }
    EXPECT_EQ(placed_on_w0, 2); // 2 x 5000 enc millicores = full.
}

TEST_F(SchedulerTest, SlotReservationIsElementwiseMax)
{
    ResourceVector slot{{kResEncodeMillicores, 5000.0}};
    SlotScheduler slots(raw_, slot);
    ResourceVector big{{kResEncodeMillicores, 7000.0},
                       {kResDecodeMillicores, 400.0}};
    const auto reservation = slots.reservationFor(big);
    EXPECT_EQ(reservation.get(kResEncodeMillicores), 7000);
    EXPECT_EQ(reservation.get(kResDecodeMillicores), 400);
}

TEST_F(SchedulerTest, DisabledVcuSkipped)
{
    VcuHealth dead;
    dead.disabled = true;
    raw_[0]->bindVcu(&dead);
    BinPackScheduler sched(raw_);
    ResourceVector need{{kResEncodeMillicores, 1000.0}};
    Worker *w = sched.pick(need);
    ASSERT_NE(w, nullptr);
    EXPECT_EQ(w->id(), 1);
}

} // namespace
} // namespace wsva::cluster
