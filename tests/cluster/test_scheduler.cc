#include "cluster/scheduler.h"

#include <gtest/gtest.h>

#include <memory>

#include "common/rng.h"

namespace wsva::cluster {
namespace {

using wsva::video::codec::CodecType;

class SchedulerTest : public testing::Test
{
  protected:
    void
    SetUp() override
    {
        for (int i = 0; i < 4; ++i) {
            workers_.push_back(std::make_unique<Worker>(
                i, WorkerType::Vcu, vcuWorkerCapacity()));
        }
        for (auto &w : workers_)
            raw_.push_back(w.get());
    }

    TranscodeStep
    step(uint64_t id)
    {
        return makeMotStep(id, id, 0, {1920, 1080}, CodecType::VP9);
    }

    std::vector<std::unique_ptr<Worker>> workers_;
    std::vector<Worker *> raw_;
};

TEST_F(SchedulerTest, FirstFitByWorkerNumber)
{
    BinPackScheduler sched(raw_);
    ResourceVector need{{kResEncodeMillicores, 3750.0}};
    Worker *w = sched.pick(need);
    ASSERT_NE(w, nullptr);
    EXPECT_EQ(w->id(), 0);
}

TEST_F(SchedulerTest, SkipsWorkerLackingOneDimension)
{
    // Paper Figure 6: worker 0 has no decode left -> worker 1 wins.
    ResourceVector drain_decode{{kResDecodeMillicores, 3000.0}};
    raw_[0]->assign(step(1), drain_decode, 0.0, 100.0);

    BinPackScheduler sched(raw_);
    ResourceVector need{{kResDecodeMillicores, 500.0},
                        {kResEncodeMillicores, 3750.0}};
    Worker *w = sched.pick(need);
    ASSERT_NE(w, nullptr);
    EXPECT_EQ(w->id(), 1);
}

TEST_F(SchedulerTest, PacksBeforeSpreading)
{
    // Greedy load-maximizing: repeated small requests all land on
    // worker 0 until it is full, leaving trailing workers idle as
    // stop candidates.
    BinPackScheduler sched(raw_);
    ResourceVector need{{kResEncodeMillicores, 2500.0}};
    for (int i = 0; i < 4; ++i) {
        Worker *w = sched.pick(need);
        ASSERT_NE(w, nullptr);
        EXPECT_EQ(w->id(), 0);
        w->assign(step(static_cast<uint64_t>(i)), need, 0.0, 100.0);
    }
    Worker *w = sched.pick(need);
    ASSERT_NE(w, nullptr);
    EXPECT_EQ(w->id(), 1);
    EXPECT_EQ(sched.idleWorkers(), 3);
}

TEST_F(SchedulerTest, RejectsWhenNothingFits)
{
    BinPackScheduler sched(raw_);
    ResourceVector huge{{kResEncodeMillicores, 50000.0}};
    EXPECT_EQ(sched.pick(huge), nullptr);
    EXPECT_EQ(sched.stats().rejected, 1u);
}

TEST_F(SchedulerTest, BinPackReservationEqualsNeed)
{
    BinPackScheduler sched(raw_);
    ResourceVector need{{kResEncodeMillicores, 1234.0}};
    EXPECT_EQ(sched.reservationFor(need), need);
}

TEST_F(SchedulerTest, SlotSchedulerWastesCapacity)
{
    // Slot sized for a worst-case step: a VCU fits only 2 slots even
    // for tiny requests, while bin packing fits many more.
    ResourceVector slot{{kResDecodeMillicores, 1000.0},
                        {kResEncodeMillicores, 5000.0}};
    SlotScheduler slots(raw_, slot);
    ResourceVector tiny{{kResDecodeMillicores, 100.0},
                        {kResEncodeMillicores, 500.0}};

    int placed_on_w0 = 0;
    for (int i = 0; i < 10; ++i) {
        Worker *w = slots.pick(tiny);
        ASSERT_NE(w, nullptr);
        if (w->id() != 0)
            break;
        w->assign(step(static_cast<uint64_t>(i)),
                  slots.reservationFor(tiny), 0.0, 100.0);
        ++placed_on_w0;
    }
    EXPECT_EQ(placed_on_w0, 2); // 2 x 5000 enc millicores = full.
}

TEST_F(SchedulerTest, SlotReservationIsElementwiseMax)
{
    ResourceVector slot{{kResEncodeMillicores, 5000.0}};
    SlotScheduler slots(raw_, slot);
    ResourceVector big{{kResEncodeMillicores, 7000.0},
                       {kResDecodeMillicores, 400.0}};
    const auto reservation = slots.reservationFor(big);
    EXPECT_EQ(reservation.get(kResEncodeMillicores), 7000);
    EXPECT_EQ(reservation.get(kResDecodeMillicores), 400);
}

TEST_F(SchedulerTest, DisabledVcuSkipped)
{
    VcuHealth dead;
    dead.disabled = true;
    raw_[0]->bindVcu(&dead);
    BinPackScheduler sched(raw_);
    ResourceVector need{{kResEncodeMillicores, 1000.0}};
    Worker *w = sched.pick(need);
    ASSERT_NE(w, nullptr);
    EXPECT_EQ(w->id(), 1);
}

TEST(AvailabilityIndex, IndexedPicksMatchLinearScanUnderChurn)
{
    // The segment-tree index must give *identical* first-fit answers
    // to the linear scan through an arbitrary mix of assigns,
    // completions, aborts, health flips, quarantines, and repairs.
    constexpr int kWorkers = 57; // Odd size: exercises tree padding.
    std::vector<std::unique_ptr<Worker>> indexed_own, linear_own;
    std::vector<Worker *> indexed, linear;
    std::vector<VcuHealth> indexed_health(kWorkers), linear_health(kWorkers);
    for (int i = 0; i < kWorkers; ++i) {
        indexed_own.push_back(std::make_unique<Worker>(
            i, WorkerType::Vcu, vcuWorkerCapacity()));
        linear_own.push_back(std::make_unique<Worker>(
            i, WorkerType::Vcu, vcuWorkerCapacity()));
        indexed_own[i]->bindVcu(&indexed_health[i]);
        linear_own[i]->bindVcu(&linear_health[i]);
        indexed.push_back(indexed_own[i].get());
        linear.push_back(linear_own[i].get());
    }
    BinPackScheduler indexed_sched(indexed);
    indexed_sched.enableIndex();
    ASSERT_TRUE(indexed_sched.indexed());
    BinPackScheduler linear_sched(linear);
    ASSERT_FALSE(linear_sched.indexed());

    wsva::Rng rng(99);
    double now = 0.0;
    uint64_t next_step = 0;
    int placed = 0, rejected = 0;
    for (int op = 0; op < 4000; ++op) {
        now += 0.25;
        const int kind = rng.uniformRange(0, 9);
        if (kind < 6) {
            // Place a random-shaped request through both schedulers.
            ResourceVector need{
                {kResEncodeMillicores,
                 rng.uniformReal(100.0, 9000.0)},
                {kResDecodeMillicores, rng.uniformReal(0.0, 2800.0)},
                {kResDramBytes, rng.uniformReal(1e8, 4e9)}};
            Worker *a = indexed_sched.pick(need);
            Worker *b = linear_sched.pick(need);
            if (a == nullptr) {
                EXPECT_EQ(b, nullptr) << "op " << op;
                ++rejected;
                continue;
            }
            ASSERT_NE(b, nullptr) << "op " << op;
            ASSERT_EQ(a->id(), b->id()) << "op " << op;
            const double service = rng.uniformReal(1.0, 20.0);
            TranscodeStep s = makeMotStep(next_step, next_step, 0,
                                          {1920, 1080}, CodecType::VP9);
            ++next_step;
            a->assign(s, need, now, service);
            b->assign(s, need, now, service);
            ++placed;
        } else if (kind < 8) {
            // Advance time on one worker pair: collect completions.
            const int v = rng.uniformRange(0, kWorkers - 1);
            (void)indexed[v]->collectFinished(now);
            (void)linear[v]->collectFinished(now);
        } else if (kind == 8) {
            // Health churn: fault or un-fault one VCU.
            const int v = rng.uniformRange(0, kWorkers - 1);
            if (indexed_health[v].disabled) {
                indexed_health[v] = VcuHealth{};
                linear_health[v] = VcuHealth{};
                indexed[v]->repairReset();
                linear[v]->repairReset();
            } else {
                indexed_health[v].markFaulted(now);
                linear_health[v].markFaulted(now);
                (void)indexed[v]->abortAll();
                (void)linear[v]->abortAll();
                // Health lives outside the worker: the index only
                // hears about it via refresh().
                indexed_sched.refresh(*indexed[v]);
                linear_sched.refresh(*linear[v]);
            }
        } else {
            // Quarantine toggle.
            const int v = rng.uniformRange(0, kWorkers - 1);
            const bool refuse = !indexed[v]->refused();
            indexed[v]->setRefused(refuse);
            linear[v]->setRefused(refuse);
        }
    }
    // The churn must have exercised both outcomes.
    EXPECT_GT(placed, 100);
    EXPECT_GT(rejected, 10);
}

TEST(AvailabilityIndex, RootRejectIsCheapAndCorrect)
{
    // A request larger than every worker's headroom must be rejected
    // (at the root, without touching leaves — behaviorally: still
    // rejected, and stats count it).
    std::vector<std::unique_ptr<Worker>> own;
    std::vector<Worker *> raw;
    for (int i = 0; i < 16; ++i) {
        own.push_back(std::make_unique<Worker>(i, WorkerType::Vcu,
                                               vcuWorkerCapacity()));
        raw.push_back(own[i].get());
    }
    BinPackScheduler sched(raw);
    sched.enableIndex();
    ResourceVector huge{{kResEncodeMillicores, 50000.0}};
    EXPECT_EQ(sched.pick(huge), nullptr);
    EXPECT_EQ(sched.stats().rejected, 1u);
    EXPECT_GT(sched.indexBytes(), 0u);

    // A dimension no capacity defines can never fit.
    ResourceVector exotic{{"exotic_dim", 1.0}};
    EXPECT_EQ(sched.pick(exotic), nullptr);
}

} // namespace
} // namespace wsva::cluster
