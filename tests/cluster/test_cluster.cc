#include "cluster/cluster.h"

#include <gtest/gtest.h>

namespace wsva::cluster {
namespace {

using wsva::video::codec::CodecType;

ClusterConfig
smallCluster()
{
    ClusterConfig cfg;
    cfg.hosts = 1;
    cfg.vcus_per_host = 4;
    cfg.seed = 7;
    return cfg;
}

/** Arrival function producing @p per_tick MOT steps each tick. */
ArrivalFn
steadyArrivals(int per_tick, wsva::video::Resolution res = {1920, 1080})
{
    auto counter = std::make_shared<uint64_t>(0);
    return [per_tick, res, counter](double, double) {
        std::vector<TranscodeStep> steps;
        for (int i = 0; i < per_tick; ++i) {
            const uint64_t id = (*counter)++;
            steps.push_back(
                makeMotStep(id, id / 8, static_cast<int>(id % 8), res,
                            CodecType::VP9));
        }
        return steps;
    };
}

TEST(ClusterSim, CompletesSubmittedWork)
{
    ClusterSim sim(smallCluster());
    for (uint64_t i = 0; i < 10; ++i)
        sim.submit(makeMotStep(i, i, 0, {1920, 1080}, CodecType::VP9));
    const auto m = sim.run(60.0, 1.0);
    EXPECT_EQ(m.steps_completed, 10u);
    EXPECT_EQ(m.backlog_remaining, 0u);
    EXPECT_EQ(m.corrupt_escaped, 0u);
    EXPECT_GT(m.output_pixels, 0.0);
}

TEST(ClusterSim, ThroughputSaturatesUnderOverload)
{
    // Flood a small cluster: throughput must approach the encoder
    // capacity bound and utilization must be high.
    ClusterConfig cfg = smallCluster();
    ClusterSim sim(cfg);
    const auto m = sim.run(600.0, 1.0, steadyArrivals(40));
    EXPECT_GT(m.encoder_utilization, 0.8);
    EXPECT_GT(m.backlog_remaining, 0u);
    // Per-VCU goodput should be in the hundreds of Mpix/s (paper:
    // ~765 Mpix/s per VCU SOT, ~927 MOT at VP9 two-pass settings).
    EXPECT_GT(m.mpix_per_vcu, 400.0);
    EXPECT_LT(m.mpix_per_vcu, 1000.0);
}

TEST(ClusterSim, DeterministicForSeed)
{
    auto run_once = [] {
        ClusterSim sim(smallCluster());
        return sim.run(120.0, 1.0, steadyArrivals(3)).steps_completed;
    };
    EXPECT_EQ(run_once(), run_once());
}

TEST(ClusterSim, HardFaultsShrinkCompletedWork)
{
    ClusterConfig healthy = smallCluster();
    ClusterConfig faulty = smallCluster();
    faulty.vcu_hard_fault_per_hour = 20.0;
    faulty.failure.host_fault_threshold = 100; // No repairs here.
    ClusterSim a(healthy);
    ClusterSim b(faulty);
    const auto ma = a.run(600.0, 1.0, steadyArrivals(8));
    const auto mb = b.run(600.0, 1.0, steadyArrivals(8));
    EXPECT_LT(mb.output_pixels, ma.output_pixels);
    EXPECT_GT(mb.vcus_disabled, 0);
}

TEST(ClusterSim, RepairRestoresCapacity)
{
    ClusterConfig cfg = smallCluster();
    cfg.hosts = 2;
    cfg.vcu_hard_fault_per_hour = 30.0;
    cfg.failure.host_fault_threshold = 2;
    cfg.failure.repair_seconds = 120.0;
    ClusterSim sim(cfg);
    const auto m = sim.run(1200.0, 1.0, steadyArrivals(4));
    EXPECT_GT(m.hosts_repaired, 0u);
}

TEST(ClusterSim, SilentFaultWithMitigationGetsQuarantined)
{
    ClusterConfig cfg = smallCluster();
    cfg.vcu_silent_fault_per_hour = 30.0;
    cfg.failure.golden_screening = true;
    cfg.failure.abort_on_failure = true;
    cfg.failure.integrity_detect_prob = 0.9;
    ClusterSim sim(cfg);
    const auto m = sim.run(900.0, 1.0, steadyArrivals(8));
    EXPECT_GT(m.workers_quarantined, 0);
    // Mitigated corruption escape rate must be tiny.
    const double total =
        static_cast<double>(m.steps_completed + m.corrupt_escaped);
    EXPECT_LT(m.corrupt_escaped / total, 0.05);
}

TEST(ClusterSim, BlackHolingWithoutMitigation)
{
    // Without mitigations a fast-failing VCU keeps absorbing work:
    // escaped corruption is much larger than with mitigations.
    auto run_with = [](bool mitigated) {
        ClusterConfig cfg;
        cfg.hosts = 1;
        cfg.vcus_per_host = 4;
        cfg.seed = 11;
        cfg.vcu_silent_fault_per_hour = 10.0;
        cfg.silent_speed_factor = 0.3;
        // VCU-level mitigation is the subject here; keep host-level
        // repair out of the picture.
        cfg.failure.host_fault_threshold = 1000000;
        cfg.failure.golden_screening = mitigated;
        cfg.failure.abort_on_failure = mitigated;
        cfg.failure.integrity_detect_prob = mitigated ? 0.9 : 0.3;
        ClusterSim sim(cfg);
        auto counter = std::make_shared<uint64_t>(0);
        const auto m = sim.run(
            1800.0, 1.0,
            [counter](double, double) {
                std::vector<TranscodeStep> steps;
                for (int i = 0; i < 6; ++i) {
                    const uint64_t id = (*counter)++;
                    steps.push_back(makeMotStep(id, id / 8,
                                                static_cast<int>(id % 8),
                                                {1920, 1080},
                                                CodecType::VP9));
                }
                return steps;
            });
        return m;
    };
    const auto bad = run_with(false);
    const auto good = run_with(true);
    EXPECT_GT(bad.corrupt_escaped, 3 * good.corrupt_escaped + 5);
}

TEST(ClusterSim, NumaAwarenessImprovesThroughput)
{
    auto run_with = [](bool aware) {
        ClusterConfig cfg;
        cfg.hosts = 1;
        cfg.vcus_per_host = 4;
        cfg.seed = 13;
        cfg.numa_aware = aware;
        cfg.numa_penalty_factor = 1.2;
        ClusterSim sim(cfg);
        auto counter = std::make_shared<uint64_t>(0);
        // Saturating load: the NUMA penalty only costs throughput
        // when the cluster is resource-bound. A fine tick keeps the
        // completion quantization well under the 20% penalty.
        return sim.run(600.0, 0.25, [counter](double, double) {
            std::vector<TranscodeStep> steps;
            for (int i = 0; i < 40; ++i) {
                const uint64_t id = (*counter)++;
                steps.push_back(makeMotStep(id, id, 0, {1920, 1080},
                                            CodecType::VP9));
            }
            return steps;
        });
    };
    const auto aware = run_with(true);
    const auto unaware = run_with(false);
    EXPECT_GT(aware.output_pixels, unaware.output_pixels * 1.1);
}

TEST(ClusterSim, DecodeOffloadLowersDecoderUtilization)
{
    auto run_with = [](double sw_fraction) {
        ClusterConfig cfg;
        cfg.hosts = 1;
        cfg.vcus_per_host = 4;
        cfg.seed = 17;
        cfg.mapping.software_decode_fraction = sw_fraction;
        ClusterSim sim(cfg);
        auto counter = std::make_shared<uint64_t>(0);
        return sim.run(600.0, 1.0, [counter](double, double) {
            std::vector<TranscodeStep> steps;
            for (int i = 0; i < 10; ++i) {
                const uint64_t id = (*counter)++;
                steps.push_back(makeMotStep(id, id, 0, {1920, 1080},
                                            CodecType::VP9));
            }
            return steps;
        });
    };
    const auto hw_only = run_with(0.0);
    const auto offload = run_with(0.4);
    EXPECT_LT(offload.decoder_utilization, hw_only.decoder_utilization);
    EXPECT_GT(offload.host_cpu_utilization, hw_only.host_cpu_utilization);
}

TEST(ClusterSim, BinPackingBeatsSlotScheduling)
{
    auto run_with = [](bool binpack) {
        ClusterConfig cfg;
        cfg.hosts = 1;
        cfg.vcus_per_host = 4;
        cfg.seed = 19;
        cfg.use_binpack = binpack;
        ClusterSim sim(cfg);
        auto counter = std::make_shared<uint64_t>(0);
        // Mixed sizes: mostly small steps plus some large ones.
        return sim.run(600.0, 1.0, [counter](double, double) {
            std::vector<TranscodeStep> steps;
            for (int i = 0; i < 12; ++i) {
                const uint64_t id = (*counter)++;
                const bool big = id % 6 == 0;
                steps.push_back(makeMotStep(
                    id, id, 0,
                    big ? wsva::video::Resolution{3840, 2160}
                        : wsva::video::Resolution{854, 480},
                    CodecType::VP9));
            }
            return steps;
        });
    };
    const auto packed = run_with(true);
    const auto slots = run_with(false);
    EXPECT_GT(packed.output_pixels, slots.output_pixels * 1.3);
}

TEST(ClusterSim, HorizonReportsInFlightWork)
{
    // Heavy steps against a short horizon: whatever is still on a
    // worker at the end must show up in steps_in_flight rather than
    // silently disappearing from the run's accounting.
    ClusterSim sim(smallCluster());
    const auto m = sim.run(6.0, 1.0, steadyArrivals(4, {3840, 2160}));
    EXPECT_GT(m.steps_in_flight, 0u);
    EXPECT_EQ(m.steps_submitted, m.steps_completed + m.steps_in_flight +
                                     m.backlog_remaining);
    EXPECT_EQ(sim.inFlightSteps(), m.steps_in_flight);
}

TEST(ClusterSim, MetricsRegistryMirrorsRunCounters)
{
    ClusterSim sim(smallCluster());
    for (uint64_t i = 0; i < 10; ++i)
        sim.submit(makeMotStep(i, i, 0, {1920, 1080}, CodecType::VP9));
    const auto m = sim.run(60.0, 1.0);
    const auto &reg = sim.metricsRegistry();
    EXPECT_EQ(reg.counter("cluster.steps_completed"), m.steps_completed);
    EXPECT_EQ(reg.counter("cluster.steps_submitted"), 10u);
    EXPECT_DOUBLE_EQ(reg.gauge("cluster.backlog_remaining"), 0.0);
    // Utilization time-series were sampled each tick.
    EXPECT_GT(reg.seriesSnapshot("util.encoder").size(), 10u);
    EXPECT_GT(reg.seriesSnapshot("backlog").size(), 10u);
}

TEST(ClusterSim, TraceRecordsStepLifecycle)
{
    ClusterSim sim(smallCluster());
    for (uint64_t i = 0; i < 10; ++i)
        sim.submit(makeMotStep(i, i, 0, {1920, 1080}, CodecType::VP9));
    const auto m = sim.run(60.0, 1.0);
    const auto &trace = sim.traceLog();
    EXPECT_EQ(trace.countOf(TraceEventType::StepScheduled), 10u);
    EXPECT_EQ(trace.countOf(TraceEventType::StepCompleted),
              m.steps_completed);
    // Events carry sim timestamps within the run window.
    for (const auto &ev : trace.snapshot()) {
        EXPECT_GE(ev.time, 0.0);
        EXPECT_LE(ev.time, 60.0);
    }
}

TEST(ClusterSim, ExportJsonHasAllSections)
{
    ClusterConfig cfg = smallCluster();
    cfg.vcu_hard_fault_per_hour = 30.0;
    cfg.failure.host_fault_threshold = 2;
    cfg.failure.repair_seconds = 60.0;
    ClusterSim sim(cfg);
    sim.run(600.0, 1.0, steadyArrivals(4));
    const std::string json = sim.exportJson();
    EXPECT_NE(json.find("\"metrics\""), std::string::npos);
    EXPECT_NE(json.find("\"trace\""), std::string::npos);
    EXPECT_NE(json.find("\"conservation\""), std::string::npos);
    EXPECT_NE(json.find("\"holds\": true"), std::string::npos);
    EXPECT_NE(json.find("cluster.steps_completed"), std::string::npos);
    EXPECT_NE(json.find("fault_injected"), std::string::npos);
}

TEST(ClusterSim, BlastRadiusRecordsChunkPlacement)
{
    ClusterSim sim(smallCluster());
    for (int c = 0; c < 6; ++c) {
        sim.submit(
            makeMotStep(static_cast<uint64_t>(c), 1, c, {1920, 1080},
                        CodecType::VP9));
    }
    sim.run(60.0, 1.0);
    EXPECT_GE(sim.blastRadius().vcusTouching(1), 1u);
}

} // namespace
} // namespace wsva::cluster
