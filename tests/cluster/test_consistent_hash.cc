#include "cluster/consistent_hash.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "cluster/cluster.h"
#include "workload/traffic.h"

namespace wsva::cluster {
namespace {

std::vector<int>
ids(int n)
{
    std::vector<int> v;
    for (int i = 0; i < n; ++i)
        v.push_back(i);
    return v;
}

TEST(ConsistentHash, AffinitySetIsStable)
{
    ConsistentHashRing ring(ids(20));
    const auto a = ring.affinitySet(42, 3);
    const auto b = ring.affinitySet(42, 3);
    EXPECT_EQ(a, b);
    EXPECT_EQ(a.size(), 3u);
}

TEST(ConsistentHash, SetsAreDistinctWorkers)
{
    ConsistentHashRing ring(ids(20));
    for (uint64_t key = 0; key < 200; ++key) {
        const auto set = ring.affinitySet(key, 5);
        std::set<int> unique(set.begin(), set.end());
        ASSERT_EQ(unique.size(), 5u) << "key " << key;
    }
}

TEST(ConsistentHash, CountClampedToWorkers)
{
    ConsistentHashRing ring(ids(3));
    EXPECT_EQ(ring.affinitySet(7, 10).size(), 3u);
}

TEST(ConsistentHash, LoadSpreadsAcrossWorkers)
{
    ConsistentHashRing ring(ids(20));
    std::map<int, int> hits;
    for (uint64_t key = 0; key < 4000; ++key)
        ++hits[ring.affinitySet(key, 1)[0]];
    // Every worker should own some keys; none should dominate.
    EXPECT_EQ(hits.size(), 20u);
    for (const auto &[id, count] : hits) {
        EXPECT_GT(count, 40) << id;
        EXPECT_LT(count, 600) << id;
    }
}

TEST(ConsistentHash, RemovalOnlyMovesAffectedKeys)
{
    ConsistentHashRing ring(ids(20));
    std::map<uint64_t, int> before;
    for (uint64_t key = 0; key < 1000; ++key)
        before[key] = ring.affinitySet(key, 1)[0];
    ring.removeWorker(7);
    int moved = 0;
    for (uint64_t key = 0; key < 1000; ++key) {
        const int now = ring.affinitySet(key, 1)[0];
        EXPECT_NE(now, 7);
        if (now != before[key]) {
            ++moved;
            EXPECT_EQ(before[key], 7) << "key " << key
                                      << " moved unnecessarily";
        }
    }
    EXPECT_GT(moved, 0);
}

TEST(ConsistentHash, ReAddRestoresOwnership)
{
    ConsistentHashRing ring(ids(10));
    std::map<uint64_t, int> before;
    for (uint64_t key = 0; key < 500; ++key)
        before[key] = ring.affinitySet(key, 1)[0];
    ring.removeWorker(3);
    ring.addWorker(3);
    for (uint64_t key = 0; key < 500; ++key)
        ASSERT_EQ(ring.affinitySet(key, 1)[0], before[key]);
}

TEST(ConsistentHash, DuplicateAddDoesNotInflateWorkerCount)
{
    // addWorker of an id already on the ring used to bump the worker
    // count without adding distinct points, so affinitySet(key, n)
    // with n > the real worker count could never collect enough
    // distinct ids and spun forever.
    ConsistentHashRing ring(ids(3));
    ring.addWorker(1);
    ring.addWorker(1);
    EXPECT_EQ(ring.workerCount(), 3u);
    const auto set = ring.affinitySet(42, 10);
    EXPECT_EQ(set.size(), 3u);
    std::set<int> unique(set.begin(), set.end());
    EXPECT_EQ(unique.size(), 3u);
}

TEST(ConsistentHash, DuplicateIdsInConstructorAreDeduped)
{
    ConsistentHashRing ring({0, 1, 1, 2, 2, 2});
    EXPECT_EQ(ring.workerCount(), 3u);
    EXPECT_EQ(ring.affinitySet(7, 10).size(), 3u);
}

TEST(ConsistentHash, RepeatedRemoveIsIdempotent)
{
    ConsistentHashRing ring(ids(3));
    ring.removeWorker(1);
    ring.removeWorker(1);
    ring.removeWorker(99); // Never present.
    EXPECT_EQ(ring.workerCount(), 2u);
    EXPECT_EQ(ring.affinitySet(7, 5).size(), 2u);
}

TEST(ConsistentHash, ChurnKeepsLookupsDeterministic)
{
    // Quarantine churn regression: remove/re-add cycles must leave
    // the ring byte-identical to its initial state — with a
    // position-keyed map, a point-position collision would make
    // ownership depend on insertion order, so churn could silently
    // permute lookups. The pair-keyed ring is a pure function of the
    // id set; 1k cycles must not move a single key.
    ConsistentHashRing ring(ids(32));
    std::map<uint64_t, std::vector<int>> before;
    for (uint64_t key = 0; key < 256; ++key)
        before[key] = ring.affinitySet(key, 3);

    for (int cycle = 0; cycle < 1000; ++cycle) {
        const int victim = cycle % 32;
        ring.removeWorker(victim);
        // While removed, nothing may route to the victim: a stale
        // virtual point satisfying lookups is exactly the bug a
        // quarantined region black-holing traffic would ride on.
        for (uint64_t key = 0; key < 64; ++key) {
            for (int id : ring.affinitySet(key, 3))
                ASSERT_NE(id, victim) << "cycle " << cycle;
        }
        ring.addWorker(victim);
    }

    EXPECT_EQ(ring.workerCount(), 32u);
    for (uint64_t key = 0; key < 256; ++key)
        ASSERT_EQ(ring.affinitySet(key, 3), before[key]) << key;
}

TEST(ConsistentHash, ChurnOrderIndependence)
{
    // The same id set reached through different add/remove histories
    // must produce the same ring. Build one ring directly and one
    // through heavy interleaved churn; every lookup must agree.
    ConsistentHashRing direct(ids(16));
    ConsistentHashRing churned(ids(24));
    for (int id = 16; id < 24; ++id)
        churned.removeWorker(id);
    for (int cycle = 0; cycle < 50; ++cycle) {
        for (int id = 15; id >= 0; --id)
            churned.removeWorker(id);
        for (int id = 0; id < 16; ++id)
            churned.addWorker((id * 7) % 16); // Permuted re-add order.
    }
    EXPECT_EQ(direct.workerCount(), churned.workerCount());
    for (uint64_t key = 0; key < 512; ++key)
        ASSERT_EQ(direct.affinitySet(key, 4), churned.affinitySet(key, 4))
            << key;
}

TEST(ConsistentHash, ClusterBlastRadiusShrinks)
{
    // The paper's suggested enhancement: with affinity placement a
    // long video touches far fewer VCUs.
    auto run_with = [](bool hashing) {
        ClusterConfig cfg;
        cfg.hosts = 2;
        cfg.vcus_per_host = 10;
        cfg.seed = 3;
        cfg.use_consistent_hashing = hashing;
        cfg.affinity_set_size = 3;
        ClusterSim sim(cfg);
        // One long video: many chunks of the same video id.
        for (int c = 0; c < 120; ++c) {
            sim.submit(makeMotStep(static_cast<uint64_t>(c), 1, c,
                                   {1920, 1080},
                                   wsva::video::codec::CodecType::VP9));
        }
        sim.run(600.0, 1.0);
        return sim.blastRadius().vcusTouching(1);
    };
    const size_t spread = run_with(false);
    const size_t hashed = run_with(true);
    EXPECT_LE(hashed, 3u);
    EXPECT_LT(hashed, spread);
}

} // namespace
} // namespace wsva::cluster
