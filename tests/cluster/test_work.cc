#include "cluster/work.h"

#include <gtest/gtest.h>

namespace wsva::cluster {
namespace {

using wsva::video::codec::CodecType;

TEST(Work, MotStepHasFullLadder)
{
    const auto step = makeMotStep(1, 10, 0, {1920, 1080}, CodecType::VP9);
    EXPECT_TRUE(step.isMot());
    EXPECT_EQ(step.outputs.size(), 6u); // 1080p..144p.
    EXPECT_EQ(step.outputs.front().height, 1080);
}

TEST(Work, SotStepSingleOutput)
{
    const auto step = makeSotStep(1, 10, 0, {1920, 1080}, {640, 360},
                                  CodecType::H264);
    EXPECT_FALSE(step.isMot());
    EXPECT_EQ(step.outputs.size(), 1u);
}

TEST(Work, MotOutputPixelsNearTwiceTopRung)
{
    // Footnote 2: the sub-1080p rungs sum to ~0.85x of 1080p, so the
    // whole ladder is ~1.85x the top rung.
    const auto step = makeMotStep(1, 10, 0, {1920, 1080}, CodecType::VP9);
    const double top =
        1920.0 * 1080.0 * step.frames;
    EXPECT_NEAR(step.outputPixels() / top, 1.85, 0.15);
}

TEST(Work, DurationFollowsFpsAndFrames)
{
    auto step = makeMotStep(1, 10, 0, {1920, 1080}, CodecType::VP9);
    step.frames = 150;
    step.fps = 30.0;
    EXPECT_DOUBLE_EQ(step.durationSeconds(), 5.0);
}

TEST(Work, ResourceNeedScalesWithResolution)
{
    ResourceMappingPolicy policy;
    const auto small =
        makeMotStep(1, 10, 0, {640, 360}, CodecType::VP9);
    const auto large =
        makeMotStep(2, 10, 0, {3840, 2160}, CodecType::VP9);
    const auto need_s = stepResourceNeed(small, policy);
    const auto need_l = stepResourceNeed(large, policy);
    EXPECT_GT(need_l.get(kResEncodeMillicores),
              5.0 * need_s.get(kResEncodeMillicores));
    EXPECT_GT(need_l.get(kResDecodeMillicores),
              5.0 * need_s.get(kResDecodeMillicores));
}

TEST(Work, MotNeedFitsOneVcu)
{
    // "Few videos require an entire VCU for their MOT" — even a
    // 2160p two-pass MOT must fit in {3000 dec, 10000 enc}.
    ResourceMappingPolicy policy;
    const auto step =
        makeMotStep(1, 10, 0, {3840, 2160}, CodecType::VP9);
    const auto need = stepResourceNeed(step, policy);
    EXPECT_LE(need.get(kResDecodeMillicores), 3000);
    EXPECT_LE(need.get(kResEncodeMillicores), 10000);
}

TEST(Work, SoftwareDecodeOffloadShiftsResources)
{
    ResourceMappingPolicy hw;
    ResourceMappingPolicy offload;
    offload.software_decode_fraction = 0.5;
    const auto step =
        makeMotStep(1, 10, 0, {1920, 1080}, CodecType::VP9);
    const auto need_hw = stepResourceNeed(step, hw);
    const auto need_off = stepResourceNeed(step, offload);
    EXPECT_LT(need_off.get(kResDecodeMillicores),
              need_hw.get(kResDecodeMillicores));
    EXPECT_GT(need_off.get(kResHostCpuMillicores),
              need_hw.get(kResHostCpuMillicores));
    EXPECT_GT(need_off.get(kResSwDecodeMillicores), 0);
}

TEST(Work, TwoPassNeedsMoreEncode)
{
    ResourceMappingPolicy policy;
    auto step = makeMotStep(1, 10, 0, {1920, 1080}, CodecType::VP9);
    step.two_pass = false;
    const double single =
        stepResourceNeed(step, policy).get(kResEncodeMillicores);
    step.two_pass = true;
    const double dual =
        stepResourceNeed(step, policy).get(kResEncodeMillicores);
    EXPECT_GT(dual, single);
}

TEST(Work, ServiceTimeShrinksWithSpeedup)
{
    ResourceMappingPolicy rt;
    rt.allocation_speedup = 1.0;
    ResourceMappingPolicy fast;
    fast.allocation_speedup = 4.0;
    auto step = makeMotStep(1, 10, 0, {1920, 1080}, CodecType::VP9);
    EXPECT_DOUBLE_EQ(stepServiceSeconds(step, rt), 5.0);
    EXPECT_DOUBLE_EQ(stepServiceSeconds(step, fast), 1.25);
}

TEST(Work, DramFootprintMatchesAppendixA)
{
    // ~700 MiB per 2160p MOT, ~500 MiB per 2160p SOT (plus the
    // two-pass margin our mapping adds when enabled).
    auto mot = makeMotStep(1, 10, 0, {3840, 2160}, CodecType::VP9);
    mot.two_pass = false;
    auto sot = makeSotStep(2, 10, 0, {3840, 2160}, {3840, 2160},
                           CodecType::VP9);
    sot.two_pass = false;
    EXPECT_NEAR(static_cast<double>(stepDramFootprint(mot)) / (1 << 20),
                700.0, 20.0);
    EXPECT_NEAR(static_cast<double>(stepDramFootprint(sot)) / (1 << 20),
                500.0, 20.0);
}

TEST(Work, TinyStepsHaveFootprintFloor)
{
    auto step = makeMotStep(1, 10, 0, {256, 144}, CodecType::VP9);
    EXPECT_GE(stepDramFootprint(step), 48ull << 20);
}

} // namespace
} // namespace wsva::cluster
