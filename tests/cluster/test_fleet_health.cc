/**
 * @file
 * Fleet-health rollup tests: the worker classification priority, the
 * partition invariant (every worker in exactly one state at every
 * level), the double-buffered board under concurrent publish/scrape,
 * and the rollup that ClusterSim builds from a live fleet.
 */

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/cluster.h"
#include "cluster/fleet_health.h"
#include "support/mini_json.h"

using namespace wsva::cluster;
using wsva::testsupport::parseJson;

namespace {

TEST(FleetHealth, ClassifyPriorityOrder)
{
    // InRepair dominates everything: the host being repaired is the
    // reason the worker is out, whatever its own flags say.
    EXPECT_EQ(classifyWorker(true, true, true, true),
              WorkerHealthState::InRepair);
    EXPECT_EQ(classifyWorker(true, false, false, false),
              WorkerHealthState::InRepair);
    // Quarantined beats degraded: the worker refused its VCU.
    EXPECT_EQ(classifyWorker(false, true, true, true),
              WorkerHealthState::Quarantined);
    // Disabled or silently-corrupting VCU is degraded.
    EXPECT_EQ(classifyWorker(false, false, true, false),
              WorkerHealthState::Degraded);
    EXPECT_EQ(classifyWorker(false, false, false, true),
              WorkerHealthState::Degraded);
    EXPECT_EQ(classifyWorker(false, false, false, false),
              WorkerHealthState::Healthy);
}

TEST(FleetHealth, CountsAddAndMergePartition)
{
    HealthCounts a;
    a.add(WorkerHealthState::Healthy);
    a.add(WorkerHealthState::Healthy);
    a.add(WorkerHealthState::Degraded);
    a.add(WorkerHealthState::Quarantined);
    a.add(WorkerHealthState::InRepair);
    EXPECT_EQ(a.healthy, 2u);
    EXPECT_EQ(a.degraded, 1u);
    EXPECT_EQ(a.quarantined, 1u);
    EXPECT_EQ(a.in_repair, 1u);
    EXPECT_EQ(a.total(), 5u);

    HealthCounts b;
    b.add(WorkerHealthState::Degraded);
    b.merge(a);
    EXPECT_EQ(b.degraded, 2u);
    EXPECT_EQ(b.total(), 6u);
}

TEST(FleetHealth, StateNamesAreStable)
{
    EXPECT_STREQ(workerHealthStateName(WorkerHealthState::Healthy),
                 "healthy");
    EXPECT_STREQ(workerHealthStateName(WorkerHealthState::Degraded),
                 "degraded");
    EXPECT_STREQ(workerHealthStateName(WorkerHealthState::Quarantined),
                 "quarantined");
    EXPECT_STREQ(workerHealthStateName(WorkerHealthState::InRepair),
                 "in_repair");
}

TEST(FleetHealth, BoardSnapshotIsNullBeforeFirstPublish)
{
    FleetHealthBoard board;
    EXPECT_EQ(board.snapshot(), nullptr);
    EXPECT_EQ(board.publishes(), 0u);
}

TEST(FleetHealth, BoardPublishReplacesSnapshot)
{
    FleetHealthBoard board;
    FleetHealthSnapshot snap;
    snap.tick = 7;
    board.publish(snap);
    ASSERT_NE(board.snapshot(), nullptr);
    EXPECT_EQ(board.snapshot()->tick, 7u);

    // An old reader's pointer survives the next publish.
    const auto old = board.snapshot();
    snap.tick = 8;
    board.publish(snap);
    EXPECT_EQ(old->tick, 7u);
    EXPECT_EQ(board.snapshot()->tick, 8u);
    EXPECT_EQ(board.publishes(), 2u);
}

TEST(FleetHealth, BoardConcurrentPublishAndScrape)
{
    // Publisher swaps fresh snapshots while scrapers read; every
    // snapshot a scraper sees must be internally consistent (counts
    // match the tick stamped into them). TSan-clean by construction.
    FleetHealthBoard board;
    std::atomic<bool> stop{false};
    std::atomic<uint64_t> reads{0};
    std::atomic<int> ready{0};

    std::thread publisher([&] {
        // Wait for every scraper to be spinning, so the reads really
        // interleave with the publishes.
        while (ready.load(std::memory_order_acquire) < 3) {
        }
        for (uint64_t tick = 1; tick <= 2000; ++tick) {
            FleetHealthSnapshot snap;
            snap.tick = tick;
            // Encode the tick into the counts so a torn snapshot is
            // detectable.
            snap.cluster.healthy = tick;
            snap.cluster.degraded = 2 * tick;
            board.publish(std::move(snap));
        }
        stop.store(true, std::memory_order_release);
    });

    std::vector<std::thread> scrapers;
    std::atomic<bool> torn{false};
    for (int t = 0; t < 3; ++t) {
        scrapers.emplace_back([&] {
            ready.fetch_add(1, std::memory_order_release);
            while (!stop.load(std::memory_order_acquire)) {
                const auto snap = board.snapshot();
                if (snap == nullptr)
                    continue;
                if (snap->cluster.healthy != snap->tick ||
                    snap->cluster.degraded != 2 * snap->tick)
                    torn.store(true, std::memory_order_relaxed);
                reads.fetch_add(1, std::memory_order_relaxed);
            }
        });
    }
    publisher.join();
    for (auto &s : scrapers)
        s.join();
    EXPECT_FALSE(torn.load());
    EXPECT_GT(reads.load(), 0u);
    EXPECT_EQ(board.publishes(), 2000u);
    EXPECT_EQ(board.snapshot()->tick, 2000u);
}

ClusterConfig
faultyConfig()
{
    ClusterConfig cfg;
    cfg.hosts = 4;
    cfg.vcus_per_host = 5;
    cfg.hosts_per_rack = 2;
    cfg.seed = 99;
    cfg.vcu_hard_fault_per_hour = 40.0;
    cfg.vcu_silent_fault_per_hour = 20.0;
    cfg.failure.host_fault_threshold = 3;
    cfg.failure.repair_seconds = 200.0;
    cfg.failure.repair_cap = 1;
    cfg.fleet_publish_every_ticks = 10;
    return cfg;
}

std::vector<TranscodeStep>
someSteps(int n)
{
    std::vector<TranscodeStep> steps;
    for (int i = 0; i < n; ++i)
        steps.push_back(makeMotStep(
            static_cast<uint64_t>(i), static_cast<uint64_t>(i / 4),
            i % 4, {1280, 720},
            wsva::video::codec::CodecType::VP9));
    return steps;
}

TEST(FleetHealth, RollupPartitionsFleetUnderFaults)
{
    ClusterSim sim(faultyConfig());
    for (const auto &step : someSteps(200))
        sim.submit(step);
    sim.run(600.0, 1.0);

    const auto snap = sim.fleetHealth().snapshot();
    ASSERT_NE(snap, nullptr);

    // The invariant the z-page promises: the four states partition
    // the fleet at cluster, rack, and host level.
    EXPECT_EQ(snap->cluster.total(),
              static_cast<uint64_t>(sim.totalVcus()));
    HealthCounts from_racks;
    for (const auto &rack : snap->racks)
        from_racks.merge(rack.counts);
    EXPECT_EQ(from_racks.total(), snap->cluster.total());
    EXPECT_EQ(from_racks.healthy, snap->cluster.healthy);
    EXPECT_EQ(from_racks.in_repair, snap->cluster.in_repair);
    HealthCounts from_hosts;
    for (const auto &host : snap->hosts)
        from_hosts.merge(host.counts);
    EXPECT_EQ(from_hosts.total(), snap->cluster.total());
    EXPECT_EQ(from_hosts.degraded, snap->cluster.degraded);
    EXPECT_EQ(from_hosts.quarantined, snap->cluster.quarantined);

    // Aggressive fault injection must have taken workers out.
    EXPECT_LT(snap->cluster.healthy, snap->cluster.total());
    EXPECT_EQ(snap->hosts.size(), 4u);
    EXPECT_EQ(snap->racks.size(), 2u);
    EXPECT_GT(sim.fleetHealth().publishes(), 1u);
}

TEST(FleetHealth, RollupTextAndJsonRender)
{
    ClusterSim sim(faultyConfig());
    for (const auto &step : someSteps(100))
        sim.submit(step);
    sim.run(300.0, 1.0);

    const auto snap = sim.fleetHealth().snapshot();
    ASSERT_NE(snap, nullptr);
    const std::string text = snap->toText();
    EXPECT_NE(text.find("cluster"), std::string::npos);
    EXPECT_NE(text.find("rack 0"), std::string::npos);
    EXPECT_NE(text.find("host 0"), std::string::npos);
    EXPECT_NE(text.find("slo"), std::string::npos);

    wsva::testsupport::JsonValue doc;
    std::string error;
    ASSERT_TRUE(parseJson(snap->toJson(), &doc, &error)) << error;
    ASSERT_TRUE(doc.isObject());
    ASSERT_TRUE(doc.has("counts"));
    EXPECT_EQ(doc.get("counts")->numberAt("total"),
              static_cast<double>(sim.totalVcus()));
    ASSERT_TRUE(doc.get("racks")->isArray());
    EXPECT_EQ(doc.get("racks")->array.size(), 2u);
    ASSERT_TRUE(doc.get("hosts")->isArray());
    EXPECT_EQ(doc.get("hosts")->array.size(), 4u);
    ASSERT_TRUE(doc.has("slo"));
}

TEST(FleetHealth, GaugesExportedToRegistry)
{
    ClusterSim sim(faultyConfig());
    for (const auto &step : someSteps(50))
        sim.submit(step);
    sim.run(100.0, 1.0);

    const auto &reg = sim.metricsRegistry();
    const auto snap = sim.fleetHealth().snapshot();
    ASSERT_NE(snap, nullptr);
    EXPECT_EQ(reg.gauge("fleet.healthy"),
              static_cast<double>(snap->cluster.healthy));
    EXPECT_EQ(reg.gauge("fleet.in_repair"),
              static_cast<double>(snap->cluster.in_repair));
    EXPECT_EQ(reg.gauge("fleet.rack0.healthy"),
              static_cast<double>(snap->racks[0].counts.healthy));
}

TEST(FleetHealth, PublishCadenceRespectsConfig)
{
    // fleet_publish_every_ticks = 0 disables publication entirely.
    ClusterConfig cfg = faultyConfig();
    cfg.fleet_publish_every_ticks = 0;
    ClusterSim sim(cfg);
    sim.run(50.0, 1.0);
    EXPECT_EQ(sim.fleetHealth().publishes(), 0u);
    EXPECT_EQ(sim.fleetHealth().snapshot(), nullptr);

    // Disabled observability also suppresses the rollup.
    ClusterConfig off = faultyConfig();
    off.observability = false;
    ClusterSim sim_off(off);
    sim_off.run(50.0, 1.0);
    EXPECT_EQ(sim_off.fleetHealth().publishes(), 0u);
}

TEST(FleetHealth, RollupRetryRatesReconcile)
{
    ClusterSim sim(faultyConfig());
    for (const auto &step : someSteps(300))
        sim.submit(step);
    const auto metrics = sim.run(900.0, 1.0);

    const FleetHealthSnapshot snap = sim.buildFleetHealth(900.0);
    uint64_t host_retries = 0;
    uint64_t host_completions = 0;
    for (const auto &host : snap.hosts) {
        host_retries += host.retries;
        host_completions += host.completions;
        if (host.retries + host.completions > 0) {
            EXPECT_NEAR(host.retry_rate,
                        static_cast<double>(host.retries) /
                            static_cast<double>(host.retries +
                                                host.completions),
                        1e-12);
        } else {
            EXPECT_EQ(host.retry_rate, 0.0);
        }
    }
    // Per-host attribution covers every retry and completion the
    // run-level metrics counted.
    EXPECT_EQ(host_retries, metrics.steps_retried);
    EXPECT_EQ(host_completions, metrics.steps_completed);
}

} // namespace
