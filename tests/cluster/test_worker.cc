#include "cluster/worker.h"

#include <gtest/gtest.h>

namespace wsva::cluster {
namespace {

using wsva::video::codec::CodecType;

TranscodeStep
smallStep(uint64_t id)
{
    return makeMotStep(id, id, 0, {1280, 720}, CodecType::VP9);
}

ResourceVector
smallNeed()
{
    return ResourceVector{{kResDecodeMillicores, 500.0},
                          {kResEncodeMillicores, 2000.0}};
}

TEST(Worker, CapacityMatchesPaperMillicores)
{
    const auto cap = vcuWorkerCapacity();
    EXPECT_EQ(cap.get(kResDecodeMillicores), 3000);
    EXPECT_EQ(cap.get(kResEncodeMillicores), 10000);
}

TEST(Worker, AssignReservesAndCompletionReleases)
{
    Worker w(0, WorkerType::Vcu, vcuWorkerCapacity());
    w.assign(smallStep(1), smallNeed(), 0.0, 10.0);
    EXPECT_EQ(w.available().get(kResEncodeMillicores), 8000);
    EXPECT_EQ(w.runningSteps(), 1u);

    auto done = w.collectFinished(9.0);
    EXPECT_TRUE(done.empty());
    done = w.collectFinished(10.0);
    ASSERT_EQ(done.size(), 1u);
    EXPECT_TRUE(done[0].ok);
    EXPECT_FALSE(done[0].corrupt);
    EXPECT_EQ(w.available().get(kResEncodeMillicores), 10000);
}

TEST(Worker, CanFitChecksAllDimensions)
{
    Worker w(0, WorkerType::Vcu, vcuWorkerCapacity());
    ResourceVector huge{{kResEncodeMillicores, 10001.0}};
    EXPECT_FALSE(w.canFit(huge));
    EXPECT_TRUE(w.canFit(smallNeed()));
}

TEST(Worker, MultipleConcurrentSteps)
{
    // "we designed our VCUs to perform multiple MOTs and SOTs in
    // parallel to boost encoder and VCU utilization."
    Worker w(0, WorkerType::Vcu, vcuWorkerCapacity());
    for (uint64_t i = 0; i < 5; ++i)
        w.assign(smallStep(i), smallNeed(), 0.0, 10.0);
    EXPECT_EQ(w.runningSteps(), 5u);
    EXPECT_FALSE(w.canFit(smallNeed())); // 6th would exceed encode.
}

TEST(Worker, DisabledVcuFailsInFlightWork)
{
    VcuHealth health;
    Worker w(0, WorkerType::Vcu, vcuWorkerCapacity());
    w.bindVcu(&health);
    w.assign(smallStep(1), smallNeed(), 0.0, 10.0);
    health.disabled = true;
    auto done = w.collectFinished(1.0);
    ASSERT_EQ(done.size(), 1u);
    EXPECT_FALSE(done[0].ok);
    EXPECT_FALSE(w.canFit(smallNeed()));
}

TEST(Worker, FaultDoesNotFailWorkFinishedBeforeIt)
{
    // Step 1 finishes at t=10; step 2 would finish at t=30. The VCU
    // hard-faults at t=20. Only work still running at the fault may
    // fail — step 1's output already exists and used to be retried
    // anyway, double-counting completions.
    VcuHealth health;
    Worker w(0, WorkerType::Vcu, vcuWorkerCapacity());
    w.bindVcu(&health);
    w.assign(smallStep(1), smallNeed(), 0.0, 10.0);
    w.assign(smallStep(2), smallNeed(), 0.0, 30.0);
    health.markFaulted(20.0);

    auto done = w.collectFinished(20.0);
    ASSERT_EQ(done.size(), 2u);
    const auto &first =
        done[0].step.id == 1 ? done[0] : done[1];
    const auto &second =
        done[0].step.id == 1 ? done[1] : done[0];
    EXPECT_TRUE(first.ok);
    EXPECT_DOUBLE_EQ(first.finish_time, 10.0);
    EXPECT_FALSE(second.ok);
    EXPECT_DOUBLE_EQ(second.finish_time, 20.0);
}

TEST(Worker, UntimestampedDisableFailsConservatively)
{
    // Setting disabled without markFaulted leaves fault_time at
    // -infinity: every in-flight step fails, even already-finished
    // ones. Callers who know the fault time must use markFaulted.
    VcuHealth health;
    Worker w(0, WorkerType::Vcu, vcuWorkerCapacity());
    w.bindVcu(&health);
    w.assign(smallStep(1), smallNeed(), 0.0, 10.0);
    health.disabled = true;
    auto done = w.collectFinished(15.0);
    ASSERT_EQ(done.size(), 1u);
    EXPECT_FALSE(done[0].ok);
}

TEST(Worker, SilentFaultCorruptsAndSpeedsUp)
{
    VcuHealth health;
    health.silent_fault = true;
    health.speed_factor = 0.5;
    Worker w(0, WorkerType::Vcu, vcuWorkerCapacity());
    w.bindVcu(&health);
    w.assign(smallStep(1), smallNeed(), 0.0, 10.0);
    // Finishes at 5.0 (speed factor 0.5), corrupt.
    auto done = w.collectFinished(5.0);
    ASSERT_EQ(done.size(), 1u);
    EXPECT_TRUE(done[0].ok);
    EXPECT_TRUE(done[0].corrupt);
}

TEST(Worker, GoldenScreenCatchesFaults)
{
    VcuHealth health;
    Worker w(0, WorkerType::Vcu, vcuWorkerCapacity());
    w.bindVcu(&health);
    EXPECT_TRUE(w.goldenScreen());
    health.silent_fault = true;
    EXPECT_FALSE(w.goldenScreen());
}

TEST(Worker, AbortReturnsStepsAndRequiresScreen)
{
    Worker w(0, WorkerType::Vcu, vcuWorkerCapacity());
    w.assign(smallStep(1), smallNeed(), 0.0, 10.0);
    w.assign(smallStep(2), smallNeed(), 0.0, 10.0);
    auto aborted = w.abortAll();
    EXPECT_EQ(aborted.size(), 2u);
    EXPECT_TRUE(w.idle());
    EXPECT_TRUE(w.needsScreen());
    EXPECT_EQ(w.available().get(kResEncodeMillicores), 10000);
}

TEST(Worker, RefusedWorkerTakesNoWork)
{
    Worker w(0, WorkerType::Vcu, vcuWorkerCapacity());
    w.setRefused(true);
    EXPECT_FALSE(w.canFit(smallNeed()));
    w.repairReset();
    EXPECT_TRUE(w.canFit(smallNeed()));
    EXPECT_FALSE(w.needsScreen());
}

TEST(Worker, DimensionUtilization)
{
    Worker w(0, WorkerType::Vcu, vcuWorkerCapacity());
    w.assign(smallStep(1), smallNeed(), 0.0, 10.0);
    EXPECT_DOUBLE_EQ(w.dimensionUtilization(kResEncodeMillicores), 0.2);
    EXPECT_NEAR(w.dimensionUtilization(kResDecodeMillicores), 500.0 / 3000,
                1e-12);
}

TEST(WorkerDeathTest, OverAssignPanics)
{
    Worker w(0, WorkerType::Vcu, vcuWorkerCapacity());
    ResourceVector huge{{kResEncodeMillicores, 20000.0}};
    EXPECT_DEATH(w.assign(smallStep(1), huge, 0.0, 1.0), "capacity");
}

} // namespace
} // namespace wsva::cluster
