#include "cluster/failure.h"

#include <gtest/gtest.h>

namespace wsva::cluster {
namespace {

FailurePolicy
policy(int cap = 2, double repair_s = 100.0)
{
    FailurePolicy p;
    p.repair_cap = cap;
    p.repair_seconds = repair_s;
    return p;
}

TEST(RepairQueue, BasicFlow)
{
    RepairQueue q(policy());
    EXPECT_TRUE(q.tryEnter(1, 0.0));
    EXPECT_EQ(q.inRepair(), 1u);
    EXPECT_TRUE(q.collectRepaired(99.0).empty());
    auto done = q.collectRepaired(100.0);
    ASSERT_EQ(done.size(), 1u);
    EXPECT_EQ(done[0], 1);
    EXPECT_EQ(q.inRepair(), 0u);
}

TEST(RepairQueue, CapLimitsSimultaneousRepairs)
{
    RepairQueue q(policy(2));
    EXPECT_TRUE(q.tryEnter(1, 0.0));
    EXPECT_TRUE(q.tryEnter(2, 0.0));
    EXPECT_FALSE(q.tryEnter(3, 0.0)); // Cap reached.
    EXPECT_EQ(q.capDeferrals(), 1u);
    q.collectRepaired(100.0);
    EXPECT_TRUE(q.tryEnter(3, 100.0));
}

TEST(RepairQueue, ReenteringSameHostIsIdempotent)
{
    RepairQueue q(policy(1));
    EXPECT_TRUE(q.tryEnter(1, 0.0));
    EXPECT_TRUE(q.tryEnter(1, 10.0));
    EXPECT_EQ(q.inRepair(), 1u);
    EXPECT_EQ(q.totalRepairs(), 1u);
}

TEST(BlastRadius, TracksVcusPerVideo)
{
    BlastRadiusTracker t;
    t.recordChunk(42, 1);
    t.recordChunk(42, 2);
    t.recordChunk(42, 2); // Duplicate.
    t.recordChunk(43, 5);
    EXPECT_EQ(t.vcusTouching(42), 2u);
    EXPECT_EQ(t.vcusTouching(43), 1u);
    EXPECT_EQ(t.vcusTouching(99), 0u);
}

TEST(BlastRadius, DetectedCorruptionDoesNotCorruptVideo)
{
    BlastRadiusTracker t;
    t.recordDetectedCorruption(42, 7);
    EXPECT_EQ(t.detectedChunks(), 1u);
    EXPECT_EQ(t.corruptVideos(), 0u);
}

TEST(BlastRadius, EscapedCorruptionMarksVideo)
{
    BlastRadiusTracker t;
    t.recordEscapedCorruption(42, 7);
    t.recordEscapedCorruption(42, 8);
    t.recordEscapedCorruption(50, 7);
    EXPECT_EQ(t.escapedChunks(), 3u);
    EXPECT_EQ(t.corruptVideos(), 2u);
}

TEST(BlastRadius, SuspectVcuByDetectionCount)
{
    BlastRadiusTracker t;
    EXPECT_EQ(t.mostSuspectVcu(), -1);
    t.recordDetectedCorruption(1, 7);
    t.recordDetectedCorruption(2, 7);
    t.recordDetectedCorruption(3, 9);
    EXPECT_EQ(t.mostSuspectVcu(), 7);
}

} // namespace
} // namespace wsva::cluster
