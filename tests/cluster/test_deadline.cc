/**
 * @file
 * Deadline scheduling and load shedding: the DispatchQueue's EDF /
 * FIFO / shed-lot mechanics in isolation, then the cluster-level
 * policy — live steps displacing batch work under pressure, shed
 * steps surviving in the conservation ledger and completing after the
 * crunch, and the tick/event engines agreeing statistically on live
 * workloads.
 */

#include "cluster/cluster.h"
#include "workload/traffic.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

namespace wsva::cluster {
namespace {

using wsva::video::codec::CodecType;

TranscodeStep
batchStep(uint64_t id, int frames = 600,
          wsva::video::Resolution res = {3840, 2160})
{
    auto step = makeMotStep(id, id, 0, res, CodecType::VP9);
    step.frames = frames;
    step.priority = Priority::Batch;
    return step;
}

TranscodeStep
liveStep(uint64_t id, double deadline_time,
         wsva::video::Resolution res = {1920, 1080})
{
    auto step = makeMotStep(id, 1000 + id, 0, res, CodecType::VP9);
    step.frames = 60;
    step.two_pass = false;
    step.use_case = UseCase::Live;
    step.priority = Priority::Critical;
    step.deadline_time = deadline_time;
    return step;
}

// ---- DispatchQueue mechanics ----------------------------------------

TEST(DispatchQueue, FifoLaneKeepsArrivalOrderWithRetryFront)
{
    DispatchQueue q;
    q.push_back(batchStep(1));
    q.push_back(batchStep(2));
    q.push_front(batchStep(3)); // Retry jumps the FIFO lane.
    ASSERT_EQ(q.size(), 3u);
    EXPECT_EQ(q.front().id, 3u);
    q.pop_front();
    EXPECT_EQ(q.front().id, 1u);
    q.pop_front();
    EXPECT_EQ(q.front().id, 2u);
    q.pop_front();
    EXPECT_TRUE(q.empty());
}

TEST(DispatchQueue, EdfLaneOrdersByDeadline)
{
    DispatchQueue q;
    q.push_back(liveStep(1, 30.0));
    q.push_back(liveStep(2, 10.0));
    q.push_back(liveStep(3, 20.0));
    EXPECT_EQ(q.deadlineSize(), 3u);
    EXPECT_EQ(q.front().id, 2u);
    q.pop_front();
    EXPECT_EQ(q.front().id, 3u);
    q.pop_front();
    EXPECT_EQ(q.front().id, 1u);
}

TEST(DispatchQueue, EqualDeadlinesBreakTiesByArrival)
{
    DispatchQueue q;
    for (uint64_t i = 0; i < 16; ++i)
        q.push_back(liveStep(i, 42.0));
    for (uint64_t i = 0; i < 16; ++i) {
        EXPECT_EQ(q.front().id, i) << "tie broken out of order";
        q.pop_front();
    }
}

TEST(DispatchQueue, DeadlineStepsOutrankFifoWork)
{
    DispatchQueue q;
    q.push_back(batchStep(1));
    q.push_back(liveStep(2, 1e9)); // Even a distant deadline wins.
    q.push_back(batchStep(3));
    EXPECT_EQ(q.front().id, 2u);
    q.pop_front();
    EXPECT_EQ(q.front().id, 1u);
    // A retried deadline step re-enters the EDF lane by deadline.
    q.push_front(liveStep(4, 5.0));
    EXPECT_EQ(q.front().id, 4u);
}

TEST(DispatchQueue, ParkBatchMovesOnlyBatchAndUnparksInOrder)
{
    DispatchQueue q;
    q.push_back(batchStep(1));
    auto normal = makeMotStep(2, 2, 0, {1920, 1080}, CodecType::VP9);
    q.push_back(normal); // Priority::Normal stays.
    q.push_back(batchStep(3));
    EXPECT_EQ(q.parkBatch(), 2u);
    EXPECT_EQ(q.shedSize(), 2u);
    EXPECT_EQ(q.size(), 1u); // Shed lot is out of the dispatch lanes.
    EXPECT_EQ(q.front().id, 2u);
    // A preempted running step parks behind the queued ones.
    q.parkStep(batchStep(4));
    EXPECT_EQ(q.shedSize(), 3u);
    EXPECT_EQ(q.unparkAll(), 3u);
    EXPECT_EQ(q.shedSize(), 0u);
    q.pop_front(); // id 2
    EXPECT_EQ(q.front().id, 1u);
    q.pop_front();
    EXPECT_EQ(q.front().id, 3u);
    q.pop_front();
    EXPECT_EQ(q.front().id, 4u);
}

// ---- Cluster-level shedding policy ----------------------------------

/** Two workers saturated by long batch steps, plus queued batch
 *  spares; live deadline steps then arrive. */
ClusterConfig
crunchConfig(bool shed)
{
    ClusterConfig cfg;
    cfg.hosts = 1;
    cfg.vcus_per_host = 2;
    cfg.seed = 11;
    cfg.deadline.shed_enabled = shed;
    cfg.deadline.slack_guard_seconds = 2.0;
    cfg.deadline.release_after_seconds = 5.0;
    cfg.slo.p99_target_seconds = 30.0;
    return cfg;
}

TEST(DeadlineScheduler, SheddingPreemptsBatchAndMeetsDeadlines)
{
    ClusterSim sim(crunchConfig(true));
    // Fill both workers and the queue with heavy batch work.
    for (uint64_t i = 0; i < 4; ++i)
        sim.submit(batchStep(i));
    sim.run(2.0, 1.0); // Both workers now run a batch step.
    ASSERT_EQ(sim.conservation().in_flight, 2u);

    // Live segments that cannot wait for a 4K batch step to drain
    // (sim time is 2.0 here; the batch steps run for ~10 s).
    sim.submit(liveStep(100, 10.0));
    sim.submit(liveStep(101, 10.0));
    const auto m = sim.run(120.0, 1.0);

    EXPECT_GT(m.steps_preempted, 0u);
    EXPECT_GT(m.steps_shed, m.steps_preempted); // Queued ones parked too.
    EXPECT_EQ(m.deadline_completions, 2u);
    EXPECT_EQ(m.deadline_misses, 0u);
    // After the crunch the shed lot drained and everything completed.
    EXPECT_EQ(m.shed_remaining, 0u);
    const ConservationSnapshot snap = sim.conservation();
    EXPECT_TRUE(snap.holds());
    EXPECT_EQ(snap.completed, snap.submitted);
    EXPECT_GT(sim.metricsRegistry().counter("cluster.steps_unshed"), 0u);
    EXPECT_GT(sim.traceLog().countOf(TraceEventType::StepShed), 0u);
    EXPECT_EQ(m.conservation_violations, 0u);
}

TEST(DeadlineScheduler, NoSheddingLetsLiveDeadlinesMiss)
{
    ClusterSim sim(crunchConfig(false));
    for (uint64_t i = 0; i < 4; ++i)
        sim.submit(batchStep(i));
    sim.run(2.0, 1.0);
    sim.submit(liveStep(100, 10.0));
    sim.submit(liveStep(101, 10.0));
    const auto m = sim.run(200.0, 1.0);

    EXPECT_EQ(m.steps_shed, 0u);
    EXPECT_EQ(m.steps_preempted, 0u);
    EXPECT_EQ(m.deadline_completions, 2u);
    // Blocked behind ~minutes of batch service: both miss.
    EXPECT_EQ(m.deadline_misses, 2u);
    EXPECT_TRUE(sim.conservation().holds());
}

TEST(DeadlineScheduler, ShedStepsStayInLedgerWhileParked)
{
    ClusterSim sim(crunchConfig(true));
    for (uint64_t i = 0; i < 6; ++i)
        sim.submit(batchStep(i));
    sim.run(2.0, 1.0);
    // A stream of live steps keeps the EDF lane busy so the shed lot
    // cannot release; the parked steps must be visible in the ledger
    // the whole time.
    uint64_t id = 100;
    double now = 2.0; // Sim clock persists across run() calls.
    bool saw_shed = false;
    for (int tick = 0; tick < 30; ++tick) {
        sim.submit(liveStep(id, now + 6.0));
        ++id;
        now += 1.0;
        const auto m = sim.run(1.0, 1.0);
        EXPECT_EQ(m.conservation_violations, 0u);
        const ConservationSnapshot snap = sim.conservation();
        ASSERT_TRUE(snap.holds())
            << "shed " << snap.shed << " backlog " << snap.backlog;
        saw_shed |= snap.shed > 0;
    }
    EXPECT_TRUE(saw_shed);
    // Stop the live stream; the shed lot must drain and complete.
    const auto m = sim.run(600.0, 1.0);
    EXPECT_EQ(m.shed_remaining, 0u);
    EXPECT_EQ(sim.conservation().completed,
              sim.conservation().submitted);
}

/**
 * Surge workload shared by the engine-parity tests: a batch stream
 * that saturates the fleet (16 steps/s of ~5 s-service 1080p MOT
 * against a 2x8-VCU drain rate of ~12.8/s, so workers pack four
 * batch steps each and a live segment never fits without shedding)
 * plus live channel churn with a mid-run flash crowd. Live arrivals
 * stop at @p live_until so the EDF lane can empty and the shed lot
 * release before the horizon.
 */
ArrivalFn
surgeArrivals(std::shared_ptr<wsva::workload::LiveTraffic> live,
              std::shared_ptr<uint64_t> next_batch_id,
              int batch_per_tick, double live_until)
{
    return [live, next_batch_id, batch_per_tick,
            live_until](double now, double dt) {
        std::vector<TranscodeStep> steps;
        if (now < live_until)
            steps = live->arrivals(now, dt);
        for (int i = 0; i < batch_per_tick; ++i)
            steps.push_back(batchStep(1000000 + (*next_batch_id)++, 300,
                                      {1920, 1080}));
        return steps;
    };
}

wsva::workload::LiveTrafficConfig
surgeLiveConfig()
{
    wsva::workload::LiveTrafficConfig live;
    live.concurrent_streams = 0;
    live.segment_seconds = 2.0;
    live.deadline_seconds = 5.0;
    live.channels_per_second = 0.4;
    live.mean_channel_seconds = 30.0;
    live.surge_multiplier = 10.0;
    live.surge_start = 60.0;
    live.surge_end = 90.0;
    live.seed = 33;
    return live;
}

ClusterConfig
surgeClusterConfig(SimEngine engine)
{
    ClusterConfig cfg;
    cfg.hosts = 2;
    cfg.vcus_per_host = 8;
    cfg.seed = 7;
    cfg.engine = engine;
    cfg.deadline.shed_enabled = true;
    cfg.deadline.slack_guard_seconds = 2.0;
    cfg.track_blast_radius = false;
    return cfg;
}

TEST(DeadlineScheduler, LedgerHoldsUnderSurgeOnBothEngines)
{
    for (const SimEngine engine : {SimEngine::Tick, SimEngine::Event}) {
        auto cfg = surgeClusterConfig(engine);
        // Faults exercise the abort/retry paths against the shed
        // accounting (the event engine's shed/abort paths must each
        // decrement the in-flight counter exactly once; the debug
        // cross-check in checkConservation audits that per batch).
        cfg.vcu_hard_fault_per_hour = 30.0;
        cfg.failure.host_fault_threshold = 3;
        cfg.failure.repair_seconds = 45.0;
        ClusterSim sim(cfg);
        auto live = std::make_shared<wsva::workload::LiveTraffic>(
            surgeLiveConfig());
        auto next_id = std::make_shared<uint64_t>(0);
        const auto m =
            sim.run(150.0, 1.0, surgeArrivals(live, next_id, 16, 1e18));

        EXPECT_EQ(m.conservation_violations, 0u)
            << "engine " << static_cast<int>(engine);
        const ConservationSnapshot snap = sim.conservation();
        EXPECT_TRUE(snap.holds());
        EXPECT_GT(m.steps_shed, 0u);
        EXPECT_GT(m.deadline_completions, 0u);
        if (engine == SimEngine::Event) {
            EXPECT_GT(m.events_processed, 0u);
        }
    }
}

TEST(DeadlineScheduler, TickAndEventEnginesAgreeOnLiveTraffic)
{
    // Fault-free surge run under both engines, identical arrival
    // streams (same LiveTraffic seed). The engines dispatch on
    // different schedules mid-tick, so the comparison is statistical:
    // identical offered load, closely matching service, and live
    // deadline behavior within a few percent of each other. Live
    // arrivals stop at t=100 so both engines' shed lots release and
    // drain before the horizon.
    ClusterMetrics results[2];
    ConservationSnapshot snaps[2];
    int i = 0;
    for (const SimEngine engine : {SimEngine::Tick, SimEngine::Event}) {
        ClusterSim sim(surgeClusterConfig(engine));
        auto live = std::make_shared<wsva::workload::LiveTraffic>(
            surgeLiveConfig());
        auto next_id = std::make_shared<uint64_t>(0);
        results[i] =
            sim.run(200.0, 1.0, surgeArrivals(live, next_id, 16, 100.0));
        snaps[i] = sim.conservation();
        ++i;
    }
    // Same arrival windows -> identical offered load.
    EXPECT_EQ(results[0].steps_submitted, results[1].steps_submitted);
    // Both engines saturate the same capacity: service parity.
    const double c0 = static_cast<double>(results[0].steps_completed);
    const double c1 = static_cast<double>(results[1].steps_completed);
    ASSERT_GT(c0, 0.0);
    EXPECT_NEAR(c0, c1, 0.05 * std::max(c0, c1));
    // Live behavior: both engines track the same deadline population
    // and, with shedding on, agree that misses are the exception.
    EXPECT_EQ(results[0].deadline_completions,
              results[1].deadline_completions);
    double miss_rates[2];
    for (int k = 0; k < 2; ++k) {
        ASSERT_GT(results[k].deadline_completions, 0u);
        miss_rates[k] =
            static_cast<double>(results[k].deadline_misses) /
            static_cast<double>(results[k].deadline_completions);
        EXPECT_LT(miss_rates[k], 0.10);
    }
    EXPECT_NEAR(miss_rates[0], miss_rates[1], 0.05);
    EXPECT_TRUE(snaps[0].holds());
    EXPECT_TRUE(snaps[1].holds());
}

// ---- SLO deadline accounting and the queue-age epoch fix ------------

TEST(SloDeadline, WindowMissRateEvictsOnTheExactEdge)
{
    SloConfig cfg;
    cfg.window_ticks = 4;
    SloMonitor slo(cfg);
    slo.onSubmit(1, 0.0, 0, /*deadline_time=*/1.0);
    slo.onComplete(1, 2.0); // Missed by 1 s.
    EXPECT_EQ(slo.deadlineMissed(), 1u);
    EXPECT_DOUBLE_EQ(slo.windowDeadlineMissRate(), 1.0);
    EXPECT_DOUBLE_EQ(slo.deadlineMissRate(), 1.0);
    // The completion is stamped at tick 0; it must leave the window
    // exactly when the tick counter reaches window_ticks, not one
    // tick early or late.
    for (int t = 0; t < 3; ++t) {
        slo.onTick(3.0 + t);
        EXPECT_DOUBLE_EQ(slo.windowDeadlineMissRate(), 1.0)
            << "evicted early at tick " << t + 1;
    }
    slo.onTick(6.0);
    EXPECT_DOUBLE_EQ(slo.windowDeadlineMissRate(), 0.0);
    // Lifetime accounting is untouched by the window.
    EXPECT_DOUBLE_EQ(slo.deadlineMissRate(), 1.0);
}

TEST(SloDeadline, MadeDeadlinesDoNotCountAsMisses)
{
    SloMonitor slo;
    slo.onSubmit(1, 0.0, 0, 5.0);
    slo.onComplete(1, 5.0); // Exactly on time.
    slo.onSubmit(2, 0.0, 0, 5.0);
    slo.onComplete(2, 4.0);
    slo.onSubmit(3, 0.0); // No deadline: not tracked as live.
    slo.onComplete(3, 100.0);
    EXPECT_EQ(slo.deadlineTracked(), 2u);
    EXPECT_EQ(slo.deadlineMissed(), 0u);
    EXPECT_GT(slo.liveQuantile(0.99), 0.0);
}

TEST(SloDeadline, QueueAgeTracksSubmissionsWithTelemetryDark)
{
    // Regression: submissions were only reported to the monitor when
    // tracing sampled the step or SLO evaluation was enabled, so a
    // step queued while telemetry was dark aged from the wrong epoch
    // (queue age read 0). The enqueue timestamp must be recorded
    // unconditionally.
    ClusterConfig cfg;
    cfg.hosts = 1;
    cfg.vcus_per_host = 1;
    cfg.seed = 3;
    cfg.observability = false; // Registry, trace, tracer all dark.
    cfg.slo.enabled = false;   // No SLO evaluation either.
    ClusterSim sim(cfg);
    // One step occupies the worker; the rest wait in the backlog.
    for (uint64_t i = 0; i < 4; ++i)
        sim.submit(batchStep(i));
    sim.run(10.0, 1.0);
    EXPECT_GT(sim.conservation().backlog, 0u);
    EXPECT_GE(sim.slo().queueAge(10.0), 10.0);
}

} // namespace
} // namespace wsva::cluster
