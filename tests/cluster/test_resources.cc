#include "cluster/resources.h"

#include <gtest/gtest.h>

namespace wsva::cluster {
namespace {

TEST(ResourceVector, GetAbsentIsZero)
{
    ResourceVector rv;
    EXPECT_EQ(rv.get("anything"), 0.0);
    EXPECT_TRUE(rv.empty());
}

TEST(ResourceVector, SetAndGet)
{
    ResourceVector rv;
    rv.set(kResEncodeMillicores, 3750);
    EXPECT_EQ(rv.get(kResEncodeMillicores), 3750);
}

TEST(ResourceVector, SetZeroErases)
{
    ResourceVector rv;
    rv.set("dim", 5);
    rv.set("dim", 0);
    EXPECT_TRUE(rv.empty());
}

TEST(ResourceVector, AddAndSubtract)
{
    ResourceVector a{{kResDecodeMillicores, 500.0},
                     {kResEncodeMillicores, 3750.0}};
    ResourceVector b{{kResDecodeMillicores, 100.0}};
    a.add(b);
    EXPECT_EQ(a.get(kResDecodeMillicores), 600);
    a.subtract(b);
    EXPECT_EQ(a.get(kResDecodeMillicores), 500);
    EXPECT_EQ(a.get(kResEncodeMillicores), 3750);
}

TEST(ResourceVector, FitsPaperExample)
{
    // Figure 6: Worker 0 {D 0, E 7000} cannot take {D 500, E 3750};
    // Worker 1 {D 1000, E 7000} can.
    ResourceVector need{{kResDecodeMillicores, 500.0},
                        {kResEncodeMillicores, 3750.0}};
    ResourceVector worker0{{kResDecodeMillicores, 0.0},
                           {kResEncodeMillicores, 7000.0}};
    ResourceVector worker1{{kResDecodeMillicores, 1000.0},
                           {kResEncodeMillicores, 7000.0}};
    EXPECT_FALSE(worker0.fits(need));
    EXPECT_TRUE(worker1.fits(need));
}

TEST(ResourceVector, FitsTreatsMissingDimensionsAsZero)
{
    ResourceVector need{{"exotic", 1.0}};
    ResourceVector avail{{kResEncodeMillicores, 10000.0}};
    EXPECT_FALSE(avail.fits(need));
}

TEST(ResourceVector, FitsExactBoundary)
{
    ResourceVector need{{kResEncodeMillicores, 10000.0}};
    ResourceVector avail{{kResEncodeMillicores, 10000.0}};
    EXPECT_TRUE(avail.fits(need));
}

TEST(ResourceVector, NonNegativeDetection)
{
    ResourceVector rv{{kResEncodeMillicores, 100.0}};
    EXPECT_TRUE(rv.nonNegative());
    ResourceVector neg;
    neg.set("x", -1);
    EXPECT_FALSE(neg.nonNegative());
}

TEST(ResourceVector, MaxUtilization)
{
    ResourceVector cap{{kResDecodeMillicores, 3000.0},
                       {kResEncodeMillicores, 10000.0}};
    ResourceVector used{{kResDecodeMillicores, 1500.0},
                        {kResEncodeMillicores, 2000.0}};
    EXPECT_DOUBLE_EQ(used.maxUtilizationVs(cap), 0.5);
}

} // namespace
} // namespace wsva::cluster
