/**
 * @file
 * Step-conservation suite: under any mix of hard faults, silent
 * faults, integrity retries, aborts, quarantines, and capped repairs,
 * every step ever submitted must sit in exactly one bucket —
 * completed, in flight, backlog, or terminally failed — at every tick
 * and at the horizon. Each scenario drives the simulator tick by tick
 * (run() keeps its clock and RNG across calls, so N unit-duration
 * runs replay one long run exactly) and audits the ledger after every
 * tick, on top of the simulator's own internal per-tick checker.
 */

#include "cluster/cluster.h"

#include <gtest/gtest.h>

#include <memory>

namespace wsva::cluster {
namespace {

using wsva::video::codec::CodecType;

ArrivalFn
steadyArrivals(int per_tick,
               wsva::video::Resolution res = {1920, 1080})
{
    auto counter = std::make_shared<uint64_t>(0);
    return [per_tick, res, counter](double, double) {
        std::vector<TranscodeStep> steps;
        for (int i = 0; i < per_tick; ++i) {
            const uint64_t id = (*counter)++;
            steps.push_back(makeMotStep(id, id / 8,
                                        static_cast<int>(id % 8), res,
                                        CodecType::VP9));
        }
        return steps;
    };
}

/** Drive @p sim one tick at a time, asserting the ledger after every
 *  tick. Returns the total internal violations observed. */
uint64_t
driveTicks(ClusterSim &sim, int ticks, const ArrivalFn &arrivals)
{
    uint64_t violations = 0;
    for (int tick = 0; tick < ticks; ++tick) {
        const auto m = sim.run(1.0, 1.0, arrivals);
        violations += m.conservation_violations;
        const ConservationSnapshot snap = sim.conservation();
        EXPECT_TRUE(snap.holds())
            << "tick " << tick << ": submitted " << snap.submitted
            << " != completed " << snap.completed << " + failed "
            << snap.failed_terminal << " + in-flight "
            << snap.in_flight << " + backlog " << snap.backlog;
        if (!snap.holds())
            break; // One detailed failure beats hundreds.
    }
    return violations;
}

TEST(StepConservation, HoldsEveryTickUnderCombinedFailures)
{
    // Hard faults + silent faults + abort-on-failure + integrity
    // retries + host repairs squeezed through a cap of one: every
    // accounting path at once.
    ClusterConfig cfg;
    cfg.hosts = 2;
    cfg.vcus_per_host = 4;
    cfg.seed = 23;
    cfg.vcu_hard_fault_per_hour = 20.0;
    cfg.vcu_silent_fault_per_hour = 20.0;
    cfg.failure.host_fault_threshold = 2;
    cfg.failure.repair_cap = 1;
    cfg.failure.repair_seconds = 120.0;
    ClusterSim sim(cfg);

    const uint64_t violations = driveTicks(sim, 900, steadyArrivals(6));
    EXPECT_EQ(violations, 0u);

    // The scenario must actually have exercised the failure paths,
    // otherwise the invariant was trivially true.
    const auto &reg = sim.metricsRegistry();
    EXPECT_GT(reg.counter("cluster.vcus_disabled"), 0u);
    EXPECT_GT(reg.counter("cluster.silent_faults"), 0u);
    EXPECT_GT(reg.counter("cluster.steps_retried"), 0u);
    EXPECT_GT(reg.counter("repair.entered"), 0u);
    EXPECT_GT(sim.traceLog().countOf(TraceEventType::StepRetried), 0u);
}

TEST(StepConservation, HoldsAtHorizonWithInFlightWork)
{
    // Heavy 4K steps against a tiny horizon: the horizon cuts work
    // off mid-service. That work must appear in steps_in_flight (it
    // used to vanish from the ledger entirely).
    ClusterConfig cfg;
    cfg.hosts = 1;
    cfg.vcus_per_host = 4;
    cfg.seed = 5;
    ClusterSim sim(cfg);
    const auto m =
        sim.run(6.0, 1.0, steadyArrivals(4, {3840, 2160}));

    EXPECT_GT(m.steps_in_flight, 0u);
    EXPECT_EQ(m.steps_submitted,
              m.steps_completed + m.steps_in_flight +
                  m.backlog_remaining);
    const ConservationSnapshot snap = sim.conservation();
    EXPECT_TRUE(snap.holds());
    EXPECT_EQ(snap.in_flight, m.steps_in_flight);
    EXPECT_EQ(m.conservation_violations, 0u);
}

TEST(StepConservation, HoldsUnderQuarantineAndAffinityPlacement)
{
    // Silent-fault mitigation path: corrupt outputs detected, work
    // aborted, workers golden-screened into quarantine — combined
    // with consistent-hash affinity scheduling (deferral rotations
    // must not lose or duplicate steps).
    ClusterConfig cfg;
    cfg.hosts = 1;
    cfg.vcus_per_host = 6;
    cfg.seed = 29;
    cfg.vcu_silent_fault_per_hour = 30.0;
    cfg.failure.host_fault_threshold = 1000000; // No host repair.
    cfg.failure.golden_screening = true;
    cfg.failure.abort_on_failure = true;
    cfg.failure.integrity_detect_prob = 0.9;
    cfg.use_consistent_hashing = true;
    cfg.affinity_set_size = 2;
    ClusterSim sim(cfg);

    const uint64_t violations = driveTicks(sim, 600, steadyArrivals(8));
    EXPECT_EQ(violations, 0u);
    const auto &reg = sim.metricsRegistry();
    EXPECT_GT(reg.counter("cluster.workers_quarantined"), 0u);
    EXPECT_GT(reg.counter("cluster.corrupt_detected"), 0u);
}

TEST(StepConservation, HoldsWithObservabilityDisabled)
{
    // The checker is an invariant, not a metric: it runs (and holds)
    // with the registry and trace log off.
    ClusterConfig cfg;
    cfg.hosts = 1;
    cfg.vcus_per_host = 4;
    cfg.seed = 31;
    cfg.observability = false;
    cfg.vcu_hard_fault_per_hour = 15.0;
    cfg.failure.host_fault_threshold = 2;
    cfg.failure.repair_seconds = 60.0;
    ClusterSim sim(cfg);

    const auto m = sim.run(600.0, 1.0, steadyArrivals(4));
    EXPECT_GT(m.conservation_checks, 600u - 1u);
    EXPECT_EQ(m.conservation_violations, 0u);
    EXPECT_TRUE(sim.conservation().holds());
    // Nothing was recorded while disabled.
    EXPECT_EQ(sim.metricsRegistry().counter("cluster.steps_completed"),
              0u);
    EXPECT_EQ(sim.traceLog().recorded(), 0u);
}

TEST(StepConservation, PreSubmittedWorkIsLedgered)
{
    // submit() before run() lands in the same lifetime ledger as
    // arrivals during run().
    ClusterConfig cfg;
    cfg.hosts = 1;
    cfg.vcus_per_host = 4;
    cfg.seed = 37;
    ClusterSim sim(cfg);
    for (uint64_t i = 0; i < 10; ++i)
        sim.submit(makeMotStep(i, i, 0, {1920, 1080}, CodecType::VP9));
    EXPECT_EQ(sim.conservation().submitted, 10u);
    EXPECT_EQ(sim.conservation().backlog, 10u);
    sim.run(60.0, 1.0);
    const ConservationSnapshot snap = sim.conservation();
    EXPECT_TRUE(snap.holds());
    EXPECT_EQ(snap.completed, 10u);
}

} // namespace
} // namespace wsva::cluster
