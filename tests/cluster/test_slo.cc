#include "cluster/slo.h"

#include <gtest/gtest.h>

#include "common/metrics.h"
#include "support/mini_json.h"

namespace wsva::cluster {
namespace {

using wsva::testsupport::JsonValue;
using wsva::testsupport::parseJson;

SloConfig
tightConfig()
{
    SloConfig cfg;
    cfg.p99_target_seconds = 10.0;
    cfg.window_ticks = 4;
    cfg.burn_alert_fraction = 0.5;
    return cfg;
}

TEST(SloMonitor, MeasuresEndToEndLatency)
{
    SloMonitor slo(tightConfig());
    slo.onSubmit(1, 100.0, 77);
    const SloMonitor::Upload *up = slo.find(1);
    ASSERT_NE(up, nullptr);
    EXPECT_DOUBLE_EQ(up->submit_time, 100.0);
    EXPECT_EQ(up->span_id, 77u);
    EXPECT_DOUBLE_EQ(slo.onComplete(1, 103.5), 3.5);
    EXPECT_EQ(slo.find(1), nullptr);
    EXPECT_EQ(slo.completedCount(), 1u);
    EXPECT_EQ(slo.inflight(), 0u);
}

TEST(SloMonitor, UntrackedCompletionReturnsNegative)
{
    SloMonitor slo(tightConfig());
    EXPECT_LT(slo.onComplete(99, 1.0), 0.0);
}

TEST(SloMonitor, CountsViolationsAgainstTarget)
{
    SloMonitor slo(tightConfig()); // Target: 10 s.
    slo.onSubmit(1, 0.0);
    slo.onSubmit(2, 0.0);
    slo.onComplete(1, 5.0);  // Within target.
    slo.onComplete(2, 25.0); // Violation.
    EXPECT_EQ(slo.violations(), 1u);
}

TEST(SloMonitor, QueueAgeTracksOldestUnfinishedUpload)
{
    SloMonitor slo(tightConfig());
    EXPECT_DOUBLE_EQ(slo.queueAge(50.0), 0.0);
    slo.onSubmit(1, 10.0);
    slo.onSubmit(2, 30.0);
    EXPECT_DOUBLE_EQ(slo.queueAge(50.0), 40.0);
    slo.onComplete(1, 50.0);
    EXPECT_DOUBLE_EQ(slo.queueAge(50.0), 20.0);
}

TEST(SloMonitor, WindowP99ReflectsRecentCompletionsOnly)
{
    SloMonitor slo(tightConfig()); // Window: 4 ticks.
    slo.onSubmit(1, 0.0);
    slo.onComplete(1, 30.0); // Latency 30 at tick 0.
    slo.onTick(1.0);
    EXPECT_DOUBLE_EQ(slo.windowP99(), 30.0);
    // Five more ticks push the slow completion out of the window.
    for (int t = 2; t <= 6; ++t)
        slo.onTick(static_cast<double>(t));
    EXPECT_DOUBLE_EQ(slo.windowP99(), 0.0);
}

TEST(SloMonitor, BurnRateAlertRaisesAndClearsWithHysteresis)
{
    wsva::MetricsRegistry registry;
    wsva::TraceLog log;
    SloMonitor slo(tightConfig());
    slo.attach(&registry, &log);

    // Two of four window ticks burning -> burn rate 0.5 -> alert.
    double now = 0.0;
    for (int i = 0; i < 2; ++i) {
        const uint64_t id = static_cast<uint64_t>(i) + 1;
        slo.onSubmit(id, now);
        slo.onComplete(id, now + 50.0); // Far over the 10 s target.
        now += 1.0;
        slo.onTick(now);
    }
    EXPECT_TRUE(slo.alertActive());
    EXPECT_EQ(slo.alertsRaised(), 1u);
    EXPECT_EQ(log.countOf(TraceEventType::SloAlert), 1u);
    EXPECT_EQ(registry.counter("slo.alerts"), 1u);
    EXPECT_DOUBLE_EQ(registry.gauge("slo.alert_active"), 1.0);

    // Healthy ticks: burn rate decays; the alert clears only once it
    // reaches half the alert fraction (hysteresis), and it must not
    // re-raise while hovering below the line.
    for (int i = 0; i < 8; ++i) {
        now += 1.0;
        slo.onTick(now);
    }
    EXPECT_FALSE(slo.alertActive());
    EXPECT_EQ(slo.alertsRaised(), 1u);
    EXPECT_EQ(log.countOf(TraceEventType::SloAlertCleared), 1u);
    EXPECT_DOUBLE_EQ(registry.gauge("slo.alert_active"), 0.0);
}

TEST(SloMonitor, DisabledSkipsEvaluationButKeepsBookkeeping)
{
    SloConfig cfg = tightConfig();
    cfg.enabled = false;
    wsva::TraceLog log;
    SloMonitor slo(cfg);
    slo.attach(nullptr, &log);
    slo.onSubmit(1, 0.0, 5);
    ASSERT_NE(slo.find(1), nullptr); // Span plumbing still works.
    slo.onComplete(1, 100.0);
    for (int t = 0; t < 10; ++t)
        slo.onTick(static_cast<double>(t));
    EXPECT_FALSE(slo.alertActive());
    EXPECT_EQ(log.countOf(TraceEventType::SloAlert), 0u);
    EXPECT_DOUBLE_EQ(slo.burnRate(), 0.0);
}

TEST(SloMonitor, RetriesKeepTheOriginalSubmitClock)
{
    SloMonitor slo(tightConfig());
    slo.onSubmit(1, 0.0);
    // A retry does not resubmit; the entry persists until terminal
    // completion, so latency covers every requeue in between.
    EXPECT_DOUBLE_EQ(slo.onComplete(1, 42.0), 42.0);
}

TEST(SloMonitor, ExportJsonIsParsableAndComplete)
{
    wsva::MetricsRegistry registry;
    SloMonitor slo(tightConfig());
    slo.attach(&registry, nullptr);
    slo.onSubmit(1, 0.0);
    slo.onComplete(1, 30.0);
    slo.onSubmit(2, 5.0);
    slo.onTick(6.0);

    JsonValue doc;
    std::string error;
    ASSERT_TRUE(parseJson(slo.exportJson(10.0), &doc, &error)) << error;
    EXPECT_DOUBLE_EQ(doc.numberAt("p99_target_seconds"), 10.0);
    EXPECT_DOUBLE_EQ(doc.numberAt("completed"), 1.0);
    EXPECT_DOUBLE_EQ(doc.numberAt("violations"), 1.0);
    EXPECT_DOUBLE_EQ(doc.numberAt("inflight"), 1.0);
    EXPECT_DOUBLE_EQ(doc.numberAt("window_p99"), 30.0);
    EXPECT_DOUBLE_EQ(doc.numberAt("queue_age_seconds"), 5.0);
    EXPECT_TRUE(doc.has("burn_rate"));
    EXPECT_TRUE(doc.has("lifetime_p99"));
    EXPECT_TRUE(doc.has("alert_active"));
}

TEST(SloMonitorWindow, EvictionBoundaryIsExact)
{
    // A completion stamped at tick T leaves the window at tick
    // T + window_ticks exactly — present on the last covered tick,
    // gone on the next.
    SloMonitor slo(tightConfig()); // window_ticks = 4.
    slo.onSubmit(1, 0.0);
    slo.onComplete(1, 50.0); // Stamped tick 0, latency 50.
    slo.onTick(1.0);
    slo.onTick(2.0);
    slo.onTick(3.0); // tick_ = 3: 0 + 4 <= 3 is false, still in.
    EXPECT_DOUBLE_EQ(slo.windowP99(), 50.0);
    slo.onTick(4.0); // tick_ = 4: 0 + 4 <= 4, evicted.
    EXPECT_DOUBLE_EQ(slo.windowP99(), 0.0);
}

TEST(SloMonitorWindow, ExactlyFullNearestRank)
{
    // 100 completions in the window: nearest-rank p99 is the 100th
    // value (rank 99), not an interpolation.
    SloConfig cfg = tightConfig();
    cfg.window_ticks = 10;
    SloMonitor slo(cfg);
    for (uint64_t i = 1; i <= 100; ++i) {
        slo.onSubmit(i, 0.0);
        slo.onComplete(i, static_cast<double>(i)); // Latency i.
    }
    slo.onTick(1.0);
    EXPECT_DOUBLE_EQ(slo.windowP99(), 100.0);

    // A window of 4 yields rank 3: the maximum.
    SloMonitor small(tightConfig());
    for (uint64_t i = 1; i <= 4; ++i) {
        small.onSubmit(i, 0.0);
        small.onComplete(i, static_cast<double>(i));
    }
    small.onTick(1.0);
    EXPECT_DOUBLE_EQ(small.windowP99(), 4.0);
}

TEST(SloMonitorWindow, DuplicateLatencyTiesAtP99Rank)
{
    // Four completions exactly AT the 10 s target: p99 == target is
    // not a violation (strictly-over semantics), so the O(1)
    // rank-count burning check must agree with windowP99().
    SloMonitor at_target(tightConfig());
    for (uint64_t i = 1; i <= 4; ++i) {
        at_target.onSubmit(i, 0.0);
        at_target.onComplete(i, 10.0);
    }
    at_target.onTick(1.0);
    EXPECT_DOUBLE_EQ(at_target.windowP99(), 10.0);
    EXPECT_DOUBLE_EQ(at_target.burnRate(), 0.0); // Not burning.

    // Duplicates below the rank with one strictly-over value at it:
    // both paths must flip together.
    SloMonitor over(tightConfig());
    for (uint64_t i = 1; i <= 3; ++i) {
        over.onSubmit(i, 0.0);
        over.onComplete(i, 10.0);
    }
    over.onSubmit(4, 0.0);
    over.onComplete(4, 10.5);
    over.onTick(1.0);
    EXPECT_DOUBLE_EQ(over.windowP99(), 10.5);
    EXPECT_DOUBLE_EQ(over.burnRate(), 1.0); // Burning.

    // Ties at the rank itself: {5, 10, 10, 10} ranks to 10 == target,
    // still not burning.
    SloMonitor tied(tightConfig());
    tied.onSubmit(1, 0.0);
    tied.onComplete(1, 5.0);
    for (uint64_t i = 2; i <= 4; ++i) {
        tied.onSubmit(i, 0.0);
        tied.onComplete(i, 10.0);
    }
    tied.onTick(1.0);
    EXPECT_DOUBLE_EQ(tied.windowP99(), 10.0);
    EXPECT_DOUBLE_EQ(tied.burnRate(), 0.0);
}

TEST(SloMonitorWindow, AlertHysteresisAcrossBurstBoundary)
{
    // Raise at burn >= 0.5, clear only at burn <= 0.25. A burst of
    // over-target completions raises the alert exactly once; after
    // the burst ends the alert must survive the decay through the
    // raise threshold (no flap) and clear exactly when the burn rate
    // reaches the clear line.
    SloMonitor slo(tightConfig()); // window 4, raise 0.5, clear 0.25.
    uint64_t id = 0;
    double now = 0.0;
    for (int t = 0; t < 6; ++t) {
        slo.onSubmit(++id, now);
        slo.onComplete(id, now + 50.0); // 50 s >> 10 s target.
        now += 1.0;
        slo.onTick(now);
    }
    EXPECT_TRUE(slo.alertActive());
    EXPECT_EQ(slo.alertsRaised(), 1u); // Raised once, not per tick.

    // Burst over: clean ticks decay the burn rate. The alert must
    // stay active strictly above the clear line and drop the moment
    // the line is reached.
    bool cleared = false;
    for (int t = 0; t < 12 && !cleared; ++t) {
        now += 1.0;
        slo.onTick(now);
        if (slo.alertActive()) {
            EXPECT_GT(slo.burnRate(), 0.25);
        } else {
            cleared = true;
            EXPECT_LE(slo.burnRate(), 0.25);
        }
    }
    EXPECT_TRUE(cleared);
    EXPECT_EQ(slo.alertsRaised(), 1u);

    // A second burst re-raises: the hysteresis reset is symmetric.
    for (int t = 0; t < 6; ++t) {
        slo.onSubmit(++id, now);
        slo.onComplete(id, now + 50.0);
        now += 1.0;
        slo.onTick(now);
    }
    EXPECT_TRUE(slo.alertActive());
    EXPECT_EQ(slo.alertsRaised(), 2u);
}

} // namespace
} // namespace wsva::cluster
