/**
 * @file
 * Event-engine scale suite: tick-vs-event equivalence, event-engine
 * determinism, telemetry gating, concurrent scrapes during an event
 * run, and the conservation + worker/host/rack partition invariants
 * at a 1000-host fleet under combined faults with a capped repair
 * queue.
 *
 * Equivalence contract (DESIGN.md section 9): with no fault processes
 * the two engines consume zero RNG and land every arrival, placement,
 * and completion on identical timestamps — the ledgers must match
 * *exactly* as long as capacity never blocks the queue (a blocked
 * step is re-dispatched at the next tick by the tick engine but at
 * the exact moment capacity frees by the event engine, which is the
 * one intentional timing refinement). With faults, the engines draw
 * from the same distributions on different schedules, so runs are
 * compared statistically, not bitwise.
 */

#include "cluster/cluster.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>

namespace wsva::cluster {
namespace {

using wsva::video::codec::CodecType;

ArrivalFn
steadyArrivals(int per_tick,
               wsva::video::Resolution res = {1920, 1080})
{
    auto counter = std::make_shared<uint64_t>(0);
    return [per_tick, res, counter](double, double) {
        std::vector<TranscodeStep> steps;
        for (int i = 0; i < per_tick; ++i) {
            const uint64_t id = (*counter)++;
            steps.push_back(makeMotStep(id, id / 8,
                                        static_cast<int>(id % 8), res,
                                        CodecType::VP9));
        }
        return steps;
    };
}

TEST(FleetScale, TickAndEventEnginesMatchExactlyFaultFree)
{
    // Light load so capacity never blocks the head of the queue:
    // then both engines place every step at its arrival tick and the
    // whole run is deterministic with zero RNG draws, so the final
    // ledgers must be *identical*, not just statistically close.
    ClusterConfig cfg;
    cfg.hosts = 2;
    cfg.vcus_per_host = 4;
    cfg.seed = 7;

    ClusterConfig tick_cfg = cfg;
    tick_cfg.engine = SimEngine::Tick;
    ClusterSim tick_sim(tick_cfg);
    const auto tick_m = tick_sim.run(300.0, 1.0, steadyArrivals(1));

    ClusterConfig event_cfg = cfg;
    event_cfg.engine = SimEngine::Event;
    ClusterSim event_sim(event_cfg);
    const auto event_m = event_sim.run(300.0, 1.0, steadyArrivals(1));

    // Scenario precondition: nothing ever blocked.
    ASSERT_EQ(tick_m.sched_rejected, 0u);
    ASSERT_EQ(event_m.sched_rejected, 0u);

    EXPECT_EQ(event_m.steps_submitted, tick_m.steps_submitted);
    EXPECT_EQ(event_m.steps_completed, tick_m.steps_completed);
    EXPECT_EQ(event_m.steps_failed, tick_m.steps_failed);
    EXPECT_EQ(event_m.steps_retried, tick_m.steps_retried);
    EXPECT_EQ(event_m.steps_in_flight, tick_m.steps_in_flight);
    EXPECT_EQ(event_m.backlog_remaining, tick_m.backlog_remaining);
    EXPECT_DOUBLE_EQ(event_m.output_pixels, tick_m.output_pixels);
    EXPECT_DOUBLE_EQ(event_m.sim_seconds, tick_m.sim_seconds);
    EXPECT_GT(event_m.steps_completed, 200u);
    EXPECT_GT(event_m.events_processed, 0u);
    EXPECT_EQ(tick_m.events_processed, 0u);

    const auto tick_snap = tick_sim.conservation();
    const auto event_snap = event_sim.conservation();
    EXPECT_TRUE(tick_snap.holds());
    EXPECT_TRUE(event_snap.holds());
    EXPECT_EQ(event_snap.submitted, tick_snap.submitted);
    EXPECT_EQ(event_snap.completed, tick_snap.completed);
    EXPECT_EQ(event_snap.in_flight, tick_snap.in_flight);
    EXPECT_EQ(event_snap.backlog, tick_snap.backlog);

    // The registry saw the identical step stream.
    EXPECT_EQ(event_sim.metricsRegistry().counter(
                  "cluster.steps_completed"),
              tick_sim.metricsRegistry().counter(
                  "cluster.steps_completed"));
}

TEST(FleetScale, TickAndEventDrainPreSubmittedWorkIdentically)
{
    // No arrival function at all: pre-submitted work must dispatch
    // on the first tick boundary and drain to the identical ledger.
    for (const SimEngine engine :
         {SimEngine::Tick, SimEngine::Event}) {
        ClusterConfig cfg;
        cfg.hosts = 1;
        cfg.vcus_per_host = 4;
        cfg.seed = 11;
        cfg.engine = engine;
        ClusterSim sim(cfg);
        for (uint64_t i = 0; i < 24; ++i)
            sim.submit(
                makeMotStep(i, i, 0, {1920, 1080}, CodecType::VP9));
        const auto m = sim.run(180.0, 1.0);
        EXPECT_EQ(m.steps_completed, 24u)
            << "engine " << static_cast<int>(engine);
        EXPECT_EQ(m.backlog_remaining, 0u);
        EXPECT_EQ(m.steps_in_flight, 0u);
        EXPECT_TRUE(sim.conservation().holds());
        EXPECT_EQ(m.conservation_violations, 0u);
    }
}

TEST(FleetScale, EventEngineIsDeterministic)
{
    // Same seed, same arrivals, faults on: two event runs must agree
    // on every count (the heap's (time, type, seq) ordering leaves
    // no room for nondeterminism).
    ClusterMetrics runs[2];
    ConservationSnapshot snaps[2];
    for (int i = 0; i < 2; ++i) {
        ClusterConfig cfg;
        cfg.hosts = 4;
        cfg.vcus_per_host = 8;
        cfg.seed = 1234;
        cfg.engine = SimEngine::Event;
        cfg.vcu_hard_fault_per_hour = 10.0;
        cfg.vcu_silent_fault_per_hour = 10.0;
        cfg.failure.host_fault_threshold = 2;
        cfg.failure.repair_cap = 1;
        cfg.failure.repair_seconds = 120.0;
        ClusterSim sim(cfg);
        runs[i] = sim.run(900.0, 1.0, steadyArrivals(4));
        snaps[i] = sim.conservation();
        EXPECT_TRUE(snaps[i].holds());
    }
    EXPECT_EQ(runs[0].steps_completed, runs[1].steps_completed);
    EXPECT_EQ(runs[0].steps_retried, runs[1].steps_retried);
    EXPECT_EQ(runs[0].steps_failed, runs[1].steps_failed);
    EXPECT_EQ(runs[0].vcus_disabled, runs[1].vcus_disabled);
    EXPECT_EQ(runs[0].hosts_repaired, runs[1].hosts_repaired);
    EXPECT_EQ(runs[0].events_processed, runs[1].events_processed);
    EXPECT_EQ(snaps[0].completed, snaps[1].completed);
    EXPECT_EQ(snaps[0].backlog, snaps[1].backlog);
    // The scenario exercised the fault machinery.
    EXPECT_GT(runs[0].vcus_disabled, 0);
    EXPECT_GT(runs[0].steps_retried, 0u);
}

TEST(FleetScale, EventMatchesTickUnderFaultsStatistically)
{
    // With faults the engines sample the same Poisson processes on
    // different schedules (per-tick thinned Bernoulli vs exponential
    // arrivals), so seeded runs differ bitwise but must agree in
    // aggregate. Both runs are deterministic for fixed seeds, so the
    // tolerances cannot flake.
    ClusterConfig cfg;
    cfg.hosts = 4;
    cfg.vcus_per_host = 8;
    cfg.seed = 99;
    cfg.vcu_hard_fault_per_hour = 8.0;
    cfg.failure.host_fault_threshold = 2;
    cfg.failure.repair_cap = 2;
    cfg.failure.repair_seconds = 300.0;

    ClusterConfig tick_cfg = cfg;
    tick_cfg.engine = SimEngine::Tick;
    ClusterSim tick_sim(tick_cfg);
    const auto tick_m = tick_sim.run(1800.0, 1.0, steadyArrivals(3));

    ClusterConfig event_cfg = cfg;
    event_cfg.engine = SimEngine::Event;
    ClusterSim event_sim(event_cfg);
    const auto event_m = event_sim.run(1800.0, 1.0, steadyArrivals(3));

    EXPECT_EQ(event_m.steps_submitted, tick_m.steps_submitted);
    EXPECT_TRUE(tick_sim.conservation().holds());
    EXPECT_TRUE(event_sim.conservation().holds());
    // Fault exposure: same expected count; allow a factor-2 band
    // around each other (hundreds of expected faults per run).
    EXPECT_GT(event_m.vcus_disabled, 0);
    EXPECT_GT(tick_m.vcus_disabled, 0);
    EXPECT_LT(event_m.vcus_disabled, 2 * tick_m.vcus_disabled + 16);
    EXPECT_LT(tick_m.vcus_disabled, 2 * event_m.vcus_disabled + 16);
    // Throughput within 15% of each other.
    const double c_tick = static_cast<double>(tick_m.steps_completed);
    const double c_event =
        static_cast<double>(event_m.steps_completed);
    EXPECT_GT(c_event, 0.85 * c_tick);
    EXPECT_LT(c_event, 1.15 * c_tick + 16.0);
}

TEST(FleetScale, ObservabilityOffSkipsTelemetryEventsNotOutcomes)
{
    // Satellite of the event core: with observability off the event
    // engine schedules no telemetry bookkeeping at all, yet every
    // step outcome is identical (recording never consumes RNG).
    ClusterMetrics m[2];
    for (int obs = 0; obs < 2; ++obs) {
        ClusterConfig cfg;
        cfg.hosts = 2;
        cfg.vcus_per_host = 8;
        cfg.seed = 55;
        cfg.engine = SimEngine::Event;
        cfg.observability = obs == 1;
        cfg.slo.enabled = false; // SLO accounting is not telemetry.
        cfg.vcu_hard_fault_per_hour = 6.0;
        cfg.failure.host_fault_threshold = 2;
        ClusterSim sim(cfg);
        m[obs] = sim.run(600.0, 1.0, steadyArrivals(3));
        if (obs == 0) {
            EXPECT_EQ(sim.metricsRegistry().counter(
                          "cluster.steps_completed"),
                      0u);
            EXPECT_EQ(sim.traceLog().recorded(), 0u);
        }
    }
    EXPECT_EQ(m[0].steps_completed, m[1].steps_completed);
    EXPECT_EQ(m[0].steps_retried, m[1].steps_retried);
    EXPECT_EQ(m[0].vcus_disabled, m[1].vcus_disabled);
    // The observed run pays SloEval/publish events; the dark run
    // must not.
    EXPECT_LT(m[0].events_processed, m[1].events_processed);
}

TEST(FleetScale, ConservationAndPartitionInvariantAt1kHosts)
{
    // The headline scale invariant: 1000 hosts / 20000 VCUs under
    // combined hard+silent faults squeezed through a capped repair
    // queue. The ledger must balance at every event batch and the
    // fleet rollup must partition every worker into exactly one
    // host and every host into exactly one rack — all within a small
    // event budget (no hidden per-tick fleet scans).
    ClusterConfig cfg;
    cfg.hosts = 1000;
    cfg.vcus_per_host = 20;
    cfg.hosts_per_rack = 40;
    cfg.seed = 2021;
    cfg.engine = SimEngine::Event;
    cfg.observability = false;
    cfg.slo.enabled = false;
    cfg.track_blast_radius = false;
    cfg.vcu_hard_fault_per_hour = 0.4;
    cfg.vcu_silent_fault_per_hour = 0.4;
    cfg.failure.host_fault_threshold = 2;
    cfg.failure.repair_cap = 3;
    cfg.failure.repair_seconds = 600.0;
    ClusterSim sim(cfg);

    const auto m = sim.run(120.0, 1.0, steadyArrivals(200));

    EXPECT_EQ(m.conservation_violations, 0u);
    const ConservationSnapshot snap = sim.conservation();
    EXPECT_TRUE(snap.holds());
    EXPECT_EQ(m.steps_submitted, 24000u);
    EXPECT_GT(m.steps_completed, 0u);
    // The fault machinery really ran at scale.
    EXPECT_GT(m.vcus_disabled, 0);
    EXPECT_GT(m.steps_retried, 0u);

    // Small event budget: roughly one event per step completion plus
    // faults, repairs, and arrival batches — nowhere near the
    // hosts x vcus x ticks = 2.4M cost a scanning engine would pay.
    EXPECT_GT(m.events_processed, 0u);
    EXPECT_LT(m.events_processed, 400000u);

    // Partition invariant: every worker counted exactly once at the
    // host level, every host exactly once at the rack level, and the
    // cluster total equals the provisioned fleet.
    const auto fleet = sim.buildFleetHealth(120.0);
    const uint64_t total =
        static_cast<uint64_t>(sim.totalVcus());
    ASSERT_EQ(fleet.hosts.size(), 1000u);
    uint64_t host_sum = 0;
    for (const auto &host : fleet.hosts) {
        EXPECT_EQ(host.counts.total(),
                  static_cast<uint64_t>(cfg.vcus_per_host));
        host_sum += host.counts.total();
    }
    EXPECT_EQ(host_sum, total);
    ASSERT_EQ(fleet.racks.size(), 25u); // 1000 hosts / 40 per rack.
    uint64_t rack_sum = 0;
    for (const auto &rack : fleet.racks)
        rack_sum += rack.counts.total();
    EXPECT_EQ(rack_sum, total);
    EXPECT_EQ(fleet.cluster.total(), total);
    EXPECT_EQ(fleet.in_flight, snap.in_flight);
    EXPECT_EQ(fleet.backlog, snap.backlog);
}

TEST(FleetScale, ScrapesRaceTheEventLoopSafely)
{
    // Concurrent /statusz-style scrapes while the event engine runs:
    // scrape threads may only touch the double-buffered board, which
    // must stay coherent under the TSan preset.
    ClusterConfig cfg;
    cfg.hosts = 8;
    cfg.vcus_per_host = 8;
    cfg.seed = 77;
    cfg.engine = SimEngine::Event;
    cfg.fleet_publish_every_ticks = 5;
    cfg.vcu_hard_fault_per_hour = 5.0;
    cfg.failure.host_fault_threshold = 2;
    ClusterSim sim(cfg);

    std::atomic<bool> stop{false};
    std::atomic<uint64_t> scrapes{0};
    std::thread scraper([&] {
        while (!stop.load(std::memory_order_acquire)) {
            const auto snap = sim.fleetHealth().snapshot();
            if (snap != nullptr) {
                volatile size_t sink = snap->toText().size();
                (void)sink;
                scrapes.fetch_add(1, std::memory_order_relaxed);
            }
        }
    });
    const auto m = sim.run(600.0, 1.0, steadyArrivals(4));
    stop.store(true, std::memory_order_release);
    scraper.join();

    EXPECT_GT(scrapes.load(), 0u);
    EXPECT_GT(m.steps_completed, 0u);
    EXPECT_TRUE(sim.conservation().holds());
}

} // namespace
} // namespace wsva::cluster
