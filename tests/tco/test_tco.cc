#include "tco/tco.h"

#include <gtest/gtest.h>

namespace wsva::tco {
namespace {

TEST(Tco, TcoAddsCapexAndOpex)
{
    SystemSpec s;
    s.capex_usd = 1000.0;
    s.power_watts = 100.0;
    CostModel m;
    m.years = 3.0;
    m.usd_per_watt_year = 2.0;
    EXPECT_DOUBLE_EQ(totalCostOfOwnership(s, m), 1600.0);
}

TEST(Tco, BaselineIsOneByDefinition)
{
    const auto cpu = skylakeBaseline();
    EXPECT_DOUBLE_EQ(
        perfPerTcoVsBaseline(cpu, cpu, CostModel{}, false), 1.0);
}

TEST(Tco, Table1ThroughputAnchors)
{
    EXPECT_NEAR(skylakeBaseline().h264_mpix_s, 714, 1);
    EXPECT_NEAR(skylakeBaseline().vp9_mpix_s, 154, 1);
    EXPECT_NEAR(nvidiaT4System().h264_mpix_s, 2484, 1);
    EXPECT_NEAR(vcuSystem(8).h264_mpix_s, 5973, 30);
    EXPECT_NEAR(vcuSystem(8).vp9_mpix_s, 6122, 30);
    EXPECT_NEAR(vcuSystem(20).h264_mpix_s, 14932, 60);
    EXPECT_NEAR(vcuSystem(20).vp9_mpix_s, 15306, 60);
}

TEST(Tco, Table1PerfPerTcoShape)
{
    const auto cpu = skylakeBaseline();
    const CostModel m;
    // GPU ~1.5x; 8xVCU ~4.4x; 20xVCU ~7x for H.264.
    EXPECT_NEAR(perfPerTcoVsBaseline(nvidiaT4System(), cpu, m, false),
                1.5, 0.35);
    EXPECT_NEAR(perfPerTcoVsBaseline(vcuSystem(8), cpu, m, false), 4.4,
                0.9);
    EXPECT_NEAR(perfPerTcoVsBaseline(vcuSystem(20), cpu, m, false), 7.0,
                1.2);
    // VP9: 20.8x and 33.3x.
    EXPECT_NEAR(perfPerTcoVsBaseline(vcuSystem(8), cpu, m, true), 20.8,
                4.0);
    EXPECT_NEAR(perfPerTcoVsBaseline(vcuSystem(20), cpu, m, true), 33.3,
                6.0);
}

TEST(Tco, DenserVcuSystemHasBetterPerfPerTco)
{
    const auto cpu = skylakeBaseline();
    const CostModel m;
    EXPECT_GT(perfPerTcoVsBaseline(vcuSystem(20), cpu, m, false),
              perfPerTcoVsBaseline(vcuSystem(8), cpu, m, false));
}

TEST(TcoDeathTest, Vp9OnGpuUnsupported)
{
    const auto cpu = skylakeBaseline();
    EXPECT_DEATH(
        perfPerTcoVsBaseline(nvidiaT4System(), cpu, CostModel{}, true),
        "does not support");
}

TEST(SystemBalance, NetworkLimits)
{
    const auto r = computeSystemBalance(SystemBalanceInput{});
    // "~600 Gpixel/s per system" raw; "~153 Gpixel/s" derated.
    EXPECT_NEAR(r.network_limit_gpix_s, 610, 15);
    EXPECT_NEAR(r.derated_gpix_s, 153, 5);
}

TEST(SystemBalance, Table2HostResources)
{
    const auto r = computeSystemBalance(SystemBalanceInput{});
    EXPECT_NEAR(r.transcode_cores, 42, 2);
    EXPECT_NEAR(r.transcode_dram_gbps, 214, 8);
    EXPECT_NEAR(r.total_cores, 55, 3);
    // Note: the paper's Table 2 prints a 712 Gbps total although its
    // rows are 214 + 300; we report the sum of the rows.
    EXPECT_NEAR(r.total_dram_gbps, 514, 20);
    // "about half of what the target host system provides".
    EXPECT_LT(r.total_cores, 100 * 0.6);
    EXPECT_LT(r.total_dram_gbps, 1600 * 0.5);
}

TEST(SystemBalance, VcuCeilings)
{
    const auto r = computeSystemBalance(SystemBalanceInput{});
    EXPECT_NEAR(r.vcu_ceiling_realtime, 30, 2);
    EXPECT_NEAR(r.vcu_ceiling_offline, 150, 8);
}

TEST(SystemBalance, DramWorstCases)
{
    const auto r = computeSystemBalance(SystemBalanceInput{});
    EXPECT_NEAR(r.sot_dram_gib, 150, 10);
    EXPECT_NEAR(r.offline_dram_gib, 750, 40);
    // Supports the paper's sizing conclusion: 8 GiB per VCU needed,
    // 4 GiB insufficient (30 VCUs x 4 GiB = 120 < 150).
    EXPECT_GT(r.sot_dram_gib, 30 * 4.0);
    EXPECT_LT(r.sot_dram_gib, 30 * 8.0);
}

TEST(SystemBalance, ScalesWithNic)
{
    SystemBalanceInput in;
    in.nic_gbps = 200.0;
    const auto r = computeSystemBalance(in);
    EXPECT_NEAR(r.derated_gpix_s, 305, 10);
    EXPECT_NEAR(r.transcode_cores, 84, 4);
}

} // namespace
} // namespace wsva::tco
