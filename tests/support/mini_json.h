/**
 * @file
 * Minimal recursive-descent JSON parser for tests.
 *
 * The exporters in this repo (MetricsRegistry::toJson,
 * ClusterSim::exportJson, Tracer::exportChromeTrace) emit JSON that
 * external tools consume; asserting on substrings alone cannot catch
 * a structurally broken document. This parser is deliberately small
 * (strict enough for round-trip tests, not a general library): it
 * handles objects, arrays, strings with the escapes our emitters
 * produce, numbers, booleans, and null.
 */

#ifndef WSVA_TESTS_SUPPORT_MINI_JSON_H
#define WSVA_TESTS_SUPPORT_MINI_JSON_H

#include <cctype>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

namespace wsva::testsupport {

/** One parsed JSON value (a tagged union grown for test assertions). */
struct JsonValue
{
    enum class Type { Null, Bool, Number, String, Array, Object };

    Type type = Type::Null;
    bool boolean = false;
    double number = 0.0;
    std::string str;
    std::vector<JsonValue> array;
    std::map<std::string, JsonValue> object;

    bool isObject() const { return type == Type::Object; }
    bool isArray() const { return type == Type::Array; }
    bool isNumber() const { return type == Type::Number; }
    bool isString() const { return type == Type::String; }

    /** Object member by key, or nullptr. */
    const JsonValue *
    get(const std::string &key) const
    {
        if (type != Type::Object)
            return nullptr;
        auto it = object.find(key);
        return it == object.end() ? nullptr : &it->second;
    }

    /** True if the object has @p key. */
    bool has(const std::string &key) const { return get(key) != nullptr; }

    /** Member @p key as a number (0 when absent/mistyped). */
    double
    numberAt(const std::string &key) const
    {
        const JsonValue *v = get(key);
        return v != nullptr && v->type == Type::Number ? v->number : 0.0;
    }

    /** Member @p key as a string ("" when absent/mistyped). */
    std::string
    stringAt(const std::string &key) const
    {
        const JsonValue *v = get(key);
        return v != nullptr && v->type == Type::String ? v->str
                                                       : std::string{};
    }
};

namespace detail {

class JsonParser
{
  public:
    JsonParser(const std::string &text, std::string *error)
        : text_(text), error_(error)
    {
    }

    bool
    parse(JsonValue *out)
    {
        skipWs();
        if (!parseValue(out))
            return false;
        skipWs();
        if (pos_ != text_.size())
            return fail("trailing characters after document");
        return true;
    }

  private:
    bool
    fail(const std::string &msg)
    {
        if (error_ != nullptr)
            *error_ = msg + " at offset " + std::to_string(pos_);
        return false;
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    bool
    consume(char c)
    {
        if (pos_ >= text_.size() || text_[pos_] != c)
            return false;
        ++pos_;
        return true;
    }

    bool
    parseValue(JsonValue *out)
    {
        if (pos_ >= text_.size())
            return fail("unexpected end of input");
        const char c = text_[pos_];
        if (c == '{')
            return parseObject(out);
        if (c == '[')
            return parseArray(out);
        if (c == '"') {
            out->type = JsonValue::Type::String;
            return parseString(&out->str);
        }
        if (text_.compare(pos_, 4, "true") == 0) {
            out->type = JsonValue::Type::Bool;
            out->boolean = true;
            pos_ += 4;
            return true;
        }
        if (text_.compare(pos_, 5, "false") == 0) {
            out->type = JsonValue::Type::Bool;
            out->boolean = false;
            pos_ += 5;
            return true;
        }
        if (text_.compare(pos_, 4, "null") == 0) {
            out->type = JsonValue::Type::Null;
            pos_ += 4;
            return true;
        }
        return parseNumber(out);
    }

    bool
    parseObject(JsonValue *out)
    {
        out->type = JsonValue::Type::Object;
        ++pos_; // '{'
        skipWs();
        if (consume('}'))
            return true;
        while (true) {
            skipWs();
            std::string key;
            if (pos_ >= text_.size() || text_[pos_] != '"')
                return fail("expected object key");
            if (!parseString(&key))
                return false;
            skipWs();
            if (!consume(':'))
                return fail("expected ':'");
            skipWs();
            JsonValue value;
            if (!parseValue(&value))
                return false;
            out->object.emplace(std::move(key), std::move(value));
            skipWs();
            if (consume('}'))
                return true;
            if (!consume(','))
                return fail("expected ',' or '}'");
        }
    }

    bool
    parseArray(JsonValue *out)
    {
        out->type = JsonValue::Type::Array;
        ++pos_; // '['
        skipWs();
        if (consume(']'))
            return true;
        while (true) {
            skipWs();
            JsonValue value;
            if (!parseValue(&value))
                return false;
            out->array.push_back(std::move(value));
            skipWs();
            if (consume(']'))
                return true;
            if (!consume(','))
                return fail("expected ',' or ']'");
        }
    }

    bool
    parseString(std::string *out)
    {
        ++pos_; // '"'
        out->clear();
        while (pos_ < text_.size()) {
            const char c = text_[pos_++];
            if (c == '"')
                return true;
            if (c != '\\') {
                out->push_back(c);
                continue;
            }
            if (pos_ >= text_.size())
                return fail("dangling escape");
            const char esc = text_[pos_++];
            switch (esc) {
              case '"': out->push_back('"'); break;
              case '\\': out->push_back('\\'); break;
              case '/': out->push_back('/'); break;
              case 'b': out->push_back('\b'); break;
              case 'f': out->push_back('\f'); break;
              case 'n': out->push_back('\n'); break;
              case 'r': out->push_back('\r'); break;
              case 't': out->push_back('\t'); break;
              case 'u': {
                if (pos_ + 4 > text_.size())
                    return fail("truncated \\u escape");
                const unsigned long code = std::strtoul(
                    text_.substr(pos_, 4).c_str(), nullptr, 16);
                pos_ += 4;
                // Our emitters only \u-escape control characters;
                // anything wider is preserved as '?' (tests do not
                // assert on such content).
                out->push_back(code < 0x80
                                   ? static_cast<char>(code)
                                   : '?');
                break;
              }
              default: return fail("unknown escape");
            }
        }
        return fail("unterminated string");
    }

    bool
    parseNumber(JsonValue *out)
    {
        const size_t start = pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '-' || text_[pos_] == '+' ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E'))
            ++pos_;
        if (pos_ == start)
            return fail("expected a value");
        char *end = nullptr;
        const std::string token = text_.substr(start, pos_ - start);
        out->type = JsonValue::Type::Number;
        out->number = std::strtod(token.c_str(), &end);
        if (end == nullptr || *end != '\0')
            return fail("malformed number '" + token + "'");
        return true;
    }

    const std::string &text_;
    std::string *error_;
    size_t pos_ = 0;
};

} // namespace detail

/**
 * Parse @p text into @p out. Returns false (with @p error set, when
 * supplied) on any syntax error.
 */
inline bool
parseJson(const std::string &text, JsonValue *out,
          std::string *error = nullptr)
{
    detail::JsonParser parser(text, error);
    return parser.parse(out);
}

} // namespace wsva::testsupport

#endif // WSVA_TESTS_SUPPORT_MINI_JSON_H
