/**
 * @file
 * Blocking HTTP/1.1 GET helper for debug-server tests: connect to
 * 127.0.0.1:<port>, send one request, read until the server closes
 * (the server always answers Connection: close), and split status /
 * headers / body. Just enough client to exercise DebugServer without
 * shelling out to curl.
 */

#ifndef WSVA_TESTS_SUPPORT_HTTP_CLIENT_H
#define WSVA_TESTS_SUPPORT_HTTP_CLIENT_H

#include <cctype>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

namespace wsva::testsupport {

/** One parsed HTTP response. ok == false means transport failure. */
struct HttpResponse
{
    bool ok = false;
    int status = 0;
    std::map<std::string, std::string> headers; //!< Lower-cased keys.
    std::string body;
};

/**
 * GET @p path from 127.0.0.1:@p port. @p method overrides the verb
 * (for 405 tests); @p timeout_seconds bounds connect + each read.
 */
inline HttpResponse
httpGet(uint16_t port, const std::string &path,
        const std::string &method = "GET", double timeout_seconds = 10.0)
{
    HttpResponse resp;
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return resp;

    timeval tv{};
    tv.tv_sec = static_cast<time_t>(timeout_seconds);
    tv.tv_usec = static_cast<suseconds_t>(
        (timeout_seconds - static_cast<double>(tv.tv_sec)) * 1e6);
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        ::close(fd);
        return resp;
    }

    const std::string request = method + " " + path +
                                " HTTP/1.1\r\nHost: 127.0.0.1\r\n"
                                "Connection: close\r\n\r\n";
    size_t sent = 0;
    while (sent < request.size()) {
        const ssize_t n = ::send(fd, request.data() + sent,
                                 request.size() - sent, 0);
        if (n <= 0) {
            ::close(fd);
            return resp;
        }
        sent += static_cast<size_t>(n);
    }

    std::string raw;
    char buf[4096];
    for (;;) {
        const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
        if (n < 0) {
            ::close(fd);
            return resp; // Timeout / error: transport failure.
        }
        if (n == 0)
            break; // Server closed: response complete.
        raw.append(buf, static_cast<size_t>(n));
    }
    ::close(fd);

    const size_t head_end = raw.find("\r\n\r\n");
    if (head_end == std::string::npos)
        return resp;
    const std::string head = raw.substr(0, head_end);
    resp.body = raw.substr(head_end + 4);

    // Status line: "HTTP/1.1 200 OK".
    const size_t line_end = head.find("\r\n");
    const std::string status_line =
        head.substr(0, line_end == std::string::npos ? head.size()
                                                     : line_end);
    const size_t sp = status_line.find(' ');
    if (sp == std::string::npos)
        return resp;
    resp.status = std::atoi(status_line.c_str() + sp + 1);

    size_t pos = line_end == std::string::npos ? head.size()
                                               : line_end + 2;
    while (pos < head.size()) {
        size_t eol = head.find("\r\n", pos);
        if (eol == std::string::npos)
            eol = head.size();
        const std::string line = head.substr(pos, eol - pos);
        pos = eol + 2;
        const size_t colon = line.find(':');
        if (colon == std::string::npos)
            continue;
        std::string key = line.substr(0, colon);
        for (auto &c : key)
            c = static_cast<char>(
                std::tolower(static_cast<unsigned char>(c)));
        size_t vstart = colon + 1;
        while (vstart < line.size() && line[vstart] == ' ')
            ++vstart;
        resp.headers[key] = line.substr(vstart);
    }
    resp.ok = resp.status > 0;
    return resp;
}

} // namespace wsva::testsupport

#endif // WSVA_TESTS_SUPPORT_HTTP_CLIENT_H
