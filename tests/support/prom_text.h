/**
 * @file
 * Minimal Prometheus text-format (0.0.4) parser for tests.
 *
 * MetricsRegistry::toPrometheusText() is consumed by real scrapers;
 * substring asserts cannot catch an illegal metric name, a histogram
 * whose buckets are not cumulative, or a family whose samples precede
 * its TYPE line. This parser checks exactly the grammar our exposition
 * promises: HELP/TYPE comments, `name{labels} value` samples, legal
 * name charset, and histogram bucket invariants. It is not a general
 * Prometheus client (no exemplars, no timestamps, no escaped label
 * commas beyond what our emitter produces).
 */

#ifndef WSVA_TESTS_SUPPORT_PROM_TEXT_H
#define WSVA_TESTS_SUPPORT_PROM_TEXT_H

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

namespace wsva::testsupport {

/** One parsed sample line. */
struct PromSample
{
    std::string name;  //!< Full sample name (e.g. foo_bucket).
    std::map<std::string, std::string> labels;
    double value = 0.0;
};

/** One metric family (everything under a # TYPE line). */
struct PromFamily
{
    std::string type; //!< counter | gauge | histogram | ...
    bool has_help = false;
    std::vector<PromSample> samples;
};

/** Parse + validation result. */
struct PromDocument
{
    bool ok = false;
    std::string error; //!< First violation, empty when ok.
    std::map<std::string, PromFamily> families;

    const PromFamily *family(const std::string &name) const
    {
        auto it = families.find(name);
        return it == families.end() ? nullptr : &it->second;
    }

    /** First sample of @p family whose labels match, or nullptr. */
    const PromSample *
    sample(const std::string &family_name,
           const std::map<std::string, std::string> &labels = {}) const
    {
        const PromFamily *fam = family(family_name);
        if (fam == nullptr)
            return nullptr;
        for (const auto &s : fam->samples) {
            bool match = true;
            for (const auto &[k, v] : labels) {
                auto it = s.labels.find(k);
                if (it == s.labels.end() || it->second != v) {
                    match = false;
                    break;
                }
            }
            if (match)
                return &s;
        }
        return nullptr;
    }
};

inline bool
isLegalPromName(const std::string &name)
{
    if (name.empty())
        return false;
    const auto legal_first = [](char c) {
        return std::isalpha(static_cast<unsigned char>(c)) != 0 ||
               c == '_' || c == ':';
    };
    const auto legal_rest = [&](char c) {
        return legal_first(c) ||
               std::isdigit(static_cast<unsigned char>(c)) != 0;
    };
    if (!legal_first(name[0]))
        return false;
    for (size_t i = 1; i < name.size(); ++i) {
        if (!legal_rest(name[i]))
            return false;
    }
    return true;
}

namespace prom_detail {

/** Family a sample name belongs to (strips histogram suffixes). */
inline std::string
familyOf(const std::string &sample_name)
{
    for (const char *suffix : {"_bucket", "_sum", "_count"}) {
        const std::string s(suffix);
        if (sample_name.size() > s.size() &&
            sample_name.compare(sample_name.size() - s.size(), s.size(),
                                s) == 0)
            return sample_name.substr(0, sample_name.size() - s.size());
    }
    return sample_name;
}

inline bool
parseValue(const std::string &text, double *out)
{
    if (text == "+Inf") {
        *out = HUGE_VAL;
        return true;
    }
    if (text == "-Inf") {
        *out = -HUGE_VAL;
        return true;
    }
    if (text == "NaN") {
        *out = NAN;
        return true;
    }
    char *end = nullptr;
    *out = std::strtod(text.c_str(), &end);
    return end != nullptr && *end == '\0' && end != text.c_str();
}

/** Parse `name{k="v",...} value` into @p sample. */
inline bool
parseSampleLine(const std::string &line, PromSample *sample,
                std::string *error)
{
    size_t i = 0;
    while (i < line.size() && line[i] != '{' && line[i] != ' ')
        ++i;
    sample->name = line.substr(0, i);
    if (!isLegalPromName(sample->name)) {
        *error = "illegal sample name: '" + sample->name + "'";
        return false;
    }
    if (i < line.size() && line[i] == '{') {
        const size_t close = line.find('}', i);
        if (close == std::string::npos) {
            *error = "unterminated label set: " + line;
            return false;
        }
        std::string labels = line.substr(i + 1, close - i - 1);
        size_t pos = 0;
        while (pos < labels.size()) {
            const size_t eq = labels.find('=', pos);
            if (eq == std::string::npos || eq + 1 >= labels.size() ||
                labels[eq + 1] != '"') {
                *error = "malformed label in: " + line;
                return false;
            }
            const std::string key = labels.substr(pos, eq - pos);
            if (!isLegalPromName(key)) {
                *error = "illegal label name: '" + key + "'";
                return false;
            }
            const size_t vclose = labels.find('"', eq + 2);
            if (vclose == std::string::npos) {
                *error = "unterminated label value in: " + line;
                return false;
            }
            sample->labels[key] =
                labels.substr(eq + 2, vclose - eq - 2);
            pos = vclose + 1;
            if (pos < labels.size() && labels[pos] == ',')
                ++pos;
        }
        i = close + 1;
    }
    while (i < line.size() && line[i] == ' ')
        ++i;
    const std::string value_text = line.substr(i);
    if (!parseValue(value_text, &sample->value)) {
        *error = "bad sample value '" + value_text + "' in: " + line;
        return false;
    }
    return true;
}

/** Histogram family invariants: cumulative buckets, +Inf == _count. */
inline bool
checkHistogram(const std::string &name, const PromFamily &fam,
               std::string *error)
{
    double prev_le = -HUGE_VAL;
    double prev_cum = 0.0;
    bool saw_inf = false;
    double inf_value = 0.0;
    double count_value = -1.0;
    bool saw_sum = false;
    for (const auto &s : fam.samples) {
        if (s.name == name + "_bucket") {
            auto it = s.labels.find("le");
            if (it == s.labels.end()) {
                *error = name + ": bucket without le label";
                return false;
            }
            double le = 0.0;
            if (!parseValue(it->second, &le)) {
                *error = name + ": bad le '" + it->second + "'";
                return false;
            }
            if (le <= prev_le) {
                *error = name + ": le values not increasing";
                return false;
            }
            if (s.value + 1e-9 < prev_cum) {
                *error = name + ": buckets not cumulative";
                return false;
            }
            prev_le = le;
            prev_cum = s.value;
            if (it->second == "+Inf") {
                saw_inf = true;
                inf_value = s.value;
            }
        } else if (s.name == name + "_count") {
            count_value = s.value;
        } else if (s.name == name + "_sum") {
            saw_sum = true;
        }
    }
    if (!saw_inf) {
        *error = name + ": histogram missing +Inf bucket";
        return false;
    }
    if (!saw_sum || count_value < 0.0) {
        *error = name + ": histogram missing _sum or _count";
        return false;
    }
    if (inf_value != count_value) {
        *error = name + ": +Inf bucket != _count";
        return false;
    }
    return true;
}

} // namespace prom_detail

/**
 * Parse and validate one Prometheus text document. Violations set
 * `ok = false` with the first error; families/samples parsed so far
 * stay available for diagnostics.
 */
inline PromDocument
parsePrometheusText(const std::string &text)
{
    using namespace prom_detail;
    PromDocument doc;
    size_t pos = 0;
    while (pos < text.size()) {
        size_t eol = text.find('\n', pos);
        if (eol == std::string::npos)
            eol = text.size();
        const std::string line = text.substr(pos, eol - pos);
        pos = eol + 1;
        if (line.empty())
            continue;
        if (line[0] == '#') {
            // "# HELP name ..." / "# TYPE name type".
            if (line.rfind("# HELP ", 0) == 0) {
                const size_t sp = line.find(' ', 7);
                const std::string name = line.substr(
                    7, sp == std::string::npos ? std::string::npos
                                               : sp - 7);
                if (!isLegalPromName(name)) {
                    doc.error = "illegal HELP name: '" + name + "'";
                    return doc;
                }
                doc.families[name].has_help = true;
            } else if (line.rfind("# TYPE ", 0) == 0) {
                const size_t sp = line.find(' ', 7);
                if (sp == std::string::npos) {
                    doc.error = "malformed TYPE line: " + line;
                    return doc;
                }
                const std::string name = line.substr(7, sp - 7);
                const std::string type = line.substr(sp + 1);
                if (!isLegalPromName(name)) {
                    doc.error = "illegal TYPE name: '" + name + "'";
                    return doc;
                }
                if (type != "counter" && type != "gauge" &&
                    type != "histogram" && type != "summary" &&
                    type != "untyped") {
                    doc.error = "unknown type '" + type + "'";
                    return doc;
                }
                if (!doc.families[name].type.empty()) {
                    doc.error = "duplicate TYPE for '" + name + "'";
                    return doc;
                }
                doc.families[name].type = type;
            }
            continue; // Other comments are legal and ignored.
        }
        PromSample sample;
        if (!parseSampleLine(line, &sample, &doc.error))
            return doc;
        const std::string fam_name = familyOf(sample.name);
        auto it = doc.families.find(fam_name);
        // A histogram-suffixed name may also be a plain family of its
        // own; prefer the exact name when it is typed.
        auto exact = doc.families.find(sample.name);
        if (exact != doc.families.end() && !exact->second.type.empty() &&
            exact->second.type != "histogram")
            it = exact;
        if (it == doc.families.end() || it->second.type.empty()) {
            doc.error = "sample before TYPE: " + sample.name;
            return doc;
        }
        it->second.samples.push_back(std::move(sample));
    }
    for (const auto &[name, fam] : doc.families) {
        if (fam.type.empty()) {
            doc.error = "HELP without TYPE for '" + name + "'";
            return doc;
        }
        if (fam.samples.empty()) {
            doc.error = "family '" + name + "' has no samples";
            return doc;
        }
        if (fam.type == "histogram" &&
            !checkHistogram(name, fam, &doc.error))
            return doc;
    }
    doc.ok = true;
    return doc;
}

} // namespace wsva::testsupport

#endif // WSVA_TESTS_SUPPORT_PROM_TEXT_H
