/**
 * @file
 * Cross-module integration tests: the full platform pipeline on the
 * vbench corpus, cluster simulation fed by the traffic generators,
 * chip + firmware running a MOT-shaped command graph, and the
 * popularity policy driving the transcode treatment.
 */

#include <gtest/gtest.h>

#include "cluster/cluster.h"
#include "platform/pipeline.h"
#include "video/codec/decoder.h"
#include "platform/popularity.h"
#include "vcu/firmware.h"
#include "video/metrics.h"
#include "workload/traffic.h"
#include "workload/vbench.h"

namespace wsva {
namespace {

using namespace wsva::platform;
using namespace wsva::workload;
using wsva::video::codec::CodecType;
using wsva::video::codec::RcMode;

TEST(EndToEnd, VbenchClipThroughMotLadderOnVcuProfile)
{
    const auto corpus = vbenchCorpus(128, 12);
    const auto clip =
        wsva::video::generateVideo(vbenchClip(corpus, "bike").spec);

    PipelineConfig cfg;
    cfg.chunk_frames = 6;
    cfg.encoder.rc_mode = RcMode::TwoPassOffline;
    cfg.encoder.target_bitrate_bps = 400e3;
    cfg.encoder.hardware = true; // VCU tool set end to end.
    cfg.encoder.tuning_level = 8;

    const std::vector<wsva::video::Resolution> ladder = {{128, 72},
                                                         {64, 36}};
    const auto result = transcodeMot(clip, ladder, CodecType::VP9, cfg);
    ASSERT_TRUE(result.integrity_ok) << result.integrity_error;
    for (const auto &variant : result.variants) {
        const auto frames = assembleVariant(variant, clip.size());
        ASSERT_EQ(frames.size(), clip.size());
    }
}

TEST(EndToEnd, PopularityDrivesCodecSelection)
{
    const auto corpus = vbenchCorpus(96, 6);
    const auto clip = wsva::video::generateVideo(
        vbenchClip(corpus, "presentation").spec);

    PipelineConfig cfg;
    cfg.chunk_frames = 6;
    cfg.encoder.base_qp = 36;

    for (const auto bucket :
         {PopularityBucket::Popular, PopularityBucket::LongTail}) {
        const auto treatment = treatmentFor(bucket, true);
        size_t produced = 0;
        for (const auto codec : treatment.codecs) {
            const auto result =
                transcodeSot(clip, {96, 54}, codec, cfg);
            ASSERT_TRUE(result.integrity_ok);
            ++produced;
        }
        EXPECT_EQ(produced, treatment.codecs.size());
    }
}

TEST(EndToEnd, UploadTrafficDrivesClusterToSteadyState)
{
    wsva::cluster::ClusterConfig cfg;
    cfg.hosts = 1;
    cfg.vcus_per_host = 6;
    cfg.seed = 5;
    wsva::cluster::ClusterSim sim(cfg);

    UploadTrafficConfig traffic;
    traffic.uploads_per_second = 1.0;
    traffic.seed = 6;
    UploadTraffic gen(traffic);
    const auto m = sim.run(900.0, 1.0, gen.asArrivalFn());
    EXPECT_GT(m.steps_completed, 100u);
    EXPECT_EQ(m.corrupt_escaped, 0u);
    EXPECT_GT(m.mpix_per_vcu, 0.0);
}

TEST(EndToEnd, LiveTrafficMeetsRealtimeOnCluster)
{
    wsva::cluster::ClusterConfig cfg;
    cfg.hosts = 1;
    cfg.vcus_per_host = 4;
    cfg.seed = 7;
    wsva::cluster::ClusterSim sim(cfg);

    LiveTrafficConfig traffic;
    traffic.concurrent_streams = 6;
    traffic.segment_seconds = 2.0;
    LiveTraffic gen(traffic);
    const auto m = sim.run(600.0, 0.5, gen.asArrivalFn());
    // Real-time requirement: the backlog must not accumulate.
    EXPECT_LT(m.backlog_remaining, 12u);
    EXPECT_GT(m.steps_completed, 1500u);
}

TEST(EndToEnd, FirmwareRunsMotShapedGraph)
{
    // A MOT on the chip: copy in, decode, six encodes, barrier,
    // copy out — expressed through the four firmware commands.
    wsva::vcu::VcuChip chip;
    wsva::vcu::Firmware fw(chip);
    const int q = fw.createQueue();

    uint64_t next_id = 1;
    wsva::vcu::Command copy_in;
    copy_in.kind = wsva::vcu::CmdKind::CopyToDevice;
    copy_in.id = next_id++;
    copy_in.bytes = 64ull << 20;
    fw.enqueue(q, copy_in);

    wsva::vcu::Command decode;
    decode.kind = wsva::vcu::CmdKind::RunOnCore;
    decode.id = next_id++;
    decode.op.id = decode.id;
    decode.op.kind = wsva::vcu::OpKind::Decode;
    decode.op.core_seconds = 0.2;
    decode.op.dram_gibps = 2.2;
    decode.op.dram_bytes = 140ull << 20;
    fw.enqueue(q, decode);

    for (int rung = 0; rung < 6; ++rung) {
        wsva::vcu::Command enc;
        enc.kind = wsva::vcu::CmdKind::RunOnCore;
        enc.id = next_id++;
        enc.op.id = enc.id;
        enc.op.kind = wsva::vcu::OpKind::Encode;
        enc.op.core_seconds = 0.5;
        enc.op.dram_gibps = 2.0;
        enc.op.dram_bytes = 80ull << 20;
        fw.enqueue(q, enc);
    }

    wsva::vcu::Command barrier;
    barrier.kind = wsva::vcu::CmdKind::WaitForDone;
    barrier.id = next_id++;
    fw.enqueue(q, barrier);

    wsva::vcu::Command copy_out;
    copy_out.kind = wsva::vcu::CmdKind::CopyFromDevice;
    copy_out.id = next_id++;
    copy_out.bytes = 8ull << 20;
    fw.enqueue(q, copy_out);

    std::vector<uint64_t> done;
    for (int tick = 0; tick < 40 && done.size() < 9; ++tick)
        fw.advance(0.1, done);
    EXPECT_EQ(done.size(), 9u); // 2 copies + 7 ops.
    EXPECT_EQ(fw.pending(), 0u);
    EXPECT_TRUE(chip.idle());
}

TEST(EndToEnd, CorpusWideSmokeEncode)
{
    // Every corpus clip must survive a full VCU-profile round trip.
    const auto corpus = vbenchCorpus(96, 6);
    for (const auto &entry : corpus) {
        const auto clip = wsva::video::generateVideo(entry.spec);
        wsva::video::codec::EncoderConfig cfg;
        cfg.codec = CodecType::VP9;
        cfg.width = entry.spec.width;
        cfg.height = entry.spec.height;
        cfg.base_qp = 36;
        cfg.gop_length = 6;
        cfg.hardware = true;
        const auto chunk = wsva::video::codec::encodeSequence(cfg, clip);
        const auto decoded =
            wsva::video::codec::decodeChunk(chunk.bytes);
        ASSERT_TRUE(decoded.has_value()) << entry.name;
        ASSERT_EQ(decoded->frames.size(), clip.size()) << entry.name;
        EXPECT_GT(wsva::video::sequencePsnr(clip, decoded->frames), 24.0)
            << entry.name;
    }
}

} // namespace
} // namespace wsva
