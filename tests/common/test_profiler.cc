/**
 * @file
 * Unit tests for wsva::prof: dark-mode no-ops, inclusive/exclusive
 * accounting across nested scopes, phase interning, multi-threaded
 * accumulation, manual addTime attribution, the wall-clock sampler,
 * collapsed-stack export, and the double-buffered snapshot board.
 *
 * The profiler is a process-global singleton, so every test begins by
 * stopping the sampler, disabling recording, and resetting counters.
 */

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/metrics.h"
#include "common/profiler.h"

using namespace wsva;
using prof::ProfileRegistry;
using prof::ProfScope;

namespace {

ProfileRegistry &
freshRegistry()
{
    ProfileRegistry &reg = ProfileRegistry::instance();
    reg.stopSampler();
    reg.setEnabled(false);
    reg.reset();
    return reg;
}

/** Burn a little real time so scope durations are nonzero. */
void
spin(uint64_t ns)
{
    const uint64_t start = prof::nowNs();
    while (prof::nowNs() - start < ns) {
    }
}

const prof::PhaseStat *
findPhase(const prof::ProfileSnapshot &snap, const std::string &name)
{
    for (const auto &p : snap.phases) {
        if (p.name == name)
            return &p;
    }
    return nullptr;
}

TEST(ProfileRegistry, InternIsIdempotentAndNamesRoundTrip)
{
    ProfileRegistry &reg = freshRegistry();
    const int a = reg.intern("test/intern/a");
    const int b = reg.intern("test/intern/b");
    EXPECT_GE(a, 0);
    EXPECT_GE(b, 0);
    EXPECT_NE(a, b);
    EXPECT_EQ(reg.intern("test/intern/a"), a);
    EXPECT_EQ(reg.phaseName(a), "test/intern/a");
    EXPECT_EQ(reg.phaseName(b), "test/intern/b");
    EXPECT_EQ(reg.phaseName(-1), "");
    EXPECT_EQ(reg.phaseName(prof::kMaxPhases + 1), "");
    EXPECT_EQ(reg.intern(""), -1);
    EXPECT_EQ(reg.intern(nullptr), -1);
}

TEST(Profiler, DarkModeRecordsNothing)
{
    ProfileRegistry &reg = freshRegistry();
    const int phase = reg.intern("test/dark");
    {
        ProfScope scope(phase);
        spin(20'000);
    }
    const auto snap = reg.snapshot();
    EXPECT_FALSE(snap.enabled);
    EXPECT_EQ(findPhase(snap, "test/dark"), nullptr);
}

TEST(Profiler, InvalidPhaseIdIsSilentNoOp)
{
    ProfileRegistry &reg = freshRegistry();
    reg.setEnabled(true);
    {
        ProfScope scope(-1);
        prof::addTime(-1, 1000);
        prof::addTime(prof::kMaxPhases, 1000);
    }
    reg.setEnabled(false);
    SUCCEED();
}

TEST(Profiler, SampledScopeCountsExactlyAndScalesTime)
{
    ProfileRegistry &reg = freshRegistry();
    const int phase = reg.intern("test/sampled");
    reg.setEnabled(true);
    constexpr int kCalls = 64;
    constexpr uint32_t kPeriod = 16;
    for (int i = 0; i < kCalls; ++i) {
        prof::ProfScopeSampled scope(phase, kPeriod);
        spin(50'000);
    }
    reg.setEnabled(false);

    const auto snap = reg.snapshot();
    const auto *p = findPhase(snap, "test/sampled");
    ASSERT_NE(p, nullptr);
    // Every call is counted, timed or not.
    EXPECT_EQ(p->calls, static_cast<uint64_t>(kCalls));
    // 64/16 = 4 timed calls, each credited x16: the scaled total
    // approximates all 64 spins (>= the 4 measured ones unscaled).
    EXPECT_GE(p->incl_ns, 4u * 50'000u);
    EXPECT_EQ(p->incl_ns, p->excl_ns);

    // Dark mode: sampled scopes are the same single-branch no-op.
    reg.reset();
    {
        prof::ProfScopeSampled scope(phase, kPeriod);
        spin(20'000);
    }
    EXPECT_EQ(findPhase(reg.snapshot(), "test/sampled"), nullptr);
}

TEST(Profiler, NestedScopesSplitInclusiveAndExclusive)
{
    ProfileRegistry &reg = freshRegistry();
    const int outer = reg.intern("test/outer");
    const int inner = reg.intern("test/outer/inner");
    reg.setEnabled(true);
    {
        ProfScope o(outer);
        spin(2'000'000);
        {
            ProfScope i(inner);
            spin(2'000'000);
        }
    }
    reg.setEnabled(false);

    const auto snap = reg.snapshot();
    const auto *po = findPhase(snap, "test/outer");
    const auto *pi = findPhase(snap, "test/outer/inner");
    ASSERT_NE(po, nullptr);
    ASSERT_NE(pi, nullptr);
    EXPECT_EQ(po->calls, 1u);
    EXPECT_EQ(pi->calls, 1u);
    // Outer's inclusive time covers inner; its exclusive time does
    // not (exclusive = inclusive - runtime-child time).
    EXPECT_GE(po->incl_ns, pi->incl_ns);
    EXPECT_EQ(po->excl_ns, po->incl_ns - pi->incl_ns);
    // Leaf phase: exclusive == inclusive.
    EXPECT_EQ(pi->excl_ns, pi->incl_ns);
    EXPECT_GE(pi->incl_ns, 1'500'000u);
    EXPECT_GE(po->excl_ns, 1'500'000u);
}

TEST(Profiler, AddTimeCreditsPhaseAndRuntimeParent)
{
    ProfileRegistry &reg = freshRegistry();
    const int outer = reg.intern("test/at_outer");
    const int manual = reg.intern("test/at_outer/manual");
    reg.setEnabled(true);
    {
        ProfScope o(outer);
        spin(500'000);
        prof::addTime(manual, 123'456, 7);
    }
    reg.setEnabled(false);

    const auto snap = reg.snapshot();
    const auto *po = findPhase(snap, "test/at_outer");
    const auto *pm = findPhase(snap, "test/at_outer/manual");
    ASSERT_NE(po, nullptr);
    ASSERT_NE(pm, nullptr);
    EXPECT_EQ(pm->incl_ns, 123'456u);
    EXPECT_EQ(pm->calls, 7u);
    // The manual time is subtracted from the enclosing scope's
    // exclusive share exactly like a nested ProfScope.
    EXPECT_EQ(po->excl_ns, po->incl_ns - 123'456u);
}

TEST(ProfileRegistry, ThreadedAccumulationSumsAcrossThreads)
{
    ProfileRegistry &reg = freshRegistry();
    const int phase = reg.intern("test/threads");
    reg.setEnabled(true);
    constexpr int kThreads = 4;
    constexpr int kIters = 5000;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([phase] {
            for (int i = 0; i < kIters; ++i)
                ProfScope scope(phase);
        });
    }
    for (auto &t : threads)
        t.join();
    reg.setEnabled(false);

    const auto snap = reg.snapshot();
    const auto *p = findPhase(snap, "test/threads");
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(p->calls, static_cast<uint64_t>(kThreads) * kIters);
}

TEST(ProfileRegistry, SamplerAttributesWallClockSamples)
{
    ProfileRegistry &reg = freshRegistry();
    const int phase = reg.intern("test/sampler/hot");
    reg.setEnabled(true);
    reg.startSampler(/*period_us=*/500);
    {
        ProfScope scope(phase);
        // Long enough for dozens of 0.5ms sampler periods.
        spin(60'000'000);
    }
    reg.stopSampler();
    reg.setEnabled(false);

    const auto snap = reg.snapshot();
    const auto *p = findPhase(snap, "test/sampler/hot");
    ASSERT_NE(p, nullptr);
    EXPECT_GT(p->samples, 0u);
    EXPECT_GT(snap.total_samples, 0u);
    EXPECT_GT(reg.samplerTicks(), 0u);

    // Sampler data flows into the collapsed-stack export, keyed by
    // the stack path with ';' separators.
    const std::string collapsed = reg.toCollapsed();
    EXPECT_NE(collapsed.find("test/sampler/hot "), std::string::npos);
}

TEST(ProfileRegistry, CollapsedFallsBackToTimersWithoutSampler)
{
    ProfileRegistry &reg = freshRegistry();
    const int outer = reg.intern("test/flame");
    const int inner = reg.intern("test/flame/leaf");
    reg.setEnabled(true);
    {
        ProfScope o(outer);
        ProfScope i(inner);
        spin(2'000'000);
    }
    reg.setEnabled(false);

    const std::string collapsed = reg.toCollapsed();
    EXPECT_NE(collapsed.find("timer fallback"), std::string::npos);
    // Static paths become semicolon-joined frames.
    EXPECT_NE(collapsed.find("test;flame;leaf "), std::string::npos);
    // Every non-comment line is "frames value".
    size_t pos = 0;
    while (pos < collapsed.size()) {
        size_t eol = collapsed.find('\n', pos);
        if (eol == std::string::npos)
            eol = collapsed.size();
        const std::string line = collapsed.substr(pos, eol - pos);
        pos = eol + 1;
        if (line.empty() || line[0] == '#')
            continue;
        const size_t space = line.rfind(' ');
        ASSERT_NE(space, std::string::npos) << line;
        EXPECT_GT(std::stoull(line.substr(space + 1)), 0u) << line;
    }
}

TEST(ProfileRegistry, PublishSwapsDoubleBufferedBoard)
{
    ProfileRegistry &reg = freshRegistry();
    const int phase = reg.intern("test/board");
    // Board is empty (but never null) after reset.
    auto before = reg.board();
    ASSERT_NE(before, nullptr);
    EXPECT_TRUE(before->phases.empty());

    reg.setEnabled(true);
    {
        ProfScope scope(phase);
        spin(1'000'000);
    }
    reg.publish();
    reg.setEnabled(false);

    auto after = reg.board();
    ASSERT_NE(after, nullptr);
    EXPECT_NE(after, before);
    EXPECT_NE(findPhase(*after, "test/board"), nullptr);
    // The old snapshot a reader may still hold is untouched.
    EXPECT_TRUE(before->phases.empty());
}

TEST(ProfileRegistry, TextJsonAndGaugeExports)
{
    ProfileRegistry &reg = freshRegistry();
    const int phase = reg.intern("test/export/phase");
    reg.setEnabled(true);
    {
        ProfScope scope(phase);
        spin(2'000'000);
    }
    reg.publish();

    const std::string text = reg.toText();
    EXPECT_NE(text.find("test/export/phase"), std::string::npos);
    EXPECT_NE(text.find("per-thread:"), std::string::npos);

    const std::string json = reg.toJson();
    EXPECT_NE(json.find("\"enabled\": true"), std::string::npos);
    EXPECT_NE(json.find("\"phase\": \"test/export/phase\""),
              std::string::npos);
    EXPECT_NE(json.find("\"share_pct\""), std::string::npos);

    MetricsRegistry metrics;
    reg.exportGauges(metrics);
    EXPECT_EQ(metrics.gauge("profile.enabled"), 1.0);
    EXPECT_GT(metrics.gauge("profile.test.export.phase.excl_ms"), 0.0);
    EXPECT_EQ(metrics.gauge("profile.test.export.phase.calls"), 1.0);
    EXPECT_GT(metrics.gauge("profile.total_excl_ms"), 0.0);
    reg.setEnabled(false);
}

TEST(ProfileRegistry, ResetZeroesEverything)
{
    ProfileRegistry &reg = freshRegistry();
    const int phase = reg.intern("test/reset");
    reg.setEnabled(true);
    {
        ProfScope scope(phase);
        spin(500'000);
    }
    reg.publish();
    reg.reset();
    reg.setEnabled(false);

    const auto snap = reg.snapshot();
    EXPECT_EQ(findPhase(snap, "test/reset"), nullptr);
    EXPECT_EQ(snap.total_samples, 0u);
    EXPECT_TRUE(reg.board()->phases.empty());
    // Interning survives reset.
    EXPECT_EQ(reg.intern("test/reset"), phase);
}

TEST(ProfileRegistry, ScrapeVsRecordHammer)
{
    // Aggregators (snapshot/publish/text/collapsed) race the
    // recording hot path on purpose; everything the scrapers read is
    // either atomic or behind the registry locks, so under TSan this
    // must be silent.
    ProfileRegistry &reg = freshRegistry();
    const int outer = reg.intern("test/hammer");
    const int inner = reg.intern("test/hammer/leaf");
    reg.setEnabled(true);
    reg.startSampler(/*period_us=*/200);

    std::atomic<bool> stop{false};
    std::vector<std::thread> recorders;
    for (int t = 0; t < 2; ++t) {
        recorders.emplace_back([&] {
            while (!stop.load(std::memory_order_relaxed)) {
                ProfScope o(outer);
                ProfScope i(inner);
                spin(5'000);
            }
        });
    }
    std::vector<std::thread> scrapers;
    for (int t = 0; t < 2; ++t) {
        scrapers.emplace_back([&] {
            for (int i = 0; i < 50; ++i) {
                (void)reg.snapshot();
                (void)reg.toText();
                (void)reg.toCollapsed();
                (void)reg.board();
                reg.publish();
            }
        });
    }
    for (auto &t : scrapers)
        t.join();
    stop.store(true, std::memory_order_relaxed);
    for (auto &t : recorders)
        t.join();
    reg.stopSampler();
    reg.setEnabled(false);

    const auto snap = reg.snapshot();
    const auto *p = findPhase(snap, "test/hammer");
    ASSERT_NE(p, nullptr);
    EXPECT_GT(p->calls, 0u);
}

} // namespace
