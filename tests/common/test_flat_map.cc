/**
 * @file
 * FlatMap64 unit tests. The map backs the SLO monitor's per-upload
 * hot path, so beyond the basics it gets a seeded differential fuzz
 * against std::unordered_map — backward-shift deletion is exactly
 * the kind of code that looks right and corrupts a probe chain on
 * the one wrap-around case nobody hand-writes.
 */

#include <cstdint>
#include <unordered_map>

#include <gtest/gtest.h>

#include "common/flat_map.h"
#include "common/rng.h"

using wsva::FlatMap64;

TEST(FlatMap64, InsertFindErase)
{
    FlatMap64<int> map;
    EXPECT_TRUE(map.empty());
    EXPECT_EQ(map.find(7), nullptr);

    map.insertOrAssign(7, 70);
    ASSERT_NE(map.find(7), nullptr);
    EXPECT_EQ(*map.find(7), 70);
    EXPECT_EQ(map.size(), 1u);

    map.insertOrAssign(7, 71); // Overwrite, not duplicate.
    EXPECT_EQ(*map.find(7), 71);
    EXPECT_EQ(map.size(), 1u);

    EXPECT_TRUE(map.erase(7));
    EXPECT_FALSE(map.erase(7));
    EXPECT_EQ(map.find(7), nullptr);
    EXPECT_TRUE(map.empty());
}

TEST(FlatMap64, ZeroKeyIsAnOrdinaryKey)
{
    FlatMap64<int> map;
    map.insertOrAssign(0, 42);
    ASSERT_NE(map.find(0), nullptr);
    EXPECT_EQ(*map.find(0), 42);
    EXPECT_TRUE(map.erase(0));
    EXPECT_EQ(map.find(0), nullptr);
}

TEST(FlatMap64, GrowsPastInitialCapacityAndKeepsEverything)
{
    FlatMap64<uint64_t> map;
    for (uint64_t k = 0; k < 10'000; ++k)
        map.insertOrAssign(k, k * 3);
    EXPECT_EQ(map.size(), 10'000u);
    for (uint64_t k = 0; k < 10'000; ++k) {
        ASSERT_NE(map.find(k), nullptr) << "key " << k;
        EXPECT_EQ(*map.find(k), k * 3);
    }
}

TEST(FlatMap64, ClearKeepsMapUsable)
{
    FlatMap64<int> map;
    for (uint64_t k = 0; k < 100; ++k)
        map.insertOrAssign(k, 1);
    map.clear();
    EXPECT_TRUE(map.empty());
    EXPECT_EQ(map.find(5), nullptr);
    map.insertOrAssign(5, 2);
    ASSERT_NE(map.find(5), nullptr);
    EXPECT_EQ(*map.find(5), 2);
}

/**
 * Seeded differential fuzz: mixed insert/overwrite/erase/find traffic
 * with a skewed key range (forces collisions, wrap-around chains, and
 * repeated grow cycles), checked against std::unordered_map after
 * every operation batch.
 */
TEST(FlatMap64, DifferentialFuzzAgainstStdUnorderedMap)
{
    wsva::Rng rng(1234);
    FlatMap64<uint64_t> map;
    std::unordered_map<uint64_t, uint64_t> ref;

    for (int batch = 0; batch < 200; ++batch) {
        for (int op = 0; op < 100; ++op) {
            // Small key range so erase/re-insert churn hits the same
            // probe neighborhoods over and over.
            const uint64_t key = rng.nextU64() % 512;
            const uint64_t roll = rng.nextU64() % 10;
            if (roll < 6) {
                const uint64_t val = rng.nextU64();
                map.insertOrAssign(key, val);
                ref[key] = val;
            } else {
                EXPECT_EQ(map.erase(key), ref.erase(key) > 0);
            }
        }
        ASSERT_EQ(map.size(), ref.size()) << "batch " << batch;
        for (const auto &[key, val] : ref) {
            const uint64_t *got = map.find(key);
            ASSERT_NE(got, nullptr) << "batch " << batch
                                    << " key " << key;
            ASSERT_EQ(*got, val) << "batch " << batch << " key "
                                 << key;
        }
        // Spot-check absent keys too.
        for (int probe = 0; probe < 50; ++probe) {
            const uint64_t key = rng.nextU64() % 512;
            ASSERT_EQ(map.find(key) != nullptr, ref.count(key) > 0)
                << "batch " << batch << " key " << key;
        }
    }
}
