#include "common/logging.h"

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

namespace wsva {
namespace {

/** Captures every (tag, message) pair emitted while in scope. */
class SinkCapture
{
  public:
    SinkCapture()
    {
        resetWarnRateLimit();
        setLogSink([this](const char *tag, const std::string &msg) {
            lines_.emplace_back(tag, msg);
        });
    }

    ~SinkCapture()
    {
        resetLogSink();
        resetWarnRateLimit();
    }

    const std::vector<std::pair<std::string, std::string>> &
    lines() const
    {
        return lines_;
    }

  private:
    std::vector<std::pair<std::string, std::string>> lines_;
};

TEST(StrFormat, FormatsPlainText)
{
    EXPECT_EQ(strformat("hello"), "hello");
}

TEST(StrFormat, FormatsNumbers)
{
    EXPECT_EQ(strformat("%d + %d = %d", 2, 3, 5), "2 + 3 = 5");
}

TEST(StrFormat, FormatsFloatsAndStrings)
{
    EXPECT_EQ(strformat("%s=%.2f", "pi", 3.14159), "pi=3.14");
}

TEST(StrFormat, HandlesLongOutput)
{
    std::string big(5000, 'x');
    EXPECT_EQ(strformat("%s", big.c_str()).size(), 5000u);
}

TEST(Assert, PassesOnTrueCondition)
{
    WSVA_ASSERT(1 + 1 == 2, "arithmetic works");
    SUCCEED();
}

TEST(AssertDeathTest, AbortsOnFalseCondition)
{
    EXPECT_DEATH(WSVA_ASSERT(false, "value was %d", 42), "value was 42");
}

TEST(PanicDeathTest, PanicAborts)
{
    EXPECT_DEATH(panic("boom %s", "now"), "boom now");
}

TEST(FatalDeathTest, FatalExitsCleanly)
{
    EXPECT_EXIT(fatal("bad config"), testing::ExitedWithCode(1),
                "bad config");
}

TEST(LogSink, CapturesInformAndWarnWithTags)
{
    SinkCapture capture;
    inform("status %d", 7);
    warn("odd value %d", 8);
    ASSERT_EQ(capture.lines().size(), 2u);
    EXPECT_EQ(capture.lines()[0].first, "info");
    EXPECT_EQ(capture.lines()[0].second, "status 7");
    EXPECT_EQ(capture.lines()[1].first, "warn");
    EXPECT_EQ(capture.lines()[1].second, "odd value 8");
}

TEST(LogSink, ResetRestoresStderrWithoutCrashing)
{
    {
        SinkCapture capture;
        inform("captured");
        ASSERT_EQ(capture.lines().size(), 1u);
    }
    // After reset the default sink is live again; emitting must not
    // reach the (destroyed) capture or crash.
    inform("back to stderr");
}

TEST(LogSink, ReentrantLoggingFromSinkDoesNotDeadlock)
{
    int depth = 0;
    setLogSink([&depth](const char *, const std::string &) {
        if (depth == 0) {
            ++depth;
            inform("from inside the sink");
        }
    });
    inform("outer");
    resetLogSink();
    EXPECT_EQ(depth, 1);
}

TEST(WarnRateLimit, EmitsPowersOfTenWithSeenCount)
{
    SinkCapture capture;
    for (int i = 0; i < 150; ++i)
        warn("same message");
    // 1st, 10th, and 100th occurrences only.
    ASSERT_EQ(capture.lines().size(), 3u);
    EXPECT_EQ(capture.lines()[0].second, "same message");
    EXPECT_EQ(capture.lines()[1].second,
              "same message (seen 10 times)");
    EXPECT_EQ(capture.lines()[2].second,
              "same message (seen 100 times)");
}

TEST(WarnRateLimit, DistinctMessagesAreNotSuppressed)
{
    SinkCapture capture;
    for (int i = 0; i < 5; ++i)
        warn("message %d", i);
    EXPECT_EQ(capture.lines().size(), 5u);
}

TEST(WarnRateLimit, ResetForgetsHistory)
{
    SinkCapture capture;
    warn("repeat");
    warn("repeat"); // Suppressed (2nd occurrence).
    resetWarnRateLimit();
    warn("repeat"); // Counts as a fresh 1st occurrence again.
    ASSERT_EQ(capture.lines().size(), 2u);
    EXPECT_EQ(capture.lines()[1].second, "repeat");
}

TEST(WarnRateLimit, InformIsNeverRateLimited)
{
    SinkCapture capture;
    for (int i = 0; i < 20; ++i)
        inform("same status");
    EXPECT_EQ(capture.lines().size(), 20u);
}

} // namespace
} // namespace wsva
