#include "common/logging.h"

#include <gtest/gtest.h>

namespace wsva {
namespace {

TEST(StrFormat, FormatsPlainText)
{
    EXPECT_EQ(strformat("hello"), "hello");
}

TEST(StrFormat, FormatsNumbers)
{
    EXPECT_EQ(strformat("%d + %d = %d", 2, 3, 5), "2 + 3 = 5");
}

TEST(StrFormat, FormatsFloatsAndStrings)
{
    EXPECT_EQ(strformat("%s=%.2f", "pi", 3.14159), "pi=3.14");
}

TEST(StrFormat, HandlesLongOutput)
{
    std::string big(5000, 'x');
    EXPECT_EQ(strformat("%s", big.c_str()).size(), 5000u);
}

TEST(Assert, PassesOnTrueCondition)
{
    WSVA_ASSERT(1 + 1 == 2, "arithmetic works");
    SUCCEED();
}

TEST(AssertDeathTest, AbortsOnFalseCondition)
{
    EXPECT_DEATH(WSVA_ASSERT(false, "value was %d", 42), "value was 42");
}

TEST(PanicDeathTest, PanicAborts)
{
    EXPECT_DEATH(panic("boom %s", "now"), "boom now");
}

TEST(FatalDeathTest, FatalExitsCleanly)
{
    EXPECT_EXIT(fatal("bad config"), testing::ExitedWithCode(1),
                "bad config");
}

} // namespace
} // namespace wsva
