#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

namespace wsva {
namespace {

TEST(ThreadPool, ResolveThreads)
{
    EXPECT_GE(ThreadPool::resolveThreads(0), 1);
    EXPECT_GE(ThreadPool::resolveThreads(-3), 1);
    EXPECT_EQ(ThreadPool::resolveThreads(1), 1);
    EXPECT_EQ(ThreadPool::resolveThreads(7), 7);
}

TEST(ThreadPool, WorkerCountMatchesRequest)
{
    ThreadPool pool(3);
    EXPECT_EQ(pool.workerCount(), 3);
    ThreadPool defaulted;
    EXPECT_GE(defaulted.workerCount(), 1);
}

TEST(ThreadPool, SubmitReturnsValue)
{
    ThreadPool pool(2);
    auto f = pool.submit([] { return 6 * 7; });
    EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, SubmitRunsOnWorkerThread)
{
    ThreadPool pool(2);
    const auto caller = std::this_thread::get_id();
    auto f = pool.submit([] { return std::this_thread::get_id(); });
    EXPECT_NE(f.get(), caller);
}

TEST(ThreadPool, ManySubmitsAllComplete)
{
    ThreadPool pool(4);
    std::atomic<int> counter{0};
    std::vector<std::future<void>> futures;
    for (int i = 0; i < 500; ++i) {
        futures.push_back(pool.submit(
            [&counter] { counter.fetch_add(1); }));
    }
    for (auto &f : futures)
        f.get();
    EXPECT_EQ(counter.load(), 500);
}

TEST(ThreadPool, WorkIsStolenAcrossWorkers)
{
    // Round-robin placement plus stealing: with many more tasks than
    // workers, more than one worker must end up executing tasks.
    ThreadPool pool(4);
    std::mutex mutex;
    std::set<std::thread::id> seen;
    std::vector<std::future<void>> futures;
    for (int i = 0; i < 64; ++i) {
        futures.push_back(pool.submit([&] {
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
            std::lock_guard<std::mutex> lock(mutex);
            seen.insert(std::this_thread::get_id());
        }));
    }
    for (auto &f : futures)
        f.get();
    EXPECT_GT(seen.size(), 1u);
}

TEST(ThreadPool, SubmitWakesSleepingWorker)
{
    // Lost-wakeup regression: enqueue must publish pending_ under the
    // wakeup mutex, otherwise a worker can re-check its wait
    // predicate (seeing no work), block after the producer's notify
    // already fired, and strand the job. One-off submits separated by
    // idle gaps make the workers park between jobs, hitting exactly
    // that window; with the race present, a future below never
    // becomes ready.
    ThreadPool pool(2);
    for (int i = 0; i < 200; ++i) {
        std::this_thread::sleep_for(std::chrono::microseconds(200));
        auto f = pool.submit([i] { return i; });
        ASSERT_EQ(f.wait_for(std::chrono::seconds(30)),
                  std::future_status::ready)
            << "submit " << i << " never ran (lost wakeup)";
        EXPECT_EQ(f.get(), i);
    }
}

TEST(ThreadPool, SubmitPropagatesException)
{
    ThreadPool pool(2);
    auto f = pool.submit(
        []() -> int { throw std::runtime_error("boom"); });
    EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, DestructorDrainsQueuedWork)
{
    std::atomic<int> counter{0};
    {
        ThreadPool pool(2);
        for (int i = 0; i < 64; ++i)
            pool.submit([&counter] { counter.fetch_add(1); });
    }
    EXPECT_EQ(counter.load(), 64);
}

TEST(ThreadPool, ParallelForZeroItems)
{
    ThreadPool pool(4);
    bool ran = false;
    pool.parallelFor(0, [&](size_t) { ran = true; });
    EXPECT_FALSE(ran);
}

TEST(ThreadPool, ParallelForOneItemRunsInline)
{
    ThreadPool pool(4);
    std::thread::id runner;
    pool.parallelFor(1, [&](size_t i) {
        EXPECT_EQ(i, 0u);
        runner = std::this_thread::get_id();
    });
    EXPECT_EQ(runner, std::this_thread::get_id());
}

TEST(ThreadPool, ParallelForCoversEveryIndexOnce)
{
    ThreadPool pool(4);
    constexpr size_t kCount = 1000;
    std::vector<std::atomic<int>> hits(kCount);
    pool.parallelFor(kCount,
                     [&](size_t i) { hits[i].fetch_add(1); });
    for (size_t i = 0; i < kCount; ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ThreadPool, ParallelForMoreItemsThanWorkers)
{
    ThreadPool pool(2);
    std::atomic<long> sum{0};
    pool.parallelFor(100, [&](size_t i) {
        sum.fetch_add(static_cast<long>(i));
    });
    EXPECT_EQ(sum.load(), 99L * 100L / 2L);
}

TEST(ThreadPool, ParallelForPropagatesException)
{
    ThreadPool pool(4);
    EXPECT_THROW(pool.parallelFor(100,
                                  [&](size_t i) {
                                      if (i == 37)
                                          throw std::runtime_error("37");
                                  }),
                 std::runtime_error);
}

TEST(ThreadPool, ParallelForUsableRepeatedly)
{
    ThreadPool pool(3);
    for (int round = 0; round < 20; ++round) {
        std::atomic<int> counter{0};
        pool.parallelFor(17, [&](size_t) { counter.fetch_add(1); });
        ASSERT_EQ(counter.load(), 17);
    }
}

} // namespace
} // namespace wsva
