#include "common/metrics.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace wsva {
namespace {

TEST(MetricsRegistry, CountersAccumulate)
{
    MetricsRegistry m;
    EXPECT_EQ(m.counter("x"), 0u);
    m.inc("x");
    m.inc("x", 4);
    EXPECT_EQ(m.counter("x"), 5u);
    EXPECT_EQ(m.counter("absent"), 0u);
}

TEST(MetricsRegistry, GaugesKeepLastValue)
{
    MetricsRegistry m;
    m.setGauge("g", 1.5);
    m.setGauge("g", -2.0);
    EXPECT_DOUBLE_EQ(m.gauge("g"), -2.0);
    EXPECT_DOUBLE_EQ(m.gauge("absent"), 0.0);
}

TEST(MetricsRegistry, HistogramCreatedOnFirstObserve)
{
    MetricsRegistry m;
    for (int i = 0; i < 100; ++i)
        m.observe("h", i + 0.5, 0.0, 100.0, 100);
    EXPECT_EQ(m.histogramCount("h"), 100u);
    EXPECT_NEAR(m.histogramQuantile("h", 0.5), 50.0, 1.5);
    EXPECT_EQ(m.histogramCount("absent"), 0u);
}

TEST(MetricsRegistry, SeriesRecordsPoints)
{
    MetricsRegistry m;
    for (int t = 0; t < 10; ++t)
        m.sample("s", t, 2.0 * t);
    const auto points = m.seriesSnapshot("s");
    ASSERT_EQ(points.size(), 10u);
    EXPECT_DOUBLE_EQ(points[3].first, 3.0);
    EXPECT_DOUBLE_EQ(points[3].second, 6.0);
}

TEST(MetricsRegistry, SeriesDecimatesPastCap)
{
    MetricsRegistry m;
    const size_t n = MetricsRegistry::kMaxSeriesPoints * 4;
    for (size_t t = 0; t < n; ++t)
        m.sample("s", static_cast<double>(t), 1.0);
    const auto points = m.seriesSnapshot("s");
    EXPECT_LE(points.size(), MetricsRegistry::kMaxSeriesPoints);
    EXPECT_GE(points.size(), MetricsRegistry::kMaxSeriesPoints / 4);
    // First point survives decimation; points stay time-ordered.
    EXPECT_DOUBLE_EQ(points.front().first, 0.0);
    for (size_t i = 1; i < points.size(); ++i)
        EXPECT_LT(points[i - 1].first, points[i].first);
}

TEST(MetricsRegistry, DisabledRecordsNothing)
{
    MetricsRegistry m;
    m.setEnabled(false);
    m.inc("c");
    m.setGauge("g", 3.0);
    m.observe("h", 1.0);
    m.sample("s", 0.0, 1.0);
    EXPECT_EQ(m.counter("c"), 0u);
    EXPECT_DOUBLE_EQ(m.gauge("g"), 0.0);
    EXPECT_EQ(m.histogramCount("h"), 0u);
    EXPECT_TRUE(m.seriesSnapshot("s").empty());
}

TEST(MetricsRegistry, ConcurrentRecordingIsSafe)
{
    MetricsRegistry m;
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
        threads.emplace_back([&m] {
            for (int i = 0; i < 1000; ++i) {
                m.inc("c");
                m.observe("h", i, 0.0, 1000.0, 50);
                m.sample("s", i, i);
            }
        });
    }
    for (auto &t : threads)
        t.join();
    EXPECT_EQ(m.counter("c"), 4000u);
    EXPECT_EQ(m.histogramCount("h"), 4000u);
}

TEST(MetricsRegistry, JsonContainsAllSections)
{
    MetricsRegistry m;
    m.inc("steps", 3);
    m.setGauge("util", 0.5);
    m.observe("lat", 10.0, 0.0, 100.0, 10);
    m.sample("backlog", 1.0, 7.0);
    const std::string json = m.toJson();
    EXPECT_NE(json.find("\"steps\": 3"), std::string::npos);
    EXPECT_NE(json.find("\"util\": 0.5"), std::string::npos);
    EXPECT_NE(json.find("\"lat\""), std::string::npos);
    EXPECT_NE(json.find("[1, 7]"), std::string::npos);
}

TEST(MetricsRegistry, ResetClears)
{
    MetricsRegistry m;
    m.inc("c");
    m.reset();
    EXPECT_EQ(m.counter("c"), 0u);
    EXPECT_TRUE(m.enabled());
}

TEST(TraceLog, RecordsTypedEvents)
{
    TraceLog log;
    log.record(TraceEventType::FaultInjected, 10.0, 1, 25);
    log.record(TraceEventType::StepCompleted, 11.0, 1, 25, 7, 3);
    EXPECT_EQ(log.size(), 2u);
    EXPECT_EQ(log.countOf(TraceEventType::FaultInjected), 1u);
    EXPECT_EQ(log.countOf(TraceEventType::StepCompleted), 1u);
    EXPECT_EQ(log.countOf(TraceEventType::HostRepaired), 0u);
    const auto events = log.snapshot();
    ASSERT_EQ(events.size(), 2u);
    EXPECT_EQ(events[1].step_id, 7u);
    EXPECT_EQ(events[1].video_id, 3u);
    EXPECT_DOUBLE_EQ(events[0].time, 10.0);
}

TEST(TraceLog, BoundedCapacityDropsOldest)
{
    TraceLog log(4);
    for (int i = 0; i < 10; ++i) {
        log.record(TraceEventType::StepScheduled, i, -1, -1,
                   static_cast<uint64_t>(i));
    }
    EXPECT_EQ(log.size(), 4u);
    EXPECT_EQ(log.recorded(), 10u);
    EXPECT_EQ(log.dropped(), 6u);
    // Lifetime per-type counts survive eviction.
    EXPECT_EQ(log.countOf(TraceEventType::StepScheduled), 10u);
    const auto events = log.snapshot();
    EXPECT_EQ(events.front().step_id, 6u);
    EXPECT_EQ(events.back().step_id, 9u);
}

TEST(TraceLog, SnapshotTakesLastN)
{
    TraceLog log;
    for (int i = 0; i < 5; ++i)
        log.record(TraceEventType::StepRetried, i);
    const auto last2 = log.snapshot(2);
    ASSERT_EQ(last2.size(), 2u);
    EXPECT_DOUBLE_EQ(last2[0].time, 3.0);
    EXPECT_DOUBLE_EQ(last2[1].time, 4.0);
}

TEST(TraceLog, DisabledRecordsNothing)
{
    TraceLog log;
    log.setEnabled(false);
    log.record(TraceEventType::StepFailed, 1.0);
    EXPECT_EQ(log.size(), 0u);
    EXPECT_EQ(log.recorded(), 0u);
}

TEST(TraceLog, JsonHasCountsAndEvents)
{
    TraceLog log;
    log.record(TraceEventType::WorkerQuarantined, 5.0, 0, 3);
    const std::string json = log.toJson();
    EXPECT_NE(json.find("\"worker_quarantined\": 1"), std::string::npos);
    EXPECT_NE(json.find("\"type\": \"worker_quarantined\""),
              std::string::npos);
}

TEST(TraceLog, TypeNamesAreStable)
{
    EXPECT_STREQ(traceEventTypeName(TraceEventType::FaultInjected),
                 "fault_injected");
    EXPECT_STREQ(traceEventTypeName(TraceEventType::StepCorrupt),
                 "step_corrupt");
}

} // namespace
} // namespace wsva
