#include "common/metrics.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace wsva {
namespace {

TEST(MetricsRegistry, CountersAccumulate)
{
    MetricsRegistry m;
    EXPECT_EQ(m.counter("x"), 0u);
    m.inc("x");
    m.inc("x", 4);
    EXPECT_EQ(m.counter("x"), 5u);
    EXPECT_EQ(m.counter("absent"), 0u);
}

TEST(MetricsRegistry, GaugesKeepLastValue)
{
    MetricsRegistry m;
    m.setGauge("g", 1.5);
    m.setGauge("g", -2.0);
    EXPECT_DOUBLE_EQ(m.gauge("g"), -2.0);
    EXPECT_DOUBLE_EQ(m.gauge("absent"), 0.0);
}

TEST(MetricsRegistry, HistogramCreatedOnFirstObserve)
{
    MetricsRegistry m;
    for (int i = 0; i < 100; ++i)
        m.observe("h", i + 0.5, 0.0, 100.0, 100);
    EXPECT_EQ(m.histogramCount("h"), 100u);
    EXPECT_NEAR(m.histogramQuantile("h", 0.5), 50.0, 1.5);
    EXPECT_EQ(m.histogramCount("absent"), 0u);
}

TEST(MetricsRegistry, SeriesRecordsPoints)
{
    MetricsRegistry m;
    for (int t = 0; t < 10; ++t)
        m.sample("s", t, 2.0 * t);
    const auto points = m.seriesSnapshot("s");
    ASSERT_EQ(points.size(), 10u);
    EXPECT_DOUBLE_EQ(points[3].first, 3.0);
    EXPECT_DOUBLE_EQ(points[3].second, 6.0);
}

TEST(MetricsRegistry, SeriesDecimatesPastCap)
{
    MetricsRegistry m;
    const size_t n = MetricsRegistry::kMaxSeriesPoints * 4;
    for (size_t t = 0; t < n; ++t)
        m.sample("s", static_cast<double>(t), 1.0);
    const auto points = m.seriesSnapshot("s");
    EXPECT_LE(points.size(), MetricsRegistry::kMaxSeriesPoints);
    EXPECT_GE(points.size(), MetricsRegistry::kMaxSeriesPoints / 4);
    // First point survives decimation; points stay time-ordered.
    EXPECT_DOUBLE_EQ(points.front().first, 0.0);
    for (size_t i = 1; i < points.size(); ++i)
        EXPECT_LT(points[i - 1].first, points[i].first);
}

TEST(MetricsRegistry, DisabledRecordsNothing)
{
    MetricsRegistry m;
    m.setEnabled(false);
    m.inc("c");
    m.setGauge("g", 3.0);
    m.observe("h", 1.0);
    m.sample("s", 0.0, 1.0);
    EXPECT_EQ(m.counter("c"), 0u);
    EXPECT_DOUBLE_EQ(m.gauge("g"), 0.0);
    EXPECT_EQ(m.histogramCount("h"), 0u);
    EXPECT_TRUE(m.seriesSnapshot("s").empty());
}

TEST(MetricsRegistry, ConcurrentRecordingIsSafe)
{
    MetricsRegistry m;
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
        threads.emplace_back([&m] {
            for (int i = 0; i < 1000; ++i) {
                m.inc("c");
                m.observe("h", i, 0.0, 1000.0, 50);
                m.sample("s", i, i);
            }
        });
    }
    for (auto &t : threads)
        t.join();
    EXPECT_EQ(m.counter("c"), 4000u);
    EXPECT_EQ(m.histogramCount("h"), 4000u);
}

TEST(MetricsRegistry, JsonContainsAllSections)
{
    MetricsRegistry m;
    m.inc("steps", 3);
    m.setGauge("util", 0.5);
    m.observe("lat", 10.0, 0.0, 100.0, 10);
    m.sample("backlog", 1.0, 7.0);
    const std::string json = m.toJson();
    EXPECT_NE(json.find("\"steps\": 3"), std::string::npos);
    EXPECT_NE(json.find("\"util\": 0.5"), std::string::npos);
    EXPECT_NE(json.find("\"lat\""), std::string::npos);
    EXPECT_NE(json.find("[1, 7]"), std::string::npos);
}

TEST(MetricsRegistry, ResetClears)
{
    MetricsRegistry m;
    m.inc("c");
    m.reset();
    EXPECT_EQ(m.counter("c"), 0u);
    EXPECT_TRUE(m.enabled());
}

TEST(TraceLog, RecordsTypedEvents)
{
    TraceLog log;
    log.record(TraceEventType::FaultInjected, 10.0, 1, 25);
    log.record(TraceEventType::StepCompleted, 11.0, 1, 25, 7, 3);
    EXPECT_EQ(log.size(), 2u);
    EXPECT_EQ(log.countOf(TraceEventType::FaultInjected), 1u);
    EXPECT_EQ(log.countOf(TraceEventType::StepCompleted), 1u);
    EXPECT_EQ(log.countOf(TraceEventType::HostRepaired), 0u);
    const auto events = log.snapshot();
    ASSERT_EQ(events.size(), 2u);
    EXPECT_EQ(events[1].step_id, 7u);
    EXPECT_EQ(events[1].video_id, 3u);
    EXPECT_DOUBLE_EQ(events[0].time, 10.0);
}

TEST(TraceLog, BoundedCapacityDropsOldest)
{
    TraceLog log(4);
    for (int i = 0; i < 10; ++i) {
        log.record(TraceEventType::StepScheduled, i, -1, -1,
                   static_cast<uint64_t>(i));
    }
    EXPECT_EQ(log.size(), 4u);
    EXPECT_EQ(log.recorded(), 10u);
    EXPECT_EQ(log.dropped(), 6u);
    // Lifetime per-type counts survive eviction.
    EXPECT_EQ(log.countOf(TraceEventType::StepScheduled), 10u);
    const auto events = log.snapshot();
    EXPECT_EQ(events.front().step_id, 6u);
    EXPECT_EQ(events.back().step_id, 9u);
}

TEST(TraceLog, SnapshotTakesLastN)
{
    TraceLog log;
    for (int i = 0; i < 5; ++i)
        log.record(TraceEventType::StepRetried, i);
    const auto last2 = log.snapshot(2);
    ASSERT_EQ(last2.size(), 2u);
    EXPECT_DOUBLE_EQ(last2[0].time, 3.0);
    EXPECT_DOUBLE_EQ(last2[1].time, 4.0);
}

TEST(TraceLog, DisabledRecordsNothing)
{
    TraceLog log;
    log.setEnabled(false);
    log.record(TraceEventType::StepFailed, 1.0);
    EXPECT_EQ(log.size(), 0u);
    EXPECT_EQ(log.recorded(), 0u);
}

TEST(TraceLog, JsonHasCountsAndEvents)
{
    TraceLog log;
    log.record(TraceEventType::WorkerQuarantined, 5.0, 0, 3);
    const std::string json = log.toJson();
    EXPECT_NE(json.find("\"worker_quarantined\": 1"), std::string::npos);
    EXPECT_NE(json.find("\"type\": \"worker_quarantined\""),
              std::string::npos);
}

TEST(TraceLog, TypeNamesAreStable)
{
    EXPECT_STREQ(traceEventTypeName(TraceEventType::FaultInjected),
                 "fault_injected");
    EXPECT_STREQ(traceEventTypeName(TraceEventType::StepCorrupt),
                 "step_corrupt");
}

TEST(TraceLog, ScrapeWhileRecordingHammer)
{
    // The satellite defect this locks down: toJson() used to format
    // the whole document while holding the record-path SpinLock, so a
    // slow scrape stalled every recording worker. Now the lock covers
    // only the copy-out. Hammer: workers record while another thread
    // scrapes continuously; every scrape must be parseable and no
    // event may be lost. Run under TSan to certify.
    TraceLog log(512);
    constexpr int kThreads = 4;
    constexpr int kPerThread = 5000;
    std::atomic<bool> go{false};
    std::vector<std::thread> workers;
    for (int t = 0; t < kThreads; ++t) {
        workers.emplace_back([&log, &go, t] {
            while (!go.load(std::memory_order_acquire)) {
            }
            for (int i = 0; i < kPerThread; ++i)
                log.record(TraceEventType::StepCompleted,
                           static_cast<double>(i), t, t,
                           static_cast<uint64_t>(i));
        });
    }
    std::atomic<bool> done{false};
    std::thread scraper([&log, &done] {
        while (!done.load(std::memory_order_acquire)) {
            const std::string json = log.toJson(64);
            EXPECT_NE(json.find("\"counts\""), std::string::npos);
            (void)log.snapshot(32);
        }
    });
    go.store(true, std::memory_order_release);
    for (auto &w : workers)
        w.join();
    done.store(true, std::memory_order_release);
    scraper.join();

    EXPECT_EQ(log.recorded(),
              static_cast<uint64_t>(kThreads) * kPerThread);
    EXPECT_EQ(log.countOf(TraceEventType::StepCompleted),
              static_cast<uint64_t>(kThreads) * kPerThread);
    EXPECT_EQ(log.size(), 512u);
}

TEST(Prometheus, SanitizeRewritesIllegalChars)
{
    EXPECT_EQ(sanitizePrometheusName("cluster.steps_completed"),
              "cluster_steps_completed");
    EXPECT_EQ(sanitizePrometheusName("fleet.rack0.retry-rate"),
              "fleet_rack0_retry_rate");
    EXPECT_EQ(sanitizePrometheusName("a/b c"), "a_b_c");
    EXPECT_EQ(sanitizePrometheusName("already_legal:name"),
              "already_legal:name");
    // Leading digit gets a prefix; empty becomes "_".
    EXPECT_EQ(sanitizePrometheusName("9lives"), "_9lives");
    EXPECT_EQ(sanitizePrometheusName(""), "_");
}

TEST(Prometheus, ExpositionCarriesCountersGaugesHistograms)
{
    MetricsRegistry m;
    m.inc("steps.total", 42);
    m.setGauge("util.encoder", 0.75);
    for (int i = 0; i < 100; ++i)
        m.observe("latency.seconds", i + 0.5, 0.0, 100.0, 10);

    const std::string text = m.toPrometheusText();
    EXPECT_NE(text.find("# TYPE steps_total counter"),
              std::string::npos);
    EXPECT_NE(text.find("steps_total 42"), std::string::npos);
    EXPECT_NE(text.find("# TYPE util_encoder gauge"),
              std::string::npos);
    EXPECT_NE(text.find("# TYPE latency_seconds histogram"),
              std::string::npos);
    EXPECT_NE(text.find("latency_seconds_bucket{le=\"+Inf\"} 100"),
              std::string::npos);
    EXPECT_NE(text.find("latency_seconds_count 100"),
              std::string::npos);
    // HELP lines keep the original registry name for traceability.
    EXPECT_NE(text.find("'latency.seconds'"), std::string::npos);
}

TEST(Prometheus, CollidingNamesGetDistinctFamilies)
{
    // Both sanitize to "a_b"; the exposition must keep them apart.
    MetricsRegistry m;
    m.inc("a.b", 1);
    m.inc("a/b", 2);
    m.setGauge("a-b", 3.0);

    const std::string text = m.toPrometheusText();
    EXPECT_NE(text.find("a_b 1"), std::string::npos);
    EXPECT_NE(text.find("a_b_2 2"), std::string::npos);
    EXPECT_NE(text.find("a_b_3 3"), std::string::npos);
}

TEST(Prometheus, HistogramSuffixesCannotCollideWithPlainMetrics)
{
    // A histogram claims base, _bucket, _sum, and _count together; a
    // counter that sanitizes to one of those must be renamed.
    MetricsRegistry m;
    for (int i = 0; i < 10; ++i)
        m.observe("lat", static_cast<double>(i), 0.0, 10.0, 5);
    m.inc("lat.count", 7); // Sanitizes to lat_count = histogram suffix.

    const std::string text = m.toPrometheusText();
    // Counters claim first, so the counter keeps lat_count...
    EXPECT_NE(text.find("# TYPE lat_count counter"),
              std::string::npos);
    EXPECT_NE(text.find("lat_count 7"), std::string::npos);
    // ...and the whole histogram family moves aside to lat_2 rather
    // than emitting a lat_count that means two different things.
    EXPECT_NE(text.find("# TYPE lat_2 histogram"), std::string::npos);
    EXPECT_NE(text.find("lat_2_count 10"), std::string::npos);
    EXPECT_EQ(text.find("# TYPE lat histogram"), std::string::npos);
}

TEST(Prometheus, DisabledRegistryStillExposes)
{
    // Scraping a disabled registry returns whatever was recorded
    // before it was disabled (the flag gates recording, not reads).
    MetricsRegistry m;
    m.inc("c", 3);
    m.setEnabled(false);
    m.inc("c", 99);
    const std::string text = m.toPrometheusText();
    EXPECT_NE(text.find("c 3"), std::string::npos);
}

TEST(Prometheus, ScrapeWhileRecordingHammer)
{
    // Same contract as TraceLog: the registry mutex is held only
    // while copying, so concurrent scrapes and records interleave
    // safely. TSan certifies the absence of data races.
    MetricsRegistry m;
    std::atomic<bool> done{false};
    std::vector<std::thread> workers;
    for (int t = 0; t < 3; ++t) {
        workers.emplace_back([&m, t] {
            for (int i = 0; i < 4000; ++i) {
                m.inc("hammer.counter");
                m.setGauge("hammer.gauge", static_cast<double>(i));
                m.observe("hammer.hist", static_cast<double>(i % 100),
                          0.0, 100.0, 10);
            }
        });
    }
    std::thread scraper([&m, &done] {
        while (!done.load(std::memory_order_acquire)) {
            const std::string text = m.toPrometheusText();
            EXPECT_NE(text.find("hammer_counter"), std::string::npos);
        }
    });
    for (auto &w : workers)
        w.join();
    done.store(true, std::memory_order_release);
    scraper.join();
    EXPECT_EQ(m.counter("hammer.counter"), 3u * 4000u);
    EXPECT_EQ(m.histogramCount("hammer.hist"), 3u * 4000u);
}

} // namespace
} // namespace wsva
