#include "common/units.h"

#include <gtest/gtest.h>

namespace wsva {
namespace {

TEST(Units, BinarySizes)
{
    EXPECT_EQ(kKiB, 1024u);
    EXPECT_EQ(kMiB, 1024u * 1024u);
    EXPECT_EQ(kGiB, 1024u * 1024u * 1024u);
}

TEST(Units, BitrateConversions)
{
    EXPECT_DOUBLE_EQ(mbps(35.0), 35e6);
    EXPECT_DOUBLE_EQ(gbps(100.0), 100e9);
    EXPECT_DOUBLE_EQ(gibPerSec(2.0), 2.0 * 1024 * 1024 * 1024);
}

TEST(Units, PixelThroughput)
{
    // One 2160p60 stream is ~0.5 Gpix/s.
    const double pps = 3840.0 * 2160.0 * 60.0;
    EXPECT_NEAR(toGpixPerSec(pps), 0.4977, 1e-3);
    EXPECT_NEAR(toMpixPerSec(pps), 497.7, 0.1);
}

} // namespace
} // namespace wsva
