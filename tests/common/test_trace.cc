#include "common/trace.h"

#include <atomic>
#include <future>
#include <set>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/metrics.h"
#include "common/thread_pool.h"
#include "support/mini_json.h"

namespace wsva {
namespace {

using wsva::testsupport::JsonValue;
using wsva::testsupport::parseJson;

/** The retained span with the given name, or nullptr. */
const SpanRecord *
findSpan(const std::vector<SpanRecord> &spans, const std::string &name)
{
    for (const auto &s : spans) {
        if (name == s.name)
            return &s;
    }
    return nullptr;
}

TEST(Tracer, IdsStartAtOneAndIncrease)
{
    Tracer tracer;
    EXPECT_EQ(tracer.nextId(), 1u);
    EXPECT_EQ(tracer.nextId(), 2u);
}

TEST(Tracer, RecordAssignsIdWhenZero)
{
    Tracer tracer;
    SpanRecord rec;
    rec.name = "a";
    tracer.record(rec);
    const auto spans = tracer.snapshot();
    ASSERT_EQ(spans.size(), 1u);
    EXPECT_GT(spans[0].id, 0u);
}

TEST(Tracer, RecordKeepsPreallocatedId)
{
    Tracer tracer;
    const uint64_t id = tracer.nextId();
    SpanRecord rec;
    rec.name = "upload";
    rec.id = id;
    tracer.record(rec);
    const auto spans = tracer.snapshot();
    ASSERT_EQ(spans.size(), 1u);
    EXPECT_EQ(spans[0].id, id);
}

TEST(Tracer, DisabledRecordsNothing)
{
    Tracer tracer;
    tracer.setEnabled(false);
    tracer.record(SpanRecord{});
    tracer.instant("x", "y");
    EXPECT_EQ(tracer.recordSimSpan("s", "c", 0.0, 1.0, 0), 0u);
    EXPECT_EQ(tracer.size(), 0u);
    EXPECT_EQ(tracer.recorded(), 0u);
}

TEST(Tracer, RingDropsOldestBeyondCapacity)
{
    Tracer tracer(4);
    for (uint64_t i = 0; i < 10; ++i)
        tracer.recordSimSpan("s", "c", static_cast<double>(i),
                             static_cast<double>(i + 1), 0);
    EXPECT_EQ(tracer.size(), 4u);
    EXPECT_EQ(tracer.recorded(), 10u);
    EXPECT_EQ(tracer.dropped(), 6u);
    const auto spans = tracer.snapshot();
    ASSERT_EQ(spans.size(), 4u);
    // Oldest-first snapshot of the last four records.
    EXPECT_DOUBLE_EQ(spans.front().begin_us, 6.0);
    EXPECT_DOUBLE_EQ(spans.back().begin_us, 9.0);
}

TEST(Tracer, ClearDropsSpansAndCounters)
{
    Tracer tracer;
    tracer.recordSimSpan("s", "c", 0.0, 1.0, 0);
    tracer.clear();
    EXPECT_EQ(tracer.size(), 0u);
    EXPECT_EQ(tracer.recorded(), 0u);
    EXPECT_TRUE(tracer.enabled());
}

TEST(Tracer, InternReturnsStablePointerForEqualStrings)
{
    Tracer tracer;
    const char *a = tracer.intern("motion_rdo");
    const char *b = tracer.intern("motion_rdo");
    const char *c = tracer.intern("entropy");
    EXPECT_EQ(a, b);
    EXPECT_NE(a, c);
    EXPECT_STREQ(a, "motion_rdo");
}

TEST(Span, RecordsIntervalWithNesting)
{
    Tracer tracer;
    uint64_t outer_id = 0;
    {
        Span outer(&tracer, "outer", "test");
        outer_id = outer.id();
        ASSERT_GT(outer_id, 0u);
        {
            Span inner(&tracer, "inner", "test");
            inner.arg("k", 7);
        }
    }
    const auto spans = tracer.snapshot();
    ASSERT_EQ(spans.size(), 2u); // Inner closes (and records) first.
    const SpanRecord *inner = findSpan(spans, "inner");
    const SpanRecord *outer = findSpan(spans, "outer");
    ASSERT_NE(inner, nullptr);
    ASSERT_NE(outer, nullptr);
    EXPECT_EQ(inner->parent, outer_id);
    EXPECT_EQ(outer->parent, 0u);
    EXPECT_STREQ(inner->arg1_key, "k");
    EXPECT_EQ(inner->arg1, 7u);
    EXPECT_GE(inner->end_us, inner->begin_us);
    EXPECT_LE(outer->begin_us, inner->begin_us);
}

TEST(Span, NullOrDisabledTracerIsInert)
{
    {
        Span span(nullptr, "x");
        span.arg("k", 1);
        EXPECT_EQ(span.id(), 0u);
    }
    Tracer tracer;
    tracer.setEnabled(false);
    {
        Span span(&tracer, "x");
        EXPECT_EQ(span.id(), 0u);
    }
    EXPECT_EQ(tracer.size(), 0u);
    // A disabled span must not install itself as context.
    EXPECT_EQ(currentSpanContext().tracer, nullptr);
}

TEST(Span, ContextRestoredAfterScope)
{
    Tracer tracer;
    {
        Span outer(&tracer, "outer");
        EXPECT_EQ(currentSpanContext().span_id, outer.id());
        {
            Span inner(&tracer, "inner");
            EXPECT_EQ(currentSpanContext().span_id, inner.id());
        }
        EXPECT_EQ(currentSpanContext().span_id, outer.id());
    }
    EXPECT_EQ(currentSpanContext().tracer, nullptr);
}

TEST(SpanContext, PropagatesAcrossSubmit)
{
    Tracer tracer;
    ThreadPool pool(2);
    uint64_t root_id = 0;
    {
        Span root(&tracer, "root");
        root_id = root.id();
        auto done = pool.submit([&tracer] {
            Span child(&tracer, "pool_child");
        });
        done.get();
    }
    const auto spans = tracer.snapshot();
    const SpanRecord *child = findSpan(spans, "pool_child");
    ASSERT_NE(child, nullptr);
    EXPECT_EQ(child->parent, root_id);
}

TEST(SpanContext, PropagatesAcrossParallelForUnderStealing)
{
    Tracer tracer;
    ThreadPool pool(4);
    constexpr size_t kJobs = 64;
    uint64_t root_id = 0;
    {
        Span root(&tracer, "root");
        root_id = root.id();
        pool.parallelFor(kJobs, [&](size_t i) {
            Span job(&tracer, "job");
            job.arg("i", i);
        });
    }
    size_t jobs_seen = 0;
    std::set<uint64_t> job_ids;
    for (const auto &rec : tracer.snapshot()) {
        if (std::string(rec.name) != "job")
            continue;
        ++jobs_seen;
        EXPECT_EQ(rec.parent, root_id);
        job_ids.insert(rec.id);
    }
    EXPECT_EQ(jobs_seen, kJobs);
    EXPECT_EQ(job_ids.size(), kJobs); // Ids unique across threads.
}

TEST(SpanContext, SubmitOutsideAnySpanHasNoParent)
{
    Tracer tracer;
    ThreadPool pool(2);
    pool.submit([&tracer] { Span s(&tracer, "orphan"); }).get();
    const auto spans = tracer.snapshot();
    const SpanRecord *orphan = findSpan(spans, "orphan");
    ASSERT_NE(orphan, nullptr);
    EXPECT_EQ(orphan->parent, 0u);
}

TEST(SpanContext, DoesNotLeakParentAcrossTracers)
{
    Tracer a;
    Tracer b;
    {
        Span outer(&a, "outer_a");
        Span inner(&b, "inner_b");
        EXPECT_EQ(inner.id(), 1u);
    }
    const auto spans = b.snapshot();
    const SpanRecord *inner = findSpan(spans, "inner_b");
    ASSERT_NE(inner, nullptr);
    // Tracer a's span must not masquerade as a parent id in tracer b.
    EXPECT_EQ(inner->parent, 0u);
}

TEST(SpanContext, DisabledTracerCostsNoContextInstall)
{
    Tracer tracer;
    tracer.setEnabled(false);
    ThreadPool pool(2);
    {
        Span root(&tracer, "root");
        pool.submit([] {}).get();
    }
    EXPECT_EQ(tracer.recorded(), 0u);
}

TEST(ChromeExport, EmitsParsableJsonWithSpanEvents)
{
    Tracer tracer;
    {
        Span outer(&tracer, "transcode", "pipeline");
        outer.arg("chunks", 3);
        Span inner(&tracer, "encode_chunk", "pipeline");
    }
    tracer.instant("rq_cache.hit", "rq_cache", "fingerprint", 42);

    JsonValue doc;
    std::string error;
    ASSERT_TRUE(parseJson(tracer.exportChromeTrace(), &doc, &error))
        << error;
    EXPECT_EQ(doc.numberAt("schema_version"), 1.0);
    EXPECT_EQ(doc.stringAt("displayTimeUnit"), "ms");
    const JsonValue *events = doc.get("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_TRUE(events->isArray());

    bool saw_transcode = false;
    bool saw_instant = false;
    bool saw_process_name = false;
    for (const auto &ev : events->array) {
        const std::string name = ev.stringAt("name");
        if (name == "process_name") {
            saw_process_name = true;
            EXPECT_EQ(ev.stringAt("ph"), "M");
            continue;
        }
        if (name == "transcode") {
            saw_transcode = true;
            EXPECT_EQ(ev.stringAt("ph"), "X");
            EXPECT_EQ(ev.stringAt("cat"), "pipeline");
            EXPECT_TRUE(ev.has("ts"));
            EXPECT_TRUE(ev.has("dur"));
            const JsonValue *args = ev.get("args");
            ASSERT_NE(args, nullptr);
            EXPECT_EQ(args->numberAt("chunks"), 3.0);
            EXPECT_GT(args->numberAt("id"), 0.0);
        }
        if (name == "rq_cache.hit") {
            saw_instant = true;
            EXPECT_EQ(ev.stringAt("ph"), "i");
            const JsonValue *args = ev.get("args");
            ASSERT_NE(args, nullptr);
            EXPECT_EQ(args->numberAt("fingerprint"), 42.0);
        }
    }
    EXPECT_TRUE(saw_transcode);
    EXPECT_TRUE(saw_instant);
    EXPECT_TRUE(saw_process_name);
}

TEST(ChromeExport, ParentIdsLinkChildToParentInArgs)
{
    Tracer tracer;
    uint64_t outer_id = 0;
    {
        Span outer(&tracer, "outer");
        outer_id = outer.id();
        Span inner(&tracer, "inner");
    }
    JsonValue doc;
    ASSERT_TRUE(parseJson(tracer.exportChromeTrace(), &doc));
    for (const auto &ev : doc.get("traceEvents")->array) {
        if (ev.stringAt("name") == "inner") {
            EXPECT_EQ(ev.get("args")->numberAt("parent"),
                      static_cast<double>(outer_id));
            return;
        }
    }
    FAIL() << "inner span missing from export";
}

TEST(ChromeExport, BridgesTraceLogEventsAsInstantsAndCounters)
{
    Tracer tracer;
    tracer.recordSimSpan("upload", "cluster", 0.0, 2e6, 0);

    TraceLog log;
    log.record(TraceEventType::StepScheduled, 1.0, 0, 3, 11, 7);
    log.record(TraceEventType::StepCompleted, 2.0, 0, 3, 11, 7);
    log.record(TraceEventType::SloAlert, 3.0);

    JsonValue doc;
    std::string error;
    ASSERT_TRUE(parseJson(tracer.exportChromeTrace(&log), &doc, &error))
        << error;

    bool saw_scheduled = false;
    bool saw_alert = false;
    int counter_events = 0;
    for (const auto &ev : doc.get("traceEvents")->array) {
        const std::string name = ev.stringAt("name");
        if (name == "step_scheduled") {
            saw_scheduled = true;
            EXPECT_EQ(ev.stringAt("ph"), "i");
            EXPECT_EQ(ev.stringAt("cat"), "cluster_event");
            EXPECT_DOUBLE_EQ(ev.numberAt("ts"), 1e6);
            const JsonValue *args = ev.get("args");
            ASSERT_NE(args, nullptr);
            EXPECT_EQ(args->numberAt("worker"), 3.0);
            EXPECT_EQ(args->numberAt("step"), 11.0);
        }
        if (name == "slo_alert")
            saw_alert = true;
        if (name == "cluster_events") {
            EXPECT_EQ(ev.stringAt("ph"), "C");
            ++counter_events;
        }
    }
    EXPECT_TRUE(saw_scheduled);
    EXPECT_TRUE(saw_alert);
    EXPECT_EQ(counter_events, 3); // One counter bump per event.
}

TEST(ChromeExport, SimSpansAreByteIdenticalAcrossTracers)
{
    const auto record = [](Tracer &tracer) {
        const uint64_t root =
            tracer.recordSimSpan("upload", "cluster", 0.0, 5e6, 0);
        tracer.recordSimSpan("queue_wait", "cluster", 0.0, 1e6, 1,
                             root, kProcessSim, "step", 1);
        tracer.recordSimSpan("execute", "cluster", 1e6, 5e6, 1, root,
                             kProcessSim, "step", 1);
        tracer.recordSimSpan("motion_rdo", "hlsim", 0.0, 352.0, 0, 0,
                             kProcessHlsim, "item", 0);
    };
    Tracer a;
    Tracer b;
    record(a);
    record(b);
    EXPECT_EQ(a.exportChromeTrace(), b.exportChromeTrace());
}

TEST(ChromeExport, ConcurrentWallSpansAllSurvive)
{
    Tracer tracer;
    ThreadPool pool(4);
    {
        Span root(&tracer, "root");
        pool.parallelFor(128, [&](size_t i) {
            Span job(&tracer, "job");
            job.arg("i", i);
        });
    }
    EXPECT_EQ(tracer.recorded(), 129u);
    JsonValue doc;
    ASSERT_TRUE(parseJson(tracer.exportChromeTrace(), &doc));
}

TEST(Tracer, SnapshotWhileRecordingHammer)
{
    // /tracez snapshots the span ring from a handler thread while
    // workers keep recording. The ring lock covers only the copy-out,
    // so the scrape cannot stall recorders — and every copied span
    // must be fully formed (no torn begin/end pair). TSan certifies
    // the synchronization.
    Tracer tracer(256);
    std::atomic<bool> done{false};
    std::atomic<bool> scraper_up{false};
    std::vector<std::thread> workers;
    for (int t = 0; t < 4; ++t) {
        workers.emplace_back([&tracer, t, &scraper_up] {
            // Hold until the scraper spins, so snapshots really
            // interleave with the records.
            while (!scraper_up.load(std::memory_order_acquire)) {
            }
            for (int i = 0; i < 4000; ++i) {
                const double begin = i * 10.0;
                tracer.recordSimSpan("hammer", "test", begin,
                                     begin + 5.0, t, 0, 1, "i",
                                     static_cast<uint64_t>(i));
            }
        });
    }
    std::atomic<uint64_t> snapshots{0};
    std::atomic<int> torn{0};
    std::thread scraper([&] {
        scraper_up.store(true, std::memory_order_release);
        while (!done.load(std::memory_order_acquire)) {
            for (const auto &rec : tracer.snapshot()) {
                // Every span was recorded with end = begin + 5.
                if (rec.end_us != rec.begin_us + 5.0)
                    torn.fetch_add(1, std::memory_order_relaxed);
            }
            snapshots.fetch_add(1, std::memory_order_relaxed);
        }
    });
    for (auto &w : workers)
        w.join();
    done.store(true, std::memory_order_release);
    scraper.join();

    EXPECT_EQ(torn.load(), 0);
    EXPECT_GT(snapshots.load(), 0u);
    EXPECT_EQ(tracer.recorded(), 4u * 4000u);
    EXPECT_EQ(tracer.snapshot().size(), 256u);
}

} // namespace
} // namespace wsva
