#include "common/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace wsva {
namespace {

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42);
    Rng b(42);
    for (int i = 0; i < 1000; ++i)
        ASSERT_EQ(a.nextU32(), b.nextU32());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.nextU32() == b.nextU32();
    EXPECT_LT(same, 3);
}

TEST(Rng, UniformIntRespectsBound)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i)
        ASSERT_LT(rng.uniformInt(17), 17u);
}

TEST(Rng, UniformIntCoversRange)
{
    Rng rng(7);
    std::set<uint32_t> seen;
    for (int i = 0; i < 1000; ++i)
        seen.insert(rng.uniformInt(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, UniformRangeInclusive)
{
    Rng rng(3);
    bool saw_lo = false;
    bool saw_hi = false;
    for (int i = 0; i < 5000; ++i) {
        const int v = rng.uniformRange(-2, 2);
        ASSERT_GE(v, -2);
        ASSERT_LE(v, 2);
        saw_lo |= v == -2;
        saw_hi |= v == 2;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformRealInUnitInterval)
{
    Rng rng(11);
    for (int i = 0; i < 10000; ++i) {
        const double v = rng.uniformReal();
        ASSERT_GE(v, 0.0);
        ASSERT_LT(v, 1.0);
    }
}

TEST(Rng, UniformRealMeanNearHalf)
{
    Rng rng(13);
    double acc = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        acc += rng.uniformReal();
    EXPECT_NEAR(acc / n, 0.5, 0.01);
}

TEST(Rng, NormalMeanAndSpread)
{
    Rng rng(17);
    double sum = 0;
    double sq = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        const double v = rng.normal(10.0, 3.0);
        sum += v;
        sq += v * v;
    }
    const double mean = sum / n;
    const double var = sq / n - mean * mean;
    EXPECT_NEAR(mean, 10.0, 0.1);
    EXPECT_NEAR(var, 9.0, 0.3);
}

TEST(Rng, ExponentialMeanMatchesRate)
{
    Rng rng(19);
    double acc = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        acc += rng.exponential(0.5);
    EXPECT_NEAR(acc / n, 2.0, 0.05);
}

TEST(Rng, BernoulliFrequency)
{
    Rng rng(23);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        hits += rng.bernoulli(0.3);
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

// Sample mean of n Poisson draws must land within 3 sigma of the
// true mean (sigma of the mean = sqrt(lambda / n)). Covers both the
// Knuth regime and the normal-approximation regime.
void
expectPoissonMean(double lambda, uint64_t seed)
{
    Rng rng(seed);
    const int n = 3000;
    double acc = 0;
    for (int i = 0; i < n; ++i)
        acc += static_cast<double>(rng.poisson(lambda));
    const double sigma_of_mean = std::sqrt(lambda / n);
    EXPECT_NEAR(acc / n, lambda, 3.0 * sigma_of_mean)
        << "lambda = " << lambda;
}

TEST(Rng, PoissonMeanSmallLambda)
{
    expectPoissonMean(0.1, 31);
}

TEST(Rng, PoissonMeanMediumLambda)
{
    expectPoissonMean(10.0, 37);
}

// Regression: the naive Knuth product sampler computes exp(-lambda),
// which flushes to zero for lambda above ~745 and silently caps every
// draw near 745. At lambda = 1e4 the fixed sampler must keep its full
// mean.
TEST(Rng, PoissonMeanWarehouseLambda)
{
    expectPoissonMean(1e4, 41);
    Rng rng(43);
    for (int i = 0; i < 50; ++i)
        EXPECT_GT(rng.poisson(1e4), 2000u);
}

TEST(Rng, PoissonDeterministicPerSeed)
{
    Rng a(47);
    Rng b(47);
    for (const double lambda : {0.5, 20.0, 5000.0}) {
        for (int i = 0; i < 100; ++i)
            EXPECT_EQ(a.poisson(lambda), b.poisson(lambda));
    }
}

TEST(Rng, PoissonZeroMeanIsZero)
{
    Rng rng(53);
    EXPECT_EQ(rng.poisson(0.0), 0u);
    EXPECT_EQ(rng.poisson(-1.0), 0u);
}

TEST(Rng, ForkedStreamsAreIndependent)
{
    Rng parent(29);
    Rng child1 = parent.fork(1);
    Rng child2 = parent.fork(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += child1.nextU32() == child2.nextU32();
    EXPECT_LT(same, 3);
}

} // namespace
} // namespace wsva
