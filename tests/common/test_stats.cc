#include "common/stats.h"

#include <gtest/gtest.h>

#include <cmath>

namespace wsva {
namespace {

TEST(RunningStat, EmptyIsZero)
{
    RunningStat s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStat, SingleSample)
{
    RunningStat s;
    s.add(5.0);
    EXPECT_EQ(s.count(), 1u);
    EXPECT_EQ(s.mean(), 5.0);
    EXPECT_EQ(s.min(), 5.0);
    EXPECT_EQ(s.max(), 5.0);
    EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStat, MeanAndVariance)
{
    RunningStat s;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(v);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
    EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(RunningStat, MergeMatchesSequential)
{
    RunningStat all;
    RunningStat a;
    RunningStat b;
    for (int i = 0; i < 50; ++i) {
        const double v = i * 0.7 - 3;
        all.add(v);
        (i % 2 == 0 ? a : b).add(v);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
    EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
    EXPECT_EQ(a.min(), all.min());
    EXPECT_EQ(a.max(), all.max());
}

TEST(RunningStat, MergeWithEmpty)
{
    RunningStat a;
    a.add(1.0);
    RunningStat b;
    a.merge(b);
    EXPECT_EQ(a.count(), 1u);
    b.merge(a);
    EXPECT_EQ(b.count(), 1u);
    EXPECT_EQ(b.mean(), 1.0);
}

TEST(Histogram, BinsSamplesCorrectly)
{
    Histogram h(0.0, 10.0, 10);
    for (int i = 0; i < 10; ++i)
        h.add(i + 0.5);
    for (size_t i = 0; i < 10; ++i)
        EXPECT_EQ(h.binCount(i), 1u);
    EXPECT_EQ(h.underflow(), 0u);
    EXPECT_EQ(h.overflow(), 0u);
}

TEST(Histogram, TracksOutOfRange)
{
    Histogram h(0.0, 1.0, 4);
    h.add(-1.0);
    h.add(2.0);
    h.add(1.0); // Upper edge counts as overflow.
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 2u);
    EXPECT_EQ(h.count(), 3u);
}

TEST(Histogram, QuantileApproximation)
{
    Histogram h(0.0, 100.0, 100);
    for (int i = 0; i < 100; ++i)
        h.add(i + 0.5);
    EXPECT_NEAR(h.quantile(0.5), 50.0, 1.5);
    EXPECT_NEAR(h.quantile(0.9), 90.0, 1.5);
}

TEST(Histogram, QuantileBoundaries)
{
    Histogram h(0.0, 100.0, 100);
    for (int i = 0; i < 100; ++i)
        h.add(i + 0.5);
    // q=0 is the first sample's bin; q=1 the last sample's bin —
    // q=1.0 used to fall off the scan and report hi_.
    EXPECT_DOUBLE_EQ(h.quantile(0.0), 0.5);
    EXPECT_DOUBLE_EQ(h.quantile(1.0), 99.5);
    // Out-of-range q clamps instead of producing garbage ranks.
    EXPECT_DOUBLE_EQ(h.quantile(-0.5), h.quantile(0.0));
    EXPECT_DOUBLE_EQ(h.quantile(2.0), h.quantile(1.0));
}

TEST(Histogram, QuantileMassInOneBin)
{
    // All samples in one interior bin: every quantile is that bin's
    // midpoint. q=1.0 used to report hi_ because the cumulative scan
    // used a strict comparison.
    Histogram h(0.0, 10.0, 10);
    for (int i = 0; i < 5; ++i)
        h.add(3.4);
    EXPECT_DOUBLE_EQ(h.quantile(0.0), 3.5);
    EXPECT_DOUBLE_EQ(h.quantile(0.5), 3.5);
    EXPECT_DOUBLE_EQ(h.quantile(1.0), 3.5);
}

TEST(Histogram, QuantileUnderflowBoundary)
{
    // 5 underflow samples + 5 in the first bin. The median rank (5)
    // is exactly the underflow count; that boundary used to be
    // misclassified by an off-by-one and land in the first bin.
    Histogram h(0.0, 10.0, 10);
    for (int i = 0; i < 5; ++i)
        h.add(-1.0);
    for (int i = 0; i < 5; ++i)
        h.add(0.5);
    EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);  // lo_: still underflow.
    EXPECT_DOUBLE_EQ(h.quantile(0.6), 0.5);  // First real bin.
    EXPECT_DOUBLE_EQ(h.quantile(1.0), 0.5);
}

TEST(Histogram, QuantileAllOverflow)
{
    Histogram h(0.0, 1.0, 4);
    h.add(5.0);
    h.add(6.0);
    EXPECT_DOUBLE_EQ(h.quantile(0.5), 1.0);
    EXPECT_DOUBLE_EQ(h.quantile(1.0), 1.0);
}

TEST(HistogramDeathTest, RejectsEmptyRange)
{
    EXPECT_DEATH(Histogram(1.0, 1.0, 4), "range");
}

TEST(TimeWeightedStat, ConstantSignal)
{
    TimeWeightedStat s;
    s.set(0.0, 5.0);
    EXPECT_DOUBLE_EQ(s.average(10.0), 5.0);
}

TEST(TimeWeightedStat, StepSignal)
{
    TimeWeightedStat s;
    s.set(0.0, 0.0);
    s.set(5.0, 1.0);
    // Half the interval at 0, half at 1.
    EXPECT_DOUBLE_EQ(s.average(10.0), 0.5);
}

TEST(TimeWeightedStat, WeightsByDuration)
{
    TimeWeightedStat s;
    s.set(0.0, 2.0);
    s.set(1.0, 10.0);
    // 1s at 2.0, 3s at 10.0 -> (2 + 30) / 4 = 8.
    EXPECT_DOUBLE_EQ(s.average(4.0), 8.0);
}

} // namespace
} // namespace wsva
