#include "workload/vbench.h"

#include <gtest/gtest.h>

#include <set>

#include "video/codec/decoder.h"
#include "video/codec/encoder.h"
#include "video/metrics.h"

namespace wsva::workload {
namespace {

TEST(Vbench, HasFifteenUniqueClips)
{
    const auto corpus = vbenchCorpus(128, 8);
    EXPECT_EQ(corpus.size(), 15u);
    std::set<std::string> names;
    for (const auto &clip : corpus)
        names.insert(clip.name);
    EXPECT_EQ(names.size(), 15u);
}

TEST(Vbench, ClipLookup)
{
    const auto corpus = vbenchCorpus(128, 8);
    EXPECT_EQ(vbenchClip(corpus, "holi").name, "holi");
    EXPECT_EQ(vbenchClip(corpus, "presentation").spec.screen_content,
              true);
}

TEST(VbenchDeathTest, UnknownClipIsFatal)
{
    const auto corpus = vbenchCorpus(128, 8);
    EXPECT_EXIT(vbenchClip(corpus, "nope"),
                testing::ExitedWithCode(1), "no vbench clip");
}

TEST(Vbench, ClipsGenerateAtRequestedGeometry)
{
    const auto corpus = vbenchCorpus(160, 6);
    for (const auto &clip : corpus) {
        EXPECT_EQ(clip.spec.width, 160) << clip.name;
        EXPECT_EQ(clip.spec.frame_count, 6) << clip.name;
        EXPECT_EQ(clip.spec.width % 2, 0);
        EXPECT_EQ(clip.spec.height % 2, 0);
        auto frame = wsva::video::generateFrameAt(clip.spec, 0);
        EXPECT_TRUE(frame.valid()) << clip.name;
    }
}

TEST(Vbench, EntropySpreadMatchesSuiteDesign)
{
    // The suite's defining property (and Figure 7's): screen content
    // compresses far better than the high-motion noisy clips. Check
    // compressed sizes at a fixed quantizer.
    const auto corpus = vbenchCorpus(128, 8);
    auto encode_bytes = [&](const std::string &name) {
        const auto &clip = vbenchClip(corpus, name);
        auto frames = wsva::video::generateVideo(clip.spec);
        wsva::video::codec::EncoderConfig cfg;
        cfg.codec = wsva::video::codec::CodecType::VP9;
        cfg.width = clip.spec.width;
        cfg.height = clip.spec.height;
        cfg.base_qp = 32;
        cfg.gop_length = 8;
        return wsva::video::codec::encodeSequence(cfg, frames)
            .bytes.size();
    };
    const auto easy = encode_bytes("presentation");
    const auto hard = encode_bytes("holi");
    EXPECT_GT(hard, 2 * easy);
}

} // namespace
} // namespace wsva::workload
