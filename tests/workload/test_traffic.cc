#include "workload/traffic.h"

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <vector>

namespace wsva::workload {
namespace {

using wsva::cluster::TranscodeStep;
using wsva::video::codec::CodecType;

TEST(UploadTraffic, GeneratesChunkedVideos)
{
    UploadTrafficConfig cfg;
    cfg.uploads_per_second = 2.0;
    cfg.seed = 5;
    UploadTraffic gen(cfg);
    std::map<uint64_t, int> chunks_per_video;
    for (int t = 0; t < 200; ++t) {
        for (const auto &step : gen.arrivals(t, 1.0))
            ++chunks_per_video[step.video_id];
    }
    EXPECT_GT(gen.videosGenerated(), 200u);
    EXPECT_FALSE(chunks_per_video.empty());
}

TEST(UploadTraffic, PoissonRateApproximatelyHolds)
{
    UploadTrafficConfig cfg;
    cfg.uploads_per_second = 3.0;
    cfg.seed = 7;
    UploadTraffic gen(cfg);
    for (int t = 0; t < 1000; ++t)
        gen.arrivals(t, 1.0);
    EXPECT_NEAR(static_cast<double>(gen.videosGenerated()), 3000.0,
                300.0);
}

TEST(UploadTraffic, MotStepsHaveLadders)
{
    UploadTrafficConfig cfg;
    cfg.uploads_per_second = 5.0;
    cfg.use_mot = true;
    UploadTraffic gen(cfg);
    bool saw_ladder = false;
    for (int t = 0; t < 50 && !saw_ladder; ++t) {
        for (const auto &step : gen.arrivals(t, 1.0)) {
            if (step.outputs.size() > 1)
                saw_ladder = true;
        }
    }
    EXPECT_TRUE(saw_ladder);
}

TEST(UploadTraffic, SotModeEmitsPerRungSteps)
{
    UploadTrafficConfig cfg;
    cfg.uploads_per_second = 5.0;
    cfg.use_mot = false;
    cfg.seed = 9;
    UploadTraffic gen(cfg);
    for (int t = 0; t < 50; ++t) {
        for (const auto &step : gen.arrivals(t, 1.0))
            ASSERT_EQ(step.outputs.size(), 1u);
    }
}

TEST(UploadTraffic, Vp9FractionControlsCodecMix)
{
    UploadTrafficConfig cfg;
    cfg.uploads_per_second = 5.0;
    cfg.vp9_fraction = 0.0;
    cfg.seed = 11;
    UploadTraffic gen(cfg);
    for (int t = 0; t < 50; ++t) {
        for (const auto &step : gen.arrivals(t, 1.0))
            ASSERT_EQ(step.codec, CodecType::H264);
    }
}

TEST(UploadTraffic, ResolutionMixFavors720p1080p)
{
    UploadTrafficConfig cfg;
    cfg.uploads_per_second = 10.0;
    cfg.seed = 13;
    UploadTraffic gen(cfg);
    std::map<int, int> by_height;
    std::map<uint64_t, int> seen_videos;
    for (int t = 0; t < 500; ++t) {
        for (const auto &step : gen.arrivals(t, 1.0)) {
            if (seen_videos.insert({step.video_id, 1}).second)
                ++by_height[step.input.height];
        }
    }
    const int hd = by_height[720] + by_height[1080];
    int total = 0;
    for (auto &[h, n] : by_height)
        total += n;
    EXPECT_GT(hd, total / 2);
    EXPECT_GT(by_height[2160], 0);
}

// Regression: the old inline Knuth sampler underflowed exp(-lambda)
// and capped every window near 745 arrivals regardless of the
// configured rate; warehouse-scale rates must keep their full mean.
TEST(UploadTraffic, WarehouseScaleArrivalsNotCapped)
{
    UploadTrafficConfig cfg;
    cfg.uploads_per_second = 1e4;
    cfg.mean_video_seconds = 10.0; // Keep the step count sane.
    cfg.vp9_fraction = 0.0;
    cfg.seed = 21;
    UploadTraffic gen(cfg);
    const int windows = 50;
    for (int t = 0; t < windows; ++t)
        gen.arrivals(t, 1.0);
    // Sample mean within 3 sigma of lambda (sigma of the mean =
    // sqrt(lambda / windows) = ~14; use the exact bound).
    const double mean =
        static_cast<double>(gen.videosGenerated()) / windows;
    EXPECT_NEAR(mean, 1e4, 3.0 * std::sqrt(1e4 / windows));
}

// The old generator truncated seconds*fps/chunk_frames and stamped
// every step with the full chunk length: offered frames drifted from
// the configured durations. Conservation must now be exact.
TEST(UploadTraffic, FramesConservation)
{
    UploadTrafficConfig cfg;
    cfg.uploads_per_second = 4.0;
    cfg.vp9_fraction = 0.0; // One MOT step per chunk.
    cfg.use_mot = true;
    cfg.seed = 23;
    UploadTraffic gen(cfg);
    uint64_t step_frames = 0;
    for (int t = 0; t < 300; ++t) {
        for (const auto &step : gen.arrivals(t, 1.0)) {
            ASSERT_GE(step.frames, 1);
            ASSERT_LE(step.frames, cfg.chunk_frames);
            step_frames += static_cast<uint64_t>(step.frames);
        }
    }
    ASSERT_GT(gen.videosGenerated(), 100u);
    // Emitted frames match the generator's own ledger exactly ...
    EXPECT_EQ(step_frames, gen.totalSourceFrames());
    // ... and the ledger matches seconds x fps up to per-video
    // rounding (llround is within 0.5 frame per video).
    EXPECT_NEAR(static_cast<double>(step_frames),
                gen.totalVideoSeconds() * cfg.fps,
                0.5 * static_cast<double>(gen.videosGenerated()));
}

TEST(UploadTraffic, ShortVideosKeepTrailingFrames)
{
    UploadTrafficConfig cfg;
    cfg.uploads_per_second = 5.0;
    cfg.mean_video_seconds = 6.0; // Mostly sub-chunk videos.
    cfg.chunk_frames = 150;
    cfg.vp9_fraction = 0.0;
    cfg.seed = 25;
    UploadTraffic gen(cfg);
    bool saw_partial = false;
    for (int t = 0; t < 50; ++t) {
        for (const auto &step : gen.arrivals(t, 1.0)) {
            if (step.frames < cfg.chunk_frames)
                saw_partial = true;
        }
    }
    EXPECT_TRUE(saw_partial);
}

TEST(UploadTraffic, OptimizerProbesEmitBatchSotSteps)
{
    UploadTrafficConfig cfg;
    cfg.uploads_per_second = 10.0;
    cfg.optimizer_probes = true;
    cfg.optimizer_probe_points = 5;
    cfg.seed = 27;
    UploadTraffic gen(cfg);
    uint64_t probe_steps_seen = 0;
    for (int t = 0; t < 400; ++t) {
        for (const auto &step : gen.arrivals(t, 1.0)) {
            if (step.priority == wsva::cluster::Priority::Batch) {
                ++probe_steps_seen;
                EXPECT_EQ(step.outputs.size(), 1u);
                EXPECT_FALSE(step.two_pass);
                EXPECT_EQ(step.chunk_index, 0);
                EXPECT_EQ(step.codec, CodecType::VP9);
            }
        }
    }
    // The Popular bucket is a thin sliver but not empty at this size.
    EXPECT_GT(gen.videosProbed(), 0u);
    EXPECT_EQ(gen.probeStepsGenerated(), gen.videosProbed() * 5u);
    EXPECT_EQ(probe_steps_seen, gen.probeStepsGenerated());
}

TEST(UploadTraffic, ProbeToggleDoesNotPerturbUploadStream)
{
    UploadTrafficConfig cfg;
    cfg.uploads_per_second = 3.0;
    cfg.seed = 29;
    UploadTraffic plain(cfg);
    cfg.optimizer_probes = true;
    UploadTraffic probed(cfg);
    for (int t = 0; t < 100; ++t) {
        const auto a = plain.arrivals(t, 1.0);
        auto b = probed.arrivals(t, 1.0);
        // Drop the extra probe steps; the upload stream itself must
        // be identical step-for-step in count and shape.
        std::vector<wsva::cluster::TranscodeStep> uploads;
        for (auto &step : b) {
            if (step.priority != wsva::cluster::Priority::Batch)
                uploads.push_back(step);
        }
        ASSERT_EQ(a.size(), uploads.size());
        for (size_t i = 0; i < a.size(); ++i) {
            EXPECT_EQ(a[i].video_id, uploads[i].video_id);
            EXPECT_EQ(a[i].frames, uploads[i].frames);
            EXPECT_EQ(a[i].codec, uploads[i].codec);
            EXPECT_EQ(a[i].input.width, uploads[i].input.width);
        }
    }
    EXPECT_EQ(plain.videosGenerated(), probed.videosGenerated());
    EXPECT_EQ(plain.totalSourceFrames(), probed.totalSourceFrames());
}

TEST(LiveTraffic, EmitsOneStepPerStreamPerSegment)
{
    LiveTrafficConfig cfg;
    cfg.concurrent_streams = 7;
    cfg.segment_seconds = 2.0;
    LiveTraffic gen(cfg);
    auto none = gen.arrivals(1.0, 1.0);
    EXPECT_TRUE(none.empty());
    auto batch = gen.arrivals(2.0, 1.0);
    EXPECT_EQ(batch.size(), 7u);
    for (const auto &step : batch) {
        EXPECT_EQ(step.use_case, wsva::cluster::UseCase::Live);
        EXPECT_FALSE(step.two_pass);
        EXPECT_EQ(step.frames, 60);
    }
}

TEST(LiveTraffic, RateIsStable)
{
    LiveTrafficConfig cfg;
    cfg.concurrent_streams = 3;
    cfg.segment_seconds = 2.0;
    LiveTraffic gen(cfg);
    size_t total = 0;
    for (int t = 0; t < 100; ++t)
        total += gen.arrivals(t, 1.0).size();
    EXPECT_EQ(total, 3u * 50u);
}

// Regression: the old cadence loop subtracted segment_seconds from a
// carry accumulator each emission, so a non-integer segment/tick
// ratio drifted (emitting 39 segments where 40 elapsed), and frames
// were truncated (seg 2.497 @ 30fps = 74.91 -> 74 every segment).
// The cumulative-total cadence makes both exact.
TEST(LiveTraffic, FractionalSegmentCadenceIsExact)
{
    LiveTrafficConfig cfg;
    cfg.concurrent_streams = 1;
    cfg.segment_seconds = 2.497;
    cfg.fps = 30.0;
    LiveTraffic gen(cfg);
    uint64_t emitted = 0;
    for (int t = 0; t < 1000; ++t)
        emitted += gen.arrivals(t, 1.0).size();
    // 1000 s / 2.497 s = 400.48 -> exactly 400 whole segments.
    EXPECT_EQ(emitted, 400u);
    EXPECT_EQ(gen.totalSegments(), 400u);
    // Total frames pinned to the true stream rate: llround(400 *
    // 2.497 * 30) = 29964, not 400 * 74 = 29600 (per-segment
    // truncation).
    EXPECT_EQ(gen.totalFrames(),
              static_cast<uint64_t>(std::llround(400 * 2.497 * 30.0)));
}

// Fractional ticks must reach the same totals: segment emission
// depends only on cumulative elapsed time, not on how dt quantizes it.
TEST(LiveTraffic, CadenceIndependentOfTickQuantum)
{
    LiveTrafficConfig cfg;
    cfg.concurrent_streams = 2;
    cfg.segment_seconds = 2.0;
    LiveTraffic coarse(cfg);
    LiveTraffic fine(cfg);
    for (int t = 0; t < 30; ++t)
        coarse.arrivals(t, 1.0);
    for (int t = 0; t < 100; ++t)
        fine.arrivals(t * 0.3, 0.3); // 30 s in 0.3 s ticks.
    EXPECT_EQ(coarse.totalSegments(), fine.totalSegments());
    EXPECT_EQ(coarse.totalFrames(), fine.totalFrames());
}

TEST(LiveTraffic, DeadlineStampedOnEachSegment)
{
    LiveTrafficConfig cfg;
    cfg.concurrent_streams = 2;
    cfg.segment_seconds = 2.0;
    cfg.deadline_seconds = 5.0;
    LiveTraffic gen(cfg);
    size_t seen = 0;
    for (int t = 0; t < 10; ++t) {
        for (const auto &step : gen.arrivals(t, 1.0)) {
            ++seen;
            ASSERT_TRUE(step.hasDeadline());
            EXPECT_EQ(step.priority, wsva::cluster::Priority::Critical);
            // Segment k becomes available at (k+1)*seg; its deadline
            // is that plus the budget.
            const double available =
                (step.chunk_index + 1) * cfg.segment_seconds;
            EXPECT_DOUBLE_EQ(step.deadline_time, available + 5.0);
        }
    }
    EXPECT_GT(seen, 0u);
    // Default config leaves steps deadline-free (pre-deadline pin).
    LiveTraffic plain(LiveTrafficConfig{});
    for (const auto &step : plain.arrivals(2.0, 2.0))
        EXPECT_FALSE(step.hasDeadline());
}

TEST(LiveTraffic, ChannelChurnHoldsSteadyStatePopulation)
{
    LiveTrafficConfig cfg;
    cfg.concurrent_streams = 0;
    cfg.segment_seconds = 2.0;
    cfg.channels_per_second = 2.0;
    cfg.mean_channel_seconds = 30.0;
    cfg.seed = 17;
    LiveTraffic gen(cfg);
    uint64_t steps = 0;
    for (int t = 0; t < 300; ++t)
        steps += gen.arrivals(t, 1.0).size();
    // Little's law: ~rate x mean lifetime = 60 channels in steady
    // state; loose 3-sigma-ish bounds keep the test deterministic-
    // seed-stable without pinning the RNG stream.
    EXPECT_GT(gen.channelsStarted(), 450u);
    EXPECT_LT(gen.channelsStarted(), 750u);
    EXPECT_GT(gen.activeChannels(), 30u);
    EXPECT_LT(gen.activeChannels(), 100u);
    // Each channel emits roughly lifetime/segment_seconds segments.
    EXPECT_GT(steps, 2000u);
    EXPECT_EQ(gen.totalSegments(), steps);
}

TEST(LiveTraffic, SurgeWindowMultipliesChannelStarts)
{
    LiveTrafficConfig base;
    base.concurrent_streams = 0;
    base.channels_per_second = 1.0;
    base.mean_channel_seconds = 20.0;
    base.seed = 19;
    LiveTrafficConfig surged = base;
    surged.surge_multiplier = 10.0;
    surged.surge_start = 100.0;
    surged.surge_end = 150.0;
    LiveTraffic a(base);
    LiveTraffic b(surged);
    for (int t = 0; t < 200; ++t) {
        a.arrivals(t, 1.0);
        b.arrivals(t, 1.0);
    }
    // Expected starts: 200 vs 200 + 9*50 = 650.
    EXPECT_GT(b.channelsStarted(), a.channelsStarted() + 300);
}

TEST(RegionalUploadTraffic, IdsAreNamespacedAndOriginTagged)
{
    UploadTrafficConfig cfg;
    cfg.uploads_per_second = 2.0;
    cfg.seed = 33;
    RegionalUploadTraffic gen(3, cfg);
    uint64_t steps_seen = 0;
    for (int t = 0; t < 100; ++t) {
        for (int r = 0; r < gen.regions(); ++r) {
            for (const auto &step : gen.arrivals(r, t, 1.0)) {
                ++steps_seen;
                ASSERT_EQ(step.origin_region, r);
                // Region r's ids live strictly inside its namespace:
                // a step spilled into another region's sim can never
                // collide with that region's own ids.
                ASSERT_GE(step.id, RegionalUploadTraffic::idBase(r));
                ASSERT_LT(step.id, RegionalUploadTraffic::idBase(r + 1));
                ASSERT_GE(step.video_id,
                          RegionalUploadTraffic::idBase(r));
                ASSERT_LT(step.video_id,
                          RegionalUploadTraffic::idBase(r + 1));
            }
        }
    }
    EXPECT_GT(steps_seen, 0u);
    EXPECT_EQ(gen.stepsGenerated(), steps_seen);
}

TEST(RegionalUploadTraffic, RegionsDrawIndependentButSeededStreams)
{
    UploadTrafficConfig cfg;
    cfg.uploads_per_second = 2.0;
    cfg.seed = 35;
    RegionalUploadTraffic a(2, cfg);
    RegionalUploadTraffic b(2, cfg);
    uint64_t per_region[2] = {0, 0};
    for (int t = 0; t < 200; ++t) {
        for (int r = 0; r < 2; ++r) {
            const auto sa = a.arrivals(r, t, 1.0);
            const auto sb = b.arrivals(r, t, 1.0);
            // Same seed, same windows: byte-for-byte reproducible.
            ASSERT_EQ(sa.size(), sb.size());
            for (size_t i = 0; i < sa.size(); ++i) {
                ASSERT_EQ(sa[i].id, sb[i].id);
                ASSERT_EQ(sa[i].video_id, sb[i].video_id);
                ASSERT_EQ(sa[i].frames, sb[i].frames);
            }
            per_region[r] += sa.size();
        }
    }
    // Derived seeds: the regions draw different streams, but at the
    // same configured rate.
    EXPECT_GT(per_region[0], 0u);
    EXPECT_GT(per_region[1], 0u);
    // Continuous totals tie only if the streams were identical.
    EXPECT_NE(a.regionTraffic(0).totalVideoSeconds(),
              a.regionTraffic(1).totalVideoSeconds());
}

} // namespace
} // namespace wsva::workload
