#include "workload/traffic.h"

#include <gtest/gtest.h>

#include <map>

namespace wsva::workload {
namespace {

using wsva::cluster::TranscodeStep;
using wsva::video::codec::CodecType;

TEST(UploadTraffic, GeneratesChunkedVideos)
{
    UploadTrafficConfig cfg;
    cfg.uploads_per_second = 2.0;
    cfg.seed = 5;
    UploadTraffic gen(cfg);
    std::map<uint64_t, int> chunks_per_video;
    for (int t = 0; t < 200; ++t) {
        for (const auto &step : gen.arrivals(t, 1.0))
            ++chunks_per_video[step.video_id];
    }
    EXPECT_GT(gen.videosGenerated(), 200u);
    EXPECT_FALSE(chunks_per_video.empty());
}

TEST(UploadTraffic, PoissonRateApproximatelyHolds)
{
    UploadTrafficConfig cfg;
    cfg.uploads_per_second = 3.0;
    cfg.seed = 7;
    UploadTraffic gen(cfg);
    for (int t = 0; t < 1000; ++t)
        gen.arrivals(t, 1.0);
    EXPECT_NEAR(static_cast<double>(gen.videosGenerated()), 3000.0,
                300.0);
}

TEST(UploadTraffic, MotStepsHaveLadders)
{
    UploadTrafficConfig cfg;
    cfg.uploads_per_second = 5.0;
    cfg.use_mot = true;
    UploadTraffic gen(cfg);
    bool saw_ladder = false;
    for (int t = 0; t < 50 && !saw_ladder; ++t) {
        for (const auto &step : gen.arrivals(t, 1.0)) {
            if (step.outputs.size() > 1)
                saw_ladder = true;
        }
    }
    EXPECT_TRUE(saw_ladder);
}

TEST(UploadTraffic, SotModeEmitsPerRungSteps)
{
    UploadTrafficConfig cfg;
    cfg.uploads_per_second = 5.0;
    cfg.use_mot = false;
    cfg.seed = 9;
    UploadTraffic gen(cfg);
    for (int t = 0; t < 50; ++t) {
        for (const auto &step : gen.arrivals(t, 1.0))
            ASSERT_EQ(step.outputs.size(), 1u);
    }
}

TEST(UploadTraffic, Vp9FractionControlsCodecMix)
{
    UploadTrafficConfig cfg;
    cfg.uploads_per_second = 5.0;
    cfg.vp9_fraction = 0.0;
    cfg.seed = 11;
    UploadTraffic gen(cfg);
    for (int t = 0; t < 50; ++t) {
        for (const auto &step : gen.arrivals(t, 1.0))
            ASSERT_EQ(step.codec, CodecType::H264);
    }
}

TEST(UploadTraffic, ResolutionMixFavors720p1080p)
{
    UploadTrafficConfig cfg;
    cfg.uploads_per_second = 10.0;
    cfg.seed = 13;
    UploadTraffic gen(cfg);
    std::map<int, int> by_height;
    std::map<uint64_t, int> seen_videos;
    for (int t = 0; t < 500; ++t) {
        for (const auto &step : gen.arrivals(t, 1.0)) {
            if (seen_videos.insert({step.video_id, 1}).second)
                ++by_height[step.input.height];
        }
    }
    const int hd = by_height[720] + by_height[1080];
    int total = 0;
    for (auto &[h, n] : by_height)
        total += n;
    EXPECT_GT(hd, total / 2);
    EXPECT_GT(by_height[2160], 0);
}

TEST(LiveTraffic, EmitsOneStepPerStreamPerSegment)
{
    LiveTrafficConfig cfg;
    cfg.concurrent_streams = 7;
    cfg.segment_seconds = 2.0;
    LiveTraffic gen(cfg);
    auto none = gen.arrivals(1.0, 1.0);
    EXPECT_TRUE(none.empty());
    auto batch = gen.arrivals(2.0, 1.0);
    EXPECT_EQ(batch.size(), 7u);
    for (const auto &step : batch) {
        EXPECT_EQ(step.use_case, wsva::cluster::UseCase::Live);
        EXPECT_FALSE(step.two_pass);
        EXPECT_EQ(step.frames, 60);
    }
}

TEST(LiveTraffic, RateIsStable)
{
    LiveTrafficConfig cfg;
    cfg.concurrent_streams = 3;
    cfg.segment_seconds = 2.0;
    LiveTraffic gen(cfg);
    size_t total = 0;
    for (int t = 0; t < 100; ++t)
        total += gen.arrivals(t, 1.0).size();
    EXPECT_EQ(total, 3u * 50u);
}

} // namespace
} // namespace wsva::workload
