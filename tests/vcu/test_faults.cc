#include "vcu/faults.h"

#include <gtest/gtest.h>

namespace wsva::vcu {
namespace {

TEST(Faults, ZeroRatesNeverFault)
{
    VcuChip chip;
    FaultInjector inj(FaultRates{}, 1);
    for (int i = 0; i < 1000; ++i)
        EXPECT_FALSE(inj.advance(chip, 1.0));
    EXPECT_FALSE(chip.disabled());
    EXPECT_EQ(chip.telemetry().correctable_ecc, 0u);
}

TEST(Faults, HighRateFailsQuickly)
{
    VcuChip chip;
    FaultRates rates;
    rates.vcu_failure_per_hour = 100.0;
    FaultInjector inj(rates, 2);
    bool faulted = false;
    for (int i = 0; i < 10 && !faulted; ++i)
        faulted = inj.advance(chip, 1.0);
    EXPECT_TRUE(faulted);
    EXPECT_TRUE(chip.disabled());
}

TEST(Faults, EccEventsAccumulateInTelemetry)
{
    VcuChip chip;
    FaultRates rates;
    rates.correctable_ecc_per_hour = 10.0;
    FaultInjector inj(rates, 3);
    for (int i = 0; i < 100; ++i)
        inj.advance(chip, 1.0);
    EXPECT_GT(chip.telemetry().correctable_ecc, 50u);
    EXPECT_FALSE(chip.disabled()); // Correctable errors only logged.
}

TEST(Faults, SilentFaultIsNotReportedAsHard)
{
    VcuChip chip;
    FaultRates rates;
    rates.silent_fault_per_hour = 100.0;
    FaultInjector inj(rates, 4);
    bool hard = false;
    for (int i = 0; i < 10; ++i)
        hard |= inj.advance(chip, 1.0);
    EXPECT_FALSE(hard);
    EXPECT_TRUE(chip.hasSilentFault());
    // ... but the golden check catches it.
    EXPECT_FALSE(chip.runGoldenCheck());
}

TEST(Faults, CoreFailureShrinksChip)
{
    VcuChip chip;
    FaultRates rates;
    rates.core_failure_per_hour = 50.0;
    FaultInjector inj(rates, 5);
    for (int i = 0; i < 20; ++i)
        inj.advance(chip, 1.0);
    EXPECT_LT(chip.usableEncoderCores(), 10);
}

TEST(Faults, RatesScaleWithExposureTime)
{
    // Over the same simulated hours, the expected number of faulted
    // chips is the same whether stepped finely or coarsely.
    auto count_faults = [](double step, uint64_t seed_base) {
        int faulted = 0;
        for (uint64_t v = 0; v < 300; ++v) {
            VcuChip chip;
            FaultRates rates;
            rates.vcu_failure_per_hour = 0.01;
            FaultInjector inj(rates, seed_base + v);
            for (double t = 0.0; t < 100.0; t += step)
                inj.advance(chip, step);
            faulted += chip.disabled();
        }
        return faulted;
    };
    const int fine = count_faults(1.0, 1000);
    const int coarse = count_faults(10.0, 5000);
    // E = 300 * (1 - exp(-1)) ~ 190 either way; allow sampling noise.
    EXPECT_NEAR(fine, 190, 40);
    EXPECT_NEAR(coarse, 190, 40);
}

TEST(Faults, DisabledChipStopsAccumulating)
{
    VcuChip chip;
    chip.disable();
    FaultRates rates;
    rates.correctable_ecc_per_hour = 100.0;
    FaultInjector inj(rates, 7);
    for (int i = 0; i < 10; ++i)
        EXPECT_FALSE(inj.advance(chip, 1.0));
    EXPECT_EQ(chip.telemetry().correctable_ecc, 0u);
}

} // namespace
} // namespace wsva::vcu
