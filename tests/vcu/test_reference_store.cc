#include "vcu/reference_store.h"

#include <gtest/gtest.h>

namespace wsva::vcu {
namespace {

TEST(ReferenceStore, HitAfterFetch)
{
    ReferenceStore store(64 * kRefBlockPixels);
    EXPECT_FALSE(store.access(0, 0));
    EXPECT_TRUE(store.access(0, 0));
    EXPECT_EQ(store.hits(), 1u);
    EXPECT_EQ(store.misses(), 1u);
}

TEST(ReferenceStore, LruEvictsOldest)
{
    ReferenceStore store(2 * kRefBlockPixels); // Two blocks.
    store.access(0, 0);
    store.access(1, 0);
    store.access(2, 0); // Evicts (0,0).
    EXPECT_FALSE(store.access(0, 0));
}

TEST(ReferenceStore, TouchRefreshesLru)
{
    ReferenceStore store(2 * kRefBlockPixels);
    store.access(0, 0);
    store.access(1, 0);
    store.access(0, 0); // Refresh (0,0) -> (1,0) is now LRU.
    store.access(2, 0); // Evicts (1,0).
    EXPECT_TRUE(store.access(0, 0));
    EXPECT_FALSE(store.access(1, 0));
}

TEST(ReferenceStore, FlushDropsEverything)
{
    ReferenceStore store(16 * kRefBlockPixels);
    store.access(0, 0);
    store.flush();
    EXPECT_FALSE(store.access(0, 0));
}

TEST(SearchTraffic, PaperStoreLoadsEachPixelAtMostTwice)
{
    // Footnote 5: with the 144K-pixel store and 512-wide tile
    // columns, each reference pixel is loaded at most twice during a
    // frame's processing.
    const auto r = simulateSearchTraffic(1920, 1080, 128, 64,
                                         kVp9StorePixels, 512);
    EXPECT_LE(r.fetch_ratio, 2.0);
    EXPECT_GE(r.fetch_ratio, 0.9);
}

TEST(SearchTraffic, TinyStoreThrashes)
{
    const auto big = simulateSearchTraffic(1920, 1080, 128, 64,
                                           kVp9StorePixels, 512);
    const auto tiny = simulateSearchTraffic(1920, 1080, 128, 64,
                                            8 * kRefBlockPixels, 512);
    EXPECT_GT(tiny.fetch_ratio, 3.0 * big.fetch_ratio);
}

TEST(SearchTraffic, H264RasterStoreNeedsWiderCapacity)
{
    // Raster scan across the full width: the 394K store keeps the
    // window resident for <= 2048-wide video (footnote 5).
    const auto ok = simulateSearchTraffic(1920, 1080, 128, 64,
                                          kH264StorePixels, 0);
    EXPECT_LE(ok.fetch_ratio, 2.0);
    // The small VP9 store thrashes in raster mode at this width.
    const auto bad = simulateSearchTraffic(1920, 1080, 128, 64,
                                           kVp9StorePixels, 0);
    EXPECT_GT(bad.fetch_ratio, ok.fetch_ratio * 1.5);
}

TEST(SearchTraffic, WiderWindowMoreTraffic)
{
    const auto narrow = simulateSearchTraffic(1280, 720, 64, 32,
                                              kVp9StorePixels, 512);
    const auto wide = simulateSearchTraffic(1280, 720, 256, 96,
                                            kVp9StorePixels, 512);
    EXPECT_GE(wide.misses, narrow.misses);
}

TEST(SearchTraffic, DeterministicReplay)
{
    const auto a = simulateSearchTraffic(1280, 720, 128, 64,
                                         kVp9StorePixels, 512);
    const auto b = simulateSearchTraffic(1280, 720, 128, 64,
                                         kVp9StorePixels, 512);
    EXPECT_EQ(a.misses, b.misses);
    EXPECT_EQ(a.hits, b.hits);
}

} // namespace
} // namespace wsva::vcu
