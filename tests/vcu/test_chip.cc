#include "vcu/chip.h"

#include <gtest/gtest.h>

namespace wsva::vcu {
namespace {

VcuOp
makeOp(uint64_t id, OpKind kind, double secs, double bw = 1.0,
       uint64_t bytes = 100 << 20)
{
    VcuOp op;
    op.id = id;
    op.kind = kind;
    op.core_seconds = secs;
    op.dram_gibps = bw;
    op.dram_bytes = bytes;
    return op;
}

TEST(Chip, SingleOpCompletesOnTime)
{
    VcuChip chip;
    ASSERT_TRUE(chip.submit(makeOp(1, OpKind::Encode, 2.0)));
    std::vector<uint64_t> done;
    chip.advance(1.0, done);
    EXPECT_TRUE(done.empty());
    chip.advance(1.01, done);
    ASSERT_EQ(done.size(), 1u);
    EXPECT_EQ(done[0], 1u);
    EXPECT_TRUE(chip.idle());
}

TEST(Chip, TenEncodesRunConcurrently)
{
    VcuChip chip;
    for (uint64_t i = 0; i < 10; ++i)
        ASSERT_TRUE(chip.submit(makeOp(i, OpKind::Encode, 1.0)));
    EXPECT_EQ(chip.busyEncoderCores(), 10);
    EXPECT_DOUBLE_EQ(chip.encoderUtilization(), 1.0);
    std::vector<uint64_t> done;
    chip.advance(1.01, done);
    EXPECT_EQ(done.size(), 10u);
}

TEST(Chip, EleventhEncodeQueues)
{
    VcuChip chip;
    for (uint64_t i = 0; i < 11; ++i)
        ASSERT_TRUE(chip.submit(makeOp(i, OpKind::Encode, 1.0)));
    EXPECT_EQ(chip.busyEncoderCores(), 10);
    EXPECT_EQ(chip.queuedOps(), 1u);
    std::vector<uint64_t> done;
    chip.advance(1.01, done);
    EXPECT_EQ(done.size(), 10u);
    EXPECT_EQ(chip.busyEncoderCores(), 1);
    chip.advance(1.01, done);
    EXPECT_EQ(done.size(), 11u);
}

TEST(Chip, DecoderCoresSeparateFromEncoderCores)
{
    VcuChip chip;
    for (uint64_t i = 0; i < 3; ++i)
        ASSERT_TRUE(chip.submit(makeOp(100 + i, OpKind::Decode, 1.0)));
    ASSERT_TRUE(chip.submit(makeOp(1, OpKind::Encode, 1.0)));
    EXPECT_EQ(chip.busyDecoderCores(), 3);
    EXPECT_EQ(chip.busyEncoderCores(), 1);
    EXPECT_DOUBLE_EQ(chip.decoderUtilization(), 1.0);
}

TEST(Chip, BandwidthContentionSlowsOps)
{
    // 10 ops each demanding 10 GiB/s against ~32 usable: ~3.2x slow.
    VcuChip chip;
    std::vector<uint64_t> done;
    for (uint64_t i = 0; i < 10; ++i)
        ASSERT_TRUE(chip.submit(makeOp(i, OpKind::Encode, 1.0, 10.0)));
    chip.advance(1.5, done);
    EXPECT_TRUE(done.empty()); // Would be done if uncontended.
    chip.advance(2.0, done);
    EXPECT_EQ(done.size(), 10u); // ~3.09s total at 32.4/100 of speed.
}

TEST(Chip, DramFootprintLimitsAdmission)
{
    VcuChip chip;
    // 8 GiB capacity: 11 x 700 MiB fits, 12 does not.
    for (uint64_t i = 0; i < 11; ++i) {
        ASSERT_TRUE(chip.submit(
            makeOp(i, OpKind::Encode, 1.0, 1.0, 700ull << 20)));
    }
    EXPECT_FALSE(
        chip.submit(makeOp(99, OpKind::Encode, 1.0, 1.0, 700ull << 20)));
    // Completion releases capacity.
    std::vector<uint64_t> done;
    chip.advance(5.0, done);
    EXPECT_TRUE(
        chip.submit(makeOp(99, OpKind::Encode, 1.0, 1.0, 700ull << 20)));
}

TEST(Chip, FailedCoreReducesCapacity)
{
    VcuChip chip;
    chip.failEncoderCore();
    chip.failEncoderCore();
    EXPECT_EQ(chip.usableEncoderCores(), 8);
    for (uint64_t i = 0; i < 10; ++i)
        ASSERT_TRUE(chip.submit(makeOp(i, OpKind::Encode, 1.0)));
    EXPECT_EQ(chip.busyEncoderCores(), 8);
    EXPECT_EQ(chip.queuedOps(), 2u);
}

TEST(Chip, DisableRejectsAndClears)
{
    VcuChip chip;
    ASSERT_TRUE(chip.submit(makeOp(1, OpKind::Encode, 1.0)));
    chip.disable();
    EXPECT_TRUE(chip.disabled());
    EXPECT_FALSE(chip.submit(makeOp(2, OpKind::Encode, 1.0)));
    EXPECT_EQ(chip.usableEncoderCores(), 0);
    std::vector<uint64_t> done;
    chip.advance(10.0, done);
    EXPECT_TRUE(done.empty()); // In-flight work was lost, not done.
}

TEST(Chip, GoldenCheckPassesHealthy)
{
    VcuChip chip;
    EXPECT_TRUE(chip.runGoldenCheck());
    EXPECT_EQ(chip.telemetry().resets, 1u);
}

TEST(Chip, GoldenCheckCatchesSilentFault)
{
    VcuChip chip;
    chip.setSilentFault(true);
    EXPECT_FALSE(chip.runGoldenCheck());
}

TEST(Chip, GoldenCheckCatchesUncorrectableEcc)
{
    VcuChip chip;
    chip.recordUncorrectableEcc();
    EXPECT_FALSE(chip.runGoldenCheck());
}

TEST(Chip, TelemetryTracksEcc)
{
    VcuChip chip;
    chip.recordCorrectableEcc(5);
    chip.recordUncorrectableEcc(2);
    EXPECT_EQ(chip.telemetry().correctable_ecc, 5u);
    EXPECT_EQ(chip.telemetry().uncorrectable_ecc, 2u);
}

TEST(Chip, TemperatureRisesUnderLoad)
{
    VcuChip chip;
    const double idle_temp = chip.telemetry().temperature_c;
    for (uint64_t i = 0; i < 10; ++i)
        chip.submit(makeOp(i, OpKind::Encode, 100.0));
    std::vector<uint64_t> done;
    for (int t = 0; t < 50; ++t)
        chip.advance(0.5, done);
    EXPECT_GT(chip.telemetry().temperature_c, idle_temp + 10.0);
}

} // namespace
} // namespace wsva::vcu
