#include "vcu/encoder_core.h"

#include <gtest/gtest.h>

namespace wsva::vcu {
namespace {

using wsva::video::codec::CodecType;

TEST(EncoderCore, Meets2160p60RealtimeCalibration)
{
    // Section 3.3.1: "Each encoder core can encode 2160p in real-
    // time, up to 60 FPS using three reference frames."
    EncoderCoreModel core;
    EncodeJob job;
    job.width = 3840;
    job.height = 2160;
    job.fps = 60.0;
    job.frame_count = 60;
    job.codec = CodecType::VP9;
    job.num_refs = 3;
    const auto est = core.estimate(job);
    EXPECT_TRUE(est.realtime);
    // ~0.5 Gpix/s equivalent throughput.
    EXPECT_NEAR(est.pixels_per_second / 1e9, 0.5, 0.1);
}

TEST(EncoderCore, ThroughputScalesNearLinearlyWithPixels)
{
    EncoderCoreModel core;
    EncodeJob big;
    big.width = 1920;
    big.height = 1080;
    big.frame_count = 30;
    EncodeJob small = big;
    small.width = 960;
    small.height = 540;
    const auto eb = core.estimate(big);
    const auto es = core.estimate(small);
    // 4x fewer pixels -> ~4x faster (within pipeline fill effects).
    EXPECT_NEAR(eb.seconds / es.seconds, 4.0, 0.5);
}

TEST(EncoderCore, DramBandwidthMatchesPaperEnvelope)
{
    // 2160p60: raw ~3.5 GiB/s; with reference compression typical
    // ~2 GiB/s (Section 3.3.1). Our model should land in that range.
    EncoderCoreModel core;
    EncodeJob job;
    job.width = 3840;
    job.height = 2160;
    job.fps = 60.0;
    job.frame_count = 60;
    job.num_refs = 3;
    const auto est = core.estimate(job);
    const double total = est.dram_read_gibps + est.dram_write_gibps;
    EXPECT_GT(total, 1.5);
    EXPECT_LT(total, 3.5);
}

TEST(EncoderCore, Vp9CostsMoreThanH264)
{
    EncoderCoreModel core;
    EncodeJob job;
    job.width = 1280;
    job.height = 720;
    job.frame_count = 10;
    job.codec = CodecType::H264;
    const double h264 = core.estimate(job).seconds;
    job.codec = CodecType::VP9;
    const double vp9 = core.estimate(job).seconds;
    EXPECT_GT(vp9, h264 * 1.1);
}

TEST(EncoderCore, MoreReferencesCostMore)
{
    EncoderCoreModel core;
    EncodeJob job;
    job.width = 1280;
    job.height = 720;
    job.frame_count = 10;
    job.num_refs = 1;
    const double one = core.estimate(job).seconds;
    job.num_refs = 3;
    const double three = core.estimate(job).seconds;
    EXPECT_GT(three, one * 1.05);
}

TEST(EncoderCore, TwoPassCostsMore)
{
    EncoderCoreModel core;
    EncodeJob job;
    job.width = 1280;
    job.height = 720;
    job.frame_count = 10;
    job.two_pass = false;
    const double single = core.estimate(job).seconds;
    job.two_pass = true;
    const double dual = core.estimate(job).seconds;
    EXPECT_NEAR(dual / single, 1.35, 0.01);
}

TEST(EncoderCore, PipelineUtilizationIsHigh)
{
    // The stage cycles are balanced and FIFOs absorb the mode
    // variability, so the bottleneck stage should be near-saturated.
    EncoderCoreModel core;
    EncodeJob job;
    job.width = 1920;
    job.height = 1080;
    job.frame_count = 1;
    const auto est = core.estimate(job);
    EXPECT_GT(est.bottleneck_utilization, 0.9);
}

TEST(EncoderCore, DeterministicEstimates)
{
    EncoderCoreModel core;
    EncodeJob job;
    job.width = 640;
    job.height = 360;
    job.frame_count = 5;
    const auto a = core.estimate(job);
    const auto b = core.estimate(job);
    EXPECT_EQ(a.seconds, b.seconds);
}

TEST(EncoderCore, LowLatencySmallFrameNotPipelineStarved)
{
    // Even a 144p frame should finish quickly (sub-millisecond).
    EncoderCoreModel core;
    EncodeJob job;
    job.width = 256;
    job.height = 144;
    job.frame_count = 1;
    const auto est = core.estimate(job);
    EXPECT_LT(est.seconds, 1e-3);
}

TEST(DecoderCore, FixedRateModel)
{
    DecoderCoreConfig cfg;
    const double t = decodeSeconds(cfg, 1920, 1080, 30);
    EXPECT_NEAR(t, 1920.0 * 1080 * 30 / cfg.pixel_rate, 1e-9);
}

TEST(DecoderCore, DecodeFasterThanEncode)
{
    // Decoding is orders of magnitude cheaper than encoding.
    EncoderCoreModel core;
    EncodeJob job;
    job.width = 1920;
    job.height = 1080;
    job.frame_count = 30;
    const double enc = core.estimate(job).seconds;
    const double dec = decodeSeconds(DecoderCoreConfig{}, 1920, 1080, 30);
    EXPECT_LT(dec, enc);
}

} // namespace
} // namespace wsva::vcu
