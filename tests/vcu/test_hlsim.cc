#include "vcu/hlsim.h"

#include <gtest/gtest.h>

namespace wsva::vcu {
namespace {

TEST(Channel, PushPopFifoOrder)
{
    Channel<int> ch(4);
    EXPECT_TRUE(ch.push(1));
    EXPECT_TRUE(ch.push(2));
    EXPECT_EQ(ch.pop(), 1);
    EXPECT_EQ(ch.pop(), 2);
}

TEST(Channel, BackpressureWhenFull)
{
    Channel<int> ch(2);
    EXPECT_TRUE(ch.push(1));
    EXPECT_TRUE(ch.push(2));
    EXPECT_FALSE(ch.canPush());
    EXPECT_FALSE(ch.push(3));
    EXPECT_EQ(ch.pushStalls(), 1u);
    ch.pop();
    EXPECT_TRUE(ch.push(3));
}

TEST(ChannelDeathTest, PopFromEmptyPanics)
{
    Channel<int> ch(1, "test");
    EXPECT_DEATH(ch.pop(), "empty channel");
}

TEST(Pipeline, SingleStageIsSequential)
{
    std::vector<StageSpec> stages = {{"only", 2}};
    std::vector<std::vector<uint32_t>> service = {{5, 5, 5, 5}};
    const auto r = simulatePipeline(stages, service);
    EXPECT_EQ(r.total_cycles, 20u);
    EXPECT_DOUBLE_EQ(r.stages[0].utilization, 1.0);
}

TEST(Pipeline, BalancedStagesOverlap)
{
    // 3 stages x 10 cycles, 100 items: total ~ fill (20) + 100*10.
    std::vector<StageSpec> stages = {{"a", 4}, {"b", 4}, {"c", 4}};
    std::vector<std::vector<uint32_t>> service(
        3, std::vector<uint32_t>(100, 10));
    const auto r = simulatePipeline(stages, service);
    EXPECT_EQ(r.total_cycles, 1020u);
    EXPECT_GT(r.stages[1].utilization, 0.95);
}

TEST(Pipeline, BottleneckStageDominates)
{
    std::vector<StageSpec> stages = {{"fast", 4}, {"slow", 4}, {"fast2", 4}};
    std::vector<std::vector<uint32_t>> service = {
        std::vector<uint32_t>(200, 4),
        std::vector<uint32_t>(200, 20),
        std::vector<uint32_t>(200, 4),
    };
    const auto r = simulatePipeline(stages, service);
    // Slow stage sets throughput: ~20 cycles per item.
    EXPECT_NEAR(static_cast<double>(r.total_cycles), 200.0 * 20.0,
                100.0);
    EXPECT_GT(r.stages[1].utilization, 0.95);
    EXPECT_LT(r.stages[0].utilization, 0.35);
}

TEST(Pipeline, FifosAbsorbVariability)
{
    // Alternating slow/fast second stage: with deep FIFOs the first
    // stage rarely stalls; with depth-1 FIFOs it stalls often.
    const size_t n = 400;
    std::vector<std::vector<uint32_t>> service(2);
    service[0].assign(n, 10);
    service[1].resize(n);
    for (size_t i = 0; i < n; ++i)
        service[1][i] = (i % 2 == 0) ? 18 : 2; // Mean 10.

    std::vector<StageSpec> deep = {{"a", 16}, {"b", 16}};
    std::vector<StageSpec> shallow = {{"a", 1}, {"b", 1}};
    const auto r_deep = simulatePipeline(deep, service);
    const auto r_shallow = simulatePipeline(shallow, service);
    EXPECT_LE(r_deep.total_cycles, r_shallow.total_cycles);
    EXPECT_GT(r_deep.throughput_items_per_cycle, 0.095);
}

TEST(Pipeline, EmptyWorkListIsZero)
{
    std::vector<StageSpec> stages = {{"a", 2}};
    std::vector<std::vector<uint32_t>> service = {{}};
    const auto r = simulatePipeline(stages, service);
    EXPECT_EQ(r.total_cycles, 0u);
}

TEST(PipelineDeathTest, RaggedTableRejected)
{
    std::vector<StageSpec> stages = {{"a", 2}, {"b", 2}};
    std::vector<std::vector<uint32_t>> service = {{1, 2}, {1}};
    EXPECT_DEATH(simulatePipeline(stages, service), "ragged");
}

TEST(Pipeline, ThroughputFieldConsistent)
{
    std::vector<StageSpec> stages = {{"a", 4}};
    std::vector<std::vector<uint32_t>> service = {{10, 10, 10, 10, 10}};
    const auto r = simulatePipeline(stages, service);
    EXPECT_NEAR(r.throughput_items_per_cycle, 5.0 / 50.0, 1e-12);
}

} // namespace
} // namespace wsva::vcu
