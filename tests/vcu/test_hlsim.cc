#include "vcu/hlsim.h"

#include <gtest/gtest.h>

namespace wsva::vcu {
namespace {

TEST(Channel, PushPopFifoOrder)
{
    Channel<int> ch(4);
    EXPECT_TRUE(ch.push(1));
    EXPECT_TRUE(ch.push(2));
    EXPECT_EQ(ch.pop(), 1);
    EXPECT_EQ(ch.pop(), 2);
}

TEST(Channel, BackpressureWhenFull)
{
    Channel<int> ch(2);
    EXPECT_TRUE(ch.push(1));
    EXPECT_TRUE(ch.push(2));
    EXPECT_FALSE(ch.canPush());
    EXPECT_FALSE(ch.push(3));
    EXPECT_EQ(ch.pushStalls(), 1u);
    ch.pop();
    EXPECT_TRUE(ch.push(3));
}

TEST(ChannelDeathTest, PopFromEmptyPanics)
{
    Channel<int> ch(1, "test");
    EXPECT_DEATH(ch.pop(), "empty channel");
}

TEST(Pipeline, SingleStageIsSequential)
{
    std::vector<StageSpec> stages = {{"only", 2}};
    std::vector<std::vector<uint32_t>> service = {{5, 5, 5, 5}};
    const auto r = simulatePipeline(stages, service);
    EXPECT_EQ(r.total_cycles, 20u);
    EXPECT_DOUBLE_EQ(r.stages[0].utilization, 1.0);
}

TEST(Pipeline, BalancedStagesOverlap)
{
    // 3 stages x 10 cycles, 100 items: total ~ fill (20) + 100*10.
    std::vector<StageSpec> stages = {{"a", 4}, {"b", 4}, {"c", 4}};
    std::vector<std::vector<uint32_t>> service(
        3, std::vector<uint32_t>(100, 10));
    const auto r = simulatePipeline(stages, service);
    EXPECT_EQ(r.total_cycles, 1020u);
    EXPECT_GT(r.stages[1].utilization, 0.95);
}

TEST(Pipeline, BottleneckStageDominates)
{
    std::vector<StageSpec> stages = {{"fast", 4}, {"slow", 4}, {"fast2", 4}};
    std::vector<std::vector<uint32_t>> service = {
        std::vector<uint32_t>(200, 4),
        std::vector<uint32_t>(200, 20),
        std::vector<uint32_t>(200, 4),
    };
    const auto r = simulatePipeline(stages, service);
    // Slow stage sets throughput: ~20 cycles per item.
    EXPECT_NEAR(static_cast<double>(r.total_cycles), 200.0 * 20.0,
                100.0);
    EXPECT_GT(r.stages[1].utilization, 0.95);
    EXPECT_LT(r.stages[0].utilization, 0.35);
}

TEST(Pipeline, FifosAbsorbVariability)
{
    // Alternating slow/fast second stage: with deep FIFOs the first
    // stage rarely stalls; with depth-1 FIFOs it stalls often.
    const size_t n = 400;
    std::vector<std::vector<uint32_t>> service(2);
    service[0].assign(n, 10);
    service[1].resize(n);
    for (size_t i = 0; i < n; ++i)
        service[1][i] = (i % 2 == 0) ? 18 : 2; // Mean 10.

    std::vector<StageSpec> deep = {{"a", 16}, {"b", 16}};
    std::vector<StageSpec> shallow = {{"a", 1}, {"b", 1}};
    const auto r_deep = simulatePipeline(deep, service);
    const auto r_shallow = simulatePipeline(shallow, service);
    EXPECT_LE(r_deep.total_cycles, r_shallow.total_cycles);
    EXPECT_GT(r_deep.throughput_items_per_cycle, 0.095);
}

// Hand-computed 3-stage, depth-1 pipeline. A FIFO slot frees when the
// downstream stage STARTS (pops) an item; the old model freed it only
// at downstream FINISH, which overstated backpressure.
//
//   service a = {1,1,1,1}, b = {4,4,4,4}, c = {9,1,1,1}
//
//   item 0: a[0,1)  b[1,5)   c[5,14)
//   item 1: a[1,2)  b[5,9)   c[14,15)   (b waits for c to pop item 0)
//   item 2: a[5,6)  b[14,18) c[18,19)   (a waits for b to pop item 1)
//   item 3: a[14,15) b[18,22) c[22,23)
//
// Correct total = 23 cycles. Constraining on downstream finish
// instead gives 29.
TEST(Pipeline, BackpressureFreesSlotOnDownstreamStart)
{
    std::vector<StageSpec> stages = {{"a", 1}, {"b", 1}, {"c", 1}};
    std::vector<std::vector<uint32_t>> service = {
        {1, 1, 1, 1},
        {4, 4, 4, 4},
        {9, 1, 1, 1},
    };
    const auto r = simulatePipeline(stages, service);
    EXPECT_EQ(r.total_cycles, 23u);
    // Stage a's backpressure stalls: item 2 waits 5-2 = 3 cycles,
    // item 3 waits 14-6 = 8 cycles.
    EXPECT_EQ(r.stages[0].stall_cycles, 11u);
    // The last stage has no downstream FIFO: never a space stall.
    EXPECT_EQ(r.stages[2].stall_cycles, 0u);
}

TEST(Pipeline, EmptyWorkListIsZero)
{
    std::vector<StageSpec> stages = {{"a", 2}};
    std::vector<std::vector<uint32_t>> service = {{}};
    const auto r = simulatePipeline(stages, service);
    EXPECT_EQ(r.total_cycles, 0u);
}

TEST(PipelineDeathTest, RaggedTableRejected)
{
    std::vector<StageSpec> stages = {{"a", 2}, {"b", 2}};
    std::vector<std::vector<uint32_t>> service = {{1, 2}, {1}};
    EXPECT_DEATH(simulatePipeline(stages, service), "ragged");
}

TEST(Pipeline, ThroughputFieldConsistent)
{
    std::vector<StageSpec> stages = {{"a", 4}};
    std::vector<std::vector<uint32_t>> service = {{10, 10, 10, 10, 10}};
    const auto r = simulatePipeline(stages, service);
    EXPECT_NEAR(r.throughput_items_per_cycle, 5.0 / 50.0, 1e-12);
}

} // namespace
} // namespace wsva::vcu
