#include "vcu/dram.h"

#include <gtest/gtest.h>

#include <numeric>

namespace wsva::vcu {
namespace {

TEST(Bandwidth, UnderSubscribedGetsFullDemand)
{
    const auto g = allocateBandwidth(30.0, {5.0, 10.0, 3.0});
    EXPECT_DOUBLE_EQ(g[0], 5.0);
    EXPECT_DOUBLE_EQ(g[1], 10.0);
    EXPECT_DOUBLE_EQ(g[2], 3.0);
}

TEST(Bandwidth, OverSubscribedEvenSplit)
{
    const auto g = allocateBandwidth(12.0, {10.0, 10.0, 10.0});
    EXPECT_NEAR(g[0], 4.0, 1e-9);
    EXPECT_NEAR(g[1], 4.0, 1e-9);
    EXPECT_NEAR(g[2], 4.0, 1e-9);
}

TEST(Bandwidth, MaxMinProtectsLightRequesters)
{
    // The light requester (2) gets its full demand; the heavy ones
    // split the remaining 10 evenly.
    const auto g = allocateBandwidth(12.0, {2.0, 50.0, 50.0});
    EXPECT_NEAR(g[0], 2.0, 1e-9);
    EXPECT_NEAR(g[1], 5.0, 1e-9);
    EXPECT_NEAR(g[2], 5.0, 1e-9);
}

TEST(Bandwidth, GrantsNeverExceedDemandOrCapacity)
{
    const std::vector<double> demands = {1.0, 7.5, 0.0, 22.0, 13.0};
    const auto g = allocateBandwidth(20.0, demands);
    double total = 0.0;
    for (size_t i = 0; i < g.size(); ++i) {
        EXPECT_LE(g[i], demands[i] + 1e-9);
        total += g[i];
    }
    EXPECT_LE(total, 20.0 + 1e-9);
}

TEST(Bandwidth, ZeroDemandZeroGrant)
{
    const auto g = allocateBandwidth(10.0, {0.0, 0.0});
    EXPECT_DOUBLE_EQ(g[0], 0.0);
    EXPECT_DOUBLE_EQ(g[1], 0.0);
}

TEST(Bandwidth, EmptyDemands)
{
    EXPECT_TRUE(allocateBandwidth(10.0, {}).empty());
}

TEST(DramConfig, PaperNumbers)
{
    DramConfig cfg;
    // ~36 GiB/s raw from four 32b LPDDR4-3200 channels.
    EXPECT_NEAR(cfg.raw_gibps, 36.0, 1.0);
    EXPECT_EQ(cfg.capacity_bytes, 8ull << 30);
}

TEST(DramCapacity, ReserveRelease)
{
    DramCapacity cap(1000);
    EXPECT_TRUE(cap.reserve(600));
    EXPECT_FALSE(cap.reserve(500));
    EXPECT_TRUE(cap.reserve(400));
    EXPECT_DOUBLE_EQ(cap.utilization(), 1.0);
    cap.release(600);
    EXPECT_EQ(cap.used(), 400u);
    EXPECT_TRUE(cap.reserve(100));
}

TEST(DramCapacityDeathTest, OverReleasePanics)
{
    DramCapacity cap(100);
    ASSERT_TRUE(cap.reserve(10));
    EXPECT_DEATH(cap.release(20), "more DRAM");
}

} // namespace
} // namespace wsva::vcu
