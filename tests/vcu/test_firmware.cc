#include "vcu/firmware.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace wsva::vcu {
namespace {

Command
runCmd(uint64_t id, double secs)
{
    Command cmd;
    cmd.kind = CmdKind::RunOnCore;
    cmd.id = id;
    cmd.op.id = id;
    cmd.op.kind = OpKind::Encode;
    cmd.op.core_seconds = secs;
    cmd.op.dram_gibps = 1.0;
    cmd.op.dram_bytes = 100 << 20;
    return cmd;
}

Command
copyCmd(uint64_t id, uint64_t bytes, bool to_device)
{
    Command cmd;
    cmd.kind = to_device ? CmdKind::CopyToDevice : CmdKind::CopyFromDevice;
    cmd.id = id;
    cmd.bytes = bytes;
    return cmd;
}

Command
waitCmd(uint64_t id)
{
    Command cmd;
    cmd.kind = CmdKind::WaitForDone;
    cmd.id = id;
    return cmd;
}

TEST(Firmware, RunCommandCompletes)
{
    VcuChip chip;
    Firmware fw(chip);
    const int q = fw.createQueue();
    fw.enqueue(q, runCmd(1, 0.5));
    std::vector<uint64_t> done;
    fw.advance(0.6, done);
    ASSERT_EQ(done.size(), 1u);
    EXPECT_EQ(done[0], 1u);
    EXPECT_EQ(fw.pending(), 0u);
}

TEST(Firmware, CopyTakesPcieTime)
{
    VcuChip chip;
    Firmware fw(chip, {10.0}); // 10 GiB/s.
    const int q = fw.createQueue();
    fw.enqueue(q, copyCmd(7, 5ull << 30, true)); // 5 GiB -> 0.5 s.
    std::vector<uint64_t> done;
    fw.advance(0.4, done);
    EXPECT_TRUE(done.empty());
    fw.advance(0.2, done);
    ASSERT_EQ(done.size(), 1u);
    EXPECT_EQ(done[0], 7u);
}

TEST(Firmware, WaitForDoneBarriersQueue)
{
    VcuChip chip;
    Firmware fw(chip);
    const int q = fw.createQueue();
    fw.enqueue(q, runCmd(1, 1.0));
    fw.enqueue(q, waitCmd(2));
    fw.enqueue(q, runCmd(3, 1.0));
    std::vector<uint64_t> done;
    fw.advance(0.5, done);
    // Op 1 is running; op 3 must NOT have been issued yet.
    EXPECT_EQ(chip.busyEncoderCores(), 1);
    fw.advance(0.6, done);
    // Op 1 finished; the barrier opens and op 3 issues.
    EXPECT_TRUE(std::count(done.begin(), done.end(), 1u));
    fw.advance(1.1, done);
    EXPECT_TRUE(std::count(done.begin(), done.end(), 3u));
}

TEST(Firmware, OpsWithoutBarrierRunConcurrently)
{
    VcuChip chip;
    Firmware fw(chip);
    const int q = fw.createQueue();
    fw.enqueue(q, runCmd(1, 1.0));
    fw.enqueue(q, runCmd(2, 1.0));
    std::vector<uint64_t> done;
    fw.advance(1e-6, done);
    EXPECT_EQ(chip.busyEncoderCores(), 2);
}

TEST(Firmware, RoundRobinAcrossQueues)
{
    // 12 single-op queues onto 10 encoder cores: every queue should
    // get a turn before any queue gets a second op in.
    VcuChip chip;
    Firmware fw(chip);
    std::vector<int> queues;
    for (int i = 0; i < 12; ++i)
        queues.push_back(fw.createQueue());
    for (int i = 0; i < 12; ++i)
        fw.enqueue(queues[static_cast<size_t>(i)],
                   runCmd(static_cast<uint64_t>(i), 1.0));
    std::vector<uint64_t> done;
    fw.advance(1e-6, done);
    EXPECT_EQ(chip.busyEncoderCores(), 10);
    fw.advance(1.01, done);
    EXPECT_EQ(done.size(), 10u);
    fw.advance(1.01, done);
    EXPECT_EQ(done.size(), 12u);
}

TEST(Firmware, MultipleProcessesReachFullUtilization)
{
    // Section 3.3.2: multiple userspace processes are needed to
    // saturate a VCU; the firmware multiplexes them.
    VcuChip chip;
    Firmware fw(chip);
    for (int p = 0; p < 5; ++p) {
        const int q = fw.createQueue();
        fw.enqueue(q, runCmd(static_cast<uint64_t>(100 + p * 2), 2.0));
        fw.enqueue(q, runCmd(static_cast<uint64_t>(101 + p * 2), 2.0));
    }
    std::vector<uint64_t> done;
    fw.advance(1e-6, done);
    EXPECT_DOUBLE_EQ(chip.encoderUtilization(), 1.0);
}

TEST(Firmware, DestroyQueueDropsPending)
{
    VcuChip chip;
    Firmware fw(chip);
    const int q = fw.createQueue();
    fw.enqueue(q, runCmd(1, 1.0));
    std::vector<uint64_t> done;
    fw.advance(1e-6, done); // Op 1 issues.
    fw.enqueue(q, runCmd(2, 1.0));
    fw.destroyQueue(q);
    EXPECT_EQ(fw.queueCount(), 0u);
    fw.advance(2.0, done);
    // Op 1 still completes on the chip; op 2 was dropped.
    EXPECT_TRUE(std::count(done.begin(), done.end(), 1u));
    EXPECT_FALSE(std::count(done.begin(), done.end(), 2u));
}

TEST(FirmwareDeathTest, BadQueueHandle)
{
    VcuChip chip;
    Firmware fw(chip);
    EXPECT_DEATH(fw.enqueue(3, runCmd(1, 1.0)), "bad queue");
}

} // namespace
} // namespace wsva::vcu
