/**
 * @file
 * Work schedulers (Section 3.3.3, Figure 6).
 *
 * The paper moved the video processing platform from a uniform CPU
 * cost model ("single slot per graph step") to an online multi-
 * dimensional bin-packing scheduler with a sharded in-memory
 * availability cache and a first-fit worker picker. Both schedulers
 * are implemented here so the ablation bench can compare them.
 */

#ifndef WSVA_CLUSTER_SCHEDULER_H
#define WSVA_CLUSTER_SCHEDULER_H

#include <cstddef>
#include <cstdint>
#include <vector>

#include "cluster/worker.h"
#include "common/metrics.h"

namespace wsva::cluster {

/** Scheduling statistics. */
struct SchedulerStats
{
    uint64_t placed = 0;
    uint64_t rejected = 0; //!< No worker could take the request.
};

/** Common picker interface. */
class Scheduler
{
  public:
    virtual ~Scheduler() = default;

    /**
     * Pick a worker for a step needing @p need. Returns nullptr when
     * nothing fits (caller re-queues).
     */
    virtual Worker *pick(const ResourceVector &need) = 0;

    /**
     * The resources actually reserved on the worker for a request of
     * @p need: the request itself for the bin-packing scheduler, the
     * (element-wise max with the) fixed slot bundle for the legacy
     * scheduler.
     */
    virtual ResourceVector reservationFor(const ResourceVector &need) const;

    const SchedulerStats &stats() const { return stats_; }

    /** Mirror placement decisions into @p metrics (not owned; may be
     *  null). Counters: sched.placed / sched.rejected. */
    void attachMetrics(wsva::MetricsRegistry *metrics);

  protected:
    /** Count one placement (success or rejection) in stats_ and the
     *  attached registry. */
    void recordPick(bool placed);

    SchedulerStats stats_;
    // pick() runs for every backlog entry every tick; the counters
    // are pre-resolved handles so the hot path never locks.
    wsva::CounterHandle placed_counter_;
    wsva::CounterHandle rejected_counter_;
};

/**
 * Multi-dimensional bin-packing scheduler: maintains an availability
 * cache of all workers and their current capacity across all
 * dimensions, and places work first-fit by worker number (Figure 6).
 * The load-maximizing greedy policy concentrates work so that
 * trailing workers go fully idle and can be stopped and reallocated
 * to other pools.
 */
class BinPackScheduler : public Scheduler
{
  public:
    explicit BinPackScheduler(std::vector<Worker *> workers);

    Worker *pick(const ResourceVector &need) override;

    /** Workers currently fully idle (candidates to stop). */
    int idleWorkers() const;

  private:
    std::vector<Worker *> workers_;
};

/**
 * Legacy one-dimensional slot scheduler: each worker advertises a
 * fixed number of slots sized for the configured worst-case step;
 * every step consumes one slot regardless of its actual size.
 */
class SlotScheduler : public Scheduler
{
  public:
    /**
     * @param slot_need The fixed per-slot resource bundle (worst-case
     *        step sizing under the uniform cost model).
     */
    SlotScheduler(std::vector<Worker *> workers, ResourceVector slot_need);

    Worker *pick(const ResourceVector &need) override;
    ResourceVector reservationFor(const ResourceVector &need) const override;

    const ResourceVector &slotNeed() const { return slot_need_; }

  private:
    std::vector<Worker *> workers_;
    ResourceVector slot_need_;
};

} // namespace wsva::cluster

#endif // WSVA_CLUSTER_SCHEDULER_H
