/**
 * @file
 * Work schedulers (Section 3.3.3, Figure 6).
 *
 * The paper moved the video processing platform from a uniform CPU
 * cost model ("single slot per graph step") to an online multi-
 * dimensional bin-packing scheduler with a sharded in-memory
 * availability cache and a first-fit worker picker. Both schedulers
 * are implemented here so the ablation bench can compare them.
 */

#ifndef WSVA_CLUSTER_SCHEDULER_H
#define WSVA_CLUSTER_SCHEDULER_H

#include <cstddef>
#include <cstdint>
#include <deque>
#include <vector>

#include "cluster/worker.h"
#include "common/metrics.h"

namespace wsva::cluster {

/**
 * The cluster's work queue, deadline-aware. Two dispatch lanes plus a
 * parking lot:
 *
 *  - EDF lane: steps carrying a deadline (live segments), ordered
 *    earliest-deadline-first with ties broken by arrival sequence —
 *    deterministic, and FIFO within one deadline cohort.
 *  - FIFO lane: everything else, in arrival order with push_front
 *    retry semantics — byte-for-byte the plain std::deque the sim
 *    used before deadlines existed. With no deadline steps queued the
 *    queue *is* that deque, which is what keeps fault-free tick/event
 *    ledger equality intact.
 *  - Shed lot: batch-priority steps parked under live surge. Parked
 *    steps stop competing for dispatch but stay in the conservation
 *    ledger (the `shed` term); unparkAll() returns them to the FIFO
 *    lane in their original order.
 *
 * front()/pop_front() always serve the EDF lane first: a live segment
 * with ten seconds of slack outranks any amount of queued batch work.
 */
class DispatchQueue
{
  public:
    /** Queue a newly arrived step. */
    void push_back(const TranscodeStep &step);

    /** Re-queue a retried step ahead of its lane. */
    void push_front(const TranscodeStep &step);

    /** Next step to dispatch (EDF lane first). Queue must not be
     *  empty. */
    const TranscodeStep &front() const;

    /** Drop the step front() returned. */
    void pop_front();

    /** Steps in the dispatch lanes (excludes the shed lot). */
    size_t size() const { return edf_.size() + fifo_.size(); }
    bool empty() const { return edf_.empty() && fifo_.empty(); }

    /** Deadline-carrying steps waiting in the EDF lane. */
    size_t deadlineSize() const { return edf_.size(); }

    /** Park every Batch-priority step in the FIFO lane.
     *  @return how many steps moved to the shed lot. */
    size_t parkBatch();

    /** Park one already-dequeued step (a preempted running step). */
    void parkStep(const TranscodeStep &step);

    /** Return every shed step to the FIFO lane, oldest first.
     *  @return how many steps came back. */
    size_t unparkAll();

    /** Steps sitting in the shed lot. */
    size_t shedSize() const { return shed_.size(); }

    /**
     * Remove and return every queued step — dispatch lanes in dispatch
     * order (EDF lane first, then FIFO), then the shed lot oldest
     * first. Used by the global router to expel a quarantined region's
     * backlog for rerouting; the caller owns the ledger consequences
     * (the steps leave this cluster's conservation terms).
     */
    std::vector<TranscodeStep> drainAll();

  private:
    /** EDF heap entry; min-heap on (deadline, seq). */
    struct EdfEntry
    {
        TranscodeStep step;
        uint64_t seq = 0;

        /** std::push_heap is a max-heap; invert for min-(deadline,seq). */
        bool operator<(const EdfEntry &other) const
        {
            if (step.deadline_time != other.step.deadline_time)
                return step.deadline_time > other.step.deadline_time;
            return seq > other.seq;
        }
    };

    std::vector<EdfEntry> edf_; //!< Heap (std::push_heap/pop_heap).
    std::deque<TranscodeStep> fifo_;
    std::deque<TranscodeStep> shed_;
    uint64_t next_seq_ = 0;
};

/** Scheduling statistics. */
struct SchedulerStats
{
    uint64_t placed = 0;
    uint64_t rejected = 0; //!< No worker could take the request.
};

/** Common picker interface. */
class Scheduler
{
  public:
    virtual ~Scheduler() = default;

    /**
     * Pick a worker for a step needing @p need. Returns nullptr when
     * nothing fits (caller re-queues).
     */
    virtual Worker *pick(const ResourceVector &need) = 0;

    /**
     * Re-evaluate a worker whose fitness changed *outside* its own
     * mutation paths — VCU health flips live in the host model, so
     * fault injection must tell the scheduler explicitly. No-op for
     * schedulers without derived state.
     */
    virtual void refresh(Worker &worker) { (void)worker; }

    /**
     * The resources actually reserved on the worker for a request of
     * @p need: the request itself for the bin-packing scheduler, the
     * (element-wise max with the) fixed slot bundle for the legacy
     * scheduler.
     */
    virtual ResourceVector reservationFor(const ResourceVector &need) const;

    const SchedulerStats &stats() const { return stats_; }

    /** Mirror placement decisions into @p metrics (not owned; may be
     *  null). Counters: sched.placed / sched.rejected. */
    void attachMetrics(wsva::MetricsRegistry *metrics);

  protected:
    /** Count one placement (success or rejection) in stats_ and the
     *  attached registry. */
    void recordPick(bool placed);

    SchedulerStats stats_;
    // pick() runs for every backlog entry every tick; the counters
    // are pre-resolved handles so the hot path never locks.
    wsva::CounterHandle placed_counter_;
    wsva::CounterHandle rejected_counter_;
};

/**
 * Segment-tree availability index over a fixed worker set. Interior
 * nodes hold the per-dimension *maximum* available amount across
 * their subtree (ineligible workers — refused or on a disabled VCU —
 * carry -1 in every dimension); a leftmost-first DFS that prunes
 * subtrees whose max cannot satisfy the request yields exactly the
 * first-fit-by-worker-number answer in O(dims x log n) typical, and
 * rejects an unsatisfiable request at the root in O(dims). The
 * linear first-fit scan this replaces is O(n) per placement — the
 * dominant cost at 200k workers.
 */
class AvailabilityIndex
{
  public:
    /** Index @p workers (kept in the given order; not owned). */
    void build(std::vector<Worker *> workers);

    /** Recompute the leaf for the worker at position @p pos. */
    void update(int pos);

    /** Leftmost worker that fits @p need, or nullptr. */
    Worker *firstFit(const ResourceVector &need) const;

    bool built() const { return !workers_.empty(); }

    /** Bytes of tree storage (bench memory accounting). */
    size_t capacityBytes() const;

  private:
    void writeLeaf(int pos);
    Worker *descend(uint32_t node, const double *need_amt,
                    const ResourceVector &need) const;

    std::vector<Worker *> workers_;
    std::vector<uint16_t> dims_; //!< Indexed dimension ids, sorted.
    uint32_t leaves_ = 0;        //!< Worker count padded to 2^k.
    std::vector<double> tree_;   //!< 2 * leaves_ nodes x dims_ values.
};

/**
 * Multi-dimensional bin-packing scheduler: maintains an availability
 * cache of all workers and their current capacity across all
 * dimensions, and places work first-fit by worker number (Figure 6).
 * The load-maximizing greedy policy concentrates work so that
 * trailing workers go fully idle and can be stopped and reallocated
 * to other pools.
 *
 * Placement is a linear first-fit scan by default; enableIndex()
 * switches to the segment-tree availability index (identical picks,
 * O(log n) instead of O(n)) and keeps it coherent by listening to
 * every worker's availability mutations. ClusterSim always enables
 * the index; standalone users that mutate VcuHealth directly without
 * calling refresh() should stay linear.
 */
class BinPackScheduler : public Scheduler, private WorkerAvailabilityListener
{
  public:
    explicit BinPackScheduler(std::vector<Worker *> workers);
    ~BinPackScheduler() override;

    Worker *pick(const ResourceVector &need) override;

    /** Build the availability index and attach worker listeners. */
    void enableIndex();

    /** True when placements use the segment-tree index. */
    bool indexed() const { return indexed_; }

    void refresh(Worker &worker) override;

    /** Workers currently fully idle (candidates to stop). */
    int idleWorkers() const;

    /** Bytes held by the availability index (0 when linear). */
    size_t indexBytes() const { return index_.capacityBytes(); }

  private:
    void onWorkerAvailabilityChanged(Worker &worker, int tag) override;

    std::vector<Worker *> workers_;
    std::vector<int> pos_by_id_; //!< Worker id -> index position.
    AvailabilityIndex index_;
    bool indexed_ = false;
};

/**
 * Legacy one-dimensional slot scheduler: each worker advertises a
 * fixed number of slots sized for the configured worst-case step;
 * every step consumes one slot regardless of its actual size.
 */
class SlotScheduler : public Scheduler
{
  public:
    /**
     * @param slot_need The fixed per-slot resource bundle (worst-case
     *        step sizing under the uniform cost model).
     */
    SlotScheduler(std::vector<Worker *> workers, ResourceVector slot_need);

    Worker *pick(const ResourceVector &need) override;
    ResourceVector reservationFor(const ResourceVector &need) const override;

    const ResourceVector &slotNeed() const { return slot_need_; }

  private:
    std::vector<Worker *> workers_;
    ResourceVector slot_need_;
};

} // namespace wsva::cluster

#endif // WSVA_CLUSTER_SCHEDULER_H
