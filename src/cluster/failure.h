/**
 * @file
 * Fleet failure management (Section 4.4): host-level fault
 * accumulation with a capped repair queue, and blast-radius tracking
 * of which VCUs touched which videos.
 */

#ifndef WSVA_CLUSTER_FAILURE_H
#define WSVA_CLUSTER_FAILURE_H

#include <cstddef>
#include <cstdint>
#include <map>
#include <set>
#include <vector>

namespace wsva {
class MetricsRegistry;
class TraceLog;
} // namespace wsva

namespace wsva::cluster {

/** Failure-management policy knobs. */
struct FailurePolicy
{
    /** Faults accumulated before a host is marked unusable. */
    int host_fault_threshold = 3;

    /** Cap on hosts simultaneously in repair (protects capacity
     *  against faulty repair signals). */
    int repair_cap = 2;

    /** Wall time a repair takes. */
    double repair_seconds = 4 * 3600.0;

    /** Workers run golden transcodes before serving a VCU. */
    bool golden_screening = true;

    /** A worker hitting a hardware failure aborts all its work. */
    bool abort_on_failure = true;

    /** Probability the integrity checks catch a corrupt chunk. */
    double integrity_detect_prob = 0.9;
};

/** Capped repair queue for hosts. */
class RepairQueue
{
  public:
    explicit RepairQueue(const FailurePolicy &policy) : policy_(policy) {}

    /** Attach observability sinks (optional, not owned). Repair
     *  entries/completions become host_enter_repair / host_repaired
     *  trace events; cap deferrals feed repair.cap_deferrals. */
    void attachObservability(wsva::MetricsRegistry *metrics,
                             wsva::TraceLog *trace)
    {
        metrics_ = metrics;
        trace_ = trace;
    }

    /**
     * Try to send a host to repair at time @p now. Returns false if
     * the cap is reached (the host stays in production, degraded).
     */
    bool tryEnter(int host_id, double now);

    /** Hosts whose repair completes at or before @p now. */
    std::vector<int> collectRepaired(double now);

    /**
     * Scheduled completion time of a host currently in repair
     * (asserts contains(host_id)). The event engine schedules its
     * RepairDone event here instead of polling every tick.
     */
    double completionTime(int host_id) const;

    size_t inRepair() const { return repairing_.size(); }
    bool contains(int host_id) const;

    uint64_t totalRepairs() const { return total_repairs_; }
    uint64_t capDeferrals() const { return cap_deferrals_; }

  private:
    FailurePolicy policy_;
    std::map<int, double> repairing_; //!< host -> completion time.
    uint64_t total_repairs_ = 0;
    uint64_t cap_deferrals_ = 0;
    wsva::MetricsRegistry *metrics_ = nullptr;
    wsva::TraceLog *trace_ = nullptr;
};

/**
 * Records which VCUs processed chunks of each video, so corruption
 * can be correlated back to a device, and tracks corrupt outcomes
 * (detected by integrity checks vs escaped).
 */
class BlastRadiusTracker
{
  public:
    /** Record that a chunk of @p video ran on @p vcu_global_id. */
    void recordChunk(uint64_t video_id, int vcu_global_id);

    /** A corrupt chunk was detected (and the video re-processed). */
    void recordDetectedCorruption(uint64_t video_id, int vcu_global_id);

    /** A corrupt chunk escaped into the serving path. */
    void recordEscapedCorruption(uint64_t video_id, int vcu_global_id);

    /** Number of distinct VCUs that touched a video. */
    size_t vcusTouching(uint64_t video_id) const;

    /** Videos with at least one escaped-corrupt chunk. */
    size_t corruptVideos() const { return corrupt_videos_.size(); }

    uint64_t detectedChunks() const { return detected_; }
    uint64_t escapedChunks() const { return escaped_; }

    /** VCU most implicated in detected corruption (-1 if none). */
    int mostSuspectVcu() const;

    /** Largest affinity spread: max distinct VCUs on any one video. */
    size_t maxVcusPerVideo() const;

    /** Export blast-radius gauges (blast.*) into @p metrics. */
    void exportTo(wsva::MetricsRegistry &metrics) const;

  private:
    std::map<uint64_t, std::set<int>> video_vcus_;
    std::set<uint64_t> corrupt_videos_;
    std::map<int, uint64_t> vcu_detections_;
    uint64_t detected_ = 0;
    uint64_t escaped_ = 0;
};

} // namespace wsva::cluster

#endif // WSVA_CLUSTER_FAILURE_H
