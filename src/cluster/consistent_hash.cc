#include "cluster/consistent_hash.h"

#include <algorithm>
#include <limits>

#include "common/logging.h"

namespace wsva::cluster {

uint64_t
ConsistentHashRing::mix(uint64_t value)
{
    // splitmix64 finalizer: uniform ring positions from small ints.
    value += 0x9e3779b97f4a7c15ULL;
    value = (value ^ (value >> 30)) * 0xbf58476d1ce4e5b9ULL;
    value = (value ^ (value >> 27)) * 0x94d049bb133111ebULL;
    return value ^ (value >> 31);
}

uint64_t
ConsistentHashRing::pointPosition(int worker_id, int virtual_node) const
{
    return mix((static_cast<uint64_t>(static_cast<uint32_t>(worker_id))
                << 20) ^ static_cast<uint64_t>(virtual_node));
}

ConsistentHashRing::ConsistentHashRing(const std::vector<int> &worker_ids,
                                       int virtual_nodes)
    : virtual_nodes_(virtual_nodes)
{
    WSVA_ASSERT(virtual_nodes >= 1, "need at least one virtual node");
    for (int id : worker_ids)
        addWorker(id);
}

void
ConsistentHashRing::addWorker(int worker_id)
{
    if (!ids_.insert(worker_id).second)
        return; // Already on the ring; re-adding must not double-count.
    for (int v = 0; v < virtual_nodes_; ++v)
        ring_.insert({pointPosition(worker_id, v), worker_id});
}

void
ConsistentHashRing::removeWorker(int worker_id)
{
    if (ids_.erase(worker_id) == 0)
        return;
    // Erase exactly this worker's virtual points by recomputing their
    // positions — O(virtual_nodes * log n), and structurally incapable
    // of leaving a stale point behind or disturbing other workers'
    // points (a full-ring value scan would also work but costs O(n)
    // per quarantine event at fleet scale).
    for (int v = 0; v < virtual_nodes_; ++v)
        ring_.erase({pointPosition(worker_id, v), worker_id});
}

std::vector<int>
ConsistentHashRing::affinitySet(uint64_t key, size_t count) const
{
    std::vector<int> result;
    if (ring_.empty())
        return result;
    count = std::min(count, ids_.size());

    // Start from the first point at-or-after the key's position; the
    // worker-id tiebreak in the pair key makes the walk order — and
    // therefore the affinity set — a pure function of (key, id set).
    auto it = ring_.lower_bound(
        {mix(key), std::numeric_limits<int>::min()});
    while (result.size() < count) {
        if (it == ring_.end())
            it = ring_.begin();
        if (std::find(result.begin(), result.end(), it->second) ==
            result.end()) {
            result.push_back(it->second);
        }
        ++it;
    }
    return result;
}

} // namespace wsva::cluster
