#include "cluster/worker.h"

#include <algorithm>

#include "common/logging.h"
#include "common/metrics.h"

namespace wsva::cluster {

Worker::Worker(int id, WorkerType type, ResourceVector capacity)
    : id_(id), type_(type), capacity_(std::move(capacity)),
      available_(capacity_)
{
}

bool
Worker::goldenScreen() const
{
    if (vcu_ == nullptr)
        return true; // CPU workers have nothing to screen.
    return !vcu_->disabled && !vcu_->silent_fault;
}

bool
Worker::canFit(const ResourceVector &need) const
{
    if (refused_)
        return false;
    if (vcu_ != nullptr && vcu_->disabled)
        return false;
    return available_.fits(need);
}

void
Worker::assign(const TranscodeStep &step, const ResourceVector &need,
               double now, double service_seconds)
{
    WSVA_ASSERT(canFit(need), "assigning step %lu beyond capacity",
                static_cast<unsigned long>(step.id));
    double factor = 1.0;
    if (vcu_ != nullptr)
        factor = vcu_->speed_factor;
    available_.subtract(need);
    WSVA_ASSERT(available_.nonNegative(), "negative availability");
    running_.push_back({step, need, now, now + service_seconds * factor});
    if (step.priority == Priority::Batch)
        ++batch_running_;
    notifyAvailability();
    if (trace_ != nullptr) {
        trace_->record(TraceEventType::StepScheduled, now, -1, id_,
                       step.id, step.video_id);
    }
}

std::vector<StepOutcome>
Worker::collectFinished(double now)
{
    std::vector<StepOutcome> out;
    const bool dead = vcu_ != nullptr && vcu_->disabled;
    const bool corrupting = vcu_ != nullptr && vcu_->silent_fault;
    for (auto it = running_.begin(); it != running_.end();) {
        const bool finished = it->finish_time <= now;
        if (finished || dead) {
            // A step whose finish time precedes the fault completed
            // before the device died: its output exists and must not
            // be failed/retried (that skewed steps_retried and
            // output_pixels). Only work truly cut short fails.
            const bool failed =
                dead && it->finish_time >= vcu_->fault_time;
            StepOutcome outcome;
            outcome.step = it->step;
            outcome.ok = !failed;
            outcome.corrupt = corrupting && !failed;
            outcome.start_time = it->start_time;
            outcome.finish_time = failed ? now : it->finish_time;
            out.push_back(outcome);
            available_.add(it->need);
            if (it->step.priority == Priority::Batch)
                --batch_running_;
            if (metrics_ != nullptr && !failed) {
                // Static name: one completion per step makes this a
                // hot path; don't rebuild the string each time.
                static const std::string kServiceSeconds =
                    "worker.service_seconds";
                metrics_->observe(kServiceSeconds,
                                  outcome.finish_time - it->start_time,
                                  0.0, 600.0, 60);
            }
            it = running_.erase(it);
        } else {
            ++it;
        }
    }
    if (!out.empty())
        notifyAvailability();
    return out;
}

std::vector<TranscodeStep>
Worker::abortAll()
{
    std::vector<TranscodeStep> aborted;
    for (const auto &r : running_) {
        aborted.push_back(r.step);
        available_.add(r.need);
    }
    running_.clear();
    batch_running_ = 0;
    needs_screen_ = true;
    if (!aborted.empty())
        notifyAvailability();
    return aborted;
}

bool
Worker::canFitWithBatchPreempted(const ResourceVector &need) const
{
    if (batch_running_ == 0)
        return false; // Nothing to preempt; canFit() already said no.
    if (refused_ || (vcu_ != nullptr && vcu_->disabled))
        return false;
    ResourceVector hypothetical = available_;
    for (const auto &r : running_) {
        if (r.step.priority == Priority::Batch)
            hypothetical.add(r.need);
    }
    return hypothetical.fits(need);
}

std::vector<TranscodeStep>
Worker::preemptBatch()
{
    std::vector<TranscodeStep> preempted;
    for (auto it = running_.begin(); it != running_.end();) {
        if (it->step.priority == Priority::Batch) {
            preempted.push_back(it->step);
            available_.add(it->need);
            it = running_.erase(it);
        } else {
            ++it;
        }
    }
    WSVA_ASSERT(batch_running_ == preempted.size(),
                "batch-running count drift: %zu tracked vs %zu found",
                batch_running_, preempted.size());
    batch_running_ = 0;
    if (!preempted.empty())
        notifyAvailability();
    return preempted;
}

void
Worker::repairReset()
{
    WSVA_ASSERT(running_.empty(), "repair reset with work in flight");
    available_ = capacity_;
    needs_screen_ = false;
    refused_ = false;
    notifyAvailability();
}

double
Worker::utilization() const
{
    ResourceVector used = capacity_;
    used.subtract(available_);
    return used.maxUtilizationVs(capacity_);
}

double
Worker::dimensionUtilization(const std::string &dim) const
{
    const double cap = capacity_.get(dim);
    if (cap <= 0.0)
        return 0.0;
    return (cap - available_.get(dim)) / cap;
}

ResourceVector
vcuWorkerCapacity(uint64_t dram_bytes, double host_cpu_millicores,
                  double sw_decode_millicores)
{
    // Section 3.3.3: "each VCU has 3,000 millidecode cores and
    // 10,000 milliencode cores available".
    ResourceVector cap;
    cap.set(kResDecodeMillicores, 3000);
    cap.set(kResEncodeMillicores, 10000);
    cap.set(kResDramBytes, static_cast<double>(dram_bytes));
    cap.set(kResHostCpuMillicores, host_cpu_millicores);
    cap.set(kResSwDecodeMillicores, sw_decode_millicores);
    return cap;
}

} // namespace wsva::cluster
