/**
 * @file
 * Per-upload SLO monitoring for the cluster simulator.
 *
 * The paper's deployment story (Section 4) is ultimately about a
 * latency promise: uploads must become playable quickly even while
 * VCUs fault, hosts cycle through repair, and corrupt output is
 * caught and re-run. This monitor tracks every submitted step from
 * submission to terminal completion and derives the alerting signals
 * a production service would page on:
 *
 *  - lifetime end-to-end latency distribution (p50/p99),
 *  - a sliding-window p99 over the last `window_ticks` ticks,
 *  - a burn rate: the fraction of recent ticks whose windowed p99
 *    exceeded the target (an SLO-burn alert fires with hysteresis —
 *    raised at `burn_alert_fraction`, cleared at half of it, so a
 *    rate hovering at the line does not flap),
 *  - queue age: how long the oldest unfinished step has been in the
 *    system.
 *
 * Alert transitions are recorded as SloAlert / SloAlertCleared
 * TraceLog events, the signals are sampled into MetricsRegistry
 * series each tick, and everything is summarized by exportJson()
 * (surfaced through ClusterSim::exportJson()). The monitor also
 * carries the pre-allocated end-to-end span id per upload, which is
 * how ClusterSim parents its queue_wait/execute sim spans to the
 * upload's root span.
 */

#ifndef WSVA_CLUSTER_SLO_H
#define WSVA_CLUSTER_SLO_H

#include <cstddef>
#include <cstdint>
#include <deque>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "common/flat_map.h"
#include "common/stats.h"

namespace wsva {
class MetricsRegistry;
class TraceLog;
} // namespace wsva

namespace wsva::cluster {

/** SLO monitoring configuration. */
struct SloConfig
{
    bool enabled = true;

    /** The promise: p99 end-to-end latency stays under this. */
    double p99_target_seconds = 120.0;

    /** Sliding-window length, in simulation ticks. */
    size_t window_ticks = 60;

    /**
     * Alert when this fraction of recent ticks had a windowed p99
     * over target; the alert clears at half this fraction.
     */
    double burn_alert_fraction = 0.5;

    /**
     * Publish the windowed p99 / burn-rate / queue-age gauges and
     * series every N ticks. The alert itself is evaluated every tick
     * (the burning check is an O(1) rank-count comparison); only the
     * dashboard values are decimated, because materializing the exact
     * windowed p99 costs a selection pass over the window.
     */
    size_t gauge_every_ticks = 15;

    /**
     * The live promise: at most this fraction of deadline-carrying
     * completions in the window may miss their deadline. Purely a
     * reporting threshold (the burn-rate alert stays the paging
     * signal); benches compare shed-on/shed-off arms against it.
     */
    double deadline_miss_budget = 0.01;
};

/**
 * Tracks per-upload end-to-end latency and derives windowed p99,
 * burn rate, queue age, and a hysteretic burn-rate alert.
 *
 * Uploads enter via onSubmit() and leave via onComplete(); retries
 * keep their entry, so the measured latency covers every requeue and
 * repair in between. The submit/complete bookkeeping runs whenever
 * the caller invokes it (the span-id plumbing needs it even when SLO
 * evaluation is off); `enabled` only gates the per-tick evaluation.
 */
class SloMonitor
{
  public:
    /** One unfinished upload. */
    struct Upload
    {
        double submit_time = 0.0;
        uint64_t span_id = 0; //!< Pre-allocated e2e span id (0 = none).
        /** Absolute deadline (+infinity = none). */
        double deadline_time = std::numeric_limits<double>::infinity();
    };

    explicit SloMonitor(SloConfig cfg = {});

    /** Attach observability sinks (optional, not owned). */
    void attach(wsva::MetricsRegistry *metrics, wsva::TraceLog *trace);

    const SloConfig &config() const { return cfg_; }

    /**
     * A step entered the system at @p now. Callers must invoke this
     * unconditionally (even with SLO evaluation and tracing dark):
     * the enqueue timestamp is what queueAge() ages from, and a step
     * submitted while telemetry was off used to be invisible — after
     * a re-enable its age read from the wrong epoch. @p deadline_time
     * (+infinity = none) feeds the deadline-miss accounting.
     */
    void onSubmit(uint64_t step_id, double now, uint64_t span_id = 0,
                  double deadline_time =
                      std::numeric_limits<double>::infinity());

    /** The unfinished upload for @p step_id, or nullptr. */
    const Upload *find(uint64_t step_id) const;

    /**
     * A step terminally completed at @p now.
     * @return its end-to-end latency in seconds, or a negative value
     *         when the step was never tracked.
     */
    double onComplete(uint64_t step_id, double now);

    /**
     * A step left this cluster without completing (expelled for
     * cross-region reroute). Drops the tracking entry with no latency
     * or deadline accounting — the receiving region measures the
     * upload from its own onSubmit. Without this, expelled steps
     * would sit in the in-flight map forever, skewing queueAge and
     * leaking under sustained quarantine.
     */
    void onCancel(uint64_t step_id);

    /** Evaluate the windowed signals and the alert at tick time. */
    void onTick(double now);

    /** Windowed p99 over completions in the last window_ticks. */
    double windowP99() const;

    /** Fraction of recent ticks whose windowed p99 was over target. */
    double burnRate() const;

    bool alertActive() const { return alert_active_; }
    uint64_t alertsRaised() const { return alerts_raised_; }

    /** Age of the oldest unfinished upload (0 when none). */
    double queueAge(double now) const;

    size_t inflight() const { return inflight_.size(); }
    uint64_t completedCount() const { return completed_; }

    /** Completions whose latency exceeded the target (lifetime). */
    uint64_t violations() const { return violations_total_; }

    /** Deadline-carrying completions (lifetime). */
    uint64_t deadlineTracked() const { return deadline_tracked_; }

    /** Deadline-carrying completions that missed (lifetime). */
    uint64_t deadlineMissed() const { return deadline_missed_; }

    /** Lifetime deadline-miss fraction (0 when none tracked). */
    double deadlineMissRate() const;

    /** Miss fraction over deadline completions in the window. */
    double windowDeadlineMissRate() const;

    /** Lifetime end-to-end latency quantile. */
    double lifetimeQuantile(double q) const
    {
        return latency_.quantile(q);
    }

    /** Lifetime latency quantile over deadline-carrying steps only
     *  (the live traffic class; 0 when none completed). */
    double liveQuantile(double q) const
    {
        return live_latency_.quantile(q);
    }

    /** JSON object summarizing the SLO state at time @p now. */
    std::string exportJson(double now) const;

  private:
    SloConfig cfg_;
    wsva::MetricsRegistry *metrics_ = nullptr;
    wsva::TraceLog *trace_ = nullptr;

    // Hot path: one insert per submit, one find+erase per completion,
    // once per step — an open-addressing flat map keeps that churn
    // off the allocator entirely (bench_observability's 5% budget is
    // only ~4 ms of CPU; node-based map churn alone ate half of it).
    wsva::FlatMap64<Upload> inflight_;
    // (submit_time, step_id) in submission order. Submission times
    // are non-decreasing (the sim clock), so the oldest unfinished
    // upload is at the front once finished/stale entries are lazily
    // popped — queueAge() is amortized O(1) instead of a per-tick
    // scan of a map that grows without bound under overload.
    mutable std::deque<std::pair<double, uint64_t>> submit_order_;
    wsva::Histogram latency_;
    wsva::Histogram live_latency_; //!< Deadline-carrying steps only.
    uint64_t completed_ = 0;
    uint64_t violations_total_ = 0;
    uint64_t deadline_tracked_ = 0;
    uint64_t deadline_missed_ = 0;

    uint64_t tick_ = 0;
    // (tick, latency) of recent completions, pruned to the window.
    std::deque<std::pair<uint64_t, double>> window_latencies_;
    // (tick, missed) of recent deadline-carrying completions, pruned
    // to the window on the same edge (an entry stamped tick T leaves
    // exactly when tick_ reaches T + window_ticks).
    std::deque<std::pair<uint64_t, bool>> window_deadlines_;
    size_t window_deadline_missed_ = 0;
    // Completions in the window whose latency exceeds the target,
    // maintained incrementally. "windowed p99 > target" is exactly
    // "at least (n - rank) of the n window latencies exceed the
    // target", so the per-tick burning check is O(1) and never
    // materializes the p99 value.
    size_t over_target_in_window_ = 0;
    // Scratch for on-demand windowP99(); reused across calls.
    mutable std::vector<double> p99_scratch_;
    // windowP99() memo: valid until the window mutates (a completion
    // lands or a tick evicts), so the gauge decimation, the fleet
    // rollup, and exports on the same tick share one materialization.
    mutable bool p99_dirty_ = true;
    mutable double p99_cached_ = 0.0;
    // One flag per recent tick: was the windowed p99 over target?
    std::deque<bool> window_burning_;
    // Count of true flags in window_burning_, kept incrementally so
    // burnRate() is O(1) on the per-tick path.
    size_t burning_ticks_ = 0;
    bool alert_active_ = false;
    uint64_t alerts_raised_ = 0;
};

} // namespace wsva::cluster

#endif // WSVA_CLUSTER_SLO_H
