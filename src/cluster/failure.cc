#include "cluster/failure.h"

#include "common/logging.h"

namespace wsva::cluster {

bool
RepairQueue::tryEnter(int host_id, double now)
{
    if (contains(host_id))
        return true;
    if (repairing_.size() >=
        static_cast<size_t>(policy_.repair_cap)) {
        ++cap_deferrals_;
        return false;
    }
    repairing_[host_id] = now + policy_.repair_seconds;
    ++total_repairs_;
    return true;
}

std::vector<int>
RepairQueue::collectRepaired(double now)
{
    std::vector<int> done;
    for (auto it = repairing_.begin(); it != repairing_.end();) {
        if (it->second <= now) {
            done.push_back(it->first);
            it = repairing_.erase(it);
        } else {
            ++it;
        }
    }
    return done;
}

bool
RepairQueue::contains(int host_id) const
{
    return repairing_.count(host_id) > 0;
}

void
BlastRadiusTracker::recordChunk(uint64_t video_id, int vcu_global_id)
{
    video_vcus_[video_id].insert(vcu_global_id);
}

void
BlastRadiusTracker::recordDetectedCorruption(uint64_t video_id,
                                             int vcu_global_id)
{
    ++detected_;
    ++vcu_detections_[vcu_global_id];
    (void)video_id; // Detected chunks are reprocessed, video stays OK.
}

void
BlastRadiusTracker::recordEscapedCorruption(uint64_t video_id,
                                            int vcu_global_id)
{
    ++escaped_;
    corrupt_videos_.insert(video_id);
    (void)vcu_global_id;
}

size_t
BlastRadiusTracker::vcusTouching(uint64_t video_id) const
{
    auto it = video_vcus_.find(video_id);
    return it == video_vcus_.end() ? 0 : it->second.size();
}

int
BlastRadiusTracker::mostSuspectVcu() const
{
    int best = -1;
    uint64_t best_count = 0;
    for (const auto &[vcu, count] : vcu_detections_) {
        if (count > best_count) {
            best = vcu;
            best_count = count;
        }
    }
    return best;
}

} // namespace wsva::cluster
