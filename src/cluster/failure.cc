#include "cluster/failure.h"

#include <algorithm>

#include "common/logging.h"
#include "common/metrics.h"

namespace wsva::cluster {

bool
RepairQueue::tryEnter(int host_id, double now)
{
    if (contains(host_id))
        return true;
    if (repairing_.size() >=
        static_cast<size_t>(policy_.repair_cap)) {
        ++cap_deferrals_;
        if (metrics_ != nullptr)
            metrics_->inc("repair.cap_deferrals");
        return false;
    }
    repairing_[host_id] = now + policy_.repair_seconds;
    ++total_repairs_;
    if (metrics_ != nullptr)
        metrics_->inc("repair.entered");
    if (trace_ != nullptr)
        trace_->record(TraceEventType::HostEnterRepair, now, host_id);
    return true;
}

std::vector<int>
RepairQueue::collectRepaired(double now)
{
    std::vector<int> done;
    for (auto it = repairing_.begin(); it != repairing_.end();) {
        if (it->second <= now) {
            done.push_back(it->first);
            it = repairing_.erase(it);
        } else {
            ++it;
        }
    }
    for (int host_id : done) {
        if (metrics_ != nullptr)
            metrics_->inc("repair.completed");
        if (trace_ != nullptr)
            trace_->record(TraceEventType::HostRepaired, now, host_id);
    }
    return done;
}

double
RepairQueue::completionTime(int host_id) const
{
    auto it = repairing_.find(host_id);
    WSVA_ASSERT(it != repairing_.end(),
                "completionTime() for host %d not in repair", host_id);
    return it->second;
}

bool
RepairQueue::contains(int host_id) const
{
    return repairing_.count(host_id) > 0;
}

void
BlastRadiusTracker::recordChunk(uint64_t video_id, int vcu_global_id)
{
    video_vcus_[video_id].insert(vcu_global_id);
}

void
BlastRadiusTracker::recordDetectedCorruption(uint64_t video_id,
                                             int vcu_global_id)
{
    ++detected_;
    ++vcu_detections_[vcu_global_id];
    (void)video_id; // Detected chunks are reprocessed, video stays OK.
}

void
BlastRadiusTracker::recordEscapedCorruption(uint64_t video_id,
                                            int vcu_global_id)
{
    ++escaped_;
    corrupt_videos_.insert(video_id);
    (void)vcu_global_id;
}

size_t
BlastRadiusTracker::vcusTouching(uint64_t video_id) const
{
    auto it = video_vcus_.find(video_id);
    return it == video_vcus_.end() ? 0 : it->second.size();
}

int
BlastRadiusTracker::mostSuspectVcu() const
{
    int best = -1;
    uint64_t best_count = 0;
    for (const auto &[vcu, count] : vcu_detections_) {
        if (count > best_count) {
            best = vcu;
            best_count = count;
        }
    }
    return best;
}

size_t
BlastRadiusTracker::maxVcusPerVideo() const
{
    size_t widest = 0;
    for (const auto &[video, vcus] : video_vcus_)
        widest = std::max(widest, vcus.size());
    return widest;
}

void
BlastRadiusTracker::exportTo(wsva::MetricsRegistry &metrics) const
{
    metrics.setGauge("blast.videos_tracked",
                     static_cast<double>(video_vcus_.size()));
    metrics.setGauge("blast.corrupt_videos",
                     static_cast<double>(corrupt_videos_.size()));
    metrics.setGauge("blast.detected_chunks",
                     static_cast<double>(detected_));
    metrics.setGauge("blast.escaped_chunks",
                     static_cast<double>(escaped_));
    metrics.setGauge("blast.max_vcus_per_video",
                     static_cast<double>(maxVcusPerVideo()));
    metrics.setGauge("blast.most_suspect_vcu",
                     static_cast<double>(mostSuspectVcu()));
}

} // namespace wsva::cluster
