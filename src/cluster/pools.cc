#include "cluster/pools.h"

#include <algorithm>

#include "common/logging.h"

namespace wsva::cluster {

std::string
poolName(PoolKey key)
{
    const char *use =
        key.use_case == UseCase::Upload ? "upload" : "live";
    const char *prio = key.priority == Priority::Critical ? "critical"
                       : key.priority == Priority::Normal ? "normal"
                                                          : "batch";
    return std::string(use) + "/" + prio;
}

int
Pool::schedule(double now, const ResourceMappingPolicy &policy)
{
    int placed = 0;
    while (!backlog_.empty()) {
        const TranscodeStep step = backlog_.front();
        const ResourceVector need = stepResourceNeed(step, policy);
        Worker *chosen = nullptr;
        for (Worker *w : workers_) {
            if (w->canFit(need)) {
                chosen = w;
                break;
            }
        }
        if (chosen == nullptr)
            break;
        backlog_.pop_front();
        chosen->assign(step, need, now, stepServiceSeconds(step, policy));
        ++placed;
    }
    return placed;
}

double
Pool::pressure() const
{
    // Queued steps per worker held; an empty pool with work has
    // infinite pressure, an idle pool zero.
    if (backlog_.empty())
        return 0.0;
    if (workers_.empty())
        return 1e18;
    return static_cast<double>(backlog_.size()) /
           static_cast<double>(workers_.size());
}

void
Pool::grantWorker(Worker *worker)
{
    WSVA_ASSERT(worker != nullptr, "granting null worker");
    workers_.push_back(worker);
    std::sort(workers_.begin(), workers_.end(),
              [](const Worker *a, const Worker *b) {
                  return a->id() < b->id();
              });
}

Worker *
Pool::releaseIdleWorker()
{
    // Prefer the highest-numbered idle worker: the first-fit picker
    // packs low numbers first, so trailing workers idle first.
    for (auto it = workers_.rbegin(); it != workers_.rend(); ++it) {
        if ((*it)->idle()) {
            Worker *w = *it;
            workers_.erase(std::next(it).base());
            return w;
        }
    }
    return nullptr;
}

PoolManager::PoolManager(std::vector<Worker *> workers,
                         std::vector<PoolKey> keys)
{
    WSVA_ASSERT(!keys.empty(), "need at least one pool");
    for (const auto &key : keys)
        pools_.emplace_back(key);
    for (size_t i = 0; i < workers.size(); ++i)
        pools_[i % pools_.size()].grantWorker(workers[i]);
}

void
PoolManager::submit(const TranscodeStep &step)
{
    Pool *p = pool({step.use_case, step.priority});
    WSVA_ASSERT(p != nullptr, "no pool for step %lu",
                static_cast<unsigned long>(step.id));
    p->submit(step);
}

int
PoolManager::scheduleAll(double now, const ResourceMappingPolicy &policy)
{
    // Critical pools schedule first.
    std::vector<Pool *> order;
    for (auto &p : pools_)
        order.push_back(&p);
    std::sort(order.begin(), order.end(), [](Pool *a, Pool *b) {
        return static_cast<int>(a->key().priority) <
               static_cast<int>(b->key().priority);
    });
    int placed = 0;
    for (Pool *p : order)
        placed += p->schedule(now, policy);
    return placed;
}

int
PoolManager::rebalance()
{
    int moved = 0;
    for (;;) {
        // Highest-pressure pool that has queued work.
        Pool *needy = nullptr;
        for (auto &p : pools_) {
            if (p.backlogSize() == 0)
                continue;
            if (needy == nullptr || p.pressure() > needy->pressure() ||
                (p.pressure() == needy->pressure() &&
                 static_cast<int>(p.key().priority) <
                     static_cast<int>(needy->key().priority))) {
                needy = &p;
            }
        }
        if (needy == nullptr)
            break;

        // Donor: the lowest-pressure other pool with an idle worker.
        Pool *donor = nullptr;
        for (auto &p : pools_) {
            if (&p == needy)
                continue;
            if (p.pressure() >= needy->pressure())
                continue;
            if (donor == nullptr || p.pressure() < donor->pressure())
                donor = &p;
        }
        if (donor == nullptr)
            break;
        Worker *w = donor->releaseIdleWorker();
        if (w == nullptr) {
            // The donor's workers are all busy; nothing to move now.
            break;
        }
        needy->grantWorker(w);
        ++moved;
    }
    return moved;
}

Pool *
PoolManager::pool(PoolKey key)
{
    for (auto &p : pools_) {
        if (p.key() == key)
            return &p;
    }
    return nullptr;
}

size_t
PoolManager::totalBacklog() const
{
    size_t total = 0;
    for (const auto &p : pools_)
        total += p.backlogSize();
    return total;
}

} // namespace wsva::cluster
