/**
 * @file
 * Cluster-level simulation: hosts with 20 VCUs each, a pool of VCU
 * workers fed by a work queue through a pluggable scheduler, fault
 * injection with the paper's failure-management mitigations, and the
 * dynamic-tuning knobs (software-decode offload, NUMA awareness)
 * evaluated in Section 4.
 */

#ifndef WSVA_CLUSTER_CLUSTER_H
#define WSVA_CLUSTER_CLUSTER_H

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "cluster/consistent_hash.h"
#include "cluster/failure.h"
#include "cluster/scheduler.h"
#include "cluster/work.h"
#include "cluster/worker.h"
#include "common/rng.h"
#include "common/stats.h"

namespace wsva::cluster {

/** Full cluster configuration. */
struct ClusterConfig
{
    int hosts = 4;
    int vcus_per_host = 20;

    ResourceMappingPolicy mapping;

    /** true = multi-dimensional bin packing; false = legacy slots. */
    bool use_binpack = true;

    /** Worst-case slot bundle for the legacy scheduler. */
    ResourceVector slot_bundle;

    FailurePolicy failure;

    /** Per-VCU fault rates (per hour of simulated time). */
    double vcu_hard_fault_per_hour = 0.0;
    double vcu_silent_fault_per_hour = 0.0;

    /** Silently faulty VCUs look *fast* (black-holing). */
    double silent_speed_factor = 0.4;

    /** NUMA-aware worker placement (Section 4.3: +16-25%). */
    bool numa_aware = true;
    double numa_penalty_factor = 1.20;

    /**
     * Consistent-hash chunk placement (the paper's suggested blast-
     * radius reduction): chunks of one video prefer a small affinity
     * set of VCUs, falling back to any fitting worker.
     */
    bool use_consistent_hashing = false;
    size_t affinity_set_size = 3;

    uint64_t seed = 1;
};

/** Aggregated simulation results. */
struct ClusterMetrics
{
    double sim_seconds = 0.0;

    uint64_t steps_completed = 0;
    uint64_t steps_failed = 0;   //!< Hardware failure, retried.
    uint64_t steps_retried = 0;
    uint64_t corrupt_detected = 0;
    uint64_t corrupt_escaped = 0;

    double output_pixels = 0.0;  //!< Good (non-corrupt) pixels.
    double corrupt_pixels = 0.0;

    /** Good output throughput per *provisioned* VCU, Mpix/s. */
    double mpix_per_vcu = 0.0;

    /** Time-weighted average utilizations across active workers. */
    double encoder_utilization = 0.0;
    double decoder_utilization = 0.0;
    double host_cpu_utilization = 0.0;

    uint64_t sched_placed = 0;
    uint64_t sched_rejected = 0;
    size_t backlog_remaining = 0;
    uint64_t hosts_repaired = 0;
    int vcus_disabled = 0;
    int workers_quarantined = 0;
};

/** One host: 20 VCUs, each with exclusive worker + health state. */
struct HostModel
{
    int id = 0;
    bool in_repair = false;
    int fault_count = 0;
    std::vector<VcuHealth> vcu_health;
    std::vector<std::unique_ptr<Worker>> workers;
};

/** Arrival callback: steps arriving in (now - dt, now]. */
using ArrivalFn =
    std::function<std::vector<TranscodeStep>(double now, double dt)>;

/** The cluster simulator. */
class ClusterSim
{
  public:
    explicit ClusterSim(ClusterConfig cfg);

    /** Enqueue a step directly (tests / simple drivers). */
    void submit(const TranscodeStep &step);

    /**
     * Run for @p duration simulated seconds with tick @p dt, pulling
     * arrivals from @p arrivals (may be null).
     */
    ClusterMetrics run(double duration, double dt,
                       const ArrivalFn &arrivals = nullptr);

    /** Blast-radius data collected during run(). */
    const BlastRadiusTracker &blastRadius() const { return blast_; }

    /** Total provisioned VCUs. */
    int totalVcus() const { return cfg_.hosts * cfg_.vcus_per_host; }

  private:
    void injectFaults(double now, double dt);
    void manageRepairs(double now);
    void collectCompletions(double now, ClusterMetrics &metrics);
    void scheduleBacklog(double now);
    Worker *workerAt(int host, int vcu);

    ClusterConfig cfg_;
    wsva::Rng rng_;
    double clock_ = 0.0; //!< Continuous across run() calls.
    std::vector<HostModel> hosts_;
    std::unique_ptr<Scheduler> scheduler_;
    std::unique_ptr<ConsistentHashRing> ring_;
    std::deque<TranscodeStep> backlog_;
    RepairQueue repairs_;
    BlastRadiusTracker blast_;

    // Time-weighted utilization accumulators.
    wsva::RunningStat enc_util_samples_;
    wsva::RunningStat dec_util_samples_;
    wsva::RunningStat cpu_util_samples_;

    ClusterMetrics metrics_;
};

} // namespace wsva::cluster

#endif // WSVA_CLUSTER_CLUSTER_H
