/**
 * @file
 * Cluster-level simulation: hosts with 20 VCUs each, a pool of VCU
 * workers fed by a work queue through a pluggable scheduler, fault
 * injection with the paper's failure-management mitigations, and the
 * dynamic-tuning knobs (software-decode offload, NUMA awareness)
 * evaluated in Section 4.
 */

#ifndef WSVA_CLUSTER_CLUSTER_H
#define WSVA_CLUSTER_CLUSTER_H

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <limits>
#include <memory>
#include <vector>

#include "cluster/consistent_hash.h"
#include "cluster/event_queue.h"
#include "cluster/failure.h"
#include "cluster/fleet_health.h"
#include "cluster/scheduler.h"
#include "cluster/slo.h"
#include "cluster/work.h"
#include "cluster/worker.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/trace.h"

namespace wsva {
class DebugServer;
} // namespace wsva

namespace wsva::cluster {

/**
 * Run-loop engine. Tick scans every host and VCU once per dt —
 * simple, and the reference semantics — but costs
 * O(hosts x vcus_per_host) per tick whether anything happened or
 * not, which caps fleets at a few hundred hosts. Event replaces the
 * scan with a discrete-event core: an indexed min-heap of step
 * completions, fault arrivals, repair completions, arrival batches
 * and telemetry publishes, with worker state advanced lazily when an
 * event touches it. Per-event cost is O(log E); a quiet fleet costs
 * nothing. Fault-free runs produce identical ledgers in both
 * engines; with faults the engines draw from the same distributions
 * on different schedules (see DESIGN.md section 9).
 */
enum class SimEngine
{
    Tick = 0,
    Event = 1,
};

/** Full cluster configuration. */
struct ClusterConfig
{
    int hosts = 4;
    int vcus_per_host = 20;

    /** Run-loop engine (Tick = reference semantics, Event = scale). */
    SimEngine engine = SimEngine::Tick;

    ResourceMappingPolicy mapping;

    /** true = multi-dimensional bin packing; false = legacy slots. */
    bool use_binpack = true;

    /** Worst-case slot bundle for the legacy scheduler. */
    ResourceVector slot_bundle;

    FailurePolicy failure;

    /** Per-VCU fault rates (per hour of simulated time). */
    double vcu_hard_fault_per_hour = 0.0;
    double vcu_silent_fault_per_hour = 0.0;

    /** Silently faulty VCUs look *fast* (black-holing). */
    double silent_speed_factor = 0.4;

    /** NUMA-aware worker placement (Section 4.3: +16-25%). */
    bool numa_aware = true;
    double numa_penalty_factor = 1.20;

    /**
     * Consistent-hash chunk placement (the paper's suggested blast-
     * radius reduction): chunks of one video prefer a small affinity
     * set of VCUs, falling back to any fitting worker.
     */
    bool use_consistent_hashing = false;
    size_t affinity_set_size = 3;

    /**
     * Enable the metrics registry and trace log. Off, every record
     * call reduces to an atomic load, which is what the overhead
     * comparison in bench_cluster measures. The step-conservation
     * checker runs regardless (it is an invariant, not a metric).
     */
    bool observability = true;

    /** Trace ring-buffer capacity (most recent events kept). */
    size_t trace_capacity = 1 << 16;

    /**
     * Track which VCUs touched which videos (blast-radius forensics).
     * The tracker grows with distinct (video, VCU) pairs, which at
     * 200k VCUs and millions of steps dominates memory; fleet-scale
     * benches turn it off. Corruption *outcomes* (detected/escaped
     * counters) are always recorded.
     */
    bool track_blast_radius = true;

    /**
     * Span tracing on the deterministic sim timeline (gated by
     * `observability` like the registry and trace log). Each upload
     * gets an end-to-end "upload" span with "queue_wait" and
     * "execute" children on per-worker tracks, plus "host_repair" /
     * "quarantine" lifecycle spans on the host lane. Timestamps are
     * sim time, so a seeded run exports a byte-identical trace.
     */
    bool tracing = true;

    /** Span ring-buffer capacity (most recent spans kept). */
    size_t span_capacity = 1 << 16;

    /**
     * Dapper-style head sampling: trace every Nth upload (uploads
     * whose step id is divisible by the period get the full
     * upload/queue_wait/execute span tree; the rest record nothing).
     * 1 = trace everything — right for tests and small sims, and
     * keeps seeded traces byte-identical. At bench/production scale
     * the per-span cost times every step adds up; sampling keeps the
     * timeline representative at a fraction of the overhead. The SLO
     * monitor always tracks every upload regardless.
     */
    uint32_t span_sample_period = 1;

    /**
     * External tracer override (not owned; must outlive the sim).
     * Null = the sim owns its tracer. Sharing one tracer with the
     * transcode pipeline / optimizer puts every layer on one
     * exported timeline.
     */
    wsva::Tracer *tracer = nullptr;

    /** End-to-end upload latency SLO monitoring. */
    SloConfig slo;

    /**
     * Deadline scheduling / load-shedding policy for live traffic.
     * Deadline-carrying steps (live segments) always dispatch
     * earliest-deadline-first ahead of the FIFO lane; this policy
     * additionally lets the sim *make room* for them under overload.
     */
    struct DeadlinePolicy
    {
        /**
         * Master switch for load shedding. Off, live steps still get
         * EDF ordering but never displace batch work — the
         * graceful-degradation ablation arm.
         */
        bool shed_enabled = false;

        /**
         * Shed when a blocked live step's projected slack
         * (deadline - now - service time) drops below this. 0 sheds
         * only for steps that would already miss; a positive guard
         * sheds while there is still time for the preemption to help.
         */
        double slack_guard_seconds = 0.0;

        /** Also preempt Batch steps already *running* when parking
         *  queued batch work is not enough to place the live step. */
        bool preempt_running_batch = true;

        /**
         * Quiet period: shed steps return to the FIFO lane only once
         * the EDF lane has been empty and nothing was shed for this
         * long. Hysteresis against park/unpark thrash while a surge
         * is still ramping.
         */
        double release_after_seconds = 5.0;
    };
    DeadlinePolicy deadline;

    /**
     * Hosts per rack for the fleet-health hierarchy (rack id =
     * host id / hosts_per_rack). Purely an aggregation grouping; it
     * does not affect scheduling.
     */
    int hosts_per_rack = 2;

    /**
     * Publish a fleet-health rollup snapshot every N ticks (0 = off).
     * The rollup is double-buffered, so /statusz scrapes never block
     * the sim tick; gated by `observability` like the registry. The
     * default matches SloConfig::gauge_every_ticks (and the usual
     * Prometheus scrape interval at 1 s ticks), so the rollup reuses
     * the windowed-p99 materialization the gauge path already paid
     * for on the same tick.
     */
    size_t fleet_publish_every_ticks = 15;

    uint64_t seed = 1;
};

/** Aggregated simulation results. */
struct ClusterMetrics
{
    double sim_seconds = 0.0;

    uint64_t steps_completed = 0;
    uint64_t steps_failed = 0;   //!< Hardware failure, retried.
    uint64_t steps_retried = 0;
    uint64_t corrupt_detected = 0;
    uint64_t corrupt_escaped = 0;

    double output_pixels = 0.0;  //!< Good (non-corrupt) pixels.
    double corrupt_pixels = 0.0;

    /** Good output throughput per *provisioned* VCU, Mpix/s. */
    double mpix_per_vcu = 0.0;

    /** Time-weighted average utilizations across active workers. */
    double encoder_utilization = 0.0;
    double decoder_utilization = 0.0;
    double host_cpu_utilization = 0.0;

    uint64_t sched_placed = 0;
    uint64_t sched_rejected = 0;
    size_t backlog_remaining = 0;

    /** Batch steps parked to the shed lot (lifetime, this run). */
    uint64_t steps_shed = 0;
    /** Batch steps preempted off workers for live work (subset of
     *  steps_shed). */
    uint64_t steps_preempted = 0;
    /** Steps still parked in the shed lot at the horizon. */
    size_t shed_remaining = 0;
    /** Deadline-carrying completions / misses (lifetime ledger from
     *  the SLO monitor, snapshotted at the horizon). */
    uint64_t deadline_completions = 0;
    uint64_t deadline_misses = 0;

    /** Steps that entered the system during this run() call. */
    uint64_t steps_submitted = 0;

    /** Work still on workers when the horizon was reached. Without
     *  this the horizon silently ate in-flight steps and the ledger
     *  did not balance. */
    size_t steps_in_flight = 0;

    uint64_t hosts_repaired = 0;
    int vcus_disabled = 0;
    int workers_quarantined = 0;

    /** Step-conservation invariant audits (one per tick, or one per
     *  event batch under SimEngine::Event). */
    uint64_t conservation_checks = 0;
    uint64_t conservation_violations = 0;

    /** Events popped by the event engine (0 under SimEngine::Tick). */
    uint64_t events_processed = 0;
};

/** One host: 20 VCUs, each with exclusive worker + health state. */
struct HostModel
{
    int id = 0;
    bool in_repair = false;
    int fault_count = 0;
    std::vector<VcuHealth> vcu_health;
    std::vector<std::unique_ptr<Worker>> workers;
};

/** Arrival callback: steps arriving in (now - dt, now]. */
using ArrivalFn =
    std::function<std::vector<TranscodeStep>(double now, double dt)>;

/**
 * Step ledger over the whole life of a ClusterSim (across run()
 * calls). Every step that ever entered the system must be in exactly
 * one bucket: terminally done, running on a worker, queued, or
 * terminally failed. Failure paths in this simulator retry, so a
 * retried step simply moves back to the backlog bucket; nothing may
 * vanish. holds() is the invariant asserted every tick.
 */
struct ConservationSnapshot
{
    uint64_t submitted = 0;       //!< Ever entered (submit/arrivals).
    uint64_t completed = 0;       //!< Terminal: good or escaped-corrupt.
    uint64_t failed_terminal = 0; //!< Terminal failures (none today).
    uint64_t in_flight = 0;       //!< Currently on workers.
    uint64_t backlog = 0;         //!< Queued (incl. retries).
    uint64_t shed = 0;            //!< Parked in the shed lot.
    /** Expelled for cross-region reroute (left this cluster without
     *  completing here; the receiving cluster re-counts them in its
     *  own `submitted`). */
    uint64_t rerouted_away = 0;

    bool holds() const
    {
        return submitted == completed + failed_terminal + in_flight +
                                backlog + shed + rerouted_away;
    }
};

/** The cluster simulator. */
class ClusterSim
{
  public:
    /**
     * Top-level schema version of exportJson() — the single source of
     * truth for every JSON surface in the tree (cluster and global
     * exports share it; bench schema checks read it from the emitted
     * documents). Bump here, and only here, on any structural change.
     * History: 2 added "fleet_health"; 3 added the "shed"
     * conservation term and the SLO deadline-miss fields; 4 added the
     * "rerouted_away" conservation term and the global-router export;
     * 5 added the "build" stamp and the "profile" block (continuous
     * profiling layer).
     */
    static constexpr int kExportSchemaVersion = 5;

    explicit ClusterSim(ClusterConfig cfg);

    /** Enqueue a step directly (tests / simple drivers). */
    void submit(const TranscodeStep &step);

    /**
     * Run for @p duration simulated seconds with tick @p dt, pulling
     * arrivals from @p arrivals (may be null).
     */
    ClusterMetrics run(double duration, double dt,
                       const ArrivalFn &arrivals = nullptr);

    /** Blast-radius data collected during run(). */
    const BlastRadiusTracker &blastRadius() const { return blast_; }

    /** Total provisioned VCUs. */
    int totalVcus() const { return cfg_.hosts * cfg_.vcus_per_host; }

    /** The metrics registry (counters/gauges/histograms/series). */
    const wsva::MetricsRegistry &metricsRegistry() const
    {
        return registry_;
    }
    wsva::MetricsRegistry &metricsRegistry() { return registry_; }

    /** The structured event log. */
    const wsva::TraceLog &traceLog() const { return trace_; }
    wsva::TraceLog &traceLog() { return trace_; }

    /** The span tracer (the override when one was configured). */
    const wsva::Tracer &tracer() const { return *tracer_; }
    wsva::Tracer &tracer() { return *tracer_; }

    /** The SLO monitor. */
    const SloMonitor &slo() const { return slo_; }

    /** The double-buffered fleet-health board (/statusz source). */
    const FleetHealthBoard &fleetHealth() const { return fleet_; }

    /**
     * Build a fleet-health rollup of the current state (worker ->
     * host -> rack -> cluster). Called from the sim thread; scrape
     * threads read the published board instead.
     */
    FleetHealthSnapshot buildFleetHealth(double now) const;

    /**
     * Register the five standard z-pages on @p server: /healthz,
     * /varz, /metrics, /tracez, and /statusz (fed from the published
     * fleet-health rollup). The handlers only touch state that is
     * safe to read while run() executes on another thread — stop the
     * server before destroying the sim.
     */
    void attachDebugServer(wsva::DebugServer &server,
                           const std::string &build_info = "wsva "
                                                           "cluster");

    /** Current step ledger (valid between ticks and after run()). */
    ConservationSnapshot conservation() const;

    /** Steps currently running across all workers. */
    size_t inFlightSteps() const;

    /**
     * Expel every queued step (dispatch lanes + shed lot) for
     * cross-region rerouting. The steps move to the ledger's
     * `rerouted_away` bucket — conservation still holds — and their
     * SLO tracking entries are cancelled (the receiving cluster
     * measures them from its own submission). In-flight work is NOT
     * expelled: steps already on workers run to completion here.
     * Call between run() slices only.
     */
    std::vector<TranscodeStep> expelBacklog();

    /** Lifetime count of steps expelled by expelBacklog(). */
    uint64_t reroutedAway() const { return rerouted_away_total_; }

    /**
     * Pause (or resume) backlog dispatch. While paused, queued steps
     * — including retries failing off still-running workers — stay in
     * the dispatch lanes instead of being re-placed, so a router that
     * quarantines this cluster can expel them between run() slices
     * and the cluster actually drains rather than churning its own
     * retry loop forever. In-flight work is unaffected.
     */
    void setDispatchPaused(bool paused) { dispatch_paused_ = paused; }
    bool dispatchPaused() const { return dispatch_paused_; }

    /**
     * Flip every healthy VCU silently faulty at @p speed_factor —
     * the paper's black-hole mode (Section 4.4: fast, corrupt
     * completions that attract load), injected deterministically so
     * benches can drive one region into it mid-run. Newly assigned
     * steps see the scaled service time; steps already running are
     * untouched. Call between run() slices only.
     */
    void forceSilentFaults(double speed_factor);

    /**
     * JSON dump of the whole observability state: registry metrics,
     * the last @p max_trace_events trace events (plus lifetime event
     * counts), the fleet-health rollup, and the conservation ledger.
     * schema_version 2 added "fleet_health".
     */
    std::string exportJson(size_t max_trace_events = 256) const;

  private:
    // ---- Shared between both engines ----------------------------
    /** Per-outcome bookkeeping (retry/corrupt/complete paths). The
     *  operation and RNG-draw order is the contract both engines
     *  share; collectWorker() drives it for every collected step. */
    void processOutcome(HostModel &host, Worker *w,
                        const StepOutcome &outcome, double now);
    /** Collect finished (or failed) steps off one worker and run
     *  processOutcome on each, keeping the in-flight counter. */
    void collectWorker(HostModel &host, Worker *w, double now);
    /** Threshold check + capped repair entry + host drain. Schedules
     *  the RepairDone event / waitlists the host under the event
     *  engine. */
    void maybeEnterRepair(HostModel &host, double now);
    /** Repair finished: reset health, close lifecycle spans. */
    void restoreHost(HostModel &host, double now);
    /** One arrival batch: pull from @p arrivals and ledger. */
    void pullArrivals(const ArrivalFn &arrivals, double now, double dt);
    /** Publish a fleet-health rollup (caller gates on cadence). */
    void publishRollup(double now);
    /** Shared run() epilogue: final publish + metrics_ fill-in. */
    ClusterMetrics finishRun(double start, double now);

    // ---- Tick engine --------------------------------------------
    ClusterMetrics runTicks(double duration, double dt,
                            const ArrivalFn &arrivals);
    void injectFaults(double now, double dt);
    void manageRepairs(double now);
    void collectCompletions(double now);
    void scheduleBacklog(double now);
    /** Load shedding for a blocked live step: park queued batch work
     *  and (policy permitting) preempt running batch steps until
     *  @p need fits somewhere. @return a worker @p need now fits on,
     *  or nullptr when shedding could not make room. */
    Worker *shedForDeadline(const TranscodeStep &step,
                            const ResourceVector &need, double now);
    /** Return shed steps to the FIFO lane once the live crunch has
     *  passed (EDF lane empty + release_after_seconds of calm). */
    void maybeUnpark(double now);
    void checkConservation(double now);
    void sampleTick(double now);

    // ---- Event engine (cluster_events.cc) -----------------------
    ClusterMetrics runEvents(double duration, double dt,
                             const ArrivalFn &arrivals);
    void handleArrivalBatch(const ArrivalFn &arrivals, double now);
    void handleHardFault(double now);
    void handleSilentFault(double now);
    void handleRepairDone(double now);
    void handleWorkerDone(int gid, double now);
    void handleSloEval(double now);
    /** (Re)schedule the worker's single completion event to match
     *  its earliest running finish time; cancels a stale one. */
    void updateCompletionEvent(Worker *w);

    void trackUpload(const TranscodeStep &step, double now);
    /** Whether this step id is head-sampled for span tracing. */
    bool spanSampled(uint64_t step_id) const;
    Worker *workerAt(int host, int vcu);
    Worker *workerByGid(int gid);
    HostModel &hostOfGid(int gid);

    ClusterConfig cfg_;
    wsva::Rng rng_;
    double clock_ = 0.0; //!< Continuous across run() calls.
    std::vector<HostModel> hosts_;
    std::unique_ptr<Scheduler> scheduler_;
    std::unique_ptr<ConsistentHashRing> ring_;
    DispatchQueue backlog_;
    RepairQueue repairs_;

    // Preemption candidates: gids of workers that took a Batch step,
    // in assignment order. shedForDeadline() pops lazily (stale
    // entries — batch already drained — are skipped), so finding a
    // victim is amortized O(1) instead of an O(workers) scan per
    // blocked live step.
    std::deque<int> preempt_candidates_;
    // One flag per worker gid: is it already in preempt_candidates_?
    // Keeps the deque at most one entry per worker regardless of how
    // many batch steps land on it between sheds.
    std::vector<char> preempt_candidate_flag_;
    // Sim time of the last shed/preemption; -infinity before any.
    // maybeUnpark()'s calm-period hysteresis measures from here.
    double last_shed_time_ = -std::numeric_limits<double>::infinity();
    BlastRadiusTracker blast_;
    wsva::MetricsRegistry registry_;
    wsva::TraceLog trace_;
    wsva::Tracer own_tracer_;
    wsva::Tracer *tracer_ = nullptr; //!< cfg_.tracer or &own_tracer_.
    SloMonitor slo_;
    FleetHealthBoard fleet_;
    uint64_t ticks_ = 0; //!< Lifetime tick count (rollup cadence).

    // Lifetime per-host retry/completion counts feeding the rollup's
    // per-level retry rates (indexed by host id).
    std::vector<uint64_t> host_retries_;
    std::vector<uint64_t> host_completions_;

    // Open lifecycle intervals, closed into sim spans when they end
    // (-1 = none open). Indexed by host id / global worker id.
    std::vector<double> repair_enter_;
    std::vector<double> quarantine_enter_;

    // Pre-resolved handles for the per-step counters (hot paths run
    // once per step per tick; handles skip the name lookup).
    wsva::CounterHandle submitted_counter_;
    wsva::CounterHandle completed_counter_;
    wsva::CounterHandle retried_counter_;
    wsva::CounterHandle failed_counter_;

    // Lifetime step ledger (never reset; spans run() calls).
    uint64_t submitted_total_ = 0;
    uint64_t completed_total_ = 0;
    uint64_t failed_terminal_total_ = 0;
    uint64_t rerouted_away_total_ = 0;

    // Backlog dispatch gate (setDispatchPaused): true while a global
    // router holds this cluster in quarantine.
    bool dispatch_paused_ = false;

    // Steps currently on workers, maintained incrementally at every
    // assign/collect/abort so conservation checks and fleet rollups
    // are O(1) instead of an O(workers) scan. Debug builds cross-
    // check it against the full scan (small fleets only).
    uint64_t in_flight_count_ = 0;

    /** Live state of one runEvents() call (stack-owned there; ev_
     *  points at it so shared helpers know the event engine is
     *  driving and can schedule/cancel events). */
    struct EventRun
    {
        EventQueue queue;
        double dt = 0.0;
        double end = 0.0; //!< start + duration (arrival-chain bound).
        double hard_rate = 0.0; //!< Fleet-wide hard faults per second.
        double silent_rate = 0.0;
        const ArrivalFn *arrivals = nullptr;
        //!< Per-worker pending completion event (gid-indexed).
        std::vector<EventQueue::Handle> completion_ev;
        std::deque<int> repair_waiting; //!< Hosts deferred by the cap.
        std::vector<char> repair_waitlisted; //!< Dedup flag, host id.
        bool work_added = false;       //!< Backlog dispatch needed.
        bool capacity_changed = false; //!< A worker freed capacity.
    };
    EventRun *ev_ = nullptr; //!< Non-null only inside runEvents().

    // Time-weighted utilization accumulators.
    wsva::RunningStat enc_util_samples_;
    wsva::RunningStat dec_util_samples_;
    wsva::RunningStat cpu_util_samples_;

    ClusterMetrics metrics_;
};

} // namespace wsva::cluster

#endif // WSVA_CLUSTER_CLUSTER_H
