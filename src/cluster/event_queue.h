/**
 * @file
 * Indexed min-heap event queue for the discrete-event cluster core.
 *
 * The tick engine pays O(hosts x vcus) every tick whether anything
 * happened or not; the event engine pays O(log E) per *event*. This
 * queue is its backbone: a binary min-heap of (time, type, seq) keys
 * over a slab of event records, with an index from slab slot to heap
 * position so any pending event can be cancelled in O(log E). The
 * cluster uses cancellation for worker completion events (a new
 * assignment can pull a worker's earliest finish time earlier) and
 * for draining a host's workers when it enters repair.
 *
 * Ordering is fully deterministic: ties on time break by event type
 * (mirroring the phase order of one tick: arrivals, fault injection,
 * repairs, completions, SLO accounting, telemetry publish), then by a
 * monotonically increasing schedule sequence number. Handles are slab
 * indices tagged with a generation byte so a stale cancel of a slot
 * that was already popped and reused is detected instead of silently
 * removing the wrong event.
 */

#ifndef WSVA_CLUSTER_EVENT_QUEUE_H
#define WSVA_CLUSTER_EVENT_QUEUE_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace wsva::cluster {

/**
 * Event kinds, in tie-break priority order. At equal timestamps the
 * queue pops lower-valued types first, mirroring the tick engine's
 * phase order within one tick.
 */
enum class SimEventType : uint8_t {
    ArrivalBatch = 0,  //!< Pull a batch from the arrival function.
    HardFault = 1,     //!< Fleet-level hard-fault process fires.
    SilentFault = 2,   //!< Fleet-level silent-fault process fires.
    RepairDone = 3,    //!< A host's repair completes.
    WorkerDone = 4,    //!< A worker's earliest running step finishes.
    SloEval = 5,       //!< SLO window accounting boundary.
    Publish = 6,       //!< Fleet-health rollup + telemetry sample.
};

/** Indexed binary min-heap of simulation events. Not thread-safe. */
class EventQueue
{
  public:
    /** Opaque reference to a pending event (slot | generation tag). */
    using Handle = uint64_t;
    static constexpr Handle kInvalidHandle = ~0ull;

    /** A popped event. */
    struct Event
    {
        double time = 0.0;
        SimEventType type = SimEventType::ArrivalBatch;
        int32_t arg = 0; //!< Worker/host id, or unused.
    };

    /** Schedule an event; returns a handle valid until pop/cancel. */
    Handle schedule(double time, SimEventType type, int32_t arg = 0);

    /**
     * Cancel a pending event. Safe to call with a handle whose event
     * already fired (or was already cancelled): the generation tag
     * detects staleness and the call becomes a no-op, returning false.
     */
    bool cancel(Handle h);

    /** True when @p h still refers to a pending event. */
    bool pending(Handle h) const;

    /** Scheduled time of a pending event (asserts pending(h)). */
    double timeOf(Handle h) const;

    bool empty() const { return heap_.empty(); }
    size_t size() const { return heap_.size(); }

    /** Earliest pending event time (asserts non-empty). */
    double nextTime() const;

    /** Pop the earliest event (asserts non-empty). */
    Event pop();

    uint64_t scheduled() const { return scheduled_; }
    uint64_t cancelled() const { return cancelled_; }
    uint64_t popped() const { return popped_; }

    /** Bytes of backing storage (bench memory accounting). */
    size_t capacityBytes() const;

  private:
    struct Slot
    {
        double time = 0.0;
        uint64_t seq = 0;        //!< Global schedule order (tie-break).
        int32_t arg = 0;
        SimEventType type = SimEventType::ArrivalBatch;
        uint8_t generation = 0;  //!< Bumped on free; tags handles.
        uint32_t heap_pos = 0;   //!< Position in heap_ while pending.
        uint32_t next_free = kNoFree;
        bool live = false;
    };

    static constexpr uint32_t kNoFree = ~0u;

    bool before(uint32_t a, uint32_t b) const;
    void siftUp(uint32_t pos);
    void siftDown(uint32_t pos);
    void heapSwap(uint32_t a, uint32_t b);
    void removeAt(uint32_t pos);
    uint32_t slotOf(Handle h) const;

    std::vector<Slot> slots_;
    std::vector<uint32_t> heap_; //!< Heap of slot indices.
    uint32_t free_head_ = kNoFree;
    uint64_t next_seq_ = 0;
    uint64_t scheduled_ = 0;
    uint64_t cancelled_ = 0;
    uint64_t popped_ = 0;
};

} // namespace wsva::cluster

#endif // WSVA_CLUSTER_EVENT_QUEUE_H
