#include "cluster/event_queue.h"

#include "common/logging.h"

namespace wsva::cluster {

namespace {

constexpr uint64_t kSlotBits = 40; // 2^40 concurrent slots is plenty.
constexpr uint64_t kSlotMask = (1ull << kSlotBits) - 1;

uint64_t
makeHandle(uint32_t slot, uint8_t generation)
{
    return (static_cast<uint64_t>(generation) << kSlotBits) | slot;
}

} // namespace

uint32_t
EventQueue::slotOf(Handle h) const
{
    return static_cast<uint32_t>(h & kSlotMask);
}

bool
EventQueue::before(uint32_t a, uint32_t b) const
{
    const Slot &sa = slots_[a];
    const Slot &sb = slots_[b];
    if (sa.time != sb.time)
        return sa.time < sb.time;
    if (sa.type != sb.type)
        return sa.type < sb.type;
    return sa.seq < sb.seq;
}

void
EventQueue::heapSwap(uint32_t a, uint32_t b)
{
    std::swap(heap_[a], heap_[b]);
    slots_[heap_[a]].heap_pos = a;
    slots_[heap_[b]].heap_pos = b;
}

void
EventQueue::siftUp(uint32_t pos)
{
    while (pos > 0) {
        const uint32_t parent = (pos - 1) / 2;
        if (!before(heap_[pos], heap_[parent]))
            break;
        heapSwap(pos, parent);
        pos = parent;
    }
}

void
EventQueue::siftDown(uint32_t pos)
{
    const uint32_t n = static_cast<uint32_t>(heap_.size());
    for (;;) {
        const uint32_t left = 2 * pos + 1;
        if (left >= n)
            break;
        uint32_t best = left;
        const uint32_t right = left + 1;
        if (right < n && before(heap_[right], heap_[left]))
            best = right;
        if (!before(heap_[best], heap_[pos]))
            break;
        heapSwap(pos, best);
        pos = best;
    }
}

EventQueue::Handle
EventQueue::schedule(double time, SimEventType type, int32_t arg)
{
    uint32_t slot;
    if (free_head_ != kNoFree) {
        slot = free_head_;
        free_head_ = slots_[slot].next_free;
    } else {
        slot = static_cast<uint32_t>(slots_.size());
        slots_.emplace_back();
    }
    Slot &s = slots_[slot];
    s.time = time;
    s.seq = next_seq_++;
    s.arg = arg;
    s.type = type;
    s.live = true;
    s.heap_pos = static_cast<uint32_t>(heap_.size());
    heap_.push_back(slot);
    siftUp(s.heap_pos);
    ++scheduled_;
    return makeHandle(slot, s.generation);
}

void
EventQueue::removeAt(uint32_t pos)
{
    const uint32_t last = static_cast<uint32_t>(heap_.size()) - 1;
    const uint32_t slot = heap_[pos];
    if (pos != last) {
        heapSwap(pos, last);
        heap_.pop_back();
        // The swapped-in element may need to move either way.
        siftDown(pos);
        siftUp(pos);
    } else {
        heap_.pop_back();
    }
    Slot &s = slots_[slot];
    s.live = false;
    ++s.generation;
    s.next_free = free_head_;
    free_head_ = slot;
}

bool
EventQueue::pending(Handle h) const
{
    if (h == kInvalidHandle)
        return false;
    const uint32_t slot = slotOf(h);
    if (slot >= slots_.size())
        return false;
    const Slot &s = slots_[slot];
    return s.live &&
           s.generation == static_cast<uint8_t>(h >> kSlotBits);
}

double
EventQueue::timeOf(Handle h) const
{
    WSVA_ASSERT(pending(h), "timeOf() on a non-pending event");
    return slots_[slotOf(h)].time;
}

bool
EventQueue::cancel(Handle h)
{
    if (!pending(h))
        return false;
    const uint32_t slot = slotOf(h);
    removeAt(slots_[slot].heap_pos);
    ++cancelled_;
    return true;
}

double
EventQueue::nextTime() const
{
    WSVA_ASSERT(!heap_.empty(), "nextTime() on an empty queue");
    return slots_[heap_[0]].time;
}

EventQueue::Event
EventQueue::pop()
{
    WSVA_ASSERT(!heap_.empty(), "pop() on an empty queue");
    const uint32_t slot = heap_[0];
    Event ev;
    ev.time = slots_[slot].time;
    ev.type = slots_[slot].type;
    ev.arg = slots_[slot].arg;
    removeAt(0);
    ++popped_;
    return ev;
}

size_t
EventQueue::capacityBytes() const
{
    return slots_.capacity() * sizeof(Slot) +
           heap_.capacity() * sizeof(uint32_t);
}

} // namespace wsva::cluster
