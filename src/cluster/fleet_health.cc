#include "cluster/fleet_health.h"

#include <atomic>
#include <utility>

#include "common/logging.h"

namespace wsva::cluster {

const char *
workerHealthStateName(WorkerHealthState state)
{
    switch (state) {
      case WorkerHealthState::Healthy: return "healthy";
      case WorkerHealthState::Degraded: return "degraded";
      case WorkerHealthState::Quarantined: return "quarantined";
      case WorkerHealthState::InRepair: return "in_repair";
    }
    return "unknown";
}

WorkerHealthState
classifyWorker(bool host_in_repair, bool refused, bool vcu_disabled,
               bool silent_fault)
{
    if (host_in_repair)
        return WorkerHealthState::InRepair;
    if (refused)
        return WorkerHealthState::Quarantined;
    if (vcu_disabled || silent_fault)
        return WorkerHealthState::Degraded;
    return WorkerHealthState::Healthy;
}

void
HealthCounts::add(WorkerHealthState state)
{
    switch (state) {
      case WorkerHealthState::Healthy: ++healthy; break;
      case WorkerHealthState::Degraded: ++degraded; break;
      case WorkerHealthState::Quarantined: ++quarantined; break;
      case WorkerHealthState::InRepair: ++in_repair; break;
    }
}

void
HealthCounts::merge(const HealthCounts &other)
{
    healthy += other.healthy;
    degraded += other.degraded;
    quarantined += other.quarantined;
    in_repair += other.in_repair;
}

namespace {

void
appendCountsJson(std::string &out, const HealthCounts &c)
{
    out += strformat("{\"healthy\": %llu, \"degraded\": %llu, "
                     "\"quarantined\": %llu, \"in_repair\": %llu, "
                     "\"total\": %llu}",
                     static_cast<unsigned long long>(c.healthy),
                     static_cast<unsigned long long>(c.degraded),
                     static_cast<unsigned long long>(c.quarantined),
                     static_cast<unsigned long long>(c.in_repair),
                     static_cast<unsigned long long>(c.total()));
}

void
appendNodeJson(std::string &out, const NodeHealth &node)
{
    out += strformat("{\"id\": %d, \"counts\": ", node.id);
    appendCountsJson(out, node.counts);
    out += strformat(", \"encoder_utilization\": %.6g, "
                     "\"retry_rate\": %.6g, \"retries\": %llu, "
                     "\"completions\": %llu}",
                     node.encoder_utilization, node.retry_rate,
                     static_cast<unsigned long long>(node.retries),
                     static_cast<unsigned long long>(node.completions));
}

/** One fixed-width hierarchy row for toText(). */
std::string
nodeRow(const char *label, const HealthCounts &c, double util,
        double retry_rate)
{
    return strformat("  %-12s %4llu ok %4llu deg %4llu quar "
                     "%4llu rep | util %5.1f%% | retry %5.2f%%\n",
                     label, static_cast<unsigned long long>(c.healthy),
                     static_cast<unsigned long long>(c.degraded),
                     static_cast<unsigned long long>(c.quarantined),
                     static_cast<unsigned long long>(c.in_repair),
                     util * 100.0, retry_rate * 100.0);
}

} // namespace

std::string
FleetHealthSnapshot::toText() const
{
    std::string out = strformat(
        "fleet status @ sim t=%.1fs (tick %llu)\n\n", sim_time,
        static_cast<unsigned long long>(tick));

    // The alert banner first: the single bit an operator pages on.
    if (slo_alert_active) {
        out += strformat("*** SLO BURN ALERT ACTIVE: burn rate %.0f%%, "
                         "window p99 %.1fs ***\n\n",
                         slo_burn_rate * 100.0, slo_window_p99);
    } else {
        out += strformat("slo ok: burn rate %.0f%%, window p99 %.1fs, "
                         "oldest queued %.1fs\n\n",
                         slo_burn_rate * 100.0, slo_window_p99,
                         slo_queue_age);
    }

    out += nodeRow("cluster", cluster, encoder_utilization, retry_rate);
    for (const auto &rack : racks) {
        out += nodeRow(strformat("rack %d", rack.id).c_str(),
                       rack.counts, rack.encoder_utilization,
                       rack.retry_rate);
        for (const auto &host : hosts) {
            if (hosts_per_rack > 0 && host.id / hosts_per_rack != rack.id)
                continue;
            out += nodeRow(strformat("  host %d", host.id).c_str(),
                           host.counts, host.encoder_utilization,
                           host.retry_rate);
        }
    }
    out += strformat("\nbacklog %llu, in-flight %llu, shed %llu\n",
                     static_cast<unsigned long long>(backlog),
                     static_cast<unsigned long long>(in_flight),
                     static_cast<unsigned long long>(shed));
    if (deadline_tracked > 0) {
        out += strformat("live: %llu deadline completions, windowed "
                         "miss rate %.2f%%\n",
                         static_cast<unsigned long long>(
                             deadline_tracked),
                         deadline_miss_rate * 100.0);
    }
    return out;
}

std::string
FleetHealthSnapshot::toJson() const
{
    std::string out = strformat(
        "{\"sim_time\": %.6g, \"tick\": %llu, \"vcus_per_host\": %d, "
        "\"hosts_per_rack\": %d, \"counts\": ",
        sim_time, static_cast<unsigned long long>(tick), vcus_per_host,
        hosts_per_rack);
    appendCountsJson(out, cluster);
    out += strformat(
        ", \"encoder_utilization\": %.6g, \"retry_rate\": %.6g, "
        "\"retries\": %llu, \"completions\": %llu, "
        "\"backlog\": %llu, \"in_flight\": %llu, \"shed\": %llu, "
        "\"slo\": {\"alert_active\": %s, \"burn_rate\": %.6g, "
        "\"window_p99\": %.6g, \"queue_age\": %.6g, "
        "\"deadline_tracked\": %llu, \"deadline_miss_rate\": %.6g}, "
        "\"racks\": [",
        encoder_utilization, retry_rate,
        static_cast<unsigned long long>(retries),
        static_cast<unsigned long long>(completions),
        static_cast<unsigned long long>(backlog),
        static_cast<unsigned long long>(in_flight),
        static_cast<unsigned long long>(shed),
        slo_alert_active ? "true" : "false", slo_burn_rate,
        slo_window_p99, slo_queue_age,
        static_cast<unsigned long long>(deadline_tracked),
        deadline_miss_rate);
    for (size_t i = 0; i < racks.size(); ++i) {
        if (i > 0)
            out += ", ";
        appendNodeJson(out, racks[i]);
    }
    out += "], \"hosts\": [";
    for (size_t i = 0; i < hosts.size(); ++i) {
        if (i > 0)
            out += ", ";
        appendNodeJson(out, hosts[i]);
    }
    out += "]}";
    return out;
}

void
FleetHealthBoard::publish(FleetHealthSnapshot snap)
{
    // Build the immutable buffer outside the lock; the swap itself is
    // one shared_ptr exchange. A scraper mid-read keeps the previous
    // buffer alive through its own shared_ptr.
    auto next = std::make_shared<const FleetHealthSnapshot>(
        std::move(snap));
    {
        std::lock_guard<wsva::SpinLock> lock(lock_);
        current_.swap(next);
    }
    // `next` (the old buffer) releases here, after the lock.
    publishes_.fetch_add(1, std::memory_order_relaxed);
}

std::shared_ptr<const FleetHealthSnapshot>
FleetHealthBoard::snapshot() const
{
    std::lock_guard<wsva::SpinLock> lock(lock_);
    return current_;
}

void
FleetHealthBoard::exportGauges(wsva::MetricsRegistry &registry) const
{
    const auto snap = snapshot();
    if (snap == nullptr)
        return;
    registry.setGauge("fleet.healthy",
                      static_cast<double>(snap->cluster.healthy));
    registry.setGauge("fleet.degraded",
                      static_cast<double>(snap->cluster.degraded));
    registry.setGauge("fleet.quarantined",
                      static_cast<double>(snap->cluster.quarantined));
    registry.setGauge("fleet.in_repair",
                      static_cast<double>(snap->cluster.in_repair));
    registry.setGauge("fleet.encoder_utilization",
                      snap->encoder_utilization);
    registry.setGauge("fleet.retry_rate", snap->retry_rate);
    registry.setGauge("fleet.shed", static_cast<double>(snap->shed));
    if (snap->deadline_tracked > 0)
        registry.setGauge("fleet.deadline_miss_rate",
                          snap->deadline_miss_rate);
    for (const auto &rack : snap->racks) {
        const std::string prefix = strformat("fleet.rack%d.", rack.id);
        registry.setGauge(prefix + "healthy",
                          static_cast<double>(rack.counts.healthy));
        registry.setGauge(prefix + "utilization",
                          rack.encoder_utilization);
        registry.setGauge(prefix + "retry_rate", rack.retry_rate);
    }
}

} // namespace wsva::cluster
