/**
 * @file
 * Logical compute pools (Section 3.3.3): "Each cluster has multiple
 * logical 'pools' of computing defined by use case (upload, live)
 * and priority (critical, normal, batch) that trade-off resources
 * based on each pool's demand. Each pool has its own scheduler and
 * multiple workers... This causes workers to become idle when
 * pool-level usage drops, at which point they may be stopped and
 * reallocated to other pools in the cluster, maximizing cluster-wide
 * VCU utilization."
 *
 * The PoolManager owns the worker-to-pool assignment: each pool runs
 * its own first-fit bin-packing pick over the workers it currently
 * holds, and a rebalance step moves fully idle workers from
 * low-pressure pools to high-pressure ones (priority breaking ties).
 */

#ifndef WSVA_CLUSTER_POOLS_H
#define WSVA_CLUSTER_POOLS_H

#include <cstddef>
#include <deque>
#include <string>
#include <vector>

#include "cluster/work.h"
#include "cluster/worker.h"

namespace wsva::cluster {

/** Identity of a pool. */
struct PoolKey
{
    UseCase use_case = UseCase::Upload;
    Priority priority = Priority::Normal;

    bool operator==(const PoolKey &other) const = default;
};

/** Human-readable pool name ("upload/normal"). */
std::string poolName(PoolKey key);

/** One logical pool: backlog + the workers currently assigned. */
class Pool
{
  public:
    explicit Pool(PoolKey key) : key_(key) {}

    PoolKey key() const { return key_; }

    /** Enqueue a step (FIFO service queue). */
    void submit(const TranscodeStep &step) { backlog_.push_back(step); }

    /**
     * Schedule as much of the backlog as fits onto this pool's
     * workers (first fit by worker number, head-of-line order).
     * @return Steps placed.
     */
    int schedule(double now, const ResourceMappingPolicy &policy);

    /** Demand pressure: queued work vs workers held. */
    double pressure() const;

    size_t backlogSize() const { return backlog_.size(); }
    size_t workerCount() const { return workers_.size(); }

    /** Workers are granted/revoked by the PoolManager. */
    void grantWorker(Worker *worker);

    /**
     * Release one fully idle worker (nullptr if none). Busy workers
     * are never revoked — the paper stops *idle* workers.
     */
    Worker *releaseIdleWorker();

    const std::vector<Worker *> &workers() const { return workers_; }

  private:
    PoolKey key_;
    std::vector<Worker *> workers_;
    std::deque<TranscodeStep> backlog_;
};

/** Owns pools and the worker-to-pool assignment. */
class PoolManager
{
  public:
    /**
     * @param workers The cluster's workers, initially distributed
     *        round-robin across @p keys.
     */
    PoolManager(std::vector<Worker *> workers,
                std::vector<PoolKey> keys);

    /** Route a step to its (use case, priority) pool. */
    void submit(const TranscodeStep &step);

    /** Schedule all pools; returns total placements. */
    int scheduleAll(double now, const ResourceMappingPolicy &policy);

    /**
     * Move idle workers from over-provisioned pools toward pools
     * with higher pressure (critical > normal > batch when tied).
     * @return Workers moved.
     */
    int rebalance();

    Pool *pool(PoolKey key);
    const std::vector<Pool> &pools() const { return pools_; }

    /** Total backlog across pools. */
    size_t totalBacklog() const;

  private:
    std::vector<Pool> pools_;
};

} // namespace wsva::cluster

#endif // WSVA_CLUSTER_POOLS_H
