#include "cluster/scheduler.h"

#include <algorithm>

#include "common/logging.h"
#include "common/metrics.h"

namespace wsva::cluster {

void
DispatchQueue::push_back(const TranscodeStep &step)
{
    if (step.hasDeadline()) {
        edf_.push_back({step, next_seq_++});
        std::push_heap(edf_.begin(), edf_.end());
    } else {
        fifo_.push_back(step);
    }
}

void
DispatchQueue::push_front(const TranscodeStep &step)
{
    if (step.hasDeadline()) {
        // A retried deadline step re-enters the EDF lane; its
        // deadline, not its retry-ness, decides its place. The fresh
        // seq only breaks exact-deadline ties.
        edf_.push_back({step, next_seq_++});
        std::push_heap(edf_.begin(), edf_.end());
    } else {
        fifo_.push_front(step);
    }
}

const TranscodeStep &
DispatchQueue::front() const
{
    WSVA_ASSERT(!empty(), "front() on an empty dispatch queue");
    if (!edf_.empty())
        return edf_.front().step;
    return fifo_.front();
}

void
DispatchQueue::pop_front()
{
    WSVA_ASSERT(!empty(), "pop_front() on an empty dispatch queue");
    if (!edf_.empty()) {
        std::pop_heap(edf_.begin(), edf_.end());
        edf_.pop_back();
        return;
    }
    fifo_.pop_front();
}

size_t
DispatchQueue::parkBatch()
{
    // Single rebuild pass (mid-deque erase would be quadratic). Under
    // sustained surge this is cheap: previously parked steps already
    // sit in shed_, so the pass only touches arrivals since the last
    // park.
    size_t parked = 0;
    std::deque<TranscodeStep> keep;
    for (auto &step : fifo_) {
        if (step.priority == Priority::Batch) {
            shed_.push_back(std::move(step));
            ++parked;
        } else {
            keep.push_back(std::move(step));
        }
    }
    fifo_.swap(keep);
    return parked;
}

void
DispatchQueue::parkStep(const TranscodeStep &step)
{
    shed_.push_back(step);
}

size_t
DispatchQueue::unparkAll()
{
    const size_t released = shed_.size();
    while (!shed_.empty()) {
        fifo_.push_back(shed_.front());
        shed_.pop_front();
    }
    return released;
}

std::vector<TranscodeStep>
DispatchQueue::drainAll()
{
    std::vector<TranscodeStep> out;
    out.reserve(edf_.size() + fifo_.size() + shed_.size());
    // EDF lane in dispatch order (heap pops), then FIFO, then shed —
    // the receiving region re-queues in this order, so relative
    // urgency survives the reroute.
    while (!edf_.empty()) {
        std::pop_heap(edf_.begin(), edf_.end());
        out.push_back(std::move(edf_.back().step));
        edf_.pop_back();
    }
    for (auto &step : fifo_)
        out.push_back(std::move(step));
    fifo_.clear();
    for (auto &step : shed_)
        out.push_back(std::move(step));
    shed_.clear();
    return out;
}

ResourceVector
Scheduler::reservationFor(const ResourceVector &need) const
{
    return need;
}

void
Scheduler::attachMetrics(wsva::MetricsRegistry *metrics)
{
    if (metrics == nullptr) {
        placed_counter_ = wsva::CounterHandle();
        rejected_counter_ = wsva::CounterHandle();
        return;
    }
    placed_counter_ = metrics->counterHandle("sched.placed");
    rejected_counter_ = metrics->counterHandle("sched.rejected");
}

void
Scheduler::recordPick(bool placed)
{
    if (placed) {
        ++stats_.placed;
        placed_counter_.inc();
    } else {
        ++stats_.rejected;
        rejected_counter_.inc();
    }
}

void
AvailabilityIndex::build(std::vector<Worker *> workers)
{
    workers_ = std::move(workers);

    // Index every dimension any worker's capacity defines.
    dims_.clear();
    for (const Worker *w : workers_) {
        const ResourceVector &cap = w->capacity();
        for (int i = 0; i < cap.size(); ++i) {
            const uint16_t id = cap.dimId(i);
            auto it = std::lower_bound(dims_.begin(), dims_.end(), id);
            if (it == dims_.end() || *it != id)
                dims_.insert(it, id);
        }
    }
    WSVA_ASSERT(!workers_.empty(), "availability index over no workers");
    WSVA_ASSERT(dims_.size() <=
                    static_cast<size_t>(ResourceVector::kMaxDims),
                "too many distinct dimensions to index (%zu)",
                dims_.size());

    leaves_ = 1;
    while (leaves_ < workers_.size())
        leaves_ <<= 1;
    // Padding leaves hold -1 so no request ever descends into them.
    tree_.assign(static_cast<size_t>(2) * leaves_ * dims_.size(), -1.0);
    for (size_t pos = 0; pos < workers_.size(); ++pos)
        writeLeaf(static_cast<int>(pos));
    const size_t stride = dims_.size();
    for (uint32_t node = leaves_ - 1; node >= 1; --node) {
        double *dst = &tree_[node * stride];
        const double *left = &tree_[(2 * node) * stride];
        const double *right = &tree_[(2 * node + 1) * stride];
        for (size_t d = 0; d < stride; ++d)
            dst[d] = std::max(left[d], right[d]);
    }
}

void
AvailabilityIndex::writeLeaf(int pos)
{
    const Worker *w = workers_[pos];
    const size_t stride = dims_.size();
    double *leaf = &tree_[(leaves_ + static_cast<uint32_t>(pos)) * stride];
    const bool eligible =
        !w->refused() && !(w->vcu() != nullptr && w->vcu()->disabled);
    if (!eligible) {
        for (size_t d = 0; d < stride; ++d)
            leaf[d] = -1.0;
        return;
    }
    const ResourceVector &avail = w->available();
    for (size_t d = 0; d < stride; ++d)
        leaf[d] = avail.get(dims_[d]);
}

void
AvailabilityIndex::update(int pos)
{
    writeLeaf(pos);
    const size_t stride = dims_.size();
    for (uint32_t node = (leaves_ + static_cast<uint32_t>(pos)) / 2;
         node >= 1; node /= 2) {
        double *dst = &tree_[node * stride];
        const double *left = &tree_[(2 * node) * stride];
        const double *right = &tree_[(2 * node + 1) * stride];
        bool changed = false;
        for (size_t d = 0; d < stride; ++d) {
            const double m = std::max(left[d], right[d]);
            if (dst[d] != m) {
                dst[d] = m;
                changed = true;
            }
        }
        if (!changed)
            break;
    }
}

Worker *
AvailabilityIndex::descend(uint32_t node, const double *need_amt,
                           const ResourceVector &need) const
{
    const size_t stride = dims_.size();
    const double *vals = &tree_[node * stride];
    for (size_t d = 0; d < stride; ++d) {
        if (need_amt[d] > vals[d] + 1e-9)
            return nullptr;
    }
    if (node >= leaves_) {
        const uint32_t pos = node - leaves_;
        if (pos >= workers_.size())
            return nullptr;
        Worker *w = workers_[pos];
        // Exact guard: the subtree max is necessary, not sufficient,
        // and degenerate requests (no dimensions) prune nothing.
        return w->canFit(need) ? w : nullptr;
    }
    if (Worker *w = descend(2 * node, need_amt, need))
        return w;
    return descend(2 * node + 1, need_amt, need);
}

Worker *
AvailabilityIndex::firstFit(const ResourceVector &need) const
{
    double need_amt[ResourceVector::kMaxDims] = {};
    std::fill(need_amt, need_amt + dims_.size(), 0.0);
    for (int i = 0; i < need.size(); ++i) {
        const auto it = std::lower_bound(dims_.begin(), dims_.end(),
                                         need.dimId(i));
        if (it == dims_.end() || *it != need.dimId(i)) {
            // No worker capacity defines this dimension at all.
            if (need.amount(i) > 1e-9)
                return nullptr;
            continue;
        }
        need_amt[it - dims_.begin()] = need.amount(i);
    }
    return descend(1, need_amt, need);
}

size_t
AvailabilityIndex::capacityBytes() const
{
    return tree_.capacity() * sizeof(double) +
           dims_.capacity() * sizeof(uint16_t) +
           workers_.capacity() * sizeof(Worker *);
}

BinPackScheduler::BinPackScheduler(std::vector<Worker *> workers)
    : workers_(std::move(workers))
{
    std::sort(workers_.begin(), workers_.end(),
              [](const Worker *a, const Worker *b) {
                  return a->id() < b->id();
              });
}

BinPackScheduler::~BinPackScheduler()
{
    if (indexed_) {
        for (Worker *w : workers_)
            w->setAvailabilityListener(nullptr, -1);
    }
}

void
BinPackScheduler::enableIndex()
{
    if (indexed_ || workers_.empty())
        return;
    index_.build(workers_);
    int max_id = 0;
    for (const Worker *w : workers_)
        max_id = std::max(max_id, w->id());
    pos_by_id_.assign(static_cast<size_t>(max_id) + 1, -1);
    for (size_t pos = 0; pos < workers_.size(); ++pos) {
        pos_by_id_[workers_[pos]->id()] = static_cast<int>(pos);
        workers_[pos]->setAvailabilityListener(this,
                                               static_cast<int>(pos));
    }
    indexed_ = true;
}

void
BinPackScheduler::refresh(Worker &worker)
{
    if (!indexed_)
        return;
    const int pos = pos_by_id_[worker.id()];
    WSVA_ASSERT(pos >= 0, "refresh() for an unindexed worker %d",
                worker.id());
    index_.update(pos);
}

void
BinPackScheduler::onWorkerAvailabilityChanged(Worker &worker, int tag)
{
    (void)worker;
    index_.update(tag);
}

Worker *
BinPackScheduler::pick(const ResourceVector &need)
{
    // First fit by worker number against the availability cache
    // (Figure 6: Worker 0 lacks decode resources -> Worker 1 takes
    // the request; fully idle trailing workers become stop
    // candidates). The indexed path returns the identical worker via
    // the segment tree.
    if (indexed_) {
        Worker *w = index_.firstFit(need);
        recordPick(w != nullptr);
        return w;
    }
    for (Worker *w : workers_) {
        if (w->canFit(need)) {
            recordPick(true);
            return w;
        }
    }
    recordPick(false);
    return nullptr;
}

int
BinPackScheduler::idleWorkers() const
{
    int idle = 0;
    for (const Worker *w : workers_)
        idle += w->idle();
    return idle;
}

SlotScheduler::SlotScheduler(std::vector<Worker *> workers,
                             ResourceVector slot_need)
    : workers_(std::move(workers)), slot_need_(std::move(slot_need))
{
    std::sort(workers_.begin(), workers_.end(),
              [](const Worker *a, const Worker *b) {
                  return a->id() < b->id();
              });
}

Worker *
SlotScheduler::pick(const ResourceVector &need)
{
    // The uniform cost model ignores the request's actual shape; it
    // only asks "is a slot free". The physical reservation is the
    // element-wise max of the slot bundle and the true request
    // (oversized steps still consume what they consume), so that is
    // what must fit — this is exactly the stranding the bin-packing
    // scheduler eliminates.
    const ResourceVector reservation = reservationFor(need);
    for (Worker *w : workers_) {
        if (w->canFit(reservation)) {
            recordPick(true);
            return w;
        }
    }
    recordPick(false);
    return nullptr;
}

ResourceVector
SlotScheduler::reservationFor(const ResourceVector &need) const
{
    // Element-wise max of the slot bundle and the true request: a
    // big step still physically consumes what it consumes, and the
    // slot accounting wastes the rest.
    ResourceVector reservation = slot_need_;
    for (const auto &[name, amount] : need.dims()) {
        if (amount > reservation.get(name))
            reservation.set(name, amount);
    }
    return reservation;
}

} // namespace wsva::cluster
