#include "cluster/scheduler.h"

#include <algorithm>

#include "common/logging.h"
#include "common/metrics.h"

namespace wsva::cluster {

ResourceVector
Scheduler::reservationFor(const ResourceVector &need) const
{
    return need;
}

void
Scheduler::attachMetrics(wsva::MetricsRegistry *metrics)
{
    if (metrics == nullptr) {
        placed_counter_ = wsva::CounterHandle();
        rejected_counter_ = wsva::CounterHandle();
        return;
    }
    placed_counter_ = metrics->counterHandle("sched.placed");
    rejected_counter_ = metrics->counterHandle("sched.rejected");
}

void
Scheduler::recordPick(bool placed)
{
    if (placed) {
        ++stats_.placed;
        placed_counter_.inc();
    } else {
        ++stats_.rejected;
        rejected_counter_.inc();
    }
}

BinPackScheduler::BinPackScheduler(std::vector<Worker *> workers)
    : workers_(std::move(workers))
{
    std::sort(workers_.begin(), workers_.end(),
              [](const Worker *a, const Worker *b) {
                  return a->id() < b->id();
              });
}

Worker *
BinPackScheduler::pick(const ResourceVector &need)
{
    // First fit by worker number against the availability cache
    // (Figure 6: Worker 0 lacks decode resources -> Worker 1 takes
    // the request; fully idle trailing workers become stop
    // candidates).
    for (Worker *w : workers_) {
        if (w->canFit(need)) {
            recordPick(true);
            return w;
        }
    }
    recordPick(false);
    return nullptr;
}

int
BinPackScheduler::idleWorkers() const
{
    int idle = 0;
    for (const Worker *w : workers_)
        idle += w->idle();
    return idle;
}

SlotScheduler::SlotScheduler(std::vector<Worker *> workers,
                             ResourceVector slot_need)
    : workers_(std::move(workers)), slot_need_(std::move(slot_need))
{
    std::sort(workers_.begin(), workers_.end(),
              [](const Worker *a, const Worker *b) {
                  return a->id() < b->id();
              });
}

Worker *
SlotScheduler::pick(const ResourceVector &need)
{
    // The uniform cost model ignores the request's actual shape; it
    // only asks "is a slot free". The physical reservation is the
    // element-wise max of the slot bundle and the true request
    // (oversized steps still consume what they consume), so that is
    // what must fit — this is exactly the stranding the bin-packing
    // scheduler eliminates.
    const ResourceVector reservation = reservationFor(need);
    for (Worker *w : workers_) {
        if (w->canFit(reservation)) {
            recordPick(true);
            return w;
        }
    }
    recordPick(false);
    return nullptr;
}

ResourceVector
SlotScheduler::reservationFor(const ResourceVector &need) const
{
    // Element-wise max of the slot bundle and the true request: a
    // big step still physically consumes what it consumes, and the
    // slot accounting wastes the rest.
    ResourceVector reservation = slot_need_;
    for (const auto &[name, amount] : need.dims()) {
        if (amount > reservation.get(name))
            reservation.set(name, amount);
    }
    return reservation;
}

} // namespace wsva::cluster
