/**
 * @file
 * Units of transcoding work as the platform schedules them: chunked
 * steps of an acyclic dependency graph, in SOT or MOT shape
 * (Section 2.1, Figure 2), plus the mapping from a step request to
 * the named resources it needs on a worker (Section 3.3.3).
 */

#ifndef WSVA_CLUSTER_WORK_H
#define WSVA_CLUSTER_WORK_H

#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "cluster/resources.h"
#include "video/codec/codec.h"
#include "video/scaler.h"

namespace wsva::cluster {

/** Use-case pools (Section 3.3.3). */
enum class UseCase : int {
    Upload = 0,
    Live = 1,
};

/** Priority bands within a pool. */
enum class Priority : int {
    Critical = 0,
    Normal = 1,
    Batch = 2,
};

/** One schedulable transcoding step (a chunk of one video). */
struct TranscodeStep
{
    uint64_t id = 0;
    uint64_t video_id = 0;
    int chunk_index = 0;

    wsva::video::Resolution input{1920, 1080};
    std::vector<wsva::video::Resolution> outputs; //!< >1 => MOT.
    wsva::video::codec::CodecType codec =
        wsva::video::codec::CodecType::VP9;
    double fps = 30.0;
    int frames = 150; //!< Chunk length (e.g. 5 s at 30 FPS).
    bool two_pass = true;

    UseCase use_case = UseCase::Upload;
    Priority priority = Priority::Normal;

    /**
     * Absolute completion deadline on the simulation clock (live
     * segments must be delivered before the viewer's buffer runs
     * dry). +infinity = no deadline; batch/upload work never expires.
     * The dispatch queue orders deadline-carrying steps EDF ahead of
     * the FIFO lane, and the shedding policy compares projected slack
     * (deadline - now - service) against its guard.
     */
    double deadline_time = std::numeric_limits<double>::infinity();

    /**
     * Region the upload originated in (-1 = untagged / single-cluster
     * use). The global router prefers placing a step in its origin
     * region (locality) and counts a placement elsewhere as a reroute.
     * Purely routing metadata; the cluster sim ignores it.
     */
    int origin_region = -1;

    /** Does this step carry a live deadline? */
    bool hasDeadline() const { return std::isfinite(deadline_time); }

    /** Multiple-output transcode? */
    bool isMot() const { return outputs.size() > 1; }

    /** Total output pixels (the Mpix/s accounting unit). */
    double outputPixels() const;

    /** Input pixels decoded. */
    double inputPixels() const;

    /** Chunk duration in video seconds. */
    double durationSeconds() const { return frames / fps; }
};

/** Build the standard MOT step for an input resolution. */
TranscodeStep makeMotStep(uint64_t id, uint64_t video_id, int chunk_index,
                          wsva::video::Resolution input,
                          wsva::video::codec::CodecType codec);

/** Build one SOT step (single output rung). */
TranscodeStep makeSotStep(uint64_t id, uint64_t video_id, int chunk_index,
                          wsva::video::Resolution input,
                          wsva::video::Resolution output,
                          wsva::video::codec::CodecType codec);

/**
 * Policy knobs for the request -> resources mapping. The mapping
 * "admits different resource costs for dynamic tuning" (Section
 * 3.3.3); these knobs replay the paper's post-launch changes.
 */
struct ResourceMappingPolicy
{
    /** Shift this fraction of decode work to host CPU (Fig. 9c). */
    double software_decode_fraction = 0.0;

    /**
     * Effective encoder-core pixel rate (pixels/s) at production
     * upload quality settings, single pass. The 2160p60 peak is
     * ~500 Mpix/s per core (Section 3.3.1), but offline-quality
     * tools run the core at ~103 Mpix/s; with the 1.35x two-pass
     * overhead this yields ~76 Mpix/s per core = ~765 Mpix/s per
     * VCU, matching Table 1's 20xVCU VP9 throughput.
     */
    double encoder_core_pixel_rate = 103e6;

    /**
     * Effective decoder-core pixel rate (pixels/s) including
     * container handling. With 3 decode cores against 10 encode
     * cores this makes full-ladder SOT workloads decode-bound (each
     * rung re-decodes the input), reproducing the paper's MOT-vs-SOT
     * gap and the ~98% production decoder utilization that motivated
     * the software-decode offload of Figure 9c.
     */
    double decoder_core_pixel_rate = 0.75e9;

    /**
     * Speed-up factor the step is sized for (>= 1 = faster than real
     * time for batch work). Automatically clamped per step so no
     * request exceeds a single VCU in any dimension.
     */
    double allocation_speedup = 2.0;
};

/**
 * The speedup a step actually gets: the policy's allocation speedup
 * clamped so that the resulting request fits a single VCU's decode
 * and encode capacity with headroom.
 */
double effectiveSpeedup(const TranscodeStep &step,
                        const ResourceMappingPolicy &policy);

/** Resource need of a step on a VCU worker under @p policy. */
ResourceVector stepResourceNeed(const TranscodeStep &step,
                                const ResourceMappingPolicy &policy);

/** Wall-clock service seconds of a step given its allocation. */
double stepServiceSeconds(const TranscodeStep &step,
                          const ResourceMappingPolicy &policy);

/** Device-DRAM footprint of a step in bytes (Appendix A.4). */
uint64_t stepDramFootprint(const TranscodeStep &step);

} // namespace wsva::cluster

#endif // WSVA_CLUSTER_WORK_H
