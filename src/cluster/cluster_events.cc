/**
 * @file
 * Discrete-event run loop for ClusterSim (SimEngine::Event).
 *
 * The tick engine scans every host and VCU once per dt; this engine
 * touches a worker only when an event lands on it. Five event kinds
 * drive the fleet (DESIGN.md section 9):
 *
 *  - ArrivalBatch: pull one dt's worth of arrivals, then reschedule.
 *    Times accumulate exactly like the tick loop's `now += dt`, so
 *    fault-free runs land on identical timestamps.
 *  - HardFault / SilentFault: one fleet-level Poisson process per
 *    kind at rate (per-VCU rate x total VCUs), with a uniformly
 *    drawn victim discarded when it is not an active VCU. Thinning a
 *    superposed process this way is exactly equivalent to running an
 *    independent exponential clock per active VCU.
 *  - RepairDone: scheduled at the repair queue's completion time
 *    when a host enters repair; cap-deferred hosts sit on a waitlist
 *    drained here instead of being rescanned every tick.
 *  - WorkerDone: each worker keys at most one pending event to its
 *    earliest running finish time; assignments and aborts cancel or
 *    reschedule it (lazy state advancement).
 *  - SloEval: per-dt bookkeeping (SLO window accounting, fleet-
 *    health publish cadence), scheduled only when the SLO monitor or
 *    observability actually consumes it — an unobserved quiet fleet
 *    processes zero events per tick.
 *
 * Events at one timestamp are processed as a batch (the queue's type
 * tie-break reproduces the tick engine's phase order), then a single
 * backlog-dispatch pass runs if any event added work or freed
 * capacity, then the step-conservation ledger is audited.
 */

#include "cluster/cluster.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.h"
#include "common/profiler.h"

namespace {

/** Interned phase id per SimEventType, indexed by the enum value. */
struct EventPhases {
    int ids[7];
    int byType(size_t type) const
    {
        return type < 7 ? ids[type] : -1;
    }
};

const EventPhases &
eventPhases()
{
    using wsva::prof::phaseId;
    static const EventPhases p{{
        phaseId("event/arrival_batch"),
        phaseId("event/hard_fault"),
        phaseId("event/silent_fault"),
        phaseId("event/repair_done"),
        phaseId("event/worker_done"),
        phaseId("event/slo_eval"),
        phaseId("event/publish"),
    }};
    return p;
}

} // namespace

namespace wsva::cluster {

void
ClusterSim::updateCompletionEvent(Worker *w)
{
    EventQueue::Handle &h =
        ev_->completion_ev[static_cast<size_t>(w->id())];
    const double next = w->nextFinishTime();
    if (h != EventQueue::kInvalidHandle && ev_->queue.pending(h)) {
        if (std::isfinite(next) && ev_->queue.timeOf(h) == next)
            return; // Already keyed to the earliest finish.
        ev_->queue.cancel(h);
    }
    h = EventQueue::kInvalidHandle;
    if (std::isfinite(next))
        h = ev_->queue.schedule(next, SimEventType::WorkerDone,
                                w->id());
}

void
ClusterSim::handleArrivalBatch(const ArrivalFn &arrivals, double now)
{
    if (arrivals)
        pullArrivals(arrivals, now, ev_->dt);
    // Dispatch even on an empty batch: the first batch also covers
    // work submitted before run() (the tick engine's first tick
    // schedules that backlog at the same time).
    ev_->work_added = true;
    if (arrivals && now < ev_->end)
        ev_->queue.schedule(now + ev_->dt, SimEventType::ArrivalBatch);
}

void
ClusterSim::handleHardFault(double now)
{
    const int gid = static_cast<int>(
        rng_.uniformInt(static_cast<uint32_t>(totalVcus())));
    ev_->queue.schedule(now + rng_.exponential(ev_->hard_rate),
                        SimEventType::HardFault);
    HostModel &host = hostOfGid(gid);
    VcuHealth &health =
        host.vcu_health[static_cast<size_t>(gid % cfg_.vcus_per_host)];
    if (host.in_repair || health.disabled)
        return; // Thinning: the victim is not an active VCU.
    Worker *w = workerByGid(gid);
    health.markFaulted(now);
    ++host.fault_count;
    ++metrics_.vcus_disabled;
    registry_.inc("cluster.vcus_disabled");
    trace_.record(TraceEventType::FaultInjected, now, host.id, gid);
    scheduler_->refresh(*w);
    // The tick engine fails a dead worker's in-flight steps in the
    // same tick's collect phase; do it now, under the same outcome
    // bookkeeping.
    EventQueue::Handle &h =
        ev_->completion_ev[static_cast<size_t>(gid)];
    if (h != EventQueue::kInvalidHandle) {
        ev_->queue.cancel(h);
        h = EventQueue::kInvalidHandle;
    }
    collectWorker(host, w, now);
    ev_->work_added = true; // Failed steps re-queued as retries.
    maybeEnterRepair(host, now);
}

void
ClusterSim::handleSilentFault(double now)
{
    const int gid = static_cast<int>(
        rng_.uniformInt(static_cast<uint32_t>(totalVcus())));
    ev_->queue.schedule(now + rng_.exponential(ev_->silent_rate),
                        SimEventType::SilentFault);
    HostModel &host = hostOfGid(gid);
    VcuHealth &health =
        host.vcu_health[static_cast<size_t>(gid % cfg_.vcus_per_host)];
    if (host.in_repair || health.disabled || health.silent_fault)
        return; // Thinning: not an active, still-honest VCU.
    health.silent_fault = true;
    health.speed_factor = cfg_.silent_speed_factor;
    registry_.inc("cluster.silent_faults");
    trace_.record(TraceEventType::SilentFaultInjected, now, host.id,
                  gid);
    // No completion-event change: a silent fault only affects steps
    // assigned from now on (service times are fixed at assignment),
    // exactly as under the tick engine.
}

void
ClusterSim::handleRepairDone(double now)
{
    for (int host_id : repairs_.collectRepaired(now))
        restoreHost(hosts_[static_cast<size_t>(host_id)], now);
    ev_->capacity_changed = true;
    // A repair slot freed up: admit waitlisted hosts until the cap
    // blocks again (maybeEnterRepair re-waitlists the blocked one).
    while (!ev_->repair_waiting.empty()) {
        const int id = ev_->repair_waiting.front();
        ev_->repair_waiting.pop_front();
        ev_->repair_waitlisted[static_cast<size_t>(id)] = 0;
        HostModel &host = hosts_[static_cast<size_t>(id)];
        maybeEnterRepair(host, now);
        if (!host.in_repair)
            break; // Cap still full.
    }
}

void
ClusterSim::handleWorkerDone(int gid, double now)
{
    ev_->completion_ev[static_cast<size_t>(gid)] =
        EventQueue::kInvalidHandle; // This event just fired.
    HostModel &host = hostOfGid(gid);
    Worker *w = workerByGid(gid);
    collectWorker(host, w, now);
    updateCompletionEvent(w); // Later steps may still be running.
    ev_->capacity_changed = true;
    // A detected-corrupt outcome bumps host.fault_count; the tick
    // engine would notice on its next repair scan, we notice now.
    maybeEnterRepair(host, now);
}

void
ClusterSim::handleSloEval(double now)
{
    slo_.onTick(now);
    ++ticks_;
    if (cfg_.observability && cfg_.fleet_publish_every_ticks > 0 &&
        ticks_ % cfg_.fleet_publish_every_ticks == 0) {
        // Telemetry sampling rides the publish cadence here (the
        // tick engine samples every tick — a documented delta).
        sampleTick(now);
        publishRollup(now);
    }
    if (now < ev_->end)
        ev_->queue.schedule(now + ev_->dt, SimEventType::SloEval);
}

ClusterMetrics
ClusterSim::runEvents(double duration, double dt,
                      const ArrivalFn &arrivals)
{
    const double start = clock_;
    const double end = start + duration;

    // The tick engine checks `now < end` *before* adding dt, so it
    // overshoots the horizon by up to one tick and accumulates time
    // by repeated addition. Reproduce both exactly so fault-free
    // event runs land on the same timestamps and final clock.
    double horizon = start;
    uint64_t tick_count = 0;
    while (horizon < end) {
        horizon += dt;
        ++tick_count;
    }

    EventRun st;
    st.dt = dt;
    st.end = end;
    st.arrivals = &arrivals;
    st.hard_rate = cfg_.vcu_hard_fault_per_hour / 3600.0 * totalVcus();
    st.silent_rate =
        cfg_.vcu_silent_fault_per_hour / 3600.0 * totalVcus();
    st.completion_ev.assign(static_cast<size_t>(totalVcus()),
                            EventQueue::kInvalidHandle);
    st.repair_waitlisted.assign(static_cast<size_t>(cfg_.hosts), 0);
    ev_ = &st;

    // Carried-over state from earlier run() calls: in-flight steps
    // need completion events, in-repair hosts a RepairDone.
    for (auto &host : hosts_) {
        for (auto &w : host.workers) {
            if (!w->idle())
                updateCompletionEvent(w.get());
        }
        if (host.in_repair)
            st.queue.schedule(
                std::max(repairs_.completionTime(host.id), start),
                SimEventType::RepairDone, host.id);
    }

    if (arrivals || !backlog_.empty())
        st.queue.schedule(start + dt, SimEventType::ArrivalBatch);
    if (st.hard_rate > 0)
        st.queue.schedule(start + rng_.exponential(st.hard_rate),
                          SimEventType::HardFault);
    if (st.silent_rate > 0)
        st.queue.schedule(start + rng_.exponential(st.silent_rate),
                          SimEventType::SilentFault);
    // Per-dt bookkeeping only when someone consumes it: with the SLO
    // monitor off and observability off (or publishing disabled), a
    // quiet fleet processes zero events per tick.
    const bool tick_events =
        cfg_.slo.enabled ||
        (cfg_.observability && cfg_.fleet_publish_every_ticks > 0);
    if (tick_events)
        st.queue.schedule(start + dt, SimEventType::SloEval);

    while (!st.queue.empty() && st.queue.nextTime() <= horizon) {
        const double t = st.queue.nextTime();
        st.work_added = false;
        st.capacity_changed = false;
        // Batch every event at this timestamp (the heap's type
        // tie-break reproduces the tick phase order within the
        // batch), then run one backlog-dispatch pass, then audit.
        do {
            const EventQueue::Event e = st.queue.pop();
            clock_ = e.time;
            ++metrics_.events_processed;
            // One phase scope per popped event gives the profiler
            // per-event-type time attribution (dark cost: one relaxed
            // load + branch; see profiler.h).
            prof::ProfScope prof_event(
                eventPhases().byType(static_cast<size_t>(e.type)));
            switch (e.type) {
            case SimEventType::ArrivalBatch:
                handleArrivalBatch(*st.arrivals, e.time);
                break;
            case SimEventType::HardFault:
                handleHardFault(e.time);
                break;
            case SimEventType::SilentFault:
                handleSilentFault(e.time);
                break;
            case SimEventType::RepairDone:
                handleRepairDone(e.time);
                break;
            case SimEventType::WorkerDone:
                handleWorkerDone(e.arg, e.time);
                break;
            case SimEventType::SloEval:
                handleSloEval(e.time);
                break;
            case SimEventType::Publish:
                publishRollup(e.time);
                break;
            }
        } while (!st.queue.empty() && st.queue.nextTime() == t);
        if (st.work_added || st.capacity_changed)
            scheduleBacklog(t);
        checkConservation(t);
    }

    clock_ = horizon;
    if (!tick_events)
        ticks_ += tick_count; // No SloEval chain counted them.
    ev_ = nullptr;
    return finishRun(start, horizon);
}

} // namespace wsva::cluster
