#include "cluster/slo.h"

#include <algorithm>
#include <limits>

#include "common/logging.h"
#include "common/metrics.h"

namespace wsva::cluster {

SloMonitor::SloMonitor(SloConfig cfg)
    : cfg_(cfg),
      // Lifetime latency histogram spans well past the target so the
      // p99 stays resolvable during bad stretches.
      latency_(0.0, std::max(1.0, 10.0 * cfg.p99_target_seconds), 200),
      // Live segments finish in seconds, not minutes: a finer, shorter
      // range keeps the live p99 resolvable next to batch latencies.
      live_latency_(0.0, std::max(1.0, cfg.p99_target_seconds), 200)
{
    WSVA_ASSERT(cfg_.window_ticks >= 1, "SLO window needs >= 1 tick");
    WSVA_ASSERT(cfg_.burn_alert_fraction > 0.0 &&
                    cfg_.burn_alert_fraction <= 1.0,
                "burn alert fraction must be in (0, 1]");
}

void
SloMonitor::attach(wsva::MetricsRegistry *metrics, wsva::TraceLog *trace)
{
    metrics_ = metrics;
    trace_ = trace;
}

void
SloMonitor::onSubmit(uint64_t step_id, double now, uint64_t span_id,
                     double deadline_time)
{
    // Re-submission under the same id overwrites; the old
    // submit_order_ entry no longer matches and is lazily discarded
    // by queueAge().
    inflight_.insertOrAssign(step_id, Upload{now, span_id, deadline_time});
    // Amortized stale-front pruning: onSubmit now runs even with all
    // telemetry dark, and a fleet that never consults queueAge()
    // would otherwise grow submit_order_ without bound (a long bench
    // run queues millions of entries). Completed/re-submitted fronts
    // are dead weight; pop them here the same way queueAge() does.
    while (!submit_order_.empty()) {
        const auto &[submit_time, id] = submit_order_.front();
        const Upload *up = inflight_.find(id);
        if (up != nullptr && up->submit_time == submit_time)
            break;
        submit_order_.pop_front();
    }
    submit_order_.emplace_back(now, step_id);
}

const SloMonitor::Upload *
SloMonitor::find(uint64_t step_id) const
{
    return inflight_.find(step_id);
}

void
SloMonitor::onCancel(uint64_t step_id)
{
    // The stale submit_order_ entry (if any) is lazily discarded by
    // queueAge()/onSubmit, same as a re-submission.
    inflight_.erase(step_id);
}

double
SloMonitor::onComplete(uint64_t step_id, double now)
{
    const Upload *up = inflight_.find(step_id);
    if (up == nullptr)
        return -1.0;
    const double latency = now - up->submit_time;
    const double deadline_time = up->deadline_time;
    inflight_.erase(step_id);
    ++completed_;
    latency_.add(latency);
    if (latency > cfg_.p99_target_seconds)
        ++violations_total_;
    const bool has_deadline =
        deadline_time < std::numeric_limits<double>::infinity();
    bool missed = false;
    if (has_deadline) {
        ++deadline_tracked_;
        missed = now > deadline_time;
        if (missed)
            ++deadline_missed_;
        live_latency_.add(latency);
    }
    if (cfg_.enabled) {
        window_latencies_.emplace_back(tick_, latency);
        if (latency > cfg_.p99_target_seconds)
            ++over_target_in_window_;
        if (has_deadline) {
            window_deadlines_.emplace_back(tick_, missed);
            if (missed)
                ++window_deadline_missed_;
        }
        p99_dirty_ = true;
    }
    return latency;
}

double
SloMonitor::deadlineMissRate() const
{
    if (deadline_tracked_ == 0)
        return 0.0;
    return static_cast<double>(deadline_missed_) /
           static_cast<double>(deadline_tracked_);
}

double
SloMonitor::windowDeadlineMissRate() const
{
    if (window_deadlines_.empty())
        return 0.0;
    return static_cast<double>(window_deadline_missed_) /
           static_cast<double>(window_deadlines_.size());
}

double
SloMonitor::windowP99() const
{
    // Memoized until the window mutates: the gauge decimation, the
    // fleet-health rollup, and the JSON export all want this value on
    // the same tick, and only the first caller should pay the O(n)
    // selection.
    if (!p99_dirty_)
        return p99_cached_;
    p99_dirty_ = false;
    if (window_latencies_.empty()) {
        p99_cached_ = 0.0;
        return 0.0;
    }
    // Nearest-rank p99 over the window: exact, deterministic, and
    // independent of histogram binning. Computed on demand (exports,
    // the decimated gauge) — the per-tick alert path uses the O(1)
    // over-target count instead.
    p99_scratch_.clear();
    p99_scratch_.reserve(window_latencies_.size());
    for (const auto &[tick, latency] : window_latencies_)
        p99_scratch_.push_back(latency);
    const size_t n = p99_scratch_.size();
    const size_t rank =
        std::min(n - 1, static_cast<size_t>(0.99 * static_cast<double>(n)));
    std::nth_element(p99_scratch_.begin(),
                     p99_scratch_.begin() + static_cast<long>(rank),
                     p99_scratch_.end());
    p99_cached_ = p99_scratch_[rank];
    return p99_cached_;
}

double
SloMonitor::burnRate() const
{
    if (window_burning_.empty())
        return 0.0;
    return static_cast<double>(burning_ticks_) /
           static_cast<double>(window_burning_.size());
}

double
SloMonitor::queueAge(double now) const
{
    // Lazily discard entries whose upload finished (or was
    // re-submitted with a newer clock) since they reached the front.
    while (!submit_order_.empty()) {
        const auto &[submit_time, step_id] = submit_order_.front();
        const Upload *up = inflight_.find(step_id);
        if (up != nullptr && up->submit_time == submit_time)
            return std::max(0.0, now - submit_time);
        submit_order_.pop_front();
    }
    return 0.0;
}

void
SloMonitor::onTick(double now)
{
    if (!cfg_.enabled)
        return;
    ++tick_;
    // Drop completions that fell out of the sliding window.
    while (!window_latencies_.empty() &&
           window_latencies_.front().first + cfg_.window_ticks <= tick_) {
        if (window_latencies_.front().second > cfg_.p99_target_seconds)
            --over_target_in_window_;
        window_latencies_.pop_front();
        p99_dirty_ = true;
    }
    // Same eviction edge as the latency window: an entry stamped at
    // tick T leaves exactly when tick_ reaches T + window_ticks.
    while (!window_deadlines_.empty() &&
           window_deadlines_.front().first + cfg_.window_ticks <= tick_) {
        if (window_deadlines_.front().second)
            --window_deadline_missed_;
        window_deadlines_.pop_front();
    }

    // Burning iff the windowed nearest-rank p99 exceeds the target.
    // Equivalent rank-count form: value-at-rank > target exactly when
    // at least (n - rank) of the n window latencies exceed the target
    // (the over-target latencies occupy a suffix of the sorted
    // window). This keeps the per-tick check O(1).
    const size_t n = window_latencies_.size();
    bool burning = false;
    if (n > 0) {
        const size_t rank = std::min(
            n - 1, static_cast<size_t>(0.99 * static_cast<double>(n)));
        burning = over_target_in_window_ >= n - rank;
    }
    window_burning_.push_back(burning);
    burning_ticks_ += burning ? 1 : 0;
    while (window_burning_.size() > cfg_.window_ticks) {
        burning_ticks_ -= window_burning_.front() ? 1 : 0;
        window_burning_.pop_front();
    }

    const double burn = burnRate();

    // Hysteresis: raise at the alert fraction, clear only once the
    // burn rate recedes to half of it, so a rate sitting on the line
    // raises one alert rather than a flapping series.
    if (!alert_active_ && burn >= cfg_.burn_alert_fraction) {
        alert_active_ = true;
        ++alerts_raised_;
        if (trace_ != nullptr)
            trace_->record(TraceEventType::SloAlert, now);
        if (metrics_ != nullptr) {
            metrics_->inc("slo.alerts");
            metrics_->setGauge("slo.alert_active", 1.0);
        }
    } else if (alert_active_ && burn <= cfg_.burn_alert_fraction / 2.0) {
        alert_active_ = false;
        if (trace_ != nullptr)
            trace_->record(TraceEventType::SloAlertCleared, now);
        if (metrics_ != nullptr)
            metrics_->setGauge("slo.alert_active", 0.0);
    }

    // Dashboard values are decimated (the exact windowed p99 costs a
    // selection pass); alert evaluation above stays per-tick.
    if (metrics_ != nullptr && cfg_.gauge_every_ticks != 0 &&
        tick_ % cfg_.gauge_every_ticks == 0) {
        const double p99 = windowP99();
        const double age = queueAge(now);
        metrics_->setGauge("slo.window_p99", p99);
        metrics_->setGauge("slo.burn_rate", burn);
        metrics_->setGauge("slo.queue_age", age);
        metrics_->setGauge("slo.alert_active", alert_active_ ? 1.0 : 0.0);
        metrics_->sample("slo.window_p99", now, p99);
        metrics_->sample("slo.burn_rate", now, burn);
        metrics_->sample("slo.queue_age", now, age);
        if (deadline_tracked_ > 0) {
            const double miss = windowDeadlineMissRate();
            metrics_->setGauge("slo.deadline_miss_rate", miss);
            metrics_->sample("slo.deadline_miss_rate", now, miss);
        }
    }
}

std::string
SloMonitor::exportJson(double now) const
{
    return strformat(
        "{\"p99_target_seconds\": %.6g, \"completed\": %llu, "
        "\"violations\": %llu, \"inflight\": %llu, "
        "\"lifetime_p50\": %.6g, \"lifetime_p99\": %.6g, "
        "\"window_p99\": %.6g, \"burn_rate\": %.6g, "
        "\"queue_age_seconds\": %.6g, \"alert_active\": %s, "
        "\"alerts\": %llu, "
        "\"deadline_tracked\": %llu, \"deadline_missed\": %llu, "
        "\"deadline_miss_rate\": %.6g, "
        "\"window_deadline_miss_rate\": %.6g, "
        "\"deadline_miss_budget\": %.6g, \"live_p99\": %.6g}",
        cfg_.p99_target_seconds,
        static_cast<unsigned long long>(completed_),
        static_cast<unsigned long long>(violations_total_),
        static_cast<unsigned long long>(inflight_.size()),
        latency_.quantile(0.5), latency_.quantile(0.99), windowP99(),
        burnRate(), queueAge(now), alert_active_ ? "true" : "false",
        static_cast<unsigned long long>(alerts_raised_),
        static_cast<unsigned long long>(deadline_tracked_),
        static_cast<unsigned long long>(deadline_missed_),
        deadlineMissRate(), windowDeadlineMissRate(),
        cfg_.deadline_miss_budget, liveQuantile(0.99));
}

} // namespace wsva::cluster
