/**
 * @file
 * Hierarchical fleet-health rollup: per-worker VCU health aggregated
 * worker -> host -> rack -> cluster, with per-level state counts,
 * utilization and retry-rate signals, and the SLO burn-rate alert
 * surfaced at the top.
 *
 * This is the data behind /statusz: Section 4.4's failure management
 * (quarantine, repair queues, blast radius) is operable only if
 * someone can *watch* the fleet live, and a flat metrics dump does
 * not answer "which rack is burning?". Every worker is classified
 * into exactly one state, so the counts reconcile at every level:
 * healthy + degraded + quarantined + in_repair == fleet size, always.
 *
 * Snapshots are published through a double-buffered board: the sim
 * tick builds the next snapshot off to the side and swaps it in under
 * a spinlock held for a pointer exchange, while scrape threads keep
 * reading the previous buffer (shared_ptr keeps it alive until the
 * last reader drops it). The scrape path therefore never blocks the
 * sim tick, and the sim tick never waits for a slow scraper.
 */

#ifndef WSVA_CLUSTER_FLEET_HEALTH_H
#define WSVA_CLUSTER_FLEET_HEALTH_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/metrics.h"

namespace wsva::cluster {

/**
 * Exactly one state per worker, classified in priority order:
 * a worker on a host in repair is InRepair regardless of its own
 * flags; a quarantined (refused) worker is Quarantined even if its
 * VCU is also degraded; a disabled or silently-faulty VCU is
 * Degraded; everything else is Healthy. The priority order is what
 * makes the per-level counts partition the fleet.
 */
enum class WorkerHealthState : int {
    Healthy = 0,
    Degraded,    //!< VCU disabled or silently corrupting.
    Quarantined, //!< Worker refused its VCU after a failed screen.
    InRepair,    //!< Host is in the repair queue.
};

/** Stable snake_case name of a worker health state. */
const char *workerHealthStateName(WorkerHealthState state);

/** Classify one worker (see WorkerHealthState for the priority). */
WorkerHealthState classifyWorker(bool host_in_repair, bool refused,
                                 bool vcu_disabled, bool silent_fault);

/** Worker-state counts at one level of the hierarchy. */
struct HealthCounts
{
    uint64_t healthy = 0;
    uint64_t degraded = 0;
    uint64_t quarantined = 0;
    uint64_t in_repair = 0;

    uint64_t total() const
    {
        return healthy + degraded + quarantined + in_repair;
    }

    void add(WorkerHealthState state);
    void merge(const HealthCounts &other);
};

/** Rollup of one host or rack. */
struct NodeHealth
{
    int id = 0;
    HealthCounts counts;

    /** Mean encoder utilization across this node's workers. */
    double encoder_utilization = 0.0;

    /** retries / (completions + retries) over the sim's lifetime. */
    double retry_rate = 0.0;

    uint64_t retries = 0;
    uint64_t completions = 0;
};

/** One published view of the whole fleet. */
struct FleetHealthSnapshot
{
    double sim_time = 0.0;
    uint64_t tick = 0;
    int vcus_per_host = 0;
    int hosts_per_rack = 1;

    HealthCounts cluster;
    double encoder_utilization = 0.0;
    double retry_rate = 0.0;
    /** Raw lifetime counts behind retry_rate. The global router's
     *  health gate needs the numerator/denominator, not the ratio:
     *  it differences successive rollups to get a *windowed* retry
     *  rate, which a pre-divided lifetime ratio cannot provide. */
    uint64_t retries = 0;
    uint64_t completions = 0;
    uint64_t backlog = 0;
    uint64_t in_flight = 0;
    /** Batch steps parked in the shed lot (live load shedding). */
    uint64_t shed = 0;

    /** SLO surface (copied from the monitor at publish time). */
    bool slo_alert_active = false;
    double slo_burn_rate = 0.0;
    double slo_window_p99 = 0.0;
    double slo_queue_age = 0.0;
    /** Live-serving surface: deadline-carrying completions. */
    uint64_t deadline_tracked = 0;
    double deadline_miss_rate = 0.0; //!< Windowed miss fraction.

    std::vector<NodeHealth> racks;
    std::vector<NodeHealth> hosts;

    /** The /statusz rendering: hierarchy table + SLO banner. */
    std::string toText() const;

    /** JSON object (embedded in ClusterSim::exportJson). */
    std::string toJson() const;
};

/**
 * Double-buffered snapshot board. publish() is called from the sim
 * tick; snapshot() from scrape threads. Neither blocks the other
 * beyond a pointer swap under a spinlock.
 */
class FleetHealthBoard
{
  public:
    /** Publish @p snap as the current view. */
    void publish(FleetHealthSnapshot snap);

    /**
     * The most recently published snapshot, or null before the first
     * publish. The returned snapshot is immutable and stays valid
     * for as long as the caller holds the pointer, even across later
     * publishes.
     */
    std::shared_ptr<const FleetHealthSnapshot> snapshot() const;

    uint64_t publishes() const
    {
        return publishes_.load(std::memory_order_relaxed);
    }

    /**
     * Export the per-level gauges into @p registry:
     * fleet.{healthy,degraded,quarantined,in_repair}, cluster
     * utilization/retry-rate, and per-rack
     * fleet.rack<id>.{healthy,utilization,retry_rate}.
     */
    void exportGauges(wsva::MetricsRegistry &registry) const;

  private:
    mutable wsva::SpinLock lock_;
    std::shared_ptr<const FleetHealthSnapshot> current_;
    std::atomic<uint64_t> publishes_{0};
};

} // namespace wsva::cluster

#endif // WSVA_CLUSTER_FLEET_HEALTH_H
