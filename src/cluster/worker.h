/**
 * @file
 * Worker processes (Section 3.1, 3.3.3).
 *
 * A VCU worker has exclusive access to one VCU and runs a process
 * per transcode to constrain errors to a single step. Workers expose
 * named resource capacities to the scheduler, execute assigned steps
 * for their service time, and surface VCU faults: a worker whose VCU
 * develops a silent fault completes work *faster* and corrupt (the
 * black-holing hazard of Section 4.4).
 */

#ifndef WSVA_CLUSTER_WORKER_H
#define WSVA_CLUSTER_WORKER_H

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

#include "cluster/resources.h"
#include "cluster/work.h"

namespace wsva {
class MetricsRegistry;
class TraceLog;
} // namespace wsva

namespace wsva::cluster {

/** Worker flavors. */
enum class WorkerType : int {
    Vcu = 0, //!< Exclusive access to one VCU.
    Cpu = 1, //!< Software transcoding / non-transcoding steps.
};

/** Health of the VCU a worker is bound to. */
struct VcuHealth
{
    bool disabled = false;      //!< Fault manager pulled it.
    bool silent_fault = false;  //!< Produces corrupt output, fast.
    /** Service-time multiplier; silent faults often run "fast". */
    double speed_factor = 1.0;
    /**
     * Sim time the hard fault hit. Steps whose finish time precedes
     * it completed before the device died and must not be failed or
     * retried. Defaults to -infinity ("faulted since forever") so a
     * caller that sets `disabled` without a timestamp conservatively
     * fails everything in flight.
     */
    double fault_time = -std::numeric_limits<double>::infinity();

    /** Mark the VCU hard-faulted at @p now. */
    void markFaulted(double now)
    {
        disabled = true;
        fault_time = now;
    }
};

/** Outcome of one step execution. */
struct StepOutcome
{
    TranscodeStep step;
    bool ok = true;        //!< False: hardware error, must retry.
    bool corrupt = false;  //!< Completed but output is garbage.
    double start_time = 0.0; //!< When the worker began the step.
    double finish_time = 0.0;
};

class Worker;

/**
 * Observer for worker availability changes. The bin-packing
 * scheduler's availability index registers itself here so that every
 * assign/collect/abort/reset keeps the index coherent without the
 * sim having to remember which mutations matter. Callers that mutate
 * a worker's VCU health directly (fault injection) must additionally
 * call Scheduler::refresh(), since health lives outside the worker.
 */
class WorkerAvailabilityListener
{
  public:
    virtual ~WorkerAvailabilityListener() = default;
    /** @p tag is the value registered alongside the listener. */
    virtual void onWorkerAvailabilityChanged(Worker &worker, int tag) = 0;
};

/** One worker process. */
class Worker
{
  public:
    Worker(int id, WorkerType type, ResourceVector capacity);

    int id() const { return id_; }
    WorkerType type() const { return type_; }
    const ResourceVector &capacity() const { return capacity_; }
    const ResourceVector &available() const { return available_; }

    /** Bind to VCU health state (owned by the host model). */
    void bindVcu(VcuHealth *health) { vcu_ = health; }
    const VcuHealth *vcu() const { return vcu_; }

    /**
     * Attach observability sinks (both optional, not owned; must
     * outlive the worker). Assignments emit step-scheduled trace
     * events; completions feed the per-step service-time histogram.
     */
    void attachObservability(wsva::MetricsRegistry *metrics,
                             wsva::TraceLog *trace)
    {
        metrics_ = metrics;
        trace_ = trace;
    }

    /**
     * Worker startup screening: functional reset + golden transcodes
     * (Section 4.4). A worker must refuse to start on a VCU with a
     * persistent fault. @return true if the worker may serve.
     */
    bool goldenScreen() const;

    /** True if @p need fits in the current availability. */
    bool canFit(const ResourceVector &need) const;

    /**
     * Assign a step; reserves resources until completion.
     * @param now Current simulation time (seconds).
     * @param service_seconds Nominal service time (scaled by the
     *        VCU's speed factor).
     */
    void assign(const TranscodeStep &step, const ResourceVector &need,
                double now, double service_seconds);

    /**
     * Collect steps finishing at or before @p now, releasing their
     * resources. On a disabled VCU only the steps whose finish time
     * is at or after the recorded fault time fail (ok = false) —
     * work that finished before the device died already produced its
     * output and must not be retried. Steps on a silently faulty VCU
     * complete corrupt.
     */
    std::vector<StepOutcome> collectFinished(double now);

    /**
     * Abort everything in flight (black-holing mitigation). The
     * worker process restarts afterwards, so it must golden-screen
     * its VCU before taking new work (needsScreen() becomes true).
     */
    std::vector<TranscodeStep> abortAll();

    /** Batch-priority steps currently running here. */
    size_t batchRunning() const { return batch_running_; }

    /**
     * Would @p need fit if every Batch-priority running step were
     * preempted? The shedding policy asks this before paying for a
     * preemption, so no batch work is ever evicted in vain.
     */
    bool canFitWithBatchPreempted(const ResourceVector &need) const;

    /**
     * Preempt (deschedule) every Batch-priority running step,
     * releasing its resources. Unlike abortAll() this is a policy
     * decision, not a failure: the worker process keeps running and
     * needs no golden screen before its next assignment. The caller
     * owns the returned steps (they go to the shed lot, staying in
     * the conservation ledger) and must decrement its in-flight
     * count by exactly the returned size.
     */
    std::vector<TranscodeStep> preemptBatch();

    /** True if the (restarted) worker must screen before serving. */
    bool needsScreen() const { return needs_screen_; }

    /** Screening passed; clear the flag. */
    void clearScreen() { needs_screen_ = false; }

    /** Quarantine: the worker refused its VCU after a failed screen;
     *  it takes no work until the host is repaired. */
    void setRefused(bool value)
    {
        refused_ = value;
        notifyAvailability();
    }
    bool refused() const { return refused_; }

    /** Host came back from repair: fresh worker state. */
    void repairReset();

    /**
     * Earliest finish time over the running steps, +infinity when
     * idle. The event engine keys each worker's (single) pending
     * completion event to this.
     */
    double nextFinishTime() const
    {
        double earliest = std::numeric_limits<double>::infinity();
        for (const auto &r : running_)
            earliest = std::min(earliest, r.finish_time);
        return earliest;
    }

    /**
     * Register an availability observer (pass nullptr to detach).
     * Fired after any mutation of available_/refused_ state; @p tag
     * is echoed back (the index's dense position for this worker).
     */
    void setAvailabilityListener(WorkerAvailabilityListener *listener,
                                 int tag)
    {
        listener_ = listener;
        listener_tag_ = tag;
    }

    size_t runningSteps() const { return running_.size(); }
    bool idle() const { return running_.empty(); }

    /** Busiest-dimension utilization in [0, 1]. */
    double utilization() const;

    /** Utilization of one dimension in [0, 1]. */
    double dimensionUtilization(const std::string &dim) const;

  private:
    struct Running
    {
        TranscodeStep step;
        ResourceVector need;
        double start_time;
        double finish_time;
    };

    void notifyAvailability()
    {
        if (listener_ != nullptr)
            listener_->onWorkerAvailabilityChanged(*this, listener_tag_);
    }

    int id_;
    WorkerType type_;
    ResourceVector capacity_;
    ResourceVector available_;
    std::vector<Running> running_;
    size_t batch_running_ = 0; //!< Batch-priority entries in running_.
    VcuHealth *vcu_ = nullptr;
    bool needs_screen_ = false;
    bool refused_ = false;
    wsva::MetricsRegistry *metrics_ = nullptr;
    wsva::TraceLog *trace_ = nullptr;
    WorkerAvailabilityListener *listener_ = nullptr;
    int listener_tag_ = -1;
};

/** Capacity vector of a standard VCU worker (one VCU). */
ResourceVector vcuWorkerCapacity(uint64_t dram_bytes = 8ull << 30,
                                 double host_cpu_millicores = 5000,
                                 double sw_decode_millicores = 2000);

} // namespace wsva::cluster

#endif // WSVA_CLUSTER_WORKER_H
