#include "cluster/resources.h"

#include <algorithm>
#include <deque>
#include <mutex>
#include <unordered_map>

#include "common/logging.h"

namespace wsva::cluster {

namespace {

/**
 * Process-wide dimension-name intern table. A deque keeps name
 * storage stable across growth so resourceDimName() can hand out
 * references without holding the lock.
 */
struct DimTable
{
    std::mutex mutex;
    std::unordered_map<std::string, uint16_t> ids;
    std::deque<std::string> names;

    DimTable()
    {
        for (const char *name :
             {kResDecodeMillicores, kResEncodeMillicores, kResDramBytes,
              kResHostCpuMillicores, kResSwDecodeMillicores}) {
            ids.emplace(name, static_cast<uint16_t>(names.size()));
            names.emplace_back(name);
        }
    }
};

DimTable &
dimTable()
{
    static DimTable table;
    return table;
}

} // namespace

uint16_t
resourceDimId(const std::string &name)
{
    DimTable &t = dimTable();
    std::lock_guard<std::mutex> lock(t.mutex);
    auto [it, inserted] =
        t.ids.try_emplace(name, static_cast<uint16_t>(t.names.size()));
    if (inserted) {
        WSVA_ASSERT(t.names.size() < 65535,
                    "resource dimension table overflow");
        t.names.emplace_back(name);
    }
    return it->second;
}

const std::string &
resourceDimName(uint16_t id)
{
    DimTable &t = dimTable();
    std::lock_guard<std::mutex> lock(t.mutex);
    WSVA_ASSERT(id < t.names.size(), "unknown resource dimension id %u",
                static_cast<unsigned>(id));
    return t.names[id];
}

int
ResourceVector::find(uint16_t dim) const
{
    for (int i = 0; i < size_; ++i) {
        if (ids_[i] == dim)
            return i;
        if (ids_[i] > dim)
            return -1;
    }
    return -1;
}

void
ResourceVector::insertAt(int pos, uint16_t dim, double amount)
{
    WSVA_ASSERT(size_ < kMaxDims,
                "resource vector overflow (> %d dimensions)", kMaxDims);
    for (int i = size_; i > pos; --i) {
        ids_[i] = ids_[i - 1];
        amounts_[i] = amounts_[i - 1];
    }
    ids_[pos] = dim;
    amounts_[pos] = amount;
    ++size_;
}

void
ResourceVector::eraseAt(int pos)
{
    for (int i = pos; i + 1 < size_; ++i) {
        ids_[i] = ids_[i + 1];
        amounts_[i] = amounts_[i + 1];
    }
    --size_;
}

double
ResourceVector::get(uint16_t dim) const
{
    const int pos = find(dim);
    return pos < 0 ? 0.0 : amounts_[pos];
}

double
ResourceVector::get(const std::string &name) const
{
    return get(resourceDimId(name));
}

void
ResourceVector::set(uint16_t dim, double amount)
{
    int pos = 0;
    while (pos < size_ && ids_[pos] < dim)
        ++pos;
    const bool present = pos < size_ && ids_[pos] == dim;
    if (amount == 0.0) {
        if (present)
            eraseAt(pos);
        return;
    }
    if (present)
        amounts_[pos] = amount;
    else
        insertAt(pos, dim, amount);
}

void
ResourceVector::set(const std::string &name, double amount)
{
    set(resourceDimId(name), amount);
}

void
ResourceVector::add(const ResourceVector &other)
{
    for (int i = 0; i < other.size_; ++i)
        set(other.ids_[i], get(other.ids_[i]) + other.amounts_[i]);
}

void
ResourceVector::subtract(const ResourceVector &other)
{
    for (int i = 0; i < other.size_; ++i)
        set(other.ids_[i], get(other.ids_[i]) - other.amounts_[i]);
}

bool
ResourceVector::fits(const ResourceVector &need) const
{
    // Merge walk over two id-sorted arrays: no lookups, no strings.
    int j = 0;
    for (int i = 0; i < need.size_; ++i) {
        while (j < size_ && ids_[j] < need.ids_[i])
            ++j;
        const double have =
            (j < size_ && ids_[j] == need.ids_[i]) ? amounts_[j] : 0.0;
        if (need.amounts_[i] > have + 1e-9)
            return false;
    }
    return true;
}

bool
ResourceVector::nonNegative() const
{
    for (int i = 0; i < size_; ++i) {
        if (amounts_[i] < -1e-9)
            return false;
    }
    return true;
}

double
ResourceVector::maxUtilizationVs(const ResourceVector &capacity) const
{
    double worst = 0.0;
    for (int i = 0; i < capacity.size_; ++i) {
        if (capacity.amounts_[i] > 0.0) {
            worst = std::max(worst,
                             get(capacity.ids_[i]) / capacity.amounts_[i]);
        }
    }
    return worst;
}

std::vector<std::pair<std::string, double>>
ResourceVector::dims() const
{
    std::vector<std::pair<std::string, double>> out;
    out.reserve(size_);
    for (int i = 0; i < size_; ++i)
        out.emplace_back(resourceDimName(ids_[i]), amounts_[i]);
    std::sort(out.begin(), out.end());
    return out;
}

bool
ResourceVector::operator==(const ResourceVector &other) const
{
    if (size_ != other.size_)
        return false;
    for (int i = 0; i < size_; ++i) {
        if (ids_[i] != other.ids_[i] || amounts_[i] != other.amounts_[i])
            return false;
    }
    return true;
}

} // namespace wsva::cluster
