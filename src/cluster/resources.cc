#include "cluster/resources.h"

#include <algorithm>

namespace wsva::cluster {

double
ResourceVector::get(const std::string &name) const
{
    auto it = dims_.find(name);
    return it == dims_.end() ? 0.0 : it->second;
}

void
ResourceVector::set(const std::string &name, double amount)
{
    if (amount == 0.0)
        dims_.erase(name);
    else
        dims_[name] = amount;
}

void
ResourceVector::add(const ResourceVector &other)
{
    for (const auto &[name, amount] : other.dims_)
        set(name, get(name) + amount);
}

void
ResourceVector::subtract(const ResourceVector &other)
{
    for (const auto &[name, amount] : other.dims_)
        set(name, get(name) - amount);
}

bool
ResourceVector::fits(const ResourceVector &need) const
{
    for (const auto &[name, amount] : need.dims_) {
        if (amount > get(name) + 1e-9)
            return false;
    }
    return true;
}

bool
ResourceVector::nonNegative() const
{
    for (const auto &[name, amount] : dims_) {
        if (amount < -1e-9)
            return false;
    }
    return true;
}

double
ResourceVector::maxUtilizationVs(const ResourceVector &capacity) const
{
    double worst = 0.0;
    for (const auto &[name, cap] : capacity.dims_) {
        if (cap > 0.0)
            worst = std::max(worst, get(name) / cap);
    }
    return worst;
}

} // namespace wsva::cluster
