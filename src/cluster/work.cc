#include "cluster/work.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace wsva::cluster {

using wsva::video::Resolution;
using wsva::video::outputsForInput;

double
TranscodeStep::outputPixels() const
{
    double total = 0.0;
    for (const auto &r : outputs)
        total += static_cast<double>(r.width) * r.height;
    return total * frames;
}

double
TranscodeStep::inputPixels() const
{
    return static_cast<double>(input.width) * input.height * frames;
}

TranscodeStep
makeMotStep(uint64_t id, uint64_t video_id, int chunk_index,
            Resolution input, wsva::video::codec::CodecType codec)
{
    TranscodeStep step;
    step.id = id;
    step.video_id = video_id;
    step.chunk_index = chunk_index;
    step.input = input;
    step.outputs = outputsForInput(input);
    step.codec = codec;
    return step;
}

TranscodeStep
makeSotStep(uint64_t id, uint64_t video_id, int chunk_index,
            Resolution input, Resolution output,
            wsva::video::codec::CodecType codec)
{
    TranscodeStep step;
    step.id = id;
    step.video_id = video_id;
    step.chunk_index = chunk_index;
    step.input = input;
    step.outputs = {output};
    step.codec = codec;
    return step;
}

namespace {

/** Real-time (speedup 1) encoder-core demand of a step, in cores. */
double
encodeCoresRealtime(const TranscodeStep &step,
                    const ResourceMappingPolicy &policy)
{
    double cores = step.outputPixels() / step.durationSeconds() /
                   policy.encoder_core_pixel_rate;
    if (step.two_pass) {
        // First-pass overhead. MOT runs the analysis pass once on
        // the source and shares its statistics across all rungs
        // (Section 2.1: "efficient sharing of control parameters
        // obtained by analysis of the source"), so the overhead is
        // mostly amortized; SOT pays it per output.
        cores *= step.isMot() ? 1.08 : 1.35;
    }
    return cores;
}

/** Real-time hardware decoder-core demand of a step, in cores. */
double
decodeCoresRealtime(const TranscodeStep &step,
                    const ResourceMappingPolicy &policy)
{
    return step.inputPixels() / step.durationSeconds() /
           policy.decoder_core_pixel_rate;
}

} // namespace

double
effectiveSpeedup(const TranscodeStep &step,
                 const ResourceMappingPolicy &policy)
{
    WSVA_ASSERT(step.durationSeconds() > 0, "zero-duration step");
    const double enc1 = encodeCoresRealtime(step, policy);
    const double dec1 = decodeCoresRealtime(step, policy) *
                        (1.0 - policy.software_decode_fraction);
    double speedup = std::max(1.0, policy.allocation_speedup);
    // Leave 5% headroom; never request more than one VCU.
    if (enc1 > 0)
        speedup = std::min(speedup, 9.5 / enc1);
    if (dec1 > 0)
        speedup = std::min(speedup, 2.85 / dec1);
    // Steps larger than a whole VCU at real time stretch in time.
    return std::max(0.2, speedup);
}

ResourceVector
stepResourceNeed(const TranscodeStep &step,
                 const ResourceMappingPolicy &policy)
{
    const double duration = step.durationSeconds();
    WSVA_ASSERT(duration > 0, "zero-duration step");
    const double speedup = effectiveSpeedup(step, policy);

    // Decode: one hardware decode of the input per step (MOT decodes
    // once and fans out). Some of it may be shifted to host CPU
    // software decode via the synthetic dimension.
    const double dec_pixel_rate = step.inputPixels() / duration * speedup;
    const double dec_cores = dec_pixel_rate / policy.decoder_core_pixel_rate;
    const double hw_frac = 1.0 - policy.software_decode_fraction;

    // Encode: all output rungs.
    const double enc_cores = encodeCoresRealtime(step, policy) * speedup;

    ResourceVector need;
    need.set(kResDecodeMillicores,
             std::ceil(dec_cores * hw_frac * 1000.0));
    need.set(kResEncodeMillicores, std::ceil(enc_cores * 1000.0));
    need.set(kResDramBytes,
             static_cast<double>(stepDramFootprint(step)));
    // Host CPU: mux/demux, RPC, audio — small; grows with software
    // decode offload (a software decode costs ~3x a hardware one in
    // host cycles).
    const double host_cores =
        0.05 + dec_cores * policy.software_decode_fraction * 3.0;
    need.set(kResHostCpuMillicores, std::ceil(host_cores * 1000.0));
    if (policy.software_decode_fraction > 0.0) {
        need.set(kResSwDecodeMillicores,
                 std::ceil(dec_cores * policy.software_decode_fraction *
                           1000.0));
    }
    return need;
}

double
stepServiceSeconds(const TranscodeStep &step,
                   const ResourceMappingPolicy &policy)
{
    return step.durationSeconds() / effectiveSpeedup(step, policy);
}

uint64_t
stepDramFootprint(const TranscodeStep &step)
{
    // Appendix A.4: ~700 MiB for a 2160p MOT, ~500 MiB for a 2160p
    // SOT; scale by input pixels relative to 2160p, floor for tiny
    // inputs, +~25% when keeping lagged/offline two-pass frames.
    const double rel =
        static_cast<double>(step.input.width) * step.input.height /
        (3840.0 * 2160.0);
    const double base_mib = step.isMot() ? 700.0 : 500.0;
    double mib = base_mib * rel;
    if (step.two_pass)
        mib *= 1.25;
    mib = std::max(mib, 48.0);
    return static_cast<uint64_t>(mib * (1ull << 20));
}

} // namespace wsva::cluster
