#include "cluster/cluster.h"

#include <algorithm>
#include <cmath>

#include "common/build_info.h"
#include "common/debug_server.h"
#include "common/logging.h"
#include "common/profiler.h"

namespace wsva::cluster {

namespace {

/** Interned-once phase ids for the cluster-side profiling scopes
 *  (DESIGN.md section 13 has the taxonomy). */
struct ClusterPhases {
    int run;
    int dispatch;
    int dispatch_index;
    int audit;
    int collect;
    int faults;
    int repairs;
    int publish;
};

const ClusterPhases &
clusterPhases()
{
    static const ClusterPhases p{
        prof::phaseId("cluster/run"),
        prof::phaseId("cluster/dispatch"),
        prof::phaseId("cluster/dispatch/index"),
        prof::phaseId("cluster/audit"),
        prof::phaseId("cluster/collect"),
        prof::phaseId("cluster/faults"),
        prof::phaseId("cluster/repairs"),
        prof::phaseId("cluster/publish"),
    };
    return p;
}

/** retries / (completions + retries); 0 when nothing happened yet. */
double
retryRate(uint64_t retries, uint64_t completions)
{
    const uint64_t denom = retries + completions;
    return denom > 0 ? static_cast<double>(retries) / denom : 0.0;
}

} // namespace

ClusterSim::ClusterSim(ClusterConfig cfg)
    : cfg_(cfg), rng_(cfg.seed), repairs_(cfg.failure),
      trace_(cfg.trace_capacity), own_tracer_(cfg.span_capacity),
      slo_(cfg.slo)
{
    WSVA_ASSERT(cfg_.hosts > 0 && cfg_.vcus_per_host > 0,
                "cluster needs hosts and VCUs");

    registry_.setEnabled(cfg_.observability);
    trace_.setEnabled(cfg_.observability);
    own_tracer_.setEnabled(cfg_.observability && cfg_.tracing);
    tracer_ = cfg_.tracer != nullptr ? cfg_.tracer : &own_tracer_;
    slo_.attach(&registry_, &trace_);
    repairs_.attachObservability(&registry_, &trace_);

    repair_enter_.assign(static_cast<size_t>(cfg_.hosts), -1.0);
    quarantine_enter_.assign(
        static_cast<size_t>(cfg_.hosts * cfg_.vcus_per_host), -1.0);
    host_retries_.assign(static_cast<size_t>(cfg_.hosts), 0);
    host_completions_.assign(static_cast<size_t>(cfg_.hosts), 0);
    preempt_candidate_flag_.assign(
        static_cast<size_t>(cfg_.hosts * cfg_.vcus_per_host), 0);

    std::vector<Worker *> all_workers;
    int worker_id = 0;
    for (int h = 0; h < cfg_.hosts; ++h) {
        HostModel host;
        host.id = h;
        host.vcu_health.resize(static_cast<size_t>(cfg_.vcus_per_host));
        for (int v = 0; v < cfg_.vcus_per_host; ++v) {
            auto worker = std::make_unique<Worker>(
                worker_id++, WorkerType::Vcu, vcuWorkerCapacity());
            host.workers.push_back(std::move(worker));
        }
        hosts_.push_back(std::move(host));
    }
    // Bind after the host vector is stable (no more moves).
    for (auto &host : hosts_) {
        for (int v = 0; v < cfg_.vcus_per_host; ++v) {
            Worker *w = host.workers[static_cast<size_t>(v)].get();
            w->bindVcu(&host.vcu_health[static_cast<size_t>(v)]);
            w->attachObservability(&registry_, &trace_);
            all_workers.push_back(w);
        }
    }

    if (cfg_.use_consistent_hashing) {
        std::vector<int> ids;
        for (const Worker *w : all_workers)
            ids.push_back(w->id());
        ring_ = std::make_unique<ConsistentHashRing>(ids);
    }

    if (cfg_.use_binpack) {
        scheduler_ = std::make_unique<BinPackScheduler>(all_workers);
    } else {
        ResourceVector slot = cfg_.slot_bundle;
        if (slot.empty()) {
            // Default worst-case bundle: a 2160p two-pass MOT.
            slot = stepResourceNeed(
                makeMotStep(0, 0, 0, {3840, 2160},
                            wsva::video::codec::CodecType::VP9),
                cfg_.mapping);
        }
        scheduler_ = std::make_unique<SlotScheduler>(all_workers, slot);
    }
    scheduler_->attachMetrics(&registry_);
    // The segment-tree availability index returns the identical
    // first-fit pick in O(log n) instead of O(n). Health mutations
    // outside the worker (fault injection, repair drains) call
    // scheduler_->refresh() to keep it coherent.
    if (auto *bp = dynamic_cast<BinPackScheduler *>(scheduler_.get()))
        bp->enableIndex();

    submitted_counter_ = registry_.counterHandle("cluster.steps_submitted");
    completed_counter_ = registry_.counterHandle("cluster.steps_completed");
    retried_counter_ = registry_.counterHandle("cluster.steps_retried");
    failed_counter_ = registry_.counterHandle("cluster.steps_failed");

    // Seed the board so /statusz answers before the first rollup tick.
    if (cfg_.observability && cfg_.fleet_publish_every_ticks > 0)
        fleet_.publish(buildFleetHealth(clock_));
}

void
ClusterSim::submit(const TranscodeStep &step)
{
    backlog_.push_back(step);
    ++submitted_total_;
    ++metrics_.steps_submitted;
    submitted_counter_.inc();
    trackUpload(step, clock_);
}

void
ClusterSim::trackUpload(const TranscodeStep &step, double now)
{
    // Pre-allocate the upload's end-to-end span id at submission so
    // queue_wait/execute children can parent to it before the span
    // itself is recorded at terminal completion. The monitor is told
    // about every submission unconditionally: the enqueue timestamp
    // is what queue age reads from, and gating it on telemetry meant
    // a step submitted while tracing and SLO evaluation were dark
    // aged from the wrong epoch once either came back.
    uint64_t span_id = 0;
    if (tracer_->enabled() && spanSampled(step.id))
        span_id = tracer_->nextId();
    slo_.onSubmit(step.id, now, span_id, step.deadline_time);
}

bool
ClusterSim::spanSampled(uint64_t step_id) const
{
    return cfg_.span_sample_period <= 1 ||
           step_id % cfg_.span_sample_period == 0;
}

Worker *
ClusterSim::workerAt(int host, int vcu)
{
    return hosts_[static_cast<size_t>(host)]
        .workers[static_cast<size_t>(vcu)]
        .get();
}

Worker *
ClusterSim::workerByGid(int gid)
{
    return workerAt(gid / cfg_.vcus_per_host, gid % cfg_.vcus_per_host);
}

HostModel &
ClusterSim::hostOfGid(int gid)
{
    return hosts_[static_cast<size_t>(gid / cfg_.vcus_per_host)];
}

void
ClusterSim::injectFaults(double now, double dt)
{
    const double hours = dt / 3600.0;
    const double p_hard =
        1.0 - std::exp(-cfg_.vcu_hard_fault_per_hour * hours);
    const double p_silent =
        1.0 - std::exp(-cfg_.vcu_silent_fault_per_hour * hours);
    for (auto &host : hosts_) {
        if (host.in_repair)
            continue;
        for (size_t v = 0; v < host.vcu_health.size(); ++v) {
            VcuHealth &health = host.vcu_health[v];
            if (health.disabled)
                continue;
            const int vcu_gid =
                host.id * cfg_.vcus_per_host + static_cast<int>(v);
            if (p_hard > 0 && rng_.bernoulli(p_hard)) {
                // Timestamp the fault so completion collection can
                // tell work that finished before the device died
                // from work the fault actually cut short.
                health.markFaulted(now);
                ++host.fault_count;
                ++metrics_.vcus_disabled;
                registry_.inc("cluster.vcus_disabled");
                trace_.record(TraceEventType::FaultInjected, now,
                              host.id, vcu_gid);
                scheduler_->refresh(*host.workers[v]);
            }
            if (!health.silent_fault && p_silent > 0 &&
                rng_.bernoulli(p_silent)) {
                health.silent_fault = true;
                health.speed_factor = cfg_.silent_speed_factor;
                registry_.inc("cluster.silent_faults");
                trace_.record(TraceEventType::SilentFaultInjected, now,
                              host.id, vcu_gid);
            }
        }
    }
}

void
ClusterSim::maybeEnterRepair(HostModel &host, double now)
{
    if (host.in_repair ||
        host.fault_count < cfg_.failure.host_fault_threshold)
        return;
    if (!repairs_.tryEnter(host.id, now)) {
        // Repair cap reached. The tick engine retries on its next
        // host rescan; the event engine waitlists the host and
        // retries when a repair slot frees up (RepairDone).
        if (ev_ != nullptr &&
            ev_->repair_waitlisted[static_cast<size_t>(host.id)] == 0) {
            ev_->repair_waitlisted[static_cast<size_t>(host.id)] = 1;
            ev_->repair_waiting.push_back(host.id);
        }
        return;
    }
    host.in_repair = true;
    repair_enter_[static_cast<size_t>(host.id)] = now;
    // Everything on the host is drained/disabled.
    for (size_t v = 0; v < host.vcu_health.size(); ++v) {
        host.vcu_health[v].markFaulted(now);
        Worker *w = host.workers[v].get();
        if (ev_ != nullptr) {
            EventQueue::Handle &h =
                ev_->completion_ev[static_cast<size_t>(w->id())];
            if (h != EventQueue::kInvalidHandle) {
                ev_->queue.cancel(h);
                h = EventQueue::kInvalidHandle;
            }
        }
        auto aborted = w->abortAll();
        in_flight_count_ -= aborted.size();
        for (auto &step : aborted) {
            ++metrics_.steps_retried;
            ++host_retries_[static_cast<size_t>(host.id)];
            retried_counter_.inc();
            trace_.record(TraceEventType::StepRetried, now, host.id,
                          w->id(), step.id, step.video_id);
            backlog_.push_front(step);
        }
        scheduler_->refresh(*w);
    }
    if (ev_ != nullptr) {
        ev_->queue.schedule(repairs_.completionTime(host.id),
                            SimEventType::RepairDone, host.id);
        ev_->work_added = true; // Aborted steps re-queued as retries.
    }
}

void
ClusterSim::restoreHost(HostModel &host, double now)
{
    host.in_repair = false;
    host.fault_count = 0;
    ++metrics_.hosts_repaired;
    registry_.inc("cluster.hosts_repaired");
    double &entered = repair_enter_[static_cast<size_t>(host.id)];
    if (tracer_->enabled() && entered >= 0.0) {
        tracer_->recordSimSpan(
            "host_repair", "cluster", entered * 1e6, now * 1e6,
            host.id, /*parent=*/0, kProcessSimHosts, "host",
            static_cast<uint64_t>(host.id));
    }
    entered = -1.0;
    for (size_t v = 0; v < host.vcu_health.size(); ++v) {
        host.vcu_health[v] = VcuHealth{};
        // A quarantined worker sat out until this repair; close
        // its quarantine interval on the host lane.
        const int gid = host.workers[v]->id();
        double &quarantined =
            quarantine_enter_[static_cast<size_t>(gid)];
        if (tracer_->enabled() && quarantined >= 0.0) {
            tracer_->recordSimSpan(
                "quarantine", "cluster", quarantined * 1e6,
                now * 1e6, gid, /*parent=*/0, kProcessSimHosts,
                "worker", static_cast<uint64_t>(gid));
        }
        quarantined = -1.0;
        host.workers[v]->repairReset();
    }
}

void
ClusterSim::manageRepairs(double now)
{
    // Hosts over the fault threshold go to repair (capped).
    for (auto &host : hosts_)
        maybeEnterRepair(host, now);
    for (int host_id : repairs_.collectRepaired(now))
        restoreHost(hosts_[static_cast<size_t>(host_id)], now);
}

void
ClusterSim::processOutcome(HostModel &host, Worker *w,
                           const StepOutcome &outcome, double now)
{
    // Both engines run every collected step through this; the
    // operation and RNG-draw order here is the shared contract that
    // keeps fault-free runs bit-identical between them.
    const int vcu_gid = w->id();
    const auto retryStep = [&](const TranscodeStep &step) {
        ++metrics_.steps_retried;
        ++host_retries_[static_cast<size_t>(host.id)];
        retried_counter_.inc();
        trace_.record(TraceEventType::StepRetried, now, host.id,
                      w->id(), step.id, step.video_id);
        backlog_.push_front(step);
    };
    // Worker execution interval on this worker's track, parented to
    // the upload's pre-allocated e2e span.
    const auto recordExec = [&](const StepOutcome &o, const char *name,
                                double end) {
        // The sampling check first: it spares unsampled steps (the
        // vast majority at bench scale) the hash lookup.
        if (!tracer_->enabled() || !spanSampled(o.step.id))
            return;
        const SloMonitor::Upload *up = slo_.find(o.step.id);
        if (up == nullptr || up->span_id == 0)
            return; // Upload not sampled for tracing.
        tracer_->recordSimSpan(
            name, "cluster", o.start_time * 1e6, end * 1e6,
            1 + w->id(), up->span_id, kProcessSim, "step", o.step.id,
            "video", o.step.video_id);
    };
    // Terminal completion: close the end-to-end upload span under
    // its pre-allocated id and settle the SLO clock.
    const auto finishUpload = [&](const StepOutcome &o) {
        const SloMonitor::Upload *up =
            tracer_->enabled() && spanSampled(o.step.id)
                ? slo_.find(o.step.id)
                : nullptr;
        if (up != nullptr && up->span_id != 0) {
            SpanRecord rec;
            rec.name = "upload";
            rec.category = "cluster";
            rec.id = up->span_id;
            rec.clock = SpanClock::Sim;
            rec.begin_us = up->submit_time * 1e6;
            rec.end_us = o.finish_time * 1e6;
            rec.track = 0;
            rec.process = kProcessSim;
            rec.arg1_key = "step";
            rec.arg1 = o.step.id;
            rec.arg2_key = "video";
            rec.arg2 = o.step.video_id;
            tracer_->record(rec);
        }
        slo_.onComplete(o.step.id, o.finish_time);
    };

    if (outcome.ok)
        recordExec(outcome, "execute", outcome.finish_time);
    else
        recordExec(outcome, "execute_failed", now);
    if (!outcome.ok) {
        // Hardware failure: retry at the cluster level; with the
        // mitigation the worker aborts all of its other in-flight
        // work too.
        ++metrics_.steps_failed;
        failed_counter_.inc();
        trace_.record(TraceEventType::StepFailed, now, host.id,
                      w->id(), outcome.step.id, outcome.step.video_id);
        retryStep(outcome.step);
        if (cfg_.failure.abort_on_failure) {
            auto aborted = w->abortAll();
            in_flight_count_ -= aborted.size();
            for (auto &step : aborted)
                retryStep(step);
        }
        return;
    }
    if (outcome.corrupt) {
        trace_.record(TraceEventType::StepCorrupt, now, host.id,
                      w->id(), outcome.step.id, outcome.step.video_id);
        const bool detected =
            rng_.bernoulli(cfg_.failure.integrity_detect_prob);
        if (detected) {
            ++metrics_.corrupt_detected;
            registry_.inc("cluster.corrupt_detected");
            blast_.recordDetectedCorruption(outcome.step.video_id,
                                            vcu_gid);
            retryStep(outcome.step);
            if (cfg_.failure.abort_on_failure) {
                auto aborted = w->abortAll();
                in_flight_count_ -= aborted.size();
                for (auto &step : aborted)
                    retryStep(step);
            }
            ++host.fault_count;
        } else {
            ++metrics_.corrupt_escaped;
            ++metrics_.steps_completed;
            ++completed_total_;
            ++host_completions_[static_cast<size_t>(host.id)];
            registry_.inc("cluster.corrupt_escaped");
            completed_counter_.inc();
            trace_.record(TraceEventType::StepCompleted, now, host.id,
                          w->id(), outcome.step.id,
                          outcome.step.video_id);
            metrics_.corrupt_pixels += outcome.step.outputPixels();
            blast_.recordEscapedCorruption(outcome.step.video_id,
                                           vcu_gid);
            finishUpload(outcome);
        }
        return;
    }
    ++metrics_.steps_completed;
    ++completed_total_;
    ++host_completions_[static_cast<size_t>(host.id)];
    completed_counter_.inc();
    trace_.record(TraceEventType::StepCompleted, now, host.id,
                  w->id(), outcome.step.id, outcome.step.video_id);
    metrics_.output_pixels += outcome.step.outputPixels();
    finishUpload(outcome);
}

void
ClusterSim::collectWorker(HostModel &host, Worker *w, double now)
{
    auto outcomes = w->collectFinished(now);
    in_flight_count_ -= outcomes.size();
    for (auto &outcome : outcomes)
        processOutcome(host, w, outcome, now);
}

void
ClusterSim::collectCompletions(double now)
{
    for (auto &host : hosts_) {
        for (size_t v = 0; v < host.workers.size(); ++v)
            collectWorker(host, host.workers[v].get(), now);
    }
}

void
ClusterSim::scheduleBacklog(double now)
{
    // Head-of-line scheduling against the availability cache; stop
    // at the first request nothing can take (it blocks the queue, as
    // the paper's per-pool FIFO service queue does). Deadline steps
    // jump the line via the dispatch queue's EDF lane, and a blocked
    // deadline step whose slack is running out may shed batch work to
    // make room instead of waiting.
    if (dispatch_paused_)
        return; // Quarantined: queued work waits to be expelled.
    prof::ProfScope prof_dispatch(clusterPhases().dispatch);
    maybeUnpark(now);
    size_t deferrals = 0;
    while (!backlog_.empty() && deferrals <= backlog_.size()) {
        const TranscodeStep step = backlog_.front();
        const ResourceVector need = stepResourceNeed(step, cfg_.mapping);

        // Blast-radius reduction: consistent hashing keeps one
        // video's chunks on a small affinity set. A chunk whose set
        // is merely *busy* waits (rotates to the back) rather than
        // spilling; it spills to any worker only when the whole set
        // is dead (disabled/quarantined).
        Worker *w = nullptr;
        if (ring_ != nullptr) {
            bool set_alive = false;
            for (int wid : ring_->affinitySet(step.video_id,
                                              cfg_.affinity_set_size)) {
                Worker *candidate = workerAt(wid / cfg_.vcus_per_host,
                                             wid % cfg_.vcus_per_host);
                const bool dead =
                    candidate->refused() ||
                    (candidate->vcu() != nullptr &&
                     candidate->vcu()->disabled);
                set_alive |= !dead;
                if (candidate->canFit(need)) {
                    w = candidate;
                    break;
                }
            }
            if (w == nullptr && set_alive) {
                backlog_.pop_front();
                backlog_.push_back(step);
                ++deferrals;
                continue;
            }
        }
        if (w == nullptr) {
            // Availability-index time attributed separately from the
            // rest of dispatch (the ROADMAP's sharding question).
            // Sampled: picks run per placement (millions at fleet
            // scale), so a full scope's clock reads would dominate
            // the profiler's own overhead budget.
            prof::ProfScopeSampled prof_index(
                clusterPhases().dispatch_index, 16);
            w = scheduler_->pick(need);
        }
        if (w == nullptr && step.hasDeadline() &&
            cfg_.deadline.shed_enabled) {
            // Projected slack if the step started right now. While it
            // is comfortable the step just waits its turn; once it
            // drops under the guard, displace batch work.
            double service = stepServiceSeconds(step, cfg_.mapping);
            if (!cfg_.numa_aware)
                service *= cfg_.numa_penalty_factor;
            const double slack = step.deadline_time - now - service;
            if (slack < cfg_.deadline.slack_guard_seconds)
                w = shedForDeadline(step, need, now);
        }
        if (w == nullptr)
            break;

        const int gid = w->id();

        // A restarted worker (post-abort) golden-screens its VCU
        // before taking work; a failed screen quarantines it until
        // the host is repaired (Section 4.4).
        if (cfg_.failure.golden_screening && w->needsScreen()) {
            if (!w->goldenScreen()) {
                w->setRefused(true);
                ++metrics_.workers_quarantined;
                registry_.inc("cluster.workers_quarantined");
                trace_.record(TraceEventType::WorkerQuarantined, now,
                              gid / cfg_.vcus_per_host, gid);
                // Open the quarantine interval; it closes into a sim
                // span when the host comes back from repair.
                quarantine_enter_[static_cast<size_t>(gid)] = now;
                continue; // Re-pick; the worker is now skipped.
            }
            w->clearScreen();
        }

        backlog_.pop_front();
        double service = stepServiceSeconds(step, cfg_.mapping);
        if (!cfg_.numa_aware)
            service *= cfg_.numa_penalty_factor;
        const ResourceVector reservation =
            scheduler_->reservationFor(need);
        w->assign(step, reservation, now, service);
        ++in_flight_count_;
        if (ev_ != nullptr)
            updateCompletionEvent(w);
        // Remember where batch work landed so a future shed can find
        // a preemption victim without scanning the fleet.
        if (step.priority == Priority::Batch &&
            cfg_.deadline.shed_enabled &&
            cfg_.deadline.preempt_running_batch &&
            preempt_candidate_flag_[static_cast<size_t>(gid)] == 0) {
            preempt_candidate_flag_[static_cast<size_t>(gid)] = 1;
            preempt_candidates_.push_back(gid);
        }
        if (cfg_.track_blast_radius)
            blast_.recordChunk(step.video_id, gid);
        if (tracer_->enabled() && spanSampled(step.id)) {
            // Placement latency: submission (or requeue-covering
            // original submission) to this assignment, on the
            // assigned worker's track.
            const SloMonitor::Upload *up = slo_.find(step.id);
            if (up != nullptr && up->span_id != 0) {
                tracer_->recordSimSpan(
                    "queue_wait", "cluster", up->submit_time * 1e6,
                    now * 1e6, 1 + gid, up->span_id, kProcessSim,
                    "step", step.id, "video", step.video_id);
            }
        }
    }
}

Worker *
ClusterSim::shedForDeadline(const TranscodeStep &step,
                            const ResourceVector &need, double now)
{
    // Load shedding, two rungs. First park all queued batch work:
    // that frees no resources immediately but stops dispatch from
    // backfilling capacity the live lane is about to need. Parked
    // steps move to the shed lot — out of contention, still in the
    // conservation ledger.
    const size_t parked = backlog_.parkBatch();
    if (parked > 0) {
        metrics_.steps_shed += parked;
        registry_.inc("cluster.steps_shed", parked);
        trace_.record(TraceEventType::StepShed, now, -1, -1, step.id,
                      step.video_id);
        last_shed_time_ = now;
    }

    // Second rung: preempt batch steps already running. Candidates
    // are the workers batch work was assigned to, oldest first; each
    // is either stale (its batch already drained — drop it), unable
    // to host this step even emptied of batch (keep it for a smaller
    // request), or the victim.
    if (!cfg_.deadline.preempt_running_batch)
        return nullptr;
    size_t examined = 0;
    const size_t limit = preempt_candidates_.size();
    while (!preempt_candidates_.empty() && examined < limit) {
        ++examined;
        const int gid = preempt_candidates_.front();
        preempt_candidates_.pop_front();
        Worker *w = workerByGid(gid);
        if (w->batchRunning() == 0) {
            preempt_candidate_flag_[static_cast<size_t>(gid)] = 0;
            continue;
        }
        if (!w->canFitWithBatchPreempted(need)) {
            preempt_candidates_.push_back(gid);
            continue;
        }
        auto preempted = w->preemptBatch();
        preempt_candidate_flag_[static_cast<size_t>(gid)] = 0;
        in_flight_count_ -= preempted.size();
        for (const auto &victim : preempted) {
            backlog_.parkStep(victim);
            trace_.record(TraceEventType::StepShed, now,
                          gid / cfg_.vcus_per_host, gid, victim.id,
                          victim.video_id);
        }
        metrics_.steps_shed += preempted.size();
        metrics_.steps_preempted += preempted.size();
        registry_.inc("cluster.steps_shed", preempted.size());
        registry_.inc("cluster.steps_preempted", preempted.size());
        last_shed_time_ = now;
        // preemptBatch released capacity and (via the availability
        // listener) updated the scheduler index; the worker's single
        // completion event must follow its new earliest finish.
        if (ev_ != nullptr)
            updateCompletionEvent(w);
        return w;
    }
    return nullptr;
}

void
ClusterSim::maybeUnpark(double now)
{
    if (backlog_.shedSize() == 0)
        return;
    // Hysteresis: release only once the live crunch has demonstrably
    // passed — no deadline work waiting and a calm period since the
    // last shed — so a surge still ramping does not thrash batch
    // steps between workers and the shed lot.
    if (backlog_.deadlineSize() > 0)
        return;
    if (now - last_shed_time_ < cfg_.deadline.release_after_seconds)
        return;
    // The released steps land in the FIFO lane and the dispatch loop
    // right below this call picks them up — no event rescheduling
    // needed.
    const size_t released = backlog_.unparkAll();
    registry_.inc("cluster.steps_unshed", released);
}

size_t
ClusterSim::inFlightSteps() const
{
    // Maintained incrementally at every assign/collect/abort, so the
    // per-tick (or per-event-batch) conservation audit and the fleet
    // rollup are O(1) instead of a fleet-wide scan. Debug builds
    // cross-check against the scan in checkConservation().
    return static_cast<size_t>(in_flight_count_);
}

ConservationSnapshot
ClusterSim::conservation() const
{
    ConservationSnapshot snap;
    snap.submitted = submitted_total_;
    snap.completed = completed_total_;
    snap.failed_terminal = failed_terminal_total_;
    snap.in_flight = inFlightSteps();
    snap.backlog = backlog_.size();
    snap.shed = backlog_.shedSize();
    snap.rerouted_away = rerouted_away_total_;
    return snap;
}

std::vector<TranscodeStep>
ClusterSim::expelBacklog()
{
    auto steps = backlog_.drainAll();
    if (steps.empty())
        return steps;
    rerouted_away_total_ += steps.size();
    registry_.inc("cluster.steps_rerouted_away", steps.size());
    // Cancel the SLO tracking entries: the steps will re-enter
    // tracking in whichever cluster receives them. Leaving them here
    // would leak the in-flight map and age the queue forever.
    for (const auto &step : steps)
        slo_.onCancel(step.id);
    return steps;
}

void
ClusterSim::forceSilentFaults(double speed_factor)
{
    WSVA_ASSERT(speed_factor > 0.0, "speed factor must be positive");
    for (auto &host : hosts_) {
        if (host.in_repair)
            continue;
        for (size_t v = 0; v < host.vcu_health.size(); ++v) {
            VcuHealth &health = host.vcu_health[v];
            if (health.disabled || health.silent_fault)
                continue;
            health.silent_fault = true;
            health.speed_factor = speed_factor;
            registry_.inc("cluster.silent_faults");
            trace_.record(TraceEventType::SilentFaultInjected, clock_,
                          host.id,
                          host.id * cfg_.vcus_per_host +
                              static_cast<int>(v));
        }
    }
}

void
ClusterSim::checkConservation(double now)
{
    // The invariant behind all the failure accounting: every step
    // ever submitted is terminally done, terminally failed, running,
    // or queued. This runs regardless of cfg_.observability — it is
    // an audit of the simulator itself, and it is exactly what makes
    // the fault/retry counter bugs a class that cannot silently
    // regress. Debug builds abort on violation; release builds count
    // and warn so a long bench run still finishes with evidence.
    prof::ProfScope prof_audit(clusterPhases().audit);
    const ConservationSnapshot snap = conservation();
    ++metrics_.conservation_checks;
#ifndef NDEBUG
    // Cross-check the incremental in-flight counter against a full
    // worker scan — exactly the O(workers) cost the counter removes,
    // so only on fleets small enough for tests to afford it.
    if (totalVcus() <= 2048) {
        size_t scanned = 0;
        for (const auto &host : hosts_) {
            for (const auto &w : host.workers)
                scanned += w->runningSteps();
        }
        WSVA_ASSERT(scanned == static_cast<size_t>(in_flight_count_),
                    "in-flight counter drift at t=%.3f: scan %zu vs "
                    "counter %llu",
                    now, scanned,
                    static_cast<unsigned long long>(in_flight_count_));
    }
#endif
    if (!snap.holds()) {
        ++metrics_.conservation_violations;
        registry_.inc("cluster.conservation_violations");
        warn("step conservation violated at t=%.3f: submitted %llu != "
             "completed %llu + failed %llu + in-flight %llu + "
             "backlog %llu + shed %llu + rerouted %llu",
             now, static_cast<unsigned long long>(snap.submitted),
             static_cast<unsigned long long>(snap.completed),
             static_cast<unsigned long long>(snap.failed_terminal),
             static_cast<unsigned long long>(snap.in_flight),
             static_cast<unsigned long long>(snap.backlog),
             static_cast<unsigned long long>(snap.shed),
             static_cast<unsigned long long>(snap.rerouted_away));
#ifndef NDEBUG
        WSVA_ASSERT(false, "step conservation violated at t=%.3f", now);
#endif
    }
}

void
ClusterSim::sampleTick(double now)
{
    // Utilization sampling across usable workers.
    double enc = 0;
    double dec = 0;
    double cpu = 0;
    int n = 0;
    for (auto &host : hosts_) {
        if (host.in_repair)
            continue;
        for (size_t v = 0; v < host.workers.size(); ++v) {
            if (host.vcu_health[v].disabled)
                continue;
            const Worker *w = host.workers[v].get();
            enc += w->dimensionUtilization(kResEncodeMillicores);
            dec += w->dimensionUtilization(kResDecodeMillicores);
            cpu += w->dimensionUtilization(kResHostCpuMillicores);
            ++n;
        }
    }
    if (n > 0) {
        enc_util_samples_.add(enc / n);
        dec_util_samples_.add(dec / n);
        cpu_util_samples_.add(cpu / n);
    }

    if (!registry_.enabled())
        return;
    if (n > 0) {
        registry_.sample("util.encoder", now, enc / n);
        registry_.sample("util.decoder", now, dec / n);
        registry_.sample("util.host_cpu", now, cpu / n);
    }
    registry_.sample("backlog", now,
                     static_cast<double>(backlog_.size()));
    registry_.sample("in_flight", now,
                     static_cast<double>(inFlightSteps()));
    if (backlog_.shedSize() > 0 || metrics_.steps_shed > 0)
        registry_.sample("shed", now,
                         static_cast<double>(backlog_.shedSize()));
    registry_.sample("steps_retried", now,
                     static_cast<double>(metrics_.steps_retried));
    registry_.sample("workers_quarantined", now,
                     static_cast<double>(metrics_.workers_quarantined));
    registry_.sample("hosts_in_repair", now,
                     static_cast<double>(repairs_.inRepair()));
}

void
ClusterSim::pullArrivals(const ArrivalFn &arrivals, double now,
                         double dt)
{
    for (auto &step : arrivals(now, dt)) {
        backlog_.push_back(step);
        ++submitted_total_;
        ++metrics_.steps_submitted;
        submitted_counter_.inc();
        trackUpload(step, now);
    }
}

void
ClusterSim::publishRollup(double now)
{
    prof::ProfScope prof_publish(clusterPhases().publish);
    fleet_.publish(buildFleetHealth(now));
    if (registry_.enabled()) {
        fleet_.exportGauges(registry_);
        // Continuous profiling rides the same rollup cadence so
        // profile.* gauges age no slower than fleet health does.
        auto &profiler = prof::ProfileRegistry::instance();
        if (profiler.enabled())
            profiler.exportGauges(registry_);
    }
}

ClusterMetrics
ClusterSim::run(double duration, double dt, const ArrivalFn &arrivals)
{
    WSVA_ASSERT(duration > 0 && dt > 0, "bad run parameters");
    prof::ProfScope prof_run(clusterPhases().run);
    metrics_ = ClusterMetrics{};
    enc_util_samples_.reset();
    dec_util_samples_.reset();
    cpu_util_samples_.reset();
    if (cfg_.engine == SimEngine::Event)
        return runEvents(duration, dt, arrivals);
    return runTicks(duration, dt, arrivals);
}

ClusterMetrics
ClusterSim::runTicks(double duration, double dt,
                     const ArrivalFn &arrivals)
{
    const double start = clock_;
    double now = clock_;
    while (now < start + duration) {
        now += dt;
        clock_ = now;
        if (arrivals)
            pullArrivals(arrivals, now, dt);
        {
            prof::ProfScope prof_faults(clusterPhases().faults);
            injectFaults(now, dt);
        }
        {
            prof::ProfScope prof_repairs(clusterPhases().repairs);
            manageRepairs(now);
        }
        {
            prof::ProfScope prof_collect(clusterPhases().collect);
            collectCompletions(now);
        }
        scheduleBacklog(now);
        checkConservation(now);
        sampleTick(now);
        slo_.onTick(now);
        ++ticks_;
        if (cfg_.observability && cfg_.fleet_publish_every_ticks > 0 &&
            ticks_ % cfg_.fleet_publish_every_ticks == 0)
            publishRollup(now);
    }

    // Final drain of completions right at the horizon.
    collectCompletions(now);
    checkConservation(now);
    return finishRun(start, now);
}

ClusterMetrics
ClusterSim::finishRun(double start, double now)
{
    // Publish a final rollup so /statusz reflects the drained state
    // even when the horizon fell between publish ticks.
    if (cfg_.observability && cfg_.fleet_publish_every_ticks > 0)
        publishRollup(now);

    metrics_.sim_seconds = now - start;
    metrics_.mpix_per_vcu = metrics_.output_pixels /
                            (metrics_.sim_seconds * totalVcus()) / 1e6;
    metrics_.encoder_utilization = enc_util_samples_.mean();
    metrics_.decoder_utilization = dec_util_samples_.mean();
    metrics_.host_cpu_utilization = cpu_util_samples_.mean();
    metrics_.sched_placed = scheduler_->stats().placed;
    metrics_.sched_rejected = scheduler_->stats().rejected;
    metrics_.backlog_remaining = backlog_.size();
    // Work still on workers at the horizon used to vanish from the
    // ledger: not completed, not failed, not backlog. Surface it.
    metrics_.steps_in_flight = inFlightSteps();
    metrics_.shed_remaining = backlog_.shedSize();
    metrics_.deadline_completions = slo_.deadlineTracked();
    metrics_.deadline_misses = slo_.deadlineMissed();

    if (registry_.enabled()) {
        blast_.exportTo(registry_);
        registry_.setGauge("cluster.backlog_remaining",
                           static_cast<double>(backlog_.size()));
        registry_.setGauge(
            "cluster.steps_in_flight",
            static_cast<double>(metrics_.steps_in_flight));
        registry_.setGauge("cluster.encoder_utilization",
                           metrics_.encoder_utilization);
        registry_.setGauge("cluster.decoder_utilization",
                           metrics_.decoder_utilization);
        registry_.setGauge("cluster.host_cpu_utilization",
                           metrics_.host_cpu_utilization);
        registry_.setGauge("cluster.mpix_per_vcu",
                           metrics_.mpix_per_vcu);
    }
    return metrics_;
}

FleetHealthSnapshot
ClusterSim::buildFleetHealth(double now) const
{
    FleetHealthSnapshot snap;
    snap.sim_time = now;
    snap.tick = ticks_;
    snap.vcus_per_host = cfg_.vcus_per_host;
    snap.hosts_per_rack =
        cfg_.hosts_per_rack > 0 ? cfg_.hosts_per_rack : 1;

    snap.hosts.reserve(hosts_.size());
    double cluster_util = 0.0;
    for (const auto &host : hosts_) {
        NodeHealth node;
        node.id = host.id;
        double util = 0.0;
        for (size_t v = 0; v < host.workers.size(); ++v) {
            const Worker *w = host.workers[v].get();
            const VcuHealth &health = host.vcu_health[v];
            node.counts.add(classifyWorker(host.in_repair,
                                           w->refused(),
                                           health.disabled,
                                           health.silent_fault));
            util += w->dimensionUtilization(kResEncodeMillicores);
        }
        if (!host.workers.empty())
            node.encoder_utilization =
                util / static_cast<double>(host.workers.size());
        node.retries = host_retries_[static_cast<size_t>(host.id)];
        node.completions =
            host_completions_[static_cast<size_t>(host.id)];
        node.retry_rate = retryRate(node.retries, node.completions);
        snap.cluster.merge(node.counts);
        cluster_util += util;
        snap.hosts.push_back(node);
    }

    // Aggregate hosts into racks (rack id = host id / hosts_per_rack).
    // Hosts are equal-sized, so rack utilization is a plain mean of
    // its hosts' means.
    const int rack_count =
        (cfg_.hosts + snap.hosts_per_rack - 1) / snap.hosts_per_rack;
    snap.racks.resize(static_cast<size_t>(rack_count));
    std::vector<int> rack_hosts(static_cast<size_t>(rack_count), 0);
    for (const auto &host : snap.hosts) {
        const size_t r =
            static_cast<size_t>(host.id / snap.hosts_per_rack);
        NodeHealth &rack = snap.racks[r];
        rack.id = static_cast<int>(r);
        rack.counts.merge(host.counts);
        rack.encoder_utilization += host.encoder_utilization;
        rack.retries += host.retries;
        rack.completions += host.completions;
        ++rack_hosts[r];
    }
    uint64_t retries = 0;
    uint64_t completions = 0;
    for (size_t r = 0; r < snap.racks.size(); ++r) {
        NodeHealth &rack = snap.racks[r];
        if (rack_hosts[r] > 0)
            rack.encoder_utilization /= rack_hosts[r];
        rack.retry_rate = retryRate(rack.retries, rack.completions);
        retries += rack.retries;
        completions += rack.completions;
    }

    if (totalVcus() > 0)
        snap.encoder_utilization =
            cluster_util / static_cast<double>(totalVcus());
    snap.retries = retries;
    snap.completions = completions;
    snap.retry_rate = retryRate(retries, completions);
    snap.backlog = backlog_.size();
    snap.in_flight = inFlightSteps();
    snap.shed = backlog_.shedSize();

    // SLO surface: the monitor is not thread-safe, so this read is
    // legal only from the sim thread — which is where
    // buildFleetHealth runs; scrape threads read the published board.
    snap.slo_alert_active = slo_.alertActive();
    snap.slo_burn_rate = slo_.burnRate();
    snap.slo_window_p99 = slo_.windowP99();
    snap.slo_queue_age = slo_.queueAge(now);
    snap.deadline_tracked = slo_.deadlineTracked();
    snap.deadline_miss_rate = slo_.windowDeadlineMissRate();
    return snap;
}

void
ClusterSim::attachDebugServer(wsva::DebugServer &server,
                              const std::string &build_info)
{
    wsva::ZPageSources sources;
    sources.metrics = &registry_;
    sources.tracer = tracer_;
    sources.build_info = build_info;
    sources.export_schema_version = kExportSchemaVersion;
    // The handlers run on scrape threads while run() ticks on the sim
    // thread, so they may only read the double-buffered board (and
    // immutable config captured by value) — never slo_ or clock_.
    const FleetHealthBoard *board = &fleet_;
    sources.statusz = [board] {
        const auto snap = board->snapshot();
        if (snap == nullptr)
            return std::string(
                "no fleet-health rollup published yet\n");
        return snap->toText();
    };
    const int hosts = cfg_.hosts;
    const int total_vcus = totalVcus();
    sources.healthz_extra = [board, hosts, total_vcus] {
        const auto snap = board->snapshot();
        return strformat(
            "\"hosts\": %d, \"total_vcus\": %d, "
            "\"fleet_publishes\": %llu, \"fleet_healthy\": %llu",
            hosts, total_vcus,
            static_cast<unsigned long long>(board->publishes()),
            static_cast<unsigned long long>(
                snap != nullptr ? snap->cluster.healthy : 0));
    };
    wsva::registerZPages(server, sources);
}

std::string
ClusterSim::exportJson(size_t max_trace_events) const
{
    const ConservationSnapshot snap = conservation();
    // Schema version history lives on kExportSchemaVersion — the one
    // place the number is defined.
    std::string out = strformat(
        "{\n\"schema_version\": %d,\n\"metrics\": ",
        kExportSchemaVersion);
    out += registry_.toJson();
    out += ",\n\"trace\": ";
    out += trace_.toJson(max_trace_events);
    out += ",\n\"slo\": ";
    out += slo_.exportJson(clock_);
    out += ",\n\"build\": ";
    out += buildInfoJson(kExportSchemaVersion);
    out += ",\n\"profile\": ";
    out += prof::ProfileRegistry::instance().toJson();
    out += ",\n\"fleet_health\": ";
    // Reuse the published (double-buffered) rollup rather than
    // re-scanning every worker on each export; a live build is the
    // fallback only when publishing is off and no snapshot exists.
    const auto fleet_snap = fleet_.snapshot();
    out += fleet_snap != nullptr ? fleet_snap->toJson()
                                 : buildFleetHealth(clock_).toJson();
    out += strformat(
        ",\n\"conservation\": {\"submitted\": %llu, "
        "\"completed\": %llu, \"failed_terminal\": %llu, "
        "\"in_flight\": %llu, \"backlog\": %llu, \"shed\": %llu, "
        "\"rerouted_away\": %llu, \"holds\": %s}\n}",
        static_cast<unsigned long long>(snap.submitted),
        static_cast<unsigned long long>(snap.completed),
        static_cast<unsigned long long>(snap.failed_terminal),
        static_cast<unsigned long long>(snap.in_flight),
        static_cast<unsigned long long>(snap.backlog),
        static_cast<unsigned long long>(snap.shed),
        static_cast<unsigned long long>(snap.rerouted_away),
        snap.holds() ? "true" : "false");
    return out;
}

} // namespace wsva::cluster
