#include "cluster/cluster.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace wsva::cluster {

ClusterSim::ClusterSim(ClusterConfig cfg)
    : cfg_(cfg), rng_(cfg.seed), repairs_(cfg.failure)
{
    WSVA_ASSERT(cfg_.hosts > 0 && cfg_.vcus_per_host > 0,
                "cluster needs hosts and VCUs");

    std::vector<Worker *> all_workers;
    int worker_id = 0;
    for (int h = 0; h < cfg_.hosts; ++h) {
        HostModel host;
        host.id = h;
        host.vcu_health.resize(static_cast<size_t>(cfg_.vcus_per_host));
        for (int v = 0; v < cfg_.vcus_per_host; ++v) {
            auto worker = std::make_unique<Worker>(
                worker_id++, WorkerType::Vcu, vcuWorkerCapacity());
            host.workers.push_back(std::move(worker));
        }
        hosts_.push_back(std::move(host));
    }
    // Bind after the host vector is stable (no more moves).
    for (auto &host : hosts_) {
        for (int v = 0; v < cfg_.vcus_per_host; ++v) {
            host.workers[static_cast<size_t>(v)]->bindVcu(
                &host.vcu_health[static_cast<size_t>(v)]);
            all_workers.push_back(
                host.workers[static_cast<size_t>(v)].get());
        }
    }

    if (cfg_.use_consistent_hashing) {
        std::vector<int> ids;
        for (const Worker *w : all_workers)
            ids.push_back(w->id());
        ring_ = std::make_unique<ConsistentHashRing>(ids);
    }

    if (cfg_.use_binpack) {
        scheduler_ = std::make_unique<BinPackScheduler>(all_workers);
    } else {
        ResourceVector slot = cfg_.slot_bundle;
        if (slot.empty()) {
            // Default worst-case bundle: a 2160p two-pass MOT.
            slot = stepResourceNeed(
                makeMotStep(0, 0, 0, {3840, 2160},
                            wsva::video::codec::CodecType::VP9),
                cfg_.mapping);
        }
        scheduler_ = std::make_unique<SlotScheduler>(all_workers, slot);
    }
}

void
ClusterSim::submit(const TranscodeStep &step)
{
    backlog_.push_back(step);
}

Worker *
ClusterSim::workerAt(int host, int vcu)
{
    return hosts_[static_cast<size_t>(host)]
        .workers[static_cast<size_t>(vcu)]
        .get();
}

void
ClusterSim::injectFaults(double now, double dt)
{
    (void)now;
    const double hours = dt / 3600.0;
    const double p_hard =
        1.0 - std::exp(-cfg_.vcu_hard_fault_per_hour * hours);
    const double p_silent =
        1.0 - std::exp(-cfg_.vcu_silent_fault_per_hour * hours);
    for (auto &host : hosts_) {
        if (host.in_repair)
            continue;
        for (auto &health : host.vcu_health) {
            if (health.disabled)
                continue;
            if (p_hard > 0 && rng_.bernoulli(p_hard)) {
                health.disabled = true;
                ++host.fault_count;
                ++metrics_.vcus_disabled;
            }
            if (!health.silent_fault && p_silent > 0 &&
                rng_.bernoulli(p_silent)) {
                health.silent_fault = true;
                health.speed_factor = cfg_.silent_speed_factor;
            }
        }
    }
}

void
ClusterSim::manageRepairs(double now)
{
    // Hosts over the fault threshold go to repair (capped).
    for (auto &host : hosts_) {
        if (!host.in_repair &&
            host.fault_count >= cfg_.failure.host_fault_threshold) {
            if (repairs_.tryEnter(host.id, now)) {
                host.in_repair = true;
                // Everything on the host is drained/disabled.
                for (size_t v = 0; v < host.vcu_health.size(); ++v) {
                    host.vcu_health[v].disabled = true;
                    auto aborted =
                        host.workers[v]->abortAll();
                    for (auto &step : aborted) {
                        ++metrics_.steps_retried;
                        backlog_.push_front(step);
                    }
                }
            }
        }
    }
    for (int host_id : repairs_.collectRepaired(now)) {
        auto &host = hosts_[static_cast<size_t>(host_id)];
        host.in_repair = false;
        host.fault_count = 0;
        ++metrics_.hosts_repaired;
        for (size_t v = 0; v < host.vcu_health.size(); ++v) {
            host.vcu_health[v] = VcuHealth{};
            host.workers[v]->repairReset();
        }
    }
}

void
ClusterSim::collectCompletions(double now, ClusterMetrics &metrics)
{
    for (auto &host : hosts_) {
        for (size_t v = 0; v < host.workers.size(); ++v) {
            Worker *w = host.workers[v].get();
            const int vcu_gid =
                host.id * cfg_.vcus_per_host + static_cast<int>(v);
            for (auto &outcome : w->collectFinished(now)) {
                if (!outcome.ok) {
                    // Hardware failure: retry at the cluster level;
                    // with the mitigation the worker aborts all of
                    // its other in-flight work too.
                    ++metrics.steps_failed;
                    ++metrics.steps_retried;
                    backlog_.push_front(outcome.step);
                    if (cfg_.failure.abort_on_failure) {
                        for (auto &step : w->abortAll()) {
                            ++metrics.steps_retried;
                            backlog_.push_front(step);
                        }
                    }
                    continue;
                }
                if (outcome.corrupt) {
                    const bool detected = rng_.bernoulli(
                        cfg_.failure.integrity_detect_prob);
                    if (detected) {
                        ++metrics.corrupt_detected;
                        ++metrics.steps_retried;
                        blast_.recordDetectedCorruption(
                            outcome.step.video_id, vcu_gid);
                        backlog_.push_front(outcome.step);
                        if (cfg_.failure.abort_on_failure) {
                            for (auto &step : w->abortAll()) {
                                ++metrics.steps_retried;
                                backlog_.push_front(step);
                            }
                        }
                        ++host.fault_count;
                    } else {
                        ++metrics.corrupt_escaped;
                        ++metrics.steps_completed;
                        metrics.corrupt_pixels +=
                            outcome.step.outputPixels();
                        blast_.recordEscapedCorruption(
                            outcome.step.video_id, vcu_gid);
                    }
                    continue;
                }
                ++metrics.steps_completed;
                metrics.output_pixels += outcome.step.outputPixels();
            }
        }
    }
}

void
ClusterSim::scheduleBacklog(double now)
{
    // Head-of-line scheduling against the availability cache; stop
    // at the first request nothing can take (it blocks the queue, as
    // the paper's per-pool FIFO service queue does).
    size_t deferrals = 0;
    while (!backlog_.empty() && deferrals <= backlog_.size()) {
        const TranscodeStep step = backlog_.front();
        const ResourceVector need = stepResourceNeed(step, cfg_.mapping);

        // Blast-radius reduction: consistent hashing keeps one
        // video's chunks on a small affinity set. A chunk whose set
        // is merely *busy* waits (rotates to the back) rather than
        // spilling; it spills to any worker only when the whole set
        // is dead (disabled/quarantined).
        Worker *w = nullptr;
        if (ring_ != nullptr) {
            bool set_alive = false;
            for (int wid : ring_->affinitySet(step.video_id,
                                              cfg_.affinity_set_size)) {
                Worker *candidate = workerAt(wid / cfg_.vcus_per_host,
                                             wid % cfg_.vcus_per_host);
                const bool dead =
                    candidate->refused() ||
                    (candidate->vcu() != nullptr &&
                     candidate->vcu()->disabled);
                set_alive |= !dead;
                if (candidate->canFit(need)) {
                    w = candidate;
                    break;
                }
            }
            if (w == nullptr && set_alive) {
                backlog_.pop_front();
                backlog_.push_back(step);
                ++deferrals;
                continue;
            }
        }
        if (w == nullptr)
            w = scheduler_->pick(need);
        if (w == nullptr)
            break;

        const int gid = w->id();

        // A restarted worker (post-abort) golden-screens its VCU
        // before taking work; a failed screen quarantines it until
        // the host is repaired (Section 4.4).
        if (cfg_.failure.golden_screening && w->needsScreen()) {
            if (!w->goldenScreen()) {
                w->setRefused(true);
                ++metrics_.workers_quarantined;
                continue; // Re-pick; the worker is now skipped.
            }
            w->clearScreen();
        }

        backlog_.pop_front();
        double service = stepServiceSeconds(step, cfg_.mapping);
        if (!cfg_.numa_aware)
            service *= cfg_.numa_penalty_factor;
        const ResourceVector reservation =
            scheduler_->reservationFor(need);
        w->assign(step, reservation, now, service);
        blast_.recordChunk(step.video_id, gid);
    }
}

ClusterMetrics
ClusterSim::run(double duration, double dt, const ArrivalFn &arrivals)
{
    WSVA_ASSERT(duration > 0 && dt > 0, "bad run parameters");
    metrics_ = ClusterMetrics{};
    enc_util_samples_.reset();
    dec_util_samples_.reset();
    cpu_util_samples_.reset();

    const double start = clock_;
    double now = clock_;
    while (now < start + duration) {
        now += dt;
        clock_ = now;
        if (arrivals) {
            for (auto &step : arrivals(now, dt))
                backlog_.push_back(step);
        }
        injectFaults(now, dt);
        manageRepairs(now);
        collectCompletions(now, metrics_);
        scheduleBacklog(now);

        // Utilization sampling across usable workers.
        double enc = 0;
        double dec = 0;
        double cpu = 0;
        int n = 0;
        for (auto &host : hosts_) {
            if (host.in_repair)
                continue;
            for (size_t v = 0; v < host.workers.size(); ++v) {
                if (host.vcu_health[v].disabled)
                    continue;
                const Worker *w = host.workers[v].get();
                enc += w->dimensionUtilization(kResEncodeMillicores);
                dec += w->dimensionUtilization(kResDecodeMillicores);
                cpu += w->dimensionUtilization(kResHostCpuMillicores);
                ++n;
            }
        }
        if (n > 0) {
            enc_util_samples_.add(enc / n);
            dec_util_samples_.add(dec / n);
            cpu_util_samples_.add(cpu / n);
        }
    }

    // Final drain of completions right at the horizon.
    collectCompletions(now, metrics_);

    metrics_.sim_seconds = now - start;
    metrics_.mpix_per_vcu = metrics_.output_pixels /
                            (metrics_.sim_seconds * totalVcus()) / 1e6;
    metrics_.encoder_utilization = enc_util_samples_.mean();
    metrics_.decoder_utilization = dec_util_samples_.mean();
    metrics_.host_cpu_utilization = cpu_util_samples_.mean();
    metrics_.sched_placed = scheduler_->stats().placed;
    metrics_.sched_rejected = scheduler_->stats().rejected;
    metrics_.backlog_remaining = backlog_.size();
    return metrics_;
}

} // namespace wsva::cluster
