/**
 * @file
 * Consistent-hash placement for blast-radius reduction.
 *
 * Section 4.4: videos are chunked across hundreds of VCUs, so one
 * silently corrupting VCU touches many videos. "A future enhancement
 * would be to use consistent hashing to reduce the number of VCUs on
 * which a given video is processed." This module implements that
 * enhancement: a hash ring over workers with virtual nodes; each
 * video hashes to a small affinity set of workers, and the scheduler
 * prefers (but is not required) to place the video's chunks there.
 */

#ifndef WSVA_CLUSTER_CONSISTENT_HASH_H
#define WSVA_CLUSTER_CONSISTENT_HASH_H

#include <cstddef>
#include <cstdint>
#include <map>
#include <set>
#include <vector>

namespace wsva::cluster {

/** Hash ring mapping 64-bit keys to worker ids. */
class ConsistentHashRing
{
  public:
    /**
     * @param worker_ids Workers on the ring.
     * @param virtual_nodes Ring points per worker (smooths load).
     */
    explicit ConsistentHashRing(const std::vector<int> &worker_ids,
                                int virtual_nodes = 32);

    /**
     * The affinity set for @p key: the first @p count distinct
     * workers clockwise from the key's ring position.
     */
    std::vector<int> affinitySet(uint64_t key, size_t count) const;

    /** Remove a worker (failed/disabled); its keys spill over.
     *  Removing an id not on the ring is a no-op. */
    void removeWorker(int worker_id);

    /** Add a worker (repair completed). Adding an id already on the
     *  ring is a no-op, so the worker count always matches the number
     *  of distinct ids (affinitySet would otherwise spin forever
     *  asking for more distinct workers than exist). */
    void addWorker(int worker_id);

    size_t workerCount() const { return ids_.size(); }

  private:
    static uint64_t mix(uint64_t value);

    std::map<uint64_t, int> ring_; //!< ring position -> worker id.
    std::set<int> ids_;            //!< distinct worker ids on the ring.
    int virtual_nodes_;
};

} // namespace wsva::cluster

#endif // WSVA_CLUSTER_CONSISTENT_HASH_H
