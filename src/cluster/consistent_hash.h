/**
 * @file
 * Consistent-hash placement for blast-radius reduction.
 *
 * Section 4.4: videos are chunked across hundreds of VCUs, so one
 * silently corrupting VCU touches many videos. "A future enhancement
 * would be to use consistent hashing to reduce the number of VCUs on
 * which a given video is processed." This module implements that
 * enhancement: a hash ring over workers with virtual nodes; each
 * video hashes to a small affinity set of workers, and the scheduler
 * prefers (but is not required) to place the video's chunks there.
 */

#ifndef WSVA_CLUSTER_CONSISTENT_HASH_H
#define WSVA_CLUSTER_CONSISTENT_HASH_H

#include <cstddef>
#include <cstdint>
#include <set>
#include <utility>
#include <vector>

namespace wsva::cluster {

/** Hash ring mapping 64-bit keys to worker ids. */
class ConsistentHashRing
{
  public:
    /**
     * @param worker_ids Workers on the ring.
     * @param virtual_nodes Ring points per worker (smooths load).
     */
    explicit ConsistentHashRing(const std::vector<int> &worker_ids,
                                int virtual_nodes = 32);

    /**
     * The affinity set for @p key: the first @p count distinct
     * workers clockwise from the key's ring position.
     */
    std::vector<int> affinitySet(uint64_t key, size_t count) const;

    /** Remove a worker (failed/disabled/quarantined); its keys spill
     *  over. Removing an id not on the ring is a no-op. Removal erases
     *  exactly the worker's own virtual points, so no stale point can
     *  keep satisfying affinity lookups afterwards. */
    void removeWorker(int worker_id);

    /** Add a worker (repair completed). Adding an id already on the
     *  ring is a no-op, so the worker count always matches the number
     *  of distinct ids (affinitySet would otherwise spin forever
     *  asking for more distinct workers than exist). */
    void addWorker(int worker_id);

    size_t workerCount() const { return ids_.size(); }

  private:
    static uint64_t mix(uint64_t value);
    uint64_t pointPosition(int worker_id, int virtual_node) const;

    /**
     * Ring points keyed by (position, worker id). Keying by the pair
     * rather than the bare position makes the ring's contents a pure
     * function of the id set: if two workers ever hashed to the same
     * position, a position-keyed map would let the later insertion
     * clobber the earlier one, so ownership — and every affinitySet
     * crossing that point — would depend on add/remove history. The
     * pair key gives a deterministic total order under arbitrary
     * churn, and lets removeWorker erase exactly its own points in
     * O(virtual_nodes * log n) instead of scanning the whole ring.
     */
    std::set<std::pair<uint64_t, int>> ring_;
    std::set<int> ids_; //!< distinct worker ids on the ring.
    int virtual_nodes_;
};

} // namespace wsva::cluster

#endif // WSVA_CLUSTER_CONSISTENT_HASH_H
