/**
 * @file
 * Named scalar resource vectors (Section 3.3.3).
 *
 * Each worker type defines its own set of named scalar resource
 * dimensions and a capacity for each — e.g. a VCU worker exposes
 * fractional decode and encode cores (in millicores to avoid
 * fractions), DRAM bytes, fractional host CPU, and *synthetic*
 * resources such as a software-decode allowance used to indirectly
 * bound PCIe bandwidth.
 */

#ifndef WSVA_CLUSTER_RESOURCES_H
#define WSVA_CLUSTER_RESOURCES_H

#include <map>
#include <string>

namespace wsva::cluster {

/** Canonical dimension names used by the VCU worker type. */
inline constexpr const char *kResDecodeMillicores = "dec_millicores";
inline constexpr const char *kResEncodeMillicores = "enc_millicores";
inline constexpr const char *kResDramBytes = "dram_bytes";
inline constexpr const char *kResHostCpuMillicores = "host_cpu_millicores";
/** Synthetic: software-decode allowance (bounds PCIe indirectly). */
inline constexpr const char *kResSwDecodeMillicores = "sw_dec_millicores";

/** A sparse vector of named scalar resources. */
class ResourceVector
{
  public:
    ResourceVector() = default;
    ResourceVector(std::initializer_list<std::pair<const std::string,
                                                   double>> init)
        : dims_(init) {}

    /** Amount for a dimension (0 when absent). */
    double get(const std::string &name) const;

    /** Set a dimension (erases it when amount == 0). */
    void set(const std::string &name, double amount);

    /** this += other. */
    void add(const ResourceVector &other);

    /** this -= other (may go negative; callers check fits() first). */
    void subtract(const ResourceVector &other);

    /**
     * True if @p need fits inside this vector: every dimension of
     * @p need is <= the amount here. Dimensions this vector does not
     * define are treated as zero capacity.
     */
    bool fits(const ResourceVector &need) const;

    /** True if all dimensions are >= 0 (sanity checks). */
    bool nonNegative() const;

    /** Fraction of @p capacity in use across its busiest dimension. */
    double maxUtilizationVs(const ResourceVector &capacity) const;

    bool empty() const { return dims_.empty(); }
    const std::map<std::string, double> &dims() const { return dims_; }

    bool operator==(const ResourceVector &other) const = default;

  private:
    std::map<std::string, double> dims_;
};

} // namespace wsva::cluster

#endif // WSVA_CLUSTER_RESOURCES_H
