/**
 * @file
 * Named scalar resource vectors (Section 3.3.3).
 *
 * Each worker type defines its own set of named scalar resource
 * dimensions and a capacity for each — e.g. a VCU worker exposes
 * fractional decode and encode cores (in millicores to avoid
 * fractions), DRAM bytes, fractional host CPU, and *synthetic*
 * resources such as a software-decode allowance used to indirectly
 * bound PCIe bandwidth.
 *
 * Layout: dimension names are interned once into a process-wide id
 * table; each vector stores a small sorted array of (id, amount)
 * pairs inline. At fleet scale every worker holds two of these and
 * every in-flight step a third, and the scheduler compares them on
 * every placement — the previous std::map<std::string, double>
 * backing cost ~1 KB of heap per vector and a string compare per
 * dimension per fits() call. The inline form is allocation-free,
 * copyable with memcpy, and merges id-wise.
 */

#ifndef WSVA_CLUSTER_RESOURCES_H
#define WSVA_CLUSTER_RESOURCES_H

#include <cstdint>
#include <initializer_list>
#include <string>
#include <utility>
#include <vector>

namespace wsva::cluster {

/** Canonical dimension names used by the VCU worker type. */
inline constexpr const char *kResDecodeMillicores = "dec_millicores";
inline constexpr const char *kResEncodeMillicores = "enc_millicores";
inline constexpr const char *kResDramBytes = "dram_bytes";
inline constexpr const char *kResHostCpuMillicores = "host_cpu_millicores";
/** Synthetic: software-decode allowance (bounds PCIe indirectly). */
inline constexpr const char *kResSwDecodeMillicores = "sw_dec_millicores";

/**
 * Intern @p name into the process-wide dimension table and return its
 * id. The five canonical VCU dimensions are pre-seeded with stable
 * ids; further names get ids in first-intern order. Thread-safe.
 */
uint16_t resourceDimId(const std::string &name);

/** Name for an interned dimension id (stable for process lifetime). */
const std::string &resourceDimName(uint16_t id);

/**
 * A sparse vector of named scalar resources. Canonical form: entries
 * sorted by dimension id, zero amounts erased — so equality is plain
 * memberwise comparison.
 */
class ResourceVector
{
  public:
    /** Distinct dimensions one vector can hold (VCU workers use 5). */
    static constexpr int kMaxDims = 8;

    ResourceVector() = default;
    ResourceVector(std::initializer_list<std::pair<const std::string,
                                                   double>> init)
    {
        for (const auto &[name, amount] : init)
            set(name, amount);
    }

    /** Amount for a dimension (0 when absent). */
    double get(const std::string &name) const;
    double get(uint16_t dim) const;

    /** Set a dimension (erases it when amount == 0). */
    void set(const std::string &name, double amount);
    void set(uint16_t dim, double amount);

    /** this += other. */
    void add(const ResourceVector &other);

    /** this -= other (may go negative; callers check fits() first). */
    void subtract(const ResourceVector &other);

    /**
     * True if @p need fits inside this vector: every dimension of
     * @p need is <= the amount here. Dimensions this vector does not
     * define are treated as zero capacity.
     */
    bool fits(const ResourceVector &need) const;

    /** True if all dimensions are >= 0 (sanity checks). */
    bool nonNegative() const;

    /** Fraction of @p capacity in use across its busiest dimension. */
    double maxUtilizationVs(const ResourceVector &capacity) const;

    bool empty() const { return size_ == 0; }

    /** Number of (non-zero) dimensions stored. */
    int size() const { return size_; }
    /** Dimension id of entry @p i (entries are sorted by id). */
    uint16_t dimId(int i) const { return ids_[i]; }
    /** Amount of entry @p i. */
    double amount(int i) const { return amounts_[i]; }

    /** Materialized (name, amount) pairs, sorted by name. */
    std::vector<std::pair<std::string, double>> dims() const;

    bool operator==(const ResourceVector &other) const;

  private:
    int find(uint16_t dim) const;
    void insertAt(int pos, uint16_t dim, double amount);
    void eraseAt(int pos);

    uint8_t size_ = 0;
    uint16_t ids_[kMaxDims] = {};
    double amounts_[kMaxDims] = {};
};

} // namespace wsva::cluster

#endif // WSVA_CLUSTER_RESOURCES_H
