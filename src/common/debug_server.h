/**
 * @file
 * Embedded z-page debug server: live diagnostics for long-running
 * sims and benches, the way production services expose /varz,
 * /statusz, and /tracez.
 *
 * Every view of the observability substrate used to be a post-mortem
 * JSON dump; operating a fleet (Section 4.4's quarantine / repair /
 * blast-radius story) needs the scrape-while-running layer. This is a
 * deliberately small HTTP/1.1 server: one accept thread, a bounded
 * handler pool, GET-only, Connection: close, bound to localhost by
 * default. It serves whatever pages are registered; registerZPages()
 * wires the standard five (/healthz, /varz, /metrics, /tracez,
 * /statusz) from the in-process MetricsRegistry / Tracer plus
 * caller-supplied status sources.
 *
 * Concurrency contract: handlers run on the handler pool while the
 * instrumented program keeps running, so they must only touch
 * thread-safe state (the registry and tracer copy under their own
 * locks; /statusz reads a double-buffered fleet-health snapshot).
 * The server never blocks the instrumented hot path: a scrape that
 * arrives while all handlers are busy waits in a bounded queue and is
 * rejected with 503 once the queue is full.
 */

#ifndef WSVA_COMMON_DEBUG_SERVER_H
#define WSVA_COMMON_DEBUG_SERVER_H

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <condition_variable>

namespace wsva {

class MetricsRegistry;
class Tracer;

/** Debug-server configuration. */
struct DebugServerConfig
{
    /**
     * Bind address. The default keeps the server reachable only from
     * the local host — these pages expose internals and carry no
     * authentication, exactly like production *z pages behind a
     * loopback-only admin port.
     */
    std::string bind_address = "127.0.0.1";

    /** TCP port; 0 picks an ephemeral port (see port()). */
    uint16_t port = 0;

    /** Handler pool size (concurrent scrapes served). */
    int handler_threads = 2;

    /** Accepted connections queued beyond the pool before 503s. */
    size_t max_pending = 16;

    /** Request size cap; larger requests get 400. */
    size_t max_request_bytes = 8192;

    /** Per-connection socket read/write timeout, seconds. */
    double io_timeout_seconds = 5.0;
};

/** One HTTP response from a page handler. */
struct DebugResponse
{
    int status = 200;
    std::string content_type = "text/plain; charset=utf-8";
    std::string body;
};

/**
 * Page handler. Receives the request path with the query string
 * stripped; runs on a handler-pool thread.
 */
using DebugHandler = std::function<DebugResponse(const std::string &path)>;

/**
 * The embedded HTTP server. Pages are registered up front (or at any
 * time; the table is locked), then start() binds, listens, and spawns
 * the accept thread plus the handler pool. stop() is graceful: the
 * accept loop quits, queued connections drain, handler threads join.
 * The destructor stops the server, but handlers capture raw pointers
 * into the instrumented program — stop the server before tearing
 * down whatever the handlers read.
 */
class DebugServer
{
  public:
    explicit DebugServer(DebugServerConfig cfg = {});
    ~DebugServer();

    DebugServer(const DebugServer &) = delete;
    DebugServer &operator=(const DebugServer &) = delete;

    /**
     * Register @p handler for exact path @p path (must start with
     * '/'). @p help is one line shown on the "/" index page.
     * Re-registering a path replaces its handler.
     */
    void addPage(const std::string &path, const std::string &help,
                 DebugHandler handler);

    /**
     * Bind + listen + spawn threads. Returns false (with a warn) when
     * the socket cannot be bound; the server stays stopped.
     */
    bool start();

    /** Graceful shutdown; idempotent. */
    void stop();

    bool running() const
    {
        return running_.load(std::memory_order_acquire);
    }

    /** The bound port (the actual one when configured port was 0). */
    uint16_t port() const { return bound_port_; }

    /** Requests answered (any status except queue-full 503s). */
    uint64_t requestsServed() const
    {
        return served_.load(std::memory_order_relaxed);
    }

    /** Connections rejected because the pending queue was full. */
    uint64_t requestsRejected() const
    {
        return rejected_.load(std::memory_order_relaxed);
    }

  private:
    void acceptLoop();
    void handlerLoop();
    void serveConnection(int fd);
    DebugResponse dispatch(const std::string &method,
                           const std::string &path);
    DebugResponse indexPage() const;

    DebugServerConfig cfg_;
    std::atomic<bool> running_{false};
    std::atomic<bool> stopping_{false};
    int listen_fd_ = -1;
    uint16_t bound_port_ = 0;
    std::thread accept_thread_;
    std::vector<std::thread> handlers_;

    mutable std::mutex pages_mutex_;
    struct Page
    {
        std::string help;
        DebugHandler handler;
    };
    std::map<std::string, Page> pages_;

    std::mutex queue_mutex_;
    std::condition_variable queue_cv_;
    std::deque<int> pending_; //!< Accepted fds awaiting a handler.

    std::atomic<uint64_t> served_{0};
    std::atomic<uint64_t> rejected_{0};
};

/**
 * Sources for the standard z-pages. Every pointer is optional and
 * not owned; pages whose source is missing are simply not
 * registered. The callbacks run on handler threads and must be
 * thread-safe against the instrumented program.
 */
struct ZPageSources
{
    /** /varz (JSON) and /metrics (Prometheus text). */
    const MetricsRegistry *metrics = nullptr;

    /** /tracez: recent spans grouped by name with latency table. */
    const Tracer *tracer = nullptr;

    /** /statusz body (human-readable status; plain text). */
    std::function<std::string()> statusz;

    /** Extra JSON fields spliced into /healthz ("key": value, ...). */
    std::function<std::string()> healthz_extra;

    /** Free-form build/binary identification shown on /healthz. */
    std::string build_info;

    /** Export schema version stamped into the /varz and /healthz
     *  build-info block (see build_info.h); lets scrapes detect
     *  mismatched binaries across bench arms. */
    int export_schema_version = 0;
};

/** Register the standard pages (/healthz, /varz, /metrics, /tracez,
 *  /statusz — each only when its source is present — plus /profilez
 *  and /profilez/flame, which read the process-global profiler). */
void registerZPages(DebugServer &server, ZPageSources sources);

/**
 * Render the /tracez body: retained spans grouped by (clock domain,
 * name) with count and p50/p99 latency, plus the tracer's
 * recorded/dropped totals. Wall spans report milliseconds; sim spans
 * report simulated seconds.
 */
std::string renderTracez(const Tracer &tracer);

} // namespace wsva

#endif // WSVA_COMMON_DEBUG_SERVER_H
