#ifndef WSVA_COMMON_PROFILER_H_
#define WSVA_COMMON_PROFILER_H_

/**
 * wsva::prof -- continuous, low-overhead phase/kernel profiling.
 *
 * The paper's fleet is operated by always-on measurement; this module
 * gives the simulator the same property.  Phases are interned,
 * slash-separated hierarchical paths ("event/worker_done",
 * "codec/motion_search") and every instrumented region is an RAII
 * ProfScope.  The hot path follows the CounterHandle discipline from
 * metrics.h:
 *
 *   dark mode    -- one relaxed atomic load + branch per scope; no
 *                   clock read, no TLS registration, no allocation.
 *   enabled mode -- two steady_clock reads + a handful of relaxed
 *                   fetch_adds on thread-local cache lines.  No locks,
 *                   ever, on the recording path.
 *
 * Each recording thread owns a ThreadBlock of per-phase accumulators
 * (inclusive ns, runtime-child ns, call count) plus a published phase
 * stack (bounded depth) that a wall-clock sampler thread may read with
 * relaxed atomics.  Exclusive time is derived as inclusive minus
 * runtime-child time, so a phase's self-time is attributed correctly
 * no matter which static paths nest under it at runtime.
 *
 * Aggregation (snapshot/publish/toJson/collapsed export) walks all
 * thread blocks under the registry mutex; a double-buffered snapshot
 * board (shared_ptr swap under a SpinLock, same pattern as
 * FleetHealthBoard) lets /profilez scrapes read a consistent view
 * without ever blocking sim ticks.
 */

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace wsva {

class MetricsRegistry;

namespace prof {

/** Interned phase table capacity; intern() returns -1 once full. */
inline constexpr int kMaxPhases = 192;
/** Published phase-stack depth per thread; deeper nests still time
 *  correctly but are invisible to the sampler. */
inline constexpr int kMaxStackDepth = 16;

/** One row of an aggregated profile. */
struct PhaseStat {
    int id = -1;
    std::string name;
    uint64_t calls = 0;
    uint64_t incl_ns = 0;   ///< inclusive (scope-entry to scope-exit)
    uint64_t excl_ns = 0;   ///< inclusive minus runtime-child time
    uint64_t samples = 0;   ///< wall-clock sampler leaf hits
};

/** Per-thread rollup for the /profilez breakdown table. */
struct ThreadStat {
    std::string name;
    uint64_t calls = 0;
    uint64_t busy_ns = 0;      ///< sum of exclusive ns over all phases
    std::string top_phase;     ///< phase with the most exclusive time
    uint64_t top_excl_ns = 0;
};

/** Immutable aggregated view; safe to share across threads. */
struct ProfileSnapshot {
    bool enabled = false;
    uint64_t total_samples = 0;
    std::vector<PhaseStat> phases;     ///< sorted by exclusive ns, desc
    std::vector<ThreadStat> threads;
};

/**
 * Process-wide profile registry.  All members are thread-safe; the
 * recording fast path (ProfScope, addTime) touches only the global
 * enabled flag and thread-local atomics.
 */
class ProfileRegistry {
  public:
    static ProfileRegistry &instance();

    /** Master switch.  Dark (false) is the default and costs one
     *  relaxed load per instrumented scope. */
    void setEnabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }
    bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

    /**
     * Intern a slash-separated phase path ("cluster/dispatch").
     * Returns a dense id, or -1 if the table is full (scopes with a
     * -1 id are silent no-ops).  Idempotent; intended to be called
     * once per call site via a function-local static.
     */
    int intern(const char *path);

    /** Name for an interned id ("" when out of range). */
    std::string phaseName(int id) const;

    /** Number of interned phases. */
    int phaseCount() const { return phase_count_.load(std::memory_order_acquire); }

    /** Label the calling thread in per-thread breakdowns. */
    void setThreadName(const std::string &name);

    /** Aggregate all thread blocks + sampler hits right now. */
    ProfileSnapshot snapshot() const;

    /** Build a snapshot and swap it onto the double-buffered board. */
    void publish();

    /** Last published snapshot (never null; empty before first
     *  publish).  Lock-free apart from a brief SpinLock. */
    std::shared_ptr<const ProfileSnapshot> board() const;

    /**
     * Start the wall-clock sampler thread.  Every period_us it reads
     * each thread's published phase stack (relaxed loads only --
     * tearing is tolerated by design) and accumulates leaf-sample and
     * collapsed-stack counts.  It also republishes the board a few
     * times per second.  No-op if already running.
     */
    void startSampler(uint64_t period_us = 5000);
    void stopSampler();
    bool samplerRunning() const { return sampler_run_.load(std::memory_order_acquire); }
    uint64_t samplerTicks() const { return sampler_ticks_.load(std::memory_order_relaxed); }

    /**
     * Collapsed-stack text for FlameGraph / speedscope
     * ("a;b;c <value>" per line).  When the sampler has collected
     * stacks the value is sample counts (true runtime nesting);
     * otherwise it falls back to per-phase exclusive microseconds
     * keyed by the static path.  A leading '#' comment names the
     * source.
     */
    std::string toCollapsed() const;

    /** Human-readable /profilez page: top-k table + per-thread
     *  breakdown, rendered from the published board when available. */
    std::string toText(int top_k = 20) const;

    /** JSON object for ClusterSim::exportJson's "profile" block. */
    std::string toJson(int top_k = 20) const;

    /** Export "profile.<phase>.{excl_ms,calls}" gauges plus rollup
     *  totals into a MetricsRegistry (Prometheus-visible). */
    void exportGauges(MetricsRegistry &registry, int top_k = 20) const;

    /** Zero every accumulator, sampler hit, and the board (tests /
     *  bench arms).  Phase interning and thread registration are
     *  preserved. */
    void reset();

    // -- recording internals (public for ProfScope/addTime) --
    struct ThreadBlock {
        std::atomic<uint64_t> incl_ns[kMaxPhases];
        std::atomic<uint64_t> child_ns[kMaxPhases];
        std::atomic<uint64_t> calls[kMaxPhases];
        std::atomic<int> stack[kMaxStackDepth];
        std::atomic<int> depth{0};
        /** Per-phase ProfScopeSampled cadence counters.  Plain ints:
         *  only ever touched by the owning thread (the sampler never
         *  reads them). */
        uint32_t skip[kMaxPhases];
        char name[32];
        ThreadBlock();
    };

    /** Thread-local block for the calling thread (registers on first
     *  use; block storage is never freed so the sampler can keep
     *  reading it). */
    static ThreadBlock &tls();

    ~ProfileRegistry();

  private:
    ProfileRegistry();
    ProfileRegistry(const ProfileRegistry &) = delete;
    ProfileRegistry &operator=(const ProfileRegistry &) = delete;

    ThreadBlock *registerThread();
    void samplerLoop(uint64_t period_us);
    ProfileSnapshot buildSnapshot() const;

    std::atomic<bool> enabled_{false};

    struct Impl;
    Impl *impl_;

    std::atomic<int> phase_count_{0};
    std::atomic<bool> sampler_run_{false};
    std::atomic<uint64_t> sampler_ticks_{0};
};

/** Monotonic nanoseconds (steady_clock). */
uint64_t nowNs();

/**
 * Intern helper for call sites:
 *   static const int kPhase = wsva::prof::phaseId("cluster/dispatch");
 */
inline int phaseId(const char *path)
{
    return ProfileRegistry::instance().intern(path);
}

inline bool enabled()
{
    return ProfileRegistry::instance().enabled();
}

/**
 * RAII phase timer.  Construction in dark mode is a single relaxed
 * load + branch.  When enabled it pushes the phase onto the thread's
 * published stack, and on destruction adds elapsed time to the
 * phase's inclusive counter and to the parent's runtime-child
 * counter (so parents report correct exclusive time).
 */
class ProfScope {
  public:
    explicit ProfScope(int phase)
    {
        if (phase < 0 || !ProfileRegistry::instance().enabled())
            return;
        enter(phase);
    }

    ~ProfScope()
    {
        if (block_ != nullptr)
            leave();
    }

    ProfScope(const ProfScope &) = delete;
    ProfScope &operator=(const ProfScope &) = delete;

  private:
    void enter(int phase);
    void leave();

    ProfileRegistry::ThreadBlock *block_ = nullptr;
    int phase_ = -1;
    int depth_ = 0;         ///< stack depth at entry (our slot)
    uint64_t start_ns_ = 0;
};

/**
 * Sampled RAII timer for call sites too hot to clock on every
 * invocation (per-pick scheduler probes, per-block codec kernels,
 * where a full ProfScope's two clock reads would themselves show up
 * in the profile).  Every call is counted exactly, but only every
 * `period`-th call per thread pays the clock reads; the measured
 * duration is scaled by `period` before being credited, so
 * inclusive/exclusive totals stay statistically correct while the
 * steady-state cost drops to one TLS counter bump plus one relaxed
 * fetch_add.  Timed calls publish to the wall-clock sampler's stack
 * like a ProfScope; skipped calls stay invisible to it (their wall
 * samples credit the enclosing phase).
 */
class ProfScopeSampled {
  public:
    ProfScopeSampled(int phase, uint32_t period)
    {
        if (phase < 0 || !ProfileRegistry::instance().enabled())
            return;
        enter(phase, period);
    }

    ~ProfScopeSampled()
    {
        if (block_ != nullptr)
            leave();
    }

    ProfScopeSampled(const ProfScopeSampled &) = delete;
    ProfScopeSampled &operator=(const ProfScopeSampled &) = delete;

  private:
    void enter(int phase, uint32_t period);
    void leave();

    ProfileRegistry::ThreadBlock *block_ = nullptr;
    int phase_ = -1;
    int depth_ = 0;
    uint32_t scale_ = 1;
    uint64_t start_ns_ = 0;
};

/**
 * Manual attribution for ultra-hot regions where even a scope per
 * iteration is too much: accumulate elapsed ns locally, then call
 * addTime once.  Credits the phase's inclusive/call counters and the
 * current stack top's child counter, exactly like a ProfScope, but
 * does not publish the phase to the sampler.
 */
void addTime(int phase, uint64_t ns, uint64_t calls = 1);

}  // namespace prof
}  // namespace wsva

#endif  // WSVA_COMMON_PROFILER_H_
