#include "common/debug_server.h"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/build_info.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "common/profiler.h"
#include "common/trace.h"

namespace wsva {

namespace {

const char *
statusReason(int status)
{
    switch (status) {
      case 200: return "OK";
      case 400: return "Bad Request";
      case 404: return "Not Found";
      case 405: return "Method Not Allowed";
      case 503: return "Service Unavailable";
      default: return "Unknown";
    }
}

void
setIoTimeout(int fd, double seconds)
{
    timeval tv{};
    tv.tv_sec = static_cast<time_t>(seconds);
    tv.tv_usec = static_cast<suseconds_t>(
        (seconds - static_cast<double>(tv.tv_sec)) * 1e6);
    setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

/** Blocking full send with MSG_NOSIGNAL (a dead peer must not raise
 *  SIGPIPE in the instrumented process). */
bool
sendAll(int fd, const std::string &data)
{
    size_t off = 0;
    while (off < data.size()) {
        const ssize_t n = ::send(fd, data.data() + off,
                                 data.size() - off, MSG_NOSIGNAL);
        if (n <= 0)
            return false;
        off += static_cast<size_t>(n);
    }
    return true;
}

} // namespace

DebugServer::DebugServer(DebugServerConfig cfg) : cfg_(std::move(cfg))
{
    WSVA_ASSERT(cfg_.handler_threads > 0,
                "debug server needs at least one handler thread");
}

DebugServer::~DebugServer()
{
    stop();
}

void
DebugServer::addPage(const std::string &path, const std::string &help,
                     DebugHandler handler)
{
    WSVA_ASSERT(!path.empty() && path[0] == '/',
                "debug page path must start with '/': %s", path.c_str());
    std::lock_guard<std::mutex> lock(pages_mutex_);
    pages_[path] = Page{help, std::move(handler)};
}

bool
DebugServer::start()
{
    if (running())
        return true;

    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) {
        warn("debug server: socket() failed: %s", std::strerror(errno));
        return false;
    }
    const int one = 1;
    setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(cfg_.port);
    if (inet_pton(AF_INET, cfg_.bind_address.c_str(), &addr.sin_addr) !=
        1) {
        warn("debug server: bad bind address '%s'",
             cfg_.bind_address.c_str());
        ::close(listen_fd_);
        listen_fd_ = -1;
        return false;
    }
    if (::bind(listen_fd_, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0) {
        warn("debug server: bind(%s:%u) failed: %s",
             cfg_.bind_address.c_str(), cfg_.port,
             std::strerror(errno));
        ::close(listen_fd_);
        listen_fd_ = -1;
        return false;
    }
    if (::listen(listen_fd_, 16) != 0) {
        warn("debug server: listen() failed: %s", std::strerror(errno));
        ::close(listen_fd_);
        listen_fd_ = -1;
        return false;
    }

    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(listen_fd_, reinterpret_cast<sockaddr *>(&bound),
                      &len) == 0)
        bound_port_ = ntohs(bound.sin_port);

    stopping_.store(false, std::memory_order_release);
    running_.store(true, std::memory_order_release);
    accept_thread_ = std::thread([this] { acceptLoop(); });
    handlers_.reserve(static_cast<size_t>(cfg_.handler_threads));
    for (int i = 0; i < cfg_.handler_threads; ++i)
        handlers_.emplace_back([this] { handlerLoop(); });
    return true;
}

void
DebugServer::stop()
{
    if (!running())
        return;
    stopping_.store(true, std::memory_order_release);
    if (accept_thread_.joinable())
        accept_thread_.join();
    {
        // Wake the handler pool; it drains whatever is queued first.
        std::lock_guard<std::mutex> lock(queue_mutex_);
        queue_cv_.notify_all();
    }
    for (auto &t : handlers_)
        if (t.joinable())
            t.join();
    handlers_.clear();
    if (listen_fd_ >= 0) {
        ::close(listen_fd_);
        listen_fd_ = -1;
    }
    running_.store(false, std::memory_order_release);
}

void
DebugServer::acceptLoop()
{
    // poll() with a short timeout so the stop flag is observed
    // promptly; a bare blocking accept() would pin shutdown on the
    // next connection.
    while (!stopping_.load(std::memory_order_acquire)) {
        pollfd pfd{};
        pfd.fd = listen_fd_;
        pfd.events = POLLIN;
        const int ready = ::poll(&pfd, 1, /*timeout_ms=*/50);
        if (ready <= 0)
            continue;
        const int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd < 0)
            continue;
        setIoTimeout(fd, cfg_.io_timeout_seconds);
        bool enqueued = false;
        {
            std::lock_guard<std::mutex> lock(queue_mutex_);
            if (pending_.size() < cfg_.max_pending) {
                pending_.push_back(fd);
                enqueued = true;
                queue_cv_.notify_one();
            }
        }
        if (!enqueued) {
            // Bounded backpressure: better to shed a scrape than to
            // buffer connections without limit.
            rejected_.fetch_add(1, std::memory_order_relaxed);
            sendAll(fd, "HTTP/1.1 503 Service Unavailable\r\n"
                        "Content-Length: 0\r\nConnection: close\r\n\r\n");
            ::close(fd);
        }
    }
}

void
DebugServer::handlerLoop()
{
    while (true) {
        int fd = -1;
        {
            std::unique_lock<std::mutex> lock(queue_mutex_);
            queue_cv_.wait(lock, [this] {
                return !pending_.empty() ||
                       stopping_.load(std::memory_order_acquire);
            });
            if (pending_.empty())
                return; // Stopping and drained.
            fd = pending_.front();
            pending_.pop_front();
        }
        serveConnection(fd);
        ::close(fd);
    }
}

void
DebugServer::serveConnection(int fd)
{
    // Read until the end of the request head (we ignore any body —
    // these are GET pages).
    std::string request;
    char buf[1024];
    while (request.find("\r\n\r\n") == std::string::npos &&
           request.size() < cfg_.max_request_bytes) {
        const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
        if (n <= 0)
            break;
        request.append(buf, static_cast<size_t>(n));
    }

    DebugResponse resp;
    const size_t line_end = request.find("\r\n");
    std::string method;
    std::string path;
    if (line_end != std::string::npos) {
        const std::string line = request.substr(0, line_end);
        const size_t sp1 = line.find(' ');
        const size_t sp2 =
            sp1 == std::string::npos ? std::string::npos
                                     : line.find(' ', sp1 + 1);
        if (sp1 != std::string::npos && sp2 != std::string::npos) {
            method = line.substr(0, sp1);
            path = line.substr(sp1 + 1, sp2 - sp1 - 1);
            const size_t query = path.find('?');
            if (query != std::string::npos)
                path.resize(query);
        }
    }
    if (method.empty() || path.empty()) {
        resp.status = 400;
        resp.body = "malformed request\n";
    } else {
        resp = dispatch(method, path);
    }

    std::string head = strformat(
        "HTTP/1.1 %d %s\r\nContent-Type: %s\r\n"
        "Content-Length: %zu\r\nConnection: close\r\n\r\n",
        resp.status, statusReason(resp.status),
        resp.content_type.c_str(), resp.body.size());
    if (sendAll(fd, head))
        sendAll(fd, resp.body);
    served_.fetch_add(1, std::memory_order_relaxed);
}

DebugResponse
DebugServer::dispatch(const std::string &method, const std::string &path)
{
    DebugResponse resp;
    if (method != "GET") {
        resp.status = 405;
        resp.body = "only GET is supported\n";
        return resp;
    }
    if (path == "/")
        return indexPage();
    DebugHandler handler;
    {
        std::lock_guard<std::mutex> lock(pages_mutex_);
        auto it = pages_.find(path);
        if (it != pages_.end())
            handler = it->second.handler;
    }
    if (!handler) {
        resp.status = 404;
        resp.body = "no such page: " + path + "\n";
        DebugResponse index = indexPage();
        resp.body += index.body;
        return resp;
    }
    return handler(path);
}

DebugResponse
DebugServer::indexPage() const
{
    DebugResponse resp;
    resp.body = "wsva debug server\n\npages:\n";
    std::lock_guard<std::mutex> lock(pages_mutex_);
    for (const auto &[path, page] : pages_)
        resp.body += strformat("  %-10s %s\n", path.c_str(),
                               page.help.c_str());
    return resp;
}

std::string
renderTracez(const Tracer &tracer)
{
    struct Group
    {
        uint64_t count = 0;
        std::vector<double> durations;
    };
    // Snapshot copies under the tracer's own lock; everything after
    // is local and cannot race the recording threads.
    const std::vector<SpanRecord> spans = tracer.snapshot();
    std::map<std::pair<int, std::string>, Group> groups;
    for (const auto &rec : spans) {
        if (rec.instant)
            continue;
        Group &g = groups[{static_cast<int>(rec.clock), rec.name}];
        ++g.count;
        g.durations.push_back(std::max(0.0, rec.end_us - rec.begin_us));
    }

    const auto quantile = [](std::vector<double> &v, double q) {
        if (v.empty())
            return 0.0;
        const size_t rank = std::min(
            v.size() - 1,
            static_cast<size_t>(q * static_cast<double>(v.size())));
        std::nth_element(v.begin(), v.begin() + static_cast<long>(rank),
                         v.end());
        return v[rank];
    };

    std::string out = strformat(
        "tracez: recent spans (retained %zu, recorded %llu, "
        "dropped %llu)\n\n",
        spans.size(), static_cast<unsigned long long>(tracer.recorded()),
        static_cast<unsigned long long>(tracer.dropped()));
    out += strformat("%-28s %-5s %10s %12s %12s\n", "span", "clock",
                     "count", "p50", "p99");
    for (auto &[key, g] : groups) {
        const bool wall = key.first == static_cast<int>(SpanClock::Wall);
        // Wall spans are recorded in microseconds; sim spans carry
        // sim-seconds * 1e6 on the shared Chrome timeline.
        const double p50 = quantile(g.durations, 0.50);
        const double p99 = quantile(g.durations, 0.99);
        if (wall) {
            out += strformat("%-28s %-5s %10llu %10.3fms %10.3fms\n",
                             key.second.c_str(), "wall",
                             static_cast<unsigned long long>(g.count),
                             p50 / 1e3, p99 / 1e3);
        } else {
            out += strformat("%-28s %-5s %10llu %11.3fs %11.3fs\n",
                             key.second.c_str(), "sim",
                             static_cast<unsigned long long>(g.count),
                             p50 / 1e6, p99 / 1e6);
        }
    }
    if (groups.empty())
        out += "(no spans recorded)\n";
    return out;
}

void
registerZPages(DebugServer &server, ZPageSources sources)
{
    const std::string build =
        sources.build_info.empty() ? "wsva" : sources.build_info;
    const int schema = sources.export_schema_version;
    auto healthz_extra = sources.healthz_extra;
    server.addPage(
        "/healthz", "liveness + build/schema info",
        [build, healthz_extra, schema](const std::string &) {
            DebugResponse resp;
            resp.content_type = "application/json";
            resp.body = "{\"status\": \"ok\", \"build\": \"" + build +
                        "\", \"build_info\": " + buildInfoJson(schema) +
                        ", \"metrics_schema_version\": 1";
            if (healthz_extra) {
                const std::string extra = healthz_extra();
                if (!extra.empty())
                    resp.body += ", " + extra;
            }
            resp.body += "}\n";
            return resp;
        });

    if (sources.metrics != nullptr) {
        const MetricsRegistry *metrics = sources.metrics;
        server.addPage("/varz", "metrics registry (JSON)",
                       [metrics, schema](const std::string &) {
                           DebugResponse resp;
                           resp.content_type = "application/json";
                           // Splice the build stamp into the registry
                           // object so existing top-level keys
                           // ("counters", ...) stay where scrapers
                           // expect them.
                           std::string body = metrics->toJson();
                           body.insert(1, "\n  \"build\": " +
                                              buildInfoJson(schema) +
                                              ",");
                           resp.body = std::move(body);
                           resp.body += '\n';
                           return resp;
                       });
        server.addPage(
            "/metrics", "Prometheus text exposition",
            [metrics](const std::string &) {
                DebugResponse resp;
                resp.content_type =
                    "text/plain; version=0.0.4; charset=utf-8";
                resp.body = metrics->toPrometheusText();
                return resp;
            });
    }

    if (sources.tracer != nullptr) {
        const Tracer *tracer = sources.tracer;
        server.addPage("/tracez", "recent spans by name (p50/p99)",
                       [tracer](const std::string &) {
                           DebugResponse resp;
                           resp.body = renderTracez(*tracer);
                           return resp;
                       });
    }

    if (sources.statusz) {
        auto statusz = sources.statusz;
        server.addPage("/statusz", "human-readable cluster status",
                       [statusz](const std::string &) {
                           DebugResponse resp;
                           resp.body = statusz();
                           return resp;
                       });
    }

    // Continuous-profiling pages. The profiler is process-global and
    // its aggregation paths are lock-free against recorders (board
    // reads) or take only the registry mutex against other scrapes,
    // so these are safe in every binary, dark or enabled.
    server.addPage("/profilez",
                   "phase profile: top-k table + per-thread breakdown",
                   [](const std::string &) {
                       DebugResponse resp;
                       resp.body =
                           prof::ProfileRegistry::instance().toText();
                       return resp;
                   });
    server.addPage("/profilez/flame",
                   "collapsed stacks (flamegraph.pl / speedscope)",
                   [](const std::string &) {
                       DebugResponse resp;
                       resp.body =
                           prof::ProfileRegistry::instance().toCollapsed();
                       return resp;
                   });
}

} // namespace wsva
