#include "common/metrics.h"

#include <algorithm>
#include <initializer_list>
#include <set>

#include "common/logging.h"

namespace wsva {

namespace {

/** Append a JSON string key (names here never need escaping beyond
 *  quotes/backslashes, but handle them for safety). */
void
appendJsonString(std::string &out, const std::string &s)
{
    out += '"';
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        out += c;
    }
    out += '"';
}

} // namespace

std::string
sanitizePrometheusName(const std::string &name)
{
    std::string out;
    out.reserve(name.size() + 1);
    for (char c : name) {
        const bool legal = (c >= 'a' && c <= 'z') ||
                           (c >= 'A' && c <= 'Z') ||
                           (c >= '0' && c <= '9') || c == '_' || c == ':';
        out += legal ? c : '_';
    }
    if (out.empty() || (out[0] >= '0' && out[0] <= '9'))
        out.insert(out.begin(), '_');
    return out;
}

namespace {

/**
 * Claims exposition family names, resolving post-sanitization
 * collisions with deterministic numeric suffixes. A histogram family
 * implicitly owns its `_bucket`/`_sum`/`_count` series, so those are
 * claimed alongside the base name — a counter named "x_count" and a
 * histogram named "x" cannot collide in the output.
 */
class PrometheusNamer
{
  public:
    /** Claim a family name for @p original (empty extra set). */
    std::string claim(const std::string &original)
    {
        return claimWithSuffixes(original, {});
    }

    /** Claim a histogram family (base + _bucket/_sum/_count). */
    std::string claimHistogram(const std::string &original)
    {
        return claimWithSuffixes(original, {"_bucket", "_sum", "_count"});
    }

  private:
    std::string claimWithSuffixes(const std::string &original,
                                  std::initializer_list<const char *> tails)
    {
        const std::string base = sanitizePrometheusName(original);
        std::string candidate = base;
        for (int n = 2; !available(candidate, tails); ++n)
            candidate = base + "_" + std::to_string(n);
        take(candidate, tails);
        return candidate;
    }

    bool available(const std::string &candidate,
                   std::initializer_list<const char *> tails) const
    {
        if (taken_.count(candidate))
            return false;
        for (const char *tail : tails)
            if (taken_.count(candidate + tail))
                return false;
        return true;
    }

    void take(const std::string &candidate,
              std::initializer_list<const char *> tails)
    {
        taken_.insert(candidate);
        for (const char *tail : tails)
            taken_.insert(candidate + tail);
    }

    std::set<std::string> taken_;
};

/** Append "# HELP"/"# TYPE" lines (HELP text escapes \ and \n). */
void
appendPrometheusHeader(std::string &out, const std::string &name,
                       const char *type, const std::string &original)
{
    out += "# HELP " + name + " wsva ";
    out += type;
    out += " '";
    for (char c : original) {
        if (c == '\\')
            out += "\\\\";
        else if (c == '\n')
            out += "\\n";
        else
            out += c;
    }
    out += "'\n# TYPE " + name + " ";
    out += type;
    out += '\n';
}

} // namespace

void
MetricsRegistry::inc(const std::string &name, uint64_t delta)
{
    if (!enabled())
        return;
    std::lock_guard<std::mutex> lock(mutex_);
    counters_[name].fetch_add(delta, std::memory_order_relaxed);
}

CounterHandle
MetricsRegistry::counterHandle(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    return CounterHandle(&counters_[name], &enabled_);
}

void
MetricsRegistry::setGauge(const std::string &name, double value)
{
    if (!enabled())
        return;
    std::lock_guard<std::mutex> lock(mutex_);
    gauges_[name] = value;
}

void
MetricsRegistry::observe(const std::string &name, double value, double lo,
                         double hi, size_t bins)
{
    if (!enabled())
        return;
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = histograms_.find(name);
    if (it == histograms_.end()) {
        it = histograms_.emplace(name, Histogram(lo, hi, bins)).first;
    }
    it->second.add(value);
}

void
MetricsRegistry::sample(const std::string &name, double t, double value)
{
    if (!enabled())
        return;
    std::lock_guard<std::mutex> lock(mutex_);
    Series &s = series_[name];
    if (s.countdown > 0) {
        --s.countdown;
        return;
    }
    s.countdown = s.stride - 1;
    s.points.emplace_back(t, value);
    if (s.points.size() >= kMaxSeriesPoints) {
        // Halve the history and double the stride: bounded memory,
        // coarse-but-complete coverage of the whole run.
        std::vector<TimeSample> kept;
        kept.reserve(s.points.size() / 2 + 1);
        for (size_t i = 0; i < s.points.size(); i += 2)
            kept.push_back(s.points[i]);
        s.points = std::move(kept);
        s.stride *= 2;
    }
}

uint64_t
MetricsRegistry::counter(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = counters_.find(name);
    return it == counters_.end()
               ? 0
               : it->second.load(std::memory_order_relaxed);
}

double
MetricsRegistry::gauge(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = gauges_.find(name);
    return it == gauges_.end() ? 0.0 : it->second;
}

uint64_t
MetricsRegistry::histogramCount(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = histograms_.find(name);
    return it == histograms_.end() ? 0 : it->second.count();
}

double
MetricsRegistry::histogramQuantile(const std::string &name, double q) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = histograms_.find(name);
    return it == histograms_.end() ? 0.0 : it->second.quantile(q);
}

std::vector<TimeSample>
MetricsRegistry::seriesSnapshot(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = series_.find(name);
    return it == series_.end() ? std::vector<TimeSample>{}
                               : it->second.points;
}

void
MetricsRegistry::reset()
{
    std::lock_guard<std::mutex> lock(mutex_);
    // Zero counters in place: outstanding CounterHandles keep
    // pointing at live cells.
    for (auto &[name, value] : counters_)
        value.store(0, std::memory_order_relaxed);
    gauges_.clear();
    histograms_.clear();
    series_.clear();
}

std::string
MetricsRegistry::toJson() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    // schema_version lets bench-JSON consumers detect format drift;
    // bump it on any structural change to this export.
    std::string out = "{\n  \"schema_version\": 1,\n  \"counters\": {";
    bool first = true;
    for (const auto &[name, value] : counters_) {
        out += first ? "\n    " : ",\n    ";
        first = false;
        appendJsonString(out, name);
        out += strformat(": %llu",
                         static_cast<unsigned long long>(
                             value.load(std::memory_order_relaxed)));
    }
    out += "\n  },\n  \"gauges\": {";
    first = true;
    for (const auto &[name, value] : gauges_) {
        out += first ? "\n    " : ",\n    ";
        first = false;
        appendJsonString(out, name);
        out += strformat(": %.6g", value);
    }
    out += "\n  },\n  \"histograms\": {";
    first = true;
    for (const auto &[name, h] : histograms_) {
        out += first ? "\n    " : ",\n    ";
        first = false;
        appendJsonString(out, name);
        out += strformat(
            ": {\"count\": %llu, \"underflow\": %llu, "
            "\"overflow\": %llu, \"p50\": %.6g, \"p90\": %.6g, "
            "\"p99\": %.6g, \"bins\": [",
            static_cast<unsigned long long>(h.count()),
            static_cast<unsigned long long>(h.underflow()),
            static_cast<unsigned long long>(h.overflow()),
            h.quantile(0.5), h.quantile(0.9), h.quantile(0.99));
        for (size_t i = 0; i < h.bins(); ++i) {
            if (i > 0)
                out += ", ";
            out += strformat(
                "%llu", static_cast<unsigned long long>(h.binCount(i)));
        }
        out += "]}";
    }
    out += "\n  },\n  \"series\": {";
    first = true;
    for (const auto &[name, s] : series_) {
        out += first ? "\n    " : ",\n    ";
        first = false;
        appendJsonString(out, name);
        out += strformat(": {\"stride\": %llu, \"points\": [",
                         static_cast<unsigned long long>(s.stride));
        for (size_t i = 0; i < s.points.size(); ++i) {
            if (i > 0)
                out += ", ";
            out += strformat("[%.6g, %.6g]", s.points[i].first,
                             s.points[i].second);
        }
        out += "]}";
    }
    out += "\n  }\n}";
    return out;
}

std::string
MetricsRegistry::toPrometheusText() const
{
    // Copy the metric state under the lock, format outside it: a
    // scrape must never stall inc()/setGauge()/observe() for the
    // duration of string formatting.
    std::vector<std::pair<std::string, uint64_t>> counters;
    std::vector<std::pair<std::string, double>> gauges;
    std::vector<std::pair<std::string, Histogram>> histograms;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        counters.reserve(counters_.size());
        for (const auto &[name, value] : counters_)
            counters.emplace_back(name,
                                  value.load(std::memory_order_relaxed));
        gauges.reserve(gauges_.size());
        for (const auto &[name, value] : gauges_)
            gauges.emplace_back(name, value);
        histograms.reserve(histograms_.size());
        for (const auto &[name, h] : histograms_)
            histograms.emplace_back(name, h);
    }

    // Family names are claimed in a fixed order (counters, gauges,
    // histograms; each alphabetical from the source std::map), so the
    // collision suffixes are deterministic run to run.
    PrometheusNamer namer;
    std::string out;
    for (const auto &[original, value] : counters) {
        const std::string name = namer.claim(original);
        appendPrometheusHeader(out, name, "counter", original);
        out += name +
               strformat(" %llu\n",
                         static_cast<unsigned long long>(value));
    }
    for (const auto &[original, value] : gauges) {
        const std::string name = namer.claim(original);
        appendPrometheusHeader(out, name, "gauge", original);
        out += name + strformat(" %.9g\n", value);
    }
    for (const auto &[original, h] : histograms) {
        const std::string name = namer.claimHistogram(original);
        appendPrometheusHeader(out, name, "histogram", original);
        // Cumulative buckets over the bin upper edges. Underflow
        // (samples below lo) belongs in every bucket; overflow only
        // in +Inf.
        uint64_t cumulative = h.underflow();
        double sum = static_cast<double>(h.underflow()) * h.lo();
        for (size_t i = 0; i < h.bins(); ++i) {
            cumulative += h.binCount(i);
            const double upper = h.lo() + h.binWidth() *
                                              static_cast<double>(i + 1);
            out += name +
                   strformat("_bucket{le=\"%.9g\"} %llu\n", upper,
                             static_cast<unsigned long long>(cumulative));
            const double mid = h.lo() + h.binWidth() *
                                            (static_cast<double>(i) + 0.5);
            sum += static_cast<double>(h.binCount(i)) * mid;
        }
        sum += static_cast<double>(h.overflow()) * h.hi();
        out += name +
               strformat("_bucket{le=\"+Inf\"} %llu\n",
                         static_cast<unsigned long long>(h.count()));
        out += name + strformat("_sum %.9g\n", sum);
        out += name +
               strformat("_count %llu\n",
                         static_cast<unsigned long long>(h.count()));
    }
    return out;
}

const char *
traceEventTypeName(TraceEventType type)
{
    switch (type) {
      case TraceEventType::FaultInjected: return "fault_injected";
      case TraceEventType::SilentFaultInjected:
        return "silent_fault_injected";
      case TraceEventType::HostEnterRepair: return "host_enter_repair";
      case TraceEventType::HostRepaired: return "host_repaired";
      case TraceEventType::StepScheduled: return "step_scheduled";
      case TraceEventType::StepCompleted: return "step_completed";
      case TraceEventType::StepFailed: return "step_failed";
      case TraceEventType::StepRetried: return "step_retried";
      case TraceEventType::StepCorrupt: return "step_corrupt";
      case TraceEventType::WorkerQuarantined:
        return "worker_quarantined";
      case TraceEventType::SloAlert: return "slo_alert";
      case TraceEventType::SloAlertCleared: return "slo_alert_cleared";
      case TraceEventType::StepShed: return "step_shed";
    }
    return "unknown";
}

TraceLog::TraceLog(size_t capacity) : capacity_(capacity)
{
    WSVA_ASSERT(capacity > 0, "trace log needs a positive capacity");
}

void
TraceLog::record(const TraceEvent &event)
{
    if (!enabled())
        return;
    std::lock_guard<SpinLock> lock(mutex_);
    ++recorded_;
    ++counts_[static_cast<size_t>(event.type)];
    if (events_.size() < capacity_) {
        events_.push_back(event);
    } else {
        events_[next_] = event;
        next_ = (next_ + 1) % capacity_;
        ++dropped_;
    }
}

void
TraceLog::record(TraceEventType type, double time, int host, int worker,
                 uint64_t step_id, uint64_t video_id)
{
    record(TraceEvent{type, time, host, worker, step_id, video_id});
}

size_t
TraceLog::size() const
{
    std::lock_guard<SpinLock> lock(mutex_);
    return events_.size();
}

uint64_t
TraceLog::recorded() const
{
    std::lock_guard<SpinLock> lock(mutex_);
    return recorded_;
}

uint64_t
TraceLog::dropped() const
{
    std::lock_guard<SpinLock> lock(mutex_);
    return dropped_;
}

uint64_t
TraceLog::countOf(TraceEventType type) const
{
    std::lock_guard<SpinLock> lock(mutex_);
    return counts_[static_cast<size_t>(type)];
}

std::vector<TraceEvent>
TraceLog::snapshot(size_t max_events) const
{
    std::lock_guard<SpinLock> lock(mutex_);
    const size_t n = std::min(max_events, events_.size());
    std::vector<TraceEvent> out;
    if (n == 0)
        return out;
    out.reserve(n);
    // Oldest-first order: next_ is the oldest slot once the ring is
    // full (and 0 before that, when next_ is still 0).
    const size_t start =
        (next_ + events_.size() - n) % events_.size();
    for (size_t i = 0; i < n; ++i)
        out.push_back(events_[(start + i) % events_.size()]);
    return out;
}

void
TraceLog::clear()
{
    std::lock_guard<SpinLock> lock(mutex_);
    events_.clear();
    next_ = 0;
    recorded_ = 0;
    dropped_ = 0;
    counts_.fill(0);
}

std::string
TraceLog::toJson(size_t max_events) const
{
    // The record path spins on this lock from every worker; holding
    // it while formatting the whole document turned a scrape into a
    // cluster-wide stall (handler-pool threads serving /varz burned
    // the sim's CPU). Copy the state out first; format unlocked.
    uint64_t recorded = 0;
    uint64_t dropped = 0;
    std::array<uint64_t, kTraceEventTypeCount> counts{};
    std::vector<TraceEvent> events;
    {
        std::lock_guard<SpinLock> lock(mutex_);
        recorded = recorded_;
        dropped = dropped_;
        counts = counts_;
        const size_t n = std::min(max_events, events_.size());
        events.reserve(n);
        const size_t start =
            n == 0 ? 0 : (next_ + events_.size() - n) % events_.size();
        for (size_t i = 0; i < n; ++i)
            events.push_back(events_[(start + i) % events_.size()]);
    }

    std::string out = strformat(
        "{\n  \"recorded\": %llu,\n  \"dropped\": %llu,\n"
        "  \"counts\": {",
        static_cast<unsigned long long>(recorded),
        static_cast<unsigned long long>(dropped));
    for (size_t i = 0; i < counts.size(); ++i) {
        out += i == 0 ? "\n    " : ",\n    ";
        appendJsonString(
            out, traceEventTypeName(static_cast<TraceEventType>(i)));
        out += strformat(": %llu",
                         static_cast<unsigned long long>(counts[i]));
    }
    out += "\n  },\n  \"events\": [";
    for (size_t i = 0; i < events.size(); ++i) {
        const TraceEvent &e = events[i];
        out += i == 0 ? "\n    " : ",\n    ";
        out += strformat(
            "{\"t\": %.6g, \"type\": \"%s\", \"host\": %d, "
            "\"worker\": %d, \"step\": %llu, \"video\": %llu}",
            e.time, traceEventTypeName(e.type), e.host, e.worker,
            static_cast<unsigned long long>(e.step_id),
            static_cast<unsigned long long>(e.video_id));
    }
    out += "\n  ]\n}";
    return out;
}

} // namespace wsva
