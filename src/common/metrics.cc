#include "common/metrics.h"

#include <algorithm>

#include "common/logging.h"

namespace wsva {

namespace {

/** Append a JSON string key (names here never need escaping beyond
 *  quotes/backslashes, but handle them for safety). */
void
appendJsonString(std::string &out, const std::string &s)
{
    out += '"';
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        out += c;
    }
    out += '"';
}

} // namespace

void
MetricsRegistry::inc(const std::string &name, uint64_t delta)
{
    if (!enabled())
        return;
    std::lock_guard<std::mutex> lock(mutex_);
    counters_[name].fetch_add(delta, std::memory_order_relaxed);
}

CounterHandle
MetricsRegistry::counterHandle(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    return CounterHandle(&counters_[name], &enabled_);
}

void
MetricsRegistry::setGauge(const std::string &name, double value)
{
    if (!enabled())
        return;
    std::lock_guard<std::mutex> lock(mutex_);
    gauges_[name] = value;
}

void
MetricsRegistry::observe(const std::string &name, double value, double lo,
                         double hi, size_t bins)
{
    if (!enabled())
        return;
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = histograms_.find(name);
    if (it == histograms_.end()) {
        it = histograms_.emplace(name, Histogram(lo, hi, bins)).first;
    }
    it->second.add(value);
}

void
MetricsRegistry::sample(const std::string &name, double t, double value)
{
    if (!enabled())
        return;
    std::lock_guard<std::mutex> lock(mutex_);
    Series &s = series_[name];
    if (s.countdown > 0) {
        --s.countdown;
        return;
    }
    s.countdown = s.stride - 1;
    s.points.emplace_back(t, value);
    if (s.points.size() >= kMaxSeriesPoints) {
        // Halve the history and double the stride: bounded memory,
        // coarse-but-complete coverage of the whole run.
        std::vector<TimeSample> kept;
        kept.reserve(s.points.size() / 2 + 1);
        for (size_t i = 0; i < s.points.size(); i += 2)
            kept.push_back(s.points[i]);
        s.points = std::move(kept);
        s.stride *= 2;
    }
}

uint64_t
MetricsRegistry::counter(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = counters_.find(name);
    return it == counters_.end()
               ? 0
               : it->second.load(std::memory_order_relaxed);
}

double
MetricsRegistry::gauge(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = gauges_.find(name);
    return it == gauges_.end() ? 0.0 : it->second;
}

uint64_t
MetricsRegistry::histogramCount(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = histograms_.find(name);
    return it == histograms_.end() ? 0 : it->second.count();
}

double
MetricsRegistry::histogramQuantile(const std::string &name, double q) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = histograms_.find(name);
    return it == histograms_.end() ? 0.0 : it->second.quantile(q);
}

std::vector<TimeSample>
MetricsRegistry::seriesSnapshot(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = series_.find(name);
    return it == series_.end() ? std::vector<TimeSample>{}
                               : it->second.points;
}

void
MetricsRegistry::reset()
{
    std::lock_guard<std::mutex> lock(mutex_);
    // Zero counters in place: outstanding CounterHandles keep
    // pointing at live cells.
    for (auto &[name, value] : counters_)
        value.store(0, std::memory_order_relaxed);
    gauges_.clear();
    histograms_.clear();
    series_.clear();
}

std::string
MetricsRegistry::toJson() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    // schema_version lets bench-JSON consumers detect format drift;
    // bump it on any structural change to this export.
    std::string out = "{\n  \"schema_version\": 1,\n  \"counters\": {";
    bool first = true;
    for (const auto &[name, value] : counters_) {
        out += first ? "\n    " : ",\n    ";
        first = false;
        appendJsonString(out, name);
        out += strformat(": %llu",
                         static_cast<unsigned long long>(
                             value.load(std::memory_order_relaxed)));
    }
    out += "\n  },\n  \"gauges\": {";
    first = true;
    for (const auto &[name, value] : gauges_) {
        out += first ? "\n    " : ",\n    ";
        first = false;
        appendJsonString(out, name);
        out += strformat(": %.6g", value);
    }
    out += "\n  },\n  \"histograms\": {";
    first = true;
    for (const auto &[name, h] : histograms_) {
        out += first ? "\n    " : ",\n    ";
        first = false;
        appendJsonString(out, name);
        out += strformat(
            ": {\"count\": %llu, \"underflow\": %llu, "
            "\"overflow\": %llu, \"p50\": %.6g, \"p90\": %.6g, "
            "\"p99\": %.6g, \"bins\": [",
            static_cast<unsigned long long>(h.count()),
            static_cast<unsigned long long>(h.underflow()),
            static_cast<unsigned long long>(h.overflow()),
            h.quantile(0.5), h.quantile(0.9), h.quantile(0.99));
        for (size_t i = 0; i < h.bins(); ++i) {
            if (i > 0)
                out += ", ";
            out += strformat(
                "%llu", static_cast<unsigned long long>(h.binCount(i)));
        }
        out += "]}";
    }
    out += "\n  },\n  \"series\": {";
    first = true;
    for (const auto &[name, s] : series_) {
        out += first ? "\n    " : ",\n    ";
        first = false;
        appendJsonString(out, name);
        out += strformat(": {\"stride\": %llu, \"points\": [",
                         static_cast<unsigned long long>(s.stride));
        for (size_t i = 0; i < s.points.size(); ++i) {
            if (i > 0)
                out += ", ";
            out += strformat("[%.6g, %.6g]", s.points[i].first,
                             s.points[i].second);
        }
        out += "]}";
    }
    out += "\n  }\n}";
    return out;
}

const char *
traceEventTypeName(TraceEventType type)
{
    switch (type) {
      case TraceEventType::FaultInjected: return "fault_injected";
      case TraceEventType::SilentFaultInjected:
        return "silent_fault_injected";
      case TraceEventType::HostEnterRepair: return "host_enter_repair";
      case TraceEventType::HostRepaired: return "host_repaired";
      case TraceEventType::StepScheduled: return "step_scheduled";
      case TraceEventType::StepCompleted: return "step_completed";
      case TraceEventType::StepFailed: return "step_failed";
      case TraceEventType::StepRetried: return "step_retried";
      case TraceEventType::StepCorrupt: return "step_corrupt";
      case TraceEventType::WorkerQuarantined:
        return "worker_quarantined";
      case TraceEventType::SloAlert: return "slo_alert";
      case TraceEventType::SloAlertCleared: return "slo_alert_cleared";
    }
    return "unknown";
}

TraceLog::TraceLog(size_t capacity) : capacity_(capacity)
{
    WSVA_ASSERT(capacity > 0, "trace log needs a positive capacity");
}

void
TraceLog::record(const TraceEvent &event)
{
    if (!enabled())
        return;
    std::lock_guard<SpinLock> lock(mutex_);
    ++recorded_;
    ++counts_[static_cast<size_t>(event.type)];
    if (events_.size() < capacity_) {
        events_.push_back(event);
    } else {
        events_[next_] = event;
        next_ = (next_ + 1) % capacity_;
        ++dropped_;
    }
}

void
TraceLog::record(TraceEventType type, double time, int host, int worker,
                 uint64_t step_id, uint64_t video_id)
{
    record(TraceEvent{type, time, host, worker, step_id, video_id});
}

size_t
TraceLog::size() const
{
    std::lock_guard<SpinLock> lock(mutex_);
    return events_.size();
}

uint64_t
TraceLog::recorded() const
{
    std::lock_guard<SpinLock> lock(mutex_);
    return recorded_;
}

uint64_t
TraceLog::dropped() const
{
    std::lock_guard<SpinLock> lock(mutex_);
    return dropped_;
}

uint64_t
TraceLog::countOf(TraceEventType type) const
{
    std::lock_guard<SpinLock> lock(mutex_);
    return counts_[static_cast<size_t>(type)];
}

std::vector<TraceEvent>
TraceLog::snapshot(size_t max_events) const
{
    std::lock_guard<SpinLock> lock(mutex_);
    const size_t n = std::min(max_events, events_.size());
    std::vector<TraceEvent> out;
    if (n == 0)
        return out;
    out.reserve(n);
    // Oldest-first order: next_ is the oldest slot once the ring is
    // full (and 0 before that, when next_ is still 0).
    const size_t start =
        (next_ + events_.size() - n) % events_.size();
    for (size_t i = 0; i < n; ++i)
        out.push_back(events_[(start + i) % events_.size()]);
    return out;
}

void
TraceLog::clear()
{
    std::lock_guard<SpinLock> lock(mutex_);
    events_.clear();
    next_ = 0;
    recorded_ = 0;
    dropped_ = 0;
    counts_.fill(0);
}

std::string
TraceLog::toJson(size_t max_events) const
{
    std::lock_guard<SpinLock> lock(mutex_);
    std::string out = strformat(
        "{\n  \"recorded\": %llu,\n  \"dropped\": %llu,\n"
        "  \"counts\": {",
        static_cast<unsigned long long>(recorded_),
        static_cast<unsigned long long>(dropped_));
    for (size_t i = 0; i < counts_.size(); ++i) {
        out += i == 0 ? "\n    " : ",\n    ";
        appendJsonString(
            out, traceEventTypeName(static_cast<TraceEventType>(i)));
        out += strformat(": %llu",
                         static_cast<unsigned long long>(counts_[i]));
    }
    out += "\n  },\n  \"events\": [";
    const size_t n = std::min(max_events, events_.size());
    const size_t start =
        n == 0 ? 0 : (next_ + events_.size() - n) % events_.size();
    for (size_t i = 0; i < n; ++i) {
        const TraceEvent &e = events_[(start + i) % events_.size()];
        out += i == 0 ? "\n    " : ",\n    ";
        out += strformat(
            "{\"t\": %.6g, \"type\": \"%s\", \"host\": %d, "
            "\"worker\": %d, \"step\": %llu, \"video\": %llu}",
            e.time, traceEventTypeName(e.type), e.host, e.worker,
            static_cast<unsigned long long>(e.step_id),
            static_cast<unsigned long long>(e.video_id));
    }
    out += "\n  ]\n}";
    return out;
}

} // namespace wsva
