/**
 * @file
 * Lightweight statistics accumulators used by the simulators and the
 * bench harnesses: running mean/variance, min/max, histograms, and
 * time-weighted utilization tracking.
 */

#ifndef WSVA_COMMON_STATS_H
#define WSVA_COMMON_STATS_H

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace wsva {

/** Welford running mean / variance / extrema accumulator. */
class RunningStat
{
  public:
    /** Add one sample. */
    void add(double x);

    /** Number of samples so far. */
    uint64_t count() const { return count_; }

    /** Mean of the samples (0 when empty). */
    double mean() const { return count_ ? mean_ : 0.0; }

    /** Sample variance (0 with fewer than two samples). */
    double variance() const;

    /** Sample standard deviation. */
    double stddev() const;

    /** Smallest sample (+inf when empty). */
    double min() const { return min_; }

    /** Largest sample (-inf when empty). */
    double max() const { return max_; }

    /** Sum of all samples. */
    double sum() const { return sum_; }

    /** Merge another accumulator into this one. */
    void merge(const RunningStat &other);

    /** Reset to the empty state. */
    void reset();

  private:
    uint64_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double sum_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/** Fixed-width linear histogram over [lo, hi) with under/overflow bins. */
class Histogram
{
  public:
    /**
     * @param lo Lower edge of the first in-range bin.
     * @param hi Upper edge of the last in-range bin.
     * @param bins Number of in-range bins (>=1).
     */
    Histogram(double lo, double hi, size_t bins);

    /** Add one sample. */
    void add(double x);

    /** Total samples including under/overflow. */
    uint64_t count() const { return count_; }

    /** Count in in-range bin @p i. */
    uint64_t binCount(size_t i) const { return counts_.at(i); }

    /** Samples below the range. */
    uint64_t underflow() const { return underflow_; }

    /** Samples at or above the range. */
    uint64_t overflow() const { return overflow_; }

    /** Number of in-range bins. */
    size_t bins() const { return counts_.size(); }

    /** Lower edge of the first in-range bin. */
    double lo() const { return lo_; }

    /** Upper edge of the last in-range bin. */
    double hi() const { return hi_; }

    /** Width of one in-range bin. */
    double binWidth() const { return width_; }

    /** Approximate quantile q in [0,1] from bin midpoints. */
    double quantile(double q) const;

  private:
    double lo_;
    double hi_;
    double width_;
    std::vector<uint64_t> counts_;
    uint64_t underflow_ = 0;
    uint64_t overflow_ = 0;
    uint64_t count_ = 0;
};

/**
 * Time-weighted average of a piecewise-constant signal, e.g. the
 * utilization of a resource over simulated time.
 */
class TimeWeightedStat
{
  public:
    /** Record that the signal changed to @p value at time @p now. */
    void set(double now, double value);

    /** Time-weighted mean over [start, now]. */
    double average(double now) const;

    /** Most recent value. */
    double current() const { return value_; }

  private:
    double value_ = 0.0;
    double last_time_ = 0.0;
    double weighted_sum_ = 0.0;
    double start_time_ = 0.0;
    bool started_ = false;
};

} // namespace wsva

#endif // WSVA_COMMON_STATS_H
