#ifndef WSVA_COMMON_BUILD_INFO_H_
#define WSVA_COMMON_BUILD_INFO_H_

/**
 * Build-info stamp for /varz, /healthz, and exportJson.
 *
 * Bench sweeps compare JSON artifacts produced by different binaries;
 * the stamp (build type, -march=native on/off, export schema version,
 * process uptime) lets a scrape detect mismatched arms before the
 * numbers are trusted.
 */

#include <string>

namespace wsva {

/** CMAKE_BUILD_TYPE baked in at compile time ("Release", "Debug",
 *  ...; "unknown" when the definition is missing). */
const char *buildType();

/** True when the binary was compiled with WSVA_NATIVE_ARCH=ON
 *  (-march=native). */
bool buildNativeArch();

/** Seconds since this process first asked for build info (a static
 *  steady_clock epoch captured at first use, i.e. early in startup). */
double processUptimeSeconds();

/**
 * JSON object (no trailing newline):
 *   {"build_type": "Release", "native_arch": false,
 *    "export_schema_version": 5, "uptime_s": 1.2}
 */
std::string buildInfoJson(int export_schema_version);

}  // namespace wsva

#endif  // WSVA_COMMON_BUILD_INFO_H_
