#include "common/trace.h"

#include <algorithm>
#include <array>

#include "common/logging.h"

namespace wsva {

namespace {

thread_local SpanContext tls_context{};

/** Dense per-thread track ids for wall spans (0 = unassigned). */
thread_local int tls_track = 0;
std::atomic<int> next_track{1};

int
currentThreadTrack()
{
    if (tls_track == 0)
        tls_track = next_track.fetch_add(1, std::memory_order_relaxed);
    return tls_track;
}

/** Append a JSON string value with minimal escaping. */
void
appendJsonString(std::string &out, const char *s)
{
    out += '"';
    for (; *s != '\0'; ++s) {
        const char c = *s;
        if (c == '"' || c == '\\') {
            out += '\\';
            out += c;
        } else if (static_cast<unsigned char>(c) < 0x20) {
            out += strformat("\\u%04x", c);
        } else {
            out += c;
        }
    }
    out += '"';
}

} // namespace

SpanContext
currentSpanContext()
{
    return tls_context;
}

ScopedSpanContext::ScopedSpanContext(const SpanContext &ctx)
    : prev_(tls_context)
{
    tls_context = ctx;
}

ScopedSpanContext::~ScopedSpanContext()
{
    tls_context = prev_;
}

Tracer::Tracer(size_t capacity)
    : capacity_(capacity), epoch_(std::chrono::steady_clock::now())
{
    WSVA_ASSERT(capacity > 0, "tracer needs a positive capacity");
}

double
Tracer::wallMicros() const
{
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
}

void
Tracer::record(SpanRecord rec)
{
    if (!enabled())
        return;
    if (rec.id == 0)
        rec.id = nextId();
    std::lock_guard<SpinLock> lock(mutex_);
    ++recorded_;
    if (spans_.size() < capacity_) {
        spans_.push_back(rec);
    } else {
        spans_[next_] = rec;
        next_ = (next_ + 1) % capacity_;
        ++dropped_;
    }
}

uint64_t
Tracer::recordSimSpan(const char *name, const char *category,
                      double begin_us, double end_us, int track,
                      uint64_t parent, int process, const char *arg1_key,
                      uint64_t arg1, const char *arg2_key, uint64_t arg2)
{
    if (!enabled())
        return 0;
    SpanRecord rec;
    rec.name = name;
    rec.category = category;
    rec.id = nextId();
    rec.parent = parent;
    rec.clock = SpanClock::Sim;
    rec.begin_us = begin_us;
    rec.end_us = end_us;
    rec.track = track;
    rec.process = process;
    rec.arg1_key = arg1_key;
    rec.arg1 = arg1;
    rec.arg2_key = arg2_key;
    rec.arg2 = arg2;
    record(rec);
    return rec.id;
}

void
Tracer::instant(const char *name, const char *category,
                const char *arg1_key, uint64_t arg1,
                const char *arg2_key, uint64_t arg2)
{
    if (!enabled())
        return;
    SpanRecord rec;
    rec.name = name;
    rec.category = category;
    rec.instant = true;
    const SpanContext ctx = currentSpanContext();
    rec.parent = ctx.tracer == this ? ctx.span_id : 0;
    rec.begin_us = wallMicros();
    rec.end_us = rec.begin_us;
    rec.track = currentThreadTrack();
    rec.arg1_key = arg1_key;
    rec.arg1 = arg1;
    rec.arg2_key = arg2_key;
    rec.arg2 = arg2;
    record(rec);
}

const char *
Tracer::intern(const std::string &name)
{
    std::lock_guard<SpinLock> lock(mutex_);
    auto it = intern_index_.find(name);
    if (it != intern_index_.end())
        return it->second;
    interned_.push_back(name);
    const char *stable = interned_.back().c_str();
    intern_index_.emplace(name, stable);
    return stable;
}

size_t
Tracer::size() const
{
    std::lock_guard<SpinLock> lock(mutex_);
    return spans_.size();
}

uint64_t
Tracer::recorded() const
{
    std::lock_guard<SpinLock> lock(mutex_);
    return recorded_;
}

uint64_t
Tracer::dropped() const
{
    std::lock_guard<SpinLock> lock(mutex_);
    return dropped_;
}

std::vector<SpanRecord>
Tracer::snapshot() const
{
    std::lock_guard<SpinLock> lock(mutex_);
    std::vector<SpanRecord> out;
    out.reserve(spans_.size());
    // Oldest first: next_ is the oldest slot once the ring is full.
    for (size_t i = 0; i < spans_.size(); ++i)
        out.push_back(spans_[(next_ + i) % spans_.size()]);
    return out;
}

void
Tracer::clear()
{
    std::lock_guard<SpinLock> lock(mutex_);
    spans_.clear();
    next_ = 0;
    recorded_ = 0;
    dropped_ = 0;
}

std::string
Tracer::exportChromeTrace(const TraceLog *events) const
{
    const std::vector<SpanRecord> spans = snapshot();

    std::string out = "{\n\"schema_version\": 1,\n"
                      "\"displayTimeUnit\": \"ms\",\n"
                      "\"traceEvents\": [";
    bool first = true;
    const auto sep = [&] {
        out += first ? "\n" : ",\n";
        first = false;
    };

    // Name the process lanes that actually appear, so Perfetto shows
    // "wall" / "sim" / ... instead of bare pids.
    std::array<bool, 5> pid_used{};
    for (const auto &rec : spans) {
        const int pid = rec.process != 0
                            ? rec.process
                            : (rec.clock == SpanClock::Wall
                                   ? kProcessWall
                                   : kProcessSim);
        if (pid >= 0 && static_cast<size_t>(pid) < pid_used.size())
            pid_used[static_cast<size_t>(pid)] = true;
    }
    if (events != nullptr)
        pid_used[kProcessSim] = true;
    static const char *kPidNames[] = {"", "wall", "sim", "sim_hosts",
                                      "hlsim"};
    for (size_t pid = 1; pid < pid_used.size(); ++pid) {
        if (!pid_used[pid])
            continue;
        sep();
        out += strformat("{\"name\": \"process_name\", \"ph\": \"M\", "
                         "\"pid\": %zu, \"args\": {\"name\": \"%s\"}}",
                         pid, kPidNames[pid]);
    }

    for (const auto &rec : spans) {
        const int pid = rec.process != 0
                            ? rec.process
                            : (rec.clock == SpanClock::Wall
                                   ? kProcessWall
                                   : kProcessSim);
        sep();
        out += "{\"name\": ";
        appendJsonString(out, rec.name);
        out += ", \"cat\": ";
        appendJsonString(out, *rec.category != '\0' ? rec.category
                                                    : "default");
        if (rec.instant) {
            out += strformat(", \"ph\": \"i\", \"s\": \"t\", "
                             "\"pid\": %d, \"tid\": %d, \"ts\": %.3f",
                             pid, rec.track, rec.begin_us);
        } else {
            const double dur =
                std::max(0.0, rec.end_us - rec.begin_us);
            out += strformat(", \"ph\": \"X\", \"pid\": %d, "
                             "\"tid\": %d, \"ts\": %.3f, \"dur\": %.3f",
                             pid, rec.track, rec.begin_us, dur);
        }
        out += strformat(", \"args\": {\"id\": %llu, \"parent\": %llu",
                         static_cast<unsigned long long>(rec.id),
                         static_cast<unsigned long long>(rec.parent));
        if (rec.arg1_key != nullptr) {
            out += ", ";
            appendJsonString(out, rec.arg1_key);
            out += strformat(": %llu",
                             static_cast<unsigned long long>(rec.arg1));
        }
        if (rec.arg2_key != nullptr) {
            out += ", ";
            appendJsonString(out, rec.arg2_key);
            out += strformat(": %llu",
                             static_cast<unsigned long long>(rec.arg2));
        }
        out += "}}";
    }

    if (events != nullptr) {
        // Bridge the typed event ring: each event becomes an instant
        // on its worker's sim track plus a bump of the cumulative
        // per-type counter track (Chrome "C" events render these as
        // stacked counter series).
        std::array<uint64_t, kTraceEventTypeCount> cumulative{};
        for (const auto &ev : events->snapshot()) {
            const char *type = traceEventTypeName(ev.type);
            const double ts = ev.time * 1e6;
            const int tid = ev.worker >= 0
                                ? ev.worker
                                : (ev.host >= 0 ? ev.host : 0);
            sep();
            out += "{\"name\": ";
            appendJsonString(out, type);
            out += strformat(
                ", \"cat\": \"cluster_event\", \"ph\": \"i\", "
                "\"s\": \"p\", \"pid\": %d, \"tid\": %d, "
                "\"ts\": %.3f, \"args\": {\"host\": %d, "
                "\"worker\": %d, \"step\": %llu, \"video\": %llu}}",
                kProcessSim, tid, ts, ev.host, ev.worker,
                static_cast<unsigned long long>(ev.step_id),
                static_cast<unsigned long long>(ev.video_id));
            ++cumulative[static_cast<size_t>(ev.type)];
            sep();
            out += strformat("{\"name\": \"cluster_events\", "
                             "\"ph\": \"C\", \"pid\": %d, \"tid\": 0, "
                             "\"ts\": %.3f, \"args\": {",
                             kProcessSim, ts);
            appendJsonString(out, type);
            out += strformat(
                ": %llu}}",
                static_cast<unsigned long long>(
                    cumulative[static_cast<size_t>(ev.type)]));
        }
    }

    out += "\n]\n}";
    return out;
}

Span::Span(Tracer *tracer, const char *name, const char *category)
{
    if (tracer == nullptr || !tracer->enabled())
        return; // Disabled path: tracer_ stays null, destructor no-ops.
    tracer_ = tracer;
    rec_.name = name;
    rec_.category = category;
    rec_.id = tracer->nextId();
    const SpanContext ctx = currentSpanContext();
    rec_.parent = ctx.tracer == tracer ? ctx.span_id : 0;
    rec_.clock = SpanClock::Wall;
    rec_.track = currentThreadTrack();
    rec_.begin_us = tracer->wallMicros();
    prev_ = ctx;
    tls_context = SpanContext{tracer, rec_.id};
}

Span::~Span()
{
    if (tracer_ == nullptr)
        return;
    rec_.end_us = tracer_->wallMicros();
    tracer_->record(rec_);
    tls_context = prev_;
}

void
Span::arg(const char *key, uint64_t value)
{
    if (tracer_ == nullptr)
        return;
    if (rec_.arg1_key == nullptr) {
        rec_.arg1_key = key;
        rec_.arg1 = value;
    } else if (rec_.arg2_key == nullptr) {
        rec_.arg2_key = key;
        rec_.arg2 = value;
    }
}

} // namespace wsva
