/**
 * @file
 * Observability subsystem: a registry of named metrics (counters,
 * gauges, histograms, sim-time series) plus a structured trace log of
 * typed simulation events.
 *
 * The cluster simulator's failure accounting (utilization, fault and
 * repair counts, corruption blast radius — the quantities behind the
 * paper's Section 4.4 deployment story) used to be computed ad hoc
 * inline, which is how several counters drifted from reality. Both
 * classes here are cheap enough to stay enabled in normal runs, are
 * thread-safe (the transcode pipeline records encode timings from
 * pool workers), and export JSON so benches and tests can assert on
 * the numbers rather than eyeball them. A disabled registry/log turns
 * every record call into an atomic load and an early return, which is
 * what the metrics-overhead bench measures against.
 */

#ifndef WSVA_COMMON_METRICS_H
#define WSVA_COMMON_METRICS_H

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/stats.h"

namespace wsva {

/** One (sim-time, value) point of a sampled series. */
using TimeSample = std::pair<double, double>;

/**
 * Rewrite @p name into a legal Prometheus metric name
 * ([a-zA-Z_:][a-zA-Z0-9_:]*): every illegal character (the registry's
 * `.` separators, `-`, `/`, ...) becomes `_`, a leading digit gets a
 * `_` prefix, and an empty name becomes `_`. Distinct inputs can
 * collide after rewriting; MetricsRegistry::toPrometheusText()
 * resolves those with deterministic `_2`, `_3`, ... suffixes.
 */
std::string sanitizePrometheusName(const std::string &name);

/**
 * Minimal spinlock for hot, uncontended, short critical sections
 * (the trace-log record path). Satisfies BasicLockable.
 */
class SpinLock
{
  public:
    void lock()
    {
        while (flag_.test_and_set(std::memory_order_acquire)) {
        }
    }
    void unlock() { flag_.clear(std::memory_order_release); }

  private:
    std::atomic_flag flag_ = ATOMIC_FLAG_INIT;
};

/**
 * Pre-resolved handle to one registry counter for hot paths: the name
 * lookup (and its string construction) happens once, at
 * MetricsRegistry::counterHandle(); each inc() after that is an
 * enabled check plus a relaxed atomic add — no lock, no allocation.
 * Handles stay valid for the registry's lifetime (reset() zeroes the
 * value behind a handle rather than discarding it). A
 * default-constructed handle is a no-op.
 */
class CounterHandle
{
  public:
    CounterHandle() = default;

    void inc(uint64_t delta = 1) const
    {
        if (cell_ != nullptr &&
            enabled_->load(std::memory_order_relaxed))
            cell_->fetch_add(delta, std::memory_order_relaxed);
    }

  private:
    friend class MetricsRegistry;
    CounterHandle(std::atomic<uint64_t> *cell,
                  const std::atomic<bool> *enabled)
        : cell_(cell), enabled_(enabled)
    {
    }

    std::atomic<uint64_t> *cell_ = nullptr;
    const std::atomic<bool> *enabled_ = nullptr;
};

/**
 * Named metrics: monotonic counters, last-value gauges, histograms,
 * and time-series samplers keyed by simulation time. All operations
 * are guarded by one mutex; record paths on a disabled registry skip
 * the lock entirely.
 */
class MetricsRegistry
{
  public:
    /** Points kept per series before decimation halves them. */
    static constexpr size_t kMaxSeriesPoints = 1024;

    void setEnabled(bool on)
    {
        enabled_.store(on, std::memory_order_relaxed);
    }
    bool enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    /** Increment counter @p name by @p delta. */
    void inc(const std::string &name, uint64_t delta = 1);

    /**
     * Lock-free handle to counter @p name (created if absent). The
     * handle works regardless of the enabled state at resolution
     * time; each inc() re-checks the live flag.
     */
    CounterHandle counterHandle(const std::string &name);

    /** Set gauge @p name to @p value. */
    void setGauge(const std::string &name, double value);

    /**
     * Record @p value into histogram @p name, creating it with the
     * given range on first use (later calls ignore the range).
     */
    void observe(const std::string &name, double value, double lo = 0.0,
                 double hi = 1e9, size_t bins = 64);

    /**
     * Append a (sim-time, value) point to series @p name. Series are
     * bounded: past kMaxSeriesPoints every other point is dropped and
     * the sampling stride doubles, so long runs keep a coarse full
     * history instead of an unbounded tail.
     */
    void sample(const std::string &name, double t, double value);

    uint64_t counter(const std::string &name) const;
    double gauge(const std::string &name) const;

    /** Sample count of histogram @p name (0 when absent). */
    uint64_t histogramCount(const std::string &name) const;

    /** Quantile of histogram @p name (0 when absent). */
    double histogramQuantile(const std::string &name, double q) const;

    /** Copy of the points currently retained for series @p name. */
    std::vector<TimeSample> seriesSnapshot(const std::string &name) const;

    /** Drop all metrics (the enabled flag is left as-is). Counters
     *  with outstanding handles are zeroed in place, not removed. */
    void reset();

    /**
     * JSON object with "schema_version", "counters", "gauges",
     * "histograms" (bins plus p50/p90/p99), and "series" (stride +
     * retained points). The schema version is bumped on structural
     * changes so bench-JSON consumers can detect drift.
     */
    std::string toJson() const;

    /**
     * Prometheus text exposition (format 0.0.4) of the registry:
     * counters, gauges, and histograms with HELP/TYPE lines. Names
     * are sanitized (see sanitizePrometheusName) and collisions are
     * resolved deterministically with numeric suffixes, so two
     * registry names never share an exposition family. Histogram
     * buckets are cumulative over the bin upper edges (underflow
     * lands in the first bucket, "+Inf" equals the total count) and
     * the `_sum` is estimated from bin midpoints — the same
     * approximation Histogram::quantile uses. Time series are NOT
     * exported: Prometheus derives history by scraping the gauges.
     * The registry lock is held only while copying metric state;
     * formatting happens outside it, so a scrape cannot stall the
     * record paths.
     */
    std::string toPrometheusText() const;

  private:
    struct Series
    {
        uint64_t stride = 1;    //!< Keep one of every stride samples.
        uint64_t countdown = 0; //!< Raw samples until the next keep.
        std::vector<TimeSample> points;
    };

    std::atomic<bool> enabled_{true};
    mutable std::mutex mutex_;
    // node-based map: counter cells are address-stable for handles.
    std::map<std::string, std::atomic<uint64_t>> counters_;
    std::map<std::string, double> gauges_;
    std::map<std::string, Histogram> histograms_;
    std::map<std::string, Series> series_;
};

/** Event types recorded by the cluster simulation. */
enum class TraceEventType : int {
    FaultInjected = 0,   //!< A VCU hard fault disabled the device.
    SilentFaultInjected, //!< A VCU began corrupting output (fast).
    HostEnterRepair,     //!< Host crossed the fault threshold.
    HostRepaired,        //!< Repair completed; host back in service.
    StepScheduled,       //!< Step assigned to a worker.
    StepCompleted,       //!< Step finished with good output.
    StepFailed,          //!< Step failed on faulted hardware.
    StepRetried,         //!< Step re-queued after failure/abort.
    StepCorrupt,         //!< Step produced corrupt output.
    WorkerQuarantined,   //!< Worker refused its VCU after screening.
    SloAlert,            //!< SLO burn rate crossed the alert line.
    SloAlertCleared,     //!< SLO burn rate recovered.
    StepShed,            //!< Batch step parked/preempted for live work.
};

/** Number of distinct TraceEventType values. */
inline constexpr size_t kTraceEventTypeCount = 13;

/** Stable snake_case name of an event type (for JSON). */
const char *traceEventTypeName(TraceEventType type);

/** One structured trace record. Unused id fields stay at -1/0. */
struct TraceEvent
{
    TraceEventType type = TraceEventType::StepScheduled;
    double time = 0.0;     //!< Simulation time, seconds.
    int host = -1;
    int worker = -1;       //!< Global worker/VCU id.
    uint64_t step_id = 0;
    uint64_t video_id = 0;
};

/**
 * Bounded structured event log. Keeps the most recent @p capacity
 * events (older ones are dropped and counted), but per-type totals
 * cover the whole run.
 */
class TraceLog
{
  public:
    explicit TraceLog(size_t capacity = 1 << 16);

    void setEnabled(bool on)
    {
        enabled_.store(on, std::memory_order_relaxed);
    }
    bool enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    void record(const TraceEvent &event);
    void record(TraceEventType type, double time, int host = -1,
                int worker = -1, uint64_t step_id = 0,
                uint64_t video_id = 0);

    /** Events currently retained. */
    size_t size() const;

    /** Total events ever recorded (including dropped). */
    uint64_t recorded() const;

    /** Events evicted from the buffer. */
    uint64_t dropped() const;

    /** Lifetime count of one event type (survives eviction). */
    uint64_t countOf(TraceEventType type) const;

    /** The last @p max_events retained events, oldest first. */
    std::vector<TraceEvent> snapshot(size_t max_events = SIZE_MAX) const;

    void clear();

    /**
     * JSON object with lifetime per-type "counts" and the last
     * @p max_events retained "events". The ring lock is held only
     * while copying the events out; formatting runs unlocked so a
     * concurrent scrape cannot stall the record path.
     */
    std::string toJson(size_t max_events = 256) const;

  private:
    std::atomic<bool> enabled_{true};
    mutable SpinLock mutex_; //!< record() runs once per step event.
    size_t capacity_;
    // Flat ring: grows by push_back until capacity, then overwrites
    // in place — the steady-state record path never allocates.
    std::vector<TraceEvent> events_;
    size_t next_ = 0; //!< Write slot once the ring is full.
    uint64_t recorded_ = 0;
    uint64_t dropped_ = 0;
    std::array<uint64_t, kTraceEventTypeCount> counts_{};
};

} // namespace wsva

#endif // WSVA_COMMON_METRICS_H
