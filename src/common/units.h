/**
 * @file
 * Unit constants and conversions used throughout the repository.
 *
 * Conventions:
 *  - bytes are uint64_t, bandwidths are double bytes/second;
 *  - pixel throughput is double pixels/second (printed as Mpix/s);
 *  - simulated time is double seconds.
 */

#ifndef WSVA_COMMON_UNITS_H
#define WSVA_COMMON_UNITS_H

#include <cstdint>

namespace wsva {

constexpr uint64_t kKiB = 1024ULL;
constexpr uint64_t kMiB = 1024ULL * kKiB;
constexpr uint64_t kGiB = 1024ULL * kMiB;

constexpr double kKilo = 1e3;
constexpr double kMega = 1e6;
constexpr double kGiga = 1e9;

/** Bits per second from megabits per second. */
constexpr double
mbps(double v)
{
    return v * 1e6;
}

/** Bits per second from gigabits per second. */
constexpr double
gbps(double v)
{
    return v * 1e9;
}

/** Bytes per second from GiB/s. */
constexpr double
gibPerSec(double v)
{
    return v * static_cast<double>(kGiB);
}

/** Pixels per second expressed in Mpix/s. */
constexpr double
toMpixPerSec(double pixels_per_sec)
{
    return pixels_per_sec / 1e6;
}

/** Pixels per second expressed in Gpix/s. */
constexpr double
toGpixPerSec(double pixels_per_sec)
{
    return pixels_per_sec / 1e9;
}

} // namespace wsva

#endif // WSVA_COMMON_UNITS_H
