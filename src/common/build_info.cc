#include "common/build_info.h"

#include <chrono>

#include "common/logging.h"

namespace wsva {

namespace {

std::chrono::steady_clock::time_point
processEpoch()
{
    static const std::chrono::steady_clock::time_point epoch =
        std::chrono::steady_clock::now();
    return epoch;
}

// Touch the epoch at static-init time so uptime starts near process
// start even if the first buildInfoJson call is late.
const bool g_epoch_primed = (processEpoch(), true);

}  // namespace

const char *
buildType()
{
#ifdef WSVA_BUILD_TYPE
    return WSVA_BUILD_TYPE;
#else
    return "unknown";
#endif
}

bool
buildNativeArch()
{
#ifdef WSVA_NATIVE_ARCH_BUILD
    return true;
#else
    return false;
#endif
}

double
processUptimeSeconds()
{
    (void)g_epoch_primed;
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         processEpoch())
        .count();
}

std::string
buildInfoJson(int export_schema_version)
{
    return strformat(
        "{\"build_type\": \"%s\", \"native_arch\": %s, "
        "\"export_schema_version\": %d, \"uptime_s\": %.3f}",
        buildType(), buildNativeArch() ? "true" : "false",
        export_schema_version, processUptimeSeconds());
}

}  // namespace wsva
