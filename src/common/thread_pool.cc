#include "common/thread_pool.h"

#include <algorithm>
#include <exception>

#include "common/logging.h"
#include "common/profiler.h"
#include "common/trace.h"

namespace wsva {

int
ThreadPool::resolveThreads(int requested)
{
    if (requested > 0)
        return requested;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? static_cast<int>(hw) : 1;
}

std::shared_ptr<ThreadPool>
ThreadPool::shared(int workers)
{
    static std::mutex mutex;
    static std::shared_ptr<ThreadPool> pool;
    std::lock_guard<std::mutex> lock(mutex);
    if (!pool || pool->workerCount() != workers)
        pool = std::make_shared<ThreadPool>(workers);
    return pool;
}

ThreadPool::ThreadPool(int num_threads)
{
    const int count = resolveThreads(num_threads);
    WSVA_ASSERT(count >= 1, "thread pool needs at least one worker");
    queues_.reserve(static_cast<size_t>(count));
    for (int i = 0; i < count; ++i)
        queues_.push_back(std::make_unique<WorkerQueue>());
    workers_.reserve(static_cast<size_t>(count));
    for (int i = 0; i < count; ++i) {
        workers_.emplace_back(
            [this, i] { workerLoop(static_cast<size_t>(i)); });
    }
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(sleep_mutex_);
        stop_ = true;
    }
    wakeup_.notify_all();
    for (auto &w : workers_)
        w.join();
}

void
ThreadPool::enqueue(std::function<void()> job)
{
    // Span-context propagation: a job submitted from inside a traced
    // span runs with that span as its parent, no matter which worker
    // picks it up (or steals it). With tracing disabled this costs a
    // thread-local read and one predictable branch; the wrapper (and
    // its allocation) only exists while a tracer is live and enabled.
    const SpanContext ctx = currentSpanContext();
    if (ctx.tracer != nullptr && ctx.tracer->enabled()) {
        job = [ctx, inner = std::move(job)] {
            ScopedSpanContext scope(ctx);
            inner();
        };
    }

    const size_t target =
        next_queue_.fetch_add(1, std::memory_order_relaxed) %
        queues_.size();
    // Count the job before publishing it, and do the increment under
    // sleep_mutex_: a worker that just evaluated the wait predicate
    // (seeing pending_ == 0) holds that mutex until it blocks, so the
    // increment — and therefore the notify below — cannot slip into
    // the window between its predicate check and its wait, which
    // would lose the wakeup and strand the job. Incrementing before
    // the push also means a concurrent pop can never drive pending_
    // below zero (it is unsigned; underflow would leave the wait
    // predicate spuriously true).
    {
        std::lock_guard<std::mutex> lock(sleep_mutex_);
        pending_.fetch_add(1, std::memory_order_release);
    }
    {
        std::lock_guard<std::mutex> lock(queues_[target]->mutex);
        queues_[target]->jobs.push_back(std::move(job));
    }
    wakeup_.notify_one();
}

bool
ThreadPool::tryGetJob(size_t self, std::function<void()> &job)
{
    // Own deque first, newest job first: it is the cache-warm one.
    {
        auto &q = *queues_[self];
        std::lock_guard<std::mutex> lock(q.mutex);
        if (!q.jobs.empty()) {
            job = std::move(q.jobs.back());
            q.jobs.pop_back();
            return true;
        }
    }
    // Steal the oldest job from a sibling.
    const size_t n = queues_.size();
    for (size_t off = 1; off < n; ++off) {
        auto &q = *queues_[(self + off) % n];
        std::lock_guard<std::mutex> lock(q.mutex);
        if (!q.jobs.empty()) {
            job = std::move(q.jobs.front());
            q.jobs.pop_front();
            return true;
        }
    }
    return false;
}

void
ThreadPool::workerLoop(size_t self)
{
    static const int kJobPhase = prof::phaseId("pool/job");
    prof::ProfileRegistry::instance().setThreadName(
        strformat("pool-%zu", self));
    while (true) {
        std::function<void()> job;
        if (tryGetJob(self, job)) {
            pending_.fetch_sub(1, std::memory_order_acq_rel);
            {
                // Attribute job bodies (and any codec kernels they
                // nest) to this worker's profile.
                prof::ProfScope prof_job(kJobPhase);
                job();
            }
            continue;
        }
        std::unique_lock<std::mutex> lock(sleep_mutex_);
        wakeup_.wait(lock, [this] {
            return stop_ || pending_.load(std::memory_order_acquire) > 0;
        });
        if (stop_ && pending_.load(std::memory_order_acquire) == 0)
            return;
    }
}

void
ThreadPool::parallelFor(size_t count,
                        const std::function<void(size_t)> &body)
{
    if (count == 0)
        return;
    if (count == 1) {
        body(0);
        return;
    }

    struct ForState
    {
        std::atomic<size_t> next{0};
        std::atomic<bool> failed{false};
        std::mutex error_mutex;
        std::exception_ptr error;
    };
    auto state = std::make_shared<ForState>();

    auto drain = [state, count, &body] {
        while (true) {
            const size_t i =
                state->next.fetch_add(1, std::memory_order_relaxed);
            if (i >= count ||
                state->failed.load(std::memory_order_acquire)) {
                return;
            }
            try {
                body(i);
            } catch (...) {
                std::lock_guard<std::mutex> lock(state->error_mutex);
                if (!state->error)
                    state->error = std::current_exception();
                state->failed.store(true, std::memory_order_release);
            }
        }
    };

    // One helper per worker (bounded by the iteration count; the
    // caller drains too, so helpers that never get scheduled before
    // the space is exhausted simply return).
    const size_t helpers =
        std::min(count - 1, static_cast<size_t>(workerCount()));
    std::vector<std::future<void>> futures;
    futures.reserve(helpers);
    for (size_t h = 0; h < helpers; ++h)
        futures.push_back(submit(drain));
    drain();
    for (auto &f : futures)
        f.get();
    if (state->error)
        std::rethrow_exception(state->error);
}

} // namespace wsva
