/**
 * @file
 * A general-purpose work-stealing thread pool.
 *
 * The platform encodes many closed-GOP chunks and MOT ladder rungs
 * concurrently across encoder cores (paper Figures 2 and 5); this
 * pool is the software stand-in for that parallelism, shared by the
 * platform pipeline, cluster code, and benches.
 *
 * Design: a fixed set of workers, one deque per worker. submit()
 * distributes jobs round-robin; a worker services its own deque in
 * LIFO order (cache-warm) and steals from its siblings in FIFO order
 * (oldest first, reduces contention). parallelFor() is a helper for
 * index-space fan-out in which the calling thread participates, so it
 * is deadlock-free even when the pool is saturated.
 *
 * Trace integration: submit()/parallelFor() capture the submitter's
 * span context (common/trace.h) and restore it around job execution,
 * so spans opened inside pool jobs correctly parent to the span that
 * spawned them — including across work stealing. Disabled tracing
 * adds only a thread-local read and a predictable branch per submit.
 */

#ifndef WSVA_COMMON_THREAD_POOL_H
#define WSVA_COMMON_THREAD_POOL_H

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace wsva {

class ThreadPool
{
  public:
    /**
     * Create a pool with @p num_threads workers. 0 (the default)
     * means one worker per hardware thread.
     */
    explicit ThreadPool(int num_threads = 0);

    /** Completes all queued work, then joins the workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Number of worker threads. */
    int workerCount() const { return static_cast<int>(workers_.size()); }

    /**
     * Enqueue a callable; the returned future carries its result (or
     * its exception).
     */
    template <typename F>
    auto
    submit(F &&fn) -> std::future<std::invoke_result_t<std::decay_t<F>>>
    {
        using R = std::invoke_result_t<std::decay_t<F>>;
        auto task = std::make_shared<std::packaged_task<R()>>(
            std::forward<F>(fn));
        std::future<R> future = task->get_future();
        enqueue([task] { (*task)(); });
        return future;
    }

    /**
     * Run body(i) for every i in [0, count). The caller participates
     * in the work; the call returns when every index has completed.
     * The first exception thrown by any body is rethrown here (the
     * remaining indices are abandoned once a failure is observed).
     */
    void parallelFor(size_t count,
                     const std::function<void(size_t)> &body);

    /**
     * Resolve a thread-count knob: <= 0 selects the hardware
     * concurrency (at least 1), anything else is taken as-is.
     */
    static int resolveThreads(int requested);

    /**
     * Process-wide pool, created lazily and reused across calls so
     * repeated short fan-outs (back-to-back transcodes, optimizer
     * probes) do not pay thread creation/join per invocation.
     * Rebuilt only when @p workers differs from the current size;
     * the shared_ptr keeps the old pool alive for in-flight callers
     * if a concurrent call with a different size swaps it out.
     */
    static std::shared_ptr<ThreadPool> shared(int workers);

  private:
    /** One worker's job deque with its own lock. */
    struct WorkerQueue
    {
        std::mutex mutex;
        std::deque<std::function<void()>> jobs;
    };

    void enqueue(std::function<void()> job);
    void workerLoop(size_t self);
    bool tryGetJob(size_t self, std::function<void()> &job);

    std::vector<std::unique_ptr<WorkerQueue>> queues_;
    std::vector<std::thread> workers_;
    std::atomic<size_t> next_queue_{0};
    std::atomic<size_t> pending_{0};
    std::mutex sleep_mutex_;
    std::condition_variable wakeup_;
    bool stop_ = false;
};

} // namespace wsva

#endif // WSVA_COMMON_THREAD_POOL_H
