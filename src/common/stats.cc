#include "common/stats.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace wsva {

void
RunningStat::add(double x)
{
    ++count_;
    sum_ += x;
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
}

double
RunningStat::variance() const
{
    if (count_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(count_ - 1);
}

double
RunningStat::stddev() const
{
    return std::sqrt(variance());
}

void
RunningStat::merge(const RunningStat &other)
{
    if (other.count_ == 0)
        return;
    if (count_ == 0) {
        *this = other;
        return;
    }
    double delta = other.mean_ - mean_;
    uint64_t n = count_ + other.count_;
    double na = static_cast<double>(count_);
    double nb = static_cast<double>(other.count_);
    mean_ += delta * nb / static_cast<double>(n);
    m2_ += other.m2_ + delta * delta * na * nb / static_cast<double>(n);
    count_ = n;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

void
RunningStat::reset()
{
    *this = RunningStat();
}

Histogram::Histogram(double lo, double hi, size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0)
{
    WSVA_ASSERT(bins >= 1, "histogram needs at least one bin");
    WSVA_ASSERT(hi > lo, "histogram range must be non-empty");
}

void
Histogram::add(double x)
{
    ++count_;
    if (x < lo_) {
        ++underflow_;
    } else if (x >= hi_) {
        ++overflow_;
    } else {
        auto idx = static_cast<size_t>((x - lo_) / width_);
        idx = std::min(idx, counts_.size() - 1);
        ++counts_[idx];
    }
}

double
Histogram::quantile(double q) const
{
    if (count_ == 0)
        return 0.0;
    q = std::clamp(q, 0.0, 1.0);
    // Rank of the quantile sample, in [1, count_]: the smallest rank
    // whose cumulative fraction reaches q. ceil() keeps q=1 at the
    // last sample instead of falling off the end (which used to
    // report hi_ even with every sample in one interior bin), and
    // the >= comparisons below keep a quantile that lands exactly on
    // the underflow boundary attributed to the underflow bin.
    auto rank = static_cast<uint64_t>(
        std::ceil(q * static_cast<double>(count_)));
    rank = std::clamp<uint64_t>(rank, 1, count_);
    uint64_t seen = underflow_;
    if (seen >= rank)
        return lo_;
    for (size_t i = 0; i < counts_.size(); ++i) {
        seen += counts_[i];
        if (seen >= rank)
            return lo_ + (static_cast<double>(i) + 0.5) * width_;
    }
    return hi_;
}

void
TimeWeightedStat::set(double now, double value)
{
    if (!started_) {
        started_ = true;
        start_time_ = now;
        last_time_ = now;
        value_ = value;
        return;
    }
    weighted_sum_ += value_ * (now - last_time_);
    last_time_ = now;
    value_ = value;
}

double
TimeWeightedStat::average(double now) const
{
    if (!started_ || now <= start_time_)
        return value_;
    double total = weighted_sum_ + value_ * (now - last_time_);
    return total / (now - start_time_);
}

} // namespace wsva
