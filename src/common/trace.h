/**
 * @file
 * Hierarchical span tracing: one causal timeline from an upload
 * through scheduling, chunk x rung encodes on the shared thread pool,
 * optimizer probes, cache lookups, and the hlsim stage model.
 *
 * The PR 2 metrics layer counts *what* happened (counters, gauges,
 * the TraceLog event ring); this module records *where time went*.
 * A Span is an RAII interval with parent/child linkage carried in a
 * thread-local context that propagates across ThreadPool::submit /
 * parallelFor — a job submitted from inside a span runs with that
 * span as its parent, even when a sibling worker steals it.
 *
 * Two clock domains coexist on one timeline:
 *  - Wall spans (RAII `Span`) timestamp real work in microseconds of
 *    steady-clock time since the tracer was created.
 *  - Sim spans are recorded retrospectively with explicit simulation
 *    timestamps (ClusterSim seconds, hlsim cycles), so a seeded run
 *    produces a byte-identical trace every time.
 *
 * Tracer::exportChromeTrace() writes Chrome trace-event JSON that
 * loads in Perfetto / chrome://tracing, optionally merging a
 * TraceLog's typed events as instant + counter events on the same
 * timeline.
 *
 * Cost discipline: a disabled tracer reduces every record call to one
 * relaxed atomic load and a predictable branch; constructing a Span
 * against a null or disabled tracer does no clock read, no id
 * allocation, and no locking (bench_observability enforces the
 * enabled-overhead budget).
 */

#ifndef WSVA_COMMON_TRACE_H
#define WSVA_COMMON_TRACE_H

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "common/metrics.h"

namespace wsva {

class TraceLog;

/** Which clock a span's timestamps come from. */
enum class SpanClock : int {
    Wall = 0, //!< Microseconds of steady-clock time (real work).
    Sim = 1,  //!< Deterministic simulation time (reproducible traces).
};

/**
 * Chrome "process" lanes used to keep the clock domains and layers
 * visually separate in Perfetto. Wall spans default to kProcessWall,
 * sim spans to kProcessSim; recorders may pick any other lane.
 */
inline constexpr int kProcessWall = 1;     //!< Wall-clock spans.
inline constexpr int kProcessSim = 2;      //!< Cluster sim (seconds).
inline constexpr int kProcessSimHosts = 3; //!< Host-level sim spans.
inline constexpr int kProcessHlsim = 4;    //!< hlsim stages (cycles).

/**
 * One recorded span. `name`/`category`/arg keys are `const char *`
 * and must outlive the tracer (string literals in practice; use
 * Tracer::intern() for dynamic names).
 */
struct SpanRecord
{
    const char *name = "";
    const char *category = "";
    uint64_t id = 0;     //!< Unique per tracer; 0 = assign at record.
    uint64_t parent = 0; //!< Parent span id; 0 = root.
    SpanClock clock = SpanClock::Wall;
    bool instant = false; //!< Point event; only begin_us is used.
    double begin_us = 0.0;
    double end_us = 0.0;
    int track = 0;   //!< Chrome tid (thread index / worker / stage).
    int process = 0; //!< Chrome pid; 0 = derive from clock domain.
    const char *arg1_key = nullptr;
    uint64_t arg1 = 0;
    const char *arg2_key = nullptr;
    uint64_t arg2 = 0;
};

/**
 * Bounded span sink. Keeps the most recent `capacity` spans (older
 * ones are dropped and counted). Thread-safe: wall spans arrive
 * concurrently from pool workers; the record path is one spinlock
 * acquisition and a ring write, no allocation in steady state.
 */
class Tracer
{
  public:
    explicit Tracer(size_t capacity = 1 << 16);

    void setEnabled(bool on)
    {
        enabled_.store(on, std::memory_order_relaxed);
    }
    /** The one branch every disabled-path record call pays. */
    bool enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    /** Next span id (ids start at 1; 0 means "no parent"). */
    uint64_t nextId()
    {
        return next_id_.fetch_add(1, std::memory_order_relaxed) + 1;
    }

    /**
     * Record a finished span. rec.id == 0 gets a fresh id. No-op when
     * disabled.
     */
    void record(SpanRecord rec);

    /**
     * Convenience: record a completed sim-domain span with explicit
     * timestamps (microsecond units on the Chrome timeline; pass
     * seconds * 1e6 for ClusterSim, raw cycles for hlsim).
     * @return the span's id (0 when disabled).
     */
    uint64_t recordSimSpan(const char *name, const char *category,
                           double begin_us, double end_us, int track,
                           uint64_t parent = 0, int process = kProcessSim,
                           const char *arg1_key = nullptr,
                           uint64_t arg1 = 0,
                           const char *arg2_key = nullptr,
                           uint64_t arg2 = 0);

    /**
     * Record a wall-clock instant event on the current thread's
     * track, parented to the enclosing span (if any).
     */
    void instant(const char *name, const char *category,
                 const char *arg1_key = nullptr, uint64_t arg1 = 0,
                 const char *arg2_key = nullptr, uint64_t arg2 = 0);

    /** Microseconds of steady-clock time since tracer creation. */
    double wallMicros() const;

    /**
     * Copy @p name into tracer-owned storage and return a pointer
     * stable for the tracer's lifetime (for non-literal span names,
     * e.g. hlsim stage names). Repeated interns of equal strings
     * return the same pointer.
     */
    const char *intern(const std::string &name);

    /** Spans currently retained. */
    size_t size() const;
    /** Total spans ever recorded (including dropped). */
    uint64_t recorded() const;
    /** Spans evicted from the ring. */
    uint64_t dropped() const;
    /** Retained spans, oldest first. */
    std::vector<SpanRecord> snapshot() const;
    /** Drop retained spans and counters (enabled flag unchanged). */
    void clear();

    /**
     * Chrome trace-event JSON (object form) loadable in Perfetto /
     * chrome://tracing. Spans become "X" complete events (instants
     * become "i"), with span/parent ids and args under "args". When
     * @p events is supplied, its typed events are merged as instant
     * events plus a cumulative per-type counter track, so the PR 2
     * cluster events and the spans render on one timeline. Output is
     * deterministic given identical recorded state.
     */
    std::string exportChromeTrace(const TraceLog *events = nullptr) const;

  private:
    std::atomic<bool> enabled_{true};
    std::atomic<uint64_t> next_id_{0};
    mutable SpinLock mutex_;
    size_t capacity_;
    // Flat ring, same discipline as TraceLog: push_back until full,
    // then overwrite in place.
    std::vector<SpanRecord> spans_;
    size_t next_ = 0;
    uint64_t recorded_ = 0;
    uint64_t dropped_ = 0;
    std::deque<std::string> interned_;
    std::map<std::string, const char *> intern_index_;
    std::chrono::steady_clock::time_point epoch_;
};

/**
 * The thread-local span context: which tracer and span the current
 * thread is "inside". Propagated across ThreadPool::submit (and
 * therefore parallelFor) so pool jobs inherit their submitter's span
 * as parent.
 */
struct SpanContext
{
    const Tracer *tracer = nullptr;
    uint64_t span_id = 0;
};

/** The calling thread's current span context. */
SpanContext currentSpanContext();

/**
 * Install a span context for the current scope and restore the
 * previous one on destruction. ThreadPool wraps submitted jobs in
 * one of these; it is also the hook for custom executors.
 */
class ScopedSpanContext
{
  public:
    explicit ScopedSpanContext(const SpanContext &ctx);
    ~ScopedSpanContext();

    ScopedSpanContext(const ScopedSpanContext &) = delete;
    ScopedSpanContext &operator=(const ScopedSpanContext &) = delete;

  private:
    SpanContext prev_;
};

/**
 * RAII wall-clock span. Construction against a null or disabled
 * tracer is a no-op (one predictable branch); otherwise it snapshots
 * the clock, links to the enclosing span, and becomes the current
 * context until destruction.
 */
class Span
{
  public:
    /** @p name and @p category must outlive the tracer (literals). */
    explicit Span(Tracer *tracer, const char *name,
                  const char *category = "");
    ~Span();

    Span(const Span &) = delete;
    Span &operator=(const Span &) = delete;

    /** Attach a numeric argument (first two calls stick). */
    void arg(const char *key, uint64_t value);

    /** This span's id (0 when tracing is disabled). */
    uint64_t id() const { return rec_.id; }

  private:
    Tracer *tracer_ = nullptr; //!< Null = disabled; destructor no-op.
    SpanRecord rec_;
    SpanContext prev_;
};

} // namespace wsva

#endif // WSVA_COMMON_TRACE_H
