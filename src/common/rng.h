/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Every stochastic component in the repository takes an explicit,
 * seeded Rng so that simulations and benches are reproducible
 * bit-for-bit across runs and platforms. The generator is PCG32
 * (O'Neill, 2014): small state, good statistical quality, and a
 * fully specified output function.
 */

#ifndef WSVA_COMMON_RNG_H
#define WSVA_COMMON_RNG_H

#include <cmath>
#include <cstdint>

namespace wsva {

/** PCG32 pseudo-random generator with convenience distributions. */
class Rng
{
  public:
    /** Construct from a seed and an optional stream selector. */
    explicit Rng(uint64_t seed = 0x853c49e6748fea9bULL,
                 uint64_t stream = 0xda3e39cb94b95bdbULL)
    {
        state_ = 0;
        inc_ = (stream << 1u) | 1u;
        nextU32();
        state_ += seed;
        nextU32();
    }

    /** Next raw 32-bit output. */
    uint32_t
    nextU32()
    {
        uint64_t old = state_;
        state_ = old * 6364136223846793005ULL + inc_;
        auto xorshifted = static_cast<uint32_t>(((old >> 18u) ^ old) >> 27u);
        auto rot = static_cast<uint32_t>(old >> 59u);
        return (xorshifted >> rot) | (xorshifted << ((32 - rot) & 31));
    }

    /** Next raw 64-bit output. */
    uint64_t
    nextU64()
    {
        return (static_cast<uint64_t>(nextU32()) << 32) | nextU32();
    }

    /** Uniform integer in [0, bound) using Lemire-style rejection. */
    uint32_t
    uniformInt(uint32_t bound)
    {
        if (bound == 0)
            return 0;
        uint32_t threshold = (-bound) % bound;
        for (;;) {
            uint32_t r = nextU32();
            if (r >= threshold)
                return r % bound;
        }
    }

    /** Uniform integer in the inclusive range [lo, hi]. */
    int
    uniformRange(int lo, int hi)
    {
        return lo + static_cast<int>(
            uniformInt(static_cast<uint32_t>(hi - lo + 1)));
    }

    /** Uniform double in [0, 1). */
    double
    uniformReal()
    {
        return nextU32() * (1.0 / 4294967296.0);
    }

    /** Uniform double in [lo, hi). */
    double
    uniformReal(double lo, double hi)
    {
        return lo + (hi - lo) * uniformReal();
    }

    /** Normal deviate via Box-Muller. */
    double
    normal(double mean = 0.0, double stddev = 1.0)
    {
        if (have_spare_) {
            have_spare_ = false;
            return mean + stddev * spare_;
        }
        double u, v, s;
        do {
            u = 2.0 * uniformReal() - 1.0;
            v = 2.0 * uniformReal() - 1.0;
            s = u * u + v * v;
        } while (s >= 1.0 || s == 0.0);
        double mul = std::sqrt(-2.0 * std::log(s) / s);
        spare_ = v * mul;
        have_spare_ = true;
        return mean + stddev * u * mul;
    }

    /** Exponential deviate with the given rate (1/mean). */
    double
    exponential(double rate)
    {
        double u;
        do {
            u = uniformReal();
        } while (u <= 0.0);
        return -std::log(u) / rate;
    }

    /** Bernoulli draw with probability p of true. */
    bool
    bernoulli(double p)
    {
        return uniformReal() < p;
    }

    /**
     * Poisson deviate with the given mean.
     *
     * Small means use Knuth's product method run in log space, so it
     * cannot underflow (the naive exp(-mean) product caps counts near
     * 745 once exp(-mean) flushes to zero) and uniform draws of
     * exactly 0.0 are rejected rather than terminating the product
     * early. Large means switch to a rounded normal approximation
     * N(mean, mean) clamped at zero — the error is far below
     * sampling noise at that size. Deterministic per seed.
     */
    uint64_t
    poisson(double mean)
    {
        if (mean <= 0.0)
            return 0;
        if (mean < kPoissonNormalThreshold) {
            uint64_t count = 0;
            double log_p = 0.0;
            for (;;) {
                double u;
                do {
                    u = uniformReal();
                } while (u <= 0.0);
                log_p += std::log(u);
                if (log_p < -mean)
                    return count;
                ++count;
            }
        }
        const double draw = normal(mean, std::sqrt(mean));
        if (draw <= 0.0)
            return 0;
        return static_cast<uint64_t>(std::llround(draw));
    }

    /** Mean at which poisson() switches to the normal approximation. */
    static constexpr double kPoissonNormalThreshold = 64.0;

    /** Derive an independent child generator (for per-entity streams). */
    Rng
    fork(uint64_t salt)
    {
        return Rng(nextU64() ^ (salt * 0x9e3779b97f4a7c15ULL),
                   nextU64() | 1u);
    }

  private:
    uint64_t state_;
    uint64_t inc_;
    double spare_ = 0.0;
    bool have_spare_ = false;
};

} // namespace wsva

#endif // WSVA_COMMON_RNG_H
