/**
 * @file
 * Status-message and error-handling helpers.
 *
 * Follows the gem5 convention: panic() is for internal invariant
 * violations (aborts, may dump core), fatal() is for unrecoverable
 * user/configuration errors (clean exit(1)), warn()/inform() report
 * conditions without stopping the run.
 */

#ifndef WSVA_COMMON_LOGGING_H
#define WSVA_COMMON_LOGGING_H

#include <cstdarg>
#include <functional>
#include <string>

namespace wsva {

/** printf-style formatting into a std::string. */
std::string strformat(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** vprintf-style formatting into a std::string. */
std::string vstrformat(const char *fmt, va_list args);

/**
 * A log sink receives every emitted line as (severity tag, message).
 * The default sink writes "tag: message" to stderr.
 */
using LogSinkFn =
    std::function<void(const char *tag, const std::string &msg)>;

/**
 * Replace the process-wide log sink (thread-safe). An empty function
 * restores the default stderr sink. Tests use this to capture and
 * assert on log output; long-running drivers can route logs into
 * their own telemetry. Note that fatal()/panic() still terminate
 * after the sink call.
 */
void setLogSink(LogSinkFn sink);

/** Restore the default stderr sink. */
void resetLogSink();

/**
 * Forget which warn() messages have been seen (the duplicate
 * rate-limit state). Tests call this for isolation.
 */
void resetWarnRateLimit();

namespace detail {
/** Emit one log line with the given severity tag via the sink. */
void logLine(const char *tag, const std::string &msg);
} // namespace detail

/** Report normal operating status; no connotation of misbehaviour. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/**
 * Report a suspicious-but-survivable condition. Identical repeated
 * messages are rate-limited: the first occurrence is emitted, then
 * only every power-of-ten repetition (10th, 100th, ...) with a
 * "(seen N times)" suffix — a warn in a per-tick or per-step loop
 * cannot flood the log.
 */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/**
 * Terminate due to an unrecoverable user/configuration error.
 * Calls exit(1); never returns.
 */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Terminate due to an internal bug (a condition that should never
 * happen regardless of input). Calls abort(); never returns.
 */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** panic() unless the condition holds. Cheap enough to keep in release. */
#define WSVA_ASSERT(cond, ...)                                              \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::wsva::panic("assertion '%s' failed at %s:%d: %s", #cond,      \
                          __FILE__, __LINE__,                               \
                          ::wsva::strformat(__VA_ARGS__).c_str());          \
        }                                                                   \
    } while (0)

} // namespace wsva

#endif // WSVA_COMMON_LOGGING_H
