/**
 * @file
 * Open-addressing hash map from uint64 keys to small values.
 *
 * Built for per-upload bookkeeping on simulator hot paths (one insert
 * per submission, one find+erase per completion, tens of thousands of
 * operations per run): `std::unordered_map` spends most of such a
 * workload on node allocation and pointer chasing. This map keeps
 * slots in one contiguous array with Robin Hood linear probing and
 * shift-back deletion (no tombstones, so probe chains never degrade),
 * and grows by doubling at 50% load.
 *
 * Deliberately minimal: no iterators, no pointer stability across
 * mutations (a pointer from find() is valid only until the next
 * insert/erase/clear), keys are uint64 only. Single-threaded — the
 * simulators mutate it from the tick loop only.
 */

#ifndef WSVA_COMMON_FLAT_MAP_H
#define WSVA_COMMON_FLAT_MAP_H

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace wsva {

/** Open-addressing uint64 -> V map; see file comment for contract. */
template <typename V>
class FlatMap64
{
  public:
    FlatMap64() { slots_.resize(kMinCapacity); }

    size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    void clear()
    {
        slots_.assign(slots_.size(), Slot{});
        size_ = 0;
    }

    /**
     * The value for @p key, or nullptr. The pointer is invalidated by
     * the next mutating call.
     */
    V *find(uint64_t key)
    {
        const size_t i = probe(key);
        return i != kNotFound ? &slots_[i].val : nullptr;
    }
    const V *find(uint64_t key) const
    {
        const size_t i = probe(key);
        return i != kNotFound ? &slots_[i].val : nullptr;
    }

    /** Insert @p key or overwrite its value. */
    void insertOrAssign(uint64_t key, V val)
    {
        if ((size_ + 1) * 2 > slots_.size())
            grow();
        const size_t at = probe(key);
        if (at != kNotFound) {
            slots_[at].val = std::move(val);
            return;
        }
        // Robin Hood insertion: when the incoming element is further
        // from its home than the resident, the resident moves on.
        // Keeps every cluster sorted by probe distance, which is what
        // lets erase() stop at the first at-home element.
        uint64_t k = key;
        V v = std::move(val);
        size_t i = home(k);
        size_t dist = 0;
        while (slots_[i].full) {
            const size_t d = (i - home(slots_[i].key)) & mask();
            if (d < dist) {
                std::swap(k, slots_[i].key);
                std::swap(v, slots_[i].val);
                dist = d;
            }
            i = (i + 1) & mask();
            ++dist;
        }
        slots_[i].key = k;
        slots_[i].val = std::move(v);
        slots_[i].full = true;
        ++size_;
    }

    /** @return true when @p key was present and is now removed. */
    bool erase(uint64_t key)
    {
        size_t i = probe(key);
        if (i == kNotFound)
            return false;
        // Shift-back deletion: pull successors back one slot until an
        // empty slot or an element already at its home position. With
        // roughly-sequential keys every element sits at home, so the
        // common erase is O(1) — the FIFO submit/complete pattern
        // would otherwise scan the whole live cluster per erase.
        size_t j = (i + 1) & mask();
        while (slots_[j].full &&
               ((j - home(slots_[j].key)) & mask()) > 0) {
            slots_[i].key = slots_[j].key;
            slots_[i].val = std::move(slots_[j].val);
            i = j;
            j = (j + 1) & mask();
        }
        slots_[i] = Slot{};
        --size_;
        return true;
    }

  private:
    struct Slot
    {
        uint64_t key = 0;
        V val{};
        bool full = false;
    };

    static constexpr size_t kMinCapacity = 64; //!< Power of two.

    size_t mask() const { return slots_.size() - 1; }

    /**
     * Identity hash, on purpose: the clients key by simulator step
     * ids, which are roughly sequential, so identity placement gives
     * contiguous slot access (the same property that makes libstdc++
     * unordered_map fast here — std::hash<uint64_t> is identity) and
     * zero collisions in the common case. A scrambling hash measured
     * ~2x slower on the SLO churn pattern purely from cache misses.
     * Adversarially strided keys degrade to longer probe chains but
     * stay correct (load is capped at 50%, so chains terminate).
     */
    size_t home(uint64_t key) const
    {
        return static_cast<size_t>(key) & mask();
    }

    static constexpr size_t kNotFound = ~static_cast<size_t>(0);

    /**
     * Slot of @p key, or kNotFound. Robin Hood ordering bounds the
     * scan: once the probe distance exceeds the resident element's,
     * the key cannot be further along the chain.
     */
    size_t probe(uint64_t key) const
    {
        size_t i = home(key);
        size_t dist = 0;
        while (slots_[i].full) {
            if (slots_[i].key == key)
                return i;
            if (((i - home(slots_[i].key)) & mask()) < dist)
                return kNotFound;
            i = (i + 1) & mask();
            ++dist;
        }
        return kNotFound;
    }

    void grow()
    {
        std::vector<Slot> old = std::move(slots_);
        slots_.assign(old.size() * 2, Slot{});
        size_ = 0;
        for (Slot &s : old)
            if (s.full)
                insertOrAssign(s.key, std::move(s.val));
    }

    std::vector<Slot> slots_;
    size_t size_ = 0;
};

} // namespace wsva

#endif // WSVA_COMMON_FLAT_MAP_H
