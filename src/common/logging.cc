#include "common/logging.h"

#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

namespace wsva {

namespace {

/** Guards the sink pointer; function-local so early logging works. */
std::mutex &
sinkMutex()
{
    static std::mutex m;
    return m;
}

LogSinkFn &
sinkRef()
{
    static LogSinkFn sink;
    return sink;
}

/** Guards the duplicate-warn bookkeeping. */
std::mutex &
warnMutex()
{
    static std::mutex m;
    return m;
}

std::unordered_map<std::string, uint64_t> &
warnCounts()
{
    static std::unordered_map<std::string, uint64_t> counts;
    return counts;
}

/** Bound on distinct tracked messages before the state resets. */
constexpr size_t kMaxTrackedWarns = 4096;

/** Emit the 1st occurrence, then only the 10th, 100th, 1000th, ... */
bool
shouldEmitNth(uint64_t n)
{
    if (n == 1)
        return true;
    for (uint64_t t = 10; t <= n; t *= 10) {
        if (t == n)
            return true;
    }
    return false;
}

} // namespace

std::string
vstrformat(const char *fmt, va_list args)
{
    va_list args_copy;
    va_copy(args_copy, args);
    int needed = std::vsnprintf(nullptr, 0, fmt, args_copy);
    va_end(args_copy);
    if (needed < 0)
        return "<format error>";
    std::string out(static_cast<size_t>(needed), '\0');
    std::vsnprintf(out.data(), out.size() + 1, fmt, args);
    return out;
}

std::string
strformat(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string out = vstrformat(fmt, args);
    va_end(args);
    return out;
}

void
setLogSink(LogSinkFn sink)
{
    std::lock_guard<std::mutex> lock(sinkMutex());
    sinkRef() = std::move(sink);
}

void
resetLogSink()
{
    setLogSink(LogSinkFn{});
}

void
resetWarnRateLimit()
{
    std::lock_guard<std::mutex> lock(warnMutex());
    warnCounts().clear();
}

namespace detail {

void
logLine(const char *tag, const std::string &msg)
{
    // Copy the sink out so a slow sink does not serialize loggers
    // and a sink that logs cannot self-deadlock.
    LogSinkFn sink;
    {
        std::lock_guard<std::mutex> lock(sinkMutex());
        sink = sinkRef();
    }
    if (sink) {
        sink(tag, msg);
        return;
    }
    std::fprintf(stderr, "%s: %s\n", tag, msg.c_str());
}

} // namespace detail

void
inform(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    detail::logLine("info", vstrformat(fmt, args));
    va_end(args);
}

void
warn(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string msg = vstrformat(fmt, args);
    va_end(args);

    uint64_t seen = 0;
    {
        std::lock_guard<std::mutex> lock(warnMutex());
        auto &counts = warnCounts();
        if (counts.size() >= kMaxTrackedWarns &&
            counts.find(msg) == counts.end()) {
            counts.clear(); // Bounded state; restart suppression.
        }
        seen = ++counts[msg];
    }
    if (!shouldEmitNth(seen))
        return;
    if (seen > 1)
        msg += strformat(" (seen %llu times)",
                         static_cast<unsigned long long>(seen));
    detail::logLine("warn", msg);
}

void
fatal(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    detail::logLine("fatal", vstrformat(fmt, args));
    va_end(args);
    std::exit(1);
}

void
panic(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    detail::logLine("panic", vstrformat(fmt, args));
    va_end(args);
    std::abort();
}

} // namespace wsva
