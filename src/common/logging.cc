#include "common/logging.h"

#include <cstdio>
#include <cstdlib>
#include <vector>

namespace wsva {

std::string
vstrformat(const char *fmt, va_list args)
{
    va_list args_copy;
    va_copy(args_copy, args);
    int needed = std::vsnprintf(nullptr, 0, fmt, args_copy);
    va_end(args_copy);
    if (needed < 0)
        return "<format error>";
    std::string out(static_cast<size_t>(needed), '\0');
    std::vsnprintf(out.data(), out.size() + 1, fmt, args);
    return out;
}

std::string
strformat(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string out = vstrformat(fmt, args);
    va_end(args);
    return out;
}

namespace detail {

void
logLine(const char *tag, const std::string &msg)
{
    std::fprintf(stderr, "%s: %s\n", tag, msg.c_str());
}

} // namespace detail

void
inform(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    detail::logLine("info", vstrformat(fmt, args));
    va_end(args);
}

void
warn(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    detail::logLine("warn", vstrformat(fmt, args));
    va_end(args);
}

void
fatal(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    detail::logLine("fatal", vstrformat(fmt, args));
    va_end(args);
    std::exit(1);
}

void
panic(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    detail::logLine("panic", vstrformat(fmt, args));
    va_end(args);
    std::abort();
}

} // namespace wsva
