#include "common/profiler.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <deque>
#include <map>
#include <mutex>
#include <thread>

#include "common/logging.h"
#include "common/metrics.h"

namespace wsva::prof {

namespace {

double
toMs(uint64_t ns)
{
    return static_cast<double>(ns) / 1e6;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '"' || c == '\\')
            out.push_back('\\');
        out.push_back(c);
    }
    return out;
}

}  // namespace

uint64_t
nowNs()
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

ProfileRegistry::ThreadBlock::ThreadBlock()
{
    for (int i = 0; i < kMaxPhases; ++i) {
        incl_ns[i].store(0, std::memory_order_relaxed);
        child_ns[i].store(0, std::memory_order_relaxed);
        calls[i].store(0, std::memory_order_relaxed);
    }
    for (int i = 0; i < kMaxStackDepth; ++i)
        stack[i].store(-1, std::memory_order_relaxed);
    std::memset(skip, 0, sizeof(skip));
    name[0] = '\0';
}

struct ProfileRegistry::Impl {
    mutable std::mutex mu;                       // phase table + threads
    std::string phase_names[kMaxPhases];
    std::deque<std::unique_ptr<ThreadBlock>> threads;  // never freed

    // Sampler-owned accumulators.  sample_mu guards the collapsed map
    // and leaf counts against /profilez readers; only the sampler
    // thread writes.
    mutable std::mutex sample_mu;
    uint64_t leaf_samples[kMaxPhases] = {};
    std::map<std::string, uint64_t> collapsed;   // "a;b;c" -> samples
    uint64_t total_samples = 0;

    std::thread sampler;

    // Double-buffered published snapshot (FleetHealthBoard pattern).
    mutable SpinLock board_lock;
    std::shared_ptr<const ProfileSnapshot> board =
        std::make_shared<const ProfileSnapshot>();
};

ProfileRegistry &
ProfileRegistry::instance()
{
    static ProfileRegistry *g = new ProfileRegistry();  // never destroyed
    return *g;
}

ProfileRegistry::ProfileRegistry() : impl_(new Impl) {}

ProfileRegistry::~ProfileRegistry()
{
    stopSampler();
    delete impl_;
}

int
ProfileRegistry::intern(const char *path)
{
    if (path == nullptr || path[0] == '\0')
        return -1;
    std::lock_guard<std::mutex> lock(impl_->mu);
    const int n = phase_count_.load(std::memory_order_relaxed);
    for (int i = 0; i < n; ++i) {
        if (impl_->phase_names[i] == path)
            return i;
    }
    if (n >= kMaxPhases)
        return -1;
    impl_->phase_names[n] = path;
    phase_count_.store(n + 1, std::memory_order_release);
    return n;
}

std::string
ProfileRegistry::phaseName(int id) const
{
    if (id < 0 || id >= phase_count_.load(std::memory_order_acquire))
        return "";
    // phase_names[id] is written once before the release store that
    // made `id` visible and is immutable afterwards.
    return impl_->phase_names[id];
}

ProfileRegistry::ThreadBlock *
ProfileRegistry::registerThread()
{
    std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->threads.push_back(std::make_unique<ThreadBlock>());
    ThreadBlock *b = impl_->threads.back().get();
    std::snprintf(b->name, sizeof(b->name), "t%zu",
                  impl_->threads.size() - 1);
    return b;
}

ProfileRegistry::ThreadBlock &
ProfileRegistry::tls()
{
    thread_local ThreadBlock *block = instance().registerThread();
    return *block;
}

void
ProfileRegistry::setThreadName(const std::string &name)
{
    ThreadBlock &b = tls();
    std::lock_guard<std::mutex> lock(impl_->mu);
    std::snprintf(b.name, sizeof(b.name), "%s", name.c_str());
}

void
ProfScope::enter(int phase)
{
    ProfileRegistry::ThreadBlock &b = ProfileRegistry::tls();
    const int d = b.depth.load(std::memory_order_relaxed);
    block_ = &b;
    phase_ = phase;
    depth_ = d;
    if (d < kMaxStackDepth) {
        // Publish the slot before bumping depth so the sampler only
        // ever reads initialized entries.
        b.stack[d].store(phase, std::memory_order_relaxed);
        b.depth.store(d + 1, std::memory_order_release);
    }
    start_ns_ = nowNs();
}

void
ProfScope::leave()
{
    const uint64_t elapsed = nowNs() - start_ns_;
    ProfileRegistry::ThreadBlock &b = *block_;
    b.incl_ns[phase_].fetch_add(elapsed, std::memory_order_relaxed);
    b.calls[phase_].fetch_add(1, std::memory_order_relaxed);
    if (depth_ > 0 && depth_ <= kMaxStackDepth) {
        const int parent =
            b.stack[depth_ - 1].load(std::memory_order_relaxed);
        if (parent >= 0 && parent < kMaxPhases)
            b.child_ns[parent].fetch_add(elapsed,
                                         std::memory_order_relaxed);
    }
    if (depth_ < kMaxStackDepth)
        b.depth.store(depth_, std::memory_order_release);
}

void
ProfScopeSampled::enter(int phase, uint32_t period)
{
    ProfileRegistry::ThreadBlock &b = ProfileRegistry::tls();
    if (period > 1 && ++b.skip[phase] % period != 0) {
        // Cheap path: exact call count, no clock reads.  The timed
        // 1-in-period call carries this call's share of the time.
        b.calls[phase].fetch_add(1, std::memory_order_relaxed);
        return;
    }
    block_ = &b;
    phase_ = phase;
    scale_ = period;
    const int d = b.depth.load(std::memory_order_relaxed);
    depth_ = d;
    if (d < kMaxStackDepth) {
        b.stack[d].store(phase, std::memory_order_relaxed);
        b.depth.store(d + 1, std::memory_order_release);
    }
    start_ns_ = nowNs();
}

void
ProfScopeSampled::leave()
{
    const uint64_t elapsed = (nowNs() - start_ns_) * scale_;
    ProfileRegistry::ThreadBlock &b = *block_;
    b.incl_ns[phase_].fetch_add(elapsed, std::memory_order_relaxed);
    b.calls[phase_].fetch_add(1, std::memory_order_relaxed);
    if (depth_ > 0 && depth_ <= kMaxStackDepth) {
        const int parent =
            b.stack[depth_ - 1].load(std::memory_order_relaxed);
        if (parent >= 0 && parent < kMaxPhases)
            b.child_ns[parent].fetch_add(elapsed,
                                         std::memory_order_relaxed);
    }
    if (depth_ < kMaxStackDepth)
        b.depth.store(depth_, std::memory_order_release);
}

void
addTime(int phase, uint64_t ns, uint64_t calls)
{
    if (phase < 0 || phase >= kMaxPhases)
        return;
    ProfileRegistry::ThreadBlock &b = ProfileRegistry::tls();
    b.incl_ns[phase].fetch_add(ns, std::memory_order_relaxed);
    b.calls[phase].fetch_add(calls, std::memory_order_relaxed);
    const int d = b.depth.load(std::memory_order_relaxed);
    if (d > 0 && d <= kMaxStackDepth) {
        const int parent = b.stack[d - 1].load(std::memory_order_relaxed);
        if (parent >= 0 && parent < kMaxPhases)
            b.child_ns[parent].fetch_add(ns, std::memory_order_relaxed);
    }
}

ProfileSnapshot
ProfileRegistry::buildSnapshot() const
{
    ProfileSnapshot snap;
    snap.enabled = enabled();
    const int n = phaseCount();
    std::vector<uint64_t> incl(n, 0), child(n, 0), calls(n, 0);

    {
        std::lock_guard<std::mutex> lock(impl_->mu);
        for (const auto &tb : impl_->threads) {
            ThreadStat ts;
            ts.name = tb->name;
            std::vector<uint64_t> texcl(n, 0);
            for (int i = 0; i < n; ++i) {
                const uint64_t in =
                    tb->incl_ns[i].load(std::memory_order_relaxed);
                const uint64_t ch =
                    tb->child_ns[i].load(std::memory_order_relaxed);
                const uint64_t ca =
                    tb->calls[i].load(std::memory_order_relaxed);
                incl[i] += in;
                child[i] += ch;
                calls[i] += ca;
                ts.calls += ca;
                texcl[i] = in > ch ? in - ch : 0;
                ts.busy_ns += texcl[i];
            }
            for (int i = 0; i < n; ++i) {
                if (texcl[i] > ts.top_excl_ns) {
                    ts.top_excl_ns = texcl[i];
                    ts.top_phase = impl_->phase_names[i];
                }
            }
            if (ts.calls > 0)
                snap.threads.push_back(std::move(ts));
        }
    }

    std::vector<uint64_t> samples(n, 0);
    {
        std::lock_guard<std::mutex> lock(impl_->sample_mu);
        snap.total_samples = impl_->total_samples;
        for (int i = 0; i < n; ++i)
            samples[i] = impl_->leaf_samples[i];
    }

    for (int i = 0; i < n; ++i) {
        if (calls[i] == 0 && samples[i] == 0)
            continue;
        PhaseStat ps;
        ps.id = i;
        ps.name = phaseName(i);
        ps.calls = calls[i];
        ps.incl_ns = incl[i];
        ps.excl_ns = incl[i] > child[i] ? incl[i] - child[i] : 0;
        ps.samples = samples[i];
        snap.phases.push_back(std::move(ps));
    }
    std::sort(snap.phases.begin(), snap.phases.end(),
              [](const PhaseStat &a, const PhaseStat &b) {
                  if (a.excl_ns != b.excl_ns)
                      return a.excl_ns > b.excl_ns;
                  return a.name < b.name;
              });
    return snap;
}

ProfileSnapshot
ProfileRegistry::snapshot() const
{
    return buildSnapshot();
}

void
ProfileRegistry::publish()
{
    auto snap = std::make_shared<const ProfileSnapshot>(buildSnapshot());
    std::lock_guard<SpinLock> lock(impl_->board_lock);
    impl_->board = std::move(snap);
}

std::shared_ptr<const ProfileSnapshot>
ProfileRegistry::board() const
{
    std::lock_guard<SpinLock> lock(impl_->board_lock);
    return impl_->board;
}

void
ProfileRegistry::samplerLoop(uint64_t period_us)
{
    setThreadName("prof-sampler");
    // Republish the board a few times per second regardless of the
    // sampling period.
    const uint64_t publish_every_ns = 250ull * 1000 * 1000;
    uint64_t last_publish = nowNs();
    while (sampler_run_.load(std::memory_order_acquire)) {
        if (enabled()) {
            // Collect one stack walk per registered thread.  Pointer
            // list is copied under the registry mutex; the atomics
            // themselves are read relaxed (tearing between depth and
            // slots only mis-attributes a single sample).
            std::vector<ThreadBlock *> blocks;
            {
                std::lock_guard<std::mutex> lock(impl_->mu);
                blocks.reserve(impl_->threads.size());
                for (const auto &tb : impl_->threads)
                    blocks.push_back(tb.get());
            }
            std::lock_guard<std::mutex> lock(impl_->sample_mu);
            for (ThreadBlock *b : blocks) {
                int d = b->depth.load(std::memory_order_acquire);
                if (d <= 0)
                    continue;
                d = std::min(d, kMaxStackDepth);
                std::string key;
                int leaf = -1;
                for (int i = 0; i < d; ++i) {
                    const int id =
                        b->stack[i].load(std::memory_order_relaxed);
                    if (id < 0 || id >= phaseCount())
                        break;
                    if (!key.empty())
                        key.push_back(';');
                    key += phaseName(id);
                    leaf = id;
                }
                if (leaf < 0)
                    continue;
                impl_->leaf_samples[leaf]++;
                impl_->collapsed[key]++;
                impl_->total_samples++;
            }
            sampler_ticks_.fetch_add(1, std::memory_order_relaxed);
        }
        const uint64_t now = nowNs();
        if (now - last_publish >= publish_every_ns) {
            publish();
            last_publish = now;
        }
        std::this_thread::sleep_for(std::chrono::microseconds(period_us));
    }
    publish();
}

void
ProfileRegistry::startSampler(uint64_t period_us)
{
    bool expected = false;
    if (!sampler_run_.compare_exchange_strong(expected, true,
                                              std::memory_order_acq_rel))
        return;
    impl_->sampler = std::thread(
        [this, period_us]() { samplerLoop(period_us); });
}

void
ProfileRegistry::stopSampler()
{
    if (!sampler_run_.exchange(false, std::memory_order_acq_rel))
        return;
    if (impl_->sampler.joinable())
        impl_->sampler.join();
}

std::string
ProfileRegistry::toCollapsed() const
{
    std::string out;
    {
        std::lock_guard<std::mutex> lock(impl_->sample_mu);
        if (impl_->total_samples > 0) {
            out += "# collapsed stacks, value = wall-clock samples\n";
            for (const auto &[key, count] : impl_->collapsed)
                out += strformat("%s %llu\n", key.c_str(),
                                 (unsigned long long)count);
            return out;
        }
    }
    out += "# collapsed stacks, value = exclusive microseconds "
           "(timer fallback; no sampler data)\n";
    ProfileSnapshot snap = buildSnapshot();
    for (const auto &p : snap.phases) {
        if (p.excl_ns == 0)
            continue;
        std::string key = p.name;
        std::replace(key.begin(), key.end(), '/', ';');
        // Ceiling: a phase with any exclusive time keeps a nonzero
        // weight after the ns -> us conversion.
        out += strformat("%s %llu\n", key.c_str(),
                         (unsigned long long)((p.excl_ns + 999) / 1000));
    }
    return out;
}

std::string
ProfileRegistry::toText(int top_k) const
{
    std::shared_ptr<const ProfileSnapshot> published = board();
    ProfileSnapshot live;
    const ProfileSnapshot *snap = published.get();
    if (snap->phases.empty()) {
        live = buildSnapshot();
        snap = &live;
    }

    uint64_t total_excl = 0;
    for (const auto &p : snap->phases)
        total_excl += p.excl_ns;

    std::string out;
    out += strformat("profiler: %s   phases: %zu   samples: %llu\n",
                     enabled() ? "enabled" : "dark", snap->phases.size(),
                     (unsigned long long)snap->total_samples);
    out += "\n  excl_ms     incl_ms        calls  smpl  share  phase\n";
    int shown = 0;
    for (const auto &p : snap->phases) {
        if (shown++ >= top_k)
            break;
        const double share =
            total_excl > 0
                ? 100.0 * static_cast<double>(p.excl_ns) / total_excl
                : 0.0;
        out += strformat("%9.3f  %10.3f  %11llu  %4llu  %4.1f%%  %s\n",
                         toMs(p.excl_ns), toMs(p.incl_ns),
                         (unsigned long long)p.calls,
                         (unsigned long long)p.samples, share,
                         p.name.c_str());
    }
    out += "\nper-thread:\n";
    out += "  busy_ms        calls  thread        top phase\n";
    for (const auto &t : snap->threads) {
        out += strformat("%9.3f  %11llu  %-12s  %s (%.3f ms)\n",
                         toMs(t.busy_ns), (unsigned long long)t.calls,
                         t.name.c_str(), t.top_phase.c_str(),
                         toMs(t.top_excl_ns));
    }
    out += "\nflame export: GET /profilez/flame "
           "(collapsed stacks for flamegraph.pl / speedscope)\n";
    return out;
}

std::string
ProfileRegistry::toJson(int top_k) const
{
    ProfileSnapshot snap = buildSnapshot();
    uint64_t total_excl = 0;
    for (const auto &p : snap.phases)
        total_excl += p.excl_ns;

    std::string out = "{\n";
    out += strformat("      \"enabled\": %s,\n",
                     snap.enabled ? "true" : "false");
    out += strformat("      \"phase_count\": %d,\n", phaseCount());
    out += strformat("      \"total_samples\": %llu,\n",
                     (unsigned long long)snap.total_samples);
    out += strformat("      \"total_excl_ms\": %.3f,\n", toMs(total_excl));
    out += "      \"top\": [";
    int shown = 0;
    for (const auto &p : snap.phases) {
        if (shown >= top_k)
            break;
        out += strformat(
            "%s\n        {\"phase\": \"%s\", \"calls\": %llu, "
            "\"incl_ms\": %.3f, \"excl_ms\": %.3f, \"samples\": %llu, "
            "\"share_pct\": %.2f}",
            shown ? "," : "", jsonEscape(p.name).c_str(),
            (unsigned long long)p.calls, toMs(p.incl_ns), toMs(p.excl_ns),
            (unsigned long long)p.samples,
            total_excl > 0
                ? 100.0 * static_cast<double>(p.excl_ns) / total_excl
                : 0.0);
        ++shown;
    }
    out += shown ? "\n      ]\n    }" : "]\n    }";
    return out;
}

void
ProfileRegistry::exportGauges(MetricsRegistry &registry, int top_k) const
{
    ProfileSnapshot snap = buildSnapshot();
    uint64_t total_excl = 0;
    for (const auto &p : snap.phases)
        total_excl += p.excl_ns;
    registry.setGauge("profile.enabled", snap.enabled ? 1.0 : 0.0);
    registry.setGauge("profile.total_excl_ms", toMs(total_excl));
    registry.setGauge("profile.total_samples",
                      static_cast<double>(snap.total_samples));
    int shown = 0;
    for (const auto &p : snap.phases) {
        if (shown++ >= top_k)
            break;
        std::string key = p.name;
        std::replace(key.begin(), key.end(), '/', '.');
        registry.setGauge("profile." + key + ".excl_ms", toMs(p.excl_ns));
        registry.setGauge("profile." + key + ".calls",
                          static_cast<double>(p.calls));
    }
}

void
ProfileRegistry::reset()
{
    {
        std::lock_guard<std::mutex> lock(impl_->mu);
        for (const auto &tb : impl_->threads) {
            for (int i = 0; i < kMaxPhases; ++i) {
                tb->incl_ns[i].store(0, std::memory_order_relaxed);
                tb->child_ns[i].store(0, std::memory_order_relaxed);
                tb->calls[i].store(0, std::memory_order_relaxed);
            }
        }
    }
    {
        std::lock_guard<std::mutex> lock(impl_->sample_mu);
        std::memset(impl_->leaf_samples, 0, sizeof(impl_->leaf_samples));
        impl_->collapsed.clear();
        impl_->total_samples = 0;
    }
    {
        auto empty = std::make_shared<const ProfileSnapshot>();
        std::lock_guard<SpinLock> lock(impl_->board_lock);
        impl_->board = std::move(empty);
    }
}

}  // namespace wsva::prof
