#include "platform/pipeline.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <functional>
#include <memory>
#include <mutex>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/profiler.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "video/codec/decoder.h"
#include "video/codec/rate_control.h"

namespace wsva::platform {

using wsva::video::codec::decodeChunk;
using wsva::video::codec::encodeSequenceWithStats;
using wsva::video::codec::FirstPassStats;
using wsva::video::codec::RcMode;
using wsva::video::codec::runFirstPass;
using wsva::video::scaleFrame;

std::vector<std::vector<Frame>>
chunkFrames(const std::vector<Frame> &clip, int chunk_frames)
{
    WSVA_ASSERT(chunk_frames > 0, "chunk length must be positive");
    std::vector<std::vector<Frame>> chunks;
    for (size_t start = 0; start < clip.size();
         start += static_cast<size_t>(chunk_frames)) {
        const size_t end = std::min(
            clip.size(), start + static_cast<size_t>(chunk_frames));
        chunks.emplace_back(clip.begin() + static_cast<long>(start),
                            clip.begin() + static_cast<long>(end));
    }
    return chunks;
}

size_t
OutputVariant::totalBytes() const
{
    size_t total = 0;
    for (const auto &c : chunks)
        total += c.bytes.size();
    return total;
}

double
OutputVariant::bitrateBps() const
{
    int shown = 0;
    double fps = 30.0;
    for (const auto &c : chunks) {
        shown += c.shownFrameCount();
        fps = c.fps;
    }
    if (shown == 0)
        return 0.0;
    return static_cast<double>(totalBytes()) * 8.0 * fps / shown;
}

namespace {

/** Monotonic wall-clock seconds for encode-timing histograms. */
double
wallSeconds()
{
    using clock = std::chrono::steady_clock;
    return std::chrono::duration<double>(
               clock::now().time_since_epoch())
        .count();
}

/** Scale one source chunk to a rung and encode it. */
EncodedChunk
encodeChunkJob(const std::vector<Frame> &chunk, Resolution resolution,
               CodecType codec, const PipelineConfig &cfg,
               const std::vector<FirstPassStats> &chunk_stats,
               size_t chunk_idx, double bitrate_scale)
{
    // Coarse pipeline phase; the codec kernels (motion search, DCT,
    // interpolation) nest under it at runtime.
    static const int kPhase = prof::phaseId("pipeline/encode_chunk");
    prof::ProfScope prof_scope(kPhase);
    std::vector<Frame> scaled;
    scaled.reserve(chunk.size());
    for (const auto &f : chunk)
        scaled.push_back(
            scaleFrame(f, resolution.width, resolution.height));

    EncoderConfig ecfg = cfg.encoder;
    ecfg.codec = codec;
    ecfg.width = resolution.width;
    ecfg.height = resolution.height;
    ecfg.target_bitrate_bps *= bitrate_scale;
    ecfg.gop_length =
        std::max(ecfg.gop_length, static_cast<int>(scaled.size()));

    FirstPassStats stats;
    if (ecfg.rc_mode != RcMode::ConstQp) {
        // MOT shares the source-analysis statistics across rungs;
        // the complexity signal is resolution-independent enough.
        WSVA_ASSERT(chunk_idx < chunk_stats.size(),
                    "missing first-pass stats for chunk %zu", chunk_idx);
        stats = chunk_stats[chunk_idx];
    }
    return encodeSequenceWithStats(ecfg, scaled, std::move(stats));
}

} // namespace

TranscodeResult
transcodeSot(const std::vector<Frame> &source, Resolution output,
             CodecType codec, const PipelineConfig &cfg)
{
    return transcodeMot(source, {output}, codec, cfg);
}

TranscodeResult
transcodeMot(const std::vector<Frame> &source,
             const std::vector<Resolution> &outputs, CodecType codec,
             const PipelineConfig &cfg)
{
    WSVA_ASSERT(!source.empty(), "empty source clip");
    WSVA_ASSERT(!outputs.empty(), "no output variants requested");

    const auto chunks = chunkFrames(source, cfg.chunk_frames);
    const size_t jobs = chunks.size() * outputs.size();

    // Root span of the whole upload transcode; the fan-out jobs below
    // parent to it via the thread-pool context propagation.
    wsva::Span transcode_span(cfg.tracer, "transcode", "pipeline");
    transcode_span.arg("chunks", chunks.size());
    transcode_span.arg("rungs", outputs.size());

    // Chunks are closed GOPs and rungs are independent, so the
    // chunk x rung encode jobs are embarrassingly parallel. Every
    // result lands in its pre-assigned slot, so scheduling order
    // never affects the output bytes. Workers come from the caller's
    // pool if one is supplied, else from the shared process-wide
    // pool; parallelFor bounds its helpers by the job count, so small
    // jobs never over-subscribe.
    std::shared_ptr<wsva::ThreadPool> shared;
    wsva::ThreadPool *pool = cfg.pool;
    if (pool == nullptr) {
        const int want_threads =
            wsva::ThreadPool::resolveThreads(cfg.num_threads);
        if (want_threads > 1 && jobs > 1) {
            shared = wsva::ThreadPool::shared(want_threads);
            pool = shared.get();
        }
    }

    const auto runFor = [&](size_t count,
                            const std::function<void(size_t)> &body) {
        if (pool) {
            pool->parallelFor(count, body);
        } else {
            for (size_t i = 0; i < count; ++i)
                body(i);
        }
    };

    if (cfg.metrics != nullptr) {
        cfg.metrics->inc("pipeline.transcodes");
        cfg.metrics->inc("pipeline.chunks", chunks.size());
        cfg.metrics->inc("pipeline.rungs", outputs.size());
        cfg.metrics->inc("pipeline.encode_jobs", jobs);
    }

    // One analysis pass over the source per chunk, shared by every
    // rung of the ladder (compute stats once, then fan out).
    std::vector<FirstPassStats> chunk_stats;
    if (cfg.encoder.rc_mode != RcMode::ConstQp) {
        chunk_stats.resize(chunks.size());
        runFor(chunks.size(), [&](size_t i) {
            wsva::Span span(cfg.tracer, "first_pass", "pipeline");
            span.arg("chunk", i);
            const double t0 = wallSeconds();
            chunk_stats[i] = runFirstPass(chunks[i]);
            if (cfg.metrics != nullptr) {
                cfg.metrics->observe("pipeline.first_pass_ms",
                                     (wallSeconds() - t0) * 1e3, 0.0,
                                     10e3, 100);
            }
        });
    }

    // Bitrate ladder: lower rungs get sublinearly scaled targets.
    double top_pixels = 0.0;
    for (const auto &res : outputs) {
        top_pixels = std::max(
            top_pixels, static_cast<double>(res.width) * res.height);
    }

    TranscodeResult result;
    result.variants.resize(outputs.size());
    for (size_t r = 0; r < outputs.size(); ++r) {
        result.variants[r].resolution = outputs[r];
        result.variants[r].codec = codec;
        result.variants[r].chunks.resize(chunks.size());
    }

    // Rung histogram names are fixed up front so the hot job lambda
    // never formats strings.
    std::vector<std::string> rung_metric;
    if (cfg.metrics != nullptr) {
        for (size_t r = 0; r < outputs.size(); ++r)
            rung_metric.push_back(
                wsva::strformat("pipeline.rung%zu.encode_ms", r));
    }

    runFor(jobs, [&](size_t j) {
        const size_t r = j / chunks.size();
        const size_t i = j % chunks.size();
        wsva::Span span(cfg.tracer, "encode_chunk", "pipeline");
        span.arg("chunk", i);
        span.arg("rung", r);
        const Resolution &res = outputs[r];
        const double rel =
            static_cast<double>(res.width) * res.height / top_pixels;
        const double scale = std::pow(rel, cfg.ladder_bitrate_exponent);
        const double t0 = wallSeconds();
        result.variants[r].chunks[i] = encodeChunkJob(
            chunks[i], res, codec, cfg, chunk_stats, i, scale);
        if (cfg.metrics != nullptr) {
            const double ms = (wallSeconds() - t0) * 1e3;
            cfg.metrics->observe("pipeline.chunk_encode_ms", ms, 0.0,
                                 10e3, 100);
            cfg.metrics->observe(rung_metric[r], ms, 0.0, 10e3, 100);
        }
    });

    // Integrity verification (Section 4.4): every variant must decode
    // and match the input length. Variants verify in parallel; the
    // reported failure is the lowest-index one, matching the serial
    // scan order.
    std::vector<std::string> errors(result.variants.size());
    std::vector<char> failed(result.variants.size(), 0);
    runFor(result.variants.size(), [&](size_t v) {
        wsva::Span span(cfg.tracer, "verify_variant", "pipeline");
        span.arg("rung", v);
        std::string error;
        const auto frames =
            assembleVariant(result.variants[v], source.size(), &error);
        if (frames.empty()) {
            failed[v] = 1;
            errors[v] = std::move(error);
        }
    });
    for (size_t v = 0; v < result.variants.size(); ++v) {
        if (failed[v]) {
            result.integrity_ok = false;
            result.integrity_error = errors[v];
            break;
        }
    }
    return result;
}

std::vector<Frame>
assembleVariant(const OutputVariant &variant, size_t expected_frames,
                std::string *error)
{
    std::vector<Frame> assembled;
    for (size_t i = 0; i < variant.chunks.size(); ++i) {
        auto decoded = decodeChunk(variant.chunks[i].bytes);
        if (!decoded.has_value()) {
            if (error)
                *error = wsva::strformat("chunk %zu failed to decode", i);
            return {};
        }
        for (auto &f : decoded->frames)
            assembled.push_back(std::move(f));
    }
    if (assembled.size() != expected_frames) {
        if (error) {
            *error = wsva::strformat(
                "length mismatch: got %zu frames, expected %zu",
                assembled.size(), expected_frames);
        }
        return {};
    }
    return assembled;
}

} // namespace wsva::platform
