#include "platform/pipeline.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "video/codec/decoder.h"
#include "video/codec/rate_control.h"

namespace wsva::platform {

using wsva::video::codec::decodeChunk;
using wsva::video::codec::encodeSequenceWithStats;
using wsva::video::codec::FirstPassStats;
using wsva::video::codec::RcMode;
using wsva::video::codec::runFirstPass;
using wsva::video::scaleFrame;

std::vector<std::vector<Frame>>
chunkFrames(const std::vector<Frame> &clip, int chunk_frames)
{
    WSVA_ASSERT(chunk_frames > 0, "chunk length must be positive");
    std::vector<std::vector<Frame>> chunks;
    for (size_t start = 0; start < clip.size();
         start += static_cast<size_t>(chunk_frames)) {
        const size_t end = std::min(
            clip.size(), start + static_cast<size_t>(chunk_frames));
        chunks.emplace_back(clip.begin() + static_cast<long>(start),
                            clip.begin() + static_cast<long>(end));
    }
    return chunks;
}

size_t
OutputVariant::totalBytes() const
{
    size_t total = 0;
    for (const auto &c : chunks)
        total += c.bytes.size();
    return total;
}

double
OutputVariant::bitrateBps() const
{
    int shown = 0;
    double fps = 30.0;
    for (const auto &c : chunks) {
        shown += c.shownFrameCount();
        fps = c.fps;
    }
    if (shown == 0)
        return 0.0;
    return static_cast<double>(totalBytes()) * 8.0 * fps / shown;
}

namespace {

/** Encode one scaled chunk sequence into a variant. */
OutputVariant
encodeVariant(const std::vector<std::vector<Frame>> &chunks,
              Resolution resolution, CodecType codec,
              const PipelineConfig &cfg,
              const std::vector<FirstPassStats> &chunk_stats,
              double bitrate_scale)
{
    OutputVariant variant;
    variant.resolution = resolution;
    variant.codec = codec;
    for (size_t i = 0; i < chunks.size(); ++i) {
        std::vector<Frame> scaled;
        scaled.reserve(chunks[i].size());
        for (const auto &f : chunks[i])
            scaled.push_back(
                scaleFrame(f, resolution.width, resolution.height));

        EncoderConfig ecfg = cfg.encoder;
        ecfg.codec = codec;
        ecfg.width = resolution.width;
        ecfg.height = resolution.height;
        ecfg.target_bitrate_bps *= bitrate_scale;
        ecfg.gop_length =
            std::max(ecfg.gop_length, static_cast<int>(scaled.size()));

        FirstPassStats stats;
        if (ecfg.rc_mode != RcMode::ConstQp) {
            // MOT shares the source-analysis statistics across rungs;
            // the complexity signal is resolution-independent enough.
            stats = i < chunk_stats.size() ? chunk_stats[i]
                                           : runFirstPass(scaled);
        }
        variant.chunks.push_back(
            encodeSequenceWithStats(ecfg, scaled, std::move(stats)));
    }
    return variant;
}

} // namespace

TranscodeResult
transcodeSot(const std::vector<Frame> &source, Resolution output,
             CodecType codec, const PipelineConfig &cfg)
{
    return transcodeMot(source, {output}, codec, cfg);
}

TranscodeResult
transcodeMot(const std::vector<Frame> &source,
             const std::vector<Resolution> &outputs, CodecType codec,
             const PipelineConfig &cfg)
{
    WSVA_ASSERT(!source.empty(), "empty source clip");
    WSVA_ASSERT(!outputs.empty(), "no output variants requested");

    const auto chunks = chunkFrames(source, cfg.chunk_frames);

    // One analysis pass over the source per chunk, shared by rungs.
    std::vector<FirstPassStats> chunk_stats;
    if (cfg.encoder.rc_mode != RcMode::ConstQp) {
        chunk_stats.reserve(chunks.size());
        for (const auto &chunk : chunks)
            chunk_stats.push_back(runFirstPass(chunk));
    }

    // Bitrate ladder: lower rungs get sublinearly scaled targets.
    double top_pixels = 0.0;
    for (const auto &res : outputs) {
        top_pixels = std::max(
            top_pixels, static_cast<double>(res.width) * res.height);
    }

    TranscodeResult result;
    for (const auto &res : outputs) {
        const double rel =
            static_cast<double>(res.width) * res.height / top_pixels;
        const double scale =
            std::pow(rel, cfg.ladder_bitrate_exponent);
        result.variants.push_back(encodeVariant(chunks, res, codec, cfg,
                                                chunk_stats, scale));
    }

    // Integrity verification (Section 4.4): every variant must decode
    // and match the input length.
    for (const auto &variant : result.variants) {
        std::string error;
        const auto frames =
            assembleVariant(variant, source.size(), &error);
        if (frames.empty()) {
            result.integrity_ok = false;
            result.integrity_error = error;
            break;
        }
    }
    return result;
}

std::vector<Frame>
assembleVariant(const OutputVariant &variant, size_t expected_frames,
                std::string *error)
{
    std::vector<Frame> assembled;
    for (size_t i = 0; i < variant.chunks.size(); ++i) {
        auto decoded = decodeChunk(variant.chunks[i].bytes);
        if (!decoded.has_value()) {
            if (error)
                *error = wsva::strformat("chunk %zu failed to decode", i);
            return {};
        }
        for (auto &f : decoded->frames)
            assembled.push_back(std::move(f));
    }
    if (assembled.size() != expected_frames) {
        if (error) {
            *error = wsva::strformat(
                "length mismatch: got %zu frames, expected %zu",
                assembled.size(), expected_frames);
        }
        return {};
    }
    return assembled;
}

} // namespace wsva::platform
