/**
 * @file
 * Per-title dynamic optimization (Section 2.1: "advanced encoding
 * systems may do multiple complete passes ... additional analysis
 * (e.g., rate quality curves for individual videos at multiple
 * operating points) to produce better quality/compression trade-offs
 * at additional computational cost").
 *
 * The optimizer encodes a clip at several quantizers, builds its
 * operational rate-quality curve, and picks the cheapest operating
 * point meeting a quality target (or the best quality under a rate
 * cap). This is the "extra processing" the popularity policy spends
 * on the most-watched bucket — exactly the compute that only became
 * affordable at upload time with VCUs (Section 4.5).
 */

#ifndef WSVA_PLATFORM_DYNAMIC_OPTIMIZER_H
#define WSVA_PLATFORM_DYNAMIC_OPTIMIZER_H

#include <memory>
#include <vector>

#include "video/codec/codec.h"
#include "video/frame.h"

namespace wsva {
class MetricsRegistry;
class ThreadPool;
class Tracer;
}

namespace wsva::platform {

class RqCache;

/** One probed operating point. */
struct OperatingPoint
{
    int qp = 0;
    double bitrate_bps = 0.0;
    double psnr_db = 0.0;
    wsva::video::codec::EncodedChunk chunk; //!< The actual encode.
};

/** The per-title rate-quality curve. */
struct RateQualityCurve
{
    std::vector<OperatingPoint> points; //!< Sorted by ascending qp.

    /**
     * Cheapest point with psnr >= target; falls back to the highest-
     * quality point when the target is unreachable.
     */
    const OperatingPoint &cheapestAtQuality(double min_psnr_db) const;

    /**
     * Best-quality point with bitrate <= cap; falls back to the
     * cheapest point when even that exceeds the cap.
     */
    const OperatingPoint &bestUnderRate(double max_bitrate_bps) const;
};

/** Optimizer configuration. */
struct DynamicOptimizerConfig
{
    wsva::video::codec::CodecType codec =
        wsva::video::codec::CodecType::VP9;
    bool hardware = true;        //!< VCUs make the probes affordable.
    std::vector<int> probe_qps = {20, 28, 36, 44, 52};
    double fps = 30.0;

    /**
     * Worker threads for the per-QP probe fan-out: 0 = one per
     * hardware thread, 1 = fully serial (no pool). Probes are
     * independent ConstQp encodes landing in pre-assigned slots, so
     * every schedule produces a bit-identical curve.
     */
    int num_threads = 0;

    /**
     * Optional externally owned pool for the fan-out (e.g. the one
     * the transcode pipeline shares). When set it is used as-is and
     * num_threads is ignored; must outlive the call.
     */
    wsva::ThreadPool *pool = nullptr;

    /**
     * Optional metrics sink (not owned; must outlive the call).
     * Records optimizer.{curves_built,probes} counters and the
     * "optimizer.probe_ms" per-probe wall-time histogram.
     */
    wsva::MetricsRegistry *metrics = nullptr;

    /**
     * Optional rate-quality cache (not owned; must outlive the
     * call). Consulted and populated by rateQualityCurveFor();
     * buildRateQualityCurve() always computes.
     */
    RqCache *cache = nullptr;

    /**
     * Optional span tracer (not owned; must outlive the call).
     * rateQualityCurveFor() records a "rq_curve_for" span annotated
     * with the cache outcome; a build records "build_rq_curve" with
     * one "probe_encode" child per quantizer (parented correctly
     * across the pool fan-out).
     */
    wsva::Tracer *tracer = nullptr;
};

/**
 * Probe the clip at every configured quantizer and return its
 * rate-quality curve (each point carries the finished encode, so
 * selecting a point is free). Probe encodes and their PSNR decodes
 * fan out onto the configured thread pool; the result is
 * bit-identical to the serial path.
 */
RateQualityCurve buildRateQualityCurve(
    const std::vector<wsva::video::Frame> &clip,
    const DynamicOptimizerConfig &cfg);

/**
 * Cache-aware entry point: returns the cached curve when cfg.cache
 * holds one for this clip content x codec x probe set, otherwise
 * builds it (parallel fan-out as above) and caches it. Without a
 * cache this is just buildRateQualityCurve behind a shared_ptr.
 */
std::shared_ptr<const RateQualityCurve> rateQualityCurveFor(
    const std::vector<wsva::video::Frame> &clip,
    const DynamicOptimizerConfig &cfg);

} // namespace wsva::platform

#endif // WSVA_PLATFORM_DYNAMIC_OPTIMIZER_H
