/**
 * @file
 * Per-title dynamic optimization (Section 2.1: "advanced encoding
 * systems may do multiple complete passes ... additional analysis
 * (e.g., rate quality curves for individual videos at multiple
 * operating points) to produce better quality/compression trade-offs
 * at additional computational cost").
 *
 * The optimizer encodes a clip at several quantizers, builds its
 * operational rate-quality curve, and picks the cheapest operating
 * point meeting a quality target (or the best quality under a rate
 * cap). This is the "extra processing" the popularity policy spends
 * on the most-watched bucket — exactly the compute that only became
 * affordable at upload time with VCUs (Section 4.5).
 */

#ifndef WSVA_PLATFORM_DYNAMIC_OPTIMIZER_H
#define WSVA_PLATFORM_DYNAMIC_OPTIMIZER_H

#include <vector>

#include "video/codec/codec.h"
#include "video/frame.h"

namespace wsva::platform {

/** One probed operating point. */
struct OperatingPoint
{
    int qp = 0;
    double bitrate_bps = 0.0;
    double psnr_db = 0.0;
    wsva::video::codec::EncodedChunk chunk; //!< The actual encode.
};

/** The per-title rate-quality curve. */
struct RateQualityCurve
{
    std::vector<OperatingPoint> points; //!< Sorted by ascending qp.

    /**
     * Cheapest point with psnr >= target; falls back to the highest-
     * quality point when the target is unreachable.
     */
    const OperatingPoint &cheapestAtQuality(double min_psnr_db) const;

    /**
     * Best-quality point with bitrate <= cap; falls back to the
     * cheapest point when even that exceeds the cap.
     */
    const OperatingPoint &bestUnderRate(double max_bitrate_bps) const;
};

/** Optimizer configuration. */
struct DynamicOptimizerConfig
{
    wsva::video::codec::CodecType codec =
        wsva::video::codec::CodecType::VP9;
    bool hardware = true;        //!< VCUs make the probes affordable.
    std::vector<int> probe_qps = {20, 28, 36, 44, 52};
    double fps = 30.0;
};

/**
 * Probe the clip at every configured quantizer and return its
 * rate-quality curve (each point carries the finished encode, so
 * selecting a point is free).
 */
RateQualityCurve buildRateQualityCurve(
    const std::vector<wsva::video::Frame> &clip,
    const DynamicOptimizerConfig &cfg);

} // namespace wsva::platform

#endif // WSVA_PLATFORM_DYNAMIC_OPTIMIZER_H
