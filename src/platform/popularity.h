/**
 * @file
 * Popularity-tiered processing policy (Section 2.2): video
 * popularity follows a stretched power law with three buckets — very
 * popular videos get extra processing to save egress bandwidth,
 * modestly watched videos get standard treatment, and the long tail
 * is processed to minimize compute/storage while staying playable.
 */

#ifndef WSVA_PLATFORM_POPULARITY_H
#define WSVA_PLATFORM_POPULARITY_H

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "video/codec/codec.h"

namespace wsva::platform {

/** The three treatment buckets. */
enum class PopularityBucket : int {
    Popular = 0,  //!< Top sliver of watch time: spend compute.
    Moderate = 1, //!< Standard treatment.
    LongTail = 2, //!< Minimize cost, keep playable.
};

/** Processing treatment derived from a bucket. */
struct Treatment
{
    std::vector<wsva::video::codec::CodecType> codecs;
    bool two_pass = true;
    int rdo_rounds = 2;
};

/**
 * Draw a predicted watch count from a stretched-exponential
 * popularity model (Guo et al., PODC'08): heavy head, long tail.
 */
uint64_t sampleWatchCount(wsva::Rng &rng);

/** Bucket a video given its (predicted) watch count. */
PopularityBucket bucketForWatchCount(uint64_t watches);

/**
 * Treatment per bucket in the VCU era: VP9 + H.264 at upload for
 * everything but the tail (Section 4.5 — acceleration made VP9 at
 * upload time feasible); the tail keeps H.264-only.
 */
Treatment treatmentFor(PopularityBucket bucket, bool accelerated);

} // namespace wsva::platform

#endif // WSVA_PLATFORM_POPULARITY_H
