/**
 * @file
 * Transcoding pipelines (Figure 2): chunking into closed GOPs,
 * single-output (SOT) and multiple-output (MOT) transcoding over the
 * real codec, chunk assembly, and output integrity checks.
 */

#ifndef WSVA_PLATFORM_PIPELINE_H
#define WSVA_PLATFORM_PIPELINE_H

#include <cstddef>
#include <string>
#include <vector>

#include "video/codec/codec.h"
#include "video/codec/encoder.h"
#include "video/scaler.h"

namespace wsva {
class MetricsRegistry;
class ThreadPool;
class Tracer;
}

namespace wsva::platform {

using wsva::video::Frame;
using wsva::video::Resolution;
using wsva::video::codec::CodecType;
using wsva::video::codec::EncodedChunk;
using wsva::video::codec::EncoderConfig;

/** Split a clip into fixed-size chunks (closed GOPs). */
std::vector<std::vector<Frame>> chunkFrames(const std::vector<Frame> &clip,
                                            int chunk_frames);

/** One encoded output variant (a resolution+codec rung). */
struct OutputVariant
{
    Resolution resolution;
    CodecType codec;
    std::vector<EncodedChunk> chunks;

    /** Total encoded bytes across chunks. */
    size_t totalBytes() const;

    /** Bitrate over the whole stream. */
    double bitrateBps() const;
};

/** Result of transcoding one source clip. */
struct TranscodeResult
{
    std::vector<OutputVariant> variants;
    bool integrity_ok = true;
    std::string integrity_error;
};

/** Encoder template: fields besides size/codec are applied as-is. */
struct PipelineConfig
{
    EncoderConfig encoder;  //!< width/height/codec overwritten per rung.
    int chunk_frames = 30;  //!< Chunk length in frames.

    /**
     * Per-rung bitrate scaling exponent: a rung with p times the
     * pixels of the top rung gets p^exponent times its bitrate
     * (ABR-ladder practice; ~0.75 tracks how perceptual bitrate
     * demand grows sublinearly with resolution).
     */
    double ladder_bitrate_exponent = 0.75;

    /**
     * Worker threads for the chunk x rung encode fan-out: 0 = one per
     * hardware thread, 1 = fully serial (no pool). Chunks are closed
     * GOPs and rungs are independent, so every schedule produces
     * bit-identical output — results are assembled in chunk order
     * regardless of completion order. Workers come from a
     * process-wide pool that is created lazily and reused across
     * transcode calls, so back-to-back short clips do not pay thread
     * creation/join per invocation.
     */
    int num_threads = 0;

    /**
     * Optional externally owned pool for the fan-out (e.g. one shared
     * by a cluster scheduler). When set it is used as-is and
     * num_threads is ignored; when null, the process-wide pool sized
     * by num_threads is used. The pool must outlive the transcode
     * call.
     */
    wsva::ThreadPool *pool = nullptr;

    /**
     * Optional metrics sink (not owned; must outlive the call). When
     * set, transcodes record per-chunk encode wall time into the
     * "pipeline.chunk_encode_ms" histogram, per-rung histograms
     * "pipeline.rung<N>.encode_ms", first-pass analysis timings, and
     * job/chunk/rung counters. The registry is thread-safe, so the
     * pool fan-out records concurrently.
     */
    wsva::MetricsRegistry *metrics = nullptr;

    /**
     * Optional span tracer (not owned; must outlive the call). When
     * set and enabled, a transcode records a "transcode" root span
     * with child spans per first-pass analysis, per chunk x rung
     * encode job (parented correctly across the pool fan-out), and
     * per-variant integrity verification. Null or disabled costs one
     * predictable branch per would-be span.
     */
    wsva::Tracer *tracer = nullptr;
};

/**
 * Single-output transcoding: decode -> scale -> encode, one variant
 * (Figure 2a). The input is raw frames here (the upload decode is
 * the caller's concern in the examples; chunking still applies).
 */
TranscodeResult transcodeSot(const std::vector<Frame> &source,
                             Resolution output, CodecType codec,
                             const PipelineConfig &cfg);

/**
 * Multiple-output transcoding: decode once, scale to every rung at
 * or below the input, encode all variants (Figure 2b). First-pass
 * statistics are shared across rungs, as the paper notes MOT enables
 * "efficient sharing of control parameters obtained by analysis of
 * the source".
 */
TranscodeResult transcodeMot(const std::vector<Frame> &source,
                             const std::vector<Resolution> &outputs,
                             CodecType codec, const PipelineConfig &cfg);

/**
 * Reassemble a variant into displayed frames, verifying the
 * high-level integrity checks (chunk decodability, total length
 * matches the input; Section 4.4). Returns empty on failure.
 */
std::vector<Frame> assembleVariant(const OutputVariant &variant,
                                   size_t expected_frames,
                                   std::string *error = nullptr);

} // namespace wsva::platform

#endif // WSVA_PLATFORM_PIPELINE_H
