/**
 * @file
 * Sharded LRU cache of finished rate-quality curves.
 *
 * Section 4.5: VCUs made per-title dynamic optimization affordable at
 * upload time for the popular bucket — but affordable still means
 * |probe_qps| full encodes plus decodes per clip. Popular uploads are
 * exactly the ones that get re-processed (ladder changes, codec
 * rollouts, re-ingest after edits), so the platform keeps finished
 * curves keyed by clip content: a re-probe of unchanged content is a
 * lookup, not an encode burst.
 *
 * Keys are content-derived (clip fingerprint x codec x probe-set
 * signature), so any byte change in the source or any change to the
 * probed operating points misses cleanly. The cache is sharded — each
 * shard has its own lock, LRU list, and byte budget — so concurrent
 * optimizer calls from a thread pool do not serialize on one mutex.
 * Capacity is accounted in bytes (curves carry the finished encodes,
 * which dominate their footprint). Hit/miss/eviction/byte counters
 * are registered in a MetricsRegistry when one is supplied.
 */

#ifndef WSVA_PLATFORM_RQ_CACHE_H
#define WSVA_PLATFORM_RQ_CACHE_H

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/metrics.h"
#include "platform/dynamic_optimizer.h"
#include "video/frame.h"

namespace wsva {
class Tracer;
}

namespace wsva::platform {

/** Content-derived cache key. */
struct RqCacheKey
{
    uint64_t clip_fingerprint = 0; //!< Hash of the source pixels.
    wsva::video::codec::CodecType codec =
        wsva::video::codec::CodecType::VP9;
    uint64_t probe_signature = 0; //!< Hash of the probe set (qps/fps/hw).

    bool operator==(const RqCacheKey &other) const = default;
};

/** FNV-1a fingerprint of a clip's dimensions and pixel content. */
uint64_t fingerprintClip(const std::vector<wsva::video::Frame> &clip);

/**
 * Signature of the probed operating points: sorted quantizers, fps,
 * and the hardware flag. Two configs probing the same points hash
 * equal regardless of the order probe_qps was written in.
 */
uint64_t probeSignature(const DynamicOptimizerConfig &cfg);

/** Approximate in-memory footprint of a finished curve, in bytes. */
size_t curveFootprintBytes(const RateQualityCurve &curve);

/** Cache configuration. */
struct RqCacheConfig
{
    /** Total byte budget across shards (curves carry full encodes). */
    size_t capacity_bytes = 256ULL << 20;

    /** Lock shards (rounded up to at least 1). */
    size_t shards = 16;

    /**
     * Optional metrics sink (not owned; must outlive the cache).
     * Registers rq_cache.{hits,misses,evictions,insertions} counters
     * and rq_cache.{bytes,entries} gauges.
     */
    wsva::MetricsRegistry *metrics = nullptr;

    /**
     * Optional span tracer (not owned; must outlive the cache).
     * Records instant events "rq_cache.hit" / "rq_cache.miss" on
     * lookups and "rq_cache.insert" / "rq_cache.evict" on stores,
     * each annotated with the clip fingerprint, so a timeline shows
     * where a probe burst was spent versus skipped.
     */
    wsva::Tracer *tracer = nullptr;
};

/** Counter snapshot (works without a registry). */
struct RqCacheStats
{
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;  //!< Entries displaced by the byte budget.
    uint64_t insertions = 0;

    double hitRate() const
    {
        const uint64_t total = hits + misses;
        return total == 0
            ? 0.0
            : static_cast<double>(hits) / static_cast<double>(total);
    }
};

/**
 * Thread-safe sharded LRU of finished rate-quality curves. Curves are
 * held by shared_ptr, so a hit returns without copying and an entry
 * evicted while a caller still uses its curve stays alive for that
 * caller.
 */
class RqCache
{
  public:
    explicit RqCache(RqCacheConfig cfg = {});

    /** The curve for @p key, or nullptr on miss. Promotes to MRU. */
    std::shared_ptr<const RateQualityCurve> get(const RqCacheKey &key);

    /**
     * Insert (or refresh) @p curve under @p key, evicting LRU entries
     * of the shard until its byte budget holds. A curve larger than a
     * whole shard's budget is not cached.
     */
    void put(const RqCacheKey &key,
             std::shared_ptr<const RateQualityCurve> curve);

    RqCacheStats stats() const;

    /** Bytes currently held across shards. */
    size_t sizeBytes() const;

    /** Entries currently held across shards. */
    size_t entryCount() const;

    /** Drop every entry (counters are kept). */
    void clear();

    size_t capacityBytes() const { return capacity_bytes_; }

  private:
    struct KeyHash
    {
        size_t operator()(const RqCacheKey &key) const;
    };

    struct Entry
    {
        RqCacheKey key;
        std::shared_ptr<const RateQualityCurve> curve;
        size_t bytes = 0;
    };

    /** One lock + LRU list + index; MRU at the list front. */
    struct Shard
    {
        mutable std::mutex mutex;
        std::list<Entry> lru;
        std::unordered_map<RqCacheKey, std::list<Entry>::iterator,
                           KeyHash>
            index;
        size_t bytes = 0;
    };

    Shard &shardFor(const RqCacheKey &key);
    void publishGauges();

    size_t capacity_bytes_;
    size_t shard_capacity_bytes_;
    std::vector<std::unique_ptr<Shard>> shards_;

    std::atomic<uint64_t> hits_{0};
    std::atomic<uint64_t> misses_{0};
    std::atomic<uint64_t> evictions_{0};
    std::atomic<uint64_t> insertions_{0};

    wsva::MetricsRegistry *metrics_ = nullptr;
    wsva::Tracer *tracer_ = nullptr;
    wsva::CounterHandle hit_counter_;
    wsva::CounterHandle miss_counter_;
    wsva::CounterHandle eviction_counter_;
    wsva::CounterHandle insertion_counter_;
};

} // namespace wsva::platform

#endif // WSVA_PLATFORM_RQ_CACHE_H
