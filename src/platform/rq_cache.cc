#include "platform/rq_cache.h"

#include <algorithm>

#include "common/logging.h"
#include "common/trace.h"

namespace wsva::platform {

namespace {

constexpr uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr uint64_t kFnvPrime = 1099511628211ULL;

uint64_t
fnv1a(uint64_t hash, const uint8_t *data, size_t len)
{
    for (size_t i = 0; i < len; ++i) {
        hash ^= data[i];
        hash *= kFnvPrime;
    }
    return hash;
}

uint64_t
fnv1aU64(uint64_t hash, uint64_t value)
{
    for (int b = 0; b < 8; ++b) {
        hash ^= (value >> (b * 8)) & 0xffu;
        hash *= kFnvPrime;
    }
    return hash;
}

/** splitmix64 finalizer: spreads key bits for shard selection. */
uint64_t
mix64(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

} // namespace

uint64_t
fingerprintClip(const std::vector<wsva::video::Frame> &clip)
{
    uint64_t hash = kFnvOffset;
    hash = fnv1aU64(hash, clip.size());
    for (const auto &frame : clip) {
        hash = fnv1aU64(hash, static_cast<uint64_t>(frame.width()));
        hash = fnv1aU64(hash, static_cast<uint64_t>(frame.height()));
        for (int p = 0; p < 3; ++p) {
            const auto &data = frame.plane(p).data();
            hash = fnv1a(hash, data.data(), data.size());
        }
    }
    return hash;
}

uint64_t
probeSignature(const DynamicOptimizerConfig &cfg)
{
    std::vector<int> qps = cfg.probe_qps;
    std::sort(qps.begin(), qps.end());
    uint64_t hash = kFnvOffset;
    for (const int qp : qps)
        hash = fnv1aU64(hash, static_cast<uint64_t>(qp));
    uint64_t fps_bits = 0;
    static_assert(sizeof(fps_bits) == sizeof(cfg.fps));
    __builtin_memcpy(&fps_bits, &cfg.fps, sizeof(fps_bits));
    hash = fnv1aU64(hash, fps_bits);
    hash = fnv1aU64(hash, cfg.hardware ? 1 : 0);
    return hash;
}

size_t
curveFootprintBytes(const RateQualityCurve &curve)
{
    size_t bytes = sizeof(RateQualityCurve);
    for (const auto &point : curve.points) {
        bytes += sizeof(OperatingPoint);
        bytes += point.chunk.bytes.size();
        bytes += point.chunk.frames.size() *
                 sizeof(point.chunk.frames[0]);
    }
    return bytes;
}

size_t
RqCache::KeyHash::operator()(const RqCacheKey &key) const
{
    uint64_t hash = mix64(key.clip_fingerprint);
    hash = mix64(hash ^ key.probe_signature);
    hash = mix64(hash ^ static_cast<uint64_t>(key.codec));
    return static_cast<size_t>(hash);
}

RqCache::RqCache(RqCacheConfig cfg)
    : capacity_bytes_(cfg.capacity_bytes), metrics_(cfg.metrics),
      tracer_(cfg.tracer)
{
    const size_t shard_count = std::max<size_t>(1, cfg.shards);
    shard_capacity_bytes_ =
        std::max<size_t>(1, capacity_bytes_ / shard_count);
    shards_.reserve(shard_count);
    for (size_t s = 0; s < shard_count; ++s)
        shards_.push_back(std::make_unique<Shard>());
    if (metrics_ != nullptr) {
        hit_counter_ = metrics_->counterHandle("rq_cache.hits");
        miss_counter_ = metrics_->counterHandle("rq_cache.misses");
        eviction_counter_ =
            metrics_->counterHandle("rq_cache.evictions");
        insertion_counter_ =
            metrics_->counterHandle("rq_cache.insertions");
        publishGauges();
    }
}

RqCache::Shard &
RqCache::shardFor(const RqCacheKey &key)
{
    return *shards_[KeyHash{}(key) % shards_.size()];
}

std::shared_ptr<const RateQualityCurve>
RqCache::get(const RqCacheKey &key)
{
    Shard &shard = shardFor(key);
    std::shared_ptr<const RateQualityCurve> curve;
    {
        std::lock_guard<std::mutex> lock(shard.mutex);
        auto it = shard.index.find(key);
        if (it != shard.index.end()) {
            shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
            curve = it->second->curve;
        }
    }
    if (curve) {
        hits_.fetch_add(1, std::memory_order_relaxed);
        hit_counter_.inc();
    } else {
        misses_.fetch_add(1, std::memory_order_relaxed);
        miss_counter_.inc();
    }
    if (tracer_ != nullptr && tracer_->enabled()) {
        tracer_->instant(curve ? "rq_cache.hit" : "rq_cache.miss",
                         "rq_cache", "fingerprint",
                         key.clip_fingerprint);
    }
    return curve;
}

void
RqCache::put(const RqCacheKey &key,
             std::shared_ptr<const RateQualityCurve> curve)
{
    WSVA_ASSERT(curve != nullptr, "cannot cache a null curve");
    const size_t bytes = curveFootprintBytes(*curve);
    if (bytes > shard_capacity_bytes_)
        return; // Would evict the whole shard for one entry.

    Shard &shard = shardFor(key);
    uint64_t evicted = 0;
    {
        std::lock_guard<std::mutex> lock(shard.mutex);
        auto it = shard.index.find(key);
        if (it != shard.index.end()) {
            // Refresh in place (same content key, e.g. re-probe).
            shard.bytes -= it->second->bytes;
            it->second->curve = std::move(curve);
            it->second->bytes = bytes;
            shard.bytes += bytes;
            shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
        } else {
            shard.lru.push_front(Entry{key, std::move(curve), bytes});
            shard.index.emplace(key, shard.lru.begin());
            shard.bytes += bytes;
        }
        while (shard.bytes > shard_capacity_bytes_ &&
               shard.lru.size() > 1) {
            const Entry &victim = shard.lru.back();
            shard.bytes -= victim.bytes;
            shard.index.erase(victim.key);
            shard.lru.pop_back();
            ++evicted;
        }
    }
    insertions_.fetch_add(1, std::memory_order_relaxed);
    insertion_counter_.inc();
    if (evicted > 0) {
        evictions_.fetch_add(evicted, std::memory_order_relaxed);
        eviction_counter_.inc(evicted);
    }
    if (tracer_ != nullptr && tracer_->enabled()) {
        tracer_->instant("rq_cache.insert", "rq_cache", "fingerprint",
                         key.clip_fingerprint, "bytes", bytes);
        if (evicted > 0)
            tracer_->instant("rq_cache.evict", "rq_cache", "count",
                             evicted);
    }
    publishGauges();
}

RqCacheStats
RqCache::stats() const
{
    RqCacheStats stats;
    stats.hits = hits_.load(std::memory_order_relaxed);
    stats.misses = misses_.load(std::memory_order_relaxed);
    stats.evictions = evictions_.load(std::memory_order_relaxed);
    stats.insertions = insertions_.load(std::memory_order_relaxed);
    return stats;
}

size_t
RqCache::sizeBytes() const
{
    size_t total = 0;
    for (const auto &shard : shards_) {
        std::lock_guard<std::mutex> lock(shard->mutex);
        total += shard->bytes;
    }
    return total;
}

size_t
RqCache::entryCount() const
{
    size_t total = 0;
    for (const auto &shard : shards_) {
        std::lock_guard<std::mutex> lock(shard->mutex);
        total += shard->lru.size();
    }
    return total;
}

void
RqCache::clear()
{
    for (const auto &shard : shards_) {
        std::lock_guard<std::mutex> lock(shard->mutex);
        shard->lru.clear();
        shard->index.clear();
        shard->bytes = 0;
    }
    publishGauges();
}

void
RqCache::publishGauges()
{
    if (metrics_ == nullptr)
        return;
    metrics_->setGauge("rq_cache.bytes",
                       static_cast<double>(sizeBytes()));
    metrics_->setGauge("rq_cache.entries",
                       static_cast<double>(entryCount()));
    // Hit rate as a scrapable gauge: /varz and /metrics consumers
    // should not have to divide counters themselves.
    const double hits =
        static_cast<double>(hits_.load(std::memory_order_relaxed));
    const double misses =
        static_cast<double>(misses_.load(std::memory_order_relaxed));
    metrics_->setGauge("rq_cache.hit_rate",
                       hits + misses > 0 ? hits / (hits + misses)
                                         : 0.0);
}

} // namespace wsva::platform
