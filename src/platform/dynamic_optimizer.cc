#include "platform/dynamic_optimizer.h"

#include <algorithm>

#include "common/logging.h"
#include "video/codec/decoder.h"
#include "video/codec/encoder.h"
#include "video/metrics.h"

namespace wsva::platform {

using wsva::video::codec::decodeChunkOrDie;
using wsva::video::codec::EncoderConfig;
using wsva::video::codec::encodeSequence;
using wsva::video::codec::RcMode;

const OperatingPoint &
RateQualityCurve::cheapestAtQuality(double min_psnr_db) const
{
    WSVA_ASSERT(!points.empty(), "empty rate-quality curve");
    const OperatingPoint *best = nullptr;
    for (const auto &p : points) {
        if (p.psnr_db >= min_psnr_db &&
            (best == nullptr || p.bitrate_bps < best->bitrate_bps)) {
            best = &p;
        }
    }
    if (best != nullptr)
        return *best;
    // Unreachable target: return the highest-quality point.
    return *std::max_element(points.begin(), points.end(),
                             [](const auto &a, const auto &b) {
                                 return a.psnr_db < b.psnr_db;
                             });
}

const OperatingPoint &
RateQualityCurve::bestUnderRate(double max_bitrate_bps) const
{
    WSVA_ASSERT(!points.empty(), "empty rate-quality curve");
    const OperatingPoint *best = nullptr;
    for (const auto &p : points) {
        if (p.bitrate_bps <= max_bitrate_bps &&
            (best == nullptr || p.psnr_db > best->psnr_db)) {
            best = &p;
        }
    }
    if (best != nullptr)
        return *best;
    return *std::min_element(points.begin(), points.end(),
                             [](const auto &a, const auto &b) {
                                 return a.bitrate_bps < b.bitrate_bps;
                             });
}

RateQualityCurve
buildRateQualityCurve(const std::vector<wsva::video::Frame> &clip,
                      const DynamicOptimizerConfig &cfg)
{
    WSVA_ASSERT(!clip.empty(), "empty clip");
    WSVA_ASSERT(!cfg.probe_qps.empty(), "no probe quantizers");

    RateQualityCurve curve;
    std::vector<int> qps = cfg.probe_qps;
    std::sort(qps.begin(), qps.end());

    for (const int qp : qps) {
        EncoderConfig ecfg;
        ecfg.codec = cfg.codec;
        ecfg.width = clip[0].width();
        ecfg.height = clip[0].height();
        ecfg.fps = cfg.fps;
        ecfg.rc_mode = RcMode::ConstQp;
        ecfg.base_qp = qp;
        ecfg.gop_length = static_cast<int>(clip.size());
        ecfg.hardware = cfg.hardware;

        OperatingPoint point;
        point.qp = qp;
        point.chunk = encodeSequence(ecfg, clip);
        point.bitrate_bps = point.chunk.bitrateBps();
        const auto decoded = decodeChunkOrDie(point.chunk.bytes);
        point.psnr_db = wsva::video::sequencePsnr(clip, decoded.frames);
        curve.points.push_back(std::move(point));
    }
    return curve;
}

} // namespace wsva::platform
