#include "platform/dynamic_optimizer.h"

#include <algorithm>
#include <chrono>
#include <functional>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "platform/rq_cache.h"
#include "video/codec/decoder.h"
#include "video/codec/encoder.h"
#include "video/metrics.h"

namespace wsva::platform {

using wsva::video::codec::decodeChunkOrDie;
using wsva::video::codec::EncoderConfig;
using wsva::video::codec::encodeSequence;
using wsva::video::codec::RcMode;

const OperatingPoint &
RateQualityCurve::cheapestAtQuality(double min_psnr_db) const
{
    WSVA_ASSERT(!points.empty(), "empty rate-quality curve");
    const OperatingPoint *best = nullptr;
    for (const auto &p : points) {
        if (p.psnr_db >= min_psnr_db &&
            (best == nullptr || p.bitrate_bps < best->bitrate_bps)) {
            best = &p;
        }
    }
    if (best != nullptr)
        return *best;
    // Unreachable target: return the highest-quality point.
    return *std::max_element(points.begin(), points.end(),
                             [](const auto &a, const auto &b) {
                                 return a.psnr_db < b.psnr_db;
                             });
}

const OperatingPoint &
RateQualityCurve::bestUnderRate(double max_bitrate_bps) const
{
    WSVA_ASSERT(!points.empty(), "empty rate-quality curve");
    const OperatingPoint *best = nullptr;
    for (const auto &p : points) {
        if (p.bitrate_bps <= max_bitrate_bps &&
            (best == nullptr || p.psnr_db > best->psnr_db)) {
            best = &p;
        }
    }
    if (best != nullptr)
        return *best;
    return *std::min_element(points.begin(), points.end(),
                             [](const auto &a, const auto &b) {
                                 return a.bitrate_bps < b.bitrate_bps;
                             });
}

namespace {

/** Monotonic wall-clock seconds for probe-timing histograms. */
double
wallSeconds()
{
    using clock = std::chrono::steady_clock;
    return std::chrono::duration<double>(
               clock::now().time_since_epoch())
        .count();
}

} // namespace

RateQualityCurve
buildRateQualityCurve(const std::vector<wsva::video::Frame> &clip,
                      const DynamicOptimizerConfig &cfg)
{
    WSVA_ASSERT(!clip.empty(), "empty clip");
    WSVA_ASSERT(!cfg.probe_qps.empty(), "no probe quantizers");

    std::vector<int> qps = cfg.probe_qps;
    std::sort(qps.begin(), qps.end());

    RateQualityCurve curve;
    curve.points.resize(qps.size());

    wsva::Span build_span(cfg.tracer, "build_rq_curve", "optimizer");
    build_span.arg("probes", qps.size());

    // Each probe is an independent ConstQp encode plus its PSNR
    // decode, landing in a pre-assigned slot of the curve — every
    // schedule yields bit-identical points, so the pool fan-out is
    // byte-exact with the serial loop.
    const auto probe = [&](size_t i) {
        wsva::Span span(cfg.tracer, "probe_encode", "optimizer");
        span.arg("qp", static_cast<uint64_t>(qps[i]));
        const double t0 = wallSeconds();
        const int qp = qps[i];
        EncoderConfig ecfg;
        ecfg.codec = cfg.codec;
        ecfg.width = clip[0].width();
        ecfg.height = clip[0].height();
        ecfg.fps = cfg.fps;
        ecfg.rc_mode = RcMode::ConstQp;
        ecfg.base_qp = qp;
        ecfg.gop_length = static_cast<int>(clip.size());
        ecfg.hardware = cfg.hardware;

        OperatingPoint &point = curve.points[i];
        point.qp = qp;
        point.chunk = encodeSequence(ecfg, clip);
        point.bitrate_bps = point.chunk.bitrateBps();
        const auto decoded = decodeChunkOrDie(point.chunk.bytes);
        point.psnr_db = wsva::video::sequencePsnr(clip, decoded.frames);
        if (cfg.metrics != nullptr) {
            cfg.metrics->observe("optimizer.probe_ms",
                                 (wallSeconds() - t0) * 1e3, 0.0, 60e3,
                                 100);
        }
    };

    wsva::ThreadPool *pool = cfg.pool;
    std::shared_ptr<wsva::ThreadPool> shared;
    if (pool == nullptr && qps.size() > 1) {
        const int want =
            wsva::ThreadPool::resolveThreads(cfg.num_threads);
        if (want > 1) {
            shared = wsva::ThreadPool::shared(want);
            pool = shared.get();
        }
    }
    if (pool != nullptr) {
        pool->parallelFor(qps.size(), probe);
    } else {
        for (size_t i = 0; i < qps.size(); ++i)
            probe(i);
    }

    if (cfg.metrics != nullptr) {
        cfg.metrics->inc("optimizer.curves_built");
        cfg.metrics->inc("optimizer.probes", qps.size());
    }
    return curve;
}

std::shared_ptr<const RateQualityCurve>
rateQualityCurveFor(const std::vector<wsva::video::Frame> &clip,
                    const DynamicOptimizerConfig &cfg)
{
    wsva::Span span(cfg.tracer, "rq_curve_for", "optimizer");
    if (cfg.cache == nullptr) {
        return std::make_shared<const RateQualityCurve>(
            buildRateQualityCurve(clip, cfg));
    }
    RqCacheKey key;
    key.clip_fingerprint = fingerprintClip(clip);
    key.codec = cfg.codec;
    key.probe_signature = probeSignature(cfg);
    if (auto cached = cfg.cache->get(key)) {
        span.arg("cache_hit", 1);
        return cached;
    }
    span.arg("cache_hit", 0);
    auto curve = std::make_shared<const RateQualityCurve>(
        buildRateQualityCurve(clip, cfg));
    cfg.cache->put(key, curve);
    return curve;
}

} // namespace wsva::platform
