#include "platform/popularity.h"

#include <cmath>

namespace wsva::platform {

using wsva::video::codec::CodecType;

uint64_t
sampleWatchCount(wsva::Rng &rng)
{
    // Stretched exponential: log(watches) ~ scale * (-log u)^(1/c).
    // c < 1 stretches the tail relative to a pure exponential.
    const double u = std::max(1e-12, rng.uniformReal());
    const double c = 0.55;
    const double scale = 1.8;
    const double lw = scale * std::pow(-std::log(u), 1.0 / c);
    const double watches = std::exp(lw) - 1.0;
    return static_cast<uint64_t>(std::min(watches, 1e12));
}

PopularityBucket
bucketForWatchCount(uint64_t watches)
{
    if (watches >= 100000)
        return PopularityBucket::Popular;
    if (watches >= 100)
        return PopularityBucket::Moderate;
    return PopularityBucket::LongTail;
}

Treatment
treatmentFor(PopularityBucket bucket, bool accelerated)
{
    Treatment t;
    switch (bucket) {
      case PopularityBucket::Popular:
        // Worth extra compute to shave egress: newest codec, full
        // effort. Pre-VCU this ran as batch CPU *after* upload; with
        // VCUs it happens at upload time.
        t.codecs = {CodecType::VP9, CodecType::H264};
        t.two_pass = true;
        t.rdo_rounds = 3;
        break;
      case PopularityBucket::Moderate:
        t.codecs = accelerated
            ? std::vector<CodecType>{CodecType::VP9, CodecType::H264}
            : std::vector<CodecType>{CodecType::H264};
        t.two_pass = true;
        t.rdo_rounds = 2;
        break;
      case PopularityBucket::LongTail:
        t.codecs = {CodecType::H264};
        t.two_pass = accelerated; // Cheap on VCUs, skipped on CPU.
        t.rdo_rounds = 1;
        break;
    }
    return t;
}

} // namespace wsva::platform
