#include "vcu/encoder_core.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "vcu/hlsim.h"
#include "video/frame.h"

namespace wsva::vcu {

namespace {

using wsva::video::codec::CodecType;

/** Deterministic per-MB jitter in [1 - spread, 1 + spread]. */
double
mbJitter(uint64_t seed, uint32_t index, uint32_t salt, double spread)
{
    uint64_t h = seed ^ (static_cast<uint64_t>(index) * 0x9e3779b97f4a7c15ULL)
                 ^ (static_cast<uint64_t>(salt) << 32);
    h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
    h = (h ^ (h >> 27)) * 0x94d049bb133111ebULL;
    const double u =
        static_cast<double>((h >> 33) & 0xffffff) / double(0xffffff);
    return 1.0 - spread + 2.0 * spread * u;
}

} // namespace

EncodeEstimate
EncoderCoreModel::estimate(const EncodeJob &job) const
{
    WSVA_ASSERT(job.width > 0 && job.height > 0 && job.frame_count > 0,
                "bad encode job %dx%d x%d", job.width, job.height,
                job.frame_count);

    const int mb_cols = (job.width + 15) / 16;
    const int mb_rows = (job.height + 15) / 16;
    const uint32_t mbs = static_cast<uint32_t>(mb_cols * mb_rows);

    const double codec_factor =
        job.codec == CodecType::VP9 ? cfg_.vp9_cycle_factor : 1.0;
    const double ref_factor =
        1.0 + cfg_.ref_cycle_factor * std::max(0, job.num_refs - 1);
    const double base = cfg_.base_cycles_per_mb * codec_factor * ref_factor;

    // Per-MB service times for the three Figure-4 macro stages. The
    // entropy stage has the widest mode-dependent variability
    // (Section 3.2: "the wide variety of blocks and modes can lead to
    // significant variability"); FIFOs absorb most of it.
    std::vector<StageSpec> stages = {
        {"motion_rdo", cfg_.fifo_depth},
        {"entropy_decode_tf", cfg_.fifo_depth},
        {"loopfilter_fbc", cfg_.fifo_depth},
    };
    std::vector<std::vector<uint32_t>> service(3);
    for (auto &row : service)
        row.resize(mbs);
    for (uint32_t i = 0; i < mbs; ++i) {
        service[0][i] = static_cast<uint32_t>(
            base * mbJitter(job.seed, i, 0, 0.15));
        service[1][i] = static_cast<uint32_t>(
            0.85 * base * mbJitter(job.seed, i, 1, 0.35));
        service[2][i] = static_cast<uint32_t>(
            0.60 * base * mbJitter(job.seed, i, 2, 0.05));
    }

    const PipelineResult pipe =
        simulatePipeline(stages, service, cfg_.tracer);

    const double hz = cfg_.clock_ghz * 1e9;
    double seconds_per_frame =
        static_cast<double>(pipe.total_cycles) / hz;
    if (job.two_pass) {
        // First analysis pass runs with reduced tools at ~35% cost.
        seconds_per_frame *= 1.35;
    }

    EncodeEstimate est;
    est.seconds = seconds_per_frame * job.frame_count;
    const double total_pixels = static_cast<double>(job.width) *
                                job.height * job.frame_count;
    est.pixels_per_second = total_pixels / est.seconds;
    est.bottleneck_utilization = 0.0;
    for (const auto &st : pipe.stages)
        est.bottleneck_utilization =
            std::max(est.bottleneck_utilization, st.utilization);

    // DRAM traffic: input read + reference reads (FBC-compressed,
    // with a modest re-read factor from window overlap) + reference
    // write (compressed).
    const double frame_bytes = static_cast<double>(
        wsva::video::rawFrameBytes(job.width, job.height));
    const double fps_effective = job.frame_count / est.seconds;
    const double reread = 1.15;
    const double read_bytes_per_frame =
        frame_bytes +
        frame_bytes * job.num_refs * reread / cfg_.fbc_read_ratio;
    const double write_bytes_per_frame =
        frame_bytes / cfg_.fbc_read_ratio;
    est.dram_read_gibps =
        read_bytes_per_frame * fps_effective / double(1ull << 30);
    est.dram_write_gibps =
        write_bytes_per_frame * fps_effective / double(1ull << 30);

    est.realtime = est.seconds <= job.frame_count / job.fps + 1e-9;
    return est;
}

double
EncoderCoreModel::peakPixelRate() const
{
    EncodeJob job;
    job.width = 3840;
    job.height = 2160;
    job.fps = 60.0;
    job.frame_count = 1;
    job.codec = CodecType::VP9;
    job.num_refs = 3;
    return estimate(job).pixels_per_second;
}

double
decodeSeconds(const DecoderCoreConfig &cfg, int width, int height,
              int frame_count)
{
    WSVA_ASSERT(width > 0 && height > 0 && frame_count > 0,
                "bad decode job");
    const double pixels =
        static_cast<double>(width) * height * frame_count;
    return pixels / cfg.pixel_rate;
}

} // namespace wsva::vcu
