#include "vcu/firmware.h"

#include <algorithm>

#include "common/logging.h"

namespace wsva::vcu {

Firmware::Firmware(VcuChip &chip, FirmwareConfig cfg)
    : chip_(&chip), cfg_(cfg)
{
}

int
Firmware::createQueue()
{
    for (size_t i = 0; i < queues_.size(); ++i) {
        if (!queues_[i].alive) {
            queues_[i] = Queue{};
            queues_[i].alive = true;
            return static_cast<int>(i);
        }
    }
    queues_.push_back(Queue{});
    queues_.back().alive = true;
    return static_cast<int>(queues_.size() - 1);
}

void
Firmware::destroyQueue(int q)
{
    WSVA_ASSERT(q >= 0 && static_cast<size_t>(q) < queues_.size() &&
                    queues_[static_cast<size_t>(q)].alive,
                "bad queue handle %d", q);
    queues_[static_cast<size_t>(q)].alive = false;
    queues_[static_cast<size_t>(q)].commands.clear();
}

void
Firmware::enqueue(int q, const Command &cmd)
{
    WSVA_ASSERT(q >= 0 && static_cast<size_t>(q) < queues_.size() &&
                    queues_[static_cast<size_t>(q)].alive,
                "bad queue handle %d", q);
    queues_[static_cast<size_t>(q)].commands.push_back(cmd);
}

bool
Firmware::tryIssueHead(Queue &queue)
{
    if (queue.commands.empty())
        return false;
    Command &cmd = queue.commands.front();
    switch (cmd.kind) {
      case CmdKind::RunOnCore: {
        if (!chip_->submit(cmd.op))
            return false; // DRAM full or chip disabled: retry later.
        op_owner_.emplace_back(cmd.op.id,
                               static_cast<int>(&queue - queues_.data()));
        ++queue.inflight_ops;
        queue.commands.pop_front();
        return true;
      }
      case CmdKind::CopyToDevice:
      case CmdKind::CopyFromDevice:
        copies_.push_back({cmd.id, static_cast<double>(cmd.bytes)});
        queue.commands.pop_front();
        return true;
      case CmdKind::WaitForDone:
        if (queue.inflight_ops > 0)
            return false; // Barrier: wait for outstanding ops.
        queue.commands.pop_front();
        return true;
    }
    return false;
}

void
Firmware::advance(double dt, std::vector<uint64_t> &done)
{
    // Round-robin issue across live queues (fairness + utilization).
    if (!queues_.empty()) {
        bool progress = true;
        while (progress) {
            progress = false;
            for (size_t k = 0; k < queues_.size(); ++k) {
                const size_t qi = (rr_cursor_ + k) % queues_.size();
                auto &queue = queues_[qi];
                if (!queue.alive)
                    continue;
                if (tryIssueHead(queue)) {
                    progress = true;
                    rr_cursor_ = (qi + 1) % queues_.size();
                }
            }
        }
    }

    // Progress copies: the PCIe link is shared evenly.
    if (!copies_.empty()) {
        const double bytes_budget =
            cfg_.pcie_gibps * double(1ull << 30) * dt /
            static_cast<double>(copies_.size());
        for (auto it = copies_.begin(); it != copies_.end();) {
            it->remaining_bytes -= bytes_budget;
            if (it->remaining_bytes <= 0.0) {
                done.push_back(it->id);
                it = copies_.erase(it);
            } else {
                ++it;
            }
        }
    }

    // Progress the chip and retire op completions to their queues.
    std::vector<uint64_t> chip_done;
    chip_->advance(dt, chip_done);
    for (uint64_t id : chip_done) {
        done.push_back(id);
        for (auto it = op_owner_.begin(); it != op_owner_.end(); ++it) {
            if (it->first == id) {
                auto &queue = queues_[static_cast<size_t>(it->second)];
                if (queue.alive && queue.inflight_ops > 0)
                    --queue.inflight_ops;
                op_owner_.erase(it);
                break;
            }
        }
    }
}

size_t
Firmware::pending() const
{
    size_t n = copies_.size() + op_owner_.size();
    for (const auto &q : queues_) {
        if (q.alive)
            n += q.commands.size();
    }
    return n;
}

size_t
Firmware::queueCount() const
{
    size_t n = 0;
    for (const auto &q : queues_)
        n += q.alive;
    return n;
}

} // namespace wsva::vcu
