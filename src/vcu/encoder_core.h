/**
 * @file
 * Timing/bandwidth model of one VCU encoder core.
 *
 * Calibrated to the paper's published operating points:
 *  - one core encodes 2160p at up to 60 FPS in real time using three
 *    reference frames (Section 3.3.1), i.e. ~0.5 Gpix/s;
 *  - throughput scales near-linearly with pixel count;
 *  - DRAM traffic per 2160p frame averages ~3.5 GiB/s raw, reduced
 *    to ~2-3 GiB/s by lossless reference compression;
 *  - the decoder core consistently uses 2.2 GiB/s.
 *
 * The per-frame encode time is derived from an hlsim pipeline run
 * over the macroblock stream: motion/RDO, entropy/decode/temporal-
 * filter, and loop-filter/compression stages with mode-dependent
 * service-time variability and FIFO backpressure, exactly the
 * structure of Figure 4.
 */

#ifndef WSVA_VCU_ENCODER_CORE_H
#define WSVA_VCU_ENCODER_CORE_H

#include <cstdint>

#include "video/codec/codec.h"

namespace wsva {
class Tracer;
}

namespace wsva::vcu {

/** Static parameters of the encoder-core model. */
struct EncoderCoreConfig
{
    double clock_ghz = 0.933;       //!< Core clock.
    uint32_t base_cycles_per_mb = 352; //!< Bottleneck-stage service.
    double vp9_cycle_factor = 1.18; //!< VP9 costs more per MB.
    double ref_cycle_factor = 0.06; //!< Extra per reference searched.
    size_t fifo_depth = 8;          //!< Inter-stage FIFO depth.

    /** Reference-frame read compression (Section 3.2: ~2x). */
    double fbc_read_ratio = 2.0;

    /**
     * Optional span tracer (not owned; must outlive the model's
     * estimate calls). Forwarded to the hlsim pipeline run, which
     * records per-(stage, macroblock) occupancy spans in cycle time.
     */
    wsva::Tracer *tracer = nullptr;
};

/** One encode operation presented to the core. */
struct EncodeJob
{
    int width = 3840;
    int height = 2160;
    double fps = 30.0;    //!< Presentation rate (for realtime checks).
    int frame_count = 1;
    wsva::video::codec::CodecType codec =
        wsva::video::codec::CodecType::VP9;
    int num_refs = 3;
    bool two_pass = false; //!< Second pass reuses first-pass stats.
    uint64_t seed = 1;     //!< Drives per-MB variability.
};

/** Timing/traffic estimate for a job on one core. */
struct EncodeEstimate
{
    double seconds = 0.0;           //!< Wall time on the core.
    double pixels_per_second = 0.0; //!< Luma throughput.
    double dram_read_gibps = 0.0;   //!< Average read bandwidth.
    double dram_write_gibps = 0.0;  //!< Average write bandwidth.
    double bottleneck_utilization = 0.0; //!< Busiest stage share.
    bool realtime = false;          //!< seconds <= duration.
};

/** Cycle-approximate encoder-core model. */
class EncoderCoreModel
{
  public:
    explicit EncoderCoreModel(EncoderCoreConfig cfg = {}) : cfg_(cfg) {}

    /** Estimate timing and DRAM traffic for a job. */
    EncodeEstimate estimate(const EncodeJob &job) const;

    /** Peak luma throughput in pixels/second (2160p calibration). */
    double peakPixelRate() const;

    const EncoderCoreConfig &config() const { return cfg_; }

  private:
    EncoderCoreConfig cfg_;
};

/** Decoder-core model: fixed-rate, per the paper's 2.2 GiB/s figure. */
struct DecoderCoreConfig
{
    double pixel_rate = 1.1e9;    //!< Decoded pixels/second.
    double dram_gibps = 2.2;      //!< Constant DRAM bandwidth in use.
};

/** Timing estimate for decoding on a decoder core. */
double decodeSeconds(const DecoderCoreConfig &cfg, int width, int height,
                     int frame_count);

} // namespace wsva::vcu

#endif // WSVA_VCU_ENCODER_CORE_H
