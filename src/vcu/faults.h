/**
 * @file
 * Seeded fault injection for VCU fleets (Section 4.4).
 *
 * Models the failure modes the paper manages in production:
 * whole-VCU failures (DRAM errors and similar), individual core
 * failures, correctable/uncorrectable ECC events, and the nasty
 * "fast-failing" silent-corruption mode that causes black-holing
 * (a broken VCU completes work quickly and attracts traffic).
 */

#ifndef WSVA_VCU_FAULTS_H
#define WSVA_VCU_FAULTS_H

#include <cstdint>

#include "common/rng.h"
#include "vcu/chip.h"

namespace wsva::vcu {

/** Per-hour fault rates for one VCU. */
struct FaultRates
{
    double vcu_failure_per_hour = 0.0;       //!< Whole-VCU hard fail.
    double core_failure_per_hour = 0.0;      //!< Single encoder core.
    double correctable_ecc_per_hour = 0.0;   //!< Logged only.
    double uncorrectable_ecc_per_hour = 0.0; //!< Triggers disable flow.
    double silent_fault_per_hour = 0.0;      //!< Black-hole mode.
};

/** Applies random fault events to one chip over simulated time. */
class FaultInjector
{
  public:
    FaultInjector(FaultRates rates, uint64_t seed)
        : rates_(rates), rng_(seed) {}

    /**
     * Advance fault processes by @p hours, applying events to
     * @p chip. Returns true if any *new* hard fault occurred.
     */
    bool advance(VcuChip &chip, double hours);

  private:
    bool sample(double rate_per_hour, double hours)
    {
        if (rate_per_hour <= 0.0)
            return false;
        const double p = 1.0 - std::exp(-rate_per_hour * hours);
        return rng_.bernoulli(p);
    }

    FaultRates rates_;
    wsva::Rng rng_;
};

} // namespace wsva::vcu

#endif // WSVA_VCU_FAULTS_H
