/**
 * @file
 * HLS-flavored pipeline modeling primitives.
 *
 * The paper's encoder core was written in C++ for high-level
 * synthesis (Catapult), with pipeline stages decoupled by FIFOs and
 * full backpressure (Section 3.2). This module provides the same
 * abstractions for *timing* modeling: a bounded FIFO channel and a
 * multi-stage pipeline simulator that computes item completion times
 * under per-stage service times, FIFO capacities, and backpressure.
 *
 * The simulator uses the standard pipeline recurrence: an item can
 * start at a stage when (a) it has arrived from the previous stage,
 * (b) the stage has finished the previous item, and (c) there is
 * space in the FIFO toward the next stage (backpressure). A FIFO
 * slot is freed when the downstream stage *starts* (pops) an item,
 * not when it finishes servicing it — constraining on downstream
 * finish would overstate stalls and total cycles for deep or
 * unbalanced pipelines.
 */

#ifndef WSVA_VCU_HLSIM_H
#define WSVA_VCU_HLSIM_H

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "common/logging.h"

namespace wsva {
class Tracer;
}

namespace wsva::vcu {

/** Bounded FIFO channel with occupancy accounting (ac_channel-like). */
template <typename T>
class Channel
{
  public:
    explicit Channel(size_t capacity, std::string name = "chan")
        : capacity_(capacity), name_(std::move(name))
    {
        WSVA_ASSERT(capacity >= 1, "channel needs capacity >= 1");
    }

    bool canPush() const { return fifo_.size() < capacity_; }
    bool canPop() const { return !fifo_.empty(); }
    size_t size() const { return fifo_.size(); }
    size_t capacity() const { return capacity_; }
    const std::string &name() const { return name_; }

    /** Push; counts a stall event when the channel is full. */
    bool
    push(const T &item)
    {
        if (!canPush()) {
            ++push_stalls_;
            return false;
        }
        fifo_.push_back(item);
        ++pushes_;
        return true;
    }

    /** Pop; the caller must check canPop(). */
    T
    pop()
    {
        WSVA_ASSERT(canPop(), "pop from empty channel '%s'", name_.c_str());
        T item = fifo_.front();
        fifo_.pop_front();
        return item;
    }

    uint64_t pushes() const { return pushes_; }
    uint64_t pushStalls() const { return push_stalls_; }

  private:
    size_t capacity_;
    std::string name_;
    std::deque<T> fifo_;
    uint64_t pushes_ = 0;
    uint64_t push_stalls_ = 0;
};

/** One pipeline stage: a name and a FIFO depth toward the next stage. */
struct StageSpec
{
    std::string name;
    size_t fifo_depth = 4; //!< Capacity of the FIFO after this stage.
};

/** Per-stage result statistics from a pipeline simulation. */
struct StageStats
{
    std::string name;
    uint64_t busy_cycles = 0;     //!< Cycles spent servicing items.
    uint64_t stall_cycles = 0;    //!< Cycles blocked by backpressure.
    double utilization = 0.0;     //!< busy / total.
};

/** Result of simulating a work list through the pipeline. */
struct PipelineResult
{
    uint64_t total_cycles = 0;
    std::vector<StageStats> stages;
    double throughput_items_per_cycle = 0.0;
};

/**
 * Deterministic multi-stage pipeline timing simulation.
 *
 * @param stages Stage specifications (order = dataflow order).
 * @param service_cycles service_cycles[s][i] = cycles stage s spends
 *        on item i. All rows must have the same length.
 * @param tracer Optional span sink (not owned). When set and enabled,
 *        every (stage, item) occupancy interval is recorded as a
 *        sim-domain span — timestamps in cycles, one track per stage
 *        on the hlsim process lane — so Perfetto shows the macroblock
 *        pipeline's fill, drain, and backpressure bubbles. Cycle
 *        timings are identical with and without a tracer.
 */
PipelineResult simulatePipeline(
    const std::vector<StageSpec> &stages,
    const std::vector<std::vector<uint32_t>> &service_cycles,
    wsva::Tracer *tracer = nullptr);

} // namespace wsva::vcu

#endif // WSVA_VCU_HLSIM_H
