#include "vcu/hlsim.h"

#include <algorithm>

#include "common/profiler.h"
#include "common/trace.h"

namespace wsva::vcu {

PipelineResult
simulatePipeline(const std::vector<StageSpec> &stages,
                 const std::vector<std::vector<uint32_t>> &service_cycles,
                 wsva::Tracer *tracer)
{
    static const int kPhase = prof::phaseId("vcu/hlsim");
    prof::ProfScope prof_scope(kPhase);
    const size_t n_stages = stages.size();
    WSVA_ASSERT(n_stages >= 1, "pipeline needs at least one stage");
    WSVA_ASSERT(service_cycles.size() == n_stages,
                "service table must have one row per stage");
    const size_t n_items = service_cycles[0].size();
    for (const auto &row : service_cycles) {
        WSVA_ASSERT(row.size() == n_items,
                    "ragged service table (%zu vs %zu items)", row.size(),
                    n_items);
    }

    PipelineResult result;
    result.stages.resize(n_stages);
    for (size_t s = 0; s < n_stages; ++s)
        result.stages[s].name = stages[s].name;
    if (n_items == 0)
        return result;

    // finish[s][i] / begin[s][i] = cycle when stage s finishes /
    // starts item i.
    std::vector<std::vector<uint64_t>> finish(
        n_stages, std::vector<uint64_t>(n_items, 0));
    std::vector<std::vector<uint64_t>> begin(
        n_stages, std::vector<uint64_t>(n_items, 0));

    for (size_t i = 0; i < n_items; ++i) {
        for (size_t s = 0; s < n_stages; ++s) {
            // Earliest the item is available to this stage.
            uint64_t ready = s == 0 ? 0 : finish[s - 1][i];
            // Stage is serial: must finish the previous item first.
            uint64_t stage_free = i == 0 ? 0 : finish[s][i - 1];
            // Backpressure: the FIFO after stage s holds fifo_depth
            // items; item i cannot start at stage s until item
            // (i - depth) has been *consumed* by stage s+1 — a slot
            // frees when the downstream stage starts (pops) that
            // item, not when it finishes servicing it. (begin[s+1]
            // [i - depth] is already known: it was filled in during
            // outer iteration i - depth < i.)
            uint64_t space_free = 0;
            const size_t depth = std::max<size_t>(1, stages[s].fifo_depth);
            if (s + 1 < n_stages && i >= depth)
                space_free = begin[s + 1][i - depth];
            const uint64_t start =
                std::max({ready, stage_free, space_free});
            const uint64_t service = service_cycles[s][i];
            begin[s][i] = start;
            finish[s][i] = start + service;

            auto &st = result.stages[s];
            st.busy_cycles += service;
            // Backpressure stall: time beyond data/serial readiness.
            st.stall_cycles += start - std::max(ready, stage_free);
        }
    }

    // Emit the occupancy intervals after the recurrence so tracing
    // cannot perturb the timing model: one sim-domain span per
    // (stage, item), tracked per stage, timestamped in raw cycles.
    if (tracer != nullptr && tracer->enabled()) {
        for (size_t s = 0; s < n_stages; ++s) {
            const char *stage_name = tracer->intern(stages[s].name);
            for (size_t i = 0; i < n_items; ++i) {
                tracer->recordSimSpan(
                    stage_name, "hlsim",
                    static_cast<double>(begin[s][i]),
                    static_cast<double>(finish[s][i]),
                    static_cast<int>(s), /*parent=*/0, kProcessHlsim,
                    "item", static_cast<uint64_t>(i));
            }
        }
    }

    result.total_cycles = finish[n_stages - 1][n_items - 1];
    for (auto &st : result.stages) {
        st.utilization = result.total_cycles > 0
            ? static_cast<double>(st.busy_cycles) /
                  static_cast<double>(result.total_cycles)
            : 0.0;
    }
    result.throughput_items_per_cycle =
        result.total_cycles > 0
            ? static_cast<double>(n_items) /
                  static_cast<double>(result.total_cycles)
            : 0.0;
    return result;
}

} // namespace wsva::vcu
