/**
 * @file
 * VCU DRAM subsystem model: four 32-bit LPDDR4-3200 channels giving
 * ~36 GiB/s of raw bandwidth, with side-band SECDED ECC on six x32
 * devices and 8 GiB of usable capacity (Section 3.3.1). Bandwidth is
 * shared among requesters by max-min fair (water-filling) allocation:
 * light requesters get their full demand, heavy requesters split the
 * remainder evenly, which matches an out-of-order fair memory
 * controller at steady state.
 */

#ifndef WSVA_VCU_DRAM_H
#define WSVA_VCU_DRAM_H

#include <cstdint>
#include <vector>

namespace wsva::vcu {

/** DRAM subsystem parameters. */
struct DramConfig
{
    double raw_gibps = 36.0;      //!< 4 x 32b LPDDR4-3200.
    double efficiency = 0.90;     //!< Achievable fraction of raw.
    uint64_t capacity_bytes = 8ull << 30; //!< Usable (ECC sideband).

    double usableGibps() const { return raw_gibps * efficiency; }
};

/**
 * Max-min fair bandwidth allocation.
 * @param capacity Total bandwidth available.
 * @param demands Per-requester demands (>= 0).
 * @return Per-requester grants; sum(grants) <= capacity and
 *         grants[i] <= demands[i].
 */
std::vector<double> allocateBandwidth(double capacity,
                                      const std::vector<double> &demands);

/** Capacity bookkeeping for op footprints on a VCU. */
class DramCapacity
{
  public:
    explicit DramCapacity(uint64_t capacity_bytes)
        : capacity_(capacity_bytes) {}

    /** Try to reserve @p bytes; false if it would not fit. */
    bool reserve(uint64_t bytes);

    /** Release a previous reservation. */
    void release(uint64_t bytes);

    uint64_t used() const { return used_; }
    uint64_t capacity() const { return capacity_; }
    double utilization() const
    {
        return capacity_ > 0
            ? static_cast<double>(used_) / static_cast<double>(capacity_)
            : 0.0;
    }

  private:
    uint64_t capacity_;
    uint64_t used_ = 0;
};

} // namespace wsva::vcu

#endif // WSVA_VCU_DRAM_H
