/**
 * @file
 * The VCU ASIC model: 10 encoder cores, 3 decoder cores, a shared
 * DRAM subsystem, health telemetry, and fault state (Figure 3b).
 *
 * Work is presented as stateless operations (all state lives in
 * device DRAM, Section 3.2 "Control and Stateless Operation"), so
 * any idle core of the right kind can run any op. The chip advances
 * in continuous time: running ops progress at a rate set by DRAM
 * bandwidth contention (max-min fair across ops).
 */

#ifndef WSVA_VCU_CHIP_H
#define WSVA_VCU_CHIP_H

#include <cstdint>
#include <optional>
#include <vector>

#include "vcu/dram.h"
#include "vcu/encoder_core.h"

namespace wsva::vcu {

/** Chip-level static configuration. */
struct VcuChipConfig
{
    int encoder_cores = 10;
    int decoder_cores = 3;
    EncoderCoreConfig encoder;
    DecoderCoreConfig decoder;
    DramConfig dram;
};

/** Kind of a chip-level operation. */
enum class OpKind : int {
    Encode = 0,
    Decode = 1,
};

/** One stateless operation submitted to the chip. */
struct VcuOp
{
    uint64_t id = 0;
    OpKind kind = OpKind::Encode;
    double core_seconds = 0.0;   //!< Uncontended service time.
    double dram_gibps = 0.0;     //!< Bandwidth demand while running.
    uint64_t dram_bytes = 0;     //!< Footprint held while running.
};

/** Health telemetry exposed by the firmware (Section 4.4). */
struct VcuTelemetry
{
    double temperature_c = 45.0;
    uint64_t resets = 0;
    uint64_t correctable_ecc = 0;
    uint64_t uncorrectable_ecc = 0;
    int failed_encoder_cores = 0;
    int failed_decoder_cores = 0;
};

/** The VCU chip. */
class VcuChip
{
  public:
    explicit VcuChip(VcuChipConfig cfg = {});

    /**
     * Submit an op. Returns false if the chip is disabled or the op
     * footprint does not fit in device DRAM (caller retries later or
     * elsewhere); otherwise the op queues for a core.
     */
    bool submit(const VcuOp &op);

    /** Advance time; completed op ids are appended to @p done. */
    void advance(double dt, std::vector<uint64_t> &done);

    /** True when no op is running or queued. */
    bool idle() const;

    // --- Failure management (Section 4.4). ------------------------

    /** Permanently disable the whole VCU (fault manager action). */
    void disable();
    bool disabled() const { return disabled_; }

    /** Mark one core failed; capacity shrinks. */
    void failEncoderCore();
    void failDecoderCore();

    /** Record ECC events (telemetry). */
    void recordCorrectableEcc(uint64_t n = 1);
    void recordUncorrectableEcc(uint64_t n = 1);

    /**
     * Set a persistent silent-corruption fault: the chip keeps
     * running at full speed but produces corrupt outputs — the
     * "black hole" failure mode.
     */
    void setSilentFault(bool value) { silent_fault_ = value; }
    bool hasSilentFault() const { return silent_fault_; }

    /**
     * Functional reset + short deterministic 'golden' transcodes on
     * every core (Section 4.4). Returns false if a persistent fault
     * is detected, in which case a worker must refuse to use the VCU.
     */
    bool runGoldenCheck();

    // --- Introspection. --------------------------------------------

    const VcuTelemetry &telemetry() const { return telemetry_; }
    const VcuChipConfig &config() const { return cfg_; }

    int usableEncoderCores() const;
    int usableDecoderCores() const;
    int busyEncoderCores() const;
    int busyDecoderCores() const;
    size_t queuedOps() const { return queue_.size(); }

    /** Instantaneous encoder-core occupancy in [0, 1]. */
    double encoderUtilization() const;
    /** Instantaneous decoder-core occupancy in [0, 1]. */
    double decoderUtilization() const;
    /** Instantaneous DRAM bandwidth demand vs usable. */
    double dramPressure() const;
    /** Device DRAM footprint utilization. */
    double dramCapacityUtilization() const { return capacity_.utilization(); }

  private:
    struct Running
    {
        VcuOp op;
        double remaining; //!< Core-seconds of work left.
    };

    void startQueued();

    VcuChipConfig cfg_;
    DramCapacity capacity_;
    std::vector<Running> running_;
    std::vector<VcuOp> queue_;
    VcuTelemetry telemetry_;
    bool disabled_ = false;
    bool silent_fault_ = false;
};

} // namespace wsva::vcu

#endif // WSVA_VCU_CHIP_H
