/**
 * @file
 * On-chip management firmware model (Section 3.3.2).
 *
 * The firmware exposes userspace-mapped queues with exactly four
 * commands: run-on-core, copy-to-device, copy-from-device, and
 * wait-for-done. Run-on-core does not name a core — the firmware
 * schedules work onto any idle core, round-robin across queues for
 * fairness and utilization. Each userspace process (one per
 * transcode, Section 3.1) owns one queue; multiple threads multiplex
 * onto it, expressing a data-dependency graph whose operations may
 * start and finish out of order while wait-for-done provides the
 * synchronization barrier.
 */

#ifndef WSVA_VCU_FIRMWARE_H
#define WSVA_VCU_FIRMWARE_H

#include <cstdint>
#include <deque>
#include <vector>

#include "vcu/chip.h"

namespace wsva::vcu {

/** The four firmware commands. */
enum class CmdKind : int {
    RunOnCore = 0,
    CopyToDevice = 1,
    CopyFromDevice = 2,
    WaitForDone = 3,
};

/** One queue entry. */
struct Command
{
    CmdKind kind = CmdKind::RunOnCore;
    VcuOp op;            //!< For RunOnCore.
    uint64_t bytes = 0;  //!< For copies.
    uint64_t id = 0;     //!< Completion token (any command).
};

/** Firmware configuration. */
struct FirmwareConfig
{
    double pcie_gibps = 12.0; //!< Host link share for this VCU.
};

/** The firmware scheduler in front of one VcuChip. */
class Firmware
{
  public:
    Firmware(VcuChip &chip, FirmwareConfig cfg = {});

    /** Create a queue for a userspace process; returns its handle. */
    int createQueue();

    /** Destroy a queue (process exit); pending commands are dropped. */
    void destroyQueue(int q);

    /** Enqueue a command on queue @p q. */
    void enqueue(int q, const Command &cmd);

    /**
     * Advance time: dispatch run-on-core commands round-robin across
     * queues, progress copies on the PCIe link, retire completions.
     * Completed command ids are appended to @p done.
     */
    void advance(double dt, std::vector<uint64_t> &done);

    /** Outstanding commands across all queues (issued + queued). */
    size_t pending() const;

    /** Number of live queues. */
    size_t queueCount() const;

  private:
    struct Queue
    {
        bool alive = false;
        std::deque<Command> commands;
        uint64_t inflight_ops = 0; //!< RunOnCore ops not yet retired.
    };

    struct Copy
    {
        uint64_t id;
        double remaining_bytes;
    };

    bool tryIssueHead(Queue &queue);

    VcuChip *chip_;
    FirmwareConfig cfg_;
    std::vector<Queue> queues_;
    size_t rr_cursor_ = 0;
    std::vector<Copy> copies_;
    std::vector<std::pair<uint64_t, int>> op_owner_; //!< op id -> queue.
};

} // namespace wsva::vcu

#endif // WSVA_VCU_FIRMWARE_H
