#include "vcu/reference_store.h"

#include <algorithm>

#include "common/logging.h"

namespace wsva::vcu {

namespace {

uint64_t
blockKey(int bx, int by)
{
    return (static_cast<uint64_t>(static_cast<uint32_t>(by)) << 32) |
           static_cast<uint32_t>(bx);
}

} // namespace

ReferenceStore::ReferenceStore(size_t capacity_pixels)
    : capacity_blocks_(std::max<size_t>(1, capacity_pixels /
                                               kRefBlockPixels))
{
}

bool
ReferenceStore::access(int bx, int by)
{
    const uint64_t key = blockKey(bx, by);
    auto it = map_.find(key);
    if (it != map_.end()) {
        ++hits_;
        lru_.splice(lru_.begin(), lru_, it->second);
        return true;
    }
    ++misses_;
    lru_.push_front(key);
    map_[key] = lru_.begin();
    while (map_.size() > capacity_blocks_) {
        map_.erase(lru_.back());
        lru_.pop_back();
    }
    return false;
}

void
ReferenceStore::flush()
{
    lru_.clear();
    map_.clear();
}

SearchTrafficResult
simulateSearchTraffic(int frame_w, int frame_h, int window_x, int window_y,
                      size_t store_pixels, int tile_col_width)
{
    WSVA_ASSERT(frame_w > 0 && frame_h > 0, "bad frame size");
    ReferenceStore store(store_pixels);

    constexpr int kMb = 16;
    const int col_w = tile_col_width > 0 ? tile_col_width : frame_w;

    auto touchWindow = [&](int mb_x, int mb_y) {
        const int x0 = std::max(0, mb_x - window_x);
        const int x1 = std::min(frame_w - 1, mb_x + kMb - 1 + window_x);
        const int y0 = std::max(0, mb_y - window_y);
        const int y1 = std::min(frame_h - 1, mb_y + kMb - 1 + window_y);
        for (int by = y0 / kRefBlockH; by <= y1 / kRefBlockH; ++by)
            for (int bx = x0 / kRefBlockW; bx <= x1 / kRefBlockW; ++bx)
                store.access(bx, by);
    };

    for (int col = 0; col < frame_w; col += col_w) {
        const int col_end = std::min(frame_w, col + col_w);
        // Tile column: walk rows top to bottom, MBs left to right
        // within the column.
        for (int y = 0; y < frame_h; y += kMb)
            for (int x = col; x < col_end; x += kMb)
                touchWindow(x, y);
    }

    SearchTrafficResult result;
    result.hits = store.hits();
    result.misses = store.misses();
    const double frame_pixels =
        static_cast<double>(frame_w) * static_cast<double>(frame_h);
    result.fetch_ratio =
        static_cast<double>(store.misses()) * kRefBlockPixels /
        frame_pixels;
    return result;
}

} // namespace wsva::vcu
