#include "vcu/dram.h"

#include <algorithm>

#include "common/logging.h"

namespace wsva::vcu {

std::vector<double>
allocateBandwidth(double capacity, const std::vector<double> &demands)
{
    std::vector<double> grants(demands.size(), 0.0);
    if (demands.empty() || capacity <= 0.0)
        return grants;

    double remaining = capacity;
    std::vector<size_t> active;
    for (size_t i = 0; i < demands.size(); ++i) {
        WSVA_ASSERT(demands[i] >= 0.0, "negative bandwidth demand");
        if (demands[i] > 0.0)
            active.push_back(i);
    }

    // Water-filling: repeatedly satisfy every requester below the
    // fair share, then split what is left among the rest.
    while (!active.empty() && remaining > 1e-12) {
        const double share = remaining / static_cast<double>(active.size());
        bool any_satisfied = false;
        std::vector<size_t> still_active;
        for (size_t i : active) {
            const double want = demands[i] - grants[i];
            if (want <= share + 1e-12) {
                grants[i] = demands[i];
                remaining -= want;
                any_satisfied = true;
            } else {
                still_active.push_back(i);
            }
        }
        if (!any_satisfied) {
            for (size_t i : still_active)
                grants[i] += share;
            remaining = 0.0;
            break;
        }
        active = std::move(still_active);
    }
    return grants;
}

bool
DramCapacity::reserve(uint64_t bytes)
{
    if (used_ + bytes > capacity_)
        return false;
    used_ += bytes;
    return true;
}

void
DramCapacity::release(uint64_t bytes)
{
    WSVA_ASSERT(bytes <= used_, "releasing more DRAM than reserved");
    used_ -= bytes;
}

} // namespace wsva::vcu
