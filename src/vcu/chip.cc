#include "vcu/chip.h"

#include <algorithm>

#include "common/logging.h"

namespace wsva::vcu {

VcuChip::VcuChip(VcuChipConfig cfg)
    : cfg_(cfg), capacity_(cfg.dram.capacity_bytes)
{
    WSVA_ASSERT(cfg_.encoder_cores > 0 && cfg_.decoder_cores > 0,
                "chip needs at least one core of each kind");
}

int
VcuChip::usableEncoderCores() const
{
    if (disabled_)
        return 0;
    return std::max(0, cfg_.encoder_cores -
                           telemetry_.failed_encoder_cores);
}

int
VcuChip::usableDecoderCores() const
{
    if (disabled_)
        return 0;
    return std::max(0, cfg_.decoder_cores -
                           telemetry_.failed_decoder_cores);
}

int
VcuChip::busyEncoderCores() const
{
    int n = 0;
    for (const auto &r : running_)
        n += r.op.kind == OpKind::Encode;
    return n;
}

int
VcuChip::busyDecoderCores() const
{
    int n = 0;
    for (const auto &r : running_)
        n += r.op.kind == OpKind::Decode;
    return n;
}

double
VcuChip::encoderUtilization() const
{
    const int usable = usableEncoderCores();
    return usable > 0
        ? static_cast<double>(busyEncoderCores()) / usable
        : 0.0;
}

double
VcuChip::decoderUtilization() const
{
    const int usable = usableDecoderCores();
    return usable > 0
        ? static_cast<double>(busyDecoderCores()) / usable
        : 0.0;
}

double
VcuChip::dramPressure() const
{
    double demand = 0.0;
    for (const auto &r : running_)
        demand += r.op.dram_gibps;
    const double usable = cfg_.dram.usableGibps();
    return usable > 0 ? demand / usable : 0.0;
}

bool
VcuChip::submit(const VcuOp &op)
{
    if (disabled_)
        return false;
    WSVA_ASSERT(op.core_seconds > 0.0, "op %lu has no work",
                static_cast<unsigned long>(op.id));
    if (!capacity_.reserve(op.dram_bytes))
        return false;
    queue_.push_back(op);
    startQueued();
    return true;
}

void
VcuChip::startQueued()
{
    // Stateless dispatch: any idle core of the right kind takes the
    // next queued op of that kind (firmware round-robin fairness is
    // modeled at the Firmware layer; here FIFO per kind suffices).
    for (auto it = queue_.begin(); it != queue_.end();) {
        const bool is_enc = it->kind == OpKind::Encode;
        const int busy = is_enc ? busyEncoderCores() : busyDecoderCores();
        const int usable =
            is_enc ? usableEncoderCores() : usableDecoderCores();
        if (busy < usable) {
            running_.push_back({*it, it->core_seconds});
            it = queue_.erase(it);
        } else {
            ++it;
        }
    }
}

void
VcuChip::advance(double dt, std::vector<uint64_t> &done)
{
    WSVA_ASSERT(dt >= 0.0, "negative dt");
    if (disabled_) {
        // Fault manager killed the chip; everything in flight fails
        // silently (callers learn via disabled()).
        return;
    }

    double remaining_dt = dt;
    while (remaining_dt > 1e-12 && !running_.empty()) {
        // Bandwidth-contended progress rates.
        std::vector<double> demands;
        demands.reserve(running_.size());
        for (const auto &r : running_)
            demands.push_back(r.op.dram_gibps);
        const auto grants =
            allocateBandwidth(cfg_.dram.usableGibps(), demands);

        // Progress rate of each op: 1.0 when its bandwidth demand is
        // met, proportionally slower when throttled.
        std::vector<double> rates(running_.size(), 1.0);
        for (size_t i = 0; i < running_.size(); ++i) {
            if (demands[i] > 1e-12)
                rates[i] = std::min(1.0, grants[i] / demands[i]);
        }

        // Find the next completion within remaining_dt.
        double step = remaining_dt;
        for (size_t i = 0; i < running_.size(); ++i) {
            if (rates[i] > 1e-12)
                step = std::min(step, running_[i].remaining / rates[i]);
        }

        for (size_t i = 0; i < running_.size(); ++i)
            running_[i].remaining -= rates[i] * step;
        remaining_dt -= step;

        // Retire finished ops.
        for (auto it = running_.begin(); it != running_.end();) {
            if (it->remaining <= 1e-9) {
                done.push_back(it->op.id);
                capacity_.release(it->op.dram_bytes);
                it = running_.erase(it);
            } else {
                ++it;
            }
        }
        startQueued();
    }

    // Temperature proxy: tracks utilization (for telemetry realism).
    const double load =
        (encoderUtilization() + decoderUtilization()) / 2.0;
    telemetry_.temperature_c =
        0.95 * telemetry_.temperature_c + 0.05 * (42.0 + 38.0 * load);
}

bool
VcuChip::idle() const
{
    return running_.empty() && queue_.empty();
}

void
VcuChip::disable()
{
    disabled_ = true;
    // In-flight work is lost; release footprints.
    for (const auto &r : running_)
        capacity_.release(r.op.dram_bytes);
    for (const auto &q : queue_)
        capacity_.release(q.dram_bytes);
    running_.clear();
    queue_.clear();
}

void
VcuChip::failEncoderCore()
{
    if (telemetry_.failed_encoder_cores < cfg_.encoder_cores)
        ++telemetry_.failed_encoder_cores;
}

void
VcuChip::failDecoderCore()
{
    if (telemetry_.failed_decoder_cores < cfg_.decoder_cores)
        ++telemetry_.failed_decoder_cores;
}

void
VcuChip::recordCorrectableEcc(uint64_t n)
{
    telemetry_.correctable_ecc += n;
}

void
VcuChip::recordUncorrectableEcc(uint64_t n)
{
    telemetry_.uncorrectable_ecc += n;
}

bool
VcuChip::runGoldenCheck()
{
    if (disabled_)
        return false;
    ++telemetry_.resets;
    // The golden transcodes exercise every core deterministically;
    // persistent faults (silent corruption, dead cores beyond spec,
    // uncorrectable ECC history) are caught here.
    if (silent_fault_)
        return false;
    if (telemetry_.uncorrectable_ecc > 0)
        return false;
    return usableEncoderCores() > 0 && usableDecoderCores() > 0;
}

} // namespace wsva::vcu
