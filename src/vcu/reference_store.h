/**
 * @file
 * SRAM reference-store model.
 *
 * The encoder core keeps the motion-search window in an SRAM array
 * so that each reference pixel is loaded from DRAM at most once per
 * tile column and at most twice per frame (Section 3.2, footnote 4:
 * 144K pixels = 768 x 192 for VP9 tile columns; footnote 5: a 394K
 * raster store for H.264 up to 2048-wide video). This module models
 * the store as an LRU cache of 64x16-pixel blocks and replays the
 * search-window access pattern of a frame to measure DRAM refetch
 * traffic.
 */

#ifndef WSVA_VCU_REFERENCE_STORE_H
#define WSVA_VCU_REFERENCE_STORE_H

#include <cstddef>
#include <cstdint>
#include <list>
#include <unordered_map>

namespace wsva::vcu {

/** Pixel dimensions of one cached reference block. */
constexpr int kRefBlockW = 64;
constexpr int kRefBlockH = 16;
constexpr int kRefBlockPixels = kRefBlockW * kRefBlockH;

/** Paper configurations. */
constexpr size_t kVp9StorePixels = 768 * 192;   //!< 144K pixels.
constexpr size_t kH264StorePixels = 2048 * 192; //!< 394K pixels.

/** LRU cache of reference blocks, sized in pixels. */
class ReferenceStore
{
  public:
    explicit ReferenceStore(size_t capacity_pixels);

    /**
     * Access the block containing reference pixel column/row block
     * coordinates (bx, by). @return true on hit, false on miss (the
     * block is then fetched and becomes most-recently used).
     */
    bool access(int bx, int by);

    uint64_t hits() const { return hits_; }
    uint64_t misses() const { return misses_; }

    /** Bytes fetched from DRAM so far (1 byte/pixel planes). */
    uint64_t fetchedBytes() const { return misses_ * kRefBlockPixels; }

    /** Drop all cached blocks (e.g. at a tile-column barrier). */
    void flush();

  private:
    size_t capacity_blocks_;
    std::list<uint64_t> lru_; //!< Front = most recent.
    std::unordered_map<uint64_t, std::list<uint64_t>::iterator> map_;
    uint64_t hits_ = 0;
    uint64_t misses_ = 0;
};

/** Result of replaying a frame's worth of search-window accesses. */
struct SearchTrafficResult
{
    uint64_t hits = 0;
    uint64_t misses = 0;
    /** DRAM reference-pixel fetches per frame pixel (1 = each pixel
     *  loaded exactly once; the paper bounds this at 2). */
    double fetch_ratio = 0.0;
};

/**
 * Replay the motion-search reference access pattern of one frame.
 *
 * Macroblocks are processed in tile-column order (all rows of a tile
 * column before moving right, as VP9 tiles are). For each MB the
 * core touches the search window around it.
 *
 * @param frame_w,frame_h Frame dimensions in pixels.
 * @param window_x Horizontal search reach each side, pixels.
 * @param window_y Vertical search reach each side, pixels.
 * @param store_pixels Reference-store capacity.
 * @param tile_col_width Tile column width in pixels (0 = raster scan
 *        across the full frame width, the H.264 configuration).
 */
SearchTrafficResult simulateSearchTraffic(int frame_w, int frame_h,
                                          int window_x, int window_y,
                                          size_t store_pixels,
                                          int tile_col_width);

} // namespace wsva::vcu

#endif // WSVA_VCU_REFERENCE_STORE_H
