#include "vcu/faults.h"

#include <cmath>

namespace wsva::vcu {

bool
FaultInjector::advance(VcuChip &chip, double hours)
{
    if (chip.disabled())
        return false;
    bool hard_fault = false;

    if (sample(rates_.correctable_ecc_per_hour, hours))
        chip.recordCorrectableEcc();

    if (sample(rates_.uncorrectable_ecc_per_hour, hours)) {
        chip.recordUncorrectableEcc();
        hard_fault = true;
    }

    if (sample(rates_.core_failure_per_hour, hours)) {
        chip.failEncoderCore();
        hard_fault = true;
    }

    if (sample(rates_.silent_fault_per_hour, hours)) {
        chip.setSilentFault(true);
        // Not a *detected* fault: the chip still reports healthy.
    }

    if (sample(rates_.vcu_failure_per_hour, hours)) {
        chip.disable();
        hard_fault = true;
    }

    return hard_fault;
}

} // namespace wsva::vcu
