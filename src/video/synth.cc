#include "video/synth.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/rng.h"

namespace wsva::video {

namespace {

/** Integer lattice hash -> [0, 255]; deterministic across platforms. */
uint32_t
hash2d(uint64_t seed, int x, int y)
{
    uint64_t h = seed;
    h ^= static_cast<uint64_t>(static_cast<uint32_t>(x)) * 0x9e3779b97f4a7c15ULL;
    h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
    h ^= static_cast<uint64_t>(static_cast<uint32_t>(y)) * 0x94d049bb133111ebULL;
    h = (h ^ (h >> 27)) * 0x2545f4914f6cdd1dULL;
    return static_cast<uint32_t>(h >> 32);
}

/** Smooth value noise at (x, y) with lattice period @p cell. */
double
valueNoise(uint64_t seed, double x, double y, int cell)
{
    const double gx = x / cell;
    const double gy = y / cell;
    const int x0 = static_cast<int>(std::floor(gx));
    const int y0 = static_cast<int>(std::floor(gy));
    const double fx = gx - x0;
    const double fy = gy - y0;
    // Smoothstep weights avoid visible lattice seams.
    const double wx = fx * fx * (3 - 2 * fx);
    const double wy = fy * fy * (3 - 2 * fy);
    auto v = [&](int ix, int iy) {
        return static_cast<double>(hash2d(seed, ix, iy) & 0xff);
    };
    const double top = v(x0, y0) * (1 - wx) + v(x0 + 1, y0) * wx;
    const double bot = v(x0, y0 + 1) * (1 - wx) + v(x0 + 1, y0 + 1) * wx;
    return top * (1 - wy) + bot * wy;
}

/** Multi-octave texture in [0, 255]. */
double
texture(uint64_t seed, double x, double y, int detail)
{
    if (detail <= 0)
        return 128.0;
    double acc = 0.0;
    double weight = 0.0;
    int cell = 64;
    double amp = 1.0;
    for (int oct = 0; oct < detail; ++oct) {
        acc += amp * valueNoise(seed + static_cast<uint64_t>(oct), x, y,
                                std::max(4, cell));
        weight += amp;
        cell /= 2;
        amp *= 0.6;
    }
    return acc / weight;
}

struct MovingObject
{
    double cx;
    double cy;
    double vx;
    double vy;
    double half_w;
    double half_h;
    uint8_t luma;
    uint8_t cb;
    uint8_t cr;
};

std::vector<MovingObject>
makeObjects(const SynthSpec &spec, uint64_t scene_seed)
{
    Rng rng(scene_seed ^ 0x5eedULL);
    std::vector<MovingObject> objs;
    objs.reserve(static_cast<size_t>(spec.objects));
    for (int i = 0; i < spec.objects; ++i) {
        MovingObject o;
        o.cx = rng.uniformReal(0.0, spec.width);
        o.cy = rng.uniformReal(0.0, spec.height);
        const double angle = rng.uniformReal(0.0, 2 * M_PI);
        const double speed = rng.uniformReal(0.3, 1.0) * spec.motion;
        o.vx = std::cos(angle) * speed;
        o.vy = std::sin(angle) * speed;
        o.half_w = rng.uniformReal(0.05, 0.15) * spec.width;
        o.half_h = rng.uniformReal(0.05, 0.15) * spec.height;
        o.luma = static_cast<uint8_t>(rng.uniformRange(40, 220));
        o.cb = static_cast<uint8_t>(rng.uniformRange(64, 192));
        o.cr = static_cast<uint8_t>(rng.uniformRange(64, 192));
        objs.push_back(o);
    }
    return objs;
}

/** Reflect @p v into [0, limit) with mirror wrapping. */
double
mirrorWrap(double v, double limit)
{
    if (limit <= 0)
        return 0;
    double period = 2 * limit;
    v = std::fmod(v, period);
    if (v < 0)
        v += period;
    return v < limit ? v : period - v;
}

} // namespace

Frame
generateFrameAt(const SynthSpec &spec, int index)
{
    WSVA_ASSERT(spec.width % 2 == 0 && spec.height % 2 == 0,
                "synth frames need even dimensions");
    WSVA_ASSERT(index >= 0 && index < spec.frame_count,
                "frame index %d out of range", index);

    // A scene cut reshuffles the texture seed and the object set.
    int scene = spec.scene_cut_period > 0 ? index / spec.scene_cut_period : 0;
    int scene_start =
        spec.scene_cut_period > 0 ? scene * spec.scene_cut_period : 0;
    const uint64_t scene_seed =
        spec.seed + static_cast<uint64_t>(scene) * 0x1234567ULL;

    Frame frame(spec.width, spec.height);
    const double pan = spec.pan_speed * (index - scene_start);

    // Background texture (panned), optionally with screen content rows.
    for (int y = 0; y < spec.height; ++y) {
        uint8_t *row = frame.y().row(y);
        for (int x = 0; x < spec.width; ++x) {
            double t = texture(scene_seed, x + pan, y, spec.detail);
            row[x] = static_cast<uint8_t>(std::clamp(t, 0.0, 255.0));
        }
    }
    if (spec.screen_content) {
        // Text-like rows: high-contrast runs on a light background,
        // static within a scene (like slides or a desktop).
        for (int ty = 8; ty + 10 < spec.height; ty += 22) {
            for (int y = ty; y < ty + 10; ++y) {
                uint8_t *row = frame.y().row(y);
                int x = 8;
                uint64_t h = hash2d(scene_seed, ty, 9999);
                while (x < spec.width - 8) {
                    int run = 2 + static_cast<int>(h % 11);
                    h = h * 6364136223846793005ULL + 1442695040888963407ULL;
                    bool dark = (h >> 17) & 1;
                    for (int i = 0; i < run && x < spec.width - 8; ++i, ++x)
                        row[x] = dark ? 24 : 235;
                    x += 1 + static_cast<int>((h >> 33) % 4);
                }
            }
        }
    }

    // Moving foreground objects (position advanced analytically so any
    // frame can be generated independently).
    auto objects = makeObjects(spec, scene_seed);
    const int dt = index - scene_start;
    for (auto &o : objects) {
        const double cx = mirrorWrap(o.cx + o.vx * dt, spec.width);
        const double cy = mirrorWrap(o.cy + o.vy * dt, spec.height);
        const int x0 = std::max(0, static_cast<int>(cx - o.half_w));
        const int x1 = std::min(spec.width - 1,
                                static_cast<int>(cx + o.half_w));
        const int y0 = std::max(0, static_cast<int>(cy - o.half_h));
        const int y1 = std::min(spec.height - 1,
                                static_cast<int>(cy + o.half_h));
        for (int y = y0; y <= y1; ++y) {
            for (int x = x0; x <= x1; ++x)
                frame.y().at(x, y) = o.luma;
        }
        for (int y = y0 / 2; y <= y1 / 2; ++y) {
            for (int x = x0 / 2; x <= x1 / 2; ++x) {
                frame.u().at(x, y) = o.cb;
                frame.v().at(x, y) = o.cr;
            }
        }
    }

    // Global flash (holi-style lighting event).
    if (spec.flash_period > 0 && (index % spec.flash_period) == 0 &&
        index > 0) {
        for (auto &px : frame.y().data())
            px = static_cast<uint8_t>(std::min(255, px + 60));
    }

    // Per-frame sensor noise, deterministic in (seed, frame index).
    if (spec.noise_sigma > 0.0) {
        Rng noise(spec.seed ^ (static_cast<uint64_t>(index) << 20));
        for (auto &px : frame.y().data()) {
            int v = px + static_cast<int>(
                std::lround(noise.normal(0.0, spec.noise_sigma)));
            px = static_cast<uint8_t>(std::clamp(v, 0, 255));
        }
    }

    return frame;
}

std::vector<Frame>
generateVideo(const SynthSpec &spec)
{
    std::vector<Frame> frames;
    frames.reserve(static_cast<size_t>(spec.frame_count));
    for (int i = 0; i < spec.frame_count; ++i)
        frames.push_back(generateFrameAt(spec, i));
    return frames;
}

} // namespace wsva::video
