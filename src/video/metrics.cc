#include "video/metrics.h"

#include <algorithm>
#include <array>
#include <cmath>

#include "common/logging.h"

namespace wsva::video {

double
planeMse(const Plane &a, const Plane &b)
{
    WSVA_ASSERT(a.width() == b.width() && a.height() == b.height(),
                "MSE of mismatched planes %dx%d vs %dx%d", a.width(),
                a.height(), b.width(), b.height());
    uint64_t acc = 0;
    const auto &da = a.data();
    const auto &db = b.data();
    for (size_t i = 0; i < da.size(); ++i) {
        int d = static_cast<int>(da[i]) - static_cast<int>(db[i]);
        acc += static_cast<uint64_t>(d * d);
    }
    return static_cast<double>(acc) / static_cast<double>(da.size());
}

double
frameMse(const Frame &a, const Frame &b)
{
    // Weight planes by pixel count: Y has 4x the samples of each of
    // U and V in 4:2:0, giving the usual 4:1:1 weighting.
    double y = planeMse(a.y(), b.y());
    double u = planeMse(a.u(), b.u());
    double v = planeMse(a.v(), b.v());
    return (4.0 * y + u + v) / 6.0;
}

double
psnrFromMse(double mse)
{
    if (mse <= 0.0)
        return 100.0;
    return std::min(100.0, 10.0 * std::log10(255.0 * 255.0 / mse));
}

double
framePsnr(const Frame &a, const Frame &b)
{
    return psnrFromMse(frameMse(a, b));
}

double
sequencePsnr(const std::vector<Frame> &ref, const std::vector<Frame> &test)
{
    WSVA_ASSERT(ref.size() == test.size() && !ref.empty(),
                "sequence PSNR needs equal-length, non-empty sequences");
    double mse = 0.0;
    for (size_t i = 0; i < ref.size(); ++i)
        mse += frameMse(ref[i], test[i]);
    return psnrFromMse(mse / static_cast<double>(ref.size()));
}

namespace {

/**
 * Least-squares cubic fit y(x) = c0 + c1 x + c2 x^2 + c3 x^3 via the
 * normal equations with Gaussian elimination (4x4, partial pivoting).
 */
std::array<double, 4>
cubicFit(const std::vector<double> &xs, const std::vector<double> &ys)
{
    constexpr int n = 4;
    double ata[n][n] = {};
    double atb[n] = {};
    for (size_t k = 0; k < xs.size(); ++k) {
        double powers[n] = {1.0, xs[k], xs[k] * xs[k],
                            xs[k] * xs[k] * xs[k]};
        for (int i = 0; i < n; ++i) {
            atb[i] += powers[i] * ys[k];
            for (int j = 0; j < n; ++j)
                ata[i][j] += powers[i] * powers[j];
        }
    }
    // Gaussian elimination with partial pivoting.
    for (int col = 0; col < n; ++col) {
        int pivot = col;
        for (int r = col + 1; r < n; ++r) {
            if (std::fabs(ata[r][col]) > std::fabs(ata[pivot][col]))
                pivot = r;
        }
        std::swap(ata[col], ata[pivot]);
        std::swap(atb[col], atb[pivot]);
        WSVA_ASSERT(std::fabs(ata[col][col]) > 1e-12,
                    "singular system in BD-rate cubic fit");
        for (int r = col + 1; r < n; ++r) {
            double f = ata[r][col] / ata[col][col];
            for (int c = col; c < n; ++c)
                ata[r][c] -= f * ata[col][c];
            atb[r] -= f * atb[col];
        }
    }
    std::array<double, 4> coef{};
    for (int r = n - 1; r >= 0; --r) {
        double acc = atb[r];
        for (int c = r + 1; c < n; ++c)
            acc -= ata[r][c] * coef[static_cast<size_t>(c)];
        coef[static_cast<size_t>(r)] = acc / ata[r][r];
    }
    return coef;
}

/** Definite integral of the cubic with coefficients @p c over [a, b]. */
double
cubicIntegral(const std::array<double, 4> &c, double a, double b)
{
    auto eval = [&](double x) {
        return c[0] * x + c[1] * x * x / 2.0 + c[2] * x * x * x / 3.0 +
               c[3] * x * x * x * x / 4.0;
    };
    return eval(b) - eval(a);
}

} // namespace

double
bdRate(const std::vector<RdPoint> &anchor, const std::vector<RdPoint> &test)
{
    WSVA_ASSERT(anchor.size() >= 4 && test.size() >= 4,
                "BD-rate needs at least 4 points per curve");

    // Fit log10(bitrate) as a cubic in PSNR for both curves.
    auto split = [](const std::vector<RdPoint> &pts,
                    std::vector<double> &psnr, std::vector<double> &lrate) {
        for (const auto &p : pts) {
            WSVA_ASSERT(p.bitrate_bps > 0.0, "non-positive bitrate");
            psnr.push_back(p.psnr_db);
            lrate.push_back(std::log10(p.bitrate_bps));
        }
    };
    std::vector<double> pa, ra, pt, rt;
    split(anchor, pa, ra);
    split(test, pt, rt);

    const double lo = std::max(*std::min_element(pa.begin(), pa.end()),
                               *std::min_element(pt.begin(), pt.end()));
    const double hi = std::min(*std::max_element(pa.begin(), pa.end()),
                               *std::max_element(pt.begin(), pt.end()));
    WSVA_ASSERT(hi > lo, "RD curves do not overlap in PSNR");

    const auto ca = cubicFit(pa, ra);
    const auto ct = cubicFit(pt, rt);
    const double avg_diff =
        (cubicIntegral(ct, lo, hi) - cubicIntegral(ca, lo, hi)) / (hi - lo);
    return (std::pow(10.0, avg_diff) - 1.0) * 100.0;
}

} // namespace wsva::video
