/**
 * @file
 * Lossless reference frame-buffer compression (FBC).
 *
 * The VCU compresses each reconstructed macroblock with a proprietary
 * lossless algorithm before writing it to DRAM, roughly halving the
 * reference-read bandwidth (Section 3.2). This module implements a
 * functional stand-in — per-block left/top predictive coding with
 * Exp-Golomb residuals — used both to verify losslessness and to
 * supply measured compression ratios to the VCU bandwidth model.
 */

#ifndef WSVA_VIDEO_CODEC_FBC_H
#define WSVA_VIDEO_CODEC_FBC_H

#include <cstddef>
#include <cstdint>
#include <vector>

#include "video/frame.h"

namespace wsva::video::codec {

/** Compressed representation of one plane. */
struct FbcPlane
{
    int width = 0;
    int height = 0;
    std::vector<uint8_t> payload;
};

/** Losslessly compress a plane (64x16 pixel tiles, as in the VCU). */
FbcPlane fbcCompress(const Plane &plane);

/** Decompress back to the exact original plane. */
Plane fbcDecompress(const FbcPlane &compressed);

/** Compression ratio (uncompressed bytes / compressed bytes). */
double fbcRatio(const Plane &plane);

/**
 * Average FBC ratio over a frame (all planes) — the entropy-coding
 * view of how compressible the reference content is.
 */
double fbcFrameRatio(const Frame &frame);

/**
 * The bandwidth ratio the *hardware* realizes: compressed blocks are
 * stored in fixed half-size compartments so any block stays randomly
 * addressable by the motion-search reader, capping the saving at 2:1
 * regardless of entropy (and explaining the paper's "approximately
 * 50%" figure). Blocks that do not compress to half size are stored
 * raw.
 */
double fbcHardwareRatio(const Frame &frame);

} // namespace wsva::video::codec

#endif // WSVA_VIDEO_CODEC_FBC_H
