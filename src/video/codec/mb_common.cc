#include "video/codec/mb_common.h"

#include <algorithm>

#include "common/logging.h"
#include "video/codec/golomb.h"

namespace wsva::video::codec {

namespace {

int16_t
median3(int16_t a, int16_t b, int16_t c)
{
    return std::max(std::min(a, b), std::min(std::max(a, b), c));
}

} // namespace

Mv
mvPredictor(const std::vector<MbNeighbor> &grid, int mb_cols, int mbx,
            int mby)
{
    auto fetch = [&](int x, int y, Mv &out) {
        if (x < 0 || y < 0 || x >= mb_cols)
            return false;
        const auto &nb =
            grid[static_cast<size_t>(y) * static_cast<size_t>(mb_cols) +
                 static_cast<size_t>(x)];
        if (!nb.coded || !nb.inter)
            return false;
        out = nb.mv;
        return true;
    };

    Mv candidates[3];
    int n = 0;
    Mv mv;
    if (fetch(mbx - 1, mby, mv))
        candidates[n++] = mv;
    if (fetch(mbx, mby - 1, mv))
        candidates[n++] = mv;
    if (fetch(mbx + 1, mby - 1, mv))
        candidates[n++] = mv;

    if (n == 0)
        return {0, 0};
    if (n == 1)
        return candidates[0];
    if (n == 2) {
        return {static_cast<int16_t>((candidates[0].x + candidates[1].x) / 2),
                static_cast<int16_t>((candidates[0].y + candidates[1].y) / 2)};
    }
    return {median3(candidates[0].x, candidates[1].x, candidates[2].x),
            median3(candidates[0].y, candidates[1].y, candidates[2].y)};
}

Mv
chromaMv(Mv luma_mv)
{
    // Truncating division keeps the same formula on both sides.
    return {static_cast<int16_t>(luma_mv.x / 2),
            static_cast<int16_t>(luma_mv.y / 2)};
}

void
buildInterPrediction(const std::array<Frame, kNumRefSlots> &refs,
                     const Mv *mvs, const int *ref_idx, bool split,
                     bool compound, int ref2, Mv mv2, int x, int y,
                     uint8_t *pred_y, uint8_t *pred_u, uint8_t *pred_v)
{
    constexpr int kHalf = kMbSize / 2;
    if (!split) {
        const Frame &ref = refs[static_cast<size_t>(ref_idx[0])];
        motionCompensate(ref.y(), x, y, kMbSize, mvs[0], pred_y);
        const Mv cmv = chromaMv(mvs[0]);
        motionCompensate(ref.u(), x / 2, y / 2, kHalf, cmv, pred_u);
        motionCompensate(ref.v(), x / 2, y / 2, kHalf, cmv, pred_v);
        if (compound) {
            const Frame &r2 = refs[static_cast<size_t>(ref2)];
            uint8_t alt_y[kMbSize * kMbSize];
            uint8_t alt_u[kHalf * kHalf];
            uint8_t alt_v[kHalf * kHalf];
            motionCompensate(r2.y(), x, y, kMbSize, mv2, alt_y);
            const Mv cmv2 = chromaMv(mv2);
            motionCompensate(r2.u(), x / 2, y / 2, kHalf, cmv2, alt_u);
            motionCompensate(r2.v(), x / 2, y / 2, kHalf, cmv2, alt_v);
            for (int i = 0; i < kMbSize * kMbSize; ++i)
                pred_y[i] =
                    static_cast<uint8_t>((pred_y[i] + alt_y[i] + 1) >> 1);
            for (int i = 0; i < kHalf * kHalf; ++i) {
                pred_u[i] =
                    static_cast<uint8_t>((pred_u[i] + alt_u[i] + 1) >> 1);
                pred_v[i] =
                    static_cast<uint8_t>((pred_v[i] + alt_v[i] + 1) >> 1);
            }
        }
        return;
    }

    // Split: four 8x8 luma partitions, each with its own MV/ref. The
    // chroma 4x4 quadrants follow their partition's MV.
    uint8_t part[8 * 8];
    for (int q = 0; q < 4; ++q) {
        const int qx = (q % 2) * 8;
        const int qy = (q / 2) * 8;
        const Frame &ref = refs[static_cast<size_t>(ref_idx[q])];
        motionCompensate(ref.y(), x + qx, y + qy, 8, mvs[q], part);
        for (int r = 0; r < 8; ++r) {
            for (int c = 0; c < 8; ++c)
                pred_y[(qy + r) * kMbSize + qx + c] = part[r * 8 + c];
        }
        const Mv cmv = chromaMv(mvs[q]);
        uint8_t cpart[4 * 4];
        motionCompensate(ref.u(), x / 2 + qx / 2, y / 2 + qy / 2, 4, cmv,
                         cpart);
        for (int r = 0; r < 4; ++r)
            for (int c = 0; c < 4; ++c)
                pred_u[(qy / 2 + r) * kHalf + qx / 2 + c] = cpart[r * 4 + c];
        motionCompensate(ref.v(), x / 2 + qx / 2, y / 2 + qy / 2, 4, cmv,
                         cpart);
        for (int r = 0; r < 4; ++r)
            for (int c = 0; c < 4; ++c)
                pred_v[(qy / 2 + r) * kHalf + qx / 2 + c] = cpart[r * 4 + c];
    }
}

void
writeCoeffBlock(SyntaxWriter &writer, const CoeffBlock &levels)
{
    const auto &scan = zigzagOrder();
    int last_sig = -1;
    for (int si = 0; si < kTxCoeffs; ++si) {
        if (levels[static_cast<size_t>(scan[static_cast<size_t>(si)])] != 0)
            last_sig = si;
    }
    writer.writeBit(kCtxCbf, last_sig >= 0 ? 1 : 0);
    if (last_sig < 0)
        return;
    for (int si = 0; si <= last_sig && si < kTxCoeffs; ++si) {
        const int band = coeffBand(si);
        writer.writeBit(kCtxEobBand0 + band, 0);
        const int16_t level =
            levels[static_cast<size_t>(scan[static_cast<size_t>(si)])];
        writer.writeBit(kCtxSigBand0 + band, level != 0 ? 1 : 0);
        if (level != 0) {
            writer.writeLiteral(level < 0 ? 1u : 0u, 1);
            writer.writeUInt(kCtxMagBand0 + band,
                             static_cast<uint32_t>(std::abs(level)) - 1);
        }
    }
    if (last_sig < kTxCoeffs - 1) {
        const int band = coeffBand(last_sig + 1);
        writer.writeBit(kCtxEobBand0 + band, 1);
    }
}

void
readCoeffBlock(SyntaxReader &reader, CoeffBlock &levels)
{
    levels.fill(0);
    if (reader.readBit(kCtxCbf) == 0)
        return;
    const auto &scan = zigzagOrder();
    for (int si = 0; si < kTxCoeffs; ++si) {
        const int band = coeffBand(si);
        if (reader.readBit(kCtxEobBand0 + band) == 1)
            break;
        if (reader.readBit(kCtxSigBand0 + band) == 1) {
            const bool negative = reader.readLiteral(1) != 0;
            const uint32_t mag =
                reader.readUInt(kCtxMagBand0 + band) + 1;
            const auto value = static_cast<int16_t>(
                std::min<uint32_t>(mag, 32767));
            levels[static_cast<size_t>(scan[static_cast<size_t>(si)])] =
                negative ? static_cast<int16_t>(-value) : value;
        }
    }
}

int
estimateCoeffBits(const CoeffBlock &levels)
{
    const auto &scan = zigzagOrder();
    int last_sig = -1;
    for (int si = 0; si < kTxCoeffs; ++si) {
        if (levels[static_cast<size_t>(scan[static_cast<size_t>(si)])] != 0)
            last_sig = si;
    }
    if (last_sig < 0)
        return 1;
    int bits = 2; // cbf + trailing EOB.
    for (int si = 0; si <= last_sig; ++si) {
        const int16_t level =
            levels[static_cast<size_t>(scan[static_cast<size_t>(si)])];
        bits += 2; // EOB-continue + significance.
        if (level != 0) {
            bits += 1 +
                ueBits(static_cast<uint32_t>(std::abs(level)) - 1);
        }
    }
    return bits;
}

} // namespace wsva::video::codec
