#include "video/codec/bitio.h"

#include "common/logging.h"

namespace wsva::video::codec {

void
BitWriter::putBit(int bit)
{
    accum_ = (accum_ << 1) | static_cast<uint32_t>(bit & 1);
    ++accum_bits_;
    ++bit_count_;
    if (accum_bits_ == 8) {
        buf_.push_back(static_cast<uint8_t>(accum_));
        accum_ = 0;
        accum_bits_ = 0;
    }
}

void
BitWriter::putBits(uint32_t value, int count)
{
    WSVA_ASSERT(count >= 0 && count <= 32, "bad bit count %d", count);
    for (int i = count - 1; i >= 0; --i)
        putBit(static_cast<int>((value >> i) & 1));
}

void
BitWriter::byteAlign()
{
    while (accum_bits_ != 0)
        putBit(0);
}

std::vector<uint8_t>
BitWriter::take()
{
    byteAlign();
    return std::move(buf_);
}

int
BitReader::getBit()
{
    if (bit_pos_ >= size_ * 8) {
        overrun_ = true;
        return 0;
    }
    const size_t byte = bit_pos_ / 8;
    const int shift = 7 - static_cast<int>(bit_pos_ % 8);
    ++bit_pos_;
    return (data_[byte] >> shift) & 1;
}

uint32_t
BitReader::getBits(int count)
{
    WSVA_ASSERT(count >= 0 && count <= 32, "bad bit count %d", count);
    uint32_t v = 0;
    for (int i = 0; i < count; ++i)
        v = (v << 1) | static_cast<uint32_t>(getBit());
    return v;
}

void
BitReader::byteAlign()
{
    while (bit_pos_ % 8 != 0)
        ++bit_pos_;
}

} // namespace wsva::video::codec
