#include "video/codec/bitstream.h"

#include <cmath>
#include <cstring>

#include "common/logging.h"

namespace wsva::video::codec {

namespace {

constexpr char kMagic[4] = {'W', 'V', 'C', '1'};

void
putU16(std::vector<uint8_t> &buf, uint32_t v)
{
    buf.push_back(static_cast<uint8_t>(v >> 8));
    buf.push_back(static_cast<uint8_t>(v));
}

void
putU32(std::vector<uint8_t> &buf, uint32_t v)
{
    putU16(buf, v >> 16);
    putU16(buf, v & 0xffff);
}

uint32_t
getU16(const std::vector<uint8_t> &buf, size_t &pos)
{
    const uint32_t v = (static_cast<uint32_t>(buf[pos]) << 8) | buf[pos + 1];
    pos += 2;
    return v;
}

uint32_t
getU32(const std::vector<uint8_t> &buf, size_t &pos)
{
    const uint32_t hi = getU16(buf, pos);
    return (hi << 16) | getU16(buf, pos);
}

} // namespace

StreamWriter::StreamWriter(const SequenceHeader &seq)
{
    WSVA_ASSERT(seq.width > 0 && seq.width < 65536 && seq.height > 0 &&
                    seq.height < 65536,
                "bad stream dimensions %dx%d", seq.width, seq.height);
    // push_back instead of insert() of the raw array: sidesteps a GCC
    // 12 -Wstringop-overflow false positive on the memmove path.
    for (char c : kMagic)
        buf_.push_back(static_cast<uint8_t>(c));
    buf_.push_back(static_cast<uint8_t>(seq.codec));
    putU16(buf_, static_cast<uint32_t>(seq.width));
    putU16(buf_, static_cast<uint32_t>(seq.height));
    putU32(buf_, static_cast<uint32_t>(std::lround(seq.fps * 100.0)));
    putU16(buf_, static_cast<uint32_t>(seq.frame_count));
}

void
StreamWriter::addFrame(const FrameHeader &hdr,
                       const std::vector<uint8_t> &payload)
{
    putU32(buf_, static_cast<uint32_t>(payload.size()));
    uint32_t bits = 0;
    bits |= (static_cast<uint32_t>(hdr.type) & 3u) << 14;
    bits |= (hdr.show ? 1u : 0u) << 13;
    bits |= (static_cast<uint32_t>(hdr.qp) & 63u) << 7;
    bits |= (hdr.update_last ? 1u : 0u) << 6;
    bits |= (hdr.update_golden ? 1u : 0u) << 5;
    bits |= (hdr.update_altref ? 1u : 0u) << 4;
    putU16(buf_, bits);
    buf_.insert(buf_.end(), payload.begin(), payload.end());
}

std::vector<uint8_t>
StreamWriter::take()
{
    return std::move(buf_);
}

std::optional<StreamReader>
StreamReader::open(const std::vector<uint8_t> &bytes)
{
    if (bytes.size() < 15 || std::memcmp(bytes.data(), kMagic, 4) != 0)
        return std::nullopt;
    size_t pos = 4;
    SequenceHeader seq;
    const uint8_t codec = bytes[pos++];
    if (codec > 1)
        return std::nullopt;
    seq.codec = static_cast<CodecType>(codec);
    seq.width = static_cast<int>(getU16(bytes, pos));
    seq.height = static_cast<int>(getU16(bytes, pos));
    seq.fps = static_cast<double>(getU32(bytes, pos)) / 100.0;
    seq.frame_count = static_cast<int>(getU16(bytes, pos));
    if (seq.width <= 0 || seq.height <= 0 || seq.fps <= 0.0)
        return std::nullopt;
    return StreamReader(bytes, seq, pos);
}

bool
StreamReader::nextFrame(FrameHeader &hdr, std::vector<uint8_t> &payload)
{
    if (pos_ + 6 > bytes_->size())
        return false;
    const uint32_t size = getU32(*bytes_, pos_);
    const uint32_t bits = getU16(*bytes_, pos_);
    if (pos_ + size > bytes_->size())
        return false;
    hdr.type = static_cast<FrameType>((bits >> 14) & 3u);
    hdr.show = ((bits >> 13) & 1u) != 0;
    hdr.qp = static_cast<int>((bits >> 7) & 63u);
    hdr.update_last = ((bits >> 6) & 1u) != 0;
    hdr.update_golden = ((bits >> 5) & 1u) != 0;
    hdr.update_altref = ((bits >> 4) & 1u) != 0;
    payload.assign(bytes_->begin() + static_cast<long>(pos_),
                   bytes_->begin() + static_cast<long>(pos_ + size));
    pos_ += size;
    return true;
}

} // namespace wsva::video::codec
