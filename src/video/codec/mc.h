/**
 * @file
 * Motion vectors, block sampling, motion compensation (with half-pel
 * bilinear interpolation), and block distortion primitives.
 *
 * Motion vectors are stored in half-pel units throughout the codec.
 */

#ifndef WSVA_VIDEO_CODEC_MC_H
#define WSVA_VIDEO_CODEC_MC_H

#include <algorithm>
#include <cstdint>

#include "video/frame.h"

namespace wsva::video::codec {

/** Motion vector in half-pel units. */
struct Mv
{
    int16_t x = 0;
    int16_t y = 0;

    bool operator==(const Mv &other) const = default;
};

/**
 * Copy a w x h patch from @p src at (x, y) into @p out (row stride
 * w). The common in-frame case is a straight row copy; out-of-frame
 * samples are edge-clamped. This is the one shared fetch used by
 * extractBlock and motionCompensate (one copy of the bounds logic,
 * no divergence risk), inlined because it sits inside the motion
 * search inner loops.
 */
inline void
fetchPatch(const Plane &src, int x, int y, int w, int h, uint8_t *out)
{
    const bool inside = x >= 0 && y >= 0 && x + w <= src.width() &&
                        y + h <= src.height();
    if (inside) {
        for (int r = 0; r < h; ++r) {
            const uint8_t *row = src.row(y + r) + x;
            std::copy(row, row + w, out + r * w);
        }
        return;
    }
    for (int r = 0; r < h; ++r)
        for (int c = 0; c < w; ++c)
            out[r * w + c] = src.clampedAt(x + c, y + r);
}

/**
 * Sample an n x n motion-compensated prediction from @p ref at block
 * position (x, y) displaced by @p mv (half-pel). Out-of-frame samples
 * are edge-clamped.
 */
void motionCompensate(const Plane &ref, int x, int y, int n, Mv mv,
                      uint8_t *out);

/** Copy an n x n source block (edge-clamped) into @p out. */
void extractBlock(const Plane &src, int x, int y, int n, uint8_t *out);

/** Sum of absolute differences between two n*n sample arrays. */
uint32_t blockSad(const uint8_t *a, const uint8_t *b, int n);

/**
 * blockSad with a row-granular early exit: returns as soon as the
 * running sum reaches @p bound. The return value is exact when it is
 * below @p bound and otherwise only guaranteed to be >= @p bound, so
 * strict less-than acceptance tests against @p bound are unaffected.
 */
uint32_t blockSadBounded(const uint8_t *a, const uint8_t *b, int n,
                         uint32_t bound);

/**
 * SAD between a cached n x n source block @p cur (row stride n) and
 * the block of @p ref at (rx, ry), with the same early-exit contract
 * as blockSadBounded. The motion-search workhorse: the source block
 * is fetched once per macroblock instead of once per candidate.
 */
uint32_t sadAgainstBlock(const uint8_t *cur, const Plane &ref, int rx,
                         int ry, int n, uint32_t bound);

/** Sum of squared errors between two n*n sample arrays. */
uint64_t blockSse(const uint8_t *a, const uint8_t *b, int n);

/**
 * SAD between the n x n source block at (x, y) in @p src and the
 * integer-pel displaced block in @p ref; the workhorse of integer
 * motion search (avoids materializing prediction buffers).
 */
uint32_t sadAt(const Plane &src, const Plane &ref, int x, int y, int n,
               int dx, int dy);

} // namespace wsva::video::codec

#endif // WSVA_VIDEO_CODEC_MC_H
