/**
 * @file
 * Motion vectors, block sampling, motion compensation (with half-pel
 * bilinear interpolation), and block distortion primitives.
 *
 * Motion vectors are stored in half-pel units throughout the codec.
 */

#ifndef WSVA_VIDEO_CODEC_MC_H
#define WSVA_VIDEO_CODEC_MC_H

#include <cstdint>

#include "video/frame.h"

namespace wsva::video::codec {

/** Motion vector in half-pel units. */
struct Mv
{
    int16_t x = 0;
    int16_t y = 0;

    bool operator==(const Mv &other) const = default;
};

/**
 * Sample an n x n motion-compensated prediction from @p ref at block
 * position (x, y) displaced by @p mv (half-pel). Out-of-frame samples
 * are edge-clamped.
 */
void motionCompensate(const Plane &ref, int x, int y, int n, Mv mv,
                      uint8_t *out);

/** Copy an n x n source block (edge-clamped) into @p out. */
void extractBlock(const Plane &src, int x, int y, int n, uint8_t *out);

/** Sum of absolute differences between two n*n sample arrays. */
uint32_t blockSad(const uint8_t *a, const uint8_t *b, int n);

/** Sum of squared errors between two n*n sample arrays. */
uint64_t blockSse(const uint8_t *a, const uint8_t *b, int n);

/**
 * SAD between the n x n source block at (x, y) in @p src and the
 * integer-pel displaced block in @p ref; the workhorse of integer
 * motion search (avoids materializing prediction buffers).
 */
uint32_t sadAt(const Plane &src, const Plane &ref, int x, int y, int n,
               int dx, int dy);

} // namespace wsva::video::codec

#endif // WSVA_VIDEO_CODEC_MC_H
