#include "video/codec/loop_filter.h"

#include <algorithm>

namespace wsva::video::codec {

namespace {

/** Edge-activity threshold: only filter edges that look like blocking
 *  artifacts (smooth on both sides, step across). Grows with QP. */
int
alphaThreshold(int qp)
{
    return 2 + qp / 4;
}

/** Maximum per-sample correction. */
int
tcLimit(int qp)
{
    return 1 + qp / 12;
}

/**
 * Filter one edge sample quartet p1 p0 | q0 q1.
 * Mirrors the H.264 weak filter shape: a clipped delta applied
 * symmetrically across the edge.
 */
void
filterSamples(uint8_t &p1, uint8_t &p0, uint8_t &q0, uint8_t &q1, int alpha,
              int tc)
{
    const int dp = static_cast<int>(p0) - q0;
    if (std::abs(dp) >= alpha)
        return; // A real image edge, not a blocking artifact.
    if (std::abs(static_cast<int>(p1) - p0) >= alpha ||
        std::abs(static_cast<int>(q1) - q0) >= alpha) {
        return; // Sides are not smooth; filtering would blur detail.
    }
    const int delta = std::clamp((((q0 - p0) * 4) + (p1 - q1) + 4) >> 3,
                                 -tc, tc);
    p0 = static_cast<uint8_t>(std::clamp(static_cast<int>(p0) + delta,
                                         0, 255));
    q0 = static_cast<uint8_t>(std::clamp(static_cast<int>(q0) - delta,
                                         0, 255));
}

} // namespace

void
deblockPlane(Plane &plane, int qp)
{
    const int alpha = alphaThreshold(qp);
    const int tc = tcLimit(qp);
    const int width = plane.width();
    const int height = plane.height();

    // Vertical edges (filter across columns at x = 8, 16, ...).
    for (int x = 8; x < width; x += 8) {
        for (int y = 0; y < height; ++y) {
            uint8_t *row = plane.row(y);
            filterSamples(row[x - 2], row[x - 1], row[x], row[x + 1 < width
                              ? x + 1 : x],
                          alpha, tc);
        }
    }
    // Horizontal edges.
    for (int y = 8; y < height; y += 8) {
        for (int x = 0; x < width; ++x) {
            uint8_t &p1 = plane.at(x, y - 2);
            uint8_t &p0 = plane.at(x, y - 1);
            uint8_t &q0 = plane.at(x, y);
            uint8_t &q1 = plane.at(x, y + 1 < height ? y + 1 : y);
            filterSamples(p1, p0, q0, q1, alpha, tc);
        }
    }
}

void
deblockFrame(Frame &frame, int qp)
{
    deblockPlane(frame.y(), qp);
    deblockPlane(frame.u(), qp);
    deblockPlane(frame.v(), qp);
}

} // namespace wsva::video::codec
