/**
 * @file
 * Integer and sub-pel motion estimation.
 *
 * Two integer search strategies mirror the paper's software/hardware
 * split: diamond search (the typical software encoder pattern) and
 * exhaustive window search (what the VCU's SRAM reference store makes
 * affordable — "an exhaustive, multi-resolution motion search ...
 * better results than are typically obtained in software"). Both are
 * followed by half-pel refinement.
 */

#ifndef WSVA_VIDEO_CODEC_MOTION_SEARCH_H
#define WSVA_VIDEO_CODEC_MOTION_SEARCH_H

#include <cstdint>

#include "video/codec/mc.h"
#include "video/frame.h"

namespace wsva::video::codec {

/** Result of a motion search. */
struct MotionResult
{
    Mv mv;            //!< Best vector in half-pel units.
    uint32_t sad = 0; //!< SAD at the best vector (half-pel accurate).
};

/** Search strategy selector. */
enum class SearchKind {
    Diamond,    //!< Software-style gradient descent.
    Exhaustive, //!< Hardware-style full window scan.
};

/**
 * Find the best motion vector for the n x n block at (x, y) of @p src
 * against @p ref.
 *
 * @param pred Predicted MV (search center), half-pel units.
 * @param range Integer-pel search radius around the center.
 * @param mv_cost_bias Added cost per MV-difference unit (favors MVs
 *        near the predictor; keeps the MV field coherent).
 */
MotionResult searchMotion(const Plane &src, const Plane &ref, int x, int y,
                          int n, Mv pred, int range, SearchKind kind,
                          uint32_t mv_cost_bias = 2);

} // namespace wsva::video::codec

#endif // WSVA_VIDEO_CODEC_MOTION_SEARCH_H
