/**
 * @file
 * Motion-aligned temporal filtering for alternate reference frames.
 *
 * Reproduces the VCU encoder-core feature (Section 3.2): 16x16 blocks
 * from neighboring frames are motion-aligned to the center frame and
 * blended, producing a synthetic, low-noise frame that is encoded as
 * a non-displayable alternate reference (VP9-profile only). The
 * filter can be applied iteratively to cover more than 3 frames.
 */

#ifndef WSVA_VIDEO_CODEC_TEMPORAL_FILTER_H
#define WSVA_VIDEO_CODEC_TEMPORAL_FILTER_H

#include <vector>

#include "video/frame.h"

namespace wsva::video::codec {

/**
 * Temporally filter @p frames around index @p center (uses up to one
 * neighbor on each side per application, as the VCU filters 3 frames
 * at a time).
 *
 * @param strength Blend weight of the neighbors relative to the
 *        center block (0 = no filtering, 2 = default paper-like
 *        2:1:1 weighting).
 * @param iterations Apply the 3-frame filter this many times,
 *        widening the effective temporal support.
 */
Frame temporalFilter(const std::vector<Frame> &frames, int center,
                     int strength = 2, int iterations = 1);

} // namespace wsva::video::codec

#endif // WSVA_VIDEO_CODEC_TEMPORAL_FILTER_H
