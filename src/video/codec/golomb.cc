#include "video/codec/golomb.h"

#include <bit>

#include "common/logging.h"

namespace wsva::video::codec {

void
putUe(BitWriter &bw, uint32_t value)
{
    WSVA_ASSERT(value < 0xffffffffu, "ue(v) value overflow");
    const uint32_t code = value + 1;
    const int len = 32 - std::countl_zero(code);
    for (int i = 0; i < len - 1; ++i)
        bw.putBit(0);
    bw.putBits(code, len);
}

uint32_t
getUe(BitReader &br)
{
    int zeros = 0;
    while (br.getBit() == 0 && !br.overrun() && zeros < 32)
        ++zeros;
    uint32_t suffix = zeros > 0 ? br.getBits(zeros) : 0;
    return ((1u << zeros) | suffix) - 1;
}

void
putSe(BitWriter &bw, int32_t value)
{
    // H.264 mapping: 0, 1, -1, 2, -2, ... -> 0, 1, 2, 3, 4, ...
    uint32_t mapped = value > 0
        ? 2u * static_cast<uint32_t>(value) - 1
        : 2u * static_cast<uint32_t>(-value);
    putUe(bw, mapped);
}

int32_t
getSe(BitReader &br)
{
    uint32_t mapped = getUe(br);
    if (mapped & 1)
        return static_cast<int32_t>((mapped + 1) / 2);
    return -static_cast<int32_t>(mapped / 2);
}

int
ueBits(uint32_t value)
{
    const uint32_t code = value + 1;
    const int len = 32 - std::countl_zero(code);
    return 2 * len - 1;
}

int
seBits(int32_t value)
{
    uint32_t mapped = value > 0
        ? 2u * static_cast<uint32_t>(value) - 1
        : 2u * static_cast<uint32_t>(-value);
    return ueBits(mapped);
}

} // namespace wsva::video::codec
