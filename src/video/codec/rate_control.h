/**
 * @file
 * Rate control: first-pass analysis and quantizer selection.
 *
 * Implements the paper's encoding-mode taxonomy (Section 2.1):
 * one-pass low latency, two-pass low-latency, lagged two-pass with a
 * bounded future window, and offline two-pass with whole-clip
 * statistics. The second pass allocates the bit budget across frames
 * proportionally to first-pass complexity and converts per-frame
 * targets to quantizers through an adaptive rate model
 * (bits ~ k * pixels * complexity / qstep).
 */

#ifndef WSVA_VIDEO_CODEC_RATE_CONTROL_H
#define WSVA_VIDEO_CODEC_RATE_CONTROL_H

#include <vector>

#include "video/codec/codec.h"
#include "video/frame.h"

namespace wsva::video::codec {

/** Per-frame statistics from the analysis pass. */
struct FirstPassFrameStats
{
    double intra_cost = 0.0;  //!< Mean per-pixel intra (DC) SAD.
    double inter_cost = 0.0;  //!< Mean per-pixel inter SAD vs prev.
    double complexity = 0.0;  //!< min(intra, inter) — coding effort.
    bool scene_cut = false;   //!< Inter prediction broke down.
};

using FirstPassStats = std::vector<FirstPassFrameStats>;

/** Cheap analysis pass over source frames (no encoding). */
FirstPassStats runFirstPass(const std::vector<Frame> &frames);

/** Quantizer selection state machine for one encode. */
class RateController
{
  public:
    /** Behaviour tweaks tied to the hardware tuning level (Fig. 10). */
    struct Tuning
    {
        bool adapt_rate_model = true; //!< Update k from outcomes.
        double keyframe_boost = 1.5;  //!< Extra budget for keyframes.
        double complexity_exponent = 0.7; //!< Allocation flattening.
    };

    /**
     * @param cfg Encoder configuration (rc mode, bitrate, fps...).
     * @param stats First-pass stats; required for the two-pass lagged
     *        and offline modes, optional otherwise.
     */
    RateController(const EncoderConfig &cfg, FirstPassStats stats,
                   Tuning tuning);

    /** Pick the quantizer for the frame about to be encoded. */
    int pickQp(int display_idx, FrameType type);

    /** Report the quantizer used and actual size of an encoded frame. */
    void onFrameEncoded(int display_idx, FrameType type, int qp_used,
                        double bits);

    /** Current rate-model gain (bits per pixel-complexity/qstep). */
    double rateModelGain() const { return k_; }

  private:
    double frameComplexity(int display_idx) const;
    double targetBits(int display_idx, FrameType type);
    int qpForTarget(double target_bits, double complexity) const;

    EncoderConfig cfg_;
    FirstPassStats stats_;
    Tuning tuning_;

    double k_;                 //!< Adaptive rate-model gain.
    double per_frame_budget_;  //!< bitrate / fps.
    double buffer_;            //!< Over/under-spend accumulator (bits).
    double ewma_complexity_;   //!< Trailing complexity (low-latency).
    int last_qp_;
    bool have_encoded_ = false;
};

} // namespace wsva::video::codec

#endif // WSVA_VIDEO_CODEC_RATE_CONTROL_H
