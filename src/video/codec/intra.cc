#include "video/codec/intra.h"

#include <algorithm>

#include "common/logging.h"

namespace wsva::video::codec {

void
intraPredict(const Plane &recon, int x, int y, int n, IntraMode mode,
             uint8_t *out)
{
    const bool has_top = y > 0;
    const bool has_left = x > 0;

    // Gather neighbors (clamped to plane edges on the far side).
    uint8_t top[64];
    uint8_t left[64];
    WSVA_ASSERT(n <= 64, "intra block too large");
    for (int i = 0; i < n; ++i) {
        top[i] = has_top ? recon.clampedAt(x + i, y - 1) : 128;
        left[i] = has_left ? recon.clampedAt(x - 1, y + i) : 128;
    }
    const uint8_t corner =
        (has_top && has_left) ? recon.at(x - 1, y - 1) : 128;

    switch (mode) {
      case IntraMode::Dc: {
        uint32_t acc = 0;
        uint32_t cnt = 0;
        if (has_top) {
            for (int i = 0; i < n; ++i)
                acc += top[i];
            cnt += static_cast<uint32_t>(n);
        }
        if (has_left) {
            for (int i = 0; i < n; ++i)
                acc += left[i];
            cnt += static_cast<uint32_t>(n);
        }
        const uint8_t dc = cnt > 0
            ? static_cast<uint8_t>((acc + cnt / 2) / cnt)
            : 128;
        std::fill(out, out + n * n, dc);
        break;
      }
      case IntraMode::Vertical:
        for (int r = 0; r < n; ++r)
            for (int c = 0; c < n; ++c)
                out[r * n + c] = top[c];
        break;
      case IntraMode::Horizontal:
        for (int r = 0; r < n; ++r)
            for (int c = 0; c < n; ++c)
                out[r * n + c] = left[r];
        break;
      case IntraMode::TrueMotion:
        for (int r = 0; r < n; ++r) {
            for (int c = 0; c < n; ++c) {
                const int v = static_cast<int>(left[r]) + top[c] - corner;
                out[r * n + c] =
                    static_cast<uint8_t>(std::clamp(v, 0, 255));
            }
        }
        break;
      default:
        panic("bad intra mode %d", static_cast<int>(mode));
    }
}

} // namespace wsva::video::codec
