/**
 * @file
 * Intra prediction from reconstructed neighbor pixels.
 *
 * Prediction operates on square blocks at any position inside a
 * plane, reading the row above and the column to the left of the
 * block from the reconstruction built so far (raster MB order means
 * those pixels are final). Unavailable neighbors fall back to the
 * 128 mid-grey, as in H.264/VP9.
 */

#ifndef WSVA_VIDEO_CODEC_INTRA_H
#define WSVA_VIDEO_CODEC_INTRA_H

#include <cstdint>
#include <vector>

#include "video/frame.h"

namespace wsva::video::codec {

/** Intra prediction modes (both profiles share the set). */
enum class IntraMode : int {
    Dc = 0,
    Vertical = 1,
    Horizontal = 2,
    TrueMotion = 3, //!< VP9's TM / gradient predictor.
};

constexpr int kNumIntraModes = 4;

/**
 * Predict an n x n block at plane position (x, y) from reconstructed
 * neighbors. @p out receives n*n predicted samples, row-major.
 */
void intraPredict(const Plane &recon, int x, int y, int n, IntraMode mode,
                  uint8_t *out);

} // namespace wsva::video::codec

#endif // WSVA_VIDEO_CODEC_INTRA_H
