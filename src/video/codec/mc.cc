#include "video/codec/mc.h"

#include <algorithm>

#include "common/logging.h"

namespace wsva::video::codec {

void
extractBlock(const Plane &src, int x, int y, int n, uint8_t *out)
{
    fetchPatch(src, x, y, n, n, out);
}

void
motionCompensate(const Plane &ref, int x, int y, int n, Mv mv, uint8_t *out)
{
    const int ix = x + (mv.x >> 1);
    const int iy = y + (mv.y >> 1);
    const bool half_x = mv.x & 1;
    const bool half_y = mv.y & 1;

    if (!half_x && !half_y) {
        extractBlock(ref, ix, iy, n, out);
        return;
    }

    // Bilinear half-pel: fetch an (n+1) x (n+1) patch then filter.
    uint8_t patch[65 * 65];
    WSVA_ASSERT(n <= 64, "MC block too large");
    const int pn = n + 1;
    fetchPatch(ref, ix, iy, pn, pn, patch);

    for (int r = 0; r < n; ++r) {
        for (int c = 0; c < n; ++c) {
            const int p00 = patch[r * pn + c];
            const int p01 = patch[r * pn + c + 1];
            const int p10 = patch[(r + 1) * pn + c];
            const int p11 = patch[(r + 1) * pn + c + 1];
            int v;
            if (half_x && half_y)
                v = (p00 + p01 + p10 + p11 + 2) >> 2;
            else if (half_x)
                v = (p00 + p01 + 1) >> 1;
            else
                v = (p00 + p10 + 1) >> 1;
            out[r * n + c] = static_cast<uint8_t>(v);
        }
    }
}

uint32_t
blockSad(const uint8_t *a, const uint8_t *b, int n)
{
    uint32_t acc = 0;
    const int count = n * n;
    for (int i = 0; i < count; ++i)
        acc += static_cast<uint32_t>(std::abs(int(a[i]) - int(b[i])));
    return acc;
}

uint32_t
blockSadBounded(const uint8_t *a, const uint8_t *b, int n, uint32_t bound)
{
    uint32_t acc = 0;
    for (int r = 0; r < n; ++r) {
        const uint8_t *pa = a + r * n;
        const uint8_t *pb = b + r * n;
        for (int c = 0; c < n; ++c)
            acc += static_cast<uint32_t>(
                std::abs(int(pa[c]) - int(pb[c])));
        if (acc >= bound)
            return acc;
    }
    return acc;
}

uint32_t
sadAgainstBlock(const uint8_t *cur, const Plane &ref, int rx, int ry,
                int n, uint32_t bound)
{
    const bool inside = rx >= 0 && ry >= 0 && rx + n <= ref.width() &&
                        ry + n <= ref.height();
    uint32_t acc = 0;
    if (inside) {
        for (int r = 0; r < n; ++r) {
            const uint8_t *s = cur + r * n;
            const uint8_t *p = ref.row(ry + r) + rx;
            for (int c = 0; c < n; ++c)
                acc += static_cast<uint32_t>(
                    std::abs(int(s[c]) - int(p[c])));
            if (acc >= bound)
                return acc;
        }
        return acc;
    }
    for (int r = 0; r < n; ++r) {
        const uint8_t *s = cur + r * n;
        for (int c = 0; c < n; ++c) {
            const int p = ref.clampedAt(rx + c, ry + r);
            acc += static_cast<uint32_t>(std::abs(int(s[c]) - p));
        }
        if (acc >= bound)
            return acc;
    }
    return acc;
}

uint64_t
blockSse(const uint8_t *a, const uint8_t *b, int n)
{
    uint64_t acc = 0;
    const int count = n * n;
    for (int i = 0; i < count; ++i) {
        const int d = int(a[i]) - int(b[i]);
        acc += static_cast<uint64_t>(d * d);
    }
    return acc;
}

uint32_t
sadAt(const Plane &src, const Plane &ref, int x, int y, int n, int dx,
      int dy)
{
    const int rx = x + dx;
    const int ry = y + dy;
    const bool inside = rx >= 0 && ry >= 0 && rx + n <= ref.width() &&
                        ry + n <= ref.height() && x + n <= src.width() &&
                        y + n <= src.height();
    uint32_t acc = 0;
    if (inside) {
        for (int r = 0; r < n; ++r) {
            const uint8_t *s = src.row(y + r) + x;
            const uint8_t *p = ref.row(ry + r) + rx;
            for (int c = 0; c < n; ++c)
                acc += static_cast<uint32_t>(std::abs(int(s[c]) - int(p[c])));
        }
        return acc;
    }
    for (int r = 0; r < n; ++r) {
        for (int c = 0; c < n; ++c) {
            const int s = src.clampedAt(x + c, y + r);
            const int p = ref.clampedAt(rx + c, ry + r);
            acc += static_cast<uint32_t>(std::abs(s - p));
        }
    }
    return acc;
}

} // namespace wsva::video::codec
