/**
 * @file
 * Bit-level I/O over byte buffers, MSB-first. Foundation for the
 * Exp-Golomb coder (H.264-like profile) and stream container headers.
 */

#ifndef WSVA_VIDEO_CODEC_BITIO_H
#define WSVA_VIDEO_CODEC_BITIO_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace wsva::video::codec {

/** MSB-first bit writer appending to an internal byte buffer. */
class BitWriter
{
  public:
    /** Append a single bit. */
    void putBit(int bit);

    /** Append the low @p count bits of @p value, MSB first. */
    void putBits(uint32_t value, int count);

    /** Pad with zero bits to the next byte boundary. */
    void byteAlign();

    /** Number of bits written so far. */
    uint64_t bitCount() const { return bit_count_; }

    /** Finish (byte-aligns) and return the buffer. */
    std::vector<uint8_t> take();

    /** Read-only view of the bytes completed so far. */
    const std::vector<uint8_t> &bytes() const { return buf_; }

  private:
    std::vector<uint8_t> buf_;
    uint32_t accum_ = 0;
    int accum_bits_ = 0;
    uint64_t bit_count_ = 0;
};

/** MSB-first bit reader over an external byte buffer. */
class BitReader
{
  public:
    BitReader(const uint8_t *data, size_t size)
        : data_(data), size_(size) {}

    explicit BitReader(const std::vector<uint8_t> &data)
        : BitReader(data.data(), data.size()) {}

    /** Read one bit; reads past the end return 0 and set overrun. */
    int getBit();

    /** Read @p count bits MSB-first. */
    uint32_t getBits(int count);

    /** Skip to the next byte boundary. */
    void byteAlign();

    /** Bits consumed so far. */
    uint64_t bitPosition() const { return bit_pos_; }

    /** True once a read went past the end of the buffer. */
    bool overrun() const { return overrun_; }

    /** True if every payload bit has been consumed. */
    bool exhausted() const { return bit_pos_ >= size_ * 8; }

  private:
    const uint8_t *data_;
    size_t size_;
    uint64_t bit_pos_ = 0;
    bool overrun_ = false;
};

} // namespace wsva::video::codec

#endif // WSVA_VIDEO_CODEC_BITIO_H
