#include "video/codec/transform.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/profiler.h"

namespace wsva::video::codec {

namespace {

constexpr int kBasisBits = 13; //!< Fixed-point scale of the DCT basis.

/** Integer DCT-II basis matrix, scaled by 2^kBasisBits. */
struct DctTables
{
    int32_t basis[kTxSize][kTxSize];
    int32_t dequant[kMaxQp + 1];
    int64_t quant_scale[kMaxQp + 1]; //!< round(2^20 / dequant).

    DctTables()
    {
        for (int u = 0; u < kTxSize; ++u) {
            const double a = u == 0 ? std::sqrt(1.0 / kTxSize)
                                    : std::sqrt(2.0 / kTxSize);
            for (int k = 0; k < kTxSize; ++k) {
                const double v =
                    a * std::cos((2 * k + 1) * u * M_PI / (2.0 * kTxSize));
                basis[u][k] = static_cast<int32_t>(
                    std::lround(v * (1 << kBasisBits)));
            }
        }
        for (int qp = 0; qp <= kMaxQp; ++qp) {
            const double step = qstep(qp);
            dequant[qp] = std::max(1,
                static_cast<int>(std::lround(step)));
            quant_scale[qp] = static_cast<int64_t>(
                std::lround((1 << 20) / static_cast<double>(dequant[qp])));
        }
    }
};

const DctTables &
tables()
{
    static const DctTables t;
    return t;
}

} // namespace

double
qstep(int qp)
{
    WSVA_ASSERT(qp >= 0 && qp <= kMaxQp, "qp %d out of range", qp);
    return 0.9 * std::exp2(static_cast<double>(qp) / 8.0);
}

void
forwardDct(const ResidualBlock &in, std::array<int32_t, kTxCoeffs> &out)
{
    const auto &t = tables();
    // Stage 1: rows transformed by basis^T -> tmp[u][col].
    int32_t tmp[kTxSize][kTxSize];
    for (int u = 0; u < kTxSize; ++u) {
        for (int col = 0; col < kTxSize; ++col) {
            int64_t acc = 0;
            for (int k = 0; k < kTxSize; ++k)
                acc += static_cast<int64_t>(t.basis[u][k]) *
                       in[static_cast<size_t>(k * kTxSize + col)];
            // Keep stage-1 results at basis scale but bounded.
            tmp[u][col] = static_cast<int32_t>(acc >> 6);
        }
    }
    // Stage 2: columns; final shift removes both basis scales.
    constexpr int shift = 2 * kBasisBits - 6;
    constexpr int64_t round = 1LL << (shift - 1);
    for (int u = 0; u < kTxSize; ++u) {
        for (int v = 0; v < kTxSize; ++v) {
            int64_t acc = 0;
            for (int k = 0; k < kTxSize; ++k)
                acc += static_cast<int64_t>(t.basis[v][k]) * tmp[u][k];
            out[static_cast<size_t>(u * kTxSize + v)] =
                static_cast<int32_t>((acc + round) >> shift);
        }
    }
}

void
inverseDct(const std::array<int32_t, kTxCoeffs> &in, ResidualBlock &out)
{
    const auto &t = tables();
    int32_t tmp[kTxSize][kTxSize];
    // Stage 1: x[k][v] = sum_u basis[u][k] * X[u][v].
    for (int k = 0; k < kTxSize; ++k) {
        for (int v = 0; v < kTxSize; ++v) {
            int64_t acc = 0;
            for (int u = 0; u < kTxSize; ++u)
                acc += static_cast<int64_t>(t.basis[u][k]) *
                       in[static_cast<size_t>(u * kTxSize + v)];
            tmp[k][v] = static_cast<int32_t>(acc >> 6);
        }
    }
    constexpr int shift = 2 * kBasisBits - 6;
    constexpr int64_t round = 1LL << (shift - 1);
    for (int k = 0; k < kTxSize; ++k) {
        for (int l = 0; l < kTxSize; ++l) {
            int64_t acc = 0;
            for (int v = 0; v < kTxSize; ++v)
                acc += static_cast<int64_t>(t.basis[v][l]) * tmp[k][v];
            const auto value = static_cast<int32_t>((acc + round) >> shift);
            out[static_cast<size_t>(k * kTxSize + l)] =
                static_cast<int16_t>(std::clamp(value, -32768, 32767));
        }
    }
}

void
quantize(const std::array<int32_t, kTxCoeffs> &coeffs, int qp,
         double deadzone, CoeffBlock &out)
{
    const auto &t = tables();
    const int64_t scale = t.quant_scale[qp];
    const auto offset = static_cast<int64_t>(deadzone * (1 << 20));
    for (size_t i = 0; i < kTxCoeffs; ++i) {
        const int32_t c = coeffs[i];
        const int64_t mag = std::abs(static_cast<int64_t>(c));
        const int64_t level = (mag * scale + offset) >> 20;
        const auto clamped =
            static_cast<int16_t>(std::min<int64_t>(level, 32767));
        out[i] = c < 0 ? static_cast<int16_t>(-clamped) : clamped;
    }
}

void
dequantize(const CoeffBlock &levels, int qp,
           std::array<int32_t, kTxCoeffs> &out)
{
    const auto &t = tables();
    const int32_t dq = t.dequant[qp];
    for (size_t i = 0; i < kTxCoeffs; ++i)
        out[i] = static_cast<int32_t>(levels[i]) * dq;
}

const std::array<int, kTxCoeffs> &
zigzagOrder()
{
    static const std::array<int, kTxCoeffs> order = [] {
        std::array<int, kTxCoeffs> o{};
        int idx = 0;
        for (int s = 0; s < 2 * kTxSize - 1; ++s) {
            if (s % 2 == 0) {
                // Walk up-right on even diagonals.
                for (int y = std::min(s, kTxSize - 1);
                     y >= std::max(0, s - kTxSize + 1); --y) {
                    o[static_cast<size_t>(idx++)] = y * kTxSize + (s - y);
                }
            } else {
                for (int x = std::min(s, kTxSize - 1);
                     x >= std::max(0, s - kTxSize + 1); --x) {
                    o[static_cast<size_t>(idx++)] = (s - x) * kTxSize + x;
                }
            }
        }
        return o;
    }();
    return order;
}

int
transformQuantize(const ResidualBlock &residual, int qp, double deadzone,
                  CoeffBlock &levels, ResidualBlock &recon_residual)
{
    static const int kPhase = prof::phaseId("codec/dct_quant");
    // Sampled: one call per 4x4 block (hundreds of thousands per
    // clip), far too hot to clock every invocation.
    prof::ProfScopeSampled prof_scope(kPhase, 16);
    std::array<int32_t, kTxCoeffs> freq;
    forwardDct(residual, freq);
    quantize(freq, qp, deadzone, levels);
    reconstructResidual(levels, qp, recon_residual);
    int nonzero = 0;
    for (auto l : levels)
        nonzero += l != 0;
    return nonzero;
}

void
reconstructResidual(const CoeffBlock &levels, int qp,
                    ResidualBlock &recon_residual)
{
    std::array<int32_t, kTxCoeffs> freq;
    dequantize(levels, qp, freq);
    inverseDct(freq, recon_residual);
}

} // namespace wsva::video::codec
