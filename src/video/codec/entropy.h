/**
 * @file
 * Syntax-element coding layer.
 *
 * The encoder and decoder express macroblock syntax through the
 * SyntaxWriter/SyntaxReader interfaces. Two implementations exist,
 * mirroring the paper's two coding-specification families:
 *
 *  - GolombSyntax*  (H.264-like): static universal codes (Exp-Golomb)
 *    over a plain bit stream. No probability state.
 *  - ArithSyntax*   (VP9-like): context-adaptive binary arithmetic
 *    coding with *backward* per-frame probability adaptation — both
 *    sides count coded bins and re-derive the probabilities at frame
 *    end, so no probability signaling is needed (as in VP9).
 *
 * Unsigned values are binarized Exp-Golomb style: a unary prefix
 * giving the magnitude class (each prefix bin has its own adaptive
 * probability, indexed by position) followed by raw offset bits.
 */

#ifndef WSVA_VIDEO_CODEC_ENTROPY_H
#define WSVA_VIDEO_CODEC_ENTROPY_H

#include <array>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "video/codec/bitio.h"
#include "video/codec/range_coder.h"

namespace wsva::video::codec {

/** Syntax-element contexts. Band-indexed contexts are consecutive. */
enum SyntaxCtx : int {
    kCtxSkip = 0,
    kCtxIsInter,
    kCtxSplit,
    kCtxIntraMode,
    kCtxRefIdx,
    kCtxCompound,
    kCtxMvdX,
    kCtxMvdY,
    kCtxCbf,
    kCtxEobBand0, //!< 5 consecutive coefficient-band contexts.
    kCtxEobBand1,
    kCtxEobBand2,
    kCtxEobBand3,
    kCtxEobBand4,
    kCtxSigBand0, //!< 5 consecutive significance-band contexts.
    kCtxSigBand1,
    kCtxSigBand2,
    kCtxSigBand3,
    kCtxSigBand4,
    kCtxMagBand0, //!< 5 consecutive magnitude-band contexts.
    kCtxMagBand1,
    kCtxMagBand2,
    kCtxMagBand3,
    kCtxMagBand4,
    kNumSyntaxCtx,
};

/** Coefficient band of a zigzag scan position (0..63) -> [0, 5). */
int coeffBand(int scan_pos);

/**
 * Adaptive probability state for the arithmetic profile. Each
 * context owns one probability for writeBit plus one per unary
 * prefix position for writeUInt. Counts are accumulated while coding
 * and folded into the probabilities by adapt(), which the encoder
 * and decoder both call at every frame boundary.
 */
class EntropyModel
{
  public:
    static constexpr int kPrefixBins = 17; //!< bit prob + 16 prefix probs.

    EntropyModel() { reset(); }

    /** Restore default probabilities and clear counts (keyframes). */
    void reset();

    /** Fold accumulated counts into the probabilities (frame end). */
    void adapt();

    /** Probability for bin @p bin of context @p ctx. */
    Prob prob(int ctx, int bin) const { return probs_[idx(ctx, bin)]; }

    /** Record one coded bin for adaptation. */
    void
    record(int ctx, int bin, int bit)
    {
        ++counts_[idx(ctx, bin)][bit];
    }

  private:
    static size_t
    idx(int ctx, int bin)
    {
        return static_cast<size_t>(ctx) * kPrefixBins +
               static_cast<size_t>(bin);
    }

    std::array<Prob, kNumSyntaxCtx * kPrefixBins> probs_;
    std::array<std::array<uint32_t, 2>, kNumSyntaxCtx * kPrefixBins> counts_;
};

/** Abstract syntax writer (one per frame payload). */
class SyntaxWriter
{
  public:
    virtual ~SyntaxWriter() = default;

    /** Code one binary decision in context @p ctx. */
    virtual void writeBit(int ctx, int bit) = 0;

    /** Code an unsigned value in context @p ctx. */
    virtual void writeUInt(int ctx, uint32_t value) = 0;

    /** Code a signed value (zigzag-mapped) in context @p ctx. */
    void writeSInt(int ctx, int32_t value);

    /** Code @p count raw bits. */
    virtual void writeLiteral(uint32_t value, int count) = 0;

    /** Bits produced so far (exact golomb; 1/256-precision arith). */
    virtual double bitsWritten() const = 0;

    /** Finish the payload and return its bytes. */
    virtual std::vector<uint8_t> finish() = 0;
};

/** Abstract syntax reader mirroring SyntaxWriter. */
class SyntaxReader
{
  public:
    virtual ~SyntaxReader() = default;

    virtual int readBit(int ctx) = 0;
    virtual uint32_t readUInt(int ctx) = 0;
    int32_t readSInt(int ctx);
    virtual uint32_t readLiteral(int count) = 0;
};

/** H.264-like writer: Exp-Golomb over a raw bit stream. */
class GolombSyntaxWriter : public SyntaxWriter
{
  public:
    void writeBit(int ctx, int bit) override;
    void writeUInt(int ctx, uint32_t value) override;
    void writeLiteral(uint32_t value, int count) override;
    double bitsWritten() const override;
    std::vector<uint8_t> finish() override;

  private:
    BitWriter bw_;
};

/** H.264-like reader. */
class GolombSyntaxReader : public SyntaxReader
{
  public:
    GolombSyntaxReader(const uint8_t *data, size_t size) : br_(data, size) {}

    int readBit(int ctx) override;
    uint32_t readUInt(int ctx) override;
    uint32_t readLiteral(int count) override;

    /** True if a read ran past the payload. */
    bool overrun() const { return br_.overrun(); }

  private:
    BitReader br_;
};

/** VP9-like writer: adaptive arithmetic coding against @p model. */
class ArithSyntaxWriter : public SyntaxWriter
{
  public:
    explicit ArithSyntaxWriter(EntropyModel &model) : model_(&model) {}

    void writeBit(int ctx, int bit) override;
    void writeUInt(int ctx, uint32_t value) override;
    void writeLiteral(uint32_t value, int count) override;
    double bitsWritten() const override;
    std::vector<uint8_t> finish() override;

  private:
    EntropyModel *model_;
    RangeEncoder enc_;
};

/** VP9-like reader. */
class ArithSyntaxReader : public SyntaxReader
{
  public:
    ArithSyntaxReader(EntropyModel &model, const uint8_t *data, size_t size)
        : model_(&model), dec_(data, size) {}

    int readBit(int ctx) override;
    uint32_t readUInt(int ctx) override;
    uint32_t readLiteral(int count) override;

  private:
    EntropyModel *model_;
    RangeDecoder dec_;
};

/**
 * Cheap bit-size estimates used by rate-distortion mode decisions
 * (profile-independent; golomb-exact, close enough for arith).
 */
int estimateUIntBits(uint32_t value);
int estimateSIntBits(int32_t value);

} // namespace wsva::video::codec

#endif // WSVA_VIDEO_CODEC_ENTROPY_H
