/**
 * @file
 * 8x8 integer DCT, quantization, and zigzag scan.
 *
 * The transform is an integer-matrix DCT-II (13-bit fixed-point
 * basis) so results are bit-exact across platforms; the encoder's
 * reconstruction path and the decoder use the identical inverse.
 * Quantization uses a dead-zone uniform quantizer with a 64-step
 * exponential step-size table (qp in [0, 63]).
 */

#ifndef WSVA_VIDEO_CODEC_TRANSFORM_H
#define WSVA_VIDEO_CODEC_TRANSFORM_H

#include <array>
#include <cstdint>

namespace wsva::video::codec {

constexpr int kTxSize = 8;                      //!< Transform is 8x8.
constexpr int kTxCoeffs = kTxSize * kTxSize;    //!< 64 coefficients.
constexpr int kMaxQp = 63;                      //!< Quantizer range.

/** Residual / coefficient block storage. */
using ResidualBlock = std::array<int16_t, kTxCoeffs>;
using CoeffBlock = std::array<int16_t, kTxCoeffs>;

/** Forward 8x8 DCT of a residual block (row-major). */
void forwardDct(const ResidualBlock &in, std::array<int32_t, kTxCoeffs> &out);

/** Inverse 8x8 DCT back to the (approximate) residual. */
void inverseDct(const std::array<int32_t, kTxCoeffs> &in, ResidualBlock &out);

/** Quantizer step size for @p qp (exponential, ~0.9 to ~190). */
double qstep(int qp);

/**
 * Dead-zone quantization of DCT coefficients.
 * @param deadzone Rounding offset in [0, 0.5); smaller = more zeros.
 */
void quantize(const std::array<int32_t, kTxCoeffs> &coeffs, int qp,
              double deadzone, CoeffBlock &out);

/** Dequantize levels back to coefficient magnitudes. */
void dequantize(const CoeffBlock &levels, int qp,
                std::array<int32_t, kTxCoeffs> &out);

/** Zigzag scan order: scan index -> raster coefficient index. */
const std::array<int, kTxCoeffs> &zigzagOrder();

/**
 * Full residual coding round trip used by both mode decision and the
 * final encode: transform, quantize, and reconstruct the residual.
 * @return Number of nonzero levels.
 */
int transformQuantize(const ResidualBlock &residual, int qp, double deadzone,
                      CoeffBlock &levels, ResidualBlock &recon_residual);

/** Decoder-side reconstruction of a residual from levels. */
void reconstructResidual(const CoeffBlock &levels, int qp,
                         ResidualBlock &recon_residual);

} // namespace wsva::video::codec

#endif // WSVA_VIDEO_CODEC_TRANSFORM_H
