#include "video/codec/entropy.h"

#include <algorithm>
#include <bit>

#include "common/logging.h"
#include "video/codec/golomb.h"

namespace wsva::video::codec {

int
coeffBand(int scan_pos)
{
    if (scan_pos == 0)
        return 0;
    if (scan_pos <= 3)
        return 1;
    if (scan_pos <= 9)
        return 2;
    if (scan_pos <= 20)
        return 3;
    return 4;
}

void
EntropyModel::reset()
{
    probs_.fill(128);
    for (auto &c : counts_)
        c = {0, 0};
    // Skewed defaults where the neutral prior is clearly wrong: most
    // positions are EOB-negative and significance-positive early on.
    for (int band = 0; band < 5; ++band) {
        probs_[idx(kCtxEobBand0 + band, 0)] = 200; // EOB bit mostly 0.
        probs_[idx(kCtxSigBand0 + band, 0)] = 110;
    }
    probs_[idx(kCtxSkip, 0)] = 128;
    probs_[idx(kCtxCbf, 0)] = 100;
}

void
EntropyModel::adapt()
{
    for (size_t i = 0; i < probs_.size(); ++i) {
        const uint32_t c0 = counts_[i][0];
        const uint32_t c1 = counts_[i][1];
        const uint32_t total = c0 + c1;
        counts_[i] = {0, 0};
        if (total < 4)
            continue; // Too little evidence; keep the old estimate.
        const auto observed = static_cast<int>((c0 * 256 + total / 2) / total);
        // Blend strongly toward the observation (VP9's backward
        // adaptation converges within a frame or two).
        int blended = (static_cast<int>(probs_[i]) + 7 * observed + 4) / 8;
        probs_[i] = static_cast<Prob>(std::clamp(blended, 1, 255));
    }
}

void
SyntaxWriter::writeSInt(int ctx, int32_t value)
{
    // Zigzag map: 0, -1, 1, -2, 2, ... -> 0, 1, 2, 3, 4, ...
    const uint32_t mapped = value >= 0
        ? 2u * static_cast<uint32_t>(value)
        : 2u * static_cast<uint32_t>(-value) - 1;
    writeUInt(ctx, mapped);
}

int32_t
SyntaxReader::readSInt(int ctx)
{
    const uint32_t mapped = readUInt(ctx);
    if (mapped & 1)
        return -static_cast<int32_t>((mapped + 1) / 2);
    return static_cast<int32_t>(mapped / 2);
}

// ---------------------------------------------------------------- Golomb

void
GolombSyntaxWriter::writeBit(int ctx, int bit)
{
    (void)ctx;
    bw_.putBit(bit);
}

void
GolombSyntaxWriter::writeUInt(int ctx, uint32_t value)
{
    (void)ctx;
    putUe(bw_, value);
}

void
GolombSyntaxWriter::writeLiteral(uint32_t value, int count)
{
    bw_.putBits(value, count);
}

double
GolombSyntaxWriter::bitsWritten() const
{
    return static_cast<double>(bw_.bitCount());
}

std::vector<uint8_t>
GolombSyntaxWriter::finish()
{
    return bw_.take();
}

int
GolombSyntaxReader::readBit(int ctx)
{
    (void)ctx;
    return br_.getBit();
}

uint32_t
GolombSyntaxReader::readUInt(int ctx)
{
    (void)ctx;
    return getUe(br_);
}

uint32_t
GolombSyntaxReader::readLiteral(int count)
{
    return br_.getBits(count);
}

// ----------------------------------------------------------------- Arith

namespace {

/** Exp-Golomb magnitude class of value + 1: number of offset bits. */
int
magnitudeClass(uint32_t value)
{
    return 31 - std::countl_zero(value + 1);
}

} // namespace

void
ArithSyntaxWriter::writeBit(int ctx, int bit)
{
    const Prob p = model_->prob(ctx, 0);
    enc_.encodeBit(p, bit);
    model_->record(ctx, 0, bit);
}

void
ArithSyntaxWriter::writeUInt(int ctx, uint32_t value)
{
    const int k = magnitudeClass(value);
    WSVA_ASSERT(k < 31, "writeUInt value overflow");
    // Unary prefix: k continuation bits (1) then a stop bit (0), each
    // against the adaptive probability for its position.
    for (int i = 0; i < k; ++i) {
        const int bin = std::min(i, EntropyModel::kPrefixBins - 2) + 1;
        const Prob p = model_->prob(ctx, bin);
        enc_.encodeBit(p, 1);
        model_->record(ctx, bin, 1);
    }
    const int stop_bin = std::min(k, EntropyModel::kPrefixBins - 2) + 1;
    const Prob p = model_->prob(ctx, stop_bin);
    enc_.encodeBit(p, 0);
    model_->record(ctx, stop_bin, 0);
    // Offset bits: value + 1 minus its leading one bit.
    if (k > 0)
        enc_.encodeLiteral((value + 1) & ((1u << k) - 1), k);
}

void
ArithSyntaxWriter::writeLiteral(uint32_t value, int count)
{
    enc_.encodeLiteral(value, count);
}

double
ArithSyntaxWriter::bitsWritten() const
{
    return static_cast<double>(enc_.costUnits()) / 256.0;
}

std::vector<uint8_t>
ArithSyntaxWriter::finish()
{
    return enc_.finish();
}

int
ArithSyntaxReader::readBit(int ctx)
{
    const Prob p = model_->prob(ctx, 0);
    const int bit = dec_.decodeBit(p);
    model_->record(ctx, 0, bit);
    return bit;
}

uint32_t
ArithSyntaxReader::readUInt(int ctx)
{
    int k = 0;
    for (;;) {
        const int bin = std::min(k, EntropyModel::kPrefixBins - 2) + 1;
        const Prob p = model_->prob(ctx, bin);
        const int bit = dec_.decodeBit(p);
        model_->record(ctx, bin, bit);
        if (bit == 0)
            break;
        ++k;
        WSVA_ASSERT(k < 32, "corrupt unary prefix");
    }
    uint32_t offset = k > 0 ? dec_.decodeLiteral(k) : 0;
    return ((1u << k) | offset) - 1;
}

uint32_t
ArithSyntaxReader::readLiteral(int count)
{
    return dec_.decodeLiteral(count);
}

// ------------------------------------------------------------- Estimates

int
estimateUIntBits(uint32_t value)
{
    return ueBits(value);
}

int
estimateSIntBits(int32_t value)
{
    const uint32_t mapped = value >= 0
        ? 2u * static_cast<uint32_t>(value)
        : 2u * static_cast<uint32_t>(-value) - 1;
    return ueBits(mapped);
}

} // namespace wsva::video::codec
