#include "video/codec/codec.h"

namespace wsva::video::codec {

const char *
codecName(CodecType codec)
{
    return codec == CodecType::H264 ? "h264" : "vp9";
}

int
EncodedChunk::shownFrameCount() const
{
    int n = 0;
    for (const auto &f : frames)
        n += f.shown;
    return n;
}

double
EncodedChunk::bitrateBps() const
{
    const int shown = shownFrameCount();
    if (shown == 0 || fps <= 0.0)
        return 0.0;
    const double seconds = shown / fps;
    return static_cast<double>(bytes.size()) * 8.0 / seconds;
}

} // namespace wsva::video::codec
