/**
 * @file
 * The decoder: parses a stream container and reconstructs the
 * displayed frames. The reconstruction path is bit-exact with the
 * encoder's in-loop reconstruction.
 */

#ifndef WSVA_VIDEO_CODEC_DECODER_H
#define WSVA_VIDEO_CODEC_DECODER_H

#include <optional>
#include <vector>

#include "video/codec/codec.h"

namespace wsva::video::codec {

/**
 * Decode a full stream. Returns nullopt when the container is
 * malformed or truncated.
 */
std::optional<DecodedChunk> decodeChunk(const std::vector<uint8_t> &bytes);

/** Decode or abort — for tests and tools where failure is a bug. */
DecodedChunk decodeChunkOrDie(const std::vector<uint8_t> &bytes);

} // namespace wsva::video::codec

#endif // WSVA_VIDEO_CODEC_DECODER_H
