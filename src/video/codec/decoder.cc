#include "video/codec/decoder.h"

#include <algorithm>
#include <array>
#include <memory>

#include "common/logging.h"
#include "video/codec/bitstream.h"
#include "video/codec/entropy.h"
#include "video/codec/intra.h"
#include "video/codec/loop_filter.h"
#include "video/codec/mb_common.h"
#include "video/codec/transform.h"

namespace wsva::video::codec {

namespace {

constexpr int kHalf = kMbSize / 2;

/** Crop a padded frame back to display dimensions. */
Frame
cropFrame(const Frame &src, int w, int h)
{
    if (src.width() == w && src.height() == h)
        return src;
    Frame out(w, h);
    for (int p = 0; p < 3; ++p) {
        const Plane &s = src.plane(p);
        Plane &d = out.plane(p);
        for (int y = 0; y < d.height(); ++y)
            for (int x = 0; x < d.width(); ++x)
                d.at(x, y) = s.at(x, y);
    }
    return out;
}

class DecoderEngine
{
  public:
    explicit DecoderEngine(const SequenceHeader &seq)
        : seq_(seq),
          pw_((seq.width + kMbSize - 1) / kMbSize * kMbSize),
          ph_((seq.height + kMbSize - 1) / kMbSize * kMbSize),
          mb_cols_(pw_ / kMbSize), mb_rows_(ph_ / kMbSize),
          grid_(static_cast<size_t>(mb_cols_ * mb_rows_))
    {
        for (auto &r : refs_)
            r = Frame(pw_, ph_, 128);
    }

    /** Decode one frame record; returns false on corrupt payload. */
    bool decodeFrame(const FrameHeader &hdr,
                     const std::vector<uint8_t> &payload,
                     std::vector<Frame> &output);

  private:
    void decodeMb(SyntaxReader &reader, Frame &recon, int mbx, int mby,
                  const FrameHeader &hdr);

    SequenceHeader seq_;
    int pw_;
    int ph_;
    int mb_cols_;
    int mb_rows_;
    std::vector<MbNeighbor> grid_;
    std::array<Frame, kNumRefSlots> refs_;
    EntropyModel model_;
};

void
DecoderEngine::decodeMb(SyntaxReader &reader, Frame &recon, int mbx,
                        int mby, const FrameHeader &hdr)
{
    const int x = mbx * kMbSize;
    const int y = mby * kMbSize;
    const Mv mvp = mvPredictor(grid_, mb_cols_, mbx, mby);

    uint8_t pred_y[kMbSize * kMbSize];
    uint8_t pred_u[kHalf * kHalf];
    uint8_t pred_v[kHalf * kHalf];

    bool inter = false;
    Mv grid_mv{};

    bool has_residual = true;
    std::array<CoeffBlock, 4> coeff_y;
    CoeffBlock coeff_u;
    CoeffBlock coeff_v;

    auto readCoeffs = [&] {
        for (auto &cb : coeff_y)
            readCoeffBlock(reader, cb);
        readCoeffBlock(reader, coeff_u);
        readCoeffBlock(reader, coeff_v);
    };

    if (hdr.type == FrameType::Key) {
        const auto mode =
            static_cast<IntraMode>(reader.readUInt(kCtxIntraMode) & 3u);
        intraPredict(recon.y(), x, y, kMbSize, mode, pred_y);
        intraPredict(recon.u(), x / 2, y / 2, kHalf, mode, pred_u);
        intraPredict(recon.v(), x / 2, y / 2, kHalf, mode, pred_v);
        readCoeffs();
    } else if (reader.readBit(kCtxSkip)) {
        // Skip: LAST reference, predictor MV, no residual.
        inter = true;
        grid_mv = mvp;
        std::array<Mv, 4> mvs{mvp, mvp, mvp, mvp};
        std::array<int, 4> ref{kRefLast, kRefLast, kRefLast, kRefLast};
        buildInterPrediction(refs_, mvs.data(), ref.data(), false, false, 0,
                             Mv{}, x, y, pred_y, pred_u, pred_v);
        has_residual = false;
    } else if (reader.readBit(kCtxIsInter) == 0) {
        const auto mode =
            static_cast<IntraMode>(reader.readUInt(kCtxIntraMode) & 3u);
        intraPredict(recon.y(), x, y, kMbSize, mode, pred_y);
        intraPredict(recon.u(), x / 2, y / 2, kHalf, mode, pred_u);
        intraPredict(recon.v(), x / 2, y / 2, kHalf, mode, pred_v);
        readCoeffs();
    } else {
        inter = true;
        const bool split = reader.readBit(kCtxSplit) != 0;
        std::array<Mv, 4> mvs{};
        std::array<int, 4> ref{};
        const int parts = split ? 4 : 1;
        for (int q = 0; q < parts; ++q) {
            ref[static_cast<size_t>(q)] = static_cast<int>(
                reader.readUInt(kCtxRefIdx) % kNumRefSlots);
            const auto dx =
                static_cast<int16_t>(reader.readSInt(kCtxMvdX));
            const auto dy =
                static_cast<int16_t>(reader.readSInt(kCtxMvdY));
            mvs[static_cast<size_t>(q)] = {
                static_cast<int16_t>(mvp.x + dx),
                static_cast<int16_t>(mvp.y + dy)};
        }
        if (!split) {
            for (int q = 1; q < 4; ++q) {
                mvs[static_cast<size_t>(q)] = mvs[0];
                ref[static_cast<size_t>(q)] = ref[0];
            }
        }
        bool compound = false;
        int ref2 = 0;
        Mv mv2{};
        if (seq_.codec == CodecType::VP9 && !split) {
            compound = reader.readBit(kCtxCompound) != 0;
            if (compound) {
                ref2 = static_cast<int>(reader.readUInt(kCtxRefIdx) %
                                        kNumRefSlots);
                mv2 = {static_cast<int16_t>(
                           mvp.x + reader.readSInt(kCtxMvdX)),
                       static_cast<int16_t>(
                           mvp.y + reader.readSInt(kCtxMvdY))};
            }
        }
        grid_mv = mvs[0];
        buildInterPrediction(refs_, mvs.data(), ref.data(), split, compound,
                             ref2, mv2, x, y, pred_y, pred_u, pred_v);
        readCoeffs();
    }

    // Reconstruct into the frame.
    ResidualBlock rres;
    if (has_residual) {
        for (int q = 0; q < 4; ++q) {
            const int qx = (q % 2) * 8;
            const int qy = (q / 2) * 8;
            reconstructResidual(coeff_y[static_cast<size_t>(q)], hdr.qp,
                                rres);
            for (int r = 0; r < 8; ++r) {
                for (int c = 0; c < 8; ++c) {
                    const int idx = (qy + r) * kMbSize + qx + c;
                    const int v = pred_y[idx] +
                                  rres[static_cast<size_t>(r * 8 + c)];
                    recon.y().at(x + qx + c, y + qy + r) =
                        static_cast<uint8_t>(std::clamp(v, 0, 255));
                }
            }
        }
        reconstructResidual(coeff_u, hdr.qp, rres);
        for (int r = 0; r < kHalf; ++r) {
            for (int c = 0; c < kHalf; ++c) {
                const int v = pred_u[r * kHalf + c] +
                              rres[static_cast<size_t>(r * kHalf + c)];
                recon.u().at(x / 2 + c, y / 2 + r) =
                    static_cast<uint8_t>(std::clamp(v, 0, 255));
            }
        }
        reconstructResidual(coeff_v, hdr.qp, rres);
        for (int r = 0; r < kHalf; ++r) {
            for (int c = 0; c < kHalf; ++c) {
                const int v = pred_v[r * kHalf + c] +
                              rres[static_cast<size_t>(r * kHalf + c)];
                recon.v().at(x / 2 + c, y / 2 + r) =
                    static_cast<uint8_t>(std::clamp(v, 0, 255));
            }
        }
    } else {
        for (int r = 0; r < kMbSize; ++r)
            for (int c = 0; c < kMbSize; ++c)
                recon.y().at(x + c, y + r) = pred_y[r * kMbSize + c];
        for (int r = 0; r < kHalf; ++r) {
            for (int c = 0; c < kHalf; ++c) {
                recon.u().at(x / 2 + c, y / 2 + r) = pred_u[r * kHalf + c];
                recon.v().at(x / 2 + c, y / 2 + r) = pred_v[r * kHalf + c];
            }
        }
    }

    auto &nb = grid_[static_cast<size_t>(mby) *
                         static_cast<size_t>(mb_cols_) +
                     static_cast<size_t>(mbx)];
    nb.coded = true;
    nb.inter = inter;
    nb.mv = inter ? grid_mv : Mv{};
}

bool
DecoderEngine::decodeFrame(const FrameHeader &hdr,
                           const std::vector<uint8_t> &payload,
                           std::vector<Frame> &output)
{
    if (hdr.qp < 0 || hdr.qp > kMaxQp)
        return false;

    if (hdr.type == FrameType::Key)
        model_.reset();

    std::unique_ptr<SyntaxReader> reader;
    std::unique_ptr<GolombSyntaxReader> golomb_reader;
    if (seq_.codec == CodecType::VP9) {
        reader = std::make_unique<ArithSyntaxReader>(model_, payload.data(),
                                                     payload.size());
    } else {
        auto gr = std::make_unique<GolombSyntaxReader>(payload.data(),
                                                       payload.size());
        golomb_reader = std::move(gr);
    }
    SyntaxReader &rd =
        reader ? *reader : static_cast<SyntaxReader &>(*golomb_reader);

    Frame recon(pw_, ph_, 128);
    for (auto &nb : grid_)
        nb = MbNeighbor{};

    for (int mby = 0; mby < mb_rows_; ++mby)
        for (int mbx = 0; mbx < mb_cols_; ++mbx)
            decodeMb(rd, recon, mbx, mby, hdr);

    if (golomb_reader && golomb_reader->overrun())
        return false;

    deblockFrame(recon, hdr.qp);

    if (seq_.codec == CodecType::VP9)
        model_.adapt();

    if (hdr.update_last)
        refs_[kRefLast] = recon;
    if (hdr.update_golden)
        refs_[kRefGolden] = recon;
    if (hdr.update_altref)
        refs_[kRefAltRef] = recon;

    if (hdr.show)
        output.push_back(cropFrame(recon, seq_.width, seq_.height));
    return true;
}

} // namespace

std::optional<DecodedChunk>
decodeChunk(const std::vector<uint8_t> &bytes)
{
    auto stream = StreamReader::open(bytes);
    if (!stream)
        return std::nullopt;

    DecoderEngine engine(stream->sequence());
    DecodedChunk out;
    out.codec = stream->sequence().codec;
    out.fps = stream->sequence().fps;

    FrameHeader hdr;
    std::vector<uint8_t> payload;
    while (!stream->atEnd()) {
        if (!stream->nextFrame(hdr, payload))
            return std::nullopt;
        if (!engine.decodeFrame(hdr, payload, out.frames))
            return std::nullopt;
    }
    return out;
}

DecodedChunk
decodeChunkOrDie(const std::vector<uint8_t> &bytes)
{
    auto decoded = decodeChunk(bytes);
    WSVA_ASSERT(decoded.has_value(), "stream failed to decode");
    return std::move(*decoded);
}

} // namespace wsva::video::codec
